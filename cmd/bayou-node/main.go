// Command bayou-node hosts one replica of a multi-process live deployment:
// it listens on its own address from the cluster's address list, exchanges
// the replica protocol with its peers over TCP (internal/wire envelopes),
// and serves the controller process (the bayou façade with WithPeers, or
// bayou-bench -peers) until told to shut down.
//
// A three-node cluster on one machine:
//
//	bayou-node -id 0 -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	bayou-node -id 1 -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	bayou-node -id 2 -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//
// Start order does not matter: outbound links re-dial with backoff, and
// each node bootstraps by resyncing off its peers — a node joining a
// deployment that already has history catches up by checkpoint state
// transfer plus commit replay, not by replaying the whole log.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bayou/internal/core"
	"bayou/internal/livenet"
	"bayou/internal/wire"
)

func main() {
	id := flag.Int("id", -1, "this replica's id (index into -addrs)")
	addrs := flag.String("addrs", "", "comma-separated listen addresses of every replica, in id order")
	variant := flag.String("variant", "modified", "protocol variant: original | modified")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint once this many commits accumulate past the last one (0: manual only)")
	lease := flag.Bool("lease", false, "serve strong read-only operations locally on the sequencer (leader lease)")
	dataDir := flag.String("data-dir", "", "directory for durable snapshots; empty runs the node volatile (recovery by peer rescue only)")
	keep := flag.Int("keep", 0, "snapshot generations to retain in -data-dir (0: default)")
	seed := flag.Int64("seed", 0, "seed for this node's randomized behavior (dial jitter, fault injection)")
	chaos := flag.String("chaos", "", "wire fault-injection spec, e.g. drop=0.02,dup=0.02,reorder=0.02,flip=0.01,trunc=0.005,delay=0.05,delaymax=5ms (testing only)")
	antiEntropy := flag.Duration("anti-entropy", 250*time.Millisecond, "interval between background peer resyncs (0: disabled)")
	flag.Parse()

	list := strings.Split(*addrs, ",")
	if *addrs == "" || len(list) < 1 {
		fmt.Fprintln(os.Stderr, "bayou-node: -addrs must list every replica's address")
		os.Exit(2)
	}
	var v core.Variant
	switch *variant {
	case "original":
		v = core.Original
	case "modified", "":
		v = core.NoCircularCausality
	default:
		fmt.Fprintf(os.Stderr, "bayou-node: unknown variant %q\n", *variant)
		os.Exit(2)
	}
	faults, err := wire.ParseFaults(*chaos, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bayou-node: -chaos: %v\n", err)
		os.Exit(2)
	}
	if err := livenet.ServeNode(livenet.NodeConfig{
		ID:               *id,
		Variant:          v,
		CheckpointEvery:  *ckptEvery,
		LeaderLease:      *lease,
		Addrs:            list,
		DataDir:          *dataDir,
		Keep:             *keep,
		Seed:             *seed,
		Chaos:            faults,
		AntiEntropyEvery: *antiEntropy,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "bayou-node: %v\n", err)
		os.Exit(1)
	}
}
