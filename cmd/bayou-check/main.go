// Command bayou-check runs the paper's correctness predicates — witness mode
// over protocol runs, and the exhaustive search mode that machine-checks the
// Theorem 1 impossibility — and exits non-zero when a guarantee the paper
// proves is violated (or one it refutes is satisfied).
//
// Usage:
//
//	bayou-check [-seeds N] [-lint]
//
// With -lint it first runs the bayouvet static-analysis suite over the
// whole module (the same registry as cmd/bayouvet and the CI gate) and
// refuses to check protocol runs that the analyzers already know are
// broken — a determinism finding means the seeds below are not replayable.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bayou/internal/analysis"
	"bayou/internal/check"
	"bayou/internal/core"
	"bayou/internal/scenario"
)

func main() {
	log.SetFlags(0)
	seeds := flag.Int("seeds", 10, "number of randomized runs per theorem check")
	lint := flag.Bool("lint", false, "run the bayouvet analyzers over the module before checking")
	flag.Parse()

	if *lint {
		if n := runLint(); n > 0 {
			log.Fatalf("bayouvet: %d finding(s); not checking runs whose invariants are already broken", n)
		}
		fmt.Printf("%-58s %s  %s\n", "bayouvet static analysis (module-wide)", "PASS", "5 analyzers")
	}

	failed := false
	report := func(name string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-58s %s  %s\n", name, status, detail)
	}

	// Theorem 2: stable runs satisfy FEC(weak) ∧ FEC(strong) ∧ Seq(strong).
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		out, err := scenario.StableRun(seed, 3, 6, core.NoCircularCausality)
		if err != nil {
			log.Fatal(err)
		}
		w := check.NewWitness(out.History)
		ok := w.FEC(core.Weak).OK() && w.FEC(core.Strong).OK() && w.Seq(core.Strong).OK()
		report(fmt.Sprintf("theorem2 stable run (seed %d)", seed), ok,
			fmt.Sprintf("%d events", len(out.History.Events)))
	}

	// Theorem 3: asynchronous runs satisfy FEC(weak); Seq(strong) unachieved.
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		out, err := scenario.AsyncRun(seed, 3, 6)
		if err != nil {
			log.Fatal(err)
		}
		w := check.NewWitness(out.History)
		ok := w.FEC(core.Weak).OK() && !w.SeqPendingAware(core.Strong).OK()
		report(fmt.Sprintf("theorem3 async run (seed %d)", seed), ok,
			fmt.Sprintf("%d events", len(out.History.Events)))
	}

	// Theorem 1: the constructed history is unsatisfiable.
	out, err := scenario.Theorem1()
	if err != nil {
		log.Fatal(err)
	}
	search, err := check.Search(out.History, check.BECWeakSeqStrong())
	if err != nil {
		log.Fatal(err)
	}
	report("theorem1 impossibility (search mode)", !search.Satisfiable, search.String())

	// Figure 2: Algorithm 1 violates NCC; Algorithm 2 restores it.
	f2orig, err := scenario.Figure2(core.Original)
	if err != nil {
		log.Fatal(err)
	}
	report("figure2 Algorithm 1 violates NCC",
		!check.NewWitness(f2orig.History).NCC().Holds, "")
	f2mod, err := scenario.Figure2(core.NoCircularCausality)
	if err != nil {
		log.Fatal(err)
	}
	report("figure2 Algorithm 2 satisfies NCC",
		check.NewWitness(f2mod.History).NCC().Holds, "")

	if failed {
		os.Exit(1)
	}
}

// runLint executes the bayouvet registry over the enclosing module and
// prints any findings, returning how many there were.
func runLint() int {
	root, err := analysis.ModuleDir(".")
	if err != nil {
		log.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		log.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	return len(diags)
}
