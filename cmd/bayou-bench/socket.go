package main

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"bayou"
	"bayou/internal/launch"
)

// socketResult is the measured outcome of one multi-process benchmark run.
type socketResult struct {
	record  benchRecord
	elapsed time.Duration
	p99     time.Duration
}

// runSocketBench spawns nodes bayou-node processes, connects the façade
// over TCP (WithPeers), and drives one session per replica concurrently:
// weak increments with every 16th operation a strong read and every 16th
// (offset by 8) a weak two-increment txn — one atomic unit over the wire —
// each timed end to end (invoke round-trip; strong operations include the
// commit wait). The run settles, verifies the counter against the issued
// increments so the numbers cannot come from dropped work, and reports
// aggregate ops/sec plus the p99 per-operation latency.
func runSocketBench(nodes, totalOps int) (socketResult, error) {
	d, err := launch.Start(nodes)
	if err != nil {
		return socketResult{}, err
	}
	defer func() {
		d.Stop()
		d.Cleanup()
	}()
	c, err := bayou.NewLive(bayou.WithPeers(d.Addrs...))
	if err != nil {
		return socketResult{}, fmt.Errorf("connecting to node processes: %w", err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	perWorker := totalOps / nodes
	lats := make([][]time.Duration, nodes)
	errs := make([]error, nodes)
	var wantCtr int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < nodes; w++ {
		s, err := c.Session(w)
		if err != nil {
			return socketResult{}, err
		}
		// Strong reads don't increment; each txn slot increments twice.
		wantCtr += int64(perWorker - (perWorker+15)/16 + (perWorker+7)/16)
		wg.Add(1)
		go func(w int, s *bayou.Session) {
			defer wg.Done()
			lat := make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				t0 := time.Now()
				switch {
				case i%16 == 0:
					if _, err := s.Invoke(bayou.Get("ctr"), bayou.Strong); err != nil {
						errs[w] = err
						return
					}
					if _, err := s.Wait(ctx); err != nil {
						errs[w] = err
						return
					}
				case i%16 == 8:
					_, err := s.Txn(bayou.Weak,
						bayou.Do(bayou.Inc("ctr", 1)),
						bayou.Do(bayou.Inc("ctr", 1)))
					if err != nil {
						errs[w] = err
						return
					}
				default:
					if _, err := s.Invoke(bayou.Inc("ctr", 1), bayou.Weak); err != nil {
						errs[w] = err
						return
					}
				}
				lat = append(lat, time.Since(t0))
			}
			lats[w] = lat
		}(w, s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return socketResult{}, err
		}
	}
	if err := c.Settle(); err != nil {
		return socketResult{}, err
	}
	v, err := c.Read(0, "ctr")
	if err != nil {
		return socketResult{}, err
	}
	if !bayou.Equal(v, wantCtr) {
		return socketResult{}, fmt.Errorf("settled counter = %v, want %d: the benchmark dropped work", v, wantCtr)
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 := all[len(all)*99/100]
	var sum time.Duration
	for _, l := range all {
		sum += l
	}
	ops := len(all)
	return socketResult{
		record: benchRecord{
			Name:      fmt.Sprintf("LiveSocket/%dnodes", nodes),
			Kind:      "socket",
			NsPerOp:   float64(sum.Nanoseconds()) / float64(ops),
			Ops:       int64(ops),
			Sessions:  nodes,
			OpsPerSec: float64(ops) / elapsed.Seconds(),
			P99Ns:     float64(p99.Nanoseconds()),
			OK:        true,
		},
		elapsed: elapsed,
		p99:     p99,
	}, nil
}
