// Command bayou-bench regenerates every evaluation artifact of the paper —
// experiments E1 through E12 of DESIGN.md — and prints the paper-claim vs.
// measured-result tables recorded in EXPERIMENTS.md. It exits non-zero if
// any measured shape deviates from the paper's claim.
//
// Usage:
//
//	bayou-bench [-only E7]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"bayou/internal/experiments"
)

func main() {
	log.SetFlags(0)
	only := flag.String("only", "", "run a single experiment, e.g. E7")
	flag.Parse()

	results, err := experiments.All()
	if err != nil {
		log.Fatal(err)
	}
	failed := false
	for _, res := range results {
		if *only != "" && !strings.EqualFold(res.ID, *only) {
			continue
		}
		fmt.Println(res)
		if !res.OK() {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
