// Command bayou-bench regenerates every evaluation artifact of the paper —
// experiments E1 through E13 of DESIGN.md §2 — and prints the paper-claim
// vs. measured-result tables. It exits non-zero if any measured shape
// deviates from the paper's claim.
//
// With -json it instead emits a machine-readable benchmark report on
// stdout: one record per experiment and per protocol micro-benchmark, with
// ns/op, allocs/op and bytes/op, so successive runs can be recorded as
// BENCH_*.json trajectories and compared across PRs. Combining -json with
// -only restricts the report to that single experiment record; the
// micro-benchmark records are emitted only on unfiltered runs.
//
// With -compare it instead diffs two such reports: per-benchmark ns/op and
// allocs/op deltas, exiting non-zero when any benchmark regressed beyond
// -threshold percent — the guard CI runs against the previous push's
// BENCH_<sha>.json artifact.
//
// With -socket it instead runs the multi-process benchmark: it spawns
// -socket-nodes bayou-node processes, connects the façade to them over TCP
// (WithPeers), and drives concurrent sessions of weak increments mixed
// with strong reads, reporting aggregate ops/sec and the p99 per-operation
// latency — printed, or as a "socket" BENCH JSON record with -json.
//
// Usage:
//
//	bayou-bench [-only E7] [-json]
//	bayou-bench -socket [-socket-nodes 3] [-socket-ops 3000] [-json]
//	bayou-bench -compare [-threshold 15] old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"bayou/internal/experiments"
	"bayou/internal/workload"
)

// benchRecord is one line of the -json report.
type benchRecord struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"` // "experiment" or "micro"
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Ops         int64   `json:"ops"`
	// Sessions is the number of concurrent client sessions the workload
	// drives (1 for the single-client hot paths); successive BENCH_*.json
	// snapshots can therefore track per-session throughput as this
	// dimension grows.
	Sessions int `json:"sessions"`
	// Guarantees reports whether the workload's sessions carry session
	// guarantees (ReadYourWrites|MonotonicReads): paired with the
	// same-sessions plain record, it pins the coverage-gate overhead.
	Guarantees bool `json:"guarantees"`
	// OpsPerSec and P99Ns are reported by the multi-process socket mode
	// (-socket): aggregate throughput and 99th-percentile per-operation
	// latency over real TCP connections to bayou-node processes.
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	P99Ns     float64 `json:"p99_ns,omitempty"`
	OK        bool    `json:"ok"`
}

func main() {
	log.SetFlags(0)
	only := flag.String("only", "", "run a single experiment, e.g. E7")
	asJSON := flag.Bool("json", false, "emit a machine-readable JSON benchmark report")
	compare := flag.Bool("compare", false, "compare two -json reports: bayou-bench -compare old.json new.json")
	threshold := flag.Float64("threshold", 15, "with -compare: fail on ns/op or allocs/op regressions beyond this percentage")
	socket := flag.Bool("socket", false, "multi-process mode: spawn bayou-node processes and benchmark over real sockets (ops/sec + p99)")
	socketNodes := flag.Int("socket-nodes", 3, "with -socket: deployment size")
	socketOps := flag.Int("socket-ops", 3000, "with -socket: total operations across all sessions")
	flag.Parse()

	if *socket {
		res, err := runSocketBench(*socketNodes, *socketOps)
		if err != nil {
			log.Fatal(err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode([]benchRecord{res.record}); err != nil {
				log.Fatal(err)
			}
			return
		}
		fmt.Printf("%s: %d ops in %.2fs — %.0f ops/sec, mean %s, p99 %s\n",
			res.record.Name, res.record.Ops, res.elapsed.Seconds(),
			res.record.OpsPerSec, time.Duration(res.record.NsPerOp), res.p99)
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("bayou-bench -compare: want exactly two report files (old.json new.json)")
		}
		regressed, err := compareReports(flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			log.Fatal(err)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	if *asJSON {
		if err := emitJSON(*only); err != nil {
			log.Fatal(err)
		}
		return
	}

	failed := false
	matched := false
	for _, e := range experiments.Registry() {
		if *only != "" && !strings.EqualFold(e.ID, *only) {
			continue
		}
		matched = true
		res, err := e.Run()
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Println(res)
		if !res.OK() {
			failed = true
		}
	}
	if *only != "" && !matched {
		log.Fatalf("bayou-bench: unknown experiment %q (have %s)", *only, experimentRange())
	}
	if failed {
		os.Exit(1)
	}
}

// compareReports diffs two -json reports benchmark-by-benchmark and prints a
// delta table. It reports whether any benchmark present in both regressed —
// ns/op or allocs/op grew — by more than threshold percent. Benchmarks only
// in one report are listed as added/removed and never count as regressions.
func compareReports(oldPath, newPath string, threshold float64) (bool, error) {
	load := func(path string) (map[string]benchRecord, []string, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		var recs []benchRecord
		if err := json.Unmarshal(data, &recs); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		byName := make(map[string]benchRecord, len(recs))
		order := make([]string, 0, len(recs))
		for _, r := range recs {
			if _, dup := byName[r.Name]; !dup {
				order = append(order, r.Name)
			}
			byName[r.Name] = r
		}
		return byName, order, nil
	}
	oldRecs, _, err := load(oldPath)
	if err != nil {
		return false, err
	}
	newRecs, newOrder, err := load(newPath)
	if err != nil {
		return false, err
	}

	pct := func(oldV, newV float64) float64 {
		if oldV == 0 {
			if newV == 0 {
				return 0
			}
			return 100
		}
		return (newV - oldV) / oldV * 100
	}
	regressed := false
	fmt.Printf("%-40s %14s %14s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "Δns%", "Δallocs%")
	for _, name := range newOrder {
		n := newRecs[name]
		o, ok := oldRecs[name]
		if !ok {
			fmt.Printf("%-40s %14s %14.0f %8s %10s  (added)\n", name, "-", n.NsPerOp, "-", "-")
			continue
		}
		dns := pct(o.NsPerOp, n.NsPerOp)
		dalloc := pct(o.AllocsPerOp, n.AllocsPerOp)
		marker := ""
		if dns > threshold || dalloc > threshold {
			marker = "  REGRESSION"
			regressed = true
		}
		fmt.Printf("%-40s %14.0f %14.0f %+7.1f%% %+9.1f%%%s\n", name, o.NsPerOp, n.NsPerOp, dns, dalloc, marker)
	}
	for name := range oldRecs {
		if _, ok := newRecs[name]; !ok {
			fmt.Printf("%-40s  (removed)\n", name)
		}
	}
	if regressed {
		fmt.Printf("\nregressions beyond %.0f%% detected\n", threshold)
	}
	return regressed, nil
}

// experimentRange renders the registry's span for error messages.
func experimentRange() string {
	reg := experiments.Registry()
	return reg[0].ID + ".." + reg[len(reg)-1].ID
}

// emitJSON measures every experiment (wall time and allocations around one
// full run) and the protocol micro-benchmarks (via testing.Benchmark), then
// writes the records as a JSON array on stdout.
func emitJSON(only string) error {
	var records []benchRecord
	ok := true

	for _, e := range experiments.Registry() {
		if only != "" && !strings.EqualFold(e.ID, only) {
			continue
		}
		rec, err := measureExperiment(e.ID, e.Run)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		ok = ok && rec.OK
		records = append(records, rec)
	}
	if only != "" && len(records) == 0 {
		return fmt.Errorf("bayou-bench: unknown experiment %q (have %s)", only, experimentRange())
	}

	if only == "" {
		for _, m := range microBenches() {
			res := testing.Benchmark(m.fn)
			records = append(records, benchRecord{
				Name:        m.name,
				Kind:        "micro",
				NsPerOp:     float64(res.NsPerOp()),
				AllocsPerOp: float64(res.AllocsPerOp()),
				BytesPerOp:  float64(res.AllocedBytesPerOp()),
				Ops:         int64(res.N),
				Sessions:    m.sessions,
				Guarantees:  m.guarantees,
				OK:          true,
			})
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		return err
	}
	if !ok {
		os.Exit(1)
	}
	return nil
}

// measureExperiment times one full experiment run and samples the allocator
// around it.
func measureExperiment(id string, fn func() (experiments.Result, error)) (benchRecord, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return benchRecord{}, err
	}
	return benchRecord{
		Name:        id,
		Kind:        "experiment",
		NsPerOp:     float64(elapsed.Nanoseconds()),
		AllocsPerOp: float64(after.Mallocs - before.Mallocs),
		BytesPerOp:  float64(after.TotalAlloc - before.TotalAlloc),
		Ops:         1,
		OK:          res.OK(),
	}, nil
}

// microBench is one entry of the micro matrix.
type microBench struct {
	name       string
	sessions   int
	guarantees bool
	fn         func(b *testing.B)
}

// microBenches runs the same shared hot-path workloads as the root
// package's bench_test.go (internal/workload), so the JSON report tracks
// exactly the numbers CI smoke-runs. The multi-session entries sweep the
// sessions×guarantees matrix over one replica: each session count is
// measured plain and with ReadYourWrites|MonotonicReads sessions, so the
// coverage-gate overhead is pinned per report.
func microBenches() []microBench {
	benches := []microBench{
		{"WeakInvokeModified/100ops", 1, false, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := workload.MicroWeakInvoke(100); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"RollbackReexecute/100ops", 1, false, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := workload.MicroRollbackReexecute(100); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The transactional pair: the weak rebase loop with a multi-op
		// undo span in the rolled-back suffix, and strong transfer units
		// anchored one consensus slot each. Tracked next to their
		// single-op counterparts so the span/anchoring overhead is pinned
		// per report.
		{"TxnWeakRebase/100ops", 1, false, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := workload.MicroTxnWeakRebase(100); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"TxnStrongCommit/64ops", 1, false, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := workload.MicroTxnStrongCommit(64); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	// The recovery-cost trajectory: snapshot+restore over a 5k-op history,
	// with checkpointing off (O(history) recovery — the unbounded-log
	// baseline) and on (O(window)); successive BENCH_*.json snapshots pin
	// that the checkpointed series stays flat as the repo evolves.
	for _, every := range []int{0, 256} {
		every := every
		name := "SnapshotRestore/5kops/ckpt=off"
		if every > 0 {
			name = fmt.Sprintf("SnapshotRestore/5kops/ckpt=%d", every)
		}
		benches = append(benches, microBench{name, 1, false, func(b *testing.B) {
			f, err := workload.NewSnapshotFixture(5_000, every)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Snap = f.Snapshot()
				if err := f.Restore(); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}
	// The strong-path family: a pipelined, batched, leased burst end to
	// end, the per-commit latency of an established leader (Phase-2-only),
	// and the locally-served lease read — the three numbers behind the
	// raw-speed strong path, tracked so the -compare gate catches any
	// regression of the multi-decree machinery.
	benches = append(benches,
		microBench{"StrongBurst/64w64r", workload.StrongBurstSessions, false, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := workload.MicroStrongBurst(64); err != nil {
					b.Fatal(err)
				}
			}
		}},
		microBench{"StrongCommitLatency", 1, false, func(b *testing.B) {
			f, err := workload.NewLeaseFixture(10)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.Write(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		microBench{"LeaseRead", 1, false, func(b *testing.B) {
			f, err := workload.NewLeaseFixture(10)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.Read(); err != nil {
					b.Fatal(err)
				}
			}
		}},
	)
	for _, sessions := range []int{1, 4, 16} {
		sessions := sessions
		benches = append(benches, microBench{
			fmt.Sprintf("MultiSession/%dx25ops", sessions), sessions, false,
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := workload.MicroMultiSession(sessions, 25); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
		benches = append(benches, microBench{
			fmt.Sprintf("GuaranteeSession/%dx25ops", sessions), sessions, true,
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := workload.MicroGuaranteeSession(sessions, 25); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
	}
	return benches
}
