// Command bayou-sim runs the paper's constructed scenarios through the full
// protocol stack and prints timelines in the style of Figures 1 and 2.
//
// Usage:
//
//	bayou-sim -scenario figure1|figure2|theorem1|stable|async [-variant original|modified] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bayou/internal/check"
	"bayou/internal/core"
	"bayou/internal/scenario"
	"bayou/internal/traceviz"
)

func main() {
	log.SetFlags(0)
	scen := flag.String("scenario", "figure1", "figure1, figure2, theorem1, stable, or async")
	variantName := flag.String("variant", "original", "original (Algorithm 1) or modified (Algorithm 2)")
	seed := flag.Int64("seed", 1, "seed for the randomized scenarios")
	flag.Parse()

	variant := core.Original
	if *variantName == "modified" {
		variant = core.NoCircularCausality
	}

	var (
		out *scenario.Outcome
		err error
	)
	switch *scen {
	case "figure1":
		out, err = scenario.Figure1(variant)
	case "figure2":
		out, err = scenario.Figure2(variant)
	case "theorem1":
		out, err = scenario.Theorem1()
	case "stable":
		out, err = scenario.StableRun(*seed, 3, 6, variant)
	case "async":
		out, err = scenario.AsyncRun(*seed, 3, 6)
	default:
		log.Printf("unknown scenario %q", *scen)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario %s (variant %s)\n\n", *scen, variant)
	fmt.Println(traceviz.Timeline(out.History))
	fmt.Println(traceviz.Lanes(out.History))

	if len(out.Calls) > 0 {
		fmt.Println("named calls:")
		for name, call := range out.Calls {
			status := "pending"
			val := "∇"
			if call.Done() {
				resp := call.Response()
				val = fmt.Sprint(resp.Value)
				status = "tentative"
				if resp.Committed {
					status = "stable"
				}
			}
			fmt.Printf("  %-14s -> %-10v (%s)\n", name, val, status)
		}
		fmt.Println()
	}

	w := check.NewWitness(out.History)
	fmt.Print(w.FEC(core.Weak))
	fmt.Print(w.SeqPendingAware(core.Strong))
	fmt.Printf("  %s\n", w.NCC())
	fmt.Printf("  %s\n", w.ArTotal())
}
