// Command bayouvet is the repo's multichecker: five analyzers that
// mechanically enforce the invariants the Bayou reproduction depends on
// (sim-path determinism, lock discipline, sealed-driver layering, Effects
// hygiene, seed plumbing).
//
// It runs two ways, against the same registry:
//
//	bayouvet ./...                     # standalone, resolves patterns itself
//	go vet -vettool=$(which bayouvet) ./...   # unit-checker under cmd/go
//
// The second form speaks cmd/go's vet tool protocol: -V=full for the
// cache fingerprint, -flags for flag discovery, and a JSON vet.cfg per
// package with export data for every dependency — so it composes with the
// build cache exactly like the standard vet tool.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"bayou/internal/analysis"
)

func main() {
	// cmd/go probes the tool before any per-package run; both probes must
	// be answered before normal flag parsing.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full":
			printVersion()
			return
		case "-flags":
			// No tool-specific flags are exposed to `go vet`; analyzer
			// selection is a standalone-mode concern.
			fmt.Println("[]")
			return
		}
	}

	filter := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "print the analyzer registry and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: bayouvet [-analyzers a,b] [packages]\n       go vet -vettool=bayouvet [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := analysis.ByName(*filter)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], analyzers))
	}
	os.Exit(standalone(args, analyzers))
}

// printVersion answers `-V=full`. cmd/go folds the last field into the
// build cache key, so it must change whenever the tool's behavior can:
// hashing our own executable covers analyzer edits without a manual
// version bump.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("bayouvet version devel buildID=%x\n", h.Sum(nil))
}

// standalone resolves the patterns with the go tool and analyzes every
// matched package in one process. Exit 1 on findings, 0 on clean.
func standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	root, err := analysis.ModuleDir(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(root, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the per-package JSON config cmd/go hands a -vettool. The
// field set mirrors cmd/go/internal/work's vetConfig.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	ModulePath    string
	ModuleVersion string
	GoVersion     string

	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by cfgPath under
// cmd/go. Diagnostics go to stderr; the exit code (2 on findings) is the
// same convention the standard vet tool uses.
func unitcheck(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("%s: %v", cfgPath, err))
	}

	// bayouvet exports no facts, so its "vetx" is an empty placeholder —
	// written even in facts-only mode so cmd/go can cache the result.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fatal(err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fatal(err)
		}
		files = append(files, f)
	}
	imp := analysis.ExportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, err := analysis.TypeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fatal(fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err))
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		fatal(err)
	}
	writeVetx()
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bayouvet:", err)
	os.Exit(1)
}
