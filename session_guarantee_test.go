package bayou

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// Tests for the mobile, guarantee-carrying session API: coverage gating on
// both drivers, migration (Bind / InvokeAt), fail-fast mode, crash–recover
// failover, and the CheckGuarantees verdicts over the recorded histories.

// elementsOf decodes a SetElements response into a string set.
func elementsOf(v Value) map[string]bool {
	out := map[string]bool{}
	if vs, ok := v.([]Value); ok {
		for _, e := range vs {
			if s, ok := e.(string); ok {
				out[s] = true
			}
		}
	}
	return out
}

// TestGuaranteeGateParksUntilCoverage: on the simulator, a read at a replica
// that has not yet executed the session's write parks (the plain-session
// control demonstrably misses the write at the same point in the schedule),
// completes once the write propagates, and the checker proves RYW|MR over
// the history.
func TestGuaranteeGateParksUntilCoverage(t *testing.T) {
	c, err := New(WithReplicas(3), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}

	s, err := c.Session(0, WithGuarantees(ReadYourWrites|MonotonicReads))
	if err != nil {
		t.Fatal(err)
	}
	if s.Guarantees() != ReadYourWrites|MonotonicReads {
		t.Fatalf("session guarantees = %v", s.Guarantees())
	}
	if _, err := s.Invoke(SetAdd("cart", "milk"), Weak); err != nil {
		t.Fatal(err)
	}

	// Control: a plain session reading at replica 1 right now misses the
	// write — it is still in flight.
	plain, err := c.Session(1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := plain.Invoke(SetElements("cart"), Weak)
	if err != nil {
		t.Fatal(err)
	}
	if elementsOf(ctrl.Value())["milk"] {
		t.Fatal("control read already sees the write; the gate test is vacuous")
	}

	// The guaranteed session migrates to replica 1 and reads: the
	// invocation parks until replica 1 covers the write.
	if err := s.Bind(1); err != nil {
		t.Fatal(err)
	}
	call, err := s.Invoke(SetElements("cart"), Weak)
	if err != nil {
		t.Fatal(err)
	}
	if call.Done() {
		t.Fatal("gated read completed before replica 1 could have covered the write")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := s.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !elementsOf(resp.Value)["milk"] {
		t.Fatalf("guaranteed read lost the session's own write: %v", resp.Value)
	}

	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.CheckGuarantees(ReadYourWrites | MonotonicReads)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("CheckGuarantees(RYW|MR) must hold:\n%s", rep)
	}
}

// TestGuaranteeFailFast: under WithGuaranteeMode(FailFast) the same miss is
// an immediate ErrGuarantee; Covered reports the target's readiness and the
// invocation succeeds once it flips.
func TestGuaranteeFailFast(t *testing.T) {
	c, err := New(WithReplicas(3), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	s, err := c.Session(0, WithGuarantees(Causal), WithGuaranteeMode(FailFast))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke(SetAdd("cart", "eggs"), Weak); err != nil {
		t.Fatal(err)
	}
	if covered, err := s.Covered(1); err != nil || covered {
		t.Fatalf("replica 1 cannot be covered yet (covered=%v, err=%v)", covered, err)
	}
	if _, err := s.InvokeAt(1, SetElements("cart"), Weak); !errors.Is(err, ErrGuarantee) {
		t.Fatalf("fail-fast read at an uncovered replica: got %v, want ErrGuarantee", err)
	}
	// The rejected invocation leaves the session idle: it can retry.
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if covered, err := s.Covered(1); err != nil || !covered {
		t.Fatalf("replica 1 must be covered after settle (covered=%v, err=%v)", covered, err)
	}
	call, err := s.InvokeAt(1, SetElements("cart"), Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !elementsOf(call.Value())["eggs"] {
		t.Fatalf("covered read lost the write: %v", call.Value())
	}
}

// TestUnknownGuaranteeModeRejected: session options are validated.
func TestUnknownGuaranteeModeRejected(t *testing.T) {
	c, err := New(WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Session(0, WithGuaranteeMode(GuaranteeMode(9))); err == nil {
		t.Error("unknown guarantee mode must be rejected")
	}
}

// guaranteeFailover is the acceptance script: a Causal session writes at a
// replica, that replica crashes, the session re-binds to a survivor and
// must still read its own writes; after recovery it migrates back and must
// see everything again. It runs identically on both drivers (the victim is
// replica 2 — the live sequencer cannot crash).
func guaranteeFailover(t *testing.T, c *Cluster) {
	t.Helper()
	defer c.Close()
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	s, err := c.Session(2, WithGuarantees(ReadYourWrites|MonotonicReads))
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range []string{"milk", "eggs", "bread"} {
		if _, err := s.Invoke(SetAdd("cart", item), Weak); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Let the writes propagate off the doomed replica (RB dissemination is
	// part of the invoke; running the deployment delivers it).
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}

	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke(SetElements("cart"), Weak); err == nil {
		t.Fatal("invocation at a crashed replica must fail")
	}

	// Failover: re-bind to a survivor; the session must not unsee its own
	// writes there.
	if err := s.Bind(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke(SetElements("cart"), Weak); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range []string{"milk", "eggs", "bread"} {
		if !elementsOf(resp.Value)[item] {
			t.Fatalf("failover read lost %q: %v", item, resp.Value)
		}
	}
	// Keep writing at the survivor.
	if _, err := s.Invoke(SetAdd("cart", "salt"), Weak); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	// Recover the home replica and migrate back: the gate holds the read
	// until resynchronization has re-taught it everything.
	if err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind(2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke(SetElements("cart"), Weak); err != nil {
		t.Fatal(err)
	}
	if resp, err = s.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	for _, item := range []string{"milk", "eggs", "bread", "salt"} {
		if !elementsOf(resp.Value)[item] {
			t.Fatalf("post-recovery read lost %q: %v", item, resp.Value)
		}
	}

	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	c.MarkStable()
	probe, err := c.Session(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Invoke(SetElements("cart"), Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.CheckGuarantees(ReadYourWrites | MonotonicReads)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("CheckGuarantees(RYW|MR) across crash-recover must hold:\n%s", rep)
	}
}

// TestGuaranteeFailoverAcrossCrash runs the acceptance script on both
// drivers: a session with ReadYourWrites|MonotonicReads migrates across a
// crash/recover of its original replica and never observes a state missing
// its own writes or older than a prior read.
func TestGuaranteeFailoverAcrossCrash(t *testing.T) {
	t.Run("sim", func(t *testing.T) {
		c, err := New(WithReplicas(3), WithSeed(99))
		if err != nil {
			t.Fatal(err)
		}
		guaranteeFailover(t, c)
	})
	t.Run("live", func(t *testing.T) {
		c, err := NewLive(WithReplicas(3))
		if err != nil {
			t.Fatal(err)
		}
		guaranteeFailover(t, c)
	})
}

// TestGuaranteeWriteOrdering: a Causal session that migrates mid-stream has
// its writes arbitrated in session order (MonotonicWrites) and after its
// reads (WritesFollowReads), proven by the checker; the committed order of
// the session's writes matches the session order on every replica.
func TestGuaranteeWriteOrdering(t *testing.T) {
	c, err := New(WithReplicas(3), WithSeed(123))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	s, err := c.Session(0, WithGuarantees(Causal))
	if err != nil {
		t.Fatal(err)
	}
	// Alternate writes with migrations; each write must end up arbitrated
	// after all prior ones even though three replicas minted them.
	for i, replica := range []int{0, 1, 2, 0, 2} {
		if err := s.Bind(replica); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Invoke(Append(fmt.Sprintf("w%d", i)), Weak); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	c.MarkStable()
	probe, err := c.Session(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Invoke(ListRead(), Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}

	// The committed order of the session's writes is its session order.
	for r := 0; r < 3; r++ {
		order, err := c.Committed(r)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, name := range order {
			if name == fmt.Sprintf("append(w%d)", want) {
				want++
			}
		}
		if want != 5 {
			t.Fatalf("replica %d committed the session's writes out of order: %v", r, order)
		}
	}
	rep, err := c.CheckGuarantees(Causal)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("CheckGuarantees(Causal) under migration must hold:\n%s", rep)
	}
}

// TestGuaranteeStrongRead: a strong read on a guarantee session is gated on
// the committed prefix — it cannot answer before the session's weak write
// commits, so its (final-order) trace contains the write.
func TestGuaranteeStrongRead(t *testing.T) {
	c, err := New(WithReplicas(3), WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s, err := c.Session(0, WithGuarantees(ReadYourWrites))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke(Inc("ctr", 5), Weak); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind(2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke(CtrGet("ctr"), Strong); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(resp.Value, int64(5)) {
		t.Fatalf("strong read at the migrated replica = %v, want 5", resp.Value)
	}
	if !resp.Committed {
		t.Error("strong responses are committed")
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.CheckGuarantees(ReadYourWrites)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("CheckGuarantees(RYW) with a strong read must hold:\n%s", rep)
	}
}
