package bayou

import "bayou/internal/spec"

// This file re-exports the operation constructors of the built-in replicated
// data types so applications only import the bayou package. Each data type
// is a sequential specification in the sense of §3.4 of the paper; all
// operations are deterministic transactions over registers (§A.2.2).

// Equal compares two response values structurally (slices and maps
// included), the comparison the checkers themselves use.
func Equal(a, b Value) bool { return spec.Equal(a, b) }

// List operations (the data type of Figures 1 and 2; elements are strings,
// updating operations return the concatenated list).

// Append appends an element to the shared list and returns the resulting
// concatenation.
func Append(elem string) Op { return spec.Append(elem) }

// Duplicate atomically appends the list to itself ("append(read())") and
// returns the resulting concatenation.
func Duplicate() Op { return spec.Duplicate() }

// ListRead returns the concatenated list without modifying it (read-only).
func ListRead() Op { return spec.ListRead() }

// GetFirst returns the first list element, or nil when empty (read-only).
func GetFirst() Op { return spec.GetFirst() }

// Size returns the list length (read-only).
func Size() Op { return spec.Size() }

// Register operations.

// RegWrite writes v to the named register and returns v.
func RegWrite(key string, v Value) Op { return spec.RegWrite(key, v) }

// RegRead reads the named register (read-only; nil when unwritten).
func RegRead(key string) Op { return spec.RegRead(key) }

// Counter operations.

// Inc adds delta to the named counter and returns the new value.
func Inc(key string, delta int64) Op { return spec.Inc(key, delta) }

// CtrGet reads the named counter (read-only; 0 when fresh).
func CtrGet(key string) Op { return spec.CtrGet(key) }

// Key-value operations, including the paper's motivating consensus-requiring
// operation putIfAbsent (§1).

// Put stores v under key (blind write) and returns v.
func Put(key string, v Value) Op { return spec.Put(key, v) }

// Get reads the value under key (read-only; nil when absent).
func Get(key string) Op { return spec.Get(key) }

// Del removes the binding for key and returns the previous value.
func Del(key string) Op { return spec.Del(key) }

// PutIfAbsent stores v under key only when key is unbound, returning true on
// success. Issue it Strong for compare-and-set semantics; issued Weak its
// tentative true may later be invalidated (the Cassandra LWT-mixing hazard
// the paper cites).
func PutIfAbsent(key string, v Value) Op { return spec.PutIfAbsent(key, v) }

// Cas swaps the value under key from old to new, returning true on success.
func Cas(key string, old, next Value) Op { return spec.Cas(key, old, next) }

// Set operations.

// SetAdd inserts elem into the named set, returning true when new.
func SetAdd(key, elem string) Op { return spec.SetAdd(key, elem) }

// SetRemove removes elem from the named set, returning true when present.
func SetRemove(key, elem string) Op { return spec.SetRemove(key, elem) }

// SetContains reports membership (read-only).
func SetContains(key, elem string) Op { return spec.SetContains(key, elem) }

// SetElements returns the sorted elements (read-only).
func SetElements(key string) Op { return spec.SetElements(key) }

// Bank operations (the examples' mixed-consistency workload: deposits are
// natural weak operations, withdrawals want to be strong).

// Deposit adds amount to the account and returns the new balance.
func Deposit(account string, amount int64) Op { return spec.Deposit(account, amount) }

// Withdraw subtracts amount when the balance suffices, returning the new
// balance, or nil when rejected.
func Withdraw(account string, amount int64) Op { return spec.Withdraw(account, amount) }

// Balance reads the account balance (read-only).
func Balance(account string) Op { return spec.Balance(account) }

// Transfer atomically moves amount between accounts, returning true on
// success.
func Transfer(from, to string, amount int64) Op { return spec.Transfer(from, to, amount) }

// Text-editor operations (position-based edits: the canonical
// order-sensitive, "arbitrarily complex" semantics of §1; out-of-range
// positions clamp deterministically).

// Insert inserts text at a position of the shared document and returns the
// resulting document.
func Insert(doc string, pos int64, text string) Op { return spec.Insert(doc, pos, text) }

// Delete removes n characters starting at pos and returns the resulting
// document.
func Delete(doc string, pos, n int64) Op { return spec.Delete(doc, pos, n) }

// DocRead returns the document contents (read-only).
func DocRead(doc string) Op { return spec.DocRead(doc) }

// Meeting-room operations (the original Bayou application; alternates
// emulate Bayou's merge procedures at the specification level, §2.1).

// Reserve books the preferred slot or the first free alternate, returning
// the granted slot name or nil.
func Reserve(room, slot, who string, alternates ...string) Op {
	return spec.Reserve(room, slot, who, alternates...)
}

// Cancel releases a slot held by who, returning true when released.
func Cancel(room, slot, who string) Op { return spec.Cancel(room, slot, who) }

// Schedule lists bookings of a room over the given slot universe as sorted
// "slot=who" strings (read-only).
func Schedule(room string, slots ...string) Op { return spec.Schedule(room, slots...) }
