package bayou

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"bayou/internal/check"
	"bayou/internal/core"
	"bayou/internal/launch"
)

// The socket-transport conformance runs: the same substrate-blind scripts
// as driver_conformance_test.go, but with every replica a separate OS
// process (cmd/bayou-node) reached over TCP — the façade is the
// controller via WithPeers. Each test also runs the simulator and the
// in-process live substrate and demands all three agree on everything
// timing-independent, so the wire transport is pinned against both
// references in one assertion set.

// newSocketCluster spawns n bayou-node processes and connects a façade
// cluster to them over TCP. Node logs are kept (and printed) when the
// test fails, removed otherwise.
func newSocketCluster(t *testing.T, n int, nodeArgs []string, opts ...Option) *Cluster {
	t.Helper()
	d, err := launch.Start(n, nodeArgs...)
	if err != nil {
		t.Fatalf("launching %d bayou-node processes: %v", n, err)
	}
	t.Cleanup(func() {
		d.Stop()
		if t.Failed() {
			if logs := d.Logs(); logs != "" {
				t.Logf("node process logs:\n%s", logs)
			}
		} else {
			d.Cleanup()
		}
	})
	c, err := NewLive(append(append([]Option(nil), opts...), WithPeers(d.Addrs...))...)
	if err != nil {
		t.Fatalf("connecting to node processes: %v\nnode logs:\n%s", err, d.Logs())
	}
	return c
}

// TestDriverConformanceSocket runs the mixed weak/strong session script on
// all three substrates — simulator, in-process live, multi-process live —
// and demands equal settled counters, committed multisets, strong winners
// and checker verdicts.
func TestDriverConformanceSocket(t *testing.T) {
	sim, err := New(WithReplicas(3), WithSeed(1234))
	if err != nil {
		t.Fatal(err)
	}
	simOut := runConformance(t, sim)

	live, err := NewLive(WithReplicas(3))
	if err != nil {
		t.Fatal(err)
	}
	liveOut := runConformance(t, live)

	sock := newSocketCluster(t, 3, nil)
	sockOut := runConformance(t, sock)

	for _, out := range []struct {
		name string
		o    conformanceOutcome
	}{{"live", liveOut}, {"socket", sockOut}} {
		if !Equal(simOut.counter, out.o.counter) {
			t.Errorf("%s counter = %v, sim %v", out.name, out.o.counter, simOut.counter)
		}
		if out.o.lockOwners != 1 {
			t.Errorf("%s strong putIfAbsent winners = %d, want 1", out.name, out.o.lockOwners)
		}
		if len(simOut.committed) != len(out.o.committed) {
			t.Fatalf("committed sizes diverge: sim %v, %s %v", simOut.committed, out.name, out.o.committed)
		}
		for i := range simOut.committed {
			if simOut.committed[i] != out.o.committed[i] {
				t.Errorf("committed multisets diverge at %d: sim %s, %s %s", i, simOut.committed[i], out.name, out.o.committed[i])
			}
		}
		if !out.o.fecOK || !out.o.seqOK {
			t.Errorf("%s verdicts: FEC(weak) %v, Seq(strong) %v, want both true", out.name, out.o.fecOK, out.o.seqOK)
		}
	}
}

// TestDriverConformanceFaultsSocket runs the crash → invoke → recover →
// partition → heal script over real sockets and compares against the
// simulator. Crash/recover exercises the receiver-side discard semantics
// and the resync handshake over TCP; partition/heal exercises the
// controller-broadcast fault view parking envelopes at each node.
func TestDriverConformanceFaultsSocket(t *testing.T) {
	sim, err := New(WithReplicas(3), WithSeed(4321))
	if err != nil {
		t.Fatal(err)
	}
	simOut := runFaultConformance(t, sim)

	sock := newSocketCluster(t, 3, nil)
	sockOut := runFaultConformance(t, sock)

	if !Equal(simOut.counter, sockOut.counter) {
		t.Errorf("drivers disagree on the settled counter: sim %v, socket %v", simOut.counter, sockOut.counter)
	}
	if simOut.lockOwners != 1 || sockOut.lockOwners != 1 {
		t.Errorf("strong putIfAbsent winners: sim %d, socket %d, want 1 and 1", simOut.lockOwners, sockOut.lockOwners)
	}
	if len(simOut.committed) != len(sockOut.committed) {
		t.Fatalf("committed sizes diverge: sim %v, socket %v", simOut.committed, sockOut.committed)
	}
	for i := range simOut.committed {
		if simOut.committed[i] != sockOut.committed[i] {
			t.Errorf("committed multisets diverge at %d: sim %s, socket %s", i, simOut.committed[i], sockOut.committed[i])
		}
	}
	if !sockOut.fecOK || !sockOut.seqOK {
		t.Errorf("socket verdicts: FEC(weak) %v, Seq(strong) %v, want both true", sockOut.fecOK, sockOut.seqOK)
	}
}

// TestDriverConformanceTxnSocket runs the transfer-under-partition
// transaction script with every replica a separate OS process: the unit
// travels the invoke envelope as one operation, aborts atomically after its
// parked cast rebases behind the majority's strong slot, and the node
// processes must agree with the simulator on balances, counters, committed
// multisets, abort counts and checker verdicts.
func TestDriverConformanceTxnSocket(t *testing.T) {
	sim, err := New(WithReplicas(3), WithSeed(2468))
	if err != nil {
		t.Fatal(err)
	}
	simOut := runTxnConformance(t, sim)

	sock := newSocketCluster(t, 3, nil)
	sockOut := runTxnConformance(t, sock)

	assertTxnOutcome(t, "sim", simOut, simOut)
	assertTxnOutcome(t, "socket", simOut, sockOut)
}

// TestDriverConformanceCheckpointSocket runs the checkpoint-then-recover
// script over sockets: the recovering node process is behind every peer's
// checkpoint, so its catch-up must arrive as a checkpoint image in a
// state-transfer envelope (not a per-operation replay) before the commit
// suffix replays on top.
func TestDriverConformanceCheckpointSocket(t *testing.T) {
	sim, err := New(WithReplicas(3), WithSeed(8642))
	if err != nil {
		t.Fatal(err)
	}
	simOut := runCheckpointConformance(t, sim)

	sock := newSocketCluster(t, 3, nil)
	sockOut := runCheckpointConformance(t, sock)

	if !Equal(simOut.counter, sockOut.counter) {
		t.Errorf("drivers disagree on the settled counter: sim %v, socket %v", simOut.counter, sockOut.counter)
	}
	for r, base := range sockOut.bases {
		if base != 5 {
			t.Errorf("socket replica %d checkpoint base = %d, want 5 (state transfer not exercised?)", r, base)
		}
	}
	if !sockOut.fecOK || !sockOut.seqOK {
		t.Errorf("socket verdicts: FEC(weak) %v, Seq(strong) %v, want both true", sockOut.fecOK, sockOut.seqOK)
	}
}

// TestDriverConformanceGuaranteesSocket runs the Causal-session migration
// script over sockets: the frozen demand vectors ride the invoke envelope
// to the node process, which parks the gated read until the partition
// heals — coverage gating crosses the wire intact.
func TestDriverConformanceGuaranteesSocket(t *testing.T) {
	sim, err := New(WithReplicas(3), WithSeed(777))
	if err != nil {
		t.Fatal(err)
	}
	simOut := runGuaranteeConformance(t, sim)

	sock := newSocketCluster(t, 3, nil)
	sockOut := runGuaranteeConformance(t, sock)

	if !Equal(simOut.counter, sockOut.counter) {
		t.Errorf("drivers disagree on the settled counter: sim %v, socket %v", simOut.counter, sockOut.counter)
	}
	if !sockOut.fecOK || !sockOut.seqOK {
		t.Errorf("socket verdicts: FEC(weak) %v, CheckGuarantees %v, want both true", sockOut.fecOK, sockOut.seqOK)
	}
}

// TestSocketFaultSoak drives seeded fault schedules against replicas that
// are separate OS processes: crash/recover, partition/heal, checkpoint
// and compaction sweeps interleaved with weak, strong and
// guarantee-carrying traffic, then a repair finale, full convergence and
// the paper's checkers. The schedule generator is restricted to the
// live-expressible action set (no SlowLink, no crashing the sequencer),
// and every schedule is a pure function of its seed.
//
//	SOCKET_SOAK_RUNS=<n>  override the schedule count (default 3, 1 under -short)
//	SOCKET_SOAK_SEED=<s>  run a single schedule
func TestSocketFaultSoak(t *testing.T) {
	runs := 3
	if testing.Short() {
		runs = 1
	}
	if env := os.Getenv("SOCKET_SOAK_RUNS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("SOCKET_SOAK_RUNS=%q: %v", env, err)
		}
		runs = n
	}
	const base = 700_000
	if env := os.Getenv("SOCKET_SOAK_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("SOCKET_SOAK_SEED=%q: %v", env, err)
		}
		socketSoakRun(t, seed)
		return
	}
	for i := 0; i < runs; i++ {
		seed := int64(base + i)
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			socketSoakRun(t, seed)
		})
	}
}

// socketSoakRun executes one seeded schedule against a fresh 3-node
// subprocess deployment. Failures print the decoded action list and the
// node logs (via the cluster cleanup), and the seed re-runs alone with
// SOCKET_SOAK_SEED.
func socketSoakRun(t *testing.T, seed int64) {
	t.Helper()
	const n = 3
	var nodeArgs []string
	cadence := []int{0, 3}[seed%2]
	if cadence > 0 {
		nodeArgs = append(nodeArgs, "-checkpoint-every", strconv.Itoa(cadence))
	}
	c := newSocketCluster(t, n, nodeArgs)
	defer c.Close()

	var actions []string
	act := func(format string, args ...any) {
		actions = append(actions, fmt.Sprintf(format, args...))
	}
	fail := func(format string, args ...any) {
		t.Fatalf("seed %d: %s\nactions: %v\nreplay: SOCKET_SOAK_SEED=%d go test -run TestSocketFaultSoak .",
			seed, fmt.Sprintf(format, args...), actions, seed)
	}

	rng := rand.New(rand.NewSource(seed))
	crashed := make(map[int]bool)
	alive := func() []int {
		out := []int{0} // the sequencer cannot crash
		for i := 1; i < n; i++ {
			if !crashed[i] {
				out = append(out, i)
			}
		}
		return out
	}

	gs, err := c.Session(int(seed%n), WithGuarantees(ReadYourWrites|MonotonicReads))
	if err != nil {
		fail("guarantee session: %v", err)
	}
	act("guarantee session @%d; checkpoint cadence %d", gs.Replica(), cadence)
	gsIdle := func() bool { return gs.Last() == nil || gs.Last().Done() }

	steps := 10 + rng.Intn(8)
	for i := 0; i < steps; i++ {
		up := alive()
		switch rng.Intn(12) {
		case 0, 1, 2, 3: // weak invocation somewhere alive
			r := up[rng.Intn(len(up))]
			d := int64(1 + rng.Intn(5))
			s, err := c.Session(r)
			if err != nil {
				fail("session: %v", err)
			}
			if _, err := s.Invoke(Inc("ctr", d), Weak); err != nil {
				fail("weak inc@%d: %v", r, err)
			}
			act("weak inc(%d)@%d", d, r)
		case 4, 5: // strong invocation (no wait: may starve until the finale)
			r := up[rng.Intn(len(up))]
			s, err := c.Session(r)
			if err != nil {
				fail("session: %v", err)
			}
			if _, err := s.Invoke(PutIfAbsent("k"+strconv.Itoa(rng.Intn(2)), r), Strong); err != nil {
				fail("strong putIfAbsent@%d: %v", r, err)
			}
			act("strong putIfAbsent@%d", r)
		case 6: // crash a non-sequencer (keep a majority alive)
			if len(up) <= n/2+1 {
				continue
			}
			r := up[1+rng.Intn(len(up)-1)]
			if err := c.Crash(r); err != nil {
				fail("crash %d: %v", r, err)
			}
			crashed[r] = true
			act("crash %d", r)
		case 7: // recover
			for r := range crashed {
				if err := c.Recover(r); err != nil {
					fail("recover %d: %v", r, err)
				}
				delete(crashed, r)
				act("recover %d", r)
				break
			}
		case 8: // partition one replica against the rest
			r := rng.Intn(n)
			if err := c.Partition([]int{r}); err != nil {
				fail("partition {%d}: %v", r, err)
			}
			act("partition {%d} | rest", r)
		case 9: // heal
			if err := c.Heal(); err != nil {
				fail("heal: %v", err)
			}
			act("heal")
		case 10: // a guarded operation on the mobile session
			if crashed[gs.Replica()] || !gsIdle() {
				continue
			}
			if _, err := gs.Invoke(SetAdd("gset", strconv.Itoa(rng.Intn(8))), Weak); err != nil {
				fail("guarantee setAdd: %v", err)
			}
			act("guarantee setAdd@%d", gs.Replica())
		default: // migrate the guarantee session to a surviving replica
			if !gsIdle() {
				continue
			}
			r := up[rng.Intn(len(up))]
			if err := gs.Bind(r); err != nil {
				fail("guarantee bind %d: %v", r, err)
			}
			act("guarantee bind %d", r)
		}
	}

	// Finale: repair, settle, probe, settle — the stable suffix every
	// "eventually" clause needs.
	if err := c.Heal(); err != nil {
		fail("final heal: %v", err)
	}
	for r := range crashed {
		if err := c.Recover(r); err != nil {
			fail("final recover %d: %v", r, err)
		}
	}
	act("heal; recover all; settle")
	if err := c.Settle(); err != nil {
		fail("settle after repair: %v", err)
	}
	c.MarkStable()
	for r := 0; r < n; r++ {
		s, err := c.Session(r)
		if err != nil {
			fail("probe session: %v", err)
		}
		if _, err := s.Invoke(ListRead(), Weak); err != nil {
			fail("probe@%d: %v", r, err)
		}
	}
	if err := c.Settle(); err != nil {
		fail("settle after probes: %v", err)
	}

	// Liveness: every call terminal after repair.
	for _, call := range c.Calls() {
		if !call.Done() {
			fail("call %s (%s) never completed", call.Dot(), call.Op().Name())
		}
	}
	// Convergence: identical absolute committed lengths and registers.
	lens := make([]int, n)
	for r := 0; r < n; r++ {
		base, err := c.CheckpointedLen(r)
		if err != nil {
			fail("CheckpointedLen(%d): %v", r, err)
		}
		suffix, err := c.Driver().Committed(r)
		if err != nil {
			fail("Committed(%d): %v", r, err)
		}
		lens[r] = base + len(suffix)
	}
	for r := 1; r < n; r++ {
		if lens[r] != lens[0] {
			fail("absolute committed lengths diverge: %v", lens)
		}
	}
	for _, reg := range []string{"ctr", "gset", "k0", "k1"} {
		v0, err := c.Read(0, reg)
		if err != nil {
			fail("Read(0, %s): %v", reg, err)
		}
		for r := 1; r < n; r++ {
			vr, err := c.Read(r, reg)
			if err != nil {
				fail("Read(%d, %s): %v", r, reg, err)
			}
			if !Equal(v0, vr) {
				fail("register %q diverges: replica 0 %v, replica %d %v", reg, v0, r, vr)
			}
		}
	}
	// The paper's guarantees plus the mobile session's.
	h, err := c.History()
	if err != nil {
		fail("history: %v", err)
	}
	w := check.NewWitness(h)
	for name, rep := range map[string]check.Report{
		"FEC(weak)":   w.FEC(core.Weak),
		"Seq(strong)": w.Seq(core.Strong),
	} {
		if !rep.OK() {
			fail("%s violated:\n%s", name, rep)
		}
	}
	if rep := w.Guarantees(ReadYourWrites | MonotonicReads); !rep.OK() {
		fail("session guarantees violated:\n%s", rep)
	}
}
