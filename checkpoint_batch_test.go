package bayou

import "testing"

// TestCheckpointMidBatchRecovery is a regression test for a checkpoint
// capture bug: when a consensus slot carries a batch of TOB messages, the
// deliver callback for an early batch member could trigger a cadence
// checkpoint while later members were still pending inside the unpack loop.
// The captured record then claimed the post-batch slot boundary yet missed
// the batch tail, and the log truncation destroyed the only replayable copy
// — a replica recovering from that record could never obtain the tail and
// silently diverged (here: replica 1 wedging at 11 committed entries while
// its peers reach 14). The TOB now defers capture while a batch is
// mid-unpack (see tob.Paxos.SetCheckpoint).
//
// The schedule is distilled from fault-soak seed 900055: the crash window
// plus the strong ops under partition make the post-recovery commits land in
// one batched slot straddling the cadence-3 checkpoint boundary.
func TestCheckpointMidBatchRecovery(t *testing.T) {
	c, err := New(WithReplicas(3), WithSeed(900055), WithVariant(Original), WithCheckpointEvery(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	weak := func(r int, op Op) {
		t.Helper()
		s, err := c.Session(r)
		must(err)
		_, err = s.Invoke(op, Weak)
		must(err)
	}
	strong := func(r int, op Op) {
		t.Helper()
		s, err := c.Session(r)
		must(err)
		_, err = s.Invoke(op, Strong)
		must(err)
	}

	must(c.ElectLeader(0))
	gs, err := c.Session(1, WithGuarantees(Causal), WithGuaranteeMode(FailFast))
	must(err)

	weak(0, Inc("ctr", 100))
	_, err = gs.Invoke(SetAdd("gset", "6"), Weak)
	must(err)
	_, err = c.Checkpoint()
	must(err)
	weak(0, Append("c"))
	weak(2, Append("c"))
	must(c.SlowLink(2, 1, 4))
	must(c.Heal())
	weak(2, Inc("ctr", 1))
	must(c.Crash(1))
	must(c.Partition([]int{1}))
	weak(0, Inc("ctr", 63))
	strong(2, Duplicate())
	strong(0, Inc("ctr", 2))
	strong(0, PutIfAbsent("k0", 0))
	must(c.Heal())
	_, err = c.Checkpoint()
	must(err)
	weak(2, SetAdd("s", "1"))
	weak(0, Inc("ctr", 5))
	c.Run(213)
	_, err = c.Compact()
	must(err)

	must(c.Heal())
	must(c.Recover(1))
	must(c.ElectLeader(0))
	must(c.Settle())
	c.MarkStable()
	for r := 0; r < 3; r++ {
		weak(r, ListRead())
	}
	must(c.Settle())

	lens := make([]int, 3)
	for r := 0; r < 3; r++ {
		base, err := c.CheckpointedLen(r)
		must(err)
		suffix, err := c.Driver().Committed(r)
		must(err)
		lens[r] = base + len(suffix)
	}
	for r := 1; r < 3; r++ {
		if lens[r] != lens[0] {
			t.Fatalf("absolute committed lengths diverged after recovery: %v", lens)
		}
	}
}
