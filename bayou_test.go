package bayou

import (
	"errors"
	"strings"
	"testing"
)

// invokeAt mints a throwaway session on the replica and invokes op on it —
// the one-shot form of the session API (the seed façade's per-replica
// Invoke, now expressed in terms of sessions).
func invokeAt(t *testing.T, c *Cluster, replica int, op Op, level Level) (*Call, error) {
	t.Helper()
	s, err := c.Session(replica)
	if err != nil {
		return nil, err
	}
	return s.Invoke(op, level)
}

func TestQuickstartFlow(t *testing.T) {
	c, err := New(WithReplicas(3), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	s1, err := c.Session(1)
	if err != nil {
		t.Fatal(err)
	}
	weak, err := s1.Invoke(Append("hello"), Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !weak.Done() {
		t.Fatal("Modified-variant weak call must complete within the invoke step")
	}
	s2, err := c.Session(2)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := s2.Invoke(PutIfAbsent("lock", "owner2"), Strong)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !strong.Done() {
		t.Fatal("strong call must complete in a stable run")
	}
	if strong.Response().Value != true {
		t.Errorf("putIfAbsent = %v, want true", strong.Response().Value)
	}
	if !strong.Response().Committed {
		t.Error("strong responses are stable")
	}
	if weak.Response().Committed {
		t.Error("weak responses are tentative")
	}
}

func TestDefaultsAndValidation(t *testing.T) {
	c, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if c.Replicas() != 3 {
		t.Errorf("default replicas = %d, want 3", c.Replicas())
	}
	if _, err := invokeAt(t, c, 99, Append("x"), Weak); err == nil {
		t.Error("out-of-range replica must error")
	}
	if _, err := invokeAt(t, c, -1, Append("x"), Weak); err == nil {
		t.Error("negative replica must error")
	}
	if _, err := c.Session(99); err == nil {
		t.Error("out-of-range session replica must error")
	}
	if _, err := New(WithReplicas(0)); err == nil {
		t.Error("WithReplicas(0) must error")
	}
}

// TestVariantValidation covers the explicit-default satellite: the zero
// value means "default" by name, and everything outside the declared
// variants is rejected instead of silently resolving to Modified.
func TestVariantValidation(t *testing.T) {
	if _, err := New(WithVariant(VariantDefault)); err != nil {
		t.Errorf("VariantDefault must be accepted: %v", err)
	}
	if _, err := New(WithVariant(Original)); err != nil {
		t.Errorf("Original must be accepted: %v", err)
	}
	if _, err := New(WithVariant(Variant(42))); err == nil {
		t.Error("unknown variant must be rejected by WithVariant")
	}
}

// TestDeterministicConstruction: identical functional options build
// identical simulations (same seed → same committed order).
func TestDeterministicConstruction(t *testing.T) {
	run := func(c *Cluster, err error) []string {
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ElectLeader(0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := invokeAt(t, c, i, Append("x"), Weak); err != nil {
				t.Fatal(err)
			}
			c.Run(7)
		}
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		order, err := c.Committed(0)
		if err != nil {
			t.Fatal(err)
		}
		return order
	}
	a := run(New(WithReplicas(3), WithSeed(77), WithStepBatch(4)))
	b := run(New(WithReplicas(3), WithSeed(77), WithStepBatch(4)))
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("same options and seed diverge: %v vs %v", a, b)
	}
}

func TestSessionSequentialityEnforced(t *testing.T) {
	c, err := New(WithReplicas(3), WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	// No leader: the strong call pends, the session stays busy.
	s, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke(Append("x"), Strong); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke(Append("y"), Weak); !errors.Is(err, ErrSessionBusy) {
		t.Errorf("busy session must reject a second invocation, got %v", err)
	}
	// A busy session cannot migrate either: its continuation is owed by
	// the replica holding it.
	if err := s.Bind(1); !errors.Is(err, ErrSessionBusy) {
		t.Errorf("busy session must reject re-binding, got %v", err)
	}
	// Other sessions on the same replica are unaffected.
	if _, err := invokeAt(t, c, 0, Append("y"), Weak); err != nil {
		t.Errorf("a busy session must not block its replica: %v", err)
	}
}

func TestPartitionHealAndConvergence(t *testing.T) {
	c, err := New(WithReplicas(4), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Partition([]int{0, 1}, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	a, err := invokeAt(t, c, 0, Append("left"), Weak)
	if err != nil {
		t.Fatal(err)
	}
	b, err := invokeAt(t, c, 3, Append("right"), Weak)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2_000)
	if !a.Done() || !b.Done() {
		t.Fatal("weak calls must complete inside partitions")
	}
	if err := c.Heal(); err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	ref, err := c.Read(0, "list")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		got, err := c.Read(i, "list")
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			t.Fatalf("replica %d missing state", i)
		}
		if len(got.([]Value)) != len(ref.([]Value)) {
			t.Fatalf("replica %d diverged", i)
		}
	}
	order, err := c.Committed(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Errorf("committed = %v, want both appends", order)
	}
}

func TestCheckersOnFacadeRun(t *testing.T) {
	c, err := New(WithReplicas(3), WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	if _, err := invokeAt(t, c, 0, Append("a"), Weak); err != nil {
		t.Fatal(err)
	}
	if _, err := invokeAt(t, c, 1, Duplicate(), Strong); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	c.MarkStable()
	if _, err := invokeAt(t, c, 2, ListRead(), Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	fec, err := c.CheckFEC(Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !fec.OK() {
		t.Errorf("FEC(weak) must hold:\n%s", fec)
	}
	seq, err := c.CheckSeq(Strong)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.OK() {
		t.Errorf("Seq(strong) must hold:\n%s", seq)
	}
	if _, err := c.CheckBEC(Weak); err != nil {
		t.Fatal(err)
	}
	tl, err := c.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tl, "append(a)") || !strings.Contains(tl, "duplicate()") {
		t.Errorf("timeline incomplete:\n%s", tl)
	}
}

func TestPrimaryTOBOption(t *testing.T) {
	c, err := New(WithReplicas(3), WithSeed(17), WithPrimaryTOB())
	if err != nil {
		t.Fatal(err)
	}
	call, err := invokeAt(t, c, 1, Append("x"), Strong)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !call.Done() {
		t.Error("primary TOB must commit in a healthy run")
	}
}

func TestRollbacksCounter(t *testing.T) {
	c, err := New(WithReplicas(2), WithSeed(19), WithVariant(Original), WithClockSlowdown(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	// Concurrent rounds: replica 1's skewed (low) timestamps order its
	// requests before replica 0's already-executed ones, forcing
	// rollbacks when they gossip across.
	for i := 0; i < 6; i++ {
		if _, err := invokeAt(t, c, 0, Append("f"), Weak); err != nil {
			t.Fatal(err)
		}
		if _, err := invokeAt(t, c, 1, Append("s"), Weak); err != nil {
			t.Fatal(err)
		}
		c.Run(60)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	rollbacks, err := c.Rollbacks()
	if err != nil {
		t.Fatal(err)
	}
	if rollbacks == 0 {
		t.Error("skewed clocks must cause rollbacks")
	}
}

func TestStableNoticeViaFacade(t *testing.T) {
	c, err := New(WithReplicas(2), WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	call, err := invokeAt(t, c, 1, Append("n"), Weak)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := call.Stable(); ok {
		t.Fatal("stable notice cannot precede commit")
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	stable, ok := call.Stable()
	if !ok {
		t.Fatal("stable notice must arrive after commit")
	}
	if stable.Value != "n" || !stable.Committed {
		t.Errorf("stable response = %+v", stable)
	}
}

func TestEditorOpsViaFacade(t *testing.T) {
	c, err := New(WithReplicas(2), WithSeed(27))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	if _, err := invokeAt(t, c, 0, Insert("d", 0, "world"), Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if _, err := invokeAt(t, c, 1, Insert("d", 0, "hello "), Weak); err != nil {
		t.Fatal(err)
	}
	if _, err := invokeAt(t, c, 0, Delete("d", 0, 0), Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	read, err := invokeAt(t, c, 0, DocRead("d"), Strong)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if read.Response().Value != "hello world" {
		t.Errorf("document = %v, want hello world", read.Response().Value)
	}
}

func TestCompactViaFacade(t *testing.T) {
	c, err := New(WithReplicas(2), WithSeed(29))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := invokeAt(t, c, i%2, Append("x"), Weak); err != nil {
			t.Fatal(err)
		}
		c.Run(60)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	freed, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if freed == 0 {
		t.Error("compaction must free committed undo entries")
	}
	// The cluster keeps working after compaction.
	if _, err := invokeAt(t, c, 0, Append("y"), Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveDriverUnsupportedControls: the live substrate is explicit about
// what it cannot express instead of silently ignoring it.
func TestLiveDriverUnsupportedControls(t *testing.T) {
	c, err := NewLive(WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ElectLeader(0); err != nil {
		t.Errorf("electing the sequencer must succeed: %v", err)
	}
	if err := c.ElectLeader(1); !errors.Is(err, ErrUnsupported) {
		t.Errorf("electing a non-sequencer must be unsupported, got %v", err)
	}
	if err := c.Partition([]int{0}, []int{1}); err != nil {
		t.Errorf("live partitions are part of the fault plane, got %v", err)
	}
	if err := c.Heal(); err != nil {
		t.Errorf("live heal: %v", err)
	}
	if err := c.SlowLink(0, 1, 4); !errors.Is(err, ErrUnsupported) {
		t.Errorf("live link slowdown must be unsupported, got %v", err)
	}
	if err := c.Crash(0); err == nil || errors.Is(err, ErrUnsupported) {
		t.Errorf("crashing the live sequencer must fail with a substrate error, got %v", err)
	}
	if err := c.Destabilize(); !errors.Is(err, ErrUnsupported) {
		t.Errorf("live destabilize must be unsupported, got %v", err)
	}
	if _, err := NewLive(WithClockSlowdown(1, 8)); !errors.Is(err, ErrUnsupported) {
		t.Errorf("live clock skew must be rejected at construction, got %v", err)
	}
	if _, err := NewLive(WithLatency(25)); !errors.Is(err, ErrUnsupported) {
		t.Errorf("live link latency must be rejected at construction, got %v", err)
	}
}
