package bayou

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	c, err := New(Options{Replicas: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c.ElectLeader(0)
	weak, err := c.Invoke(1, Append("hello"), Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !weak.Done {
		t.Fatal("Modified-variant weak call must complete within the invoke step")
	}
	strong, err := c.Invoke(2, PutIfAbsent("lock", "owner2"), Strong)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !strong.Done {
		t.Fatal("strong call must complete in a stable run")
	}
	if strong.Response.Value != true {
		t.Errorf("putIfAbsent = %v, want true", strong.Response.Value)
	}
	if !strong.Response.Committed {
		t.Error("strong responses are stable")
	}
	if weak.Response.Committed {
		t.Error("weak responses are tentative")
	}
}

func TestDefaultsAndValidation(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(99, Append("x"), Weak); err == nil {
		t.Error("out-of-range replica must error")
	}
	if _, err := c.Invoke(-1, Append("x"), Weak); err == nil {
		t.Error("negative replica must error")
	}
}

func TestSessionSequentialityEnforced(t *testing.T) {
	c, err := New(Options{Replicas: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// No leader: the strong call pends, the session stays busy.
	if _, err := c.Invoke(0, Append("x"), Strong); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(0, Append("y"), Weak); err == nil {
		t.Error("busy session must reject a second invocation")
	}
}

func TestPartitionHealAndConvergence(t *testing.T) {
	c, err := New(Options{Replicas: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c.ElectLeader(2)
	c.Partition([]int{0, 1}, []int{2, 3})
	a, err := c.Invoke(0, Append("left"), Weak)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Invoke(3, Append("right"), Weak)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2_000)
	if !a.Done || !b.Done {
		t.Fatal("weak calls must complete inside partitions")
	}
	c.Heal()
	c.ElectLeader(2)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	ref := c.Read(0, "list")
	for i := 1; i < 4; i++ {
		if c.Read(i, "list") == nil {
			t.Fatalf("replica %d missing state", i)
		}
	}
	for i := 1; i < 4; i++ {
		got := c.Read(i, "list")
		if len(got.([]Value)) != len(ref.([]Value)) {
			t.Fatalf("replica %d diverged", i)
		}
	}
	if len(c.Committed(0)) != 2 {
		t.Errorf("committed = %v, want both appends", c.Committed(0))
	}
}

func TestCheckersOnFacadeRun(t *testing.T) {
	c, err := New(Options{Replicas: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	c.ElectLeader(0)
	if _, err := c.Invoke(0, Append("a"), Weak); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(1, Duplicate(), Strong); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	c.MarkStable()
	if _, err := c.Invoke(2, ListRead(), Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	fec, err := c.CheckFEC(Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !fec.OK() {
		t.Errorf("FEC(weak) must hold:\n%s", fec)
	}
	seq, err := c.CheckSeq(Strong)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.OK() {
		t.Errorf("Seq(strong) must hold:\n%s", seq)
	}
	if _, err := c.CheckBEC(Weak); err != nil {
		t.Fatal(err)
	}
	tl, err := c.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tl, "append(a)") || !strings.Contains(tl, "duplicate()") {
		t.Errorf("timeline incomplete:\n%s", tl)
	}
}

func TestPrimaryTOBOption(t *testing.T) {
	c, err := New(Options{Replicas: 3, Seed: 17, UsePrimaryTOB: true})
	if err != nil {
		t.Fatal(err)
	}
	call, err := c.Invoke(1, Append("x"), Strong)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !call.Done {
		t.Error("primary TOB must commit in a healthy run")
	}
}

func TestRollbacksCounter(t *testing.T) {
	c, err := New(Options{Replicas: 2, Seed: 19, Variant: Original, ClockSlowdown: map[int]int64{1: 8}})
	if err != nil {
		t.Fatal(err)
	}
	c.ElectLeader(0)
	// Concurrent rounds: replica 1's skewed (low) timestamps order its
	// requests before replica 0's already-executed ones, forcing
	// rollbacks when they gossip across.
	for i := 0; i < 6; i++ {
		if _, err := c.Invoke(0, Append("f"), Weak); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Invoke(1, Append("s"), Weak); err != nil {
			t.Fatal(err)
		}
		c.Run(60)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if c.Rollbacks() == 0 {
		t.Error("skewed clocks must cause rollbacks")
	}
}

func TestStableNoticeViaFacade(t *testing.T) {
	c, err := New(Options{Replicas: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	c.ElectLeader(0)
	call, err := c.Invoke(1, Append("n"), Weak)
	if err != nil {
		t.Fatal(err)
	}
	if call.StableDone {
		t.Fatal("stable notice cannot precede commit")
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !call.StableDone {
		t.Fatal("stable notice must arrive after commit")
	}
	if call.StableResponse.Value != "n" || !call.StableResponse.Committed {
		t.Errorf("stable response = %+v", call.StableResponse)
	}
}

func TestEditorOpsViaFacade(t *testing.T) {
	c, err := New(Options{Replicas: 2, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	c.ElectLeader(0)
	if _, err := c.Invoke(0, Insert("d", 0, "world"), Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(1, Insert("d", 0, "hello "), Weak); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(0, Delete("d", 0, 0), Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	read, err := c.Invoke(0, DocRead("d"), Strong)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if read.Response.Value != "hello world" {
		t.Errorf("document = %v, want hello world", read.Response.Value)
	}
}

func TestCompactViaFacade(t *testing.T) {
	c, err := New(Options{Replicas: 2, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	c.ElectLeader(0)
	for i := 0; i < 5; i++ {
		if _, err := c.Invoke(i%2, Append("x"), Weak); err != nil {
			t.Fatal(err)
		}
		c.Run(60)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	freed := c.Compact()
	if freed == 0 {
		t.Error("compaction must free committed undo entries")
	}
	// The cluster keeps working after compaction.
	if _, err := c.Invoke(0, Append("y"), Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
}
