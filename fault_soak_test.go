package bayou

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"bayou/internal/check"
	"bayou/internal/core"
)

// The seeded fault-schedule soak: random schedules of crash/recover/
// partition/heal/slow-link interleaved with weak and strong invocations,
// across both protocol variants, each run settled and held to the paper's
// guarantees. Every schedule is a pure function of its seed, so a failure
// is replayable: the test dumps the seed, the decoded schedule, and the
// history as a JSON artifact and prints how to re-run just that seed.
//
//	FAULT_SOAK_SEED=<seed>  re-run a single schedule (both variants)
//	FAULT_SOAK_RUNS=<n>     override the schedule count per variant
//	FAULT_SOAK_DIR=<dir>    artifact directory (default: os.TempDir())

// soakReplicas is the deployment size of every soak schedule: large enough
// for a majority to survive a crash plus a partition, small enough to keep
// 200+ schedules fast.
const soakReplicas = 3

// soakAccounts bank registers share the seeded soakTotal; the schedule's
// transfer units shuffle it between them and the checkers hold the sum
// conserved at every boundary (transactional atomicity).
const (
	soakAccounts = 3
	soakTotal    = 100
)

// soakSchedule is the decoded action list, kept as strings so the artifact
// is readable and diffable.
type soakSchedule struct {
	Seed    int64    `json:"seed"`
	Variant string   `json:"variant"`
	Actions []string `json:"actions"`
}

// soakArtifact is the failure dump.
type soakArtifact struct {
	Schedule soakSchedule      `json:"schedule"`
	Failure  string            `json:"failure"`
	History  []soakArtifactEvt `json:"history"`
}

type soakArtifactEvt struct {
	Dot       string `json:"dot"`
	Session   int64  `json:"session"`
	Op        string `json:"op"`
	Level     string `json:"level"`
	Value     string `json:"rval"`
	Pending   bool   `json:"pending"`
	Invoke    int64  `json:"invoke"`
	Return    int64  `json:"return"`
	Timestamp int64  `json:"timestamp"`
	TOBNo     int64  `json:"tobNo"`
}

// soakRun executes one seeded schedule and returns the decoded actions plus
// the first guarantee violation (empty when the run is clean). Construction
// or scripting errors are returned as err. The cluster is returned (possibly
// nil on construction errors) so a failure can dump its history; the caller
// closes it.
func soakRun(seed int64, variant Variant) (sched soakSchedule, failure string, c *Cluster, err error) {
	sched = soakSchedule{Seed: seed, Variant: variant.String()}
	// The checkpoint cadence is swept by seed: off, aggressive, or relaxed —
	// so the corpus soaks checkpoint-vs-crash races (state transfer to
	// recovering replicas, truncated RB/TOB replay, lost-result
	// continuations) alongside the plain fault schedules.
	cadence := []int{0, 3, 9}[((seed/4)%3+3)%3]
	// Half the corpus runs with leader leases on, so the lease fast path is
	// soaked against the same crash/partition schedules as consensus proper
	// — including crashing or partitioning the lease holder mid-window.
	lease := ((seed/8)%2+2)%2 == 1
	opts := []Option{WithReplicas(soakReplicas), WithSeed(seed), WithVariant(variant), WithCheckpointEvery(cadence)}
	if lease {
		opts = append(opts, WithLeaderLease())
	}
	c, err = New(opts...)
	if err != nil {
		return sched, "", nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	act := func(format string, args ...any) {
		sched.Actions = append(sched.Actions, fmt.Sprintf(format, args...))
	}

	leader := rng.Intn(soakReplicas)
	if err := c.ElectLeader(leader); err != nil {
		return sched, "", c, err
	}
	act("elect %d (lease %v)", leader, lease)

	crashed := make(map[int]bool)
	alive := func() []int {
		out := make([]int, 0, soakReplicas)
		for i := 0; i < soakReplicas; i++ {
			if !crashed[i] {
				out = append(out, i)
			}
		}
		return out
	}
	invoke := func(replica int, op Op, level Level, name string) error {
		// A fresh session per invocation keeps every session trivially
		// sequential, so schedules never trip over ErrSessionBusy while a
		// strong call pends across faults.
		s, err := c.Session(replica)
		if err != nil {
			return err
		}
		if _, err := s.Invoke(op, level); err != nil {
			return err
		}
		act("%s@%d", name, replica)
		return nil
	}

	// One guarantee-carrying mobile session rides the whole schedule: it
	// migrates between surviving replicas and keeps issuing weak reads and
	// writes under its guarantees. The seed picks the mask (the read pair,
	// or the full Causal bundle with its write-ordering demands) and the
	// coverage mode, so the corpus exercises parking (calls pend until the
	// finale repairs the deployment) as well as fail-fast rejection.
	mode := WaitForCoverage
	if seed%2 == 1 {
		mode = FailFast
	}
	mask := ReadYourWrites | MonotonicReads
	if (seed/2)%2 == 1 {
		mask = Causal
	}
	gs, err := c.Session(int(((seed%soakReplicas)+soakReplicas)%soakReplicas), WithGuarantees(mask), WithGuaranteeMode(mode))
	if err != nil {
		return sched, "", c, err
	}
	act("guarantee session @%d (%s, %s); checkpoint cadence %d", gs.Replica(), mask, mode, cadence)
	gsIdle := func() bool { return gs.Last() == nil || gs.Last().Done() }

	// Fund one account up front. The schedule's transfer units move money
	// between the soakTotal-seeded accounts but never mint or destroy it,
	// so conservation of the sum is exactly transactional atomicity: any
	// torn unit — a withdraw whose paired deposit is missing, on any
	// replica, at any boundary — breaks it.
	if err := invoke(leader, Deposit("a0", soakTotal), Weak, fmt.Sprintf("seed deposit(a0,%d)", soakTotal)); err != nil {
		return sched, "", c, err
	}
	acct := func() string { return "a" + strconv.Itoa(rng.Intn(soakAccounts)) }
	transferUnit := func(level Level, name string) error {
		r := alive()[rng.Intn(len(alive()))]
		from, to := acct(), acct()
		amt := int64(1 + rng.Intn(80))
		op := TxnOp(Require(Withdraw(from, amt)), Do(Deposit(to, amt)))
		return invoke(r, op, level, fmt.Sprintf("%s txn %s→%s %d", name, from, to, amt))
	}

	steps := 12 + rng.Intn(10)
	for i := 0; i < steps; i++ {
		up := alive()
		switch rng.Intn(18) {
		case 0, 1, 2, 3: // weak invocation somewhere alive
			r := up[rng.Intn(len(up))]
			var op Op
			var name string
			switch rng.Intn(3) {
			case 0:
				e := string(rune('a' + rng.Intn(4)))
				op, name = Append(e), "append("+e+")"
			case 1:
				d := int64(1 + rng.Intn(5))
				op, name = Inc("ctr", d), fmt.Sprintf("inc(%d)", d)
			default:
				op, name = SetAdd("s", strconv.Itoa(rng.Intn(6))), "setAdd"
			}
			if err := invoke(r, op, Weak, "weak "+name); err != nil {
				return sched, "", c, err
			}
		case 4, 5: // strong invocation (no wait: it may starve until the finale)
			r := up[rng.Intn(len(up))]
			var op Op
			var name string
			switch rng.Intn(3) {
			case 0:
				op, name = Duplicate(), "dup"
			case 1:
				op, name = PutIfAbsent("k"+strconv.Itoa(rng.Intn(2)), r), "putIfAbsent"
			default:
				// Read-only: eligible for local lease service at the
				// leader when leases are on, consensus otherwise — the
				// checker holds both paths to the same Seq(strong).
				op, name = Get("ctr"), "get"
			}
			if err := invoke(r, op, Strong, "strong "+name); err != nil {
				return sched, "", c, err
			}
		case 6: // crash (keep a majority alive so the run can make progress)
			if len(up) <= soakReplicas/2+1 {
				continue
			}
			r := up[rng.Intn(len(up))]
			if err := c.Crash(r); err != nil {
				return sched, "", c, err
			}
			crashed[r] = true
			act("crash %d", r)
		case 7: // recover
			if len(crashed) == 0 {
				continue
			}
			for r := range crashed {
				if err := c.Recover(r); err != nil {
					return sched, "", c, err
				}
				delete(crashed, r)
				act("recover %d", r)
				break
			}
		case 8: // partition: one replica against the rest
			r := rng.Intn(soakReplicas)
			if err := c.Partition([]int{r}); err != nil {
				return sched, "", c, err
			}
			act("partition {%d} | rest", r)
		case 9: // heal
			if err := c.Heal(); err != nil {
				return sched, "", c, err
			}
			act("heal")
		case 10: // slow link
			a, b := rng.Intn(soakReplicas), rng.Intn(soakReplicas)
			f := int64(2 + rng.Intn(9))
			if a != b {
				if err := c.SlowLink(a, b, f); err != nil {
					return sched, "", c, err
				}
				act("slowlink %d-%d ×%d", a, b, f)
			}
		case 11: // migrate the guarantee session to a surviving replica
			r := up[rng.Intn(len(up))]
			if !gsIdle() {
				continue // a parked call pins the session to its replica
			}
			if err := gs.Bind(r); err != nil {
				return sched, "", c, err
			}
			act("guarantee bind %d", r)
		case 12: // a guarded operation on the mobile session
			if crashed[gs.Replica()] || !gsIdle() {
				continue
			}
			var op Op
			var name string
			if rng.Intn(2) == 0 {
				e := strconv.Itoa(rng.Intn(8))
				op, name = SetAdd("gset", e), "setAdd("+e+")"
			} else {
				op, name = SetElements("gset"), "read"
			}
			_, err := gs.Invoke(op, Weak)
			switch {
			case err == nil:
				act("guarantee %s@%d", name, gs.Replica())
			case errors.Is(err, ErrGuarantee):
				act("guarantee %s@%d rejected (fail-fast)", name, gs.Replica())
			default:
				return sched, "", c, err
			}
		case 13: // manual checkpoint sweep (truncates logs on every live replica)
			if _, err := c.Checkpoint(); err != nil {
				return sched, "", c, err
			}
			act("checkpoint")
		case 14: // undo-log compaction
			if _, err := c.Compact(); err != nil {
				return sched, "", c, err
			}
			act("compact")
		case 15: // a weak transfer unit: rebases as one; the tentative verdict may flip at the fixed position
			if err := transferUnit(Weak, "weak"); err != nil {
				return sched, "", c, err
			}
		case 16: // a strong transfer unit: one consensus slot (no wait: it may starve until the finale)
			if err := transferUnit(Strong, "strong"); err != nil {
				return sched, "", c, err
			}
		default: // let the deployment run
			d := int64(50 + rng.Intn(400))
			c.Run(d)
			act("run %d", d)
		}
	}

	// Finale: repair everything so the "eventually" clauses have their
	// stable suffix — heal, recover, elect, settle, probe, settle.
	if err := c.Heal(); err != nil {
		return sched, "", c, err
	}
	for r := range crashed {
		if err := c.Recover(r); err != nil {
			return sched, "", c, err
		}
	}
	if err := c.ElectLeader(0); err != nil {
		return sched, "", c, err
	}
	act("heal; recover all; elect 0; settle")
	if err := c.Settle(); err != nil {
		return sched, fmt.Sprintf("settle after repair: %v", err), c, nil
	}
	c.MarkStable()
	for r := 0; r < soakReplicas; r++ {
		if err := invoke(r, ListRead(), Weak, "probe"); err != nil {
			return sched, "", c, err
		}
	}
	if err := c.Settle(); err != nil {
		return sched, fmt.Sprintf("settle after probes: %v", err), c, nil
	}

	// Liveness: after repair every call must be terminal. A call completed
	// as a lost result (its replica was down when the op committed, and the
	// recovery caught up by checkpoint state transfer, so the return value
	// was never computed anywhere) counts: the client was released and the
	// operation's effect is in every replica's state.
	lost := 0
	for _, call := range c.Calls() {
		if !call.Done() {
			return sched, fmt.Sprintf("call %s (%s) never completed", call.Dot(), call.Op().Name()), c, nil
		}
		if call.Lost() {
			lost++
		}
	}
	if lost > 0 {
		act("%d lost results (state transfer over pending continuations)", lost)
	}
	// Convergence: identical *absolute* committed orders — resident logs are
	// suffixes hanging off per-replica checkpoint bases, so replicas are
	// compared at absolute positions (length equality plus dot-for-dot
	// agreement on the region past the larger of each pair's bases) — and
	// identical registers.
	type absLog struct {
		base   int
		suffix []core.Req
	}
	logs := make([]absLog, soakReplicas)
	for r := 0; r < soakReplicas; r++ {
		base, err := c.CheckpointedLen(r)
		if err != nil {
			return sched, "", c, err
		}
		suffix, err := c.Driver().Committed(r)
		if err != nil {
			return sched, "", c, err
		}
		logs[r] = absLog{base: base, suffix: suffix}
	}
	for r := 1; r < soakReplicas; r++ {
		a, b := logs[0], logs[r]
		if a.base+len(a.suffix) != b.base+len(b.suffix) {
			return sched, fmt.Sprintf("absolute committed lengths diverge: replica 0 %d, replica %d %d",
				a.base+len(a.suffix), r, b.base+len(b.suffix)), c, nil
		}
		from := a.base
		if b.base > from {
			from = b.base
		}
		for pos := from; pos < a.base+len(a.suffix); pos++ {
			da, db := a.suffix[pos-a.base].Dot, b.suffix[pos-b.base].Dot
			if da != db {
				return sched, fmt.Sprintf("committed order diverges at absolute %d: replica %d has %s, replica 0 %s", pos, r, db, da), c, nil
			}
		}
	}
	for _, reg := range []string{"list", "ctr", "s", "k0", "k1", "acct/a0", "acct/a1", "acct/a2"} {
		v0, err := c.Read(0, reg)
		if err != nil {
			return sched, "", c, err
		}
		for r := 1; r < soakReplicas; r++ {
			vr, err := c.Read(r, reg)
			if err != nil {
				return sched, "", c, err
			}
			if !Equal(v0, vr) {
				return sched, fmt.Sprintf("register %q diverges: replica 0 %v, replica %d %v", reg, v0, r, vr), c, nil
			}
		}
	}
	// The paper's guarantees under the adversarial schedule — per variant:
	// the modified protocol (Algorithm 2) owes full FEC at both levels,
	// BEC(strong) and Seq(strong); the original (Algorithm 1) deliberately
	// violates NCC (circular causality, Figure 2), so it is held to every
	// FEC component except NCC, plus Seq(strong). BEC(weak) is asserted
	// for neither: trading it away on reordered schedules is the subject
	// of the paper.
	h, err := c.History()
	if err != nil {
		return sched, "", c, err
	}
	w := check.NewWitness(h)
	if variant == Modified {
		for name, rep := range map[string]check.Report{
			"FEC(weak)":   w.FEC(core.Weak),
			"FEC(strong)": w.FEC(core.Strong),
			"BEC(strong)": w.BEC(core.Strong),
			"Seq(strong)": w.Seq(core.Strong),
		} {
			if !rep.OK() {
				return sched, fmt.Sprintf("%s violated:\n%s", name, rep), c, nil
			}
		}
	} else {
		for _, res := range []check.Result{
			w.EV(),
			w.FRVal(core.Weak), w.CPar(core.Weak),
			w.FRVal(core.Strong), w.CPar(core.Strong),
		} {
			if !res.Holds {
				return sched, fmt.Sprintf("FEC component violated: %s", res), c, nil
			}
		}
		if rep := w.Seq(core.Strong); !rep.OK() {
			return sched, fmt.Sprintf("Seq(strong) violated:\n%s", rep), c, nil
		}
	}
	// Transactional atomicity, both variants: every unit's abort verdict
	// coheres with whole-unit replay, strong units anchor in distinct
	// slots, and the conservation invariant holds at every whole-op
	// boundary of every perceived context and of the arbitration order —
	// no schedule may ever have witnessed half a transfer.
	if rep := w.TxnAtomicity(check.SumConserved("acct/", 0, soakTotal)); !rep.OK() {
		return sched, fmt.Sprintf("TxnAtomicity violated:\n%s", rep), c, nil
	}
	// And at the converged store itself: the accounts still hold exactly
	// the seeded total.
	var sum int64
	for i := 0; i < soakAccounts; i++ {
		v, err := c.Read(0, "acct/a"+strconv.Itoa(i))
		if err != nil {
			return sched, "", c, err
		}
		if n, ok := v.(int64); ok {
			sum += n
		}
	}
	if sum != soakTotal {
		return sched, fmt.Sprintf("account sum = %d, want the seeded %d (a torn transfer minted or destroyed money)", sum, soakTotal), c, nil
	}
	// The mobile guarantee session owes its guarantees on every schedule,
	// whatever it survived: migrations, crashes of its replica, partitions,
	// fail-fast rejections.
	if rep := w.Guarantees(mask); !rep.OK() {
		return sched, fmt.Sprintf("session guarantees (%s) violated:\n%s", mask, rep), c, nil
	}

	// On failure the caller dumps the artifact; hand it the history.
	return sched, "", c, nil
}

// dumpSoakArtifact writes the replayable failure dump and returns its path.
func dumpSoakArtifact(t *testing.T, c *Cluster, sched soakSchedule, failure string) string {
	t.Helper()
	art := soakArtifact{Schedule: sched, Failure: failure}
	if c != nil {
		if h, err := c.History(); err == nil {
			for _, e := range h.Events {
				art.History = append(art.History, soakArtifactEvt{
					Dot:       e.Dot.String(),
					Session:   int64(e.Session),
					Op:        e.Op.Name(),
					Level:     e.Level.String(),
					Value:     fmt.Sprint(e.RVal),
					Pending:   e.Pending,
					Invoke:    e.Invoke,
					Return:    e.Return,
					Timestamp: e.Timestamp,
					TOBNo:     e.TOBNo,
				})
			}
		}
	}
	dir := os.Getenv("FAULT_SOAK_DIR")
	if dir == "" {
		dir = os.TempDir()
	}
	path := filepath.Join(dir, fmt.Sprintf("fault_soak_%s_%d.json", sched.Variant, sched.Seed))
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Errorf("marshal artifact: %v", err)
		return ""
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Errorf("write artifact: %v", err)
		return ""
	}
	return path
}

// soakRunChecked executes one schedule and fails the test with a replayable
// artifact if the run violates a guarantee.
func soakRunChecked(t *testing.T, seed int64, variant Variant) {
	t.Helper()
	sched, failure, c, err := soakRun(seed, variant)
	if c != nil {
		defer c.Close()
	}
	if err != nil {
		t.Fatalf("seed %d (%s): schedule error: %v\nactions: %v", seed, variant, err, sched.Actions)
	}
	if failure == "" {
		return
	}
	path := dumpSoakArtifact(t, c, sched, failure)
	t.Fatalf("seed %d (%s): %s\nactions: %v\nartifact: %s\nreplay: FAULT_SOAK_SEED=%d go test -run TestFaultSoak .",
		seed, variant, failure, sched.Actions, path, seed)
}

// TestFaultSoak drives ≥200 seeded fault schedules (two protocol variants ×
// 100+ seeds; 2×30 under -short) through the public API. The seed corpus is
// fixed — soakSeedBase anchors it — so CI failures reproduce locally.
const soakSeedBase = 900_000

func TestFaultSoak(t *testing.T) {
	if env := os.Getenv("FAULT_SOAK_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("FAULT_SOAK_SEED=%q: %v", env, err)
		}
		for _, variant := range []Variant{Original, Modified} {
			soakRunChecked(t, seed, variant)
		}
		return
	}
	runs := 100
	if env := os.Getenv("FAULT_SOAK_RUNS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("FAULT_SOAK_RUNS=%q: %v", env, err)
		}
		runs = n
	} else if testing.Short() {
		runs = 30
	}
	for _, variant := range []Variant{Original, Modified} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			for i := 0; i < runs; i++ {
				soakRunChecked(t, soakSeedBase+int64(i), variant)
			}
		})
	}
}
