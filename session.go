package bayou

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"bayou/internal/core"
	"bayou/internal/record"
)

// SessionID identifies a sequential client session.
type SessionID = core.SessionID

// ErrSessionBusy reports an invocation on a session whose previous call has
// not yet returned. Sessions are the sequential clients of the paper's
// system model (§3.2): open more sessions — any number may share a replica —
// to issue concurrent operations.
var ErrSessionBusy = record.ErrSessionBusy

// Session is one sequential client bound to a replica. Mint sessions with
// Cluster.Session; any number can share a replica, and their invocations
// may freely overlap — the restriction the seed façade imposed (one
// outstanding call per replica) is gone. Each individual session accepts
// one operation at a time (ErrSessionBusy otherwise), which is exactly the
// well-formedness the history checkers assume.
//
// Concurrency: on a live cluster (NewLive), open one session per goroutine
// — the replica goroutines serialize their work, so sessions may invoke
// from concurrent goroutines. A simulated cluster (New) runs entirely on
// the caller's goroutine: its sessions can overlap *logically* (one
// session's call pending while another invokes) but every API call must be
// issued from a single goroutine, like the rest of the simulator.
type Session struct {
	c       *Cluster
	id      core.SessionID
	replica int

	mu   sync.Mutex
	last *Call
}

// Session mints a new sequential session bound to the given replica.
func (c *Cluster) Session(replica int) (*Session, error) {
	if replica < 0 || replica >= c.n {
		return nil, fmt.Errorf("bayou: no replica %d", replica)
	}
	id, err := c.drv.OpenSession(replica)
	if err != nil {
		return nil, err
	}
	return &Session{c: c, id: id, replica: replica}, nil
}

// ID returns the session's identifier (the Session key of history events).
func (s *Session) ID() SessionID { return s.id }

// Replica returns the replica the session is bound to.
func (s *Session) Replica() int { return s.replica }

// Invoke submits op at the session's replica with the given level. The
// returned Call completes as the deployment makes progress — immediately
// for Algorithm 2 weak operations, after consensus for strong ones. A
// session whose previous call has not returned yields ErrSessionBusy.
func (s *Session) Invoke(op Op, level Level) (*Call, error) {
	call, err := s.c.drv.Invoke(s.id, op, level)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.last = call
	s.mu.Unlock()
	return call, nil
}

// Last returns the session's most recent call (nil before the first
// invocation).
func (s *Session) Last() *Call {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Wait blocks until the session's outstanding call has its response,
// driving the deployment as the substrate requires (the simulator advances
// virtual time; the live driver parks on the call), and returns that
// response. It respects ctx for cancellation and deadlines.
//
// If the session's replica is crashed, the call legitimately pends: on the
// live driver Wait blocks until ctx is done (or the replica recovers and
// the surviving continuation answers); on the simulator it fails once the
// event queue drains with the call still pending. Waiting with a deadline
// is the right shape for fault-tolerant clients.
func (s *Session) Wait(ctx context.Context) (Response, error) {
	last := s.Last()
	if last == nil {
		return Response{}, errors.New("bayou: session has no outstanding call")
	}
	return s.c.Wait(ctx, last)
}

// Wait blocks until the given call has its response, driving the deployment
// as the substrate requires, and returns it.
func (c *Cluster) Wait(ctx context.Context, call *Call) (Response, error) {
	if call == nil {
		return Response{}, errors.New("bayou: nil call")
	}
	if err := c.drv.AwaitCall(ctx, call); err != nil {
		return Response{}, err
	}
	return call.Response(), nil
}
