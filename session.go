package bayou

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"bayou/internal/core"
	"bayou/internal/record"
)

// SessionID identifies a sequential client session.
type SessionID = core.SessionID

// ErrSessionBusy reports an invocation on a session whose previous call has
// not yet returned. Sessions are the sequential clients of the paper's
// system model (§3.2): open more sessions — any number may share a replica —
// to issue concurrent operations.
var ErrSessionBusy = record.ErrSessionBusy

// ErrGuarantee reports an invocation rejected under FailFast: the serving
// replica cannot yet cover the session's guarantee vectors (it has not seen
// the session's writes, or lags behind its reads).
var ErrGuarantee = record.ErrGuarantee

// Guarantee is a bitmask of per-session guarantees (Terry et al., PDIS
// '94). A session minted with guarantees keeps them wherever it goes: the
// serving replica must prove coverage of the session's read/write vectors
// before accepting an invocation, so a client can migrate between replicas
// — or fail over from a crashed one — without ever unseeing its own writes
// or rewinding its reads.
type Guarantee = core.Guarantee

// The four session guarantees, plus the Causal bundle of all of them.
const (
	// ReadYourWrites: every response reflects the session's own preceding
	// updates.
	ReadYourWrites = core.ReadYourWrites
	// MonotonicReads: a later response never unsees an update an earlier
	// one observed.
	MonotonicReads = core.MonotonicReads
	// MonotonicWrites: the session's updates are arbitrated in session
	// order.
	MonotonicWrites = core.MonotonicWrites
	// WritesFollowReads: the session's updates are arbitrated after the
	// updates it had observed.
	WritesFollowReads = core.WritesFollowReads
	// Causal bundles all four.
	Causal = core.Causal
)

// GuaranteeMode selects what an invocation does when the serving replica
// cannot yet cover the session's vectors.
type GuaranteeMode = core.GuaranteeMode

const (
	// WaitForCoverage (the default) parks the invocation until the replica
	// catches up; the returned Call stays pending meanwhile.
	WaitForCoverage = core.WaitForCoverage
	// FailFast rejects the invocation immediately with ErrGuarantee, so
	// the client can pick another replica (see Session.Covered).
	FailFast = core.FailFast
)

// SessionOption configures a session at minting time.
type SessionOption func(*sessionConfig) error

type sessionConfig struct {
	g    Guarantee
	mode GuaranteeMode
}

// WithGuarantees makes the session carry the given guarantees — e.g.
// bayou.ReadYourWrites|bayou.MonotonicReads, or the full bayou.Causal
// bundle — enforced at whichever replica serves it.
func WithGuarantees(g Guarantee) SessionOption {
	return func(sc *sessionConfig) error {
		sc.g = g
		return nil
	}
}

// WithGuaranteeMode selects WaitForCoverage (default) or FailFast.
func WithGuaranteeMode(m GuaranteeMode) SessionOption {
	return func(sc *sessionConfig) error {
		if m != WaitForCoverage && m != FailFast {
			return fmt.Errorf("bayou: unknown guarantee mode %d", int(m))
		}
		sc.mode = m
		return nil
	}
}

// Session is one sequential client. It is minted bound to a replica
// (Cluster.Session) but is *mobile*: Bind migrates it to another replica,
// InvokeAt serves one operation elsewhere without re-binding, and the
// guarantees it was minted with travel along — the session's read/write
// vectors live on the deployment's shared session table, so any replica
// asked to serve it first proves it has caught up to the session's past.
//
// Any number of sessions can share a replica, and their invocations may
// freely overlap. Each individual session accepts one operation at a time
// (ErrSessionBusy otherwise), which is exactly the well-formedness the
// history checkers assume.
//
// Concurrency: on a live cluster (NewLive), open one session per goroutine
// — the replica goroutines serialize their work, so sessions may invoke
// from concurrent goroutines. A simulated cluster (New) runs entirely on
// the caller's goroutine: its sessions can overlap *logically* (one
// session's call pending while another invokes) but every API call must be
// issued from a single goroutine, like the rest of the simulator.
type Session struct {
	c    *Cluster
	id   core.SessionID
	g    Guarantee
	mode GuaranteeMode

	mu      sync.Mutex
	replica int
	last    *Call
}

// Session mints a new sequential session bound to the given replica.
// Options attach session guarantees:
//
//	s, _ := c.Session(1, bayou.WithGuarantees(bayou.Causal))
//
// A guarantee-carrying session's invocations are gated on coverage: a
// replica that has not yet seen the session's writes (or lags behind its
// reads) either parks the invocation until it catches up (the default) or
// rejects it with ErrGuarantee under WithGuaranteeMode(FailFast).
func (c *Cluster) Session(replica int, opts ...SessionOption) (*Session, error) {
	if replica < 0 || replica >= c.n {
		return nil, fmt.Errorf("bayou: no replica %d", replica)
	}
	var sc sessionConfig
	for _, opt := range opts {
		if err := opt(&sc); err != nil {
			return nil, err
		}
	}
	id, err := c.drv.OpenSession(replica)
	if err != nil {
		return nil, err
	}
	if sc.g != 0 {
		c.rec.SetGuarantees(id, sc.g, sc.mode)
	}
	return &Session{c: c, id: id, g: sc.g, mode: sc.mode, replica: replica}, nil
}

// ID returns the session's identifier (the Session key of history events).
func (s *Session) ID() SessionID { return s.id }

// Replica returns the replica the session is currently bound to.
func (s *Session) Replica() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replica
}

// Guarantees returns the guarantee mask the session carries.
func (s *Session) Guarantees() Guarantee { return s.g }

// Bind migrates the session to another replica: subsequent Invokes are
// served there, under the same guarantees — the session's vectors follow
// it, so the new replica must cover the session's past before serving it.
// A session with an outstanding call cannot move (ErrSessionBusy): its
// continuation is owed by the current replica.
func (s *Session) Bind(replica int) error {
	if replica < 0 || replica >= s.c.n {
		return fmt.Errorf("bayou: no replica %d", replica)
	}
	if err := s.c.drv.Bind(s.id, replica); err != nil {
		return err
	}
	s.mu.Lock()
	s.replica = replica
	s.mu.Unlock()
	return nil
}

// Covered reports whether the replica's current state dominates the
// session's guarantee vectors — the probe a fail-fast client uses to pick
// a failover target before Bind. A crashed replica covers nothing.
func (s *Session) Covered(replica int) (bool, error) {
	if replica < 0 || replica >= s.c.n {
		return false, fmt.Errorf("bayou: no replica %d", replica)
	}
	return s.c.drv.Coverage(s.id, replica)
}

// Invoke submits op at the session's bound replica with the given level.
// The returned Call completes as the deployment makes progress —
// immediately for Algorithm 2 weak operations, after consensus for strong
// ones. On a guarantee-carrying session the call may additionally park
// until the replica covers the session's vectors (or the invocation fails
// with ErrGuarantee under FailFast). A session whose previous call has not
// returned yields ErrSessionBusy.
func (s *Session) Invoke(op Op, level Level) (*Call, error) {
	return s.InvokeAt(s.Replica(), op, level)
}

// InvokeAt submits op at an explicit target replica without re-binding the
// session — a one-shot read served elsewhere, say. The session's
// guarantees are enforced at the target exactly as at the binding.
func (s *Session) InvokeAt(replica int, op Op, level Level) (*Call, error) {
	if replica < 0 || replica >= s.c.n {
		return nil, fmt.Errorf("bayou: no replica %d", replica)
	}
	call, err := s.c.drv.Invoke(s.id, replica, op, level)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.last = call
	s.mu.Unlock()
	return call, nil
}

// Last returns the session's most recent call (nil before the first
// invocation).
func (s *Session) Last() *Call {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Wait blocks until the session's outstanding call has its response,
// driving the deployment as the substrate requires (the simulator advances
// virtual time; the live driver parks on the call), and returns that
// response. It respects ctx for cancellation and deadlines.
//
// If the session's replica is crashed, the call legitimately pends: on the
// live driver Wait blocks until ctx is done (or the replica recovers and
// the surviving continuation answers); on the simulator it fails once the
// event queue drains with the call still pending. Waiting with a deadline
// is the right shape for fault-tolerant clients.
func (s *Session) Wait(ctx context.Context) (Response, error) {
	last := s.Last()
	if last == nil {
		return Response{}, errors.New("bayou: session has no outstanding call")
	}
	return s.c.Wait(ctx, last)
}

// ErrResultLost reports a call that completed without a response value: the
// operation committed — its effect is in every replica's state — but its
// replica was down when the commit happened and recovered by checkpoint
// state transfer, so the return value was never computed anywhere and never
// can be. The write-log truncation trade-off of the original Bayou, made
// explicit (see Call.Lost and WithCheckpointEvery).
var ErrResultLost = errors.New("bayou: operation committed but its result was lost to checkpoint truncation")

// Wait blocks until the given call has its response, driving the deployment
// as the substrate requires, and returns it. A call completed as a lost
// result (Call.Lost) returns ErrResultLost rather than a bogus zero value.
func (c *Cluster) Wait(ctx context.Context, call *Call) (Response, error) {
	if call == nil {
		return Response{}, errors.New("bayou: nil call")
	}
	if err := c.drv.AwaitCall(ctx, call); err != nil {
		return Response{}, err
	}
	if resp := call.Response(); resp.Req.Op != nil {
		// A lost call that had already answered tentatively keeps that
		// value — only the stable notice was lost.
		return resp, nil
	}
	if call.Lost() {
		return Response{}, ErrResultLost
	}
	return call.Response(), nil
}
