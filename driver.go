package bayou

import (
	"context"
	"errors"
	"fmt"

	"bayou/internal/cluster"
	"bayou/internal/core"
	"bayou/internal/record"
	"bayou/internal/sim"
	"bayou/internal/spec"
)

// ErrUnsupported is returned for environment controls a driver cannot
// express (e.g. partitions on the live driver).
var ErrUnsupported = errors.New("bayou: operation not supported by this driver")

// Driver is the substrate a Cluster runs on: the deterministic simulator
// (New) or the goroutine-per-replica live deployment (NewLive). Both expose
// the same session-oriented operations, feed the same record.Recorder, and
// therefore produce comparable histories, checker verdicts and watch
// streams.
//
// The interface references internal types, so it is satisfiable only from
// within this module (a sealed interface): it exists to keep the façade
// honest about what a substrate must provide, not as a third-party
// extension point yet.
type Driver interface {
	// Replicas returns the deployment size.
	Replicas() int
	// Recorder exposes the shared observation layer.
	Recorder() *record.Recorder
	// OpenSession mints a fresh sequential session bound to a replica.
	OpenSession(replica int) (core.SessionID, error)
	// Invoke submits an operation on a session; the returned call fills
	// in as the deployment makes progress.
	Invoke(sess core.SessionID, op spec.Op, level core.Level) (*record.Call, error)
	// Settle drives the deployment to quiescence: every message
	// delivered, every replica passive, every call terminal.
	Settle() error
	// Run advances the deployment by d ticks of driver time (virtual
	// ticks on the simulator; a bounded real-time sleep on live).
	Run(d int64)
	// AwaitCall blocks until the call's response arrives, making whatever
	// progress the substrate requires, or until ctx is done.
	AwaitCall(ctx context.Context, call *record.Call) error
	// ElectLeader stabilizes the failure detector Ω on a replica.
	ElectLeader(replica int) error
	// Destabilize clears Ω (the asynchronous-run switch).
	Destabilize() error
	// Partition splits the network into cells; Heal reunites it.
	Partition(cells [][]int) error
	Heal() error
	// Read peeks at a register of a replica's current state.
	Read(replica int, register string) (spec.Value, error)
	// Committed snapshots a replica's committed order.
	Committed(replica int) ([]core.Req, error)
	// Stats aggregates replica cost counters.
	Stats() (map[core.ReplicaID]core.Stats, error)
	// Compact runs log compaction everywhere, returning freed undo entries.
	Compact() (int, error)
	// MarkStable records the quiescence cutoff for the history checkers.
	MarkStable()
	// Close releases the substrate (stops goroutines on live; no-op on sim).
	Close() error
}

// simDriver adapts internal/cluster — the deterministic discrete-event
// simulation — to the Driver interface.
type simDriver struct {
	c *cluster.Cluster
	n int
}

// newSimDriver builds the simulated substrate from validated options.
func newSimDriver(o Options) (*simDriver, error) {
	cfg := cluster.Config{
		N:         o.Replicas,
		Variant:   o.Variant,
		Seed:      o.Seed,
		StepBatch: o.StepBatch,
	}
	if o.UsePrimaryTOB {
		cfg.TOB = cluster.PrimaryTOB
	}
	if len(o.SlowReplicas) > 0 {
		cfg.ProcDelay = make(map[core.ReplicaID]sim.Time, len(o.SlowReplicas))
		for id, d := range o.SlowReplicas {
			cfg.ProcDelay[core.ReplicaID(id)] = sim.Time(d)
		}
	}
	if len(o.ClockSlowdown) > 0 {
		cfg.ClockSlowdown = make(map[core.ReplicaID]int64, len(o.ClockSlowdown))
		for id, d := range o.ClockSlowdown {
			cfg.ClockSlowdown[core.ReplicaID(id)] = d
		}
	}
	inner, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	return &simDriver{c: inner, n: o.Replicas}, nil
}

func (d *simDriver) Replicas() int              { return d.n }
func (d *simDriver) Recorder() *record.Recorder { return d.c.Recorder() }

func (d *simDriver) OpenSession(replica int) (core.SessionID, error) {
	return d.c.OpenSession(core.ReplicaID(replica))
}

func (d *simDriver) Invoke(sess core.SessionID, op spec.Op, level core.Level) (*record.Call, error) {
	return d.c.InvokeSession(sess, op, level)
}

func (d *simDriver) Settle() error { return d.c.Settle(0) }
func (d *simDriver) Run(t int64)   { d.c.RunFor(sim.Time(t)) }

// AwaitCall advances the simulation until the call completes. Waiting on a
// single simulator thread cannot block: the driver *is* the progress, so it
// runs the scheduler in slices and fails if the event queue empties with
// the call still pending (e.g. a strong operation in an asynchronous run —
// exactly the Theorem 3 situation, which no amount of waiting resolves).
func (d *simDriver) AwaitCall(ctx context.Context, call *record.Call) error {
	for !call.Done() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if d.c.Scheduler().Pending() == 0 {
			return fmt.Errorf("bayou: call %s cannot complete: simulation is quiescent (no leader elected, or an asynchronous run)", call.Dot())
		}
		d.c.RunFor(100)
	}
	return nil
}

func (d *simDriver) ElectLeader(replica int) error {
	if replica < 0 || replica >= d.n {
		return fmt.Errorf("bayou: no replica %d", replica)
	}
	d.c.StabilizeOmega(core.ReplicaID(replica))
	return nil
}

func (d *simDriver) Destabilize() error {
	d.c.DestabilizeOmega()
	return nil
}

func (d *simDriver) Partition(cells [][]int) error {
	conv := make([][]core.ReplicaID, len(cells))
	for i, cell := range cells {
		for _, id := range cell {
			if id < 0 || id >= d.n {
				return fmt.Errorf("bayou: no replica %d", id)
			}
			conv[i] = append(conv[i], core.ReplicaID(id))
		}
	}
	d.c.Partition(conv...)
	return nil
}

func (d *simDriver) Heal() error {
	d.c.Heal()
	return nil
}

func (d *simDriver) Read(replica int, register string) (spec.Value, error) {
	if replica < 0 || replica >= d.n {
		return nil, fmt.Errorf("bayou: no replica %d", replica)
	}
	return d.c.Replica(core.ReplicaID(replica)).Read(register), nil
}

func (d *simDriver) Committed(replica int) ([]core.Req, error) {
	if replica < 0 || replica >= d.n {
		return nil, fmt.Errorf("bayou: no replica %d", replica)
	}
	return d.c.Replica(core.ReplicaID(replica)).Committed(), nil
}

func (d *simDriver) Stats() (map[core.ReplicaID]core.Stats, error) { return d.c.Stats(), nil }
func (d *simDriver) Compact() (int, error)                         { return d.c.CompactAll(), nil }
func (d *simDriver) MarkStable()                                   { d.c.MarkStable() }
func (d *simDriver) Close() error                                  { return nil }

// Sim exposes the underlying simulated cluster when the driver is the
// simulator (scenario-style schedule control: manual stepping, network
// blocks). It returns nil on other drivers.
func (c *Cluster) Sim() *cluster.Cluster {
	if d, ok := c.drv.(*simDriver); ok {
		return d.c
	}
	return nil
}
