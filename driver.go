package bayou

import (
	"context"
	"errors"
	"fmt"

	"bayou/internal/cluster"
	"bayou/internal/core"
	"bayou/internal/record"
	"bayou/internal/sim"
	"bayou/internal/spec"
)

// ErrUnsupported is returned for environment controls a driver cannot
// express (e.g. partitions on the live driver).
var ErrUnsupported = errors.New("bayou: operation not supported by this driver")

// Driver is the substrate a Cluster runs on: the deterministic simulator
// (New) or the goroutine-per-replica live deployment (NewLive). Both expose
// the same session-oriented operations, feed the same record.Recorder, and
// therefore produce comparable histories, checker verdicts and watch
// streams.
//
// The interface references internal types, so it is satisfiable only from
// within this module (a sealed interface): it exists to keep the façade
// honest about what a substrate must provide, not as a third-party
// extension point yet.
type Driver interface {
	// Replicas returns the deployment size.
	Replicas() int
	// Recorder exposes the shared observation layer.
	Recorder() *record.Recorder
	// OpenSession mints a fresh sequential session bound to a replica.
	// Guarantees are registered on the shared Recorder (SetGuarantees),
	// which is what makes them travel with the session across re-binds.
	OpenSession(replica int) (core.SessionID, error)
	// Invoke submits an operation on a session at an explicit target
	// replica; the returned call fills in as the deployment makes
	// progress. For guarantee-carrying sessions the target must prove
	// coverage of the session's vectors first: until it can, the call
	// parks (WaitForCoverage) or the invocation fails with ErrGuarantee
	// (FailFast).
	Invoke(sess core.SessionID, replica int, op spec.Op, level core.Level) (*record.Call, error)
	// Bind re-binds a session to another replica (mobile-session
	// migration); a session with an outstanding call cannot move.
	Bind(sess core.SessionID, replica int) error
	// Coverage reports whether the replica's state currently dominates
	// the session's guarantee vectors — the failover-target probe.
	Coverage(sess core.SessionID, replica int) (bool, error)
	// Settle drives the deployment to quiescence: every message
	// delivered, every replica passive, every call terminal.
	Settle() error
	// Run advances the deployment by d ticks of driver time (virtual
	// ticks on the simulator; a bounded real-time sleep on live).
	Run(d int64)
	// AwaitCall blocks until the call's response arrives, making whatever
	// progress the substrate requires, or until ctx is done.
	AwaitCall(ctx context.Context, call *record.Call) error
	// ElectLeader stabilizes the failure detector Ω on a replica.
	ElectLeader(replica int) error
	// Destabilize clears Ω (the asynchronous-run switch).
	Destabilize() error
	// Faults exposes the substrate's fault plane: crashes, recoveries,
	// partitions, link degradation. Controls a substrate cannot express
	// return ErrUnsupported.
	Faults() FaultPlane
	// Read peeks at a register of a replica's current state.
	Read(replica int, register string) (spec.Value, error)
	// Committed snapshots a replica's committed order.
	Committed(replica int) ([]core.Req, error)
	// Stats aggregates replica cost counters.
	Stats() (map[core.ReplicaID]core.Stats, error)
	// Compact runs log compaction everywhere, returning freed undo entries.
	Compact() (int, error)
	// Checkpoint checkpoints every live replica's stable state, truncating
	// its logs to the suffix; returns the total committed entries truncated.
	Checkpoint() (int, error)
	// BaseLen reports a replica's absolute checkpointed-prefix length (its
	// resident committed log holds only positions past it).
	BaseLen(replica int) (int, error)
	// MarkStable records the quiescence cutoff for the history checkers.
	MarkStable()
	// Close releases the substrate (stops goroutines on live; no-op on sim).
	Close() error
}

// FaultPlane scripts failures through the public API. Both substrates
// implement it: the simulator maps faults onto simnet and the cluster's
// crash–recovery machinery; the live driver maps crashes onto replica
// goroutine stop/restart and partitions onto parked channel traffic.
// Whatever the substrate, a recovering replica restores its durable image
// (committed prefix, dot counter, client continuations), refetches the
// tentative suffix via RB retransmission, and catches up on decided slots
// through the TOB learner — so the same fault script yields comparable
// histories on both.
type FaultPlane interface {
	// Crash silently crashes a replica: volatile state is lost, traffic
	// toward it is dropped, sessions bound to it are rejected. (The live
	// substrate cannot crash its sequencer, replica 0.)
	Crash(replica int) error
	// Recover restarts a crashed replica from its durable snapshot and
	// resynchronizes it with the deployment.
	Recover(replica int) error
	// Partition splits the network into cells; cross-cell traffic is held
	// (reliable links retransmit) until Heal.
	Partition(cells ...[]int) error
	// Heal removes all partitions, releasing held traffic.
	Heal() error
	// SlowLink multiplies the latency between two replicas by factor
	// (factor 1 restores normal speed). Simulation only.
	SlowLink(a, b int, factor int64) error
}

// simDriver adapts internal/cluster — the deterministic discrete-event
// simulation — to the Driver interface.
type simDriver struct {
	c *cluster.Cluster
	n int
}

// defaultLeaseTicks is the leader-lease duration WithLeaderLease installs
// on the simulator: long enough (at default link latency 10) to amortize
// the quorum grant over many renewals, short enough that a partitioned
// leader stops serving strong reads within a few hundred simulated ticks.
const defaultLeaseTicks = 2000

// newSimDriver builds the simulated substrate from validated options.
func newSimDriver(o config) (*simDriver, error) {
	if len(o.Peers) > 0 {
		return nil, fmt.Errorf("%w: socket peers (WithPeers) need the live driver", ErrUnsupported)
	}
	cfg := cluster.Config{
		N:               o.Replicas,
		Variant:         o.Variant,
		Seed:            o.Seed,
		StepBatch:       o.StepBatch,
		Latency:         sim.Time(o.Latency),
		CheckpointEvery: o.CheckpointEvery,
		PipelineDepth:   o.PipelineDepth,
	}
	if o.LeaderLease {
		cfg.LeaseTicks = defaultLeaseTicks
	}
	if o.UsePrimaryTOB {
		cfg.TOB = cluster.PrimaryTOB
	}
	if len(o.SlowReplicas) > 0 {
		cfg.ProcDelay = make(map[core.ReplicaID]sim.Time, len(o.SlowReplicas))
		for id, d := range o.SlowReplicas {
			cfg.ProcDelay[core.ReplicaID(id)] = sim.Time(d)
		}
	}
	if len(o.ClockSlowdown) > 0 {
		cfg.ClockSlowdown = make(map[core.ReplicaID]int64, len(o.ClockSlowdown))
		for id, d := range o.ClockSlowdown {
			cfg.ClockSlowdown[core.ReplicaID(id)] = d
		}
	}
	inner, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	return &simDriver{c: inner, n: o.Replicas}, nil
}

func (d *simDriver) Replicas() int              { return d.n }
func (d *simDriver) Recorder() *record.Recorder { return d.c.Recorder() }

func (d *simDriver) OpenSession(replica int) (core.SessionID, error) {
	return d.c.OpenSession(core.ReplicaID(replica))
}

func (d *simDriver) Invoke(sess core.SessionID, replica int, op spec.Op, level core.Level) (*record.Call, error) {
	return d.c.InvokeSessionAt(sess, core.ReplicaID(replica), op, level)
}

func (d *simDriver) Bind(sess core.SessionID, replica int) error {
	return d.c.BindSession(sess, core.ReplicaID(replica))
}

func (d *simDriver) Coverage(sess core.SessionID, replica int) (bool, error) {
	return d.c.SessionCovered(sess, core.ReplicaID(replica))
}

func (d *simDriver) Settle() error { return d.c.Settle(0) }
func (d *simDriver) Run(t int64)   { d.c.RunFor(sim.Time(t)) }

// AwaitCall advances the simulation until the call completes. Waiting on a
// single simulator thread cannot block: the driver *is* the progress, so it
// runs the scheduler in slices and fails if the event queue empties with
// the call still pending (e.g. a strong operation in an asynchronous run —
// exactly the Theorem 3 situation, which no amount of waiting resolves).
func (d *simDriver) AwaitCall(ctx context.Context, call *record.Call) error {
	for !call.Done() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if d.c.Scheduler().Pending() == 0 {
			if (call.Dot() == core.Dot{}) {
				return fmt.Errorf("bayou: session %d's invocation is parked on its guarantee coverage and the simulation is quiescent (the demanded state cannot reach the target replica — heal the partition, recover the replica, or elect a leader)", call.Session())
			}
			return fmt.Errorf("bayou: call %s cannot complete: simulation is quiescent (no leader elected, an asynchronous run, or the call's replica is crashed)", call.Dot())
		}
		d.c.RunFor(100)
	}
	return nil
}

func (d *simDriver) ElectLeader(replica int) error {
	if replica < 0 || replica >= d.n {
		return fmt.Errorf("bayou: no replica %d", replica)
	}
	d.c.StabilizeOmega(core.ReplicaID(replica))
	return nil
}

func (d *simDriver) Destabilize() error {
	d.c.DestabilizeOmega()
	return nil
}

func (d *simDriver) Faults() FaultPlane { return simFaults{d} }

// simFaults maps the fault plane onto simnet and the simulated cluster's
// crash–recovery machinery.
type simFaults struct {
	d *simDriver
}

func (f simFaults) check(replica int) error {
	if replica < 0 || replica >= f.d.n {
		return fmt.Errorf("bayou: no replica %d", replica)
	}
	return nil
}

func (f simFaults) Crash(replica int) error {
	if err := f.check(replica); err != nil {
		return err
	}
	return f.d.c.Crash(core.ReplicaID(replica))
}

func (f simFaults) Recover(replica int) error {
	if err := f.check(replica); err != nil {
		return err
	}
	return f.d.c.Recover(core.ReplicaID(replica))
}

func (f simFaults) Partition(cells ...[]int) error {
	conv := make([][]core.ReplicaID, len(cells))
	for i, cell := range cells {
		for _, id := range cell {
			if err := f.check(id); err != nil {
				return err
			}
			conv[i] = append(conv[i], core.ReplicaID(id))
		}
	}
	f.d.c.Partition(conv...)
	return nil
}

func (f simFaults) Heal() error {
	f.d.c.Heal()
	return nil
}

func (f simFaults) SlowLink(a, b int, factor int64) error {
	if err := f.check(a); err != nil {
		return err
	}
	if err := f.check(b); err != nil {
		return err
	}
	if factor < 1 {
		return fmt.Errorf("bayou: SlowLink factor %d, want ≥ 1", factor)
	}
	f.d.c.SlowLink(core.ReplicaID(a), core.ReplicaID(b), factor)
	return nil
}

func (d *simDriver) Read(replica int, register string) (spec.Value, error) {
	if replica < 0 || replica >= d.n {
		return nil, fmt.Errorf("bayou: no replica %d", replica)
	}
	return d.c.Replica(core.ReplicaID(replica)).Read(register), nil
}

func (d *simDriver) Committed(replica int) ([]core.Req, error) {
	if replica < 0 || replica >= d.n {
		return nil, fmt.Errorf("bayou: no replica %d", replica)
	}
	return d.c.Replica(core.ReplicaID(replica)).Committed(), nil
}

func (d *simDriver) Stats() (map[core.ReplicaID]core.Stats, error) { return d.c.Stats(), nil }
func (d *simDriver) Compact() (int, error)                         { return d.c.CompactAll(), nil }
func (d *simDriver) Checkpoint() (int, error)                      { return d.c.Checkpoint() }
func (d *simDriver) MarkStable()                                   { d.c.MarkStable() }
func (d *simDriver) Close() error                                  { return nil }

func (d *simDriver) BaseLen(replica int) (int, error) {
	if replica < 0 || replica >= d.n {
		return 0, fmt.Errorf("bayou: no replica %d", replica)
	}
	return d.c.Replica(core.ReplicaID(replica)).BaseLen(), nil
}

// Sim exposes the underlying simulated cluster when the driver is the
// simulator (scenario-style schedule control: manual stepping, network
// blocks). It returns nil on other drivers.
func (c *Cluster) Sim() *cluster.Cluster {
	if d, ok := c.drv.(*simDriver); ok {
		return d.c
	}
	return nil
}
