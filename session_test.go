package bayou

import (
	"context"
	"testing"
	"time"

	"bayou/internal/core"
)

// TestConcurrentSessionsOverlapOnOneReplica: two sessions bound to the same
// replica complete overlapping invocations — the exact thing the seed
// façade's one-call-per-replica restriction rejected.
func TestConcurrentSessionsOverlapOnOneReplica(t *testing.T) {
	// No leader: a strong call stays pending, holding its session open.
	c, err := New(WithReplicas(2), WithSeed(41))
	if err != nil {
		t.Fatal(err)
	}
	sA, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	sB, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	pending, err := sA.Invoke(Append("strong"), Strong)
	if err != nil {
		t.Fatal(err)
	}
	// Session A is blocked; session B, on the same replica, is not.
	if _, err := sA.Invoke(Append("again"), Weak); err == nil {
		t.Fatal("session A must be busy while its strong call pends")
	}
	weak, err := sB.Invoke(Append("weak"), Weak)
	if err != nil {
		t.Fatalf("second session on the replica must accept work: %v", err)
	}
	if !weak.Done() {
		t.Fatal("Algorithm 2 weak call must complete immediately")
	}
	if pending.Done() {
		t.Fatal("strong call cannot complete without a leader")
	}
	// Elect and settle: the overlapping calls both finish and the history
	// is well-formed (the recorder would reject a session overlap).
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !pending.Done() {
		t.Fatal("strong call must complete once a leader exists")
	}
	if _, err := c.History(); err != nil {
		t.Fatalf("history must stay well-formed with overlapping sessions: %v", err)
	}
}

// TestOverlappingWeakInvokesOriginalVariant: under Algorithm 1 weak calls
// pend past the invoke step, so two sessions on one replica give genuinely
// overlapping weak invocations in flight at once.
func TestOverlappingWeakInvokesOriginalVariant(t *testing.T) {
	c, err := New(WithReplicas(2), WithSeed(43), WithVariant(Original))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	sA, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	sB, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sA.Invoke(Append("a"), Weak)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sB.Invoke(Append("b"), Weak)
	if err != nil {
		t.Fatal(err)
	}
	if a.Done() || b.Done() {
		t.Fatal("Algorithm 1 weak calls must pend past the invoke step")
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !a.Done() || !b.Done() {
		t.Fatal("both overlapping weak invokes must complete")
	}
	h, err := c.History()
	if err != nil {
		t.Fatal(err)
	}
	if h.Events[0].Session == h.Events[1].Session {
		t.Error("the two calls must belong to distinct sessions")
	}
}

// TestPerSessionFIFO: a session's responses arrive in program order (RVal
// reflects every earlier op of the session), and the recorded history keys
// events by session, not replica.
func TestPerSessionFIFO(t *testing.T) {
	c, err := New(WithReplicas(2), WithSeed(47))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	sessions := make([]*Session, 3)
	for i := range sessions {
		var err error
		if sessions[i], err = c.Session(0); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave: each session increments its own counter once per round,
	// with scheduler progress in between so every invocation observes the
	// session's previous one applied (Algorithm 2 gives up read-your-
	// writes only for back-to-back invokes within one activation).
	for round := 0; round < 3; round++ {
		for si, s := range sessions {
			if _, err := s.Invoke(Inc(string(rune('a'+si)), 1), Weak); err != nil {
				t.Fatal(err)
			}
		}
		c.Run(60)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	h, err := c.History()
	if err != nil {
		t.Fatal(err)
	}
	// Events keyed by session: three distinct sessions, three events each,
	// and within a session the counter values 1, 2, 3 in invoke order —
	// per-session FIFO made visible in RVal.
	bySession := map[core.SessionID][]int64{}
	for _, e := range h.Events {
		bySession[e.Session] = append(bySession[e.Session], e.RVal.(int64))
	}
	if len(bySession) != 3 {
		t.Fatalf("history has %d sessions, want 3", len(bySession))
	}
	for sess, vals := range bySession {
		for i, v := range vals {
			if v != int64(i+1) {
				t.Errorf("session %d rval[%d] = %d, want %d (program order)", sess, i, v, i+1)
			}
		}
	}
}

// TestSessionWaitContext: Wait respects deadlines, and on the simulator it
// fails fast when the call provably cannot complete (quiescent scheduler).
func TestSessionWaitContext(t *testing.T) {
	c, err := New(WithReplicas(3), WithSeed(53))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	// No leader: the strong call cannot complete; Wait must not hang.
	if _, err := s.Invoke(Append("x"), Strong); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx); err == nil {
		t.Fatal("waiting on an uncommittable strong call must fail, not hang")
	}
	// With a leader, Wait drives the simulation to the response.
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	s2, err := c.Session(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Invoke(Append("y"), Strong); err != nil {
		t.Fatal(err)
	}
	resp, err := s2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Committed {
		t.Error("strong response must be committed")
	}
}

// TestSessionFluctuationWatch is the acceptance scenario for the watch API:
// an application observes a weak response fluctuate tentative → reordered →
// committed through Call.Updates/Cluster.Watch, the stream agrees with the
// call's terminal state, and CheckFEC(Weak) holds on the same history —
// fluctuation is exactly what FEC permits (and BEC forbids).
func TestSessionFluctuationWatch(t *testing.T) {
	// Replica 1's clock runs 8× slow, so its requests carry older
	// timestamps and schedule *before* replica 0's already-executed ones:
	// the recipe for reordering replica 0's tentative response.
	c, err := New(WithReplicas(2), WithSeed(59), WithClockSlowdown(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	c.Run(100) // let virtual time (and with it replica 0's clock) advance

	writer, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	call, err := writer.Invoke(Append("a"), Weak)
	if err != nil {
		t.Fatal(err)
	}
	updates, err := c.Watch(call.Dot())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(call.Value(), "a") {
		t.Fatalf("tentative value = %v, want a", call.Value())
	}

	// A remote weak append with a far older timestamp arrives at replica 0
	// and forces the rollback + re-execution of append(a).
	skewed, err := c.Session(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := skewed.Invoke(Append("b"), Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}

	var stream []Update
	for u := range updates {
		stream = append(stream, u)
	}
	if len(stream) < 3 {
		t.Fatalf("stream = %+v, want tentative → reordered → committed", stream)
	}
	if stream[0].Status != StatusTentative || !Equal(stream[0].Value, "a") {
		t.Errorf("first update = %+v, want tentative \"a\"", stream[0])
	}
	sawReordered := false
	for _, u := range stream[1 : len(stream)-1] {
		if u.Status == StatusReordered {
			sawReordered = true
			if Equal(u.Value, stream[0].Value) {
				t.Errorf("reordered update %+v must carry a changed value", u)
			}
		}
	}
	if !sawReordered {
		t.Errorf("stream %+v never reported the reordering fluctuation", stream)
	}
	last := stream[len(stream)-1]
	if last.Status != StatusCommitted {
		t.Errorf("last update = %+v, want committed", last)
	}
	// The stream's terminal value is the call's stable response.
	stable, ok := call.Stable()
	if !ok {
		t.Fatal("weak update must stabilize after settle")
	}
	if !Equal(stable.Value, last.Value) {
		t.Errorf("stable value %v != final update value %v", stable.Value, last.Value)
	}
	// The statuses are consistent with the paper's criterion on this very
	// history: FEC(weak) tolerates the observed fluctuation…
	fec, err := c.CheckFEC(Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !fec.OK() {
		t.Errorf("CheckFEC(Weak) must hold on the fluctuating history:\n%s", fec)
	}
	// …and the fluctuations recorded on the call match the stream.
	if got := call.Fluctuations(); len(got) != len(stream) {
		t.Errorf("Fluctuations() = %d updates, stream delivered %d", len(got), len(stream))
	}
}
