module bayou

go 1.24
