package bayou

import (
	"context"
	"testing"
	"time"
)

// runCheckpointDiffScript drives one deterministic session script — weak and
// strong traffic across three replicas with a crash–recover in the middle —
// and returns the settled registers plus checker verdicts.
func runCheckpointDiffScript(t *testing.T, c *Cluster) (ctr Value, list Value, fecOK, seqOK bool, bases []int) {
	t.Helper()
	defer c.Close()
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sessions := make([]*Session, 3)
	for r := range sessions {
		var err error
		if sessions[r], err = c.Session(r); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 12; k++ {
		if _, err := sessions[k%3].Invoke(Inc("ctr", int64(1+k%4)), Weak); err != nil {
			t.Fatal(err)
		}
		c.Run(5)
	}
	if _, err := sessions[0].Invoke(Append("mid"), Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}

	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		if _, err := sessions[k%2].Invoke(Inc("ctr", 2), Weak); err != nil {
			t.Fatal(err)
		}
		c.Run(5)
	}
	if _, err := sessions[1].Invoke(PutIfAbsent("lock", "one"), Strong); err != nil {
		t.Fatal(err)
	}
	if _, err := sessions[1].Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}

	recovered, err := c.Session(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recovered.Invoke(Inc("ctr", 100), Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}

	c.MarkStable()
	probe, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Invoke(ListRead(), Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}

	if ctr, err = c.Read(0, "ctr"); err != nil {
		t.Fatal(err)
	}
	if list, err = c.Read(0, "list"); err != nil {
		t.Fatal(err)
	}
	fec, err := c.CheckFEC(Weak)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := c.CheckSeq(Strong)
	if err != nil {
		t.Fatal(err)
	}
	bases = make([]int, c.Replicas())
	for r := range bases {
		if bases[r], err = c.CheckpointedLen(r); err != nil {
			t.Fatal(err)
		}
	}
	return ctr, list, fec.OK(), seq.OK(), bases
}

// TestCheckpointingPreservesVerdicts is the façade half of the differential
// property: the same fault script run with automatic checkpointing on and
// off must settle to identical registers and identical (passing) checker
// verdicts — log truncation is invisible to every client- and
// history-observable property, even though the checkpointing run recovers
// its crashed replica through truncated logs and reconstructed trace
// witnesses.
func TestCheckpointingPreservesVerdicts(t *testing.T) {
	plain, err := New(WithReplicas(3), WithSeed(5151))
	if err != nil {
		t.Fatal(err)
	}
	pCtr, pList, pFEC, pSeq, pBases := runCheckpointDiffScript(t, plain)

	ckpt, err := New(WithReplicas(3), WithSeed(5151), WithCheckpointEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	cCtr, cList, cFEC, cSeq, cBases := runCheckpointDiffScript(t, ckpt)

	if !Equal(pCtr, cCtr) {
		t.Errorf("settled counter diverges: plain %v, checkpointing %v", pCtr, cCtr)
	}
	if !Equal(pList, cList) {
		t.Errorf("settled list diverges: plain %v, checkpointing %v", pList, cList)
	}
	if !pFEC || !pSeq {
		t.Errorf("plain run verdicts: FEC %v Seq %v, want both true", pFEC, pSeq)
	}
	if !cFEC || !cSeq {
		t.Errorf("checkpointing run verdicts: FEC %v Seq %v, want both true", cFEC, cSeq)
	}
	for _, b := range pBases {
		if b != 0 {
			t.Errorf("plain run checkpointed (base %d)?", b)
		}
	}
	active := 0
	for _, b := range cBases {
		if b > 0 {
			active++
		}
	}
	if active == 0 {
		t.Error("checkpointing run never checkpointed — the cadence is dead")
	}
}
