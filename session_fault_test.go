package bayou

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSessionWaitCancelledWhileReplicaCrashedLive: a strong call pending at
// a crashed replica keeps Session.Wait blocked on the live driver; the
// context is the client's only way out, and the error must be the
// context's, not a phantom response.
func TestSessionWaitCancelledWhileReplicaCrashedLive(t *testing.T) {
	c, err := NewLive(WithReplicas(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	// Isolate replica 1 so its strong call pends, then crash it.
	if err := c.Partition([]int{0, 2}, []int{1}); err != nil {
		t.Fatal(err)
	}
	s, err := c.Session(1)
	if err != nil {
		t.Fatal(err)
	}
	call, err := s.Invoke(Inc("ctr", 1), Strong)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := s.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait on a crashed replica's call: err = %v, want deadline exceeded", err)
	}
	if call.Done() {
		t.Fatal("call completed while its replica was crashed")
	}
	// The continuation survives: recover, heal, and the call completes.
	if err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Heal(); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !call.Done() || !call.Response().Committed {
		t.Fatalf("continuation not answered after recovery: done=%v resp=%+v", call.Done(), call.Response())
	}
}

// TestSessionWaitCancelledWhileReplicaCrashedSim: same shape on the
// simulator — a cancelled context wins immediately, and without one the
// wait fails cleanly once the simulation quiesces with the call pending.
func TestSessionWaitCancelledWhileReplicaCrashedSim(t *testing.T) {
	c, err := New(WithReplicas(3), WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ElectLeader(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Partition([]int{0, 2}, []int{1}); err != nil {
		t.Fatal(err)
	}
	s, err := c.Session(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke(Inc("ctr", 1), Strong); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait with a cancelled context: err = %v, want context.Canceled", err)
	}
	// Without a context deadline the simulator cannot conjure progress: it
	// fails once the event queue drains rather than spinning forever.
	c.Run(100_000) // exhaust retries so the deployment quiesces
	if _, err := s.Wait(context.Background()); err == nil || errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on a quiescent simulation with a crashed replica: err = %v, want a driver error", err)
	}
	// Invocations on the crashed replica's sessions fail outright.
	if _, err := s.Invoke(Inc("ctr", 1), Weak); err == nil {
		t.Fatal("invoke on a crashed replica's session succeeded")
	}
}

// TestWatchStreamAcrossCrashRecover drives one weak call through its full
// tentative → reordered → committed lifecycle with a crash–recover of the
// observing replica in the middle: the subscription survives (the call
// handle lives in the recorder, the continuation in the durable snapshot),
// and the committed transition arrives after recovery.
func TestWatchStreamAcrossCrashRecover(t *testing.T) {
	// Replica 0's clock runs 50× slow, so its operation invoked later in
	// virtual time still carries the smaller timestamp — the recipe for a
	// reorder at replica 2. No leader yet: nothing commits prematurely.
	c, err := New(WithReplicas(3), WithSeed(7), WithClockSlowdown(0, 50))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.Run(500) // advance virtual time so replica 2 mints a large timestamp
	s2, err := c.Session(2)
	if err != nil {
		t.Fatal(err)
	}
	call, err := s2.Invoke(Append("x"), Weak)
	if err != nil {
		t.Fatal(err)
	}
	updates, err := c.Watch(call.Dot())
	if err != nil {
		t.Fatal(err)
	}
	c.Run(200) // RB spreads x

	s0, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s0.Invoke(Append("a"), Weak); err != nil {
		t.Fatal(err)
	}
	c.Run(200) // a (smaller timestamp) reaches 2: rollback, re-execute, fluctuate
	if fl := call.Fluctuations(); len(fl) < 2 {
		t.Fatalf("expected a reorder before the crash, fluctuations = %+v", fl)
	}

	// Crash the observing replica mid-fluctuation, then bring it back.
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	if err := c.ElectLeader(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}

	stable, ok := call.Stable()
	if !ok {
		t.Fatal("weak update never stabilized after recovery")
	}
	var got []Update
	for u := range updates {
		got = append(got, u)
	}
	if len(got) < 3 {
		t.Fatalf("stream = %+v, want tentative → reordered → committed", got)
	}
	if got[0].Status != StatusTentative || !Equal(got[0].Value, "x") {
		t.Errorf("first update = %+v, want tentative \"x\"", got[0])
	}
	sawReordered := false
	for _, u := range got[1 : len(got)-1] {
		if u.Status == StatusReordered {
			sawReordered = true
		}
		if u.Status == StatusCommitted {
			t.Errorf("committed update before the terminal one: %+v", got)
		}
	}
	if !sawReordered {
		t.Errorf("no reordered update in %+v", got)
	}
	last := got[len(got)-1]
	if last.Status != StatusCommitted {
		t.Errorf("terminal update = %+v, want committed", last)
	}
	if !Equal(last.Value, stable.Value) {
		t.Errorf("terminal update value %v differs from stable response %v", last.Value, stable.Value)
	}
}
