package bayou

import (
	"fmt"

	"bayou/internal/core"
	"bayou/internal/record"
)

// Status classifies a response value's lifecycle stage — see the core
// package's Status. The stream StatusTentative → StatusReordered* →
// StatusCommitted is the per-call shape of the paper's response
// fluctuation, the phenomenon FEC (§4) formalizes.
type Status = core.Status

// The response-status stages.
const (
	// StatusTentative: the first weak response, computed on a schedule
	// consensus may still rearrange.
	StatusTentative = core.StatusTentative
	// StatusReordered: a re-execution on a rearranged schedule produced a
	// different value than the client holds — the response fluctuated.
	StatusReordered = core.StatusReordered
	// StatusCommitted: the final order fixed the value for good.
	StatusCommitted = core.StatusCommitted
	// StatusAborted: the final order fixed a transaction at a position
	// where its precondition fails — the terminal value is the abort
	// marker and the unit wrote nothing (see Session.Txn and
	// Call.Aborted).
	StatusAborted = core.StatusAborted
)

// Update is one status transition on a watch stream.
type Update = record.Update

// Watch subscribes to the status transitions of the call identified by dot
// (see Call.Updates, which Watch resolves through the run's recorder). All
// past transitions are replayed first, live ones follow in order, and the
// channel closes once the response is final — so
//
//	updates, _ := c.Watch(call.Dot())
//	// ... drive the run ...
//	for u := range updates { ... }
//
// observes a weak response fluctuate tentative → reordered* → committed and
// then terminates, instead of the application polling Committed state.
//
// The stream survives a crash–recover of the observing replica: the
// committed transition of a call whose replica went down mid-fluctuation
// is delivered once the replica restores its continuations and catches up
// (reordered events that would have fired while it was down are lost with
// the volatile state — only the terminal committed value is durable).
//
// On a live cluster the range can run concurrently with the deployment's
// own progress. On the simulator nothing advances while the caller blocks
// — subscribe whenever you like, but drain the channel only after Settle
// (or Run) has made the call terminal, or the range will block forever.
//
// A guarantee-gated invocation has no dot until a replica accepts it
// (Call.Dot returns the zero Dot while it is parked on its coverage gate):
// subscribe with Call.Updates directly, or Watch the dot once the call has
// been accepted.
func (c *Cluster) Watch(dot core.Dot) (<-chan Update, error) {
	call := c.rec.Call(dot)
	if call == nil {
		return nil, fmt.Errorf("bayou: no call %s recorded", dot)
	}
	return call.Updates(), nil
}
