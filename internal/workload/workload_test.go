package workload

import (
	"testing"

	"bayou/internal/core"
)

func TestSlowReplicaLatencyGrowsUnderAlgorithm1(t *testing.T) {
	series, err := SlowReplicaLatency(core.Original, 3, 12, 40, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 3 {
		t.Fatalf("too few slow-replica calls completed: %d", len(series))
	}
	first, last := series[0].Value, series[len(series)-1].Value
	if last <= first {
		t.Errorf("latency must grow: first=%d last=%d series=%v", first, last, series)
	}
	// Monotone-ish growth: the maximum is at the end half of the series.
	maxIdx := 0
	for i, p := range series {
		if p.Value >= series[maxIdx].Value {
			maxIdx = i
		}
	}
	if maxIdx < len(series)/2 {
		t.Errorf("latency peak at index %d of %d — not a growing backlog", maxIdx, len(series))
	}
}

func TestSlowReplicaLatencyZeroUnderAlgorithm2(t *testing.T) {
	series, err := SlowReplicaLatency(core.NoCircularCausality, 3, 12, 40, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range series {
		if p.Value != 0 {
			t.Errorf("round %d latency = %d, want 0 (bounded wait-free)", p.Round, p.Value)
		}
	}
}

func TestClockSkewIncreasesFastReplicaRollbacks(t *testing.T) {
	points, err := ClockSkewRollbacks(core.NoCircularCausality, 3, 10, []int64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %v", points)
	}
	if points[2].Value <= points[0].Value {
		t.Errorf("rollbacks must grow with skew: %v", points)
	}
}

func TestCompareShapes(t *testing.T) {
	rows, err := Compare(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := map[string]ComparisonRow{}
	for _, r := range rows {
		byName[r.System] = r
	}
	bayou := rows[0]
	if !bayou.WeakAvailableInMinority {
		t.Error("bayou weak ops must be available in the minority")
	}
	if bayou.StrongInMinority != "blocks" {
		t.Errorf("bayou strong op in minority = %q, want blocks", bayou.StrongInMinority)
	}
	if !bayou.ConvergedAfterHeal {
		t.Error("bayou must converge after heal")
	}
	for _, r := range rows {
		if !r.ConvergedAfterHeal {
			t.Errorf("%s did not converge after heal", r.System)
		}
	}
	// The qualitative orderings of §2.2/§6: only Bayou both supports
	// strong ops and stays weak-available; SMR is unavailable in the
	// minority; EC store and GSP have no strong ops.
	for _, name := range []string{"ec-store (LWW, RB only)", "gsp (cloud sequencer)"} {
		if byName[name].StrongSupported {
			t.Errorf("%s must not support strong ops", name)
		}
		if !byName[name].WeakAvailableInMinority {
			t.Errorf("%s must stay available in the minority", name)
		}
	}
	if byName["smr (all ops via TOB)"].WeakAvailableInMinority {
		t.Error("smr must block in the minority")
	}
}

func TestMicroStrongBurstLeaseReadsSkipConsensus(t *testing.T) {
	st, err := MicroStrongBurstStats(24, 24, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.ReadProposals != 0 {
		t.Errorf("read phase issued %d proposals, want 0 (lease serves locally)", st.ReadProposals)
	}
	if st.Leader.LeaseRequests == 0 {
		t.Error("leader never requested the lease")
	}
	if st.Leader.BatchedValues == 0 {
		t.Error("no values rode shared slots — batching never engaged")
	}
	if st.Leader.DecidedSlots >= int64(st.Writes) {
		t.Errorf("decided %d slots for %d writes — batching did not collapse the burst",
			st.Leader.DecidedSlots, st.Writes)
	}
}

func TestMicroStrongBurstBaselineOneSlotPerValue(t *testing.T) {
	st, err := MicroStrongBurstStats(16, 0, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Leader.DecidedSlots < int64(st.Writes) {
		t.Errorf("baseline decided %d slots for %d writes, want ≥ one slot per value",
			st.Leader.DecidedSlots, st.Writes)
	}
	if st.Leader.BatchedValues != 0 {
		t.Errorf("baseline batched %d values, want 0 at batch cap 1", st.Leader.BatchedValues)
	}
}

func TestLeaseFixtureReadsComplete(t *testing.T) {
	f, err := NewLeaseFixture(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := f.Read(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRollbackCostSweepGrowsWithSkew(t *testing.T) {
	points, err := RollbackCostSweep(3, 10, []int64{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %v", points)
	}
	if points[1].Rollbacks <= points[0].Rollbacks {
		t.Errorf("rollback cost must grow with skew: %+v", points)
	}
	if points[0].Ops == 0 || points[1].Executes < points[1].Ops {
		t.Errorf("cost accounting looks wrong: %+v", points)
	}
}
