package workload

// The protocol micro-benchmark workloads live here so that the root
// package's bench_test.go and cmd/bayou-bench's -json report measure the
// exact same thing and cannot drift apart.

import (
	"errors"
	"fmt"

	"bayou/internal/cluster"
	"bayou/internal/core"
	"bayou/internal/paxos"
	"bayou/internal/record"
	"bayou/internal/spec"
	"bayou/internal/txn"
)

// MicroWeakInvoke is the Algorithm 2 weak hot path: ops rounds of immediate
// execute + rollback + broadcast effects on a fresh replica, each request
// TOB-committed and drained before the next (the bounded-wait-free fast
// path, BenchmarkWeakInvokeModified).
func MicroWeakInvoke(ops int) error {
	r := core.NewReplica(0, core.NoCircularCausality, func() int64 { return 0 })
	for k := 0; k < ops; k++ {
		eff, err := r.Invoke(spec.Inc("c", 1), false)
		if err != nil {
			return err
		}
		for _, req := range eff.TOBCast {
			if _, err := r.TOBDeliver(req); err != nil {
				return err
			}
		}
		if _, err := r.Drain(); err != nil {
			return err
		}
	}
	return nil
}

// MicroMultiSession is the session-fan-in hot path: `sessions` concurrent
// sequential sessions all bound to replica 0 of a three-replica simulated
// cluster, each issuing `ops` weak increments round-robin, then one settle.
// It measures what the per-replica session multiplexing costs as the
// sessions dimension grows (BenchmarkMultiSessionInvoke and the `sessions`
// field of cmd/bayou-bench's -json report).
func MicroMultiSession(sessions, ops int) error {
	c, err := cluster.New(cluster.Config{N: 3, Variant: core.NoCircularCausality, Seed: 404, StepBatch: 8})
	if err != nil {
		return err
	}
	c.StabilizeOmega(0)
	ids := make([]core.SessionID, sessions)
	for i := range ids {
		if ids[i], err = c.OpenSession(0); err != nil {
			return err
		}
	}
	for k := 0; k < ops; k++ {
		for _, s := range ids {
			if _, err := c.InvokeSession(s, spec.Inc("c", 1), core.Weak); err != nil {
				return err
			}
		}
		c.RunFor(5)
	}
	return c.Settle(0)
}

// MicroGuaranteeSession is MicroMultiSession with every session carrying
// ReadYourWrites|MonotonicReads: the same deployment, the same invocation
// pattern, plus the coverage gate on every invoke. Pairing its record with
// MicroMultiSession's in the -json report pins what guarantee enforcement
// costs on the weak path as the sessions×guarantees matrix grows. An invoke
// that lands while the session's previous write is still parked on its own
// coverage retries after letting the deployment run — that wait is part of
// the price being measured.
func MicroGuaranteeSession(sessions, ops int) error {
	c, err := cluster.New(cluster.Config{N: 3, Variant: core.NoCircularCausality, Seed: 404, StepBatch: 8})
	if err != nil {
		return err
	}
	c.StabilizeOmega(0)
	ids := make([]core.SessionID, sessions)
	for i := range ids {
		if ids[i], err = c.OpenSession(0); err != nil {
			return err
		}
		c.Recorder().SetGuarantees(ids[i], core.ReadYourWrites|core.MonotonicReads, core.WaitForCoverage)
	}
	for k := 0; k < ops; k++ {
		for _, s := range ids {
			for try := 0; ; try++ {
				_, err := c.InvokeSession(s, spec.Inc("c", 1), core.Weak)
				if err == nil {
					break
				}
				if !errors.Is(err, record.ErrSessionBusy) || try > 10_000 {
					return err
				}
				c.RunFor(5)
			}
		}
		c.RunFor(5)
	}
	return c.Settle(0)
}

// SnapshotFixture is a prebuilt single-replica deployment with a long
// committed history, used by the snapshot/recovery benchmarks: building the
// history is O(n) setup, while the measured operations — Snapshot and
// RestoreReplica — must stay O(suffix) when checkpointing is on.
type SnapshotFixture struct {
	Replica *core.Replica
	Snap    core.Snapshot
}

// NewSnapshotFixture invokes, commits and executes `history` weak increments
// on a fresh Algorithm 2 replica, checkpointing after every `every` commits
// (0 = never checkpoint — the unbounded-log baseline), then captures the
// durable snapshot.
func NewSnapshotFixture(history, every int) (*SnapshotFixture, error) {
	r := core.NewReplica(0, core.NoCircularCausality, func() int64 { return 0 })
	for k := 0; k < history; k++ {
		eff, err := r.Invoke(spec.Inc("c"+string(rune('a'+k%16)), 1), false)
		if err != nil {
			return nil, err
		}
		for _, req := range eff.TOBCast {
			if _, err := r.TOBDeliver(req); err != nil {
				return nil, err
			}
		}
		if _, err := r.Drain(); err != nil {
			return nil, err
		}
		if every > 0 && r.CommittedLen()-r.BaseLen() >= every {
			if _, err := r.Checkpoint(r.CommittedLen()); err != nil {
				return nil, err
			}
		}
	}
	return &SnapshotFixture{Replica: r, Snap: r.Snapshot()}, nil
}

// Snapshot takes one durable snapshot of the fixture's replica — the crash
// path both drivers run, measured per call.
func (f *SnapshotFixture) Snapshot() core.Snapshot { return f.Replica.Snapshot() }

// Restore rebuilds a replica from the fixture's snapshot — the recovery
// path, measured per call. It returns an error if the restored replica does
// not reach the snapshot's committed length.
func (f *SnapshotFixture) Restore() error {
	var eff core.Effects
	restored, err := core.RestoreReplica(f.Snap, func() int64 { return 0 }, false, &eff)
	if err != nil {
		return err
	}
	if restored.CommittedLen() != f.Snap.CommittedLen() {
		return errors.New("workload: restored replica lost committed history")
	}
	return nil
}

// MicroSnapshotRestore is the crash–recovery hot path as a one-shot
// workload: build `history` committed ops (checkpointing every `every`), then
// snapshot and restore once. cmd/bayou-bench's -json report runs it so the
// recovery-cost trajectory is recorded alongside the protocol hot paths; the
// root package's BenchmarkSnapshotRestore/BenchmarkCheckpointRecovery
// measure the same fixture with the build excluded from the timed region.
func MicroSnapshotRestore(history, every int) error {
	f, err := NewSnapshotFixture(history, every)
	if err != nil {
		return err
	}
	f.Snap = f.Snapshot()
	return f.Restore()
}

// StrongBurstSessions is how many concurrent sequential sessions the
// strong burst keeps open against the leader. It deliberately exceeds
// the default pipeline window (8): the overflow is what accumulates in
// the proposer queue and rides shared slots, so the burst exercises
// batching and pipelining together rather than just the open window.
const StrongBurstSessions = 32

// strongBurstLease is the lease duration the burst installs when asked
// for lease reads (matches the façade's WithLeaderLease default scale).
const strongBurstLease = 2000

// StrongBurstStats is the deterministic evidence MicroStrongBurstStats
// returns alongside "it finished": the leader's consensus counters and
// the simulated network's message tally, the quantities the scaling test
// pins the ≥10x batching/pipelining win with.
type StrongBurstStats struct {
	Writes int // strong updates committed through consensus
	Reads  int // strong read-only ops issued after the write phase
	// Leader is the leader's consensus counter snapshot after the run:
	// Proposals/DecidedSlots expose the batching ratio, Prepares the
	// Phase-1 skip, BatchedValues the values that rode shared slots.
	Leader paxos.Counters
	// ReadProposals counts consensus proposals issued during the read
	// phase — zero when every read was served under the lease.
	ReadProposals int64
	// NetSent is the total simulated messages sent over the whole run.
	NetSent int64
	// Ticks is the simulated time the whole burst took. Identical op
	// counts divided by Ticks is the deterministic throughput the scaling
	// test compares across configurations — wall-clock-free, so the ≥10x
	// pin cannot flake on a loaded CI machine.
	Ticks int64
}

// MicroStrongBurst is the strong hot path: a three-replica simulated
// cluster with a stable leader, StrongBurstSessions concurrent sessions
// pushing `ops` strong increments through consensus (slot batching and
// pipelining collapse them into few decided slots), then `ops` strong
// reads served locally under the leader lease (MicroStrongBurst in
// cmd/bayou-bench's -json report, BenchmarkStrongBurst in the root
// package).
func MicroStrongBurst(ops int) error {
	_, err := MicroStrongBurstStats(ops, ops, 0, 0, true)
	return err
}

// MicroStrongBurstStats runs the strong burst with explicit knobs —
// pipeline/batchCap zero means the Paxos defaults, batchCap 1 with
// pipeline 1 restores the classic one-value-one-slot baseline — and
// returns the counter evidence. The write phase keeps every session's
// one outstanding strong call in flight and lets the deployment run only
// when the whole fan is awaiting commits; the read phase issues strong
// read-only ops that a held lease serves locally with zero proposal
// rounds (lease=false forces them through consensus for comparison).
func MicroStrongBurstStats(writes, reads, pipeline, batchCap int, lease bool) (StrongBurstStats, error) {
	var st StrongBurstStats
	ccfg := cluster.Config{
		N: 3, Variant: core.NoCircularCausality, Seed: 404, StepBatch: 8,
		PipelineDepth: pipeline, BatchCap: batchCap,
	}
	if lease {
		ccfg.LeaseTicks = strongBurstLease
	}
	c, err := cluster.New(ccfg)
	if err != nil {
		return st, err
	}
	c.StabilizeOmega(0)
	ids := make([]core.SessionID, StrongBurstSessions)
	for i := range ids {
		if ids[i], err = c.OpenSession(0); err != nil {
			return st, err
		}
	}
	phase := func(n int, op spec.Op) error {
		issued := 0
		for issued < n {
			progress := false
			for _, s := range ids {
				if issued >= n {
					break
				}
				if _, err := c.InvokeSession(s, op, core.Strong); err != nil {
					if errors.Is(err, record.ErrSessionBusy) {
						continue
					}
					return err
				}
				issued++
				progress = true
			}
			if !progress {
				c.RunFor(5)
			}
		}
		return c.Settle(0)
	}
	if err := phase(writes, spec.Inc("c", 1)); err != nil {
		return st, err
	}
	if lease {
		if err := waitLease(c); err != nil {
			return st, err
		}
	}
	beforeReads := c.PaxosCounters(0)
	if err := phase(reads, spec.Get("c")); err != nil {
		return st, err
	}
	after := c.PaxosCounters(0)
	st = StrongBurstStats{
		Writes:        writes,
		Reads:         reads,
		Leader:        after,
		ReadProposals: after.Proposals - beforeReads.Proposals,
		NetSent:       c.NetStats().Sent,
		Ticks:         int64(c.Scheduler().Now()),
	}
	return st, nil
}

// LeaseFixture is a prebuilt leased deployment for the per-read
// benchmark: a three-replica cluster whose leader holds the ordering
// lease over a committed history, with one idle session bound to it.
type LeaseFixture struct {
	C    *cluster.Cluster
	Sess core.SessionID
}

// NewLeaseFixture builds the deployment and commits `history` strong
// increments so the lease reads have a non-trivial committed prefix to
// serve from.
func NewLeaseFixture(history int) (*LeaseFixture, error) {
	c, err := cluster.New(cluster.Config{
		N: 3, Variant: core.NoCircularCausality, Seed: 404, StepBatch: 8,
		LeaseTicks: strongBurstLease,
	})
	if err != nil {
		return nil, err
	}
	c.StabilizeOmega(0)
	sess, err := c.OpenSession(0)
	if err != nil {
		return nil, err
	}
	for k := 0; k < history; k++ {
		if _, err := c.InvokeSession(sess, spec.Inc("c", 1), core.Strong); err != nil {
			return nil, err
		}
		if err := c.Settle(0); err != nil {
			return nil, err
		}
	}
	if err := waitLease(c); err != nil {
		return nil, err
	}
	return &LeaseFixture{C: c, Sess: sess}, nil
}

// waitLease runs the deployment until the leader holds the ordering
// lease. The lease may have lapsed in simulated time while a long write
// phase settled; querying TOBLeaseHeld triggers the renewal request, and
// a few ticks deliver the quorum's grants. Once held, the lease cannot
// lapse under a read-only load: lease reads are served synchronously
// without advancing simulated time.
func waitLease(c *cluster.Cluster) error {
	for try := 0; !c.TOBLeaseHeld(0); try++ {
		if try > 1000 {
			return errors.New("workload: leader did not acquire the lease")
		}
		c.RunFor(20)
	}
	return nil
}

// Write commits one strong increment through consensus and settles — the
// measured region of BenchmarkStrongCommitLatency (the batched/pipelined
// proposal path at depth one, since a sequential session has exactly one
// strong call outstanding).
func (f *LeaseFixture) Write() error {
	if _, err := f.C.InvokeSession(f.Sess, spec.Inc("c", 1), core.Strong); err != nil {
		return err
	}
	return f.C.Settle(0)
}

// Read serves one strong read under the lease — the measured region of
// BenchmarkLeaseRead. A read that fails to complete synchronously (the
// lease lapsed, or it fell back to consensus) is an error: the benchmark
// must measure the local path, not a mixture.
func (f *LeaseFixture) Read() error {
	call, err := f.C.InvokeSession(f.Sess, spec.Get("c"), core.Strong)
	if err != nil {
		return err
	}
	if !call.Done() {
		return fmt.Errorf("workload: lease read %s not served locally", call.Dot())
	}
	return nil
}

// transferTxn is the composite unit the txn micros push through the
// machinery: a guarded withdraw plus a deposit, the canonical two-op
// atomic transfer (one dot, one schedule entry, one undo span).
func transferTxn() txn.Txn {
	return txn.New().Require(spec.Withdraw("a", 1)).Do(spec.Deposit("b", 1)).Txn()
}

// MicroTxnWeakRebase is the weak transactional rebase hot path: a funded
// account, one weak transfer txn installed at a far-future timestamp, then
// ops remote deliveries with ever-older timestamps — each rolls the whole
// unit back across its undo span and re-executes it atomically at its new
// position (BenchmarkTxnWeakRebase). It is MicroRollbackReexecute with the
// rolled-back suffix being a multi-op unit instead of a single op, so the
// pair pins what the span machinery adds to the rebase loop.
func MicroTxnWeakRebase(ops int) error {
	r := core.NewReplica(0, core.Original, func() int64 { return 1 << 40 })
	fund := core.Req{
		Timestamp: 0,
		Dot:       core.Dot{Replica: 1, EventNo: 1},
		Op:        spec.Deposit("a", int64(ops)+1),
	}
	if _, err := r.RBDeliver(fund); err != nil {
		return err
	}
	if _, err := r.Drain(); err != nil {
		return err
	}
	if _, err := r.Invoke(transferTxn(), false); err != nil {
		return err
	}
	if _, err := r.Drain(); err != nil {
		return err
	}
	for k := 0; k < ops; k++ {
		req := core.Req{
			Timestamp: int64(k + 1), // always older than the txn
			Dot:       core.Dot{Replica: 1, EventNo: int64(k + 2)},
			Op:        spec.Inc("c", 1),
		}
		if _, err := r.RBDeliver(req); err != nil {
			return err
		}
		if _, err := r.Drain(); err != nil {
			return err
		}
	}
	return nil
}

// MicroTxnStrongCommit is the strong transactional hot path: a three-replica
// simulated cluster with a stable leader and one session committing ops
// strong transfer txns, each unit riding one consensus slot and settling
// before the next (BenchmarkTxnStrongCommit). An aborted transfer is an
// error — the account is funded for exactly ops transfers, so the benchmark
// measures the commit path, not a mixture with the abort path.
func MicroTxnStrongCommit(ops int) error {
	c, err := cluster.New(cluster.Config{N: 3, Variant: core.NoCircularCausality, Seed: 404, StepBatch: 8})
	if err != nil {
		return err
	}
	c.StabilizeOmega(0)
	sess, err := c.OpenSession(0)
	if err != nil {
		return err
	}
	if _, err := c.InvokeSession(sess, spec.Deposit("a", int64(ops)), core.Strong); err != nil {
		return err
	}
	if err := c.Settle(0); err != nil {
		return err
	}
	for k := 0; k < ops; k++ {
		call, err := c.InvokeSession(sess, transferTxn(), core.Strong)
		if err != nil {
			return err
		}
		if err := c.Settle(0); err != nil {
			return err
		}
		if call.Aborted() {
			return fmt.Errorf("workload: strong transfer %d aborted with funds available", k)
		}
	}
	return nil
}

// MicroRollbackReexecute is the reordering hot path: a local request with a
// far-future timestamp, then ops remote deliveries with ever-older
// timestamps, each forcing a rollback and re-execution
// (BenchmarkRollbackReexecute).
func MicroRollbackReexecute(ops int) error {
	r := core.NewReplica(0, core.Original, func() int64 { return 1 << 40 })
	if _, err := r.Invoke(spec.Append("local"), false); err != nil {
		return err
	}
	if _, err := r.Drain(); err != nil {
		return err
	}
	for k := 0; k < ops; k++ {
		req := core.Req{
			Timestamp: int64(k + 1), // always older than the local op
			Dot:       core.Dot{Replica: 1, EventNo: int64(k + 1)},
			Op:        spec.Inc("c", 1),
		}
		if _, err := r.RBDeliver(req); err != nil {
			return err
		}
		if _, err := r.Drain(); err != nil {
			return err
		}
	}
	return nil
}
