package workload

// The protocol micro-benchmark workloads live here so that the root
// package's bench_test.go and cmd/bayou-bench's -json report measure the
// exact same thing and cannot drift apart.

import (
	"errors"

	"bayou/internal/cluster"
	"bayou/internal/core"
	"bayou/internal/record"
	"bayou/internal/spec"
)

// MicroWeakInvoke is the Algorithm 2 weak hot path: ops rounds of immediate
// execute + rollback + broadcast effects on a fresh replica, each request
// TOB-committed and drained before the next (the bounded-wait-free fast
// path, BenchmarkWeakInvokeModified).
func MicroWeakInvoke(ops int) error {
	r := core.NewReplica(0, core.NoCircularCausality, func() int64 { return 0 })
	for k := 0; k < ops; k++ {
		eff, err := r.Invoke(spec.Inc("c", 1), false)
		if err != nil {
			return err
		}
		for _, req := range eff.TOBCast {
			if _, err := r.TOBDeliver(req); err != nil {
				return err
			}
		}
		if _, err := r.Drain(); err != nil {
			return err
		}
	}
	return nil
}

// MicroMultiSession is the session-fan-in hot path: `sessions` concurrent
// sequential sessions all bound to replica 0 of a three-replica simulated
// cluster, each issuing `ops` weak increments round-robin, then one settle.
// It measures what the per-replica session multiplexing costs as the
// sessions dimension grows (BenchmarkMultiSessionInvoke and the `sessions`
// field of cmd/bayou-bench's -json report).
func MicroMultiSession(sessions, ops int) error {
	c, err := cluster.New(cluster.Config{N: 3, Variant: core.NoCircularCausality, Seed: 404, StepBatch: 8})
	if err != nil {
		return err
	}
	c.StabilizeOmega(0)
	ids := make([]core.SessionID, sessions)
	for i := range ids {
		if ids[i], err = c.OpenSession(0); err != nil {
			return err
		}
	}
	for k := 0; k < ops; k++ {
		for _, s := range ids {
			if _, err := c.InvokeSession(s, spec.Inc("c", 1), core.Weak); err != nil {
				return err
			}
		}
		c.RunFor(5)
	}
	return c.Settle(0)
}

// MicroGuaranteeSession is MicroMultiSession with every session carrying
// ReadYourWrites|MonotonicReads: the same deployment, the same invocation
// pattern, plus the coverage gate on every invoke. Pairing its record with
// MicroMultiSession's in the -json report pins what guarantee enforcement
// costs on the weak path as the sessions×guarantees matrix grows. An invoke
// that lands while the session's previous write is still parked on its own
// coverage retries after letting the deployment run — that wait is part of
// the price being measured.
func MicroGuaranteeSession(sessions, ops int) error {
	c, err := cluster.New(cluster.Config{N: 3, Variant: core.NoCircularCausality, Seed: 404, StepBatch: 8})
	if err != nil {
		return err
	}
	c.StabilizeOmega(0)
	ids := make([]core.SessionID, sessions)
	for i := range ids {
		if ids[i], err = c.OpenSession(0); err != nil {
			return err
		}
		c.Recorder().SetGuarantees(ids[i], core.ReadYourWrites|core.MonotonicReads, core.WaitForCoverage)
	}
	for k := 0; k < ops; k++ {
		for _, s := range ids {
			for try := 0; ; try++ {
				_, err := c.InvokeSession(s, spec.Inc("c", 1), core.Weak)
				if err == nil {
					break
				}
				if !errors.Is(err, record.ErrSessionBusy) || try > 10_000 {
					return err
				}
				c.RunFor(5)
			}
		}
		c.RunFor(5)
	}
	return c.Settle(0)
}

// SnapshotFixture is a prebuilt single-replica deployment with a long
// committed history, used by the snapshot/recovery benchmarks: building the
// history is O(n) setup, while the measured operations — Snapshot and
// RestoreReplica — must stay O(suffix) when checkpointing is on.
type SnapshotFixture struct {
	Replica *core.Replica
	Snap    core.Snapshot
}

// NewSnapshotFixture invokes, commits and executes `history` weak increments
// on a fresh Algorithm 2 replica, checkpointing after every `every` commits
// (0 = never checkpoint — the unbounded-log baseline), then captures the
// durable snapshot.
func NewSnapshotFixture(history, every int) (*SnapshotFixture, error) {
	r := core.NewReplica(0, core.NoCircularCausality, func() int64 { return 0 })
	for k := 0; k < history; k++ {
		eff, err := r.Invoke(spec.Inc("c"+string(rune('a'+k%16)), 1), false)
		if err != nil {
			return nil, err
		}
		for _, req := range eff.TOBCast {
			if _, err := r.TOBDeliver(req); err != nil {
				return nil, err
			}
		}
		if _, err := r.Drain(); err != nil {
			return nil, err
		}
		if every > 0 && r.CommittedLen()-r.BaseLen() >= every {
			if _, err := r.Checkpoint(r.CommittedLen()); err != nil {
				return nil, err
			}
		}
	}
	return &SnapshotFixture{Replica: r, Snap: r.Snapshot()}, nil
}

// Snapshot takes one durable snapshot of the fixture's replica — the crash
// path both drivers run, measured per call.
func (f *SnapshotFixture) Snapshot() core.Snapshot { return f.Replica.Snapshot() }

// Restore rebuilds a replica from the fixture's snapshot — the recovery
// path, measured per call. It returns an error if the restored replica does
// not reach the snapshot's committed length.
func (f *SnapshotFixture) Restore() error {
	var eff core.Effects
	restored, err := core.RestoreReplica(f.Snap, func() int64 { return 0 }, false, &eff)
	if err != nil {
		return err
	}
	if restored.CommittedLen() != f.Snap.CommittedLen() {
		return errors.New("workload: restored replica lost committed history")
	}
	return nil
}

// MicroSnapshotRestore is the crash–recovery hot path as a one-shot
// workload: build `history` committed ops (checkpointing every `every`), then
// snapshot and restore once. cmd/bayou-bench's -json report runs it so the
// recovery-cost trajectory is recorded alongside the protocol hot paths; the
// root package's BenchmarkSnapshotRestore/BenchmarkCheckpointRecovery
// measure the same fixture with the build excluded from the timed region.
func MicroSnapshotRestore(history, every int) error {
	f, err := NewSnapshotFixture(history, every)
	if err != nil {
		return err
	}
	f.Snap = f.Snapshot()
	return f.Restore()
}

// MicroRollbackReexecute is the reordering hot path: a local request with a
// far-future timestamp, then ops remote deliveries with ever-older
// timestamps, each forcing a rollback and re-execution
// (BenchmarkRollbackReexecute).
func MicroRollbackReexecute(ops int) error {
	r := core.NewReplica(0, core.Original, func() int64 { return 1 << 40 })
	if _, err := r.Invoke(spec.Append("local"), false); err != nil {
		return err
	}
	if _, err := r.Drain(); err != nil {
		return err
	}
	for k := 0; k < ops; k++ {
		req := core.Req{
			Timestamp: int64(k + 1), // always older than the local op
			Dot:       core.Dot{Replica: 1, EventNo: int64(k + 1)},
			Op:        spec.Inc("c", 1),
		}
		if _, err := r.RBDeliver(req); err != nil {
			return err
		}
		if _, err := r.Drain(); err != nil {
			return err
		}
	}
	return nil
}
