// Package workload drives the quantitative experiments of the reproduction:
// the §2.3 progress phenomena (E3: unbounded weak-response latency on a slow
// replica; E4: clock skew converting the cost into rollbacks on the fast
// replicas), the baseline comparison of §2.2/§6 (E9), and the rollback-cost
// profile of the protocol (E12). Each function returns plain data rows that
// the benchmark harness and cmd/bayou-bench print as the corresponding
// table or series.
package workload

import (
	"errors"
	"fmt"

	"bayou/internal/baseline/ecstore"
	"bayou/internal/baseline/gsp"
	"bayou/internal/baseline/smr"
	"bayou/internal/check"
	"bayou/internal/cluster"
	"bayou/internal/core"
	"bayou/internal/fd"
	"bayou/internal/sim"
	"bayou/internal/simnet"
	"bayou/internal/spec"
)

// SeriesPoint is one point of a per-round series.
type SeriesPoint struct {
	Round int
	Value int64
}

// SlowReplicaLatency reproduces the §2.3 argument (E3): n replicas, one of
// which processes internal steps slowDelay× slower, all saturated with one
// weak request per replica per Δt. It returns the response latency of the
// slow replica's successive own invocations. Under Algorithm 1 the series
// grows without bound; under Algorithm 2 it is identically zero.
func SlowReplicaLatency(variant core.Variant, replicas, rounds int, slowDelay, dt sim.Time) ([]SeriesPoint, error) {
	slow := core.ReplicaID(replicas - 1)
	c, err := cluster.New(cluster.Config{
		N:         replicas,
		Variant:   variant,
		Seed:      101,
		ProcDelay: map[core.ReplicaID]sim.Time{slow: slowDelay},
	})
	if err != nil {
		return nil, err
	}
	c.StabilizeOmega(0)
	type tagged struct {
		round int
		call  *cluster.Call
	}
	var slowCalls []tagged
	for round := 0; round < rounds; round++ {
		for i := 0; i < replicas; i++ {
			call, invErr := c.Invoke(core.ReplicaID(i), spec.Append("z"), core.Weak)
			if errors.Is(invErr, cluster.ErrSessionBusy) {
				continue
			}
			if invErr != nil {
				return nil, invErr
			}
			if core.ReplicaID(i) == slow {
				slowCalls = append(slowCalls, tagged{round: round, call: call})
			}
		}
		c.RunFor(dt)
	}
	if err := c.Settle(20_000_000); err != nil {
		return nil, err
	}
	out := make([]SeriesPoint, 0, len(slowCalls))
	for _, tc := range slowCalls {
		if !tc.call.Done() {
			return nil, fmt.Errorf("workload: call %s never completed", tc.call.Dot())
		}
		out = append(out, SeriesPoint{Round: tc.round, Value: tc.call.WallReturn() - tc.call.WallInvoke()})
	}
	return out, nil
}

// ClockSkewRollbacks reproduces the second half of the §2.3 argument (E4):
// slowing the slow replica's *clock* gives its requests unfairly low
// timestamps, which schedules them before already-executed requests on the
// other replicas — the latency problem turns into a growing number of
// rollbacks there. It returns total rollbacks on the fast replicas for each
// slowdown factor.
func ClockSkewRollbacks(variant core.Variant, replicas, rounds int, slowdowns []int64) ([]SeriesPoint, error) {
	out := make([]SeriesPoint, 0, len(slowdowns))
	for idx, slowdown := range slowdowns {
		skewed := core.ReplicaID(replicas - 1)
		c, err := cluster.New(cluster.Config{
			N:             replicas,
			Variant:       variant,
			Seed:          202,
			ClockSlowdown: map[core.ReplicaID]int64{skewed: slowdown},
		})
		if err != nil {
			return nil, err
		}
		c.StabilizeOmega(0)
		for round := 0; round < rounds; round++ {
			for i := 0; i < replicas; i++ {
				_, invErr := c.Invoke(core.ReplicaID(i), spec.Append("z"), core.Weak)
				if invErr != nil && !errors.Is(invErr, cluster.ErrSessionBusy) {
					return nil, invErr
				}
			}
			c.RunFor(60)
		}
		if err := c.Settle(20_000_000); err != nil {
			return nil, err
		}
		var fastRollbacks int64
		for id, st := range c.Stats() {
			if id != skewed {
				fastRollbacks += st.Rollbacks
			}
		}
		out = append(out, SeriesPoint{Round: idx, Value: fastRollbacks})
		_ = slowdown
	}
	return out, nil
}

// ComparisonRow is one system's profile in the E9 comparison table.
type ComparisonRow struct {
	System                  string
	WeakAvailableInMinority bool   // does a weak/local op answer inside a minority partition?
	StrongSupported         bool   // does the system offer consensus-backed operations at all?
	StrongInMinority        string // behaviour of a strong op in the minority: "blocks", "n/a"
	Rollbacks               int64  // state rollbacks across the run
	Reordered               int    // events that perceived a non-final order
	ConvergedAfterHeal      bool
}

// Compare runs the same partition-then-heal workload shape over Bayou and
// the three baselines (E9).
func Compare(seed int64) ([]ComparisonRow, error) {
	rows := make([]ComparisonRow, 0, 4)

	bayouRow, err := compareBayou(seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, bayouRow)
	rows = append(rows, compareECStore(seed))
	rows = append(rows, compareSMR(seed))
	rows = append(rows, compareGSP(seed))
	return rows, nil
}

func compareBayou(seed int64) (ComparisonRow, error) {
	row := ComparisonRow{System: "bayou (Alg. 2 + Paxos TOB)", StrongSupported: true}
	// Replica 0's clock runs slow: its requests carry low timestamps but
	// reach the leader late, so timestamp order and commit order diverge
	// — the recipe for temporary operation reordering.
	c, err := cluster.New(cluster.Config{
		N: 3, Variant: core.NoCircularCausality, Seed: seed,
		ClockSlowdown: map[core.ReplicaID]int64{0: 8},
	})
	if err != nil {
		return row, err
	}
	c.StabilizeOmega(1)
	c.RunFor(25) // leadership established
	if _, err := c.Invoke(1, spec.Append("q"), core.Weak); err != nil {
		return row, err
	}
	c.RunFor(5)
	if _, err := c.Invoke(0, spec.Append("p"), core.Weak); err != nil {
		return row, err
	}
	c.RunFor(17)
	// The reader observes timestamp order p,q before the opposite commit
	// order q,p arrives.
	if _, err := c.Invoke(2, spec.ListRead(), core.Weak); err != nil {
		return row, err
	}
	if err := c.Settle(0); err != nil {
		return row, err
	}
	// Partition: minority {0}, majority {1, 2}.
	c.Partition([]core.ReplicaID{0}, []core.ReplicaID{1, 2})
	weakMin, err := c.Invoke(0, spec.Append("w"), core.Weak)
	if err != nil {
		return row, err
	}
	strongMin, err := c.Invoke(0, spec.Append("s"), core.Strong)
	if err == nil {
		c.RunFor(3_000)
		row.StrongInMinority = "blocks"
		if strongMin.Done() {
			row.StrongInMinority = "answers (!)"
		}
	}
	c.RunFor(2_000)
	row.WeakAvailableInMinority = weakMin.Done()
	c.Heal()
	c.StabilizeOmega(1)
	if err := c.Settle(0); err != nil {
		return row, err
	}
	c.MarkStable()
	h, err := c.History()
	if err != nil {
		return row, err
	}
	w := check.NewWitness(h)
	row.Reordered = w.CountReordered()
	for _, st := range c.Stats() {
		row.Rollbacks += st.Rollbacks
	}
	row.ConvergedAfterHeal = spec.Equal(
		c.Replica(0).Read(spec.DefaultListID), c.Replica(1).Read(spec.DefaultListID)) &&
		spec.Equal(c.Replica(1).Read(spec.DefaultListID), c.Replica(2).Read(spec.DefaultListID))
	return row, nil
}

func compareECStore(seed int64) ComparisonRow {
	row := ComparisonRow{System: "ec-store (LWW, RB only)", StrongSupported: false, StrongInMinority: "n/a"}
	sched := sim.New(seed)
	net := simnet.New(sched)
	reps := make([]*ecstore.Replica, 3)
	for i := range reps {
		reps[i] = ecstore.New(core.ReplicaID(i), sched, net)
		mux := &simnet.Mux{}
		mux.Add(reps[i].Handle)
		net.Register(simnet.NodeID(i), mux.Handler())
	}
	reps[0].Put("k", "pre")
	sched.Run(0)
	net.Partition([]simnet.NodeID{0}, []simnet.NodeID{1, 2})
	reps[0].Put("k", "minority")
	sched.RunFor(50)
	// Availability = the write is locally visible at once.
	row.WeakAvailableInMinority = spec.Equal(reps[0].Get("k"), "minority")
	net.Heal()
	sched.Run(0)
	row.ConvergedAfterHeal = spec.Equal(reps[0].Get("k"), reps[1].Get("k")) &&
		spec.Equal(reps[1].Get("k"), reps[2].Get("k"))
	// No rollbacks and no reordering by construction (single ordering
	// method; see the ecstore package tests).
	return row
}

func compareSMR(seed int64) ComparisonRow {
	row := ComparisonRow{System: "smr (all ops via TOB)", StrongSupported: true, StrongInMinority: "blocks"}
	sched := sim.New(seed)
	net := simnet.New(sched)
	omega := fd.New()
	peers := []simnet.NodeID{0, 1, 2}
	reps := make([]*smr.Replica, 3)
	for i := range reps {
		reps[i] = smr.New(core.ReplicaID(i), peers, sched, net, omega)
		mux := &simnet.Mux{}
		mux.Add(reps[i].Handle)
		net.Register(simnet.NodeID(i), mux.Handler())
	}
	omega.Stabilize(peers, 1)
	pre := reps[1].Invoke(spec.Append("pre"))
	sched.RunFor(2_000)
	_ = pre
	net.Partition([]simnet.NodeID{0}, []simnet.NodeID{1, 2})
	minority := reps[0].Invoke(spec.Append("m"))
	sched.RunFor(3_000)
	row.WeakAvailableInMinority = minority.Done // false: SMR has no weak mode
	net.Heal()
	omega.Stabilize(peers, 1)
	sched.Run(5_000_000)
	row.ConvergedAfterHeal = spec.Equal(reps[0].Read(spec.DefaultListID), reps[1].Read(spec.DefaultListID)) &&
		spec.Equal(reps[1].Read(spec.DefaultListID), reps[2].Read(spec.DefaultListID))
	return row
}

func compareGSP(seed int64) ComparisonRow {
	row := ComparisonRow{System: "gsp (cloud sequencer)", StrongSupported: false, StrongInMinority: "n/a"}
	sched := sim.New(seed)
	net := simnet.New(sched)
	cloud := gsp.NewCloud(0, net)
	cloudMux := &simnet.Mux{}
	cloudMux.Add(cloud.Handle)
	net.Register(0, cloudMux.Handler())
	cs := make([]*gsp.Client, 2)
	for i := range cs {
		node := simnet.NodeID(i + 1)
		cs[i] = gsp.NewClient(core.ReplicaID(i+1), node, 0, sched, net)
		mux := &simnet.Mux{}
		mux.Add(cs[i].Handle)
		net.Register(node, mux.Handler())
	}
	cs[0].Update(spec.Append("pre"))
	sched.Run(0)
	// Cloud outage = the partition case.
	net.Partition([]simnet.NodeID{0}, []simnet.NodeID{1, 2})
	v := cs[0].Update(spec.Append("m"))
	row.WeakAvailableInMinority = spec.Equal(v, "prem")
	sched.RunFor(100)
	net.Heal()
	sched.Run(0)
	row.ConvergedAfterHeal = spec.Equal(cs[0].Read(spec.ListRead()), cs[1].Read(spec.ListRead()))
	return row
}

// CostPoint is one point of the E12 rollback-cost sweep.
type CostPoint struct {
	Slowdown       int64
	Rollbacks      int64
	Executes       int64
	Ops            int64
	RollbacksPerOp float64
}

// RollbackCostSweep measures how the divergence between timestamp order and
// commit order (induced by clock skew) translates into rollback and
// re-execution work (E12).
func RollbackCostSweep(replicas, rounds int, slowdowns []int64) ([]CostPoint, error) {
	out := make([]CostPoint, 0, len(slowdowns))
	for _, slowdown := range slowdowns {
		skewed := core.ReplicaID(replicas - 1)
		c, err := cluster.New(cluster.Config{
			N:             replicas,
			Variant:       core.NoCircularCausality,
			Seed:          303,
			ClockSlowdown: map[core.ReplicaID]int64{skewed: slowdown},
		})
		if err != nil {
			return nil, err
		}
		c.StabilizeOmega(0)
		var ops int64
		for round := 0; round < rounds; round++ {
			for i := 0; i < replicas; i++ {
				_, invErr := c.Invoke(core.ReplicaID(i), spec.Append("z"), core.Weak)
				if invErr != nil && !errors.Is(invErr, cluster.ErrSessionBusy) {
					return nil, invErr
				}
				ops++
			}
			c.RunFor(60)
		}
		if err := c.Settle(20_000_000); err != nil {
			return nil, err
		}
		p := CostPoint{Slowdown: slowdown, Ops: ops}
		for _, st := range c.Stats() {
			p.Rollbacks += st.Rollbacks
			p.Executes += st.Executes
		}
		p.RollbacksPerOp = float64(p.Rollbacks) / float64(ops)
		out = append(out, p)
	}
	return out, nil
}
