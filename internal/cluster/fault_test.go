package cluster

import (
	"errors"
	"testing"

	"bayou/internal/check"
	"bayou/internal/core"
	"bayou/internal/spec"
)

// assertConverged checks that every replica holds the same committed order
// and that the order has the expected length.
func assertConverged(t *testing.T, c *Cluster, n, wantCommits int) {
	t.Helper()
	ref := c.Replica(0).Committed()
	if len(ref) != wantCommits {
		t.Fatalf("replica 0 committed %d ops, want %d", len(ref), wantCommits)
	}
	for i := 1; i < n; i++ {
		got := c.Replica(core.ReplicaID(i)).Committed()
		if len(got) != len(ref) {
			t.Fatalf("replica %d committed %d ops, replica 0 %d", i, len(got), len(ref))
		}
		for j := range ref {
			if got[j].Dot != ref[j].Dot {
				t.Fatalf("replica %d committed order diverges at %d: %s vs %s", i, j, got[j].Dot, ref[j].Dot)
			}
		}
	}
}

// TestCrashRecoverCatchesUp crashes a replica mid-run, keeps the rest
// working, recovers it, and demands full convergence: the recovered replica
// refetches the tentative suffix via RB resync and the decided slots via
// the TOB learner catch-up.
func TestCrashRecoverCatchesUp(t *testing.T) {
	c, err := New(Config{N: 3, Variant: core.NoCircularCausality, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeOmega(0)
	mustInvoke(t, c, 2, spec.Append("pre"), core.Weak)
	mustSettle(t, c)

	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	if !c.Crashed(2) {
		t.Fatal("replica 2 must report crashed")
	}
	if _, err := c.Invoke(2, spec.Append("x"), core.Weak); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("invoke on crashed replica: err = %v, want ErrReplicaDown", err)
	}
	// The deployment keeps working without the crashed replica.
	mustInvoke(t, c, 0, spec.Append("while-down"), core.Weak)
	mustInvoke(t, c, 1, spec.Inc("ctr", 5), core.Weak)
	strongCall := mustInvoke(t, c, 0, spec.Duplicate(), core.Strong)
	mustSettle(t, c)
	if !strongCall.Done() {
		t.Fatal("strong op must commit with a majority alive")
	}
	if got := len(c.Replica(2).Committed()); got != 1 {
		t.Fatalf("crashed replica advanced: %d committed, want 1", got)
	}

	if err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	mustSettle(t, c)
	assertConverged(t, c, 3, 4) // pre, while-down, inc, duplicate
	if v := c.Replica(2).Read("ctr"); !spec.Equal(v, int64(5)) {
		t.Errorf("recovered ctr = %v, want 5", v)
	}
	// The recovered replica serves clients again.
	mustInvoke(t, c, 2, spec.Append("post"), core.Weak)
	mustSettle(t, c)
	c.MarkStable()
	for i := 0; i < 3; i++ {
		mustInvoke(t, c, core.ReplicaID(i), spec.ListRead(), core.Weak)
	}
	mustSettle(t, c)

	h, err := c.History()
	if err != nil {
		t.Fatal(err)
	}
	w := check.NewWitness(h)
	for _, rep := range []check.Report{w.FEC(core.Weak), w.BEC(core.Strong), w.Seq(core.Strong)} {
		if !rep.OK() {
			t.Errorf("crash–recover run violates guarantee:\n%s", rep)
		}
	}
}

// TestPrimaryTOBCannotCrashPrimary: forwards toward a crashed primary are
// lost with nothing to retransmit them, so the fault plane refuses the
// crash outright instead of wedging strong operations forever.
func TestPrimaryTOBCannotCrashPrimary(t *testing.T) {
	c, err := New(Config{N: 3, Variant: core.NoCircularCausality, Seed: 19, TOB: PrimaryTOB})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(0); err == nil {
		t.Fatal("crashing the primary under PrimaryTOB must be rejected")
	}
	// Non-primary replicas crash and recover normally.
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	mustInvoke(t, c, 0, spec.Append("a"), core.Weak)
	mustSettle(t, c)
	if err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	mustSettle(t, c)
	assertConverged(t, c, 3, 1)
}

// TestCrashedLeaderRecoversAndCommits crashes the Ω-designated leader while
// a strong operation is in flight: the operation stalls (no consensus
// progress without the leader), then completes once the leader recovers and
// its Resync re-establishes the ballot.
func TestCrashedLeaderRecoversAndCommits(t *testing.T) {
	c, err := New(Config{N: 3, Variant: core.NoCircularCausality, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeOmega(0)
	mustInvoke(t, c, 1, spec.Append("a"), core.Weak)
	mustSettle(t, c)

	if err := c.Crash(0); err != nil {
		t.Fatal(err)
	}
	strong := mustInvoke(t, c, 1, spec.Duplicate(), core.Strong)
	c.RunFor(5_000)
	if strong.Done() {
		t.Fatal("strong op committed with the only trusted leader crashed")
	}
	if err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	mustSettle(t, c)
	if !strong.Done() {
		t.Fatal("strong op still pending after leader recovery")
	}
	assertConverged(t, c, 3, 2)
}

// TestCrashWithPendingContinuationAnswersAfterRecovery crashes a replica
// holding a pending strong call; the continuation survives in the durable
// snapshot, the request commits while the replica is down (it had already
// reached the consensus pool), and recovery answers the client.
func TestCrashWithPendingContinuationAnswersAfterRecovery(t *testing.T) {
	c, err := New(Config{N: 3, Variant: core.NoCircularCausality, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeOmega(0)
	mustInvoke(t, c, 1, spec.Append("a"), core.Weak)
	mustSettle(t, c)

	strong := mustInvoke(t, c, 2, spec.Duplicate(), core.Strong)
	weakSess, err := c.OpenSession(2)
	if err != nil {
		t.Fatal(err)
	}
	weak, err := c.InvokeSession(weakSess, spec.Append("b"), core.Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !weak.Done() {
		t.Fatal("Algorithm 2 weak ops answer immediately")
	}
	// Crash before any consensus round-trip completes.
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	mustSettle(t, c)
	if strong.Done() {
		t.Fatal("strong response cannot reach a crashed replica's client")
	}
	if _, ok := weak.Stable(); ok {
		t.Fatal("weak stable notice cannot reach a crashed replica's client")
	}

	if err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	mustSettle(t, c)
	if !strong.Done() {
		t.Fatal("recovered replica must answer the surviving strong continuation")
	}
	if resp := strong.Response(); !resp.Committed {
		t.Errorf("recovered strong response not committed: %+v", resp)
	}
	if _, ok := weak.Stable(); !ok {
		t.Error("recovered replica must deliver the owed weak stable notice")
	}
	assertConverged(t, c, 3, 3)
}
