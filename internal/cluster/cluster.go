// Package cluster assembles a full Bayou deployment inside the simulator:
// core replicas (Algorithm 1 or 2), reliable broadcast, total order
// broadcast (Paxos- or primary-based), the failure detector Ω, and the
// network — and records every invocation and response into a history with
// the witness data the checkers consume.
//
// The cluster is the experiment driver: it exposes partitions, Ω
// stabilization, per-replica processing delay and clock skew (§2.3), and
// either automatic internal-step scheduling or manual stepping (used by the
// scenario package to reproduce the exact schedules of Figures 1 and 2,
// where "for every operation, its local execution is for some reason
// delayed").
package cluster

import (
	"errors"
	"fmt"

	"bayou/internal/core"
	"bayou/internal/fd"
	"bayou/internal/history"
	"bayou/internal/rb"
	"bayou/internal/sim"
	"bayou/internal/simnet"
	"bayou/internal/spec"
	"bayou/internal/tob"
)

// TOBKind selects the total-order-broadcast implementation.
type TOBKind int

const (
	// PaxosTOB is the consensus-based TOB of the modified protocol.
	PaxosTOB TOBKind = iota + 1
	// PrimaryTOB is the original Bayou primary-commit scheme (replica 0
	// is the primary); the E11 ablation.
	PrimaryTOB
)

// Config parametrizes a cluster.
type Config struct {
	N       int          // number of replicas (≥ 1)
	Variant core.Variant // Original (Alg. 1) or NoCircularCausality (Alg. 2)
	TOB     TOBKind      // defaults to PaxosTOB
	Seed    int64        // scheduler seed
	Latency sim.Time     // link latency (default 10)

	// ProcDelay is the virtual time one internal step (rollback or
	// execute) takes, per replica; missing entries default to 1. The
	// §2.3 slow replica is modelled with a large entry.
	ProcDelay map[core.ReplicaID]sim.Time

	// ClockSlowdown divides a replica's clock (§2.3's "artificially
	// slowing the clock on Rs"); missing entries default to 1.
	ClockSlowdown map[core.ReplicaID]int64

	// ManualStepping disables automatic scheduling of internal steps;
	// the scenario drives StepReplica/DrainReplica explicitly.
	ManualStepping bool
}

// Call is a client's handle on one invocation.
type Call struct {
	Dot      core.Dot
	Op       spec.Op
	Level    core.Level
	Done     bool
	Response core.Response
	// WallInvoke/WallReturn bracket the call in simulated time.
	WallInvoke int64
	WallReturn int64

	// StableDone/StableResponse carry the optional stable notification
	// for weak updating operations (footnote 3 of the paper; the
	// parenthesized values of Figure 1). Strong operations are stable at
	// Response already; weak read-only operations never stabilize.
	StableDone     bool
	StableResponse core.Response
	WallStable     int64
}

// Cluster is a running deployment. Construct with New. Not safe for
// concurrent use: everything runs on the simulator's single thread.
type Cluster struct {
	cfg   Config
	sched *sim.Scheduler
	net   *simnet.Network
	omega *fd.Omega
	nodes []*node
	rec   *recorder
}

type node struct {
	id          core.ReplicaID
	replica     *core.Replica
	rbNode      *rb.Node
	tobNode     tob.TOB
	procDelay   sim.Time
	stepPending bool
	cl          *Cluster
}

// New builds and wires a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.N < 1 {
		return nil, errors.New("cluster: need at least one replica")
	}
	if cfg.Variant == 0 {
		cfg.Variant = core.NoCircularCausality
	}
	if cfg.TOB == 0 {
		cfg.TOB = PaxosTOB
	}
	if cfg.Latency == 0 {
		cfg.Latency = 10
	}
	c := &Cluster{cfg: cfg, sched: sim.New(cfg.Seed), rec: newRecorder()}
	c.net = simnet.New(c.sched)
	c.net.SetLatency(func(from, to simnet.NodeID) sim.Time {
		if from == to {
			return 1
		}
		return cfg.Latency
	})
	c.omega = fd.New()

	peers := make([]simnet.NodeID, cfg.N)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	for i := 0; i < cfg.N; i++ {
		id := core.ReplicaID(i)
		slow := cfg.ClockSlowdown[id]
		if slow <= 0 {
			slow = 1
		}
		n := &node{id: id, cl: c, procDelay: 1}
		if d, ok := cfg.ProcDelay[id]; ok && d > 0 {
			n.procDelay = d
		}
		n.replica = core.NewReplica(id, cfg.Variant, func() int64 {
			return int64(c.sched.Now()) / slow
		})
		n.rbNode = rb.New(simnet.NodeID(i), c.sched, c.net, n.onRBDeliver)
		switch cfg.TOB {
		case PrimaryTOB:
			n.tobNode = tob.NewPrimary(simnet.NodeID(i), 0, c.net, n.onTOBDeliver)
		default:
			n.tobNode = tob.NewPaxos(simnet.NodeID(i), peers, c.sched, c.net, c.omega, n.onTOBDeliver)
		}
		mux := &simnet.Mux{}
		mux.Add(n.rbNode.Handle)
		mux.Add(n.tobNode.Handle)
		c.net.Register(simnet.NodeID(i), mux.Handler())
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// Scheduler exposes the simulation scheduler (scenarios schedule their own
// injections with it).
func (c *Cluster) Scheduler() *sim.Scheduler { return c.sched }

// Network exposes the network (partitions, crashes).
func (c *Cluster) Network() *simnet.Network { return c.net }

// Omega exposes the failure detector oracle.
func (c *Cluster) Omega() *fd.Omega { return c.omega }

// Replica returns the core replica (introspection for tests and examples).
func (c *Cluster) Replica(id core.ReplicaID) *core.Replica { return c.nodes[id].replica }

// StabilizeOmega makes every replica trust leader — the stable-run switch.
func (c *Cluster) StabilizeOmega(leader core.ReplicaID) {
	nodes := make([]simnet.NodeID, c.cfg.N)
	for i := range nodes {
		nodes[i] = simnet.NodeID(i)
	}
	c.omega.Stabilize(nodes, simnet.NodeID(leader))
}

// DestabilizeOmega clears all leader hints — the asynchronous-run switch.
func (c *Cluster) DestabilizeOmega() {
	nodes := make([]simnet.NodeID, c.cfg.N)
	for i := range nodes {
		nodes[i] = simnet.NodeID(i)
	}
	c.omega.Destabilize(nodes)
}

// Partition splits the network (delegates to simnet).
func (c *Cluster) Partition(cells ...[]core.ReplicaID) {
	conv := make([][]simnet.NodeID, len(cells))
	for i, cell := range cells {
		for _, id := range cell {
			conv[i] = append(conv[i], simnet.NodeID(id))
		}
	}
	c.net.Partition(conv...)
}

// Heal removes all partitions.
func (c *Cluster) Heal() { c.net.Heal() }

// ErrSessionBusy reports an invocation on a session whose previous operation
// has not yet returned. Well-formed histories (§3.2) require sessions to be
// sequential: a client blocked on a strong operation cannot issue more work.
var ErrSessionBusy = errors.New("cluster: session awaiting a response")

// Invoke submits an operation at a replica and returns the call handle,
// which fills in when the response arrives.
func (c *Cluster) Invoke(id core.ReplicaID, op spec.Op, level core.Level) (*Call, error) {
	if c.rec.sessionBusy(id) {
		return nil, fmt.Errorf("%w: replica %d", ErrSessionBusy, id)
	}
	n := c.nodes[id]
	eff, err := n.replica.Invoke(op, level == core.Strong)
	if err != nil {
		return nil, fmt.Errorf("cluster: invoke on %d: %w", id, err)
	}
	// The dot of the request just created is the replica's latest.
	var d core.Dot
	var ts int64
	var tobCast bool
	switch {
	case len(eff.TOBCast) > 0:
		d, ts, tobCast = eff.TOBCast[0].Dot, eff.TOBCast[0].Timestamp, true
	case len(eff.RBCast) > 0:
		d, ts = eff.RBCast[0].Dot, eff.RBCast[0].Timestamp
	case len(eff.Responses) > 0:
		d, ts = eff.Responses[0].Req.Dot, eff.Responses[0].Req.Timestamp
	default:
		return nil, fmt.Errorf("cluster: invoke on %d produced no request", id)
	}
	call := c.rec.invoked(id, d, op, level, ts, tobCast, int64(c.sched.Now()))
	n.route(eff)
	n.scheduleStep()
	return call, nil
}

// StepReplica performs one internal step at the replica (manual mode).
func (c *Cluster) StepReplica(id core.ReplicaID) error {
	n := c.nodes[id]
	eff, err := n.replica.Step()
	if err != nil {
		return err
	}
	n.route(eff)
	return nil
}

// DrainReplica runs internal steps at the replica until passive (manual
// mode).
func (c *Cluster) DrainReplica(id core.ReplicaID) error {
	n := c.nodes[id]
	for n.replica.HasInternalWork() {
		if err := c.StepReplica(id); err != nil {
			return err
		}
	}
	return nil
}

// Settle runs the simulation to quiescence. It returns an error when the
// step budget is exhausted first (protocol livelock) — callers in
// asynchronous-run scenarios use RunFor instead, since pending strong
// operations legitimately keep retry timers alive.
func (c *Cluster) Settle(budget int64) error {
	if budget <= 0 {
		budget = 5_000_000
	}
	if _, ok := c.sched.Run(budget); !ok {
		return errors.New("cluster: simulation did not quiesce within budget")
	}
	return nil
}

// RunFor advances the simulation by d ticks.
func (c *Cluster) RunFor(d sim.Time) { c.sched.RunFor(d) }

// MarkStable records the quiescence cutoff for the history's finite-trace
// predicates: events invoked after this call act as probes.
func (c *Cluster) MarkStable() { c.rec.markStable() }

// History assembles the recorded history.
func (c *Cluster) History() (*history.History, error) { return c.rec.history() }

// Calls returns every recorded call in invocation order.
func (c *Cluster) Calls() []*Call { return c.rec.callList }

// Stats aggregates replica cost counters (rollbacks/executions), keyed by
// replica.
func (c *Cluster) Stats() map[core.ReplicaID]core.Stats {
	out := make(map[core.ReplicaID]core.Stats, len(c.nodes))
	for _, n := range c.nodes {
		out[n.id] = n.replica.Stats()
	}
	return out
}

// NetStats exposes network counters.
func (c *Cluster) NetStats() simnet.Stats { return c.net.Stats() }

// CompactAll runs Bayou's log compaction on every replica, releasing undo
// data for committed prefixes; it returns the number of entries released.
func (c *Cluster) CompactAll() int {
	total := 0
	for _, n := range c.nodes {
		total += n.replica.Compact()
	}
	return total
}

// route dispatches a replica's effects into the broadcast layers and the
// recorder.
func (n *node) route(eff core.Effects) {
	for _, r := range eff.RBCast {
		n.rbNode.Cast(rb.Message{ID: r.ID(), Payload: r})
	}
	for _, r := range eff.TOBCast {
		n.tobNode.Cast(r.ID(), r)
	}
	for _, resp := range eff.Responses {
		n.cl.rec.responded(resp, int64(n.cl.sched.Now()))
	}
	for _, notice := range eff.StableNotices {
		n.cl.rec.stableNoticed(notice, int64(n.cl.sched.Now()))
	}
}

// onRBDeliver feeds RB deliveries into the replica.
func (n *node) onRBDeliver(m rb.Message) {
	r, ok := m.Payload.(core.Req)
	if !ok {
		return
	}
	eff, err := n.replica.RBDeliver(r)
	if err != nil {
		panic(fmt.Sprintf("cluster: RBDeliver on %d: %v", n.id, err))
	}
	n.route(eff)
	n.scheduleStep()
}

// onTOBDeliver feeds TOB deliveries into the replica and records the global
// tobNo.
func (n *node) onTOBDeliver(tobNo int64, m tob.Message) {
	r, ok := m.Payload.(core.Req)
	if !ok {
		return
	}
	n.cl.rec.tobDelivered(r.Dot, tobNo)
	eff, err := n.replica.TOBDeliver(r)
	if err != nil {
		panic(fmt.Sprintf("cluster: TOBDeliver on %d: %v", n.id, err))
	}
	n.route(eff)
	n.scheduleStep()
}

// scheduleStep arranges the next internal step after procDelay, unless in
// manual mode or one is already pending.
func (n *node) scheduleStep() {
	if n.cl.cfg.ManualStepping || n.stepPending || !n.replica.HasInternalWork() {
		return
	}
	n.stepPending = true
	n.cl.sched.After(n.procDelay, func() {
		n.stepPending = false
		eff, err := n.replica.Step()
		if err != nil {
			panic(fmt.Sprintf("cluster: step on %d: %v", n.id, err))
		}
		n.route(eff)
		n.scheduleStep()
	})
}
