// Package cluster assembles a full Bayou deployment inside the simulator:
// core replicas (Algorithm 1 or 2), reliable broadcast, total order
// broadcast (Paxos- or primary-based), the failure detector Ω, and the
// network — and records every invocation and response into a history with
// the witness data the checkers consume.
//
// The cluster is the experiment driver: it exposes partitions, Ω
// stabilization, per-replica processing delay and clock skew (§2.3), and
// either automatic internal-step scheduling or manual stepping (used by the
// scenario package to reproduce the exact schedules of Figures 1 and 2,
// where "for every operation, its local execution is for some reason
// delayed").
package cluster

import (
	"errors"
	"fmt"

	"bayou/internal/core"
	"bayou/internal/fd"
	"bayou/internal/history"
	"bayou/internal/paxos"
	"bayou/internal/rb"
	"bayou/internal/record"
	"bayou/internal/sim"
	"bayou/internal/simnet"
	"bayou/internal/spec"
	"bayou/internal/tob"
)

// TOBKind selects the total-order-broadcast implementation.
type TOBKind int

const (
	// PaxosTOB is the consensus-based TOB of the modified protocol.
	PaxosTOB TOBKind = iota + 1
	// PrimaryTOB is the original Bayou primary-commit scheme (replica 0
	// is the primary); the E11 ablation.
	PrimaryTOB
)

// Config parametrizes a cluster.
type Config struct {
	N       int          // number of replicas (≥ 1)
	Variant core.Variant // Original (Alg. 1) or NoCircularCausality (Alg. 2)
	TOB     TOBKind      // defaults to PaxosTOB
	Seed    int64        // scheduler seed
	Latency sim.Time     // link latency (default 10)

	// ProcDelay is the virtual time one internal step (rollback or
	// execute) takes, per replica; missing entries default to 1. The
	// §2.3 slow replica is modelled with a large entry.
	ProcDelay map[core.ReplicaID]sim.Time

	// ClockSlowdown divides a replica's clock (§2.3's "artificially
	// slowing the clock on Rs"); missing entries default to 1.
	ClockSlowdown map[core.ReplicaID]int64

	// ManualStepping disables automatic scheduling of internal steps;
	// the scenario drives StepReplica/DrainReplica explicitly.
	ManualStepping bool

	// StepBatch is the maximum number of internal events one scheduled
	// activation executes (via the replica's StepN). Values ≤ 1 keep the
	// seed-faithful one-event-per-activation discipline on which the
	// paper's timing experiments rely; larger values trade per-step
	// timing granularity for throughput: a backlog of k ≤ StepBatch
	// events drains in a single activation costing one ProcDelay.
	StepBatch int

	// CheckpointEvery makes every replica checkpoint its stable state once
	// it has accumulated that many committed entries past its last
	// checkpoint: the committed log, undo data, dedup sets and the TOB
	// replay log truncate to the suffix, snapshots and recovery become
	// O(Δ), and far-behind learners catch up by state transfer. Zero (the
	// default) disables automatic checkpointing; Cluster.Checkpoint
	// triggers one manually either way. Ignored under ManualStepping — a
	// checkpoint drains the replica's internal work, which manual-schedule
	// scenarios must control themselves.
	CheckpointEvery int

	// PipelineDepth bounds how many consensus slots a stable Paxos leader
	// keeps in flight concurrently (0 = the paxos package default). Only
	// meaningful under PaxosTOB.
	PipelineDepth int

	// BatchCap bounds how many cast values one consensus slot carries
	// (0 = the paxos package default; 1 reproduces the classic
	// one-value-per-slot baseline — the scaling tests' control knob).
	BatchCap int

	// LeaseTicks enables leader leases of that duration in scheduler ticks
	// (0 = disabled): a quorum-leased leader serves strong reads from its
	// local committed prefix with zero proposal rounds. Under PrimaryTOB
	// the sequencer is structurally the permanent leaseholder, so any
	// non-zero value simply switches the local strong-read path on.
	LeaseTicks sim.Time
}

// Call is a client's handle on one invocation (see record.Call).
type Call = record.Call

// Cluster is a running deployment. Construct with New. Not safe for
// concurrent use: everything runs on the simulator's single thread.
type Cluster struct {
	cfg      Config
	sched    *sim.Scheduler
	net      *simnet.Network
	omega    *fd.Omega
	nodes    []*node
	rec      *record.Recorder
	sessions map[core.SessionID]core.ReplicaID
	nextSess core.SessionID
}

type node struct {
	id          core.ReplicaID
	replica     *core.Replica
	rbNode      *rb.Node
	tobNode     tob.TOB
	procDelay   sim.Time
	stepPending bool
	crashed     bool
	cl          *Cluster

	// parked holds guarantee-carrying invocations waiting for this
	// replica's state to cover their session vectors; every state change
	// (delivery, internal step, recovery) retries them. retrying guards
	// against re-entrance: a primary-TOB self-commit during a completion
	// re-enters the delivery path synchronously. ckpting likewise guards
	// the checkpoint drain against cadence re-entrance.
	parked   []parkedInvoke
	retrying bool
	ckpting  bool

	effPool core.EffectsPool
	reqBuf  []core.Req // scratch for converting delivery batches
}

// parkedInvoke is one invocation blocked on a coverage gate.
type parkedInvoke struct {
	sess  core.SessionID
	op    spec.Op
	level core.Level
	call  *record.Call
}

func (n *node) takeEff() *core.Effects { return n.effPool.Take() }
func (n *node) putEff(e *core.Effects) { n.effPool.Put(e) }

// New builds and wires a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.N < 1 {
		return nil, errors.New("cluster: need at least one replica")
	}
	if cfg.Variant == core.VariantDefault {
		cfg.Variant = core.NoCircularCausality
	}
	if !cfg.Variant.Valid() {
		return nil, fmt.Errorf("cluster: unknown protocol variant %s", cfg.Variant)
	}
	if cfg.TOB == 0 {
		cfg.TOB = PaxosTOB
	}
	if cfg.Latency == 0 {
		cfg.Latency = 10
	}
	c := &Cluster{
		cfg:      cfg,
		sched:    sim.New(cfg.Seed),
		rec:      record.New(),
		sessions: make(map[core.SessionID]core.ReplicaID, cfg.N),
		nextSess: core.SessionID(cfg.N),
	}
	// Sessions 0..N-1 are the default one-session-per-replica bindings of
	// the legacy façade; OpenSession mints fresh ids from N on.
	for i := 0; i < cfg.N; i++ {
		c.sessions[core.SessionID(i)] = core.ReplicaID(i)
	}
	if cfg.LeaseTicks > 0 {
		// The lease-read serve gate needs per-session cast/commit tracking;
		// with leases off the recorder skips that bookkeeping entirely
		// (exact alloc parity on the weak hot path).
		c.rec.EnableLeaseTracking()
	}
	c.net = simnet.New(c.sched)
	c.net.SetLatency(func(from, to simnet.NodeID) sim.Time {
		if from == to {
			return 1
		}
		return cfg.Latency
	})
	c.omega = fd.New()

	peers := make([]simnet.NodeID, cfg.N)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	for i := 0; i < cfg.N; i++ {
		id := core.ReplicaID(i)
		slow := cfg.ClockSlowdown[id]
		if slow <= 0 {
			slow = 1
		}
		n := &node{id: id, cl: c, procDelay: 1}
		if d, ok := cfg.ProcDelay[id]; ok && d > 0 {
			n.procDelay = d
		}
		n.replica = core.NewReplica(id, cfg.Variant, func() int64 {
			return int64(c.sched.Now()) / slow
		})
		n.replica.EnableTransitions()
		n.rbNode = rb.New(simnet.NodeID(i), c.sched, c.net, nil)
		n.rbNode.SetBatchDeliver(n.onRBDeliverBatch)
		switch cfg.TOB {
		case PrimaryTOB:
			n.tobNode = tob.NewPrimary(simnet.NodeID(i), 0, c.net, nil)
		default:
			px := tob.NewPaxos(simnet.NodeID(i), peers, c.sched, c.net, c.omega, nil)
			if cfg.PipelineDepth > 0 {
				px.SetPipelineDepth(cfg.PipelineDepth)
			}
			if cfg.BatchCap > 0 {
				px.SetBatchCap(cfg.BatchCap)
			}
			if cfg.LeaseTicks > 0 {
				px.EnableLease(cfg.LeaseTicks)
			}
			n.tobNode = px
		}
		n.tobNode.SetBatchDeliver(n.onTOBDeliverBatch)
		n.tobNode.SetInstall(n.onInstallCheckpoint)
		mux := &simnet.Mux{}
		mux.Add(n.rbNode.Handle)
		mux.Add(n.tobNode.Handle)
		c.net.Register(simnet.NodeID(i), mux.Handler())
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// Scheduler exposes the simulation scheduler (scenarios schedule their own
// injections with it).
func (c *Cluster) Scheduler() *sim.Scheduler { return c.sched }

// Network exposes the network (partitions, crashes).
func (c *Cluster) Network() *simnet.Network { return c.net }

// Omega exposes the failure detector oracle.
func (c *Cluster) Omega() *fd.Omega { return c.omega }

// Replica returns the core replica (introspection for tests and examples).
func (c *Cluster) Replica(id core.ReplicaID) *core.Replica { return c.nodes[id].replica }

// StabilizeOmega makes every replica trust leader — the stable-run switch.
func (c *Cluster) StabilizeOmega(leader core.ReplicaID) {
	nodes := make([]simnet.NodeID, c.cfg.N)
	for i := range nodes {
		nodes[i] = simnet.NodeID(i)
	}
	c.omega.Stabilize(nodes, simnet.NodeID(leader))
}

// DestabilizeOmega clears all leader hints — the asynchronous-run switch.
func (c *Cluster) DestabilizeOmega() {
	nodes := make([]simnet.NodeID, c.cfg.N)
	for i := range nodes {
		nodes[i] = simnet.NodeID(i)
	}
	c.omega.Destabilize(nodes)
}

// Partition splits the network (delegates to simnet).
func (c *Cluster) Partition(cells ...[]core.ReplicaID) {
	conv := make([][]simnet.NodeID, len(cells))
	for i, cell := range cells {
		for _, id := range cell {
			conv[i] = append(conv[i], simnet.NodeID(id))
		}
	}
	c.net.Partition(conv...)
}

// Heal removes all partitions.
func (c *Cluster) Heal() { c.net.Heal() }

// SlowLink multiplies the latency between two replicas (both directions) by
// factor; factor 1 restores normal speed.
func (c *Cluster) SlowLink(a, b core.ReplicaID, factor int64) {
	c.net.SlowLink(simnet.NodeID(a), simnet.NodeID(b), factor)
}

// ErrReplicaDown reports an operation addressed to a crashed replica.
var ErrReplicaDown = errors.New("cluster: replica is crashed")

// Crash silently crashes a replica: its volatile state (tentative list,
// execution schedule, stored tentative values, RB duplicate filter) is
// gone, the network drops traffic addressed to it, and sessions bound to it
// are rejected until Recover. The durable image — committed log, dot
// counter, client continuations, and the TOB endpoint's acceptor/learner
// state (classically persisted in Paxos) — survives.
func (c *Cluster) Crash(id core.ReplicaID) error {
	if int(id) < 0 || int(id) >= c.cfg.N {
		return fmt.Errorf("cluster: no replica %d", id)
	}
	if c.cfg.TOB == PrimaryTOB && id == 0 {
		// Forwards toward a crashed primary are dropped and nothing
		// retransmits them — primary commit is not fault-tolerant (the
		// deficiency that motivated the consensus TOB), so refuse rather
		// than leave strong operations silently wedged forever.
		return errors.New("cluster: cannot crash the primary under PrimaryTOB")
	}
	n := c.nodes[id]
	if n.crashed {
		return fmt.Errorf("%w: %d already crashed", ErrReplicaDown, id)
	}
	n.crashed = true
	c.net.Crash(simnet.NodeID(id))
	return nil
}

// Crashed reports whether the replica is currently crashed.
func (c *Cluster) Crashed(id core.ReplicaID) bool {
	return int(id) >= 0 && int(id) < c.cfg.N && c.nodes[id].crashed
}

// Recover restarts a crashed replica from its durable snapshot: the
// committed prefix is re-executed into a fresh state object, continuations
// whose requests committed while the replica was down are answered
// immediately, a fresh RB endpoint (primed with the committed ids) runs the
// retransmission handshake to rebuild the tentative suffix, and the TOB
// endpoint catches up on decided slots it slept through. The replica then
// converges with the rest of the deployment through the ordinary protocol.
func (c *Cluster) Recover(id core.ReplicaID) error {
	if int(id) < 0 || int(id) >= c.cfg.N {
		return fmt.Errorf("cluster: no replica %d", id)
	}
	n := c.nodes[id]
	if !n.crashed {
		return fmt.Errorf("cluster: replica %d is not crashed", id)
	}
	snap := n.replica.Snapshot()
	slow := c.cfg.ClockSlowdown[id]
	if slow <= 0 {
		slow = 1
	}
	eff := n.takeEff()
	defer n.putEff(eff)
	restored, err := core.RestoreReplica(snap, func() int64 {
		return int64(c.sched.Now()) / slow
	}, true, eff)
	if err != nil {
		return fmt.Errorf("cluster: recover %d: %w", id, err)
	}
	n.replica = restored
	n.stepPending = false

	// Fresh volatile RB state, primed with the durable prefix so the
	// resync replay re-delivers only what the crash lost.
	n.rbNode = rb.New(simnet.NodeID(id), c.sched, c.net, nil)
	n.rbNode.SetBatchDeliver(n.onRBDeliverBatch)
	have := make(map[string]bool, len(snap.Committed))
	for _, r := range snap.Committed {
		have[r.ID()] = true
		n.rbNode.MarkSeen(r.ID())
	}
	mux := &simnet.Mux{}
	mux.Add(n.rbNode.Handle)
	mux.Add(n.tobNode.Handle)
	c.net.Register(simnet.NodeID(id), mux.Handler())

	n.crashed = false
	c.net.Recover(simnet.NodeID(id))
	n.route(*eff) // recovery responses for requests committed while down
	n.rbNode.Resync(have)
	n.tobNode.Resync()
	n.scheduleStep()
	n.retryParked() // coverage may already hold again from the durable prefix
	return nil
}

// ErrSessionBusy reports an invocation on a session whose previous operation
// has not yet returned. Well-formed histories (§3.2) require sessions to be
// sequential: a client blocked on a strong operation cannot issue more work.
var ErrSessionBusy = record.ErrSessionBusy

// OpenSession mints a fresh sequential session bound to the given replica.
// Any number of sessions can share a replica; each is individually
// sequential but their invocations may freely overlap.
func (c *Cluster) OpenSession(id core.ReplicaID) (core.SessionID, error) {
	if int(id) < 0 || int(id) >= c.cfg.N {
		return 0, fmt.Errorf("cluster: no replica %d", id)
	}
	s := c.nextSess
	c.nextSess++
	c.sessions[s] = id
	return s, nil
}

// SessionReplica returns the replica a session is bound to.
func (c *Cluster) SessionReplica(s core.SessionID) (core.ReplicaID, bool) {
	id, ok := c.sessions[s]
	return id, ok
}

// BindSession re-binds a session to another replica — the mobile-session
// migration step. The session's guarantee vectors travel with it (they live
// on the shared recorder), so the next invocation at the new replica is
// gated on the same coverage demands. A session with an outstanding call
// cannot move: its continuation is owed by the old replica.
func (c *Cluster) BindSession(sess core.SessionID, id core.ReplicaID) error {
	if int(id) < 0 || int(id) >= c.cfg.N {
		return fmt.Errorf("cluster: no replica %d", id)
	}
	if _, ok := c.sessions[sess]; !ok {
		return fmt.Errorf("cluster: unknown session %d", sess)
	}
	if c.rec.SessionBusy(sess) {
		return fmt.Errorf("%w: session %d cannot re-bind", ErrSessionBusy, sess)
	}
	c.sessions[sess] = id
	return nil
}

// Invoke submits an operation at a replica on its default session (session
// id == replica id) and returns the call handle, which fills in when the
// response arrives. Multi-session clients use OpenSession + InvokeSession.
func (c *Cluster) Invoke(id core.ReplicaID, op spec.Op, level core.Level) (*Call, error) {
	if int(id) < 0 || int(id) >= c.cfg.N {
		return nil, fmt.Errorf("cluster: no replica %d", id)
	}
	return c.InvokeSession(core.SessionID(id), op, level)
}

// InvokeSession submits an operation on the given session, at the replica
// the session is currently bound to. It rejects a session whose previous
// call has not returned (ErrSessionBusy): sessions are the sequential
// clients of §3.2.
func (c *Cluster) InvokeSession(sess core.SessionID, op spec.Op, level core.Level) (*Call, error) {
	id, ok := c.sessions[sess]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown session %d", sess)
	}
	return c.InvokeSessionAt(sess, id, op, level)
}

// InvokeSessionAt submits an operation on the given session at an explicit
// target replica (which may differ from the session's binding — a one-shot
// read at another replica, say). Guarantee-carrying sessions are gated on
// coverage: if the target cannot yet dominate the session's vectors the
// invocation parks until it can (WaitForCoverage) or fails with
// record.ErrGuarantee (FailFast).
func (c *Cluster) InvokeSessionAt(sess core.SessionID, id core.ReplicaID, op spec.Op, level core.Level) (*Call, error) {
	if _, ok := c.sessions[sess]; !ok {
		return nil, fmt.Errorf("cluster: unknown session %d", sess)
	}
	if int(id) < 0 || int(id) >= c.cfg.N {
		return nil, fmt.Errorf("cluster: no replica %d", id)
	}
	n := c.nodes[id]
	if n.crashed {
		return nil, fmt.Errorf("%w: %d (session %d)", ErrReplicaDown, id, sess)
	}
	g, mode, busy := c.rec.SessionGate(sess)
	if busy {
		return nil, fmt.Errorf("%w: session %d", ErrSessionBusy, sess)
	}
	if g == 0 {
		if call, ok := c.tryLeaseRead(n, sess, op, level, nil); ok {
			return call, nil
		}
		// Plain sessions take the ungated hot path.
		eff := n.takeEff()
		defer n.putEff(eff)
		req, err := n.replica.InvokeFrom(sess, op, level == core.Strong, eff)
		if err != nil {
			return nil, fmt.Errorf("cluster: invoke on %d: %w", id, err)
		}
		call := c.rec.Invoked(sess, req.Dot, op, level, req.Timestamp, len(eff.TOBCast) > 0, int64(c.sched.Now()))
		n.route(*eff)
		n.scheduleStep()
		return call, nil
	}
	call, err := c.rec.PendingInvoke(sess, op, level, int64(c.sched.Now()))
	if err != nil {
		return nil, err
	}
	pi := parkedInvoke{sess: sess, op: op, level: level, call: call}
	if n.covers(pi) {
		c.completeParked(n, pi)
		return call, nil
	}
	if mode == core.FailFast {
		c.rec.CancelInvoke(call)
		return nil, fmt.Errorf("%w: session %d at replica %d", record.ErrGuarantee, sess, id)
	}
	n.parked = append(n.parked, pi)
	return call, nil
}

// SessionCovered reports whether the replica's current state dominates the
// session's full coverage demand (read and write vectors) — the driver's
// coverage query, useful for choosing a failover target. A crashed replica
// covers nothing.
func (c *Cluster) SessionCovered(sess core.SessionID, id core.ReplicaID) (bool, error) {
	if _, ok := c.sessions[sess]; !ok {
		return false, fmt.Errorf("cluster: unknown session %d", sess)
	}
	if int(id) < 0 || int(id) >= c.cfg.N {
		return false, fmt.Errorf("cluster: no replica %d", id)
	}
	n := c.nodes[id]
	if n.crashed {
		return false, nil
	}
	read, write, _ := c.rec.Demands(sess, true)
	return n.replica.CoversSession(read, write), nil
}

// covers reports whether the node's replica dominates the invocation's
// coverage demands right now (core.Replica.CoversInvoke is the shared
// gate; see its comment for the read/committed/write split).
func (n *node) covers(pi parkedInvoke) bool {
	updating := !pi.op.ReadOnly()
	read, write, _ := n.cl.rec.Demands(pi.sess, updating)
	return n.replica.CoversInvoke(pi.level, updating, read, write)
}

// tryLeaseRead serves a strong read-only invocation locally — zero proposal
// rounds — when (1) leases are enabled, (2) the node's TOB endpoint holds
// the ordering lease (its committed prefix is the global one), and (3) the
// session gate proves every operation the session ever cast is inside that
// prefix (so session order cannot expose the read as stale). It reports
// ok=false to fall through to the normal consensus path. A parked
// guarantee-gated invocation passes its pending call; plain-path callers
// pass nil and get a freshly minted handle.
func (c *Cluster) tryLeaseRead(n *node, sess core.SessionID, op spec.Op, level core.Level, pending *record.Call) (*Call, bool) {
	if c.cfg.LeaseTicks <= 0 || level != core.Strong || !op.ReadOnly() || !n.tobNode.LeaseHeld() {
		return nil, false
	}
	if !c.rec.SessionCastCommittedWithin(sess, int64(n.replica.CommittedLen())) {
		return nil, false
	}
	eff := n.takeEff()
	defer n.putEff(eff)
	req, ok, err := n.replica.StrongReadLocal(sess, op, eff)
	if err != nil {
		panic(fmt.Sprintf("cluster: lease read on %d: %v", n.id, err))
	}
	if !ok {
		return nil, false
	}
	leaseNo := int64(n.replica.CommittedLen())
	call := pending
	if call != nil {
		c.rec.CompleteInvoke(call, req.Dot, req.Timestamp, false, int64(c.sched.Now()))
	} else {
		call = c.rec.Invoked(sess, req.Dot, op, level, req.Timestamp, false, int64(c.sched.Now()))
	}
	c.rec.LeaseServed(req.Dot, leaseNo)
	n.route(*eff)
	return call, true
}

// completeParked accepts a gated invocation at the node: the clock is
// fenced above the session vectors, the replica invoked, and the pending
// call bound to its minted dot.
func (c *Cluster) completeParked(n *node, pi parkedInvoke) {
	_, _, fence := c.rec.Demands(pi.sess, !pi.op.ReadOnly())
	n.replica.FenceClock(fence)
	if _, ok := c.tryLeaseRead(n, pi.sess, pi.op, pi.level, pi.call); ok {
		return
	}
	eff := n.takeEff()
	defer n.putEff(eff)
	req, err := n.replica.InvokeFrom(pi.sess, pi.op, pi.level == core.Strong, eff)
	if err != nil {
		panic(fmt.Sprintf("cluster: gated invoke on %d: %v", n.id, err))
	}
	c.rec.CompleteInvoke(pi.call, req.Dot, req.Timestamp, len(eff.TOBCast) > 0, int64(c.sched.Now()))
	n.route(*eff)
	n.scheduleStep()
}

// retryParked completes every parked invocation whose coverage now holds,
// repeating until a pass makes no progress (one completion can enable
// another — a primary self-commit raises the committed watermark
// synchronously).
func (n *node) retryParked() {
	if n.retrying || n.crashed || len(n.parked) == 0 {
		return
	}
	n.retrying = true
	defer func() { n.retrying = false }()
	for !n.crashed {
		hit := -1
		for i, pi := range n.parked {
			if n.covers(pi) {
				hit = i
				break
			}
		}
		if hit < 0 {
			return
		}
		pi := n.parked[hit]
		n.parked = append(n.parked[:hit], n.parked[hit+1:]...)
		n.cl.completeParked(n, pi)
	}
}

// StepReplica performs one internal step at the replica (manual mode).
func (c *Cluster) StepReplica(id core.ReplicaID) error {
	n := c.nodes[id]
	if n.crashed {
		return fmt.Errorf("%w: %d", ErrReplicaDown, id)
	}
	eff := n.takeEff()
	defer n.putEff(eff)
	if err := n.replica.StepInto(eff); err != nil {
		return err
	}
	n.route(*eff)
	n.retryParked()
	return nil
}

// DrainReplica runs internal steps at the replica until passive (manual
// mode).
func (c *Cluster) DrainReplica(id core.ReplicaID) error {
	n := c.nodes[id]
	for n.replica.HasInternalWork() {
		if err := c.StepReplica(id); err != nil {
			return err
		}
	}
	return nil
}

// Settle runs the simulation to quiescence. It returns an error when the
// step budget is exhausted first (protocol livelock) — callers in
// asynchronous-run scenarios use RunFor instead, since pending strong
// operations legitimately keep retry timers alive.
func (c *Cluster) Settle(budget int64) error {
	if budget <= 0 {
		budget = 5_000_000
	}
	if _, ok := c.sched.Run(budget); !ok {
		return errors.New("cluster: simulation did not quiesce within budget")
	}
	return nil
}

// RunFor advances the simulation by d ticks.
func (c *Cluster) RunFor(d sim.Time) { c.sched.RunFor(d) }

// MarkStable records the quiescence cutoff for the history's finite-trace
// predicates: events invoked after this call act as probes.
func (c *Cluster) MarkStable() { c.rec.MarkStable() }

// History assembles the recorded history.
func (c *Cluster) History() (*history.History, error) { return c.rec.History() }

// Calls returns every recorded call in invocation order.
func (c *Cluster) Calls() []*Call { return c.rec.Calls() }

// Recorder exposes the shared observation layer (watch subscriptions, call
// lookup by dot).
func (c *Cluster) Recorder() *record.Recorder { return c.rec }

// Stats aggregates replica cost counters (rollbacks/executions), keyed by
// replica.
func (c *Cluster) Stats() map[core.ReplicaID]core.Stats {
	out := make(map[core.ReplicaID]core.Stats, len(c.nodes))
	for _, n := range c.nodes {
		out[n.id] = n.replica.Stats()
	}
	return out
}

// NetStats exposes network counters.
func (c *Cluster) NetStats() simnet.Stats { return c.net.Stats() }

// TOBLeaseHeld reports whether the replica's TOB endpoint currently holds
// the ordering lease (false for a crashed replica — its endpoint is not
// running to serve anything).
func (c *Cluster) TOBLeaseHeld(id core.ReplicaID) bool {
	if int(id) < 0 || int(id) >= c.cfg.N || c.nodes[id].crashed {
		return false
	}
	return c.nodes[id].tobNode.LeaseHeld()
}

// PaxosCounters returns the replica's consensus cost counters (the zero
// value under PrimaryTOB) — the deterministic evidence for the batching and
// zero-proposal-round lease-read claims.
func (c *Cluster) PaxosCounters(id core.ReplicaID) paxos.Counters {
	if int(id) < 0 || int(id) >= c.cfg.N {
		return paxos.Counters{}
	}
	if px, ok := c.nodes[id].tobNode.(*tob.Paxos); ok {
		return px.Counters()
	}
	return paxos.Counters{}
}

// CompactAll runs Bayou's log compaction on every replica: undo data for
// committed prefixes is released (the returned count), and each node's RB
// retransmission log drops its committed entries — a recovering peer
// refetches those through the TOB learner catch-up instead, so the resync
// log stays proportional to the uncommitted suffix.
func (c *Cluster) CompactAll() int {
	total := 0
	for _, n := range c.nodes {
		total += n.replica.Compact()
		n.compactRB()
	}
	return total
}

// compactRB drops RB retransmission-log entries for requests known
// committed here (inside or past the checkpoint).
func (n *node) compactRB() {
	n.rbNode.Compact(func(id string) bool {
		d, ok := core.ParseDot(id)
		return ok && n.replica.KnownCommitted(d)
	})
}

// Checkpoint checkpoints every live replica at its current stable state: the
// committed log, undo data and dedup sets truncate to the suffix, the TOB
// endpoint truncates its replay log and captures the state-transfer record,
// and the RB retransmission log drops everything the checkpoint covers.
// Returns the total number of committed entries truncated across replicas.
// Crashed replicas are skipped — their durable state checkpoints on their
// own cadence after recovery.
func (c *Cluster) Checkpoint() (int, error) {
	total := 0
	for _, n := range c.nodes {
		if n.crashed {
			continue
		}
		truncated, err := n.checkpoint()
		if err != nil {
			return total, err
		}
		total += truncated
	}
	return total, nil
}

// CheckpointReplica checkpoints one replica (see Checkpoint).
func (c *Cluster) CheckpointReplica(id core.ReplicaID) (int, error) {
	if int(id) < 0 || int(id) >= c.cfg.N {
		return 0, fmt.Errorf("cluster: no replica %d", id)
	}
	n := c.nodes[id]
	if n.crashed {
		return 0, fmt.Errorf("%w: %d", ErrReplicaDown, id)
	}
	return n.checkpoint()
}

// checkpoint drains the node's internal work (so the stable prefix reaches
// the committed watermark), checkpoints the replica, and threads the new
// base through the broadcast layers.
func (n *node) checkpoint() (int, error) {
	if n.ckpting {
		return 0, nil
	}
	n.ckpting = true
	defer func() { n.ckpting = false }()
	eff := n.takeEff()
	if _, err := n.replica.DrainInto(eff); err != nil {
		n.putEff(eff)
		return 0, fmt.Errorf("cluster: checkpoint drain on %d: %w", n.id, err)
	}
	n.route(*eff)
	n.putEff(eff)
	stats, err := n.replica.Checkpoint(n.replica.CommittedLen())
	if err != nil {
		return 0, fmt.Errorf("cluster: checkpoint on %d: %w", n.id, err)
	}
	if stats.Truncated == 0 {
		return 0, nil
	}
	rec, _ := n.replica.CheckpointRecord()
	if err := n.tobNode.SetCheckpoint(int64(rec.BaseLen), rec); err != nil {
		return stats.Truncated, fmt.Errorf("cluster: checkpoint on %d: %w", n.id, err)
	}
	n.compactRB()
	n.retryParked()
	return stats.Truncated, nil
}

// maybeCheckpoint runs the automatic cadence: checkpoint once the committed
// suffix since the last base reaches Config.CheckpointEvery.
func (n *node) maybeCheckpoint() {
	every := n.cl.cfg.CheckpointEvery
	if every <= 0 || n.cl.cfg.ManualStepping || n.crashed || n.ckpting {
		return
	}
	if n.replica.CommittedLen()-n.replica.BaseLen() < every {
		return
	}
	if _, err := n.checkpoint(); err != nil {
		panic(fmt.Sprintf("cluster: automatic checkpoint on %d: %v", n.id, err))
	}
}

// onInstallCheckpoint is the state-transfer sink: a peer's checkpoint record
// arrives through the TOB endpoint when this replica is too far behind for
// per-slot replay. It reports whether the replica installed it (the TOB
// layer then fast-forwards its cursors).
func (n *node) onInstallCheckpoint(state any, upTo int64) bool {
	rec, ok := state.(*core.CheckpointRecord)
	if !ok || n.crashed {
		return false
	}
	eff := n.takeEff()
	defer n.putEff(eff)
	stats, err := n.replica.InstallCheckpoint(rec, eff)
	if err != nil {
		panic(fmt.Sprintf("cluster: install checkpoint on %d: %v", n.id, err))
	}
	if !stats.Installed {
		return false
	}
	n.route(*eff)
	n.compactRB()
	n.scheduleStep()
	n.retryParked()
	return true
}

// route dispatches a replica's effects into the broadcast layers and the
// recorder. Casts of more than one request go out as single batch
// envelopes.
func (n *node) route(eff core.Effects) {
	switch len(eff.RBCast) {
	case 0:
	case 1:
		n.rbNode.Cast(rb.Message{ID: eff.RBCast[0].ID(), Payload: eff.RBCast[0]})
	default:
		ms := make([]rb.Message, len(eff.RBCast))
		for i, r := range eff.RBCast {
			ms[i] = rb.Message{ID: r.ID(), Payload: r}
		}
		n.rbNode.CastBatch(ms)
	}
	for _, r := range eff.TOBCast {
		n.tobNode.Cast(r.ID(), r)
	}
	for _, t := range eff.Transitions {
		n.cl.rec.Transition(t, int64(n.cl.sched.Now()))
	}
	for _, resp := range eff.Responses {
		n.cl.rec.Responded(resp, int64(n.cl.sched.Now()))
	}
	for _, notice := range eff.StableNotices {
		n.cl.rec.StableNoticed(notice, int64(n.cl.sched.Now()))
	}
	for _, lost := range eff.Lost {
		n.cl.rec.ResultLost(lost.Dot, int64(n.cl.sched.Now()))
	}
}

// onRBDeliverBatch feeds an RB delivery envelope into the replica: the
// whole batch becomes one schedule adjustment.
func (n *node) onRBDeliverBatch(ms []rb.Message) {
	if n.crashed {
		// A local dispatch scheduled just before the crash: the messages
		// are lost with the rest of the volatile state (the resync
		// handshake re-fetches them on recovery).
		return
	}
	n.reqBuf = n.reqBuf[:0]
	for _, m := range ms {
		if r, ok := m.Payload.(core.Req); ok {
			n.reqBuf = append(n.reqBuf, r)
		}
	}
	if len(n.reqBuf) == 0 {
		return
	}
	eff := n.takeEff()
	defer n.putEff(eff)
	if err := n.replica.RBDeliverBatch(n.reqBuf, eff); err != nil {
		panic(fmt.Sprintf("cluster: RBDeliver on %d: %v", n.id, err))
	}
	n.route(*eff)
	n.scheduleStep()
	n.retryParked()
}

// onTOBDeliverBatch feeds a TOB cascade into the replica and records the
// global tobNos.
func (n *node) onTOBDeliverBatch(first int64, ms []tob.Message) {
	if n.crashed {
		// Unreachable by construction: the TOB gate only advances on
		// network deliveries, which simnet withholds from crashed nodes.
		// Losing a gate-delivered commit would desynchronize the replica
		// from the gate forever, so fail loudly rather than drop.
		panic(fmt.Sprintf("cluster: TOB delivery on crashed replica %d", n.id))
	}
	n.reqBuf = n.reqBuf[:0]
	for i, m := range ms {
		if r, ok := m.Payload.(core.Req); ok {
			n.cl.rec.TOBDelivered(r.Dot, first+int64(i))
			n.reqBuf = append(n.reqBuf, r)
		}
	}
	if len(n.reqBuf) == 0 {
		return
	}
	eff := n.takeEff()
	defer n.putEff(eff)
	if err := n.replica.TOBDeliverBatch(n.reqBuf, eff); err != nil {
		panic(fmt.Sprintf("cluster: TOBDeliver on %d: %v", n.id, err))
	}
	n.route(*eff)
	n.scheduleStep()
	n.retryParked()
	n.maybeCheckpoint()
}

// scheduleStep arranges the next internal activation after procDelay,
// unless in manual mode or one is already pending. One activation executes
// a single internal event, or up to Config.StepBatch of them when batched
// stepping is enabled.
func (n *node) scheduleStep() {
	if n.cl.cfg.ManualStepping || n.stepPending || n.crashed || !n.replica.HasInternalWork() {
		return
	}
	n.stepPending = true
	n.cl.sched.After(n.procDelay, func() {
		n.stepPending = false
		if n.crashed {
			return // activation outlived the process
		}
		batch := n.cl.cfg.StepBatch
		if batch < 1 {
			batch = 1
		}
		eff := n.takeEff()
		defer n.putEff(eff)
		if _, err := n.replica.StepN(batch, eff); err != nil {
			panic(fmt.Sprintf("cluster: step on %d: %v", n.id, err))
		}
		n.route(*eff)
		n.scheduleStep()
		n.retryParked()
	})
}
