package cluster

import (
	"bayou/internal/core"
	"bayou/internal/history"
	"bayou/internal/spec"
)

// recorder accumulates the observable history and the run witnesses while
// the simulation executes. Invocation and response instants are stamped with
// a global logical sequence so that the rb relation is unambiguous even when
// several events share a simulated instant.
type recorder struct {
	seq      int64
	stableAt int64
	calls    map[core.Dot]*Call
	callList []*Call
	events   map[core.Dot]*history.Event
	order    []core.Dot
	tobNos   map[core.Dot]int64
	lastOf   map[core.ReplicaID]*history.Event
}

func newRecorder() *recorder {
	return &recorder{
		calls:  make(map[core.Dot]*Call),
		events: make(map[core.Dot]*history.Event),
		tobNos: make(map[core.Dot]int64),
		lastOf: make(map[core.ReplicaID]*history.Event),
	}
}

// sessionBusy reports whether the session's latest invocation is still
// awaiting its response; well-formed histories (§3.2) forbid a new
// invocation until then.
func (r *recorder) sessionBusy(session core.ReplicaID) bool {
	last := r.lastOf[session]
	return last != nil && last.Pending
}

func (r *recorder) next() int64 {
	r.seq++
	return r.seq
}

func (r *recorder) invoked(session core.ReplicaID, d core.Dot, op spec.Op, level core.Level, ts int64, tobCast bool, wall int64) *Call {
	call := &Call{Dot: d, Op: op, Level: level, WallInvoke: wall}
	r.calls[d] = call
	r.callList = append(r.callList, call)
	e := &history.Event{
		Session:    session,
		Op:         op,
		Level:      level,
		Pending:    true,
		Invoke:     r.next(),
		WallInvoke: wall,
		Dot:        d,
		Timestamp:  ts,
		TOBCast:    tobCast,
		TOBNo:      -1,
	}
	r.events[d] = e
	r.lastOf[session] = e
	r.order = append(r.order, d)
	return call
}

func (r *recorder) responded(resp core.Response, wall int64) {
	d := resp.Req.Dot
	if call, ok := r.calls[d]; ok && !call.Done {
		call.Done = true
		call.Response = resp
		call.WallReturn = wall
	}
	if e, ok := r.events[d]; ok && e.Pending {
		e.Pending = false
		e.Return = r.next()
		e.WallReturn = wall
		e.RVal = resp.Value
		e.Trace = append([]core.Dot(nil), resp.Trace...)
		e.CommittedLen = resp.CommittedLen
	}
}

// stableNoticed records the stable value of a weak operation that already
// returned tentatively. It updates the call handle only: the history's rval
// stays the (first) tentative response, matching the paper's model of a
// client interested in one or the other (footnote 3).
func (r *recorder) stableNoticed(resp core.Response, wall int64) {
	d := resp.Req.Dot
	if call, ok := r.calls[d]; ok && !call.StableDone {
		call.StableDone = true
		call.StableResponse = resp
		call.WallStable = wall
	}
}

func (r *recorder) tobDelivered(d core.Dot, tobNo int64) {
	if _, seen := r.tobNos[d]; !seen {
		r.tobNos[d] = tobNo
	}
}

func (r *recorder) markStable() { r.stableAt = r.seq }

// history assembles the recorded events. TOB numbers are attached at
// assembly time so that late deliveries (after the response) are reflected.
func (r *recorder) history() (*history.History, error) {
	events := make([]*history.Event, 0, len(r.order))
	for _, d := range r.order {
		e := r.events[d]
		if no, ok := r.tobNos[d]; ok {
			e.TOBNo = no
		} else {
			e.TOBNo = -1
		}
		events = append(events, e)
	}
	return history.New(events, r.stableAt)
}
