package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"bayou/internal/check"
	"bayou/internal/core"
	"bayou/internal/sim"
	"bayou/internal/spec"
)

// TestConvergenceUnderPartitionChurnProperty is the repository's widest
// end-to-end safety net: random workloads over random partition/heal
// schedules, with random leader movement, must always (a) keep every replica
// invariant intact, (b) converge to identical committed orders and states
// after the final heal, and (c) satisfy FEC(weak,F) ∧ Seq(strong,F) on the
// recorded history — Theorem 2 under adversarial (but eventually stable)
// schedules.
func TestConvergenceUnderPartitionChurnProperty(t *testing.T) {
	f := func(seed int64, churnRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 4
		c, err := New(Config{N: n, Variant: core.NoCircularCausality, Seed: seed})
		if err != nil {
			t.Log(err)
			return false
		}
		leader := core.ReplicaID(r.Intn(n))
		c.StabilizeOmega(leader)
		rounds := int(churnRaw%6) + 3
		elems := []string{"a", "b", "c"}
		for round := 0; round < rounds; round++ {
			// Random churn action.
			switch r.Intn(4) {
			case 0:
				// Partition into two random cells.
				var left, right []core.ReplicaID
				for i := 0; i < n; i++ {
					if r.Intn(2) == 0 {
						left = append(left, core.ReplicaID(i))
					} else {
						right = append(right, core.ReplicaID(i))
					}
				}
				c.Partition(left, right)
			case 1:
				c.Heal()
			case 2:
				leader = core.ReplicaID(r.Intn(n))
				c.StabilizeOmega(leader)
			}
			// Random invocations (skipping busy sessions).
			for i := 0; i < n; i++ {
				level := core.Weak
				if r.Intn(5) == 0 {
					level = core.Strong
				}
				var op spec.Op
				if r.Intn(3) == 0 {
					op = spec.Insert("d", int64(r.Intn(5)), elems[r.Intn(3)])
				} else {
					op = spec.Append(elems[r.Intn(3)])
				}
				_, invErr := c.Invoke(core.ReplicaID(i), op, level)
				if invErr != nil && !errors.Is(invErr, ErrSessionBusy) {
					t.Log(invErr)
					return false
				}
			}
			c.RunFor(sim.Time(r.Intn(120)))
			for i := 0; i < n; i++ {
				if err := c.Replica(core.ReplicaID(i)).CheckInvariants(); err != nil {
					t.Logf("seed %d round %d: %v", seed, round, err)
					return false
				}
			}
		}
		// Final stabilization: heal, fix a leader, settle.
		c.Heal()
		c.StabilizeOmega(leader)
		if err := c.Settle(0); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// (b) convergence.
		ref := c.Replica(0)
		if len(ref.Tentative()) != 0 {
			t.Logf("seed %d: tentative not drained", seed)
			return false
		}
		for i := 1; i < n; i++ {
			p := c.Replica(core.ReplicaID(i))
			refC, pC := ref.Committed(), p.Committed()
			if len(refC) != len(pC) {
				t.Logf("seed %d: committed lengths diverge", seed)
				return false
			}
			for k := range refC {
				if refC[k].Dot != pC[k].Dot {
					t.Logf("seed %d: committed order diverges at %d", seed, k)
					return false
				}
			}
			for _, key := range []string{spec.DefaultListID, "doc/d"} {
				if !spec.Equal(ref.Read(key), p.Read(key)) {
					t.Logf("seed %d: state diverges on %s", seed, key)
					return false
				}
			}
		}
		// (c) the guarantees, with probes.
		c.MarkStable()
		for i := 0; i < n; i++ {
			if _, e := c.Invoke(core.ReplicaID(i), spec.ListRead(), core.Weak); e != nil && !errors.Is(e, ErrSessionBusy) {
				t.Log(e)
				return false
			}
		}
		if err := c.Settle(0); err != nil {
			t.Log(err)
			return false
		}
		h, err := c.History()
		if err != nil {
			t.Log(err)
			return false
		}
		w := check.NewWitness(h)
		for _, rep := range []check.Report{w.FEC(core.Weak), w.Seq(core.Strong)} {
			if !rep.OK() {
				t.Logf("seed %d:\n%s", seed, rep)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCompactionDuringChurn: periodic log compaction never affects outcomes.
func TestCompactionDuringChurn(t *testing.T) {
	run := func(compact bool) string {
		c, err := New(Config{N: 3, Variant: core.NoCircularCausality, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		c.StabilizeOmega(0)
		for round := 0; round < 8; round++ {
			for i := 0; i < 3; i++ {
				_, invErr := c.Invoke(core.ReplicaID(i), spec.Append(fmt.Sprintf("%d", round)), core.Weak)
				if invErr != nil && !errors.Is(invErr, ErrSessionBusy) {
					t.Fatal(invErr)
				}
			}
			c.RunFor(35)
			if compact {
				c.CompactAll()
			}
		}
		if err := c.Settle(0); err != nil {
			t.Fatal(err)
		}
		if compact {
			if freed := c.CompactAll(); freed == 0 {
				t.Error("final compaction freed nothing — suspicious")
			}
		}
		return spec.Encode(c.Replica(0).Read(spec.DefaultListID))
	}
	plain := run(false)
	compacted := run(true)
	if plain != compacted {
		t.Errorf("compaction changed the outcome: %s vs %s", plain, compacted)
	}
}
