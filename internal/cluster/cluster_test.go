package cluster

import (
	"errors"
	"fmt"
	"testing"

	"bayou/internal/check"
	"bayou/internal/core"
	"bayou/internal/sim"
	"bayou/internal/spec"
)

func mustInvoke(t *testing.T, c *Cluster, id core.ReplicaID, op spec.Op, l core.Level) *Call {
	t.Helper()
	call, err := c.Invoke(id, op, l)
	if err != nil {
		t.Fatal(err)
	}
	return call
}

func mustSettle(t *testing.T, c *Cluster) {
	t.Helper()
	if err := c.Settle(0); err != nil {
		t.Fatal(err)
	}
}

// TestStableRunSatisfiesTheorem2 is the integration-level Theorem 2 check:
// a stable run of the modified protocol satisfies FEC(weak,F) ∧
// FEC(strong,F) ∧ Seq(strong,F), as verified by the witness-mode checker.
func TestStableRunSatisfiesTheorem2(t *testing.T) {
	c, err := New(Config{N: 3, Variant: core.NoCircularCausality, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeOmega(0)

	mustInvoke(t, c, 0, spec.Append("a"), core.Weak)
	c.RunFor(3)
	mustInvoke(t, c, 1, spec.Append("b"), core.Weak)
	mustInvoke(t, c, 2, spec.Duplicate(), core.Strong)
	c.RunFor(50)
	mustInvoke(t, c, 0, spec.PutIfAbsent("k", "v"), core.Strong)
	mustInvoke(t, c, 1, spec.Inc("ctr", 2), core.Weak)
	mustSettle(t, c)
	c.MarkStable()
	// Post-quiescence probes on every replica.
	for i := 0; i < 3; i++ {
		mustInvoke(t, c, core.ReplicaID(i), spec.ListRead(), core.Weak)
	}
	mustSettle(t, c)

	h, err := c.History()
	if err != nil {
		t.Fatal(err)
	}
	w := check.NewWitness(h)
	if res := w.ArTotal(); !res.Holds {
		t.Errorf("%s", res)
	}
	for _, rep := range []check.Report{w.FEC(core.Weak), w.FEC(core.Strong), w.Seq(core.Strong)} {
		if !rep.OK() {
			t.Errorf("stable run violates guarantee:\n%s", rep)
		}
	}
	// Every call completed.
	for _, call := range c.Calls() {
		if !call.Done() {
			t.Errorf("call %s (%s) never completed", call.Dot(), call.Op().Name())
		}
	}
}

// TestAsyncRunSatisfiesTheorem3 is the integration-level Theorem 3 check: a
// run with Ω never stabilizing satisfies FEC(weak,F) while strong operations
// pend forever, so Seq(strong,F) is unachieved.
func TestAsyncRunSatisfiesTheorem3(t *testing.T) {
	c, err := New(Config{N: 3, Variant: core.NoCircularCausality, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Ω never stabilizes: consensus makes no progress.
	mustInvoke(t, c, 0, spec.Append("a"), core.Weak)
	c.RunFor(40)
	strong := mustInvoke(t, c, 1, spec.Duplicate(), core.Strong)
	mustInvoke(t, c, 2, spec.Append("b"), core.Weak)
	c.RunFor(3_000)
	c.MarkStable()
	// Probes avoid session 1, whose client is still blocked on the
	// pending strong operation (sessions are sequential, §3.2).
	for _, i := range []core.ReplicaID{0, 2} {
		mustInvoke(t, c, i, spec.ListRead(), core.Weak)
	}
	c.RunFor(3_000)

	if strong.Done() {
		t.Fatal("strong op completed without consensus — Theorem 3 premise broken")
	}
	h, err := c.History()
	if err != nil {
		t.Fatal(err)
	}
	w := check.NewWitness(h)
	if rep := w.FEC(core.Weak); !rep.OK() {
		t.Errorf("asynchronous run violates FEC(weak):\n%s", rep)
	}
	if rep := w.SeqPendingAware(core.Strong); rep.OK() {
		t.Error("Seq(strong) must be unachieved in asynchronous runs (pending strong ops)")
	}
}

// TestWeakAvailabilityUnderPartition: weak operations stay available inside
// every partition cell; strong operations block in the minority but proceed
// in a quorum cell; healing reconciles all replicas.
func TestWeakAvailabilityUnderPartition(t *testing.T) {
	c, err := New(Config{N: 5, Variant: core.NoCircularCausality, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeOmega(2) // leader in the majority cell
	c.Partition([]core.ReplicaID{0, 1}, []core.ReplicaID{2, 3, 4})

	minorityWeak := mustInvoke(t, c, 0, spec.Append("m"), core.Weak)
	minorityStrong := mustInvoke(t, c, 1, spec.Append("s1"), core.Strong)
	majorityWeak := mustInvoke(t, c, 3, spec.Append("M"), core.Weak)
	majorityStrong := mustInvoke(t, c, 2, spec.Append("s2"), core.Strong)
	c.RunFor(5_000)

	if !minorityWeak.Done() || !majorityWeak.Done() {
		t.Error("weak operations must respond inside any partition cell")
	}
	if minorityStrong.Done() {
		t.Error("minority strong op must block while partitioned")
	}
	if !majorityStrong.Done() {
		t.Error("majority strong op must complete (quorum available)")
	}

	c.Heal()
	c.StabilizeOmega(2)
	mustSettle(t, c)
	if !minorityStrong.Done() {
		t.Error("minority strong op must complete after heal")
	}
	// All replicas converge to one committed order and state.
	ref := c.Replica(0).Committed()
	for i := 1; i < 5; i++ {
		got := c.Replica(core.ReplicaID(i)).Committed()
		if len(got) != len(ref) {
			t.Fatalf("replica %d committed %d, want %d", i, len(got), len(ref))
		}
		for k := range ref {
			if got[k].Dot != ref[k].Dot {
				t.Fatalf("replica %d committed order diverges at %d", i, k)
			}
		}
		if !spec.Equal(c.Replica(core.ReplicaID(i)).Read(spec.DefaultListID), c.Replica(0).Read(spec.DefaultListID)) {
			t.Fatalf("replica %d state diverges", i)
		}
	}
}

// TestOriginalVariantEndToEnd runs Algorithm 1 over the full stack.
func TestOriginalVariantEndToEnd(t *testing.T) {
	c, err := New(Config{N: 3, Variant: core.Original, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeOmega(0)
	mustInvoke(t, c, 0, spec.Append("a"), core.Weak)
	mustInvoke(t, c, 1, spec.Append("b"), core.Weak)
	mustInvoke(t, c, 2, spec.Duplicate(), core.Strong)
	mustSettle(t, c)
	for _, call := range c.Calls() {
		if !call.Done() {
			t.Errorf("call %s never completed", call.Dot())
		}
	}
	for i := 0; i < 3; i++ {
		if err := c.Replica(core.ReplicaID(i)).CheckInvariants(); err != nil {
			t.Error(err)
		}
	}
}

// TestPrimaryTOBEndToEnd runs the original Bayou commit scheme (E11).
func TestPrimaryTOBEndToEnd(t *testing.T) {
	c, err := New(Config{N: 3, Variant: core.NoCircularCausality, TOB: PrimaryTOB, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	mustInvoke(t, c, 1, spec.Append("a"), core.Weak)
	mustInvoke(t, c, 2, spec.Append("b"), core.Strong)
	mustSettle(t, c)
	for _, call := range c.Calls() {
		if !call.Done() {
			t.Errorf("call %s never completed under PrimaryTOB", call.Dot())
		}
	}
	// Crash the primary: strong ops stop committing.
	c.Network().Crash(0)
	stuck := mustInvoke(t, c, 1, spec.Append("c"), core.Strong)
	c.RunFor(5_000)
	if stuck.Done() {
		t.Error("strong op must block after primary crash (the ablation's point)")
	}
}

// TestReadYourWritesTradeoff (§A.1.2): Algorithm 1 preserves
// read-your-writes; Algorithm 2's immediate execution can miss the session's
// own immediately-preceding write.
func TestReadYourWritesTradeoff(t *testing.T) {
	run := func(v core.Variant) check.Result {
		c, err := New(Config{N: 2, Variant: v, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		c.StabilizeOmega(0)
		// Two back-to-back invocations with no scheduler progress in
		// between: under Algorithm 2 the first returns within its
		// invoke step, so the session is free again, yet the second
		// executes before the first is applied to the replica state.
		// Under Algorithm 1 the session blocks until the write is
		// executed, so the read necessarily observes it.
		mustInvoke(t, c, 0, spec.Append("w"), core.Weak)
		if v == core.Original {
			mustSettle(t, c) // Algorithm 1: the session is busy until then
		}
		mustInvoke(t, c, 0, spec.ListRead(), core.Weak)
		mustSettle(t, c)
		h, err := c.History()
		if err != nil {
			t.Fatal(err)
		}
		return check.NewWitness(h).ReadYourWrites()
	}
	if res := run(core.NoCircularCausality); res.Holds {
		t.Errorf("Algorithm 2 must lose read-your-writes on back-to-back invokes: %s", res)
	}
	if res := run(core.Original); !res.Holds {
		t.Errorf("Algorithm 1 must preserve read-your-writes: %s", res)
	}
}

// TestSlowReplicaBacklogGrows reproduces the §2.3 progress argument in
// miniature: with one slow replica saturated by the others' requests, the
// response time of the slow replica's own weak invocations grows round after
// round under Algorithm 1 (no bounded wait-freedom), while under Algorithm 2
// weak responses stay immediate.
func TestSlowReplicaBacklogGrows(t *testing.T) {
	latencies := func(variant core.Variant) []int64 {
		c, err := New(Config{
			N:         3,
			Variant:   variant,
			Seed:      23,
			ProcDelay: map[core.ReplicaID]sim.Time{2: 40},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.StabilizeOmega(0)
		var slowCalls []*Call
		const dt = 60 // enough for fast replicas, far too little for ~3 ops × 40 on the slow one
		for round := 0; round < 12; round++ {
			for i := 0; i < 3; i++ {
				call, invErr := c.Invoke(core.ReplicaID(i), spec.Append("z"), core.Weak)
				if errors.Is(invErr, ErrSessionBusy) {
					continue // session still blocked on its previous call
				}
				if invErr != nil {
					t.Fatal(invErr)
				}
				if i == 2 {
					slowCalls = append(slowCalls, call)
				}
			}
			c.RunFor(dt)
		}
		mustSettle(t, c)
		out := make([]int64, 0, len(slowCalls))
		for _, call := range slowCalls {
			if !call.Done() {
				t.Fatal("weak call never completed after settle")
			}
			out = append(out, call.WallReturn()-call.WallInvoke())
		}
		return out
	}

	orig := latencies(core.Original)
	if orig[len(orig)-1] <= orig[0]*2 {
		t.Errorf("Algorithm 1 slow-replica latency must grow: first=%d last=%d", orig[0], orig[len(orig)-1])
	}
	mod := latencies(core.NoCircularCausality)
	for i, l := range mod {
		if l != 0 {
			t.Errorf("Algorithm 2 weak latency[%d] = %d, want 0 (immediate)", i, l)
		}
	}
}

func TestHistoryWellFormedAndLatencies(t *testing.T) {
	c, err := New(Config{N: 2, Variant: core.NoCircularCausality, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeOmega(0)
	call := mustInvoke(t, c, 0, spec.Append("a"), core.Weak)
	mustSettle(t, c)
	strong := mustInvoke(t, c, 1, spec.Duplicate(), core.Strong)
	mustSettle(t, c)
	h, err := c.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Events) != 2 {
		t.Fatalf("history has %d events, want 2", len(h.Events))
	}
	if call.WallReturn() < call.WallInvoke() {
		t.Error("weak call latency negative")
	}
	if strong.WallReturn() <= strong.WallInvoke() {
		t.Error("strong call must take positive time (TOB round trips)")
	}
	if !h.SessionOrder(h.Events[0], h.Events[1]) == h.SameSession(h.Events[0], h.Events[1]) {
		t.Log("session relations consistent")
	}
}

func TestManyOpsManyReplicasConverge(t *testing.T) {
	c, err := New(Config{N: 4, Variant: core.NoCircularCausality, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeOmega(1)
	invoked := 0
	for round := 0; round < 10; round++ {
		for i := 0; i < 4; i++ {
			level := core.Weak
			if (round+i)%5 == 0 {
				level = core.Strong
			}
			_, invErr := c.Invoke(core.ReplicaID(i), spec.Append(fmt.Sprintf("%d%d", round, i)), level)
			if errors.Is(invErr, ErrSessionBusy) {
				continue // strong call from an earlier round still pending
			}
			if invErr != nil {
				t.Fatal(invErr)
			}
			invoked++
		}
		c.RunFor(7)
	}
	mustSettle(t, c)
	ref := c.Replica(0)
	if len(ref.Tentative()) != 0 {
		t.Error("tentative must drain in stable runs")
	}
	if got := len(ref.Committed()); got != invoked {
		t.Errorf("committed %d, want %d", got, invoked)
	}
	for i := 1; i < 4; i++ {
		p := c.Replica(core.ReplicaID(i))
		if !spec.Equal(p.Read(spec.DefaultListID), ref.Read(spec.DefaultListID)) {
			t.Errorf("replica %d state diverges", i)
		}
	}
}

// TestStepBatchConvergence runs the same seeded workload under the
// one-event-per-activation discipline and under batched draining, for both
// protocol variants: every replica must converge to the identical committed
// order and state, with the core invariants intact, and the batched run must
// consume fewer scheduler events.
func TestStepBatchConvergence(t *testing.T) {
	for _, variant := range []core.Variant{core.Original, core.NoCircularCausality} {
		t.Run(variant.String(), func(t *testing.T) {
			run := func(batch int) (*Cluster, int64) {
				c, err := New(Config{N: 3, Variant: variant, Seed: 37, StepBatch: batch})
				if err != nil {
					t.Fatal(err)
				}
				c.StabilizeOmega(0)
				for round := 0; round < 5; round++ {
					for i := 0; i < 3; i++ {
						for k := 0; k < 3; k++ {
							_, invErr := c.Invoke(core.ReplicaID(i), spec.Append(fmt.Sprintf("%d", i)), core.Weak)
							if errors.Is(invErr, ErrSessionBusy) {
								break // Original: weak calls pend past the invoke step
							}
							if invErr != nil {
								t.Fatal(invErr)
							}
						}
					}
					c.RunFor(12)
				}
				mustSettle(t, c)
				for i := 0; i < 3; i++ {
					if err := c.Replica(core.ReplicaID(i)).CheckInvariants(); err != nil {
						t.Fatalf("batch=%d: %v", batch, err)
					}
				}
				return c, c.Scheduler().Steps()
			}
			seq, seqEvents := run(1)
			bat, batEvents := run(8)
			if batEvents >= seqEvents {
				t.Errorf("batched run used %d scheduler events, sequential %d", batEvents, seqEvents)
			}
			refSeq, refBat := seq.Replica(0).Committed(), bat.Replica(0).Committed()
			if len(refSeq) != len(refBat) {
				t.Fatalf("committed lengths diverge: %d vs %d", len(refSeq), len(refBat))
			}
			for i := range refSeq {
				if refSeq[i].Dot != refBat[i].Dot {
					t.Fatalf("committed[%d] diverges: %v vs %v", i, refSeq[i].Dot, refBat[i].Dot)
				}
			}
			for i := 0; i < 3; i++ {
				if !spec.Equal(bat.Replica(core.ReplicaID(i)).Read(spec.DefaultListID),
					seq.Replica(0).Read(spec.DefaultListID)) {
					t.Errorf("replica %d state diverges from sequential run", i)
				}
			}
		})
	}
}
