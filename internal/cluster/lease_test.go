package cluster

import (
	"errors"
	"testing"

	"bayou/internal/check"
	"bayou/internal/core"
	"bayou/internal/spec"
)

// waitLease drives the deployment until the leader's TOB endpoint holds
// the ordering lease (the query itself triggers acquisition/renewal).
func waitLease(t *testing.T, c *Cluster, id core.ReplicaID) {
	t.Helper()
	for try := 0; !c.TOBLeaseHeld(id); try++ {
		if try > 1000 {
			t.Fatalf("replica %d never acquired the lease", id)
		}
		c.RunFor(20)
	}
}

// TestLeaseReadsServedLocallySatisfySeq: strong reads under a held lease
// are served from the leader's committed prefix with zero proposal
// rounds, and the resulting history still satisfies the paper's full
// predicate set — the lease read is anchored between commits in the
// reconstructed arbitration, so Seq(strong) must hold over the mix of
// consensus-committed writes and locally-served reads.
func TestLeaseReadsServedLocallySatisfySeq(t *testing.T) {
	c, err := New(Config{N: 3, Variant: core.NoCircularCausality, Seed: 91, LeaseTicks: 2000})
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeOmega(0)
	mustInvoke(t, c, 0, spec.Inc("c", 1), core.Strong)
	mustSettle(t, c)
	mustInvoke(t, c, 1, spec.Inc("c", 10), core.Strong)
	mustSettle(t, c)
	waitLease(t, c, 0)

	before := c.PaxosCounters(0)
	reads := make([]*Call, 3)
	for i := range reads {
		reads[i] = mustInvoke(t, c, 0, spec.Get("c"), core.Strong)
		if !reads[i].Done() {
			t.Fatalf("lease read %d not served synchronously", i)
		}
	}
	after := c.PaxosCounters(0)
	if after.Proposals != before.Proposals {
		t.Errorf("lease reads issued %d proposals, want 0", after.Proposals-before.Proposals)
	}
	if after.Prepares != before.Prepares {
		t.Errorf("lease reads re-ran Phase 1")
	}

	mustSettle(t, c)
	c.MarkStable()
	// Lease reads are served synchronously — they consume no simulated
	// time, only Lamport bumps of the leader's clock. Let real (simulated)
	// time pass so the probes' timestamps land after the reads', as the
	// model's "probes issued after quiescence" premise requires.
	c.RunFor(16)
	for i := 0; i < 3; i++ {
		mustInvoke(t, c, core.ReplicaID(i), spec.Get("c"), core.Weak)
	}
	mustSettle(t, c)

	h, err := c.History()
	if err != nil {
		t.Fatal(err)
	}
	leased := 0
	for _, e := range h.Events {
		if e.LeaseRead {
			leased++
			if e.TOBCast {
				t.Errorf("lease read %s marked TOB-cast", e.Dot)
			}
			if e.LeaseNo <= 0 {
				t.Errorf("lease read %s anchored at prefix %d, want > 0", e.Dot, e.LeaseNo)
			}
		}
	}
	if leased != len(reads) {
		t.Errorf("history records %d lease reads, want %d", leased, len(reads))
	}
	w := check.NewWitness(h)
	if res := w.ArTotal(); !res.Holds {
		t.Errorf("%s", res)
	}
	for _, rep := range []check.Report{w.FEC(core.Weak), w.FEC(core.Strong), w.Seq(core.Strong)} {
		if !rep.OK() {
			t.Errorf("leased run violates guarantee:\n%s", rep)
		}
	}
}

// TestLeaseExpiresUnderPartitionNoStaleRead is the fault-honesty
// obligation end to end: partition the lease-holding leader away from its
// quorum, let the granted window lapse, and the leader must refuse to
// serve strong reads locally — the read falls back to consensus and
// pends until the partition heals, rather than returning a value the
// majority side could have moved past.
func TestLeaseExpiresUnderPartitionNoStaleRead(t *testing.T) {
	c, err := New(Config{N: 3, Variant: core.NoCircularCausality, Seed: 92, LeaseTicks: 2000})
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeOmega(0)
	mustInvoke(t, c, 0, spec.Inc("c", 1), core.Strong)
	mustSettle(t, c)
	waitLease(t, c, 0)

	c.Partition([]core.ReplicaID{0}, []core.ReplicaID{1, 2})
	// No renewal grant can cross the partition; simulated time passes the
	// granted window.
	c.RunFor(3 * 2000)
	if c.TOBLeaseHeld(0) {
		t.Fatal("partitioned leader still holds the lease after expiry")
	}

	read := mustInvoke(t, c, 0, spec.Get("c"), core.Strong)
	c.RunFor(2000)
	if read.Done() {
		t.Fatal("strong read served during partition after lease expiry — stale read")
	}

	c.Heal()
	mustSettle(t, c)
	if !read.Done() {
		t.Fatal("strong read never completed after heal")
	}
	c.MarkStable()
	for i := 0; i < 3; i++ {
		mustInvoke(t, c, core.ReplicaID(i), spec.Get("c"), core.Weak)
	}
	mustSettle(t, c)

	h, err := c.History()
	if err != nil {
		t.Fatal(err)
	}
	w := check.NewWitness(h)
	if res := w.ArTotal(); !res.Holds {
		t.Errorf("%s", res)
	}
	for _, rep := range []check.Report{w.FEC(core.Weak), w.Seq(core.Strong)} {
		if !rep.OK() {
			t.Errorf("faulted leased run violates guarantee:\n%s", rep)
		}
	}
}

// TestPipelinedBatchedRunConvergesUnderCheckpoint: the multi-decree fast
// path (deep pipeline, batching, leases) composed with PR 5's checkpoint
// cadence and crash-recovery state transfer — a replica that slept
// through batched commits and a checkpoint catches up and converges to
// the same committed order.
func TestPipelinedBatchedRunConvergesUnderCheckpoint(t *testing.T) {
	c, err := New(Config{
		N: 3, Variant: core.NoCircularCausality, Seed: 93,
		CheckpointEvery: 8, PipelineDepth: 8, BatchCap: 64, LeaseTicks: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeOmega(0)
	// Sessions are sequential: back-to-back strong invocations on the same
	// default session race the commit of the previous one, so retry on
	// ErrSessionBusy while driving the scheduler — the retry pressure is
	// exactly what keeps the pipeline window full.
	invoke := func(id core.ReplicaID, op spec.Op) {
		t.Helper()
		for try := 0; ; try++ {
			_, err := c.Invoke(id, op, core.Strong)
			if err == nil {
				return
			}
			if !errors.Is(err, ErrSessionBusy) || try > 2000 {
				t.Fatal(err)
			}
			c.RunFor(5)
		}
	}
	for k := 0; k < 6; k++ {
		invoke(core.ReplicaID(k%3), spec.Inc("c", 1))
		c.RunFor(5)
	}
	mustSettle(t, c)
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	// Enough commits while 2 sleeps to cross several checkpoint windows.
	for k := 0; k < 24; k++ {
		invoke(core.ReplicaID(k%2), spec.Inc("c", 1))
		c.RunFor(5)
	}
	mustSettle(t, c)
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	mustSettle(t, c)

	want := c.Replica(0).CommittedLen()
	if want != 30 {
		t.Fatalf("leader committed %d ops, want 30", want)
	}
	for i := 1; i < 3; i++ {
		if got := c.Replica(core.ReplicaID(i)).CommittedLen(); got != want {
			t.Errorf("replica %d committed %d, want %d", i, got, want)
		}
	}
	v0 := c.Replica(0).Read("c")
	for i := 1; i < 3; i++ {
		if v := c.Replica(core.ReplicaID(i)).Read("c"); v != v0 {
			t.Errorf("replica %d state %v != leader %v", i, v, v0)
		}
	}
}
