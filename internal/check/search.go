package check

import (
	"fmt"
	"slices"
	"strings"

	"bayou/internal/core"
	"bayou/internal/history"
	"bayou/internal/spec"
)

// Guarantees selects the predicates the search must satisfy simultaneously.
// EV and CPar are omitted deliberately: on finite histories "all but
// finitely many" is vacuously true, so they constrain nothing (the paper's
// impossibility accordingly forces the contradiction through RVal, SinOrd,
// SessArb and the acyclicity of arbitration alone).
type Guarantees struct {
	WeakRVal   bool // RVal(weak,F): weak responses explained in ar order
	StrongSeq  bool // SinOrd(strong) ∧ SessArb(strong) ∧ RVal(strong,F)
	RequireNCC bool // acyclic(so ∪ vis)
}

// BECWeakSeqStrong is the conjunction Theorem 1 proves unachievable for
// arbitrary F.
func BECWeakSeqStrong() Guarantees {
	return Guarantees{WeakRVal: true, StrongSeq: true, RequireNCC: true}
}

// SearchOutcome reports whether any abstract execution explains the history.
type SearchOutcome struct {
	Satisfiable bool
	// ArWitness is one satisfying arbitration order (dots in order) when
	// Satisfiable.
	ArWitness []core.Dot
	// ExploredArs counts the arbitration orders examined (all n! of them
	// for an unsatisfiable verdict — the exhaustiveness guarantee).
	ExploredArs int64
}

// String implements fmt.Stringer.
func (o SearchOutcome) String() string {
	if !o.Satisfiable {
		return fmt.Sprintf("UNSATISFIABLE (all %d arbitration orders refuted)", o.ExploredArs)
	}
	parts := make([]string, len(o.ArWitness))
	for i, d := range o.ArWitness {
		parts[i] = d.String()
	}
	return fmt.Sprintf("SATISFIABLE with ar = %s", strings.Join(parts, " < "))
}

// MaxSearchEvents bounds the exhaustive search (n! arbitration orders).
const MaxSearchEvents = 9

// Search decides, by exhaustive enumeration of arbitration orders and
// visibility assignments, whether the history admits an abstract execution
// satisfying the requested guarantees. It is the executable counterpart of
// the Theorem 1 argument: an UNSAT verdict on the theorem's construction is
// a machine-checked replay of the impossibility proof.
func Search(h *history.History, g Guarantees) (SearchOutcome, error) {
	n := len(h.Events)
	if n > MaxSearchEvents {
		return SearchOutcome{}, fmt.Errorf("check: search over %d events exceeds the %d-event bound", n, MaxSearchEvents)
	}
	s := &searcher{h: h, g: g, evalCache: make(map[string]spec.Value)}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	out := SearchOutcome{}
	s.permute(perm, 0, &out)
	return out, nil
}

type searcher struct {
	h         *history.History
	g         Guarantees
	evalCache map[string]spec.Value
}

// permute enumerates permutations in-place (simple recursive swap scheme)
// and tests each as an arbitration order.
func (s *searcher) permute(perm []int, k int, out *SearchOutcome) {
	if out.Satisfiable {
		return
	}
	if k == len(perm) {
		out.ExploredArs++
		if s.testAr(perm) {
			out.Satisfiable = true
			out.ArWitness = make([]core.Dot, len(perm))
			for i, idx := range perm {
				out.ArWitness[i] = s.h.Events[idx].Dot
			}
		}
		return
	}
	for i := k; i < len(perm); i++ {
		perm[k], perm[i] = perm[i], perm[k]
		s.permute(perm, k+1, out)
		perm[k], perm[i] = perm[i], perm[k]
		if out.Satisfiable {
			return
		}
	}
}

// testAr reports whether the permutation (perm[i] = index of the i-th event
// in ar) can be completed to a satisfying abstract execution.
func (s *searcher) testAr(perm []int) bool {
	events := s.h.Events
	n := len(events)
	pos := make([]int, n)
	for p, idx := range perm {
		pos[idx] = p
	}

	// SessArb(strong): session order into strong events respects ar.
	if s.g.StrongSeq {
		for _, e := range events {
			if e.Level != core.Strong {
				continue
			}
			for _, x := range events {
				if x != e && s.h.SessionOrder(x, e) && pos[x.ID] > pos[e.ID] {
					return false
				}
			}
		}
	}

	// Pending events and the E' of SinOrd's definition: each pending
	// event either contributes its ar-edges to every strong context or to
	// none. Enumerate the (tiny) power set.
	var pending []*history.Event
	for _, e := range events {
		if e.Pending {
			pending = append(pending, e)
		}
	}
	for mask := 0; mask < 1<<len(pending); mask++ {
		excluded := make(map[history.EventID]bool)
		for i, p := range pending {
			if mask&(1<<i) != 0 {
				excluded[p.ID] = true
			}
		}
		if s.testArWithExclusions(perm, pos, excluded) {
			return true
		}
	}
	return false
}

func (s *searcher) testArWithExclusions(perm, pos []int, excluded map[history.EventID]bool) bool {
	events := s.h.Events
	updating := s.h.Updating()

	// Forced strong contexts: SinOrd makes vis⁻¹(e) = ar-predecessors
	// (minus E'); RVal(strong) then pins the responses.
	visEdges := history.NewRel(len(events)) // chosen/forced vis edges
	for _, e := range events {
		if e.Level != core.Strong {
			continue
		}
		var ctx []*history.Event
		for _, idx := range perm {
			x := events[idx]
			if x == e || pos[x.ID] > pos[e.ID] || excluded[x.ID] {
				continue
			}
			ctx = append(ctx, x)
			visEdges.Add(x.ID, e.ID)
		}
		if s.g.StrongSeq && !e.Pending {
			if !spec.Equal(e.RVal, s.eval(ctx, e.Op)) {
				return false
			}
		}
	}

	// Weak contexts: any subset of updating events whose ar-ordered replay
	// yields the observed response. Choices only affect NCC, so collect
	// all candidates per event and backtrack over them.
	type choice struct {
		e          *history.Event
		candidates [][]*history.Event
	}
	var choices []choice
	if s.g.WeakRVal {
		for _, e := range events {
			if e.Level != core.Weak || e.Pending {
				continue
			}
			cands := s.weakContexts(e, updating, pos)
			if len(cands) == 0 {
				return false
			}
			choices = append(choices, choice{e: e, candidates: cands})
		}
	}

	// Backtrack over weak-context choices, checking NCC at the leaves.
	// Each branch works on its own copy of the visibility edge set.
	var rec func(i int, vis *history.Rel) bool
	rec = func(i int, vis *history.Rel) bool {
		if i == len(choices) {
			if !s.g.RequireNCC {
				return true
			}
			hb := vis.Clone()
			for _, e := range events {
				for _, x := range events {
					if x != e && s.h.SessionOrder(x, e) {
						hb.Add(x.ID, e.ID)
					}
				}
			}
			ok, _ := hb.Acyclic()
			return ok
		}
		c := choices[i]
		for _, ctx := range c.candidates {
			branch := vis.Clone()
			for _, x := range ctx {
				branch.Add(x.ID, c.e.ID)
			}
			if rec(i+1, branch) {
				return true
			}
		}
		return false
	}
	return rec(0, visEdges)
}

// weakContexts enumerates the visible-updating sets that explain e's
// response under the given arbitration order.
func (s *searcher) weakContexts(e *history.Event, updating []*history.Event, pos []int) [][]*history.Event {
	var pool []*history.Event
	for _, u := range updating {
		if u != e {
			pool = append(pool, u)
		}
	}
	var out [][]*history.Event
	for mask := 0; mask < 1<<len(pool); mask++ {
		var ctx []*history.Event
		for i, u := range pool {
			if mask&(1<<i) != 0 {
				ctx = append(ctx, u)
			}
		}
		// Order by ar.
		sortByPos(ctx, pos)
		if spec.Equal(e.RVal, s.eval(ctx, e.Op)) {
			out = append(out, ctx)
		}
	}
	return out
}

func sortByPos(ctx []*history.Event, pos []int) {
	slices.SortFunc(ctx, func(a, b *history.Event) int { return pos[a.ID] - pos[b.ID] })
}

// eval computes F(op, ctx) with memoization (contexts repeat massively
// across permutations).
func (s *searcher) eval(ctx []*history.Event, op spec.Op) spec.Value {
	var key strings.Builder
	for _, x := range ctx {
		key.WriteString(x.Dot.String())
		key.WriteByte('|')
	}
	key.WriteString(op.Name())
	k := key.String()
	if v, ok := s.evalCache[k]; ok {
		return v
	}
	ops := make([]spec.Op, len(ctx))
	for i, x := range ctx {
		ops[i] = x.Op
	}
	v := spec.Eval(ops, op)
	s.evalCache[k] = v
	return v
}
