package check

import (
	"testing"

	"bayou/internal/core"
	"bayou/internal/history"
	"bayou/internal/spec"
)

// evt builds a history event compactly for tests.
type evt struct {
	session core.SessionID
	eventNo int64
	op      spec.Op
	level   core.Level
	rval    spec.Value
	invoke  int64
	ret     int64
	ts      int64
	tobCast bool
	tobNo   int64
	trace   []core.Dot
	commLen int
	pending bool
	guar    core.Guarantee
	readVec core.Vec
}

func build(t *testing.T, stableAt int64, evts ...evt) *history.History {
	t.Helper()
	events := make([]*history.Event, len(evts))
	for i, e := range evts {
		events[i] = &history.Event{
			Session:      e.session,
			Op:           e.op,
			Level:        e.level,
			RVal:         e.rval,
			Pending:      e.pending,
			Invoke:       e.invoke,
			Return:       e.ret,
			Dot:          core.Dot{Replica: core.ReplicaID(e.session), EventNo: e.eventNo},
			Timestamp:    e.ts,
			TOBCast:      e.tobCast,
			TOBNo:        e.tobNo,
			Trace:        e.trace,
			CommittedLen: e.commLen,
			Guarantees:   e.guar,
			ReadVec:      e.readVec,
		}
	}
	h, err := history.New(events, stableAt)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func dot(r core.ReplicaID, n int64) core.Dot { return core.Dot{Replica: r, EventNo: n} }

// figure1History is the history of Figure 1 as produced by Algorithm 1,
// with the witness data the core tests verified: TOB order a, x, dup; x's
// trace observed duplicate() tentatively; duplicate()'s trace observed the
// committed x.
func figure1History(t *testing.T) *history.History {
	return build(t, 100,
		evt{session: 0, eventNo: 1, op: spec.Append("a"), level: core.Weak, rval: "a",
			invoke: 10, ret: 11, ts: 10, tobCast: true, tobNo: 1, trace: nil},
		evt{session: 0, eventNo: 2, op: spec.Append("x"), level: core.Weak, rval: "aax",
			invoke: 20, ret: 25, ts: 20, tobCast: true, tobNo: 2,
			trace: []core.Dot{dot(0, 1), dot(1, 1)}},
		evt{session: 1, eventNo: 1, op: spec.Duplicate(), level: core.Strong, rval: "axax",
			invoke: 15, ret: 40, ts: 15, tobCast: true, tobNo: 3,
			trace: []core.Dot{dot(0, 1), dot(0, 2)}, commLen: 2},
	)
}

// reorderHistory is the minimal temporary-operation-reordering history under
// Algorithm 2: two non-commuting weak appends whose timestamp order opposes
// the TOB order, observed tentatively by a weak reader before commit and by
// a probe reader after quiescence.
func reorderHistory(t *testing.T) *history.History {
	return build(t, 100,
		// p: ts 5, but committed second.
		evt{session: 0, eventNo: 1, op: spec.Append("p"), level: core.Weak, rval: "p",
			invoke: 5, ret: 5, ts: 5, tobCast: true, tobNo: 2, trace: nil},
		// q: ts 10, committed first.
		evt{session: 1, eventNo: 1, op: spec.Append("q"), level: core.Weak, rval: "q",
			invoke: 10, ret: 10, ts: 10, tobCast: true, tobNo: 1, trace: nil},
		// Tentative reader on replica 2: observes timestamp order p, q.
		evt{session: 2, eventNo: 1, op: spec.ListRead(), level: core.Weak, rval: "pq",
			invoke: 20, ret: 20, ts: 20, tobCast: false, tobNo: -1,
			trace: []core.Dot{dot(0, 1), dot(1, 1)}},
		// Post-quiescence probe: observes the final (TOB) order q, p.
		evt{session: 2, eventNo: 2, op: spec.ListRead(), level: core.Weak, rval: "qp",
			invoke: 200, ret: 200, ts: 200, tobCast: false, tobNo: -1,
			trace: []core.Dot{dot(1, 1), dot(0, 1)}, commLen: 2},
	)
}

func TestWitnessFigure1FECWeakHolds(t *testing.T) {
	w := NewWitness(figure1History(t))
	if res := w.FRVal(core.Weak); !res.Holds {
		t.Errorf("FRVal(weak) must hold on Figure 1: %s", res)
	}
	if res := w.FRVal(core.Strong); !res.Holds {
		t.Errorf("FRVal(strong) must hold on Figure 1: %s", res)
	}
	if res := w.CPar(core.Weak); !res.Holds {
		t.Errorf("CPar(weak) must hold (no post-quiescence events): %s", res)
	}
}

func TestWitnessFigure1CircularCausality(t *testing.T) {
	// §2.2: in Figure 1 the return value of append(x) causally depends on
	// duplicate() and vice versa — the original protocol violates NCC.
	w := NewWitness(figure1History(t))
	if res := w.NCC(); res.Holds {
		t.Errorf("NCC must be violated on Figure 1 under Algorithm 1: %s", res)
	}
}

func TestWitnessFigure1SeqStrongHolds(t *testing.T) {
	w := NewWitness(figure1History(t))
	rep := w.Seq(core.Strong)
	if !rep.OK() {
		t.Errorf("Seq(strong) must hold on Figure 1:\n%s", rep)
	}
}

func TestWitnessReorderBECFailsFECHolds(t *testing.T) {
	// The §4.1 separation: the reordering history violates RVal(weak,F)
	// (hence BEC(weak,F)) but satisfies FEC(weak,F).
	w := NewWitness(reorderHistory(t))
	if res := w.RVal(core.Weak); res.Holds {
		t.Errorf("RVal(weak) must fail on the reordering history: %s", res)
	}
	rep := w.FEC(core.Weak)
	if !rep.OK() {
		t.Errorf("FEC(weak) must hold on the reordering history:\n%s", rep)
	}
	becRep := w.BEC(core.Weak)
	if becRep.OK() {
		t.Error("BEC(weak) must fail on the reordering history")
	}
}

func TestWitnessCParDetectsPostQuiescenceDisagreement(t *testing.T) {
	// A probe that still perceives the old order after quiescence is a
	// CPar violation: par(e) failed to converge to ar.
	h := build(t, 100,
		evt{session: 0, eventNo: 1, op: spec.Append("p"), level: core.Weak, rval: "p",
			invoke: 5, ret: 5, ts: 5, tobCast: true, tobNo: 2},
		evt{session: 1, eventNo: 1, op: spec.Append("q"), level: core.Weak, rval: "q",
			invoke: 10, ret: 10, ts: 10, tobCast: true, tobNo: 1},
		evt{session: 2, eventNo: 1, op: spec.ListRead(), level: core.Weak, rval: "pq",
			invoke: 200, ret: 200, ts: 200, tobCast: false, tobNo: -1,
			trace: []core.Dot{dot(0, 1), dot(1, 1)}},
	)
	w := NewWitness(h)
	if res := w.CPar(core.Weak); res.Holds {
		t.Errorf("CPar must detect stale perception after quiescence: %s", res)
	}
}

func TestWitnessEV(t *testing.T) {
	// An event returned before quiescence but absent from a probe's trace
	// violates EV.
	h := build(t, 100,
		evt{session: 0, eventNo: 1, op: spec.Append("p"), level: core.Weak, rval: "p",
			invoke: 5, ret: 5, ts: 5, tobCast: true, tobNo: 1},
		evt{session: 1, eventNo: 1, op: spec.ListRead(), level: core.Weak, rval: "",
			invoke: 200, ret: 200, ts: 200, tobCast: false, tobNo: -1, trace: nil},
	)
	w := NewWitness(h)
	if res := w.EV(); res.Holds {
		t.Errorf("EV must fail when probes miss returned events: %s", res)
	}

	h2 := build(t, 100,
		evt{session: 0, eventNo: 1, op: spec.Append("p"), level: core.Weak, rval: "p",
			invoke: 5, ret: 5, ts: 5, tobCast: true, tobNo: 1},
		evt{session: 1, eventNo: 1, op: spec.ListRead(), level: core.Weak, rval: "p",
			invoke: 200, ret: 200, ts: 200, tobCast: false, tobNo: -1,
			trace: []core.Dot{dot(0, 1)}},
	)
	if res := NewWitness(h2).EV(); !res.Holds {
		t.Errorf("EV must hold when probes observe everything: %s", res)
	}
}

func TestWitnessSessArb(t *testing.T) {
	// A strong event arbitrated before its session predecessor violates
	// SessArb(strong).
	h := build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.Append("p"), level: core.Weak, rval: "p",
			invoke: 5, ret: 6, ts: 5, tobCast: true, tobNo: 2},
		evt{session: 0, eventNo: 2, op: spec.Append("s"), level: core.Strong, rval: "ps",
			invoke: 10, ret: 20, ts: 10, tobCast: true, tobNo: 1,
			trace: []core.Dot{dot(0, 1)}},
	)
	w := NewWitness(h)
	if res := w.SessArb(core.Strong); res.Holds {
		t.Errorf("SessArb must fail when TOB inverts session order: %s", res)
	}
}

func TestWitnessSinOrdPendingExemption(t *testing.T) {
	// A pending strong event need not be visible (the E' of the SinOrd
	// definition).
	h := build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.Append("p"), level: core.Strong, rval: nil,
			invoke: 5, ts: 5, tobCast: true, tobNo: -1, pending: true},
		evt{session: 1, eventNo: 1, op: spec.Append("s"), level: core.Strong, rval: "s",
			invoke: 10, ret: 20, ts: 10, tobCast: true, tobNo: 1, trace: nil},
	)
	w := NewWitness(h)
	if res := w.SinOrd(core.Strong); !res.Holds {
		t.Errorf("SinOrd must exempt pending events: %s", res)
	}
}

func TestWitnessArTotal(t *testing.T) {
	w := NewWitness(figure1History(t))
	if res := w.ArTotal(); !res.Holds {
		t.Errorf("constructed ar must be total on Figure 1: %s", res)
	}
}

func TestReadYourWrites(t *testing.T) {
	// Session 0 writes then reads without observing its own write: RYW
	// violated (the §A.1.2 trade-off of Algorithm 2).
	h := build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.Append("w"), level: core.Weak, rval: "w",
			invoke: 5, ret: 5, ts: 5, tobCast: true, tobNo: 1},
		evt{session: 0, eventNo: 2, op: spec.ListRead(), level: core.Weak, rval: "",
			invoke: 10, ret: 10, ts: 10, tobCast: false, tobNo: -1, trace: nil},
	)
	w := NewWitness(h)
	if res := w.ReadYourWrites(); res.Holds {
		t.Errorf("RYW must fail: %s", res)
	}

	h2 := build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.Append("w"), level: core.Weak, rval: "w",
			invoke: 5, ret: 5, ts: 5, tobCast: true, tobNo: 1},
		evt{session: 0, eventNo: 2, op: spec.ListRead(), level: core.Weak, rval: "w",
			invoke: 10, ret: 10, ts: 10, tobCast: false, tobNo: -1,
			trace: []core.Dot{dot(0, 1)}},
	)
	if res := NewWitness(h2).ReadYourWrites(); !res.Holds {
		t.Errorf("RYW must hold when traces include session writes: %s", res)
	}
}

func TestSeqPendingAware(t *testing.T) {
	h := build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.Append("p"), level: core.Strong, rval: nil,
			invoke: 5, ts: 5, tobCast: true, tobNo: -1, pending: true},
	)
	rep := NewWitness(h).SeqPendingAware(core.Strong)
	if rep.OK() {
		t.Error("pending strong events must fail the pending-aware Seq report")
	}
}

func TestReportFormatting(t *testing.T) {
	rep := Report{Guarantee: "X", Results: []Result{
		{Predicate: "A", Holds: true},
		{Predicate: "B", Holds: false, Detail: "boom"},
	}}
	if rep.OK() {
		t.Error("OK must be false with a failure")
	}
	if len(rep.Failures()) != 1 {
		t.Error("Failures must list the violated predicate")
	}
	if s := rep.String(); s == "" {
		t.Error("String must render")
	}
}

func TestMonotonicReads(t *testing.T) {
	// Session 1 observes w in its first read, loses it in the second:
	// monotonic reads violated (the mid-rollback window of Algorithm 2).
	h := build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.Append("w"), level: core.Weak, rval: "w",
			invoke: 5, ret: 5, ts: 5, tobCast: true, tobNo: 2},
		evt{session: 1, eventNo: 1, op: spec.ListRead(), level: core.Weak, rval: "w",
			invoke: 10, ret: 10, ts: 10, tobCast: false, tobNo: -1,
			trace: []core.Dot{dot(0, 1)}},
		evt{session: 1, eventNo: 2, op: spec.ListRead(), level: core.Weak, rval: "",
			invoke: 20, ret: 20, ts: 20, tobCast: false, tobNo: -1, trace: nil},
	)
	if res := NewWitness(h).MonotonicReads(); res.Holds {
		t.Errorf("MR must fail when an observation is lost: %s", res)
	}

	h2 := build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.Append("w"), level: core.Weak, rval: "w",
			invoke: 5, ret: 5, ts: 5, tobCast: true, tobNo: 1},
		evt{session: 1, eventNo: 1, op: spec.ListRead(), level: core.Weak, rval: "w",
			invoke: 10, ret: 10, ts: 10, tobCast: false, tobNo: -1,
			trace: []core.Dot{dot(0, 1)}},
		evt{session: 1, eventNo: 2, op: spec.ListRead(), level: core.Weak, rval: "w",
			invoke: 20, ret: 20, ts: 20, tobCast: false, tobNo: -1,
			trace: []core.Dot{dot(0, 1)}},
	)
	if res := NewWitness(h2).MonotonicReads(); !res.Holds {
		t.Errorf("MR must hold on monotone traces: %s", res)
	}
}

func TestMonotonicWrites(t *testing.T) {
	// A trace observing the later session write without (or before) the
	// earlier one violates MW.
	h := build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.Append("w1"), level: core.Weak, rval: "w1",
			invoke: 5, ret: 5, ts: 5, tobCast: true, tobNo: 1},
		evt{session: 0, eventNo: 2, op: spec.Append("w2"), level: core.Weak, rval: "w1w2",
			invoke: 10, ret: 10, ts: 10, tobCast: true, tobNo: 2,
			trace: []core.Dot{dot(0, 1)}},
		evt{session: 1, eventNo: 1, op: spec.ListRead(), level: core.Weak, rval: "w2",
			invoke: 20, ret: 20, ts: 20, tobCast: false, tobNo: -1,
			trace: []core.Dot{dot(0, 2)}}, // w2 without w1
	)
	if res := NewWitness(h).MonotonicWrites(); res.Holds {
		t.Errorf("MW must fail: %s", res)
	}

	h2 := build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.Append("w1"), level: core.Weak, rval: "w1",
			invoke: 5, ret: 5, ts: 5, tobCast: true, tobNo: 1},
		evt{session: 0, eventNo: 2, op: spec.Append("w2"), level: core.Weak, rval: "w1w2",
			invoke: 10, ret: 10, ts: 10, tobCast: true, tobNo: 2,
			trace: []core.Dot{dot(0, 1)}},
		evt{session: 1, eventNo: 1, op: spec.ListRead(), level: core.Weak, rval: "w1w2",
			invoke: 20, ret: 20, ts: 20, tobCast: false, tobNo: -1,
			trace: []core.Dot{dot(0, 1), dot(0, 2)}},
	)
	if res := NewWitness(h2).MonotonicWrites(); !res.Holds {
		t.Errorf("MW must hold: %s", res)
	}
}

func TestWritesFollowReads(t *testing.T) {
	// Session 1 reads x (from session 0), then writes v. A third party
	// observes v without x: WFR violated.
	h := build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.Append("x"), level: core.Weak, rval: "x",
			invoke: 5, ret: 5, ts: 5, tobCast: true, tobNo: 1},
		evt{session: 1, eventNo: 1, op: spec.ListRead(), level: core.Weak, rval: "x",
			invoke: 10, ret: 10, ts: 10, tobCast: false, tobNo: -1,
			trace: []core.Dot{dot(0, 1)}},
		evt{session: 1, eventNo: 2, op: spec.Append("v"), level: core.Weak, rval: "xv",
			invoke: 15, ret: 15, ts: 15, tobCast: true, tobNo: 2,
			trace: []core.Dot{dot(0, 1)}},
		evt{session: 2, eventNo: 1, op: spec.ListRead(), level: core.Weak, rval: "v",
			invoke: 20, ret: 20, ts: 20, tobCast: false, tobNo: -1,
			trace: []core.Dot{dot(1, 2)}}, // v without x
	)
	if res := NewWitness(h).WritesFollowReads(); res.Holds {
		t.Errorf("WFR must fail: %s", res)
	}
}
