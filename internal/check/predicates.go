package check

import (
	"fmt"

	"bayou/internal/core"
	"bayou/internal/spec"
)

// EV checks eventual visibility (§4): every event that returned before the
// quiescence cutoff must be visible to every probe event invoked after it.
// (On finite histories the paper's "all but finitely many" is vacuous; the
// probe formulation is the standard finite-trace strengthening — see
// DESIGN.md §3.)
func (w *Witness) EV() Result {
	probes := w.H.Probes()
	if len(probes) == 0 {
		return Result{Predicate: "EV", Holds: true, Detail: "no probe events after quiescence (vacuous)"}
	}
	for _, e := range w.H.Events {
		if e.Pending || e.Return > w.H.StableAt {
			continue
		}
		for _, p := range probes {
			if p == e {
				continue
			}
			if !w.Vis(e, p) {
				return Result{Predicate: "EV", Holds: false,
					Detail: fmt.Sprintf("%s (%s) not visible to post-quiescence probe %s (%s)", e.Dot, e.Op.Name(), p.Dot, p.Op.Name())}
			}
		}
	}
	return Result{Predicate: "EV", Holds: true, Detail: fmt.Sprintf("%d probes", len(probes))}
}

// NCC checks no-circular-causality: hb = (so ∪ vis)⁺ is acyclic (§4).
func (w *Witness) NCC() Result {
	hbBase := w.so.Union(w.vis)
	ok, cycle := hbBase.Acyclic()
	if ok {
		return Result{Predicate: "NCC", Holds: true}
	}
	names := make([]string, 0, len(cycle))
	for _, id := range cycle {
		e := w.H.Events[id]
		names = append(names, fmt.Sprintf("%s(%s)", e.Dot, e.Op.Name()))
	}
	return Result{Predicate: "NCC", Holds: false, Detail: fmt.Sprintf("causality cycle: %v", names)}
}

// FRVal checks the fluctuating return-value predicate FRVal(l,F) (§4.2):
// every level-l response equals the specification applied to the visible
// updating operations in *perceived* (par) order.
func (w *Witness) FRVal(l core.Level) Result {
	name := fmt.Sprintf("FRVal(%s)", l)
	for _, e := range w.H.Levels(l) {
		if e.Pending {
			continue
		}
		want := w.expectedFRVal(e)
		if !spec.Equal(e.RVal, want) {
			return Result{Predicate: name, Holds: false,
				Detail: fmt.Sprintf("%s %s returned %s, specification gives %s", e.Dot, e.Op.Name(), spec.Encode(e.RVal), spec.Encode(want))}
		}
	}
	return Result{Predicate: name, Holds: true}
}

// RVal checks the plain return-value predicate RVal(l,F) (§4.1): every
// level-l response equals the specification applied to the visible updating
// operations in *arbitration* order. Bayou's weak operations violate this on
// reordered schedules — that is exactly the BEC(weak,F) failure of §4.1.
func (w *Witness) RVal(l core.Level) Result {
	name := fmt.Sprintf("RVal(%s)", l)
	for _, e := range w.H.Levels(l) {
		if e.Pending {
			continue
		}
		want := w.expectedRVal(e)
		if !spec.Equal(e.RVal, want) {
			return Result{Predicate: name, Holds: false,
				Detail: fmt.Sprintf("%s %s returned %s, arbitration-order specification gives %s", e.Dot, e.Op.Name(), spec.Encode(e.RVal), spec.Encode(want))}
		}
	}
	return Result{Predicate: name, Holds: true}
}

// CPar checks convergent perceived arbitration CPar(l) (§4.2): for level-l
// events invoked after quiescence, the perceived order of their visible
// updating context must agree with ar — i.e., rank(vis⁻¹(e'), par(e'), e) =
// rank(vis⁻¹(e'), ar, e) for every visible e. Events before the cutoff may
// disagree (that is the "temporarily" in temporary operation reordering).
func (w *Witness) CPar(l core.Level) Result {
	name := fmt.Sprintf("CPar(%s)", l)
	checked := 0
	for _, e := range w.H.Levels(l) {
		if e.Pending || e.Invoke <= w.H.StableAt {
			continue
		}
		checked++
		ctx := w.updatingTrace(e)
		for i := 1; i < len(ctx); i++ {
			if w.ArLess(ctx[i], ctx[i-1]) {
				return Result{Predicate: name, Holds: false,
					Detail: fmt.Sprintf("post-quiescence %s (%s) still perceives %s before %s, against ar", e.Dot, e.Op.Name(), ctx[i-1].Dot, ctx[i].Dot)}
			}
		}
	}
	return Result{Predicate: name, Holds: true, Detail: fmt.Sprintf("%d post-quiescence events", checked)}
}

// SinOrd checks single order SinOrd(l) (§4.3): for completed level-l events,
// visibility coincides with arbitration (pending events may be invisible).
func (w *Witness) SinOrd(l core.Level) Result {
	name := fmt.Sprintf("SinOrd(%s)", l)
	for _, e := range w.H.Levels(l) {
		if e.Pending {
			continue
		}
		for _, x := range w.H.Events {
			if x == e {
				continue
			}
			visXE := w.Vis(x, e)
			arXE := w.ArLess(x, e)
			if visXE && !arXE {
				return Result{Predicate: name, Holds: false,
					Detail: fmt.Sprintf("%s visible to %s but arbitrated after it", x.Dot, e.Dot)}
			}
			if arXE && !visXE && !x.Pending {
				return Result{Predicate: name, Holds: false,
					Detail: fmt.Sprintf("%s arbitrated before %s (%s) but not visible to it", x.Dot, e.Dot, e.Op.Name())}
			}
		}
	}
	return Result{Predicate: name, Holds: true}
}

// SessArb checks session arbitration SessArb(l) (§4.3): session order into
// level-l events is respected by arbitration.
func (w *Witness) SessArb(l core.Level) Result {
	name := fmt.Sprintf("SessArb(%s)", l)
	for _, e := range w.H.Levels(l) {
		for _, x := range w.H.Events {
			if x == e || !w.H.SessionOrder(x, e) {
				continue
			}
			if !w.ArLess(x, e) {
				return Result{Predicate: name, Holds: false,
					Detail: fmt.Sprintf("session order %s before %s not respected by arbitration", x.Dot, e.Dot)}
			}
		}
	}
	return Result{Predicate: name, Holds: true}
}

// BEC assembles Basic Eventual Consistency BEC(l,F) = EV ∧ NCC ∧ RVal(l,F)
// (§4.1).
func (w *Witness) BEC(l core.Level) Report {
	return Report{
		Guarantee: fmt.Sprintf("BEC(%s)", l),
		Results:   []Result{w.EV(), w.NCC(), w.RVal(l)},
	}
}

// FEC assembles Fluctuating Eventual Consistency FEC(l,F) = EV ∧ NCC ∧
// FRVal(l,F) ∧ CPar(l) (§4.2) — the paper's new correctness criterion.
func (w *Witness) FEC(l core.Level) Report {
	return Report{
		Guarantee: fmt.Sprintf("FEC(%s)", l),
		Results:   []Result{w.EV(), w.NCC(), w.FRVal(l), w.CPar(l)},
	}
}

// Seq assembles sequential consistency Seq(l,F) = SinOrd(l) ∧ SessArb(l) ∧
// RVal(l,F) (§4.3).
func (w *Witness) Seq(l core.Level) Report {
	return Report{
		Guarantee: fmt.Sprintf("Seq(%s)", l),
		Results:   []Result{w.SinOrd(l), w.SessArb(l), w.RVal(l)},
	}
}

// SeqPendingAware is Seq(l,F) plus an explicit account of pending level-l
// events: Theorem 3's Seq(strong,F) failure in asynchronous runs manifests
// as strong events pending forever, which this report surfaces.
func (w *Witness) SeqPendingAware(l core.Level) Report {
	rep := w.Seq(l)
	pending := 0
	for _, e := range w.H.Levels(l) {
		if e.Pending {
			pending++
		}
	}
	res := Result{Predicate: fmt.Sprintf("NoPending(%s)", l), Holds: pending == 0,
		Detail: fmt.Sprintf("%d pending %s events", pending, l)}
	rep.Results = append(rep.Results, res)
	return rep
}

// MonotonicReads checks the second session guarantee of [Terry et al. 94]:
// once a session has observed an updating operation, every later operation
// of the session observes it too. Algorithm 1 provides it (reads are
// scheduled behind the re-execution queue); Algorithm 2's immediate
// execution can read mid-rollback and lose a previously-observed write.
func (w *Witness) MonotonicReads() Result {
	for _, e := range w.H.Events {
		if e.Pending {
			continue
		}
		for _, earlier := range w.H.Events {
			if earlier.Pending || earlier == e || !w.H.SessionOrder(earlier, e) {
				continue
			}
			// Every updating operation the session already observed
			// (in any earlier event's trace) must stay observed.
			for _, x := range w.H.Events {
				if x == e || x.IsReadOnly() {
					continue
				}
				if w.traces[earlier.ID][x.Dot] && !w.traces[e.ID][x.Dot] {
					return Result{Predicate: "MonotonicReads", Holds: false,
						Detail: fmt.Sprintf("%s observed %s but the later %s lost it", earlier.Dot, x.Dot, e.Dot)}
				}
			}
		}
	}
	return Result{Predicate: "MonotonicReads", Holds: true}
}

// MonotonicWrites checks the third session guarantee of [Terry et al. 94]:
// a session's writes are observed everywhere in session order, and never the
// later without the earlier. Bayou provides it through per-link FIFO
// dissemination and FIFO total order broadcast.
func (w *Witness) MonotonicWrites() Result {
	for _, w1 := range w.H.Events {
		if w1.IsReadOnly() {
			continue
		}
		for _, w2 := range w.H.Events {
			if w2.IsReadOnly() || !w.H.SessionOrder(w1, w2) {
				continue
			}
			for _, e := range w.H.Events {
				if e.Pending || !w.traces[e.ID][w2.Dot] {
					continue
				}
				if !w.traces[e.ID][w1.Dot] {
					return Result{Predicate: "MonotonicWrites", Holds: false,
						Detail: fmt.Sprintf("%s observed %s without the session-earlier %s", e.Dot, w2.Dot, w1.Dot)}
				}
				if tracePos(e.Trace, w1.Dot) > tracePos(e.Trace, w2.Dot) {
					return Result{Predicate: "MonotonicWrites", Holds: false,
						Detail: fmt.Sprintf("%s observed %s before the session-earlier %s", e.Dot, w2.Dot, w1.Dot)}
				}
			}
		}
	}
	return Result{Predicate: "MonotonicWrites", Holds: true}
}

// WritesFollowReads checks the fourth session guarantee of [Terry et al.
// 94]: if a session observed write x and then issued write v, then every
// event observing v also observes x (before v). Bayou does NOT provide it —
// FEC is strictly weaker than causal consistency (§6) — and the violation is
// demonstrable with one delayed link (see the cluster tests).
func (w *Witness) WritesFollowReads() Result {
	for _, r := range w.H.Events {
		if r.Pending {
			continue
		}
		for _, v := range w.H.Events {
			if v.IsReadOnly() || !w.H.SessionOrder(r, v) {
				continue
			}
			for _, x := range w.H.Events {
				if x == v || x.IsReadOnly() || !w.traces[r.ID][x.Dot] {
					continue
				}
				for _, e := range w.H.Events {
					if e.Pending || !w.traces[e.ID][v.Dot] {
						continue
					}
					if !w.traces[e.ID][x.Dot] {
						return Result{Predicate: "WritesFollowReads", Holds: false,
							Detail: fmt.Sprintf("%s observed %s but not %s, which %s's session had read", e.Dot, v.Dot, x.Dot, v.Dot)}
					}
					if tracePos(e.Trace, x.Dot) > tracePos(e.Trace, v.Dot) {
						return Result{Predicate: "WritesFollowReads", Holds: false,
							Detail: fmt.Sprintf("%s observed %s before %s, which %s's session had read first", e.Dot, v.Dot, x.Dot, v.Dot)}
					}
				}
			}
		}
	}
	return Result{Predicate: "WritesFollowReads", Holds: true}
}

// tracePos returns the index of d in the trace, or -1.
func tracePos(trace []core.Dot, d core.Dot) int {
	for i, x := range trace {
		if x == d {
			return i
		}
	}
	return -1
}

// CountReordered returns the number of events whose perceived context order
// (the exec trace) deviates from the final arbitration order — the paper's
// temporary operation reordering, as a measurable quantity for the
// comparison experiments.
func (w *Witness) CountReordered() int {
	count := 0
	for _, e := range w.H.Events {
		if e.Pending {
			continue
		}
		ctx := w.updatingTrace(e)
		for i := 1; i < len(ctx); i++ {
			if w.ArLess(ctx[i], ctx[i-1]) {
				count++
				break
			}
		}
	}
	return count
}

// ReadYourWrites checks the session guarantee of [Terry et al. 94] discussed
// in §A.1.2: every weak response must reflect all preceding updating
// operations of its own session. Algorithm 1 provides it; Algorithm 2 trades
// it away for bounded wait-freedom.
func (w *Witness) ReadYourWrites() Result {
	for _, e := range w.H.Events {
		if e.Pending {
			continue
		}
		for _, x := range w.H.Events {
			if x == e || x.IsReadOnly() || !w.H.SessionOrder(x, e) {
				continue
			}
			if !w.traces[e.ID][x.Dot] {
				return Result{Predicate: "ReadYourWrites", Holds: false,
					Detail: fmt.Sprintf("%s (%s) did not observe own session's earlier %s (%s)", e.Dot, e.Op.Name(), x.Dot, x.Op.Name())}
			}
		}
	}
	return Result{Predicate: "ReadYourWrites", Holds: true}
}
