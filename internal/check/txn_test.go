package check

import (
	"strings"
	"testing"

	"bayou/internal/core"
	"bayou/internal/spec"
	"bayou/internal/txn"
)

func transfer(amount int64) spec.Op {
	return txn.New().
		Require(spec.Withdraw("a", amount)).
		Do(spec.Deposit("b", amount)).
		Txn()
}

// txnHistory: a seeding deposit, a weak transfer txn that committed
// successfully having observed the seed, an aborted transfer that observed
// the drained state, and a post-quiescence probe.
func txnHistory(t *testing.T) *Witness {
	h := build(t, 100,
		evt{session: 0, eventNo: 1, op: spec.Deposit("a", 100), level: core.Strong,
			rval: int64(100), invoke: 5, ret: 8, ts: 5, tobCast: true, tobNo: 1},
		evt{session: 1, eventNo: 1, op: transfer(80), level: core.Weak,
			rval:   []spec.Value{int64(20), int64(80)},
			invoke: 10, ret: 12, ts: 10, tobCast: true, tobNo: 2,
			trace: []core.Dot{dot(0, 1)}},
		// Observed seed + successful transfer: only 20 left, 90 must abort.
		evt{session: 1, eventNo: 2, op: transfer(90), level: core.Strong,
			rval:   spec.Aborted(0),
			invoke: 20, ret: 25, ts: 20, tobCast: true, tobNo: 3,
			trace: []core.Dot{dot(0, 1), dot(1, 1)}, commLen: 2},
		evt{session: 2, eventNo: 1, op: spec.Balance("b"), level: core.Weak,
			rval: int64(80), invoke: 200, ret: 200, ts: 200, tobCast: false, tobNo: -1,
			trace: []core.Dot{dot(0, 1), dot(1, 1), dot(1, 2)}, commLen: 3},
	)
	return NewWitness(h)
}

func TestTxnAtomicityHoldsOnCleanHistory(t *testing.T) {
	w := txnHistory(t)
	rep := w.TxnAtomicity(SumConserved("acct/", 0, 100))
	if !rep.OK() {
		t.Fatalf("clean txn history failed:\n%s", rep)
	}
}

func TestTxnAbortCoherentCatchesWrongVerdict(t *testing.T) {
	// The transfer claims abort although its observed context (the 100
	// seed) funds it: the verdict is incoherent with whole-unit replay.
	h := build(t, 100,
		evt{session: 0, eventNo: 1, op: spec.Deposit("a", 100), level: core.Strong,
			rval: int64(100), invoke: 5, ret: 8, ts: 5, tobCast: true, tobNo: 1},
		evt{session: 1, eventNo: 1, op: transfer(80), level: core.Weak,
			rval:   spec.Aborted(0),
			invoke: 10, ret: 12, ts: 10, tobCast: true, tobNo: 2,
			trace: []core.Dot{dot(0, 1)}},
	)
	res := NewWitness(h).TxnAbortCoherent()
	if res.Holds {
		t.Fatalf("incoherent abort verdict not caught")
	}
	if !strings.Contains(res.Detail, "whole-unit replay") {
		t.Fatalf("detail %q does not explain the replay mismatch", res.Detail)
	}
}

func TestTxnInvariantCatchesTornTransfer(t *testing.T) {
	// A bare withdraw — half a transfer — leaks into the history: the sum
	// drops to 20 at its boundary, which no whole transfer can produce.
	h := build(t, 100,
		evt{session: 0, eventNo: 1, op: spec.Deposit("a", 100), level: core.Strong,
			rval: int64(100), invoke: 5, ret: 8, ts: 5, tobCast: true, tobNo: 1},
		evt{session: 1, eventNo: 1, op: spec.Withdraw("a", 80), level: core.Weak,
			rval: int64(20), invoke: 10, ret: 12, ts: 10, tobCast: true, tobNo: 2,
			trace: []core.Dot{dot(0, 1)}},
	)
	res := NewWitness(h).TxnInvariant(SumConserved("acct/", 0, 100))
	if res.Holds {
		t.Fatalf("torn transfer not caught by the boundary invariant")
	}
	if !strings.Contains(res.Detail, "withdraw") {
		t.Fatalf("detail %q does not name the torn op", res.Detail)
	}
}

func TestTxnStrongAnchored(t *testing.T) {
	w := txnHistory(t)
	if res := w.TxnStrongAnchored(); !res.Holds {
		t.Fatalf("anchored strong txns reported unanchored: %s", res.Detail)
	}
	// A completed strong txn with no commit position is a violation.
	h := build(t, 100,
		evt{session: 0, eventNo: 1, op: transfer(10), level: core.Strong,
			rval: spec.Aborted(0), invoke: 5, ret: 8, ts: 5, tobCast: true, tobNo: -1},
	)
	if res := NewWitness(h).TxnStrongAnchored(); res.Holds {
		t.Fatalf("unanchored completed strong txn not caught")
	}
}

// A pending transaction (still parked, or in flight at the horizon) is
// exempt from every transactional predicate.
func TestTxnPredicatesSkipPending(t *testing.T) {
	h := build(t, 100,
		evt{session: 0, eventNo: 1, op: transfer(10), level: core.Strong,
			invoke: 5, ts: 5, tobCast: true, tobNo: -1, pending: true},
	)
	rep := NewWitness(h).TxnAtomicity(SumConserved("acct/", 0))
	if !rep.OK() {
		t.Fatalf("pending txn tripped the predicates:\n%s", rep)
	}
}
