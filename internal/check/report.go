// Package check implements machine-checkable renditions of every correctness
// predicate in the paper (§4): the building blocks EV, NCC, RVal, FRVal,
// CPar, SinOrd and SessArb, and the composite guarantees BEC(l,F), FEC(l,F)
// and Seq(l,F).
//
// Two modes are provided:
//
//   - Witness mode (witness.go): vis, ar and par are constructed from the
//     protocol's own run data — TOB delivery positions, request timestamps
//     and dots, and the exec(e) traces carried on responses — exactly as in
//     the proofs of Theorems 2 and 3 (Appendix A.2.3/A.2.4). The predicates
//     are then *verified* against that abstract execution. This scales to
//     long runs and is how experiments E5 and E6 validate the theorems.
//
//   - Search mode (search.go): for small histories, every arbitration order
//     and every visibility assignment is enumerated to decide whether *any*
//     abstract execution satisfies a guarantee. An unsatisfiable verdict is
//     a machine-checked proof that the history violates the guarantee —
//     this is how experiment E7 replays the Theorem 1 impossibility
//     construction and how E8 shows Figure 1's history violates
//     BEC(weak,F) ∧ Seq(strong,F).
//
// "Eventually"-flavoured predicates (EV, CPar) are checked with the
// finite-trace adaptation documented in DESIGN.md §3: scenarios drive the
// run to quiescence and the events invoked afterwards serve as probes.
package check

import (
	"fmt"
	"strings"
)

// Result is the outcome of one predicate check.
type Result struct {
	Predicate string
	Holds     bool
	Detail    string // first counterexample, or a short confirmation
}

// String implements fmt.Stringer.
func (r Result) String() string {
	status := "HOLDS"
	if !r.Holds {
		status = "VIOLATED"
	}
	if r.Detail == "" {
		return fmt.Sprintf("%-16s %s", r.Predicate, status)
	}
	return fmt.Sprintf("%-16s %s: %s", r.Predicate, status, r.Detail)
}

// Report aggregates predicate results for one composite guarantee.
type Report struct {
	Guarantee string
	Results   []Result
}

// OK reports whether every predicate holds.
func (r Report) OK() bool {
	for _, res := range r.Results {
		if !res.Holds {
			return false
		}
	}
	return true
}

// Failures returns the violated predicates.
func (r Report) Failures() []Result {
	var out []Result
	for _, res := range r.Results {
		if !res.Holds {
			out = append(out, res)
		}
	}
	return out
}

// String implements fmt.Stringer.
func (r Report) String() string {
	var b strings.Builder
	status := "SATISFIED"
	if !r.OK() {
		status = "VIOLATED"
	}
	fmt.Fprintf(&b, "%s: %s\n", r.Guarantee, status)
	for _, res := range r.Results {
		fmt.Fprintf(&b, "  %s\n", res)
	}
	return b.String()
}
