package check

import (
	"strings"
	"testing"

	"bayou/internal/core"
	"bayou/internal/spec"
)

// TestSessionGuaranteesScoped: the guarantee checker constrains only the
// sessions that carried the guarantee. The same lost-write history passes
// when the session is plain and fails when it carried RYW.
func TestSessionGuaranteesScoped(t *testing.T) {
	lostWrite := func(g core.Guarantee) *Witness {
		return NewWitness(build(t, 0,
			evt{session: 0, eventNo: 1, op: spec.Append("w"), level: core.Weak, rval: "w",
				invoke: 1, ret: 2, ts: 1, tobCast: true, tobNo: 1, guar: g},
			// The session's own later read does not observe the write.
			evt{session: 0, eventNo: 2, op: spec.ListRead(), level: core.Weak, rval: nil,
				invoke: 3, ret: 4, ts: 3, guar: g, trace: nil},
		))
	}
	if rep := lostWrite(0).Guarantees(core.ReadYourWrites); !rep.OK() {
		t.Errorf("plain sessions promise nothing:\n%s", rep)
	}
	rep := lostWrite(core.ReadYourWrites).Guarantees(core.ReadYourWrites)
	if rep.OK() {
		t.Error("a RYW session losing its own write must fail")
	}
	if !strings.Contains(rep.String(), "RYW(sessions)") {
		t.Errorf("report must name the violated predicate:\n%s", rep)
	}
}

func TestSessionMonotonicReadsScoped(t *testing.T) {
	w := NewWitness(build(t, 0,
		evt{session: 1, eventNo: 1, op: spec.Append("x"), level: core.Weak, rval: "x",
			invoke: 1, ret: 2, ts: 1, tobCast: true, tobNo: 1},
		// First read observes x; the second loses it.
		evt{session: 0, eventNo: 1, op: spec.ListRead(), level: core.Weak,
			invoke: 3, ret: 4, ts: 3, guar: core.MonotonicReads, trace: []core.Dot{dot(1, 1)}},
		evt{session: 0, eventNo: 2, op: spec.ListRead(), level: core.Weak,
			invoke: 5, ret: 6, ts: 5, guar: core.MonotonicReads, trace: nil},
	))
	if rep := w.Guarantees(core.MonotonicReads); rep.OK() {
		t.Error("an MR session unseeing an observed write must fail")
	}
}

func TestSessionMonotonicWritesArbitration(t *testing.T) {
	// The session's two writes are TOB-delivered in inverted order.
	w := NewWitness(build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.Append("w1"), level: core.Weak, rval: "w1",
			invoke: 1, ret: 2, ts: 1, tobCast: true, tobNo: 2, guar: core.MonotonicWrites},
		evt{session: 0, eventNo: 2, op: spec.Append("w2"), level: core.Weak, rval: "w2",
			invoke: 3, ret: 4, ts: 3, tobCast: true, tobNo: 1, guar: core.MonotonicWrites},
	))
	rep := w.Guarantees(core.MonotonicWrites)
	if rep.OK() {
		t.Error("inverted arbitration of an MW session's writes must fail")
	}
	// The same inversion on a plain session is fine.
	plain := NewWitness(build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.Append("w1"), level: core.Weak, rval: "w1",
			invoke: 1, ret: 2, ts: 1, tobCast: true, tobNo: 2},
		evt{session: 0, eventNo: 2, op: spec.Append("w2"), level: core.Weak, rval: "w2",
			invoke: 3, ret: 4, ts: 3, tobCast: true, tobNo: 1},
	))
	if rep := plain.Guarantees(core.MonotonicWrites); !rep.OK() {
		t.Errorf("plain sessions promise nothing:\n%s", rep)
	}
}

func TestSessionWritesFollowReadsArbitration(t *testing.T) {
	// Session 0 reads x (session 1's write), then writes v; arbitration
	// orders v before x — a WFR violation.
	w := NewWitness(build(t, 0,
		evt{session: 1, eventNo: 1, op: spec.Append("x"), level: core.Weak, rval: "x",
			invoke: 1, ret: 2, ts: 1, tobCast: true, tobNo: 2},
		evt{session: 0, eventNo: 1, op: spec.ListRead(), level: core.Weak,
			invoke: 3, ret: 4, ts: 3, guar: core.WritesFollowReads, trace: []core.Dot{dot(1, 1)}},
		evt{session: 0, eventNo: 2, op: spec.Append("v"), level: core.Weak, rval: "v",
			invoke: 5, ret: 6, ts: 5, tobCast: true, tobNo: 1, guar: core.WritesFollowReads},
	))
	if rep := w.Guarantees(core.WritesFollowReads); rep.OK() {
		t.Error("a WFR session's write arbitrated before its read context must fail")
	}
}

// TestCoveragePredicate replays the recorded demand vectors against traces.
func TestCoveragePredicate(t *testing.T) {
	demand := core.Vec{Frontier: []core.Dot{dot(1, 1)}}
	ok := NewWitness(build(t, 0,
		evt{session: 1, eventNo: 1, op: spec.Append("x"), level: core.Weak, rval: "x",
			invoke: 1, ret: 2, ts: 1, tobCast: true, tobNo: 1},
		evt{session: 0, eventNo: 1, op: spec.ListRead(), level: core.Weak,
			invoke: 3, ret: 4, ts: 3, guar: core.MonotonicReads,
			readVec: demand, trace: []core.Dot{dot(1, 1)}},
	))
	if rep := ok.Guarantees(core.MonotonicReads); !rep.OK() {
		t.Errorf("satisfied demand must pass:\n%s", rep)
	}
	bad := NewWitness(build(t, 0,
		evt{session: 1, eventNo: 1, op: spec.Append("x"), level: core.Weak, rval: "x",
			invoke: 1, ret: 2, ts: 1, tobCast: true, tobNo: 1},
		evt{session: 0, eventNo: 1, op: spec.ListRead(), level: core.Weak,
			invoke: 3, ret: 4, ts: 3, guar: core.MonotonicReads,
			readVec: demand, trace: nil},
	))
	rep := bad.Guarantees(core.MonotonicReads)
	if rep.OK() {
		t.Error("a trace missing its demanded dot must fail Coverage")
	}
	// Watermark violations are caught too.
	low := NewWitness(build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.ListRead(), level: core.Weak,
			invoke: 1, ret: 2, ts: 1, guar: core.ReadYourWrites,
			readVec: core.Vec{CommitLen: 3}, commLen: 1},
	))
	if rep := low.Guarantees(core.ReadYourWrites); rep.OK() {
		t.Error("a response behind the demanded watermark must fail Coverage")
	}
}

// TestGuaranteesReportShape: the report contains exactly the predicates of
// the requested mask.
func TestGuaranteesReportShape(t *testing.T) {
	w := NewWitness(build(t, 0))
	rep := w.Guarantees(core.Causal)
	if len(rep.Results) != 5 { // RYW, MR, MW, WFR, Coverage
		t.Fatalf("Causal report has %d results, want 5:\n%s", len(rep.Results), rep)
	}
	rep = w.Guarantees(core.MonotonicWrites)
	if len(rep.Results) != 1 {
		t.Fatalf("MW report has %d results, want 1:\n%s", len(rep.Results), rep)
	}
	if !strings.Contains(rep.Guarantee, "MW") {
		t.Errorf("report label %q", rep.Guarantee)
	}
}
