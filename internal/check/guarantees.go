package check

import (
	"fmt"

	"bayou/internal/core"
)

// Session-guarantee checking over recorded histories.
//
// The global predicates of predicates.go (MonotonicReads, MonotonicWrites,
// WritesFollowReads, ReadYourWrites) quantify over *every* session and, for
// the write guarantees, over every observer in the system — the form the
// paper's §A.1.2 discussion uses to show what plain Bayou does and does not
// provide. The checks here are different on two axes, matching what the
// mobile-session API actually promises:
//
//   - They are *scoped*: only events whose issuing session carried the
//     guarantee (Event.Guarantees) are constrained. A plain session
//     promises nothing, and a guarantee session constrains no one else.
//   - The write guarantees (MW, WFR) are checked client-centrically:
//     against the final arbitration order and against the session's *own*
//     subsequent observations. Without causal dissemination a third
//     replica can transiently execute a write before the writes it depends
//     on arrive — the "temporary" of temporary operation reordering — so
//     global trace-positional forms are not enforceable by per-session
//     coverage gating, while the ar-level and self-perception forms are.
//
// Each guarantee maps onto a vector predicate the drivers enforce:
//
//	RYW  — read demand ⊇ session write-vector; exec(e) must contain it.
//	MR   — read demand ⊇ session read-vector; exec(e) must contain it.
//	MW   — write demand ⊇ session write-vector; ar must respect it.
//	WFR  — write demand ⊇ session read-vector; ar must respect it.
//
// The Coverage predicate closes the loop on the read side directly from
// the recorded demand vectors (Event.ReadVec): every accepted invocation's
// trace must dominate the demand its serving replica proved.

// Guarantees assembles the report for the selected guarantee mask.
func (w *Witness) Guarantees(g core.Guarantee) Report {
	rep := Report{Guarantee: fmt.Sprintf("Guarantees(%s)", g)}
	if g.Has(core.ReadYourWrites) {
		rep.Results = append(rep.Results, w.SessionRYW())
	}
	if g.Has(core.MonotonicReads) {
		rep.Results = append(rep.Results, w.SessionMR())
	}
	if g.Has(core.MonotonicWrites) {
		rep.Results = append(rep.Results, w.SessionMW())
	}
	if g.Has(core.WritesFollowReads) {
		rep.Results = append(rep.Results, w.SessionWFR())
	}
	if g&(core.ReadYourWrites|core.MonotonicReads) != 0 {
		rep.Results = append(rep.Results, w.Coverage())
	}
	return rep
}

// SessionRYW checks read-your-writes for the sessions that carried it:
// every response of such a session observes all of the session's preceding
// updating operations in its trace.
func (w *Witness) SessionRYW() Result {
	checked := 0
	for _, e := range w.H.Events {
		if e.Pending || !e.Guarantees.Has(core.ReadYourWrites) {
			continue
		}
		checked++
		for _, x := range w.H.Events {
			if x == e || x.IsReadOnly() || !w.H.SessionOrder(x, e) {
				continue
			}
			if !w.traces[e.ID][x.Dot] {
				return Result{Predicate: "RYW(sessions)", Holds: false,
					Detail: fmt.Sprintf("%s (%s) did not observe own session's earlier %s (%s)", e.Dot, e.Op.Name(), x.Dot, x.Op.Name())}
			}
		}
	}
	return Result{Predicate: "RYW(sessions)", Holds: true, Detail: fmt.Sprintf("%d guaranteed events", checked)}
}

// SessionMR checks monotonic reads for the sessions that carried it: an
// updating operation observed by an earlier response of the session stays
// observed by every later response.
func (w *Witness) SessionMR() Result {
	checked := 0
	for _, e := range w.H.Events {
		if e.Pending || !e.Guarantees.Has(core.MonotonicReads) {
			continue
		}
		checked++
		for _, earlier := range w.H.Events {
			if earlier.Pending || earlier == e || !w.H.SessionOrder(earlier, e) {
				continue
			}
			for _, x := range w.H.Events {
				if x == e || x.IsReadOnly() {
					continue
				}
				if w.traces[earlier.ID][x.Dot] && !w.traces[e.ID][x.Dot] {
					return Result{Predicate: "MR(sessions)", Holds: false,
						Detail: fmt.Sprintf("%s observed %s but the later %s lost it", earlier.Dot, x.Dot, e.Dot)}
				}
			}
		}
	}
	return Result{Predicate: "MR(sessions)", Holds: true, Detail: fmt.Sprintf("%d guaranteed events", checked)}
}

// SessionMW checks monotonic writes for the sessions that carried it: the
// session's updating operations are arbitrated in session order, and the
// session's own responses never perceive them out of order.
func (w *Witness) SessionMW() Result {
	checked := 0
	for _, w2 := range w.H.Events {
		if w2.IsReadOnly() || !w2.Guarantees.Has(core.MonotonicWrites) {
			continue
		}
		checked++
		for _, w1 := range w.H.Events {
			if w1.IsReadOnly() || !w.H.SessionOrder(w1, w2) {
				continue
			}
			if w.ArLess(w2, w1) {
				return Result{Predicate: "MW(sessions)", Holds: false,
					Detail: fmt.Sprintf("arbitration orders %s before the session-earlier %s", w2.Dot, w1.Dot)}
			}
			for _, e := range w.H.Events {
				if e.Pending || e.Session != w2.Session || !w.traces[e.ID][w2.Dot] {
					continue
				}
				if !w.traces[e.ID][w1.Dot] {
					return Result{Predicate: "MW(sessions)", Holds: false,
						Detail: fmt.Sprintf("%s perceived %s without the session-earlier %s", e.Dot, w2.Dot, w1.Dot)}
				}
				if tracePos(e.Trace, w1.Dot) > tracePos(e.Trace, w2.Dot) {
					return Result{Predicate: "MW(sessions)", Holds: false,
						Detail: fmt.Sprintf("%s perceived %s before the session-earlier %s", e.Dot, w2.Dot, w1.Dot)}
				}
			}
		}
	}
	return Result{Predicate: "MW(sessions)", Holds: true, Detail: fmt.Sprintf("%d guaranteed writes", checked)}
}

// SessionWFR checks writes-follow-reads for the sessions that carried it:
// an updating operation v of such a session is arbitrated after every
// updating operation x the session had observed before issuing v, and the
// session's own responses never perceive v without (or before) x.
func (w *Witness) SessionWFR() Result {
	checked := 0
	for _, v := range w.H.Events {
		if v.IsReadOnly() || !v.Guarantees.Has(core.WritesFollowReads) {
			continue
		}
		checked++
		for _, r := range w.H.Events {
			if r.Pending || !w.H.SessionOrder(r, v) {
				continue
			}
			for _, x := range w.traceEvents(r) {
				if x == v || x.IsReadOnly() {
					continue
				}
				if w.ArLess(v, x) {
					return Result{Predicate: "WFR(sessions)", Holds: false,
						Detail: fmt.Sprintf("arbitration orders %s before %s, which %s's session had read first", v.Dot, x.Dot, v.Dot)}
				}
				for _, e := range w.H.Events {
					if e.Pending || e.Session != v.Session || !w.traces[e.ID][v.Dot] {
						continue
					}
					if !w.traces[e.ID][x.Dot] {
						return Result{Predicate: "WFR(sessions)", Holds: false,
							Detail: fmt.Sprintf("%s perceived %s without %s, which the session had read before writing it", e.Dot, v.Dot, x.Dot)}
					}
					if tracePos(e.Trace, x.Dot) > tracePos(e.Trace, v.Dot) {
						return Result{Predicate: "WFR(sessions)", Holds: false,
							Detail: fmt.Sprintf("%s perceived %s before %s, which the session had read first", e.Dot, v.Dot, x.Dot)}
					}
				}
			}
		}
	}
	return Result{Predicate: "WFR(sessions)", Holds: true, Detail: fmt.Sprintf("%d guaranteed writes", checked)}
}

// Coverage replays the enforced read-demand vectors: every accepted
// invocation of a read-guarantee session must have computed its response on
// a trace dominating the demand its serving replica proved coverage of
// (frontier dots in exec(e), committed watermark within the committed
// prefix the response saw).
func (w *Witness) Coverage() Result {
	checked := 0
	for _, e := range w.H.Events {
		if e.Pending || e.Guarantees&(core.ReadYourWrites|core.MonotonicReads) == 0 {
			continue
		}
		checked++
		if e.CommittedLen < e.ReadVec.CommitLen {
			return Result{Predicate: "Coverage", Holds: false,
				Detail: fmt.Sprintf("%s answered from committed prefix %d, demand watermark %d", e.Dot, e.CommittedLen, e.ReadVec.CommitLen)}
		}
		for _, d := range e.ReadVec.Frontier {
			if !w.traces[e.ID][d] {
				return Result{Predicate: "Coverage", Holds: false,
					Detail: fmt.Sprintf("%s answered without demanded %s in its trace", e.Dot, d)}
			}
		}
	}
	return Result{Predicate: "Coverage", Holds: true, Detail: fmt.Sprintf("%d gated events", checked)}
}
