package check

import (
	"fmt"
	"sort"

	"bayou/internal/core"
	"bayou/internal/history"
	"bayou/internal/spec"
)

// Witness is the abstract execution (vis, ar, par) constructed from the
// protocol's run data, following the proof of Theorem 2 (Appendix A.2.3):
//
//   - ar: TOB-delivered events by tobNo; TOB-cast-but-undelivered events
//     after all delivered ones, in request order; events never TOB-cast
//     (weak read-only requests of Algorithm 2) interleaved by request order;
//   - vis: a TOB-cast event is visible to e exactly when it occurs in
//     exec(e) (the trace from which e's response was computed); a never-cast
//     read-only event is visible according to request order;
//   - par(e): the trace exec(e)·e itself — visible events are perceived in
//     trace order, everything else relative to ar.
type Witness struct {
	H      *history.History
	vis    *history.Rel
	so     *history.Rel
	traces map[history.EventID]map[core.Dot]bool
}

// NewWitness builds the abstract execution for a recorded history.
func NewWitness(h *history.History) *Witness {
	w := &Witness{H: h, traces: make(map[history.EventID]map[core.Dot]bool, len(h.Events))}
	n := len(h.Events)
	for _, e := range h.Events {
		set := make(map[core.Dot]bool, len(e.Trace))
		for _, d := range e.Trace {
			set[d] = true
		}
		w.traces[e.ID] = set
	}
	w.vis = history.FromLess(n, func(a, b history.EventID) bool {
		return w.Vis(h.Events[a], h.Events[b])
	})
	w.so = history.FromLess(n, func(a, b history.EventID) bool {
		return h.SessionOrder(h.Events[a], h.Events[b])
	})
	return w
}

// delivered reports whether the event's request was TOB-delivered within the
// observation horizon.
func delivered(e *history.Event) bool { return e.TOBNo > 0 }

// anchored reports whether the event has a fixed position in the global
// commit order: TOB-delivered events sit at their delivery position, and
// lease reads — strong reads served locally under the ordering lease,
// never TOB-cast — sit between the commit they read up to and the next one.
func anchored(e *history.Event) bool { return delivered(e) || e.LeaseRead }

// arPos maps an anchored event to its position on a common axis: commit k
// at 2k, a lease read that observed the k-length committed prefix at 2k+1 —
// strictly after commit k and strictly before commit k+1. Positions
// coincide only for lease reads that observed the same prefix; those are
// mutually read-only and tie-broken by request order.
func arPos(e *history.Event) int64 {
	if e.LeaseRead {
		return 2*e.LeaseNo + 1
	}
	return 2 * e.TOBNo
}

// ArLess is the arbitration comparator of the Theorem 2 proof, extended to
// lease reads: anchored events (delivered, or lease-served) by their commit-
// axis position, TOB-cast-but-undelivered events after all anchored ones in
// request order, never-cast weak reads interleaved by request order.
func (w *Witness) ArLess(a, b *history.Event) bool {
	if a == b {
		return false
	}
	if (!a.TOBCast && !a.LeaseRead) || (!b.TOBCast && !b.LeaseRead) {
		return history.ReqLess(a, b)
	}
	da, db := anchored(a), anchored(b)
	switch {
	case da && db:
		pa, pb := arPos(a), arPos(b)
		if pa != pb {
			return pa < pb
		}
		return history.ReqLess(a, b)
	case da:
		return true
	case db:
		return false
	default:
		return history.ReqLess(a, b)
	}
}

// Vis is the visibility relation of the Theorem 2 proof.
func (w *Witness) Vis(a, b *history.Event) bool {
	if a == b {
		return false
	}
	if a.LeaseRead {
		// A lease read is read-only and never cast, so no trace can hold
		// it; its visibility follows its arbitration anchor, keeping
		// vis ⊆ ar.
		return w.ArLess(a, b)
	}
	if !a.TOBCast {
		// Never-cast (weak read-only) events are "visible" by request
		// order — the formal completeness rule of the proof.
		return history.ReqLess(a, b)
	}
	return w.traces[b.ID][a.Dot]
}

// VisRel returns the materialized vis relation.
func (w *Witness) VisRel() *history.Rel { return w.vis }

// SoRel returns the materialized session-order relation.
func (w *Witness) SoRel() *history.Rel { return w.so }

// ArRel materializes the arbitration relation (diagnostics; predicates use
// the comparator directly).
func (w *Witness) ArRel() *history.Rel {
	return history.FromLess(len(w.H.Events), func(a, b history.EventID) bool {
		return w.ArLess(w.H.Events[a], w.H.Events[b])
	})
}

// ArTotal verifies that the constructed arbitration is a strict total order
// over the history. The paper's construction can fail totality only under
// unbounded clock drift (see DESIGN.md §3); this diagnostic makes the
// assumption checkable per run.
func (w *Witness) ArTotal() Result {
	if w.ArRel().IsStrictTotalOrder() {
		return Result{Predicate: "ar-total", Holds: true, Detail: fmt.Sprintf("%d events", len(w.H.Events))}
	}
	return Result{Predicate: "ar-total", Holds: false, Detail: "constructed arbitration is not a strict total order (clock drift beyond model assumptions?)"}
}

// traceEvents maps e's exec(e) trace to history events (in trace order),
// dropping dots that are not part of the history (none, for complete
// recordings).
func (w *Witness) traceEvents(e *history.Event) []*history.Event {
	out := make([]*history.Event, 0, len(e.Trace))
	for _, d := range e.Trace {
		if x := w.H.ByDot(d); x != nil {
			out = append(out, x)
		}
	}
	return out
}

// updatingTrace restricts the trace to updating (non-read-only) events — the
// operation context after applying the read-only axiom of §3.4.
func (w *Witness) updatingTrace(e *history.Event) []*history.Event {
	var out []*history.Event
	for _, x := range w.traceEvents(e) {
		if !x.IsReadOnly() {
			out = append(out, x)
		}
	}
	return out
}

// expectedFRVal computes F(op(e), fcontext(A, e)): the visible updating
// operations replayed in perceived (trace) order.
func (w *Witness) expectedFRVal(e *history.Event) spec.Value {
	ctx := w.updatingTrace(e)
	ops := make([]spec.Op, len(ctx))
	for i, x := range ctx {
		ops[i] = x.Op
	}
	return spec.Eval(ops, e.Op)
}

// expectedRVal computes F(op(e), context(A, e)): the visible updating
// operations replayed in arbitration order.
func (w *Witness) expectedRVal(e *history.Event) spec.Value {
	ctx := append([]*history.Event(nil), w.updatingTrace(e)...)
	sort.SliceStable(ctx, func(i, j int) bool { return w.ArLess(ctx[i], ctx[j]) })
	ops := make([]spec.Op, len(ctx))
	for i, x := range ctx {
		ops[i] = x.Op
	}
	return spec.Eval(ops, e.Op)
}
