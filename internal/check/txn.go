package check

import (
	"fmt"
	"sort"

	"bayou/internal/core"
	"bayou/internal/history"
	"bayou/internal/spec"
	"bayou/internal/txn"
)

// Transactional predicates. A transaction is one operation to the protocol
// (one dot, one schedule entry, one undo span), so the generic predicates
// already treat it as an indivisible context element: FRVal/RVal replay
// whole units, never step prefixes. The predicates here pin the
// specifically transactional claims on top of that —
//
//   - txn-abort-coherent: a unit's abort/success verdict is explained by
//     whole-unit replay of its perceived context (a response computed from
//     a partially-applied foreign txn would disagree);
//   - txn-strong-anchored: every completed strong unit holds a position of
//     the commit order, and no two units share one (strong txns totally
//     ordered);
//   - txn-invariant: an application invariant holds at EVERY whole-op
//     boundary of every response's perceived context and of the final
//     arbitration order. Combined with FRVal (each response equals the
//     replay of exactly these states), no response was ever computed from
//     a state violating the invariant — which is how "no history event
//     witnesses a partial txn" becomes checkable: a partial transfer
//     breaks conservation at the boundary where it would have to appear.

// Invariant is an application-level predicate over a register database,
// checked between whole operations. It returns "" when the state is
// admissible and a description of the violation otherwise.
type Invariant func(db map[string]spec.Value) string

// SumConserved returns the classic transfer invariant: the sum over every
// register with the given prefix equals one of the admissible totals — the
// running sums reached by the workload's seeding deposits, ending at the
// final total that pure transfers then conserve forever.
func SumConserved(prefix string, admissible ...int64) Invariant {
	ok := make(map[int64]bool, len(admissible))
	for _, s := range admissible {
		ok[s] = true
	}
	return func(db map[string]spec.Value) string {
		var sum int64
		for k, v := range db {
			if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
				n, _ := v.(int64)
				sum += n
			}
		}
		if !ok[sum] {
			return fmt.Sprintf("sum over %q registers = %d, not among admissible totals %v", prefix, sum, admissible)
		}
		return ""
	}
}

// isTxn reports whether the event carries a multi-op unit.
func isTxn(e *history.Event) bool {
	_, ok := e.Op.(txn.Txn)
	return ok
}

// TxnAbortCoherent checks that every completed transaction's verdict —
// aborted or succeeded — matches the whole-unit replay of its perceived
// context: IsAborted(rval) ⇔ IsAborted(F(op, fcontext)). This is coarser
// than FRVal's value equality but applies uniformly to both levels and
// names the transactional failure mode directly.
func (w *Witness) TxnAbortCoherent() Result {
	units := 0
	for _, e := range w.H.Events {
		if e.Pending || !isTxn(e) {
			continue
		}
		units++
		want := w.expectedFRVal(e)
		if spec.IsAborted(e.RVal) != spec.IsAborted(want) {
			return Result{Predicate: "txn-abort-coherent", Holds: false,
				Detail: fmt.Sprintf("%s %s returned %s but whole-unit replay of its context gives %s",
					e.Dot, e.Op.Name(), spec.Encode(e.RVal), spec.Encode(want))}
		}
	}
	return Result{Predicate: "txn-abort-coherent", Holds: true, Detail: fmt.Sprintf("%d txn events", units)}
}

// TxnStrongAnchored checks that every completed strong transaction is
// anchored in the commit order and that no two strong units share an
// arbitration position — the total order strong txns ride one slot for.
func (w *Witness) TxnStrongAnchored() Result {
	seen := make(map[int64]*history.Event)
	for _, e := range w.H.Events {
		if e.Pending || !isTxn(e) || e.Level != core.Strong {
			continue
		}
		if !anchored(e) {
			return Result{Predicate: "txn-strong-anchored", Holds: false,
				Detail: fmt.Sprintf("completed strong txn %s (%s) holds no commit-order position", e.Dot, e.Op.Name())}
		}
		if e.LeaseRead {
			continue // lease reads legitimately share a prefix position
		}
		if prev, ok := seen[arPos(e)]; ok {
			return Result{Predicate: "txn-strong-anchored", Holds: false,
				Detail: fmt.Sprintf("strong txns %s and %s share commit position %d", prev.Dot, e.Dot, e.TOBNo)}
		}
		seen[arPos(e)] = e
	}
	return Result{Predicate: "txn-strong-anchored", Holds: true, Detail: fmt.Sprintf("%d anchored", len(seen))}
}

// TxnInvariant replays, op by whole op, (a) every completed event's
// perceived context followed by the event's own operation and (b) the full
// arbitration order of updating events, asserting inv on the register
// database at every boundary. No partial unit can satisfy a conservation
// invariant its whole unit satisfies, so a violation pinpoints the event
// and boundary where a torn transaction would have been witnessed.
func (w *Witness) TxnInvariant(inv Invariant) Result {
	replay := func(label string, ops []spec.Op) (string, bool) {
		store := spec.NewMapTx()
		for i, op := range ops {
			op.Apply(store)
			if msg := inv(store.Snapshot()); msg != "" {
				return fmt.Sprintf("%s: after op %d (%s): %s", label, i, op.Name(), msg), false
			}
		}
		return "", true
	}

	checked := 0
	for _, e := range w.H.Events {
		if e.Pending {
			continue
		}
		checked++
		ctx := w.updatingTrace(e)
		ops := make([]spec.Op, 0, len(ctx)+1)
		for _, x := range ctx {
			ops = append(ops, x.Op)
		}
		ops = append(ops, e.Op)
		if detail, ok := replay(fmt.Sprintf("perceived context of %s (%s)", e.Dot, e.Op.Name()), ops); !ok {
			return Result{Predicate: "txn-invariant", Holds: false, Detail: detail}
		}
	}

	// The converged view: all updating events in arbitration order.
	var updating []*history.Event
	for _, e := range w.H.Events {
		if !e.IsReadOnly() && !e.Pending {
			updating = append(updating, e)
		}
	}
	sort.SliceStable(updating, func(i, j int) bool { return w.ArLess(updating[i], updating[j]) })
	ops := make([]spec.Op, len(updating))
	for i, e := range updating {
		ops[i] = e.Op
	}
	if detail, ok := replay("arbitration order", ops); !ok {
		return Result{Predicate: "txn-invariant", Holds: false, Detail: detail}
	}
	return Result{Predicate: "txn-invariant", Holds: true,
		Detail: fmt.Sprintf("%d contexts + arbitration order of %d updates", checked, len(updating))}
}

// TxnAtomicity assembles the transactional report: abort coherence, strong
// anchoring, and — when inv is non-nil — the boundary invariant.
func (w *Witness) TxnAtomicity(inv Invariant) Report {
	results := []Result{w.TxnAbortCoherent(), w.TxnStrongAnchored()}
	if inv != nil {
		results = append(results, w.TxnInvariant(inv))
	}
	return Report{Guarantee: "TxnAtomicity", Results: results}
}
