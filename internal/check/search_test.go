package check

import (
	"testing"

	"bayou/internal/core"
	"bayou/internal/spec"
)

// TestSearchTheorem1Impossibility replays the Theorem 1 construction as an
// observable history: replicas i=0, j=1, k=2; non-commuting weak updates a
// (on i) and b (on j); a weak read r on k observing a then b; then a strong
// operation c on j whose response reflects b but cannot reflect a (the
// partition hid a from j, and non-blocking strong operations must still
// answer). No abstract execution can explain it.
func TestSearchTheorem1Impossibility(t *testing.T) {
	h := build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.Append("p"), level: core.Weak, rval: "p",
			invoke: 10, ret: 11, ts: 10},
		evt{session: 1, eventNo: 1, op: spec.Append("q"), level: core.Weak, rval: "q",
			invoke: 10, ret: 11, ts: 10},
		evt{session: 2, eventNo: 1, op: spec.ListRead(), level: core.Weak, rval: "pq",
			invoke: 20, ret: 21, ts: 20},
		evt{session: 1, eventNo: 2, op: spec.Append("z"), level: core.Strong, rval: "qz",
			invoke: 30, ret: 35, ts: 30},
	)
	out, err := Search(h, BECWeakSeqStrong())
	if err != nil {
		t.Fatal(err)
	}
	if out.Satisfiable {
		t.Fatalf("Theorem 1 construction must be unsatisfiable under BEC(weak)∧Seq(strong); got %s", out)
	}
	if out.ExploredArs != 24 { // 4! arbitration orders, all refuted
		t.Errorf("explored %d arbitration orders, want 24", out.ExploredArs)
	}
}

func TestSearchTheorem1RegisterCounterpoint(t *testing.T) {
	// The paper's closing remark of §5: for a single register the same
	// schedule *is* achievable — the last-writer semantics hide the order
	// disagreement.
	h := build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.RegWrite("x", int64(1)), level: core.Weak, rval: int64(1),
			invoke: 10, ret: 11, ts: 10},
		evt{session: 1, eventNo: 1, op: spec.RegWrite("x", int64(2)), level: core.Weak, rval: int64(2),
			invoke: 10, ret: 11, ts: 10},
		evt{session: 2, eventNo: 1, op: spec.RegRead("x"), level: core.Weak, rval: int64(2),
			invoke: 20, ret: 21, ts: 20},
		evt{session: 1, eventNo: 2, op: spec.RegRead("x"), level: core.Strong, rval: int64(2),
			invoke: 30, ret: 35, ts: 30},
	)
	out, err := Search(h, BECWeakSeqStrong())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Satisfiable {
		t.Fatal("register history must be satisfiable (Theorem 1 does not apply to a single register)")
	}
}

func TestSearchFigure1(t *testing.T) {
	// Figure 1's history: BEC(weak)∧Seq(strong) is unsatisfiable (the
	// mutual observation of append(x) and duplicate() forces either a
	// visibility cycle or a wrong return value), while BEC(weak) alone is
	// satisfiable — the anomaly needs both levels to manifest.
	events := []evt{
		{session: 0, eventNo: 1, op: spec.Append("a"), level: core.Weak, rval: "a",
			invoke: 10, ret: 11, ts: 10},
		{session: 0, eventNo: 2, op: spec.Append("x"), level: core.Weak, rval: "aax",
			invoke: 20, ret: 25, ts: 20},
		{session: 1, eventNo: 1, op: spec.Duplicate(), level: core.Strong, rval: "axax",
			invoke: 15, ret: 40, ts: 15},
	}
	h := build(t, 0, events...)
	out, err := Search(h, BECWeakSeqStrong())
	if err != nil {
		t.Fatal(err)
	}
	if out.Satisfiable {
		t.Fatalf("Figure 1 history must violate BEC(weak)∧Seq(strong); got %s", out)
	}

	h2 := build(t, 0, events...)
	weakOnly, err := Search(h2, Guarantees{WeakRVal: true, RequireNCC: true})
	if err != nil {
		t.Fatal(err)
	}
	if !weakOnly.Satisfiable {
		t.Error("Figure 1 history must satisfy BEC(weak) alone")
	}
}

func TestSearchConsistentHistorySatisfiable(t *testing.T) {
	// A strongly-consistent-looking history passes everything.
	h := build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.Append("a"), level: core.Weak, rval: "a",
			invoke: 10, ret: 11, ts: 10},
		evt{session: 1, eventNo: 1, op: spec.Append("b"), level: core.Weak, rval: "ab",
			invoke: 20, ret: 21, ts: 20},
		evt{session: 0, eventNo: 2, op: spec.Duplicate(), level: core.Strong, rval: "abab",
			invoke: 30, ret: 35, ts: 30},
	)
	out, err := Search(h, BECWeakSeqStrong())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Satisfiable {
		t.Error("consistent history must be satisfiable")
	}
}

func TestSearchPendingStrongExemption(t *testing.T) {
	// A pending strong event must not block satisfiability (E' absorbs it).
	h := build(t, 0,
		evt{session: 0, eventNo: 1, op: spec.Append("a"), level: core.Weak, rval: "a",
			invoke: 10, ret: 11, ts: 10},
		evt{session: 1, eventNo: 1, op: spec.Append("s"), level: core.Strong, rval: nil,
			invoke: 20, ts: 20, pending: true},
		evt{session: 0, eventNo: 2, op: spec.ListRead(), level: core.Weak, rval: "a",
			invoke: 30, ret: 31, ts: 30},
	)
	out, err := Search(h, BECWeakSeqStrong())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Satisfiable {
		t.Error("history with a pending strong op must be satisfiable via the E' exemption")
	}
}

func TestSearchTooManyEvents(t *testing.T) {
	var evts []evt
	for i := int64(1); i <= MaxSearchEvents+1; i++ {
		evts = append(evts, evt{session: 0, eventNo: i, op: spec.Append("a"), level: core.Weak,
			rval: "?", invoke: i * 10, ret: i*10 + 1, ts: i * 10})
	}
	h := build(t, 0, evts...)
	if _, err := Search(h, BECWeakSeqStrong()); err == nil {
		t.Error("oversized search must be rejected")
	}
}

func TestSearchOutcomeString(t *testing.T) {
	o := SearchOutcome{Satisfiable: false, ExploredArs: 24}
	if o.String() == "" {
		t.Error("empty render")
	}
	o2 := SearchOutcome{Satisfiable: true, ArWitness: []core.Dot{{Replica: 0, EventNo: 1}}}
	if o2.String() == "" {
		t.Error("empty render")
	}
}
