// Package tob implements Total Order Broadcast (TOB), the mechanism the
// paper substitutes for the original Bayou primary to establish the final
// request execution order (§2.1). Two implementations are provided:
//
//   - Paxos (NewPaxos): fault-tolerant, consensus-based, progress gated on
//     the failure detector Ω — the paper's replacement for the primary;
//   - Primary (NewPrimary): the original Bayou's primary-commit scheme — a
//     fixed sequencer stamps commit sequence numbers; simple but not
//     fault-tolerant. Kept as an ablation (experiment E11).
//
// Both satisfy, in stable runs, the paper's required TOB properties
// (§A.2.1):
//
//   - total order: all replicas deliver all messages in the same order;
//   - FIFO: the delivery order respects the order in which each replica
//     TOB-cast its messages;
//   - RB-coupling: if a message was (RB- and) TOB-cast by some replica and
//     reached any correct replica, then all correct replicas eventually
//     TOB-deliver it. The Paxos implementation achieves this by eagerly
//     relaying cast messages into every node's candidate pool, from which
//     any (future) leader proposes; invocation of the RB-cast and TOB-cast
//     is a single atomic step in the replica model, so pool dissemination
//     is equivalent to the paper's formulation.
//
// FIFO is enforced end-to-end: origins stamp contiguous per-origin sequence
// numbers, leaders propose per origin in sequence order, and learners apply
// a deterministic hold-back (identical at every node because the decided
// slot sequence is identical), so even duplicated or leader-crossing
// proposals never violate cast order.
package tob

import (
	"sort"

	"bayou/internal/fd"
	"bayou/internal/paxos"
	"bayou/internal/sim"
	"bayou/internal/simnet"
)

// Message is a TOB payload. ID must be globally unique (Bayou uses the
// request dot); Origin and Seq are stamped by Cast.
type Message struct {
	ID      string
	Origin  simnet.NodeID
	Seq     int64 // contiguous per-origin cast sequence, from 1
	Payload any
}

// DeliverFunc receives TOB-delivered messages together with their global
// delivery position (the tobNo of the paper's proofs), identical at every
// replica.
type DeliverFunc func(tobNo int64, m Message)

// BatchDeliverFunc receives a contiguous run of TOB-delivered messages at
// once; the run's global delivery positions are first, first+1, …. A single
// decision frequently unblocks a buffered FIFO cascade, and delivering the
// cascade as one batch lets the replica adjust its execution schedule once.
// The slice is only valid for the duration of the call (the gate reuses its
// cascade buffer): consumers that defer processing must copy it.
type BatchDeliverFunc func(first int64, ms []Message)

// TOB is the interface shared by both implementations.
type TOB interface {
	// Cast submits a payload for total ordering under the unique id.
	Cast(id string, payload any)
	// Handle consumes TOB wire traffic (false for foreign payloads).
	Handle(from simnet.NodeID, payload any) bool
	// DeliveredCount returns the number of messages TOB-delivered here.
	DeliveredCount() int64
	// SetBatchDeliver switches delivery to whole-cascade batches; the
	// per-message DeliverFunc passed at construction is then unused.
	SetBatchDeliver(fn BatchDeliverFunc)
	// Resync repairs the gaps a crash opened: the node asks its peers to
	// re-announce deliveries it slept through and re-offers undecided
	// candidates in both directions. Idempotent; delivery order and the
	// duplicate filter make replays harmless.
	Resync()
}

// forwardMsg disseminates a cast message into every node's candidate pool.
type forwardMsg struct {
	M Message
}

// poolReq asks a peer to re-forward its undecided candidate pool — the
// half of recovery that refills a returning (potential) leader with the
// proposals it never saw. The reply is ordinary forwardMsg traffic.
type poolReq struct{}

// fifoGate implements the deterministic per-origin hold-back and the
// duplicate filter shared by both implementations. Messages unblocked by a
// single offer form one cascade; with a batch deliverer installed the whole
// cascade is handed over in one call.
type fifoGate struct {
	deliver    DeliverFunc
	batch      BatchDeliverFunc
	pend       []Message
	seen       map[string]bool
	nextSeq    map[simnet.NodeID]int64
	buffered   map[simnet.NodeID]map[int64]Message
	nDelivered int64
}

func newFifoGate(deliver DeliverFunc) *fifoGate {
	return &fifoGate{
		deliver:  deliver,
		seen:     make(map[string]bool),
		nextSeq:  make(map[simnet.NodeID]int64),
		buffered: make(map[simnet.NodeID]map[int64]Message),
	}
}

// offer feeds the gate one decided message; in-order messages (and any
// buffered successors they unblock) are delivered.
func (g *fifoGate) offer(m Message) {
	if g.seen[m.ID] {
		return
	}
	g.seen[m.ID] = true
	if g.nextSeq[m.Origin] == 0 {
		g.nextSeq[m.Origin] = 1
	}
	if m.Seq != g.nextSeq[m.Origin] {
		b := g.buffered[m.Origin]
		if b == nil {
			b = make(map[int64]Message)
			g.buffered[m.Origin] = b
		}
		b[m.Seq] = m
		return
	}
	g.emit(m)
	for {
		next, ok := g.buffered[m.Origin][g.nextSeq[m.Origin]]
		if !ok {
			break
		}
		delete(g.buffered[m.Origin], next.Seq)
		g.emit(next)
	}
	g.flush()
}

func (g *fifoGate) emit(m Message) {
	g.nextSeq[m.Origin] = m.Seq + 1
	g.pend = append(g.pend, m)
}

// flush dispatches the pending cascade. Deliver callbacks may legally feed
// the gate again (a replica effect can cast, and a primary self-commits
// synchronously); the snapshot-and-loop keeps numbering and order aligned
// even then.
func (g *fifoGate) flush() {
	for len(g.pend) > 0 {
		ms := g.pend
		g.pend = nil
		first := g.nDelivered + 1
		g.nDelivered += int64(len(ms))
		if g.batch != nil {
			g.batch(first, ms)
		} else {
			for i, m := range ms {
				g.deliver(first+int64(i), m)
			}
		}
		if g.pend == nil {
			g.pend = ms[:0] // reuse the cascade buffer
		}
	}
}

// delivered reports whether the message id has passed the duplicate filter.
func (g *fifoGate) sawDecided(id string) bool { return g.seen[id] }

// ---------------------------------------------------------------------------
// Paxos-based TOB
// ---------------------------------------------------------------------------

// Paxos is the consensus-based TOB endpoint of one replica.
type Paxos struct {
	id    simnet.NodeID
	peers []simnet.NodeID
	net   *simnet.Network
	px    *paxos.Node
	omega *fd.Omega
	gate  *fifoGate

	myseq      int64
	pool       map[simnet.NodeID]map[int64]Message // candidates by origin/seq
	poolIDs    map[string]bool
	proposePtr map[simnet.NodeID]int64 // next per-origin seq to hand to paxos
}

var _ TOB = (*Paxos)(nil)

// NewPaxos returns the Paxos-based TOB for node id. It subscribes to omega:
// when Ω designates this node it starts leading, otherwise it stops.
func NewPaxos(id simnet.NodeID, peers []simnet.NodeID, sched *sim.Scheduler, net *simnet.Network, omega *fd.Omega, deliver DeliverFunc) *Paxos {
	t := &Paxos{
		id:         id,
		peers:      append([]simnet.NodeID(nil), peers...),
		net:        net,
		omega:      omega,
		gate:       newFifoGate(deliver),
		pool:       make(map[simnet.NodeID]map[int64]Message),
		poolIDs:    make(map[string]bool),
		proposePtr: make(map[simnet.NodeID]int64),
	}
	t.px = paxos.New(id, peers, sched, net, t.onDecide)
	t.px.SetOnLead(t.drainProposals)
	omega.Subscribe(func(node simnet.NodeID) {
		if node != id {
			return
		}
		t.refreshLeadership()
	})
	return t
}

// Cast implements TOB.
func (t *Paxos) Cast(id string, payload any) {
	t.myseq++
	m := Message{ID: id, Origin: t.id, Seq: t.myseq, Payload: payload}
	t.addCandidate(m)
	t.net.Broadcast(t.id, forwardMsg{M: m})
}

// Handle implements TOB.
func (t *Paxos) Handle(from simnet.NodeID, payload any) bool {
	switch f := payload.(type) {
	case forwardMsg:
		if !t.poolIDs[f.M.ID] && !t.gate.sawDecided(f.M.ID) {
			// Eager relay gives the RB-coupling property: once any
			// correct node holds the candidate, all of them will.
			t.net.Broadcast(t.id, f)
			t.addCandidate(f.M)
		}
		return true
	case poolReq:
		t.sendPool(from)
		return true
	}
	return t.px.Handle(from, payload)
}

// sendPool re-forwards every undecided pooled candidate to one peer.
func (t *Paxos) sendPool(to simnet.NodeID) {
	origins := make([]simnet.NodeID, 0, len(t.pool))
	for o := range t.pool {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, o := range origins {
		seqs := make([]int64, 0, len(t.pool[o]))
		for s := range t.pool[o] {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, s := range seqs {
			t.net.Send(t.id, to, forwardMsg{M: t.pool[o][s]})
		}
	}
}

// Resync implements TOB: after a crash–recover, (1) the Paxos learner asks
// peers to re-announce decided slots it missed, (2) undecided candidates
// flow both ways — the node re-forwards its own surviving pool (it may be
// the only holder of a candidate whose broadcast was lost) and asks every
// peer for theirs (it may have missed candidates a future leadership stint
// must propose) — and (3) leadership is re-evaluated against Ω, restarting
// phase 1 if this node is the designated leader.
func (t *Paxos) Resync() {
	t.px.Resync()
	for _, p := range t.peers {
		if p != t.id {
			t.sendPool(p)
		}
	}
	t.net.Broadcast(t.id, poolReq{})
	t.refreshLeadership()
}

// DeliveredCount implements TOB.
func (t *Paxos) DeliveredCount() int64 { return t.gate.nDelivered }

// SetBatchDeliver implements TOB.
func (t *Paxos) SetBatchDeliver(fn BatchDeliverFunc) { t.gate.batch = fn }

// Leading reports whether the underlying Paxos node holds leadership.
func (t *Paxos) Leading() bool { return t.px.Leading() }

func (t *Paxos) refreshLeadership() {
	if t.omega.Leader(t.id) == t.id {
		// Re-propose everything undelivered: a returning leader may have
		// stale pointers from a previous stint.
		for origin := range t.proposePtr {
			t.proposePtr[origin] = t.gate.nextSeq[origin]
			if t.proposePtr[origin] == 0 {
				t.proposePtr[origin] = 1
			}
		}
		t.px.Lead()
		t.drainProposals()
		return
	}
	t.px.StopLead()
}

func (t *Paxos) addCandidate(m Message) {
	byOrigin := t.pool[m.Origin]
	if byOrigin == nil {
		byOrigin = make(map[int64]Message)
		t.pool[m.Origin] = byOrigin
	}
	byOrigin[m.Seq] = m
	t.poolIDs[m.ID] = true
	if t.proposePtr[m.Origin] == 0 {
		t.proposePtr[m.Origin] = 1
	}
	if t.px.Leading() {
		t.drainProposals()
	}
}

// drainProposals hands pooled candidates to Paxos in per-origin FIFO order.
func (t *Paxos) drainProposals() {
	origins := make([]simnet.NodeID, 0, len(t.pool))
	for o := range t.pool {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, o := range origins {
		for {
			ptr := t.proposePtr[o]
			if ptr == 0 {
				ptr = 1
			}
			m, ok := t.pool[o][ptr]
			if !ok {
				// The pool entry may be gone because the message was
				// already decided and delivered; skip past it so the
				// pointer never wedges below later candidates.
				if t.gate.nextSeq[o] > ptr {
					t.proposePtr[o] = ptr + 1
					continue
				}
				break // genuine gap: await the candidate's forward
			}
			t.proposePtr[o] = ptr + 1
			if t.gate.sawDecided(m.ID) {
				continue
			}
			t.px.Propose(m)
		}
	}
}

func (t *Paxos) onDecide(_ paxos.Slot, v any) {
	m, ok := v.(Message)
	if !ok {
		return // no-op filler
	}
	t.gate.offer(m)
	// Free the pool entry; keep poolIDs so late forwards are not re-pooled.
	if byOrigin := t.pool[m.Origin]; byOrigin != nil {
		delete(byOrigin, m.Seq)
	}
	// A delivery can unblock FIFO-held successors in the pool; a leader
	// must pick them up even when no new forward arrives.
	if t.px.Leading() {
		t.drainProposals()
	}
}

// ---------------------------------------------------------------------------
// Primary-based TOB (original Bayou's commit scheme)
// ---------------------------------------------------------------------------

// commitMsg is the primary's ordering announcement.
type commitMsg struct {
	No int64
	M  Message
}

// learnReq asks the primary to re-announce commits ≥ From (the recovering
// learner's catch-up; only the primary holds the commit log).
type learnReq struct {
	From int64
}

// Primary is the sequencer-based TOB endpoint of one replica. The node with
// id == primary stamps commit numbers; everyone delivers in stamped order.
// If the primary crashes, no further message is ever TOB-delivered — the
// fault-tolerance deficiency that motivated replacing it with consensus.
type Primary struct {
	id      simnet.NodeID
	primary simnet.NodeID
	net     *simnet.Network
	gate    *fifoGate

	myseq int64

	// Sequencer state (used only on the primary). The commit log retains
	// every stamped message (log[i] has commit number i+1) so recovering
	// learners can refetch what they missed.
	commitNo int64
	stamped  map[string]bool
	log      []Message

	// Learner state: commits applied in stamped order.
	nextCommit int64
	pending    map[int64]Message
}

var _ TOB = (*Primary)(nil)

// NewPrimary returns the primary-based TOB endpoint for node id, with the
// given fixed primary.
func NewPrimary(id, primary simnet.NodeID, net *simnet.Network, deliver DeliverFunc) *Primary {
	return &Primary{
		id:         id,
		primary:    primary,
		net:        net,
		gate:       newFifoGate(deliver),
		stamped:    make(map[string]bool),
		nextCommit: 1,
		pending:    make(map[int64]Message),
	}
}

// Cast implements TOB.
func (t *Primary) Cast(id string, payload any) {
	t.myseq++
	m := Message{ID: id, Origin: t.id, Seq: t.myseq, Payload: payload}
	if t.id == t.primary {
		t.stamp(m)
		return
	}
	t.net.Send(t.id, t.primary, forwardMsg{M: m})
}

// Handle implements TOB.
func (t *Primary) Handle(from simnet.NodeID, payload any) bool {
	switch m := payload.(type) {
	case forwardMsg:
		if t.id == t.primary {
			t.stamp(m.M)
		}
		return true
	case commitMsg:
		t.onCommit(m)
		return true
	case learnReq:
		if t.id == t.primary {
			for no := m.From; no <= t.commitNo; no++ {
				t.net.Send(t.id, from, commitMsg{No: no, M: t.log[no-1]})
			}
		}
		return true
	default:
		return false
	}
}

// Resync implements TOB: ask the primary to re-announce the commits this
// learner missed. The primary's own sequencer state is durable by
// construction (it lives across a crash–recover of the process hosting it);
// if the primary is permanently gone, no resync can help — the
// fault-tolerance deficiency that motivated the consensus-based TOB.
func (t *Primary) Resync() {
	if t.id == t.primary {
		return
	}
	t.net.Send(t.id, t.primary, learnReq{From: t.nextCommit})
}

// DeliveredCount implements TOB.
func (t *Primary) DeliveredCount() int64 { return t.gate.nDelivered }

// SetBatchDeliver implements TOB.
func (t *Primary) SetBatchDeliver(fn BatchDeliverFunc) { t.gate.batch = fn }

func (t *Primary) stamp(m Message) {
	if t.stamped[m.ID] {
		return
	}
	t.stamped[m.ID] = true
	t.commitNo++
	t.log = append(t.log, m)
	c := commitMsg{No: t.commitNo, M: m}
	t.net.Broadcast(t.id, c)
	t.onCommit(c)
}

func (t *Primary) onCommit(c commitMsg) {
	if c.No < t.nextCommit {
		return
	}
	t.pending[c.No] = c.M
	for {
		m, ok := t.pending[t.nextCommit]
		if !ok {
			return
		}
		delete(t.pending, t.nextCommit)
		t.nextCommit++
		t.gate.offer(m)
	}
}
