// Package tob implements Total Order Broadcast (TOB), the mechanism the
// paper substitutes for the original Bayou primary to establish the final
// request execution order (§2.1). Two implementations are provided:
//
//   - Paxos (NewPaxos): fault-tolerant, consensus-based, progress gated on
//     the failure detector Ω — the paper's replacement for the primary;
//   - Primary (NewPrimary): the original Bayou's primary-commit scheme — a
//     fixed sequencer stamps commit sequence numbers; simple but not
//     fault-tolerant. Kept as an ablation (experiment E11).
//
// Both satisfy, in stable runs, the paper's required TOB properties
// (§A.2.1):
//
//   - total order: all replicas deliver all messages in the same order;
//   - FIFO: the delivery order respects the order in which each replica
//     TOB-cast its messages;
//   - RB-coupling: if a message was (RB- and) TOB-cast by some replica and
//     reached any correct replica, then all correct replicas eventually
//     TOB-deliver it. The Paxos implementation achieves this by eagerly
//     relaying cast messages into every node's candidate pool, from which
//     any (future) leader proposes; invocation of the RB-cast and TOB-cast
//     is a single atomic step in the replica model, so pool dissemination
//     is equivalent to the paper's formulation.
//
// FIFO is enforced end-to-end: origins stamp contiguous per-origin sequence
// numbers, leaders propose per origin in sequence order, and learners apply
// a deterministic hold-back (identical at every node because the decided
// slot sequence is identical), so even duplicated or leader-crossing
// proposals never violate cast order.
package tob

import (
	"fmt"
	"sort"

	"bayou/internal/fd"
	"bayou/internal/paxos"
	"bayou/internal/sim"
	"bayou/internal/simnet"
)

// Message is a TOB payload. ID must be globally unique (Bayou uses the
// request dot); Origin and Seq are stamped by Cast.
type Message struct {
	ID      string
	Origin  simnet.NodeID
	Seq     int64 // contiguous per-origin cast sequence, from 1
	Payload any
}

// DeliverFunc receives TOB-delivered messages together with their global
// delivery position (the tobNo of the paper's proofs), identical at every
// replica.
type DeliverFunc func(tobNo int64, m Message)

// BatchDeliverFunc receives a contiguous run of TOB-delivered messages at
// once; the run's global delivery positions are first, first+1, …. A single
// decision frequently unblocks a buffered FIFO cascade, and delivering the
// cascade as one batch lets the replica adjust its execution schedule once.
// The slice is only valid for the duration of the call (the gate reuses its
// cascade buffer): consumers that defer processing must copy it.
type BatchDeliverFunc func(first int64, ms []Message)

// TOB is the interface shared by both implementations.
type TOB interface {
	// Cast submits a payload for total ordering under the unique id.
	Cast(id string, payload any)
	// Handle consumes TOB wire traffic (false for foreign payloads).
	Handle(from simnet.NodeID, payload any) bool
	// DeliveredCount returns the number of messages TOB-delivered here.
	DeliveredCount() int64
	// SetBatchDeliver switches delivery to whole-cascade batches; the
	// per-message DeliverFunc passed at construction is then unused.
	SetBatchDeliver(fn BatchDeliverFunc)
	// Resync repairs the gaps a crash opened: the node asks its peers to
	// re-announce deliveries it slept through and re-offers undecided
	// candidates in both directions. Idempotent; delivery order and the
	// duplicate filter make replays harmless.
	Resync()
	// SetCheckpoint records that the local replica has checkpointed its
	// first upTo deliveries into the opaque state record: the endpoint
	// truncates its replay structures below that point and serves later
	// learner catch-up requests for the truncated range by state transfer
	// (shipping the record) instead of per-slot replay. upTo must equal
	// the endpoint's current delivered count — the driver checkpoints at a
	// delivery boundary.
	SetCheckpoint(upTo int64, state any) error
	// SetInstall registers the state-transfer sink: fn receives a peer's
	// checkpoint record and reports whether the replica installed it (false
	// when already at or past upTo). On true the endpoint fast-forwards its
	// delivery cursors past the transferred prefix.
	SetInstall(fn func(state any, upTo int64) bool)
	// LeaseHeld reports whether this endpoint currently holds the ordering
	// lease: a clock-fenced license guaranteeing that its contiguous
	// delivered prefix is the complete decided prefix — no message can be
	// TOB-delivered anywhere that this endpoint has not (or will not first)
	// deliver itself. Under the Paxos implementation it is a quorum-granted
	// leader lease (see paxos.Node.LeaseHeld); under Primary the sequencer
	// holds it permanently (commit numbers are minted nowhere else). The
	// cluster layer uses it to serve strong reads locally with zero
	// proposal rounds.
	LeaseHeld() bool
}

// Checkpoint is an endpoint's captured transfer record: the replica-level
// state (opaque to this package) plus the delivery cursors a receiving
// endpoint needs to resume past the transferred prefix.
type Checkpoint struct {
	UpTo    int64                   // deliveries covered (== receiver's new nDelivered)
	Slot    int64                   // implementation cursor at the boundary (Paxos: next consensus slot)
	NextSeq map[simnet.NodeID]int64 // per-origin FIFO cursors at the boundary
	State   any                     // the replica's checkpoint record
}

// xferMsg ships a checkpoint to a learner that asked for truncated history.
type xferMsg struct {
	C Checkpoint
}

// forwardMsg disseminates a cast message into every node's candidate pool.
type forwardMsg struct {
	M Message
}

// poolReq asks a peer to re-forward its undecided candidate pool — the
// half of recovery that refills a returning (potential) leader with the
// proposals it never saw. The reply is ordinary forwardMsg traffic.
type poolReq struct{}

// fifoGate implements the deterministic per-origin hold-back and the
// duplicate filter shared by both implementations. Messages unblocked by a
// single offer form one cascade; with a batch deliverer installed the whole
// cascade is handed over in one call.
type fifoGate struct {
	deliver    DeliverFunc
	batch      BatchDeliverFunc
	pend       []Message
	seen       map[string]bool
	nextSeq    map[simnet.NodeID]int64
	buffered   map[simnet.NodeID]map[int64]Message
	nDelivered int64
}

func newFifoGate(deliver DeliverFunc) *fifoGate {
	return &fifoGate{
		deliver:  deliver,
		seen:     make(map[string]bool),
		nextSeq:  make(map[simnet.NodeID]int64),
		buffered: make(map[simnet.NodeID]map[int64]Message),
	}
}

// offer feeds the gate one decided message; in-order messages (and any
// buffered successors they unblock) are delivered.
func (g *fifoGate) offer(m Message) {
	if g.seen[m.ID] {
		return
	}
	if g.nextSeq[m.Origin] != 0 && m.Seq < g.nextSeq[m.Origin] {
		// Stale: this origin-sequence was already delivered (directly, or
		// inside an installed checkpoint). Origins stamp contiguous
		// sequences, so the Seq cursor alone is a complete duplicate
		// filter for the past — which is what lets compact() drop the
		// id set for delivered history without risking re-delivery.
		return
	}
	g.seen[m.ID] = true
	if g.nextSeq[m.Origin] == 0 {
		g.nextSeq[m.Origin] = 1
	}
	if m.Seq != g.nextSeq[m.Origin] {
		b := g.buffered[m.Origin]
		if b == nil {
			b = make(map[int64]Message)
			g.buffered[m.Origin] = b
		}
		b[m.Seq] = m
		return
	}
	g.emit(m)
	for {
		next, ok := g.buffered[m.Origin][g.nextSeq[m.Origin]]
		if !ok {
			break
		}
		delete(g.buffered[m.Origin], next.Seq)
		g.emit(next)
	}
	g.flush()
}

func (g *fifoGate) emit(m Message) {
	g.nextSeq[m.Origin] = m.Seq + 1
	g.pend = append(g.pend, m)
}

// flush dispatches the pending cascade. Deliver callbacks may legally feed
// the gate again (a replica effect can cast, and a primary self-commits
// synchronously); the snapshot-and-loop keeps numbering and order aligned
// even then.
func (g *fifoGate) flush() {
	for len(g.pend) > 0 {
		ms := g.pend
		g.pend = nil
		first := g.nDelivered + 1
		g.nDelivered += int64(len(ms))
		if g.batch != nil {
			g.batch(first, ms)
		} else {
			for i, m := range ms {
				g.deliver(first+int64(i), m)
			}
		}
		if g.pend == nil {
			g.pend = ms[:0] // reuse the cascade buffer
		}
	}
}

// delivered reports whether the message id has passed the duplicate filter.
func (g *fifoGate) sawDecided(id string) bool { return g.seen[id] }

// holes reports whether the gate is holding decided messages back for
// per-origin FIFO (a predecessor sequence is still undecided). While any are
// held, the delivered prefix is not the decided prefix — a checkpoint
// captured now could cover neither the held message (it is undelivered, so
// it is outside the replica image) nor its replay (its slot would fall below
// the truncation), so checkpoint capture must wait for the hole to fill.
func (g *fifoGate) holes() bool {
	for _, b := range g.buffered {
		if len(b) > 0 {
			return true
		}
	}
	return false
}

// compact drops the id-keyed duplicate filter for delivered history: after a
// checkpoint the per-origin Seq cursors are the duplicate filter for
// everything below them (see offer), so the set can restart small instead of
// growing with history. Ids of messages still buffered (Seq ahead of the
// cursor) are re-added — they have not been delivered yet.
func (g *fifoGate) compact() {
	seen := make(map[string]bool, 16)
	for _, b := range g.buffered {
		for _, m := range b {
			seen[m.ID] = true
		}
	}
	g.seen = seen
}

// fastForward jumps the gate past an installed checkpoint: nDelivered and
// the per-origin FIFO cursors adopt the sender's boundary capture, and
// buffered messages the checkpoint already covers are dropped.
func (g *fifoGate) fastForward(upTo int64, nextSeq map[simnet.NodeID]int64) {
	if upTo <= g.nDelivered {
		return
	}
	g.nDelivered = upTo
	for origin, seq := range nextSeq {
		if seq > g.nextSeq[origin] {
			g.nextSeq[origin] = seq
		}
	}
	for origin, b := range g.buffered {
		for seq := range b {
			if seq < g.nextSeq[origin] {
				delete(b, seq)
			}
		}
	}
	g.compact()
}

// ---------------------------------------------------------------------------
// Paxos-based TOB
// ---------------------------------------------------------------------------

// Paxos is the consensus-based TOB endpoint of one replica.
type Paxos struct {
	id    simnet.NodeID
	peers []simnet.NodeID
	net   *simnet.Network
	px    *paxos.Node
	omega *fd.Omega
	gate  *fifoGate

	myseq      int64
	pool       map[simnet.NodeID]map[int64]Message // candidates by origin/seq
	poolIDs    map[string]bool
	proposePtr map[simnet.NodeID]int64 // next per-origin seq to hand to paxos

	// ckpt is the latest local checkpoint (nil before the first): the
	// state-transfer record served to learners asking for slots the
	// compaction dropped. install is the replica-side sink for records
	// received from peers.
	ckpt     *Checkpoint
	ckptSlot paxos.Slot // learner slot the checkpoint boundary maps to
	install  func(state any, upTo int64) bool

	// unpacking is true while a decided Batch is being unpacked into the
	// gate. Deliver callbacks run synchronously from inside the loop, so a
	// checkpoint requested mid-batch would be captured with the paxos
	// cursor already past the batch's slot while the batch tail is not yet
	// in the replica image — see SetCheckpoint.
	unpacking bool
}

var _ TOB = (*Paxos)(nil)

// NewPaxos returns the Paxos-based TOB for node id. It subscribes to omega:
// when Ω designates this node it starts leading, otherwise it stops.
func NewPaxos(id simnet.NodeID, peers []simnet.NodeID, sched *sim.Scheduler, net *simnet.Network, omega *fd.Omega, deliver DeliverFunc) *Paxos {
	t := &Paxos{
		id:         id,
		peers:      append([]simnet.NodeID(nil), peers...),
		net:        net,
		omega:      omega,
		gate:       newFifoGate(deliver),
		pool:       make(map[simnet.NodeID]map[int64]Message),
		poolIDs:    make(map[string]bool),
		proposePtr: make(map[simnet.NodeID]int64),
	}
	t.px = paxos.New(id, peers, sched, net, t.onDecide)
	t.px.SetOnLead(t.drainProposals)
	// A value re-queued across a leadership change may have been decided in
	// a lower slot meanwhile (by this or another leader); the filter drops
	// it before it wastes a consensus round.
	t.px.SetDupFilter(func(v any) bool {
		m, ok := v.(Message)
		if !ok {
			return false
		}
		return t.gate.sawDecided(m.ID) || t.delivered(m)
	})
	omega.Subscribe(func(node simnet.NodeID) {
		if node != id {
			return
		}
		t.refreshLeadership()
	})
	return t
}

// Cast implements TOB.
func (t *Paxos) Cast(id string, payload any) {
	t.myseq++
	m := Message{ID: id, Origin: t.id, Seq: t.myseq, Payload: payload}
	t.addCandidate(m)
	t.net.Broadcast(t.id, forwardMsg{M: m})
}

// Handle implements TOB.
func (t *Paxos) Handle(from simnet.NodeID, payload any) bool {
	switch f := payload.(type) {
	case forwardMsg:
		if !t.poolIDs[f.M.ID] && !t.gate.sawDecided(f.M.ID) && !t.delivered(f.M) {
			// Eager relay gives the RB-coupling property: once any
			// correct node holds the candidate, all of them will.
			t.net.Broadcast(t.id, f)
			t.addCandidate(f.M)
		}
		return true
	case poolReq:
		t.sendPool(from)
		return true
	case xferMsg:
		t.onXfer(f.C)
		return true
	case paxos.LearnReq:
		// A learner asking for slots the local compaction dropped is served
		// by state transfer first; the paxos layer then replays whatever it
		// still holds past the checkpoint boundary.
		if t.ckpt != nil && f.From < t.ckptSlot {
			t.net.Send(t.id, from, xferMsg{C: *t.ckpt})
		}
		return t.px.Handle(from, payload)
	}
	return t.px.Handle(from, payload)
}

// delivered reports whether the message's origin-sequence lies below the
// gate's FIFO cursor — already delivered (possibly inside an installed
// checkpoint whose id set was compacted away).
func (t *Paxos) delivered(m Message) bool {
	next := t.gate.nextSeq[m.Origin]
	return next != 0 && m.Seq < next
}

// onXfer installs a peer's checkpoint: the replica adopts the image, then
// the delivery cursors jump past the transferred prefix.
func (t *Paxos) onXfer(c Checkpoint) {
	if t.install == nil || !t.install(c.State, c.UpTo) {
		return
	}
	t.gate.fastForward(c.UpTo, c.NextSeq)
	t.px.FastForward(paxos.Slot(c.Slot))
	t.prunePool()
}

// prunePool drops pooled candidates already covered by the gate's FIFO
// cursors (delivered, directly or via transfer) so the pool cannot retain
// committed history.
func (t *Paxos) prunePool() {
	for origin, byOrigin := range t.pool {
		next := t.gate.nextSeq[origin]
		for seq, m := range byOrigin {
			if seq < next {
				delete(byOrigin, seq)
				delete(t.poolIDs, m.ID)
			}
		}
		if ptr := t.proposePtr[origin]; ptr < next {
			t.proposePtr[origin] = next
		}
	}
}

// SetCheckpoint implements TOB: capture the transfer record at the current
// delivery boundary and truncate the consensus log below it.
//
// Capture is deferred — the previous record (and the previous truncation
// floor) stay in force — while the FIFO gate holds decided-but-undelivered
// messages: such a message sits in a slot below the learner cursor but
// outside the replica image, so a record captured now would lose it for
// every receiver. The replica-side truncation has already happened and is
// unaffected; the older record plus the untruncated slot replay still cover
// any behind learner, and the next checkpoint after the hole fills captures
// normally.
//
// The same hazard exists one layer down, without any gate hole: when a slot
// carries a Batch, the paxos cursor moves past the slot before the batch is
// unpacked, and the deliver callback for an early batch member can request a
// checkpoint while later members are still pending inside the loop. A record
// captured then would claim the slot boundary yet miss the batch tail, and
// the truncation would destroy the only replayable copy. Capture is deferred
// for that case too.
func (t *Paxos) SetCheckpoint(upTo int64, state any) error {
	if upTo != t.gate.nDelivered {
		return fmt.Errorf("tob: checkpoint at %d deliveries, gate has delivered %d", upTo, t.gate.nDelivered)
	}
	if t.gate.holes() || t.unpacking {
		return nil
	}
	slot := t.px.NextDeliver()
	t.ckpt = &Checkpoint{
		UpTo:    upTo,
		NextSeq: cloneSeq(t.gate.nextSeq),
		State:   state,
		Slot:    int64(slot),
	}
	t.ckptSlot = slot
	t.px.CompactBelow(slot)
	t.gate.compact()
	t.prunePool()
	return nil
}

// SetInstall implements TOB.
func (t *Paxos) SetInstall(fn func(state any, upTo int64) bool) { t.install = fn }

func cloneSeq(m map[simnet.NodeID]int64) map[simnet.NodeID]int64 {
	out := make(map[simnet.NodeID]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sendPool re-forwards every undecided pooled candidate to one peer.
func (t *Paxos) sendPool(to simnet.NodeID) {
	origins := make([]simnet.NodeID, 0, len(t.pool))
	for o := range t.pool {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, o := range origins {
		seqs := make([]int64, 0, len(t.pool[o]))
		for s := range t.pool[o] {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, s := range seqs {
			t.net.Send(t.id, to, forwardMsg{M: t.pool[o][s]})
		}
	}
}

// Resync implements TOB: after a crash–recover, (1) the Paxos learner asks
// peers to re-announce decided slots it missed, (2) undecided candidates
// flow both ways — the node re-forwards its own surviving pool (it may be
// the only holder of a candidate whose broadcast was lost) and asks every
// peer for theirs (it may have missed candidates a future leadership stint
// must propose) — and (3) leadership is re-evaluated against Ω, restarting
// phase 1 if this node is the designated leader.
func (t *Paxos) Resync() {
	t.px.Resync()
	for _, p := range t.peers {
		if p != t.id {
			t.sendPool(p)
		}
	}
	t.net.Broadcast(t.id, poolReq{})
	t.refreshLeadership()
}

// DeliveredCount implements TOB.
func (t *Paxos) DeliveredCount() int64 { return t.gate.nDelivered }

// SetBatchDeliver implements TOB.
func (t *Paxos) SetBatchDeliver(fn BatchDeliverFunc) { t.gate.batch = fn }

// Leading reports whether the underlying Paxos node holds leadership.
func (t *Paxos) Leading() bool { return t.px.Leading() }

// LeaseHeld implements TOB: true while the underlying Paxos node holds a
// live quorum-granted leader lease. Querying it also drives renewal.
func (t *Paxos) LeaseHeld() bool { return t.px.LeaseHeld() }

// EnableLease turns on leader leases of the given duration (scheduler
// ticks) on the underlying Paxos node.
func (t *Paxos) EnableLease(dur sim.Time) { t.px.EnableLease(dur) }

// SetPipelineDepth bounds the underlying Paxos node's in-flight slot
// window.
func (t *Paxos) SetPipelineDepth(d int) { t.px.SetPipelineDepth(d) }

// SetBatchCap bounds how many cast messages the underlying Paxos node packs
// into one slot (1 = classic one-value-per-slot).
func (t *Paxos) SetBatchCap(c int) { t.px.SetBatchCap(c) }

// Counters exposes the underlying Paxos node's protocol-cost counters.
func (t *Paxos) Counters() paxos.Counters { return t.px.Counters() }

func (t *Paxos) refreshLeadership() {
	if t.omega.Leader(t.id) == t.id {
		// Re-propose everything undelivered: a returning leader may have
		// stale pointers from a previous stint.
		for origin := range t.proposePtr {
			t.proposePtr[origin] = t.gate.nextSeq[origin]
			if t.proposePtr[origin] == 0 {
				t.proposePtr[origin] = 1
			}
		}
		t.px.Lead()
		t.drainProposals()
		return
	}
	t.px.StopLead()
}

func (t *Paxos) addCandidate(m Message) {
	byOrigin := t.pool[m.Origin]
	if byOrigin == nil {
		byOrigin = make(map[int64]Message)
		t.pool[m.Origin] = byOrigin
	}
	byOrigin[m.Seq] = m
	t.poolIDs[m.ID] = true
	if t.proposePtr[m.Origin] == 0 {
		t.proposePtr[m.Origin] = 1
	}
	if t.px.Leading() {
		t.drainProposals()
	}
}

// drainProposals hands pooled candidates to Paxos in per-origin FIFO order.
func (t *Paxos) drainProposals() {
	origins := make([]simnet.NodeID, 0, len(t.pool))
	for o := range t.pool {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, o := range origins {
		for {
			ptr := t.proposePtr[o]
			if ptr == 0 {
				ptr = 1
			}
			m, ok := t.pool[o][ptr]
			if !ok {
				// The pool entry may be gone because the message was
				// already decided and delivered; skip past it so the
				// pointer never wedges below later candidates.
				if t.gate.nextSeq[o] > ptr {
					t.proposePtr[o] = ptr + 1
					continue
				}
				break // genuine gap: await the candidate's forward
			}
			t.proposePtr[o] = ptr + 1
			if t.gate.sawDecided(m.ID) {
				continue
			}
			t.px.Propose(m)
		}
	}
}

func (t *Paxos) onDecide(_ paxos.Slot, v any) {
	// One slot may carry a whole Batch of cast messages, decided atomically
	// and unpacked here in order; a singleton is the bare Message.
	if b, ok := v.(paxos.Batch); ok {
		t.unpacking = true
		for _, bv := range b {
			if m, ok := bv.(Message); ok {
				t.decideOne(m)
			}
		}
		t.unpacking = false
		if t.px.Leading() {
			t.drainProposals()
		}
		return
	}
	m, ok := v.(Message)
	if !ok {
		return // no-op filler
	}
	t.decideOne(m)
	// A delivery can unblock FIFO-held successors in the pool; a leader
	// must pick them up even when no new forward arrives.
	if t.px.Leading() {
		t.drainProposals()
	}
}

func (t *Paxos) decideOne(m Message) {
	t.gate.offer(m)
	// Free the pool entry; keep poolIDs so late forwards are not re-pooled.
	if byOrigin := t.pool[m.Origin]; byOrigin != nil {
		delete(byOrigin, m.Seq)
	}
}

// ---------------------------------------------------------------------------
// Primary-based TOB (original Bayou's commit scheme)
// ---------------------------------------------------------------------------

// commitMsg is the primary's ordering announcement.
type commitMsg struct {
	No int64
	M  Message
}

// learnReq asks the primary to re-announce commits ≥ From (the recovering
// learner's catch-up; only the primary holds the commit log).
type learnReq struct {
	From int64
}

// Primary is the sequencer-based TOB endpoint of one replica. The node with
// id == primary stamps commit numbers; everyone delivers in stamped order.
// If the primary crashes, no further message is ever TOB-delivered — the
// fault-tolerance deficiency that motivated replacing it with consensus.
type Primary struct {
	id      simnet.NodeID
	primary simnet.NodeID
	net     *simnet.Network
	gate    *fifoGate

	myseq int64

	// Sequencer state (used only on the primary). The commit log retains
	// the stamped messages past the primary's checkpoint (log[i] has commit
	// number logBase+i+1) so recovering learners can refetch what they
	// missed; learners older than logBase are caught up by state transfer.
	commitNo int64
	stamped  map[string]bool
	log      []Message
	logBase  int64

	// Learner state: commits applied in stamped order.
	nextCommit int64
	pending    map[int64]Message

	// Checkpoint state (see TOB.SetCheckpoint).
	ckpt    *Checkpoint
	install func(state any, upTo int64) bool
}

var _ TOB = (*Primary)(nil)

// NewPrimary returns the primary-based TOB endpoint for node id, with the
// given fixed primary.
func NewPrimary(id, primary simnet.NodeID, net *simnet.Network, deliver DeliverFunc) *Primary {
	return &Primary{
		id:         id,
		primary:    primary,
		net:        net,
		gate:       newFifoGate(deliver),
		stamped:    make(map[string]bool),
		nextCommit: 1,
		pending:    make(map[int64]Message),
	}
}

// Cast implements TOB.
func (t *Primary) Cast(id string, payload any) {
	t.myseq++
	m := Message{ID: id, Origin: t.id, Seq: t.myseq, Payload: payload}
	if t.id == t.primary {
		t.stamp(m)
		return
	}
	t.net.Send(t.id, t.primary, forwardMsg{M: m})
}

// Handle implements TOB.
func (t *Primary) Handle(from simnet.NodeID, payload any) bool {
	switch m := payload.(type) {
	case forwardMsg:
		if t.id == t.primary {
			t.stamp(m.M)
		}
		return true
	case commitMsg:
		t.onCommit(m)
		return true
	case learnReq:
		if t.id == t.primary {
			from0 := m.From
			if from0 <= t.logBase {
				// The learner predates the primary's checkpoint: ship the
				// image, then replay the log that survives past it.
				if t.ckpt != nil {
					t.net.Send(t.id, from, xferMsg{C: *t.ckpt})
				}
				from0 = t.logBase + 1
			}
			for no := from0; no <= t.commitNo; no++ {
				t.net.Send(t.id, from, commitMsg{No: no, M: t.log[no-1-t.logBase]})
			}
		}
		return true
	case xferMsg:
		t.onXfer(m.C)
		return true
	default:
		return false
	}
}

// onXfer installs a checkpoint received from the primary: the replica adopts
// the image and the learner jumps past the transferred commits.
func (t *Primary) onXfer(c Checkpoint) {
	if t.install == nil || !t.install(c.State, c.UpTo) {
		return
	}
	t.gate.fastForward(c.UpTo, c.NextSeq)
	if c.UpTo+1 > t.nextCommit {
		t.nextCommit = c.UpTo + 1
	}
	for no := range t.pending {
		if no < t.nextCommit {
			delete(t.pending, no)
		}
	}
	// Drain commits buffered past the transferred prefix.
	for {
		m, ok := t.pending[t.nextCommit]
		if !ok {
			return
		}
		delete(t.pending, t.nextCommit)
		t.nextCommit++
		t.gate.offer(m)
	}
}

// SetCheckpoint implements TOB: capture the transfer record at the current
// delivery boundary; on the primary, additionally truncate the sequencer's
// commit log (and its stamp filter) below it. As with the Paxos endpoint,
// capture defers while the gate holds FIFO-buffered messages (see
// Paxos.SetCheckpoint) — the previous record and log stay in force.
func (t *Primary) SetCheckpoint(upTo int64, state any) error {
	if upTo != t.gate.nDelivered {
		return fmt.Errorf("tob: checkpoint at %d deliveries, gate has delivered %d", upTo, t.gate.nDelivered)
	}
	if t.gate.holes() {
		return nil
	}
	t.ckpt = &Checkpoint{
		UpTo:    upTo,
		Slot:    upTo, // commit numbers are delivery numbers under a sequencer
		NextSeq: cloneSeq(t.gate.nextSeq),
		State:   state,
	}
	t.gate.compact()
	if t.id == t.primary && upTo > t.logBase {
		cut := upTo - t.logBase
		if cut > int64(len(t.log)) {
			cut = int64(len(t.log))
		}
		for _, m := range t.log[:cut] {
			delete(t.stamped, m.ID)
		}
		fresh := make([]Message, len(t.log)-int(cut))
		copy(fresh, t.log[cut:])
		t.log = fresh
		t.logBase += cut
	}
	return nil
}

// SetInstall implements TOB.
func (t *Primary) SetInstall(fn func(state any, upTo int64) bool) { t.install = fn }

// Resync implements TOB: ask the primary to re-announce the commits this
// learner missed. The primary's own sequencer state is durable by
// construction (it lives across a crash–recover of the process hosting it);
// if the primary is permanently gone, no resync can help — the
// fault-tolerance deficiency that motivated the consensus-based TOB.
func (t *Primary) Resync() {
	if t.id == t.primary {
		return
	}
	t.net.Send(t.id, t.primary, learnReq{From: t.nextCommit})
}

// DeliveredCount implements TOB.
func (t *Primary) DeliveredCount() int64 { return t.gate.nDelivered }

// SetBatchDeliver implements TOB.
func (t *Primary) SetBatchDeliver(fn BatchDeliverFunc) { t.gate.batch = fn }

// LeaseHeld implements TOB: the sequencer holds the ordering lease
// permanently — commit numbers are minted nowhere else, so its delivered
// prefix is by construction the complete decided prefix. This is trivially
// fault-honest: a crashed primary stops all commits everywhere (nothing can
// overtake its prefix), and its own endpoint is not running to serve reads.
func (t *Primary) LeaseHeld() bool { return t.id == t.primary }

func (t *Primary) stamp(m Message) {
	if t.stamped[m.ID] {
		return
	}
	if next := t.gate.nextSeq[m.Origin]; next != 0 && m.Seq < next {
		// Already stamped, delivered and possibly truncated from the stamp
		// filter by a checkpoint: the per-origin sequence cursor is the
		// duplicate filter for stamped history, exactly as it is for
		// delivery. Re-stamping would mint a second commit number for the
		// same request and desynchronize commit numbers from deliveries.
		return
	}
	t.stamped[m.ID] = true
	t.commitNo++
	t.log = append(t.log, m)
	c := commitMsg{No: t.commitNo, M: m}
	t.net.Broadcast(t.id, c)
	t.onCommit(c)
}

func (t *Primary) onCommit(c commitMsg) {
	if c.No < t.nextCommit {
		return
	}
	t.pending[c.No] = c.M
	for {
		m, ok := t.pending[t.nextCommit]
		if !ok {
			return
		}
		delete(t.pending, t.nextCommit)
		t.nextCommit++
		t.gate.offer(m)
	}
}
