package tob

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"bayou/internal/fd"
	"bayou/internal/sim"
	"bayou/internal/simnet"
)

type delivery struct {
	tobNo int64
	id    string
}

type fixture struct {
	sched *sim.Scheduler
	net   *simnet.Network
	omega *fd.Omega
	tobs  []TOB
	got   [][]delivery
	peers []simnet.NodeID
}

func newPaxosFixture(t *testing.T, n int, seed int64) *fixture {
	t.Helper()
	f := &fixture{sched: sim.New(seed), got: make([][]delivery, n)}
	f.net = simnet.New(f.sched)
	f.omega = fd.New()
	for i := 0; i < n; i++ {
		f.peers = append(f.peers, simnet.NodeID(i))
	}
	f.tobs = make([]TOB, n)
	for i := 0; i < n; i++ {
		i := i
		f.tobs[i] = NewPaxos(f.peers[i], f.peers, f.sched, f.net, f.omega, func(no int64, m Message) {
			f.got[i] = append(f.got[i], delivery{tobNo: no, id: m.ID})
		})
		mux := &simnet.Mux{}
		mux.Add(f.tobs[i].Handle)
		f.net.Register(f.peers[i], mux.Handler())
	}
	return f
}

func newPrimaryFixture(t *testing.T, n int, primary simnet.NodeID) *fixture {
	t.Helper()
	f := &fixture{sched: sim.New(11), got: make([][]delivery, n)}
	f.net = simnet.New(f.sched)
	for i := 0; i < n; i++ {
		f.peers = append(f.peers, simnet.NodeID(i))
	}
	f.tobs = make([]TOB, n)
	for i := 0; i < n; i++ {
		i := i
		f.tobs[i] = NewPrimary(f.peers[i], primary, f.net, func(no int64, m Message) {
			f.got[i] = append(f.got[i], delivery{tobNo: no, id: m.ID})
		})
		mux := &simnet.Mux{}
		mux.Add(f.tobs[i].Handle)
		f.net.Register(f.peers[i], mux.Handler())
	}
	return f
}

func (f *fixture) run(t *testing.T) {
	t.Helper()
	if _, ok := f.sched.Run(5_000_000); !ok {
		t.Fatal("scheduler did not quiesce (livelock)")
	}
}

func (f *fixture) ids(node int) []string {
	out := make([]string, len(f.got[node]))
	for i, d := range f.got[node] {
		out[i] = d.id
	}
	return out
}

func (f *fixture) assertAgreement(t *testing.T, want int) {
	t.Helper()
	ref := f.ids(0)
	if len(ref) != want {
		t.Fatalf("node 0 delivered %d messages (%v), want %d", len(ref), ref, want)
	}
	for i := 1; i < len(f.tobs); i++ {
		ids := f.ids(i)
		if len(ids) != want {
			t.Fatalf("node %d delivered %d messages, want %d", i, len(ids), want)
		}
		for k := range ref {
			if ids[k] != ref[k] {
				t.Fatalf("node %d order diverges at %d: %v vs %v", i, k, ids, ref)
			}
		}
		// tobNo must be contiguous from 1 and identical everywhere.
		for k, d := range f.got[i] {
			if d.tobNo != int64(k+1) {
				t.Fatalf("node %d tobNo[%d] = %d, want %d", i, k, d.tobNo, k+1)
			}
		}
	}
}

func TestPaxosTOBTotalOrder(t *testing.T) {
	f := newPaxosFixture(t, 3, 1)
	f.omega.Stabilize(f.peers, 0)
	f.tobs[0].Cast("a", nil)
	f.tobs[1].Cast("b", nil)
	f.tobs[2].Cast("c", nil)
	f.run(t)
	f.assertAgreement(t, 3)
}

func TestPaxosTOBFIFOPerOrigin(t *testing.T) {
	f := newPaxosFixture(t, 3, 2)
	f.omega.Stabilize(f.peers, 1)
	for k := 0; k < 10; k++ {
		f.tobs[2].Cast(fmt.Sprintf("m%d", k), nil)
	}
	f.run(t)
	f.assertAgreement(t, 10)
	ids := f.ids(0)
	for k := 0; k < 10; k++ {
		if ids[k] != fmt.Sprintf("m%d", k) {
			t.Fatalf("FIFO violated: %v", ids)
		}
	}
}

func TestPaxosTOBNoProgressWithoutOmega(t *testing.T) {
	// An asynchronous run: Ω never stabilizes, so nothing is delivered —
	// strong operations would block forever (Theorem 3's premise).
	f := newPaxosFixture(t, 3, 3)
	f.tobs[0].Cast("a", nil)
	f.run(t)
	for i := range f.tobs {
		if len(f.got[i]) != 0 {
			t.Errorf("node %d delivered %v without a leader", i, f.got[i])
		}
	}
	// Stabilizing later (a stable run resumes) delivers the backlog: the
	// candidate pools retained the message.
	f.omega.Stabilize(f.peers, 2)
	f.run(t)
	f.assertAgreement(t, 1)
}

func TestPaxosTOBLeaderFailover(t *testing.T) {
	f := newPaxosFixture(t, 5, 4)
	f.omega.Stabilize(f.peers, 0)
	f.tobs[1].Cast("before", nil)
	f.run(t)
	f.net.Crash(0)
	f.omega.Stabilize(f.peers, 3)
	f.tobs[2].Cast("after", nil)
	f.run(t)
	// All correct nodes must deliver both messages in the same order.
	ref := f.ids(1)
	if len(ref) != 2 {
		t.Fatalf("node 1 delivered %v, want 2 messages", ref)
	}
	for i := 1; i < 5; i++ {
		ids := f.ids(i)
		if len(ids) != 2 || ids[0] != ref[0] || ids[1] != ref[1] {
			t.Fatalf("node %d delivered %v, want %v", i, ids, ref)
		}
	}
}

func TestPaxosTOBCouplingSurvivesOriginCrash(t *testing.T) {
	// The origin casts and crashes immediately; the forward reached at
	// least one correct node, whose relay must get it everywhere once a
	// leader exists (the paper's RB-coupling property).
	f := newPaxosFixture(t, 5, 5)
	f.tobs[4].Cast("orphan", nil)
	f.sched.RunFor(15) // let the forward reach some peers
	f.net.Crash(4)
	f.omega.Stabilize(f.peers[:4], 0)
	f.run(t)
	for i := 0; i < 4; i++ {
		ids := f.ids(i)
		if len(ids) != 1 || ids[0] != "orphan" {
			t.Fatalf("node %d delivered %v, want [orphan]", i, ids)
		}
	}
}

func TestPaxosTOBMinorityPartitionBlocksThenHeals(t *testing.T) {
	f := newPaxosFixture(t, 5, 6)
	f.omega.Stabilize(f.peers, 0)
	f.net.Partition([]simnet.NodeID{0, 1}, []simnet.NodeID{2, 3, 4})
	f.tobs[0].Cast("stuck", nil)
	f.sched.RunFor(2_000_000)
	for i := range f.tobs {
		if len(f.got[i]) != 0 {
			t.Errorf("node %d delivered %v across minority partition", i, f.got[i])
		}
	}
	f.net.Heal()
	f.omega.Stabilize(f.peers, 0) // re-kick leadership after heal
	f.run(t)
	f.assertAgreement(t, 1)
}

func TestPaxosTOBConcurrentLoad(t *testing.T) {
	f := newPaxosFixture(t, 4, 7)
	f.omega.Stabilize(f.peers, 0)
	r := rand.New(rand.NewSource(42))
	total := 0
	for round := 0; round < 10; round++ {
		for i := range f.tobs {
			if r.Intn(2) == 0 {
				f.tobs[i].Cast(fmt.Sprintf("n%d-r%d", i, round), nil)
				total++
			}
		}
		f.sched.RunFor(sim.Time(r.Intn(50)))
	}
	f.run(t)
	f.assertAgreement(t, total)
	// Per-origin FIFO across the whole run.
	for node := range f.tobs {
		lastRound := map[string]int{}
		for _, d := range f.got[node] {
			var origin string
			var round int
			fmt.Sscanf(d.id, "n%1s-r%d", &origin, &round)
			if prev, ok := lastRound[origin]; ok && round < prev {
				t.Fatalf("node %d FIFO violated for origin %s: %v", node, origin, f.ids(node))
			}
			lastRound[origin] = round
		}
	}
}

func TestPrimaryTOBTotalOrderAndFIFO(t *testing.T) {
	f := newPrimaryFixture(t, 3, 0)
	f.tobs[1].Cast("a", nil)
	f.tobs[1].Cast("b", nil)
	f.tobs[2].Cast("c", nil)
	f.run(t)
	f.assertAgreement(t, 3)
	// a must precede b (same origin).
	ids := f.ids(0)
	ai, bi := -1, -1
	for i, id := range ids {
		switch id {
		case "a":
			ai = i
		case "b":
			bi = i
		}
	}
	if ai > bi {
		t.Fatalf("FIFO violated: %v", ids)
	}
}

func TestPrimaryTOBPrimaryCastsToo(t *testing.T) {
	f := newPrimaryFixture(t, 3, 0)
	f.tobs[0].Cast("p", nil)
	f.run(t)
	f.assertAgreement(t, 1)
}

func TestPrimaryTOBPrimaryCrashHaltsCommit(t *testing.T) {
	// The original Bayou's deficiency (§2.1: "Obviously, this approach is
	// not fault-tolerant"): with the primary crashed nothing commits.
	f := newPrimaryFixture(t, 3, 0)
	f.net.Crash(0)
	f.tobs[1].Cast("lost", nil)
	f.run(t)
	for i := range f.tobs {
		if len(f.got[i]) != 0 {
			t.Errorf("node %d delivered %v with primary crashed", i, f.got[i])
		}
	}
}

func TestPaxosAndPrimaryAgreeOnSemantics(t *testing.T) {
	// Sanity for the E11 ablation: both TOBs deliver the same message set
	// (orders may differ between implementations, but each is total).
	px := newPaxosFixture(t, 3, 8)
	px.omega.Stabilize(px.peers, 0)
	pr := newPrimaryFixture(t, 3, 0)
	for k := 0; k < 5; k++ {
		id := fmt.Sprintf("m%d", k)
		px.tobs[k%3].Cast(id, nil)
		pr.tobs[k%3].Cast(id, nil)
	}
	px.run(t)
	pr.run(t)
	px.assertAgreement(t, 5)
	pr.assertAgreement(t, 5)
}

// TestPaxosTOBChurnProperty: random casts, partitions, heals and leader
// changes must never violate total order or per-origin FIFO, and after the
// final heal every message is delivered everywhere.
func TestPaxosTOBChurnProperty(t *testing.T) {
	f := func(seed int64, churnRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		f5 := newPaxosFixture(t, 5, seed)
		f5.omega.Stabilize(f5.peers, 0)
		rounds := int(churnRaw%6) + 2
		total := 0
		for round := 0; round < rounds; round++ {
			switch r.Intn(4) {
			case 0:
				f5.net.Partition(
					[]simnet.NodeID{0, 1, 2},
					[]simnet.NodeID{3, 4})
			case 1:
				f5.net.Heal()
			case 2:
				f5.omega.Stabilize(f5.peers, simnet.NodeID(r.Intn(5)))
			}
			for i := range f5.tobs {
				if r.Intn(2) == 0 {
					f5.tobs[i].Cast(fmt.Sprintf("s%d-n%d-r%d", seed, i, round), nil)
					total++
				}
			}
			f5.sched.RunFor(sim.Time(r.Intn(300)))
		}
		f5.net.Heal()
		f5.omega.Stabilize(f5.peers, 0)
		if _, ok := f5.sched.Run(10_000_000); !ok {
			t.Logf("seed %d: no quiescence", seed)
			return false
		}
		ref := f5.ids(0)
		if len(ref) != total {
			t.Logf("seed %d: node 0 delivered %d of %d", seed, len(ref), total)
			return false
		}
		for i := 1; i < 5; i++ {
			ids := f5.ids(i)
			if len(ids) != total {
				t.Logf("seed %d: node %d delivered %d of %d", seed, i, len(ids), total)
				return false
			}
			for k := range ref {
				if ids[k] != ref[k] {
					t.Logf("seed %d: node %d diverges at %d", seed, i, k)
					return false
				}
			}
		}
		// Per-origin FIFO: rounds per origin must be non-decreasing.
		lastRound := map[string]int{}
		for _, id := range ref {
			var s int64
			var origin, round int
			fmt.Sscanf(id, "s%d-n%d-r%d", &s, &origin, &round)
			key := fmt.Sprint(origin)
			if prev, ok := lastRound[key]; ok && round < prev {
				t.Logf("seed %d: FIFO violated for origin %d", seed, origin)
				return false
			}
			lastRound[key] = round
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCheckpointDefersWhileGateHoldsHoles pins the safety rule of checkpoint
// capture: while the FIFO gate buffers a decided-but-undelivered message (a
// per-origin hole), SetCheckpoint must keep the previous record and replay
// log in force — a record captured in that window would cover the held
// message with neither the image (it is undelivered) nor the replay (its
// slot would fall below the truncation), losing it for every receiver.
func TestCheckpointDefersWhileGateHoldsHoles(t *testing.T) {
	gate := newFifoGate(func(int64, Message) {})
	gate.offer(Message{ID: "o1#1", Origin: 1, Seq: 1, Payload: "a"})
	// Seq 3 decided while seq 2 is still undecided: a FIFO hole.
	gate.offer(Message{ID: "o1#3", Origin: 1, Seq: 3, Payload: "c"})
	if gate.nDelivered != 1 || !gate.holes() {
		t.Fatalf("fixture: delivered %d, holes %v; want 1 with a hole", gate.nDelivered, gate.holes())
	}

	p := &Primary{id: 0, primary: 0, gate: gate, stamped: map[string]bool{}, pending: map[int64]Message{}, nextCommit: 1}
	p.log = []Message{{ID: "o1#1", Origin: 1, Seq: 1}}
	p.commitNo = 1
	if err := p.SetCheckpoint(1, "image"); err != nil {
		t.Fatal(err)
	}
	if p.ckpt != nil || p.logBase != 0 || len(p.log) != 1 {
		t.Fatalf("capture not deferred: ckpt %v, logBase %d, log %d", p.ckpt, p.logBase, len(p.log))
	}

	// The hole fills; the same checkpoint now captures and truncates. The
	// fill delivers seq 2 and the buffered seq 3, so the boundary moves.
	gate.offer(Message{ID: "o1#2", Origin: 1, Seq: 2, Payload: "b"})
	if gate.holes() || gate.nDelivered != 3 {
		t.Fatalf("hole did not drain: delivered %d", gate.nDelivered)
	}
	p.log = append(p.log, Message{ID: "o1#2", Origin: 1, Seq: 2}, Message{ID: "o1#3", Origin: 1, Seq: 3})
	p.commitNo = 3
	if err := p.SetCheckpoint(3, "image2"); err != nil {
		t.Fatal(err)
	}
	if p.ckpt == nil || p.ckpt.UpTo != 3 || p.logBase != 3 || len(p.log) != 0 {
		t.Fatalf("capture after drain: ckpt %+v, logBase %d, log %d", p.ckpt, p.logBase, len(p.log))
	}
	if p.ckpt.NextSeq[1] != 4 {
		t.Fatalf("captured cursor %d, want 4", p.ckpt.NextSeq[1])
	}
}

// TestStaleSeqDropsAfterCompaction pins the keystone of dedup-set
// truncation: after the gate compacts its id filter, a replayed message
// below the per-origin cursor must still be dropped, while genuinely new
// sequences pass.
func TestStaleSeqDropsAfterCompaction(t *testing.T) {
	var got []string
	gate := newFifoGate(func(_ int64, m Message) { got = append(got, m.ID) })
	gate.offer(Message{ID: "o1#1", Origin: 1, Seq: 1})
	gate.offer(Message{ID: "o1#2", Origin: 1, Seq: 2})
	gate.compact()
	if len(gate.seen) != 0 {
		t.Fatalf("compact kept %d delivered ids", len(gate.seen))
	}
	gate.offer(Message{ID: "o1#1", Origin: 1, Seq: 1}) // replay of truncated history
	gate.offer(Message{ID: "o1#3", Origin: 1, Seq: 3}) // fresh
	want := []string{"o1#1", "o1#2", "o1#3"}
	if len(got) != len(want) {
		t.Fatalf("deliveries %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deliveries %v, want %v", got, want)
		}
	}
	if gate.nDelivered != 3 {
		t.Fatalf("nDelivered %d, want 3 (replay dropped)", gate.nDelivered)
	}
}
