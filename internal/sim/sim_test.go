package sim

import (
	"testing"
	"testing/quick"
)

func TestOrderingByTime(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	if _, ok := s.Run(0); !ok {
		t.Fatal("run did not quiesce")
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", got)
	}
	if s.Now() != 30 {
		t.Errorf("now = %d, want 30", s.Now())
	}
}

func TestFIFOTiebreakAtSameTime(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events must run FIFO; got %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var got []string
	s.At(10, func() {
		got = append(got, "a")
		s.After(5, func() { got = append(got, "c") })
		s.After(0, func() { got = append(got, "b") })
	})
	s.Run(0)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPastEventClamped(t *testing.T) {
	s := New(1)
	s.At(100, func() {
		s.At(50, func() {
			if s.Now() != 100 {
				t.Errorf("past event ran at %d, want clamped to 100", s.Now())
			}
		})
	})
	s.Run(0)
}

func TestRunBudget(t *testing.T) {
	s := New(1)
	// A self-perpetuating event chain must be stopped by the budget.
	var ping func()
	ping = func() { s.After(1, ping) }
	s.After(1, ping)
	processed, ok := s.Run(100)
	if ok {
		t.Error("livelocked run must report ok=false")
	}
	if processed != 100 {
		t.Errorf("processed = %d, want 100", processed)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var got []int
	s.At(10, func() { got = append(got, 10) })
	s.At(20, func() { got = append(got, 20) })
	s.At(30, func() { got = append(got, 30) })
	n := s.RunUntil(20)
	if n != 2 || len(got) != 2 {
		t.Errorf("RunUntil(20) processed %d events (%v), want 2", n, got)
	}
	if s.Now() != 20 {
		t.Errorf("now = %d, want 20", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
}

func TestDeterminismProperty(t *testing.T) {
	// Property: two schedulers with the same seed and schedule process
	// events in the same order and draw the same random numbers.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		run := func() []int64 {
			s := New(seed)
			var trace []int64
			for i := 0; i < n; i++ {
				d := Time(s.Rand().Intn(100))
				s.After(d, func() { trace = append(trace, int64(s.Now())+s.Rand().Int63n(10)) })
			}
			s.Run(0)
			return trace
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStepsCounter(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		s.After(Time(i), func() {})
	}
	s.Run(0)
	if s.Steps() != 5 {
		t.Errorf("steps = %d, want 5", s.Steps())
	}
}
