// Package sim is the deterministic discrete-event simulation substrate on
// which every experiment in this repository runs. It implements the system
// model of Appendix A.2.1 of the paper literally: replicas are state automata
// that execute steps in reaction to events; an execution is a sequence of
// events; an execution is fair when every enabled event is eventually
// executed. The scheduler provides:
//
//   - a virtual clock (Time) that only advances when events are processed,
//   - a priority queue of events ordered by (time, insertion sequence) so
//     that runs are bit-for-bit reproducible for a given seed and schedule,
//   - a seeded random source for randomized workloads, and
//   - run-to-quiescence execution with a step budget that turns accidental
//     livelock into a test failure instead of a hang.
//
// The paper's asynchronous versus stable runs are modelled above this layer
// (by partitions and the failure-detector oracle), not by nondeterminism
// here: determinism is what makes the Figure 1/2 schedules and the Theorem 1
// construction reproducible.
package sim

import (
	"container/heap"
	"math/rand"
)

// Time is virtual time in abstract ticks. Experiments use milliseconds-like
// magnitudes but nothing depends on the unit.
type Time int64

// Event is a scheduled callback.
type event struct {
	at  Time
	seq int64 // insertion order; total tiebreak => deterministic, fair (FIFO)
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is the discrete-event scheduler. The zero value is not usable;
// construct with New. Schedulers are not safe for concurrent use: the whole
// simulation is single-threaded by design (determinism).
type Scheduler struct {
	now   Time
	seq   int64
	queue eventHeap
	rng   *rand.Rand
	steps int64
}

// New returns a scheduler whose random source is seeded with seed.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Steps returns the number of events processed so far.
func (s *Scheduler) Steps() int64 { return s.steps }

// Pending returns the number of events waiting in the queue.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn at absolute virtual time t. Times in the past are clamped
// to the present (the event runs after already-queued events at Now).
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d ticks from now.
func (s *Scheduler) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Step processes the single earliest event. It reports false when the queue
// is empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	s.steps++
	e.fn()
	return true
}

// Run processes events until the queue is empty and returns the number of
// events processed. maxSteps bounds the run: a non-positive budget means
// "effectively unbounded" (2^62). Run reports ok=false when the budget was
// exhausted before quiescence — protocol livelock in tests shows up as a
// clean failure, not a hang.
func (s *Scheduler) Run(maxSteps int64) (processed int64, ok bool) {
	if maxSteps <= 0 {
		maxSteps = 1 << 62
	}
	for processed < maxSteps {
		if !s.Step() {
			return processed, true
		}
		processed++
	}
	return processed, len(s.queue) == 0
}

// RunUntil processes events with time ≤ t (leaving later events queued) and
// advances the clock to t. It returns the number of events processed.
func (s *Scheduler) RunUntil(t Time) int64 {
	var processed int64
	for len(s.queue) > 0 && s.queue[0].at <= t {
		s.Step()
		processed++
	}
	if s.now < t {
		s.now = t
	}
	return processed
}

// RunFor processes events within the next d ticks.
func (s *Scheduler) RunFor(d Time) int64 { return s.RunUntil(s.now + d) }
