package stateobj

import (
	"testing"

	"bayou/internal/spec"
	"bayou/internal/txn"
)

// A multi-op transaction executes as ONE undo entry — the undo span: a
// single rollback boundary covering every step, so rolling the unit back is
// one Rollback call and no interleaved foreign request can sit between its
// steps in the trace.
func TestTxnExecutesAsOneUndoSpan(t *testing.T) {
	s := New()
	if _, err := s.Execute("seed", spec.Deposit("a", 100)); err != nil {
		t.Fatal(err)
	}

	transfer := txn.New().
		Require(spec.Withdraw("a", 80)).
		Do(spec.Deposit("b", 80)).
		Txn()
	v, err := s.Execute("t1", transfer)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := txn.Results(v); !ok {
		t.Fatalf("transfer response %v; want result list", v)
	}
	if s.Depth() != 2 {
		t.Fatalf("Depth = %d after seed+txn; want 2 (txn is one trace entry)", s.Depth())
	}
	if got := s.Read("acct/a"); !spec.Equal(got, int64(20)) {
		t.Fatalf("a = %v; want 20", got)
	}
	if got := s.Read("acct/b"); !spec.Equal(got, int64(80)) {
		t.Fatalf("b = %v; want 80", got)
	}

	// One Rollback revokes the whole unit: both registers revert together.
	if err := s.Rollback("t1"); err != nil {
		t.Fatal(err)
	}
	if got := s.Read("acct/a"); !spec.Equal(got, int64(100)) {
		t.Fatalf("a = %v after span rollback; want 100", got)
	}
	if got := s.Read("acct/b"); got != nil {
		t.Fatalf("b = %v after span rollback; want unset", got)
	}

	// Re-execution replays every step (the rebase cycle).
	if _, err := s.Execute("t1", transfer); err != nil {
		t.Fatal(err)
	}
	if got := s.Read("acct/b"); !spec.Equal(got, int64(80)) {
		t.Fatalf("b = %v after re-execute; want 80", got)
	}
}

// An aborted transaction writes nothing, so its undo span is empty: the
// entry holds its place in the trace but rolling it back is a no-op on the
// database.
func TestAbortedTxnLeavesEmptySpan(t *testing.T) {
	s := New()
	if _, err := s.Execute("seed", spec.Deposit("a", 10)); err != nil {
		t.Fatal(err)
	}
	transfer := txn.New().
		Require(spec.Withdraw("a", 80)).
		Do(spec.Deposit("b", 80)).
		Txn()
	v, err := s.Execute("t1", transfer)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.IsAborted(v) {
		t.Fatalf("response %v; want abort marker", v)
	}
	if got := s.Read("acct/a"); !spec.Equal(got, int64(10)) {
		t.Fatalf("a = %v; aborted txn touched the store", got)
	}
	if s.Depth() != 2 {
		t.Fatalf("Depth = %d; aborted txn must still occupy its trace slot", s.Depth())
	}
	if err := s.Rollback("t1"); err != nil {
		t.Fatal(err)
	}
	if got := s.Read("acct/a"); !spec.Equal(got, int64(10)) {
		t.Fatalf("a = %v after rolling back an empty span; want 10", got)
	}
}

// Checkpoint anchors compose with spans: rewinding past a txn removes the
// whole unit's effects at once, never a partial step.
func TestCheckpointRewindsWholeSpan(t *testing.T) {
	s := New()
	if _, err := s.Execute("seed", spec.Deposit("a", 100)); err != nil {
		t.Fatal(err)
	}
	transfer := txn.New().
		Require(spec.Withdraw("a", 30)).
		Do(spec.Deposit("b", 30)).
		Txn()
	if _, err := s.Execute("t1", transfer); err != nil {
		t.Fatal(err)
	}
	img, err := s.Checkpoint(1) // anchor before the txn
	if err != nil {
		t.Fatal(err)
	}
	if got := img["acct/a"]; !spec.Equal(got, int64(100)) {
		t.Fatalf("image a = %v; want pre-txn 100", got)
	}
	if _, ok := img["acct/b"]; ok {
		t.Fatalf("image holds b = %v; a partial txn leaked into the anchor", img["acct/b"])
	}
}
