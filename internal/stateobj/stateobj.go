// Package stateobj implements the StateObject of Algorithm 3 in the paper: a
// register database together with an undo log that can revoke the effects of
// any executed request, enabling the rollback/re-execute cycle at the heart
// of Bayou (Algorithm 1 lines 41–55).
//
// The state encapsulates the result of sequentially executing the *current
// trace* α — the list of executed-and-not-rolled-back requests — and the
// implementation guarantees that responses are consistent with a
// deterministic serial execution of α (the requirement of Appendix A.2.2).
// Rollbacks must occur in reverse execution order; the undo log is therefore
// kept as a stack and misuse is reported as an error rather than silently
// corrupting state.
package stateobj

import (
	"errors"
	"fmt"

	"bayou/internal/spec"
)

// Sentinel errors returned by State methods.
var (
	// ErrNotExecuted reports a rollback of a request that is not the most
	// recently executed live request.
	ErrNotExecuted = errors.New("stateobj: request is not at the top of the undo stack")
	// ErrDuplicateExecute reports executing a request id that is already
	// live (executed and not rolled back).
	ErrDuplicateExecute = errors.New("stateobj: request already executed and not rolled back")
)

// ErrReleased reports a rollback of a request whose undo entry was released
// by Release (it lies below the commit watermark and can never legally be
// rolled back).
var ErrReleased = errors.New("stateobj: undo entry was released by compaction")

// undoPair records the value one written register held immediately before
// the request's first write to it (nil meaning "unset").
type undoPair struct {
	reg string
	old spec.Value
}

// undoEntry records, for one executed request, the pre-images of every
// register it wrote (Algorithm 3 lines 9–12). Operations touch one or two
// registers, so the undo record is a tiny slice rather than a map — one
// allocation per updating execute, none for read-only ones. A released
// entry keeps its place in the trace but has dropped its undo record.
type undoEntry struct {
	id       string
	undo     []undoPair
	released bool
}

// State is the StateObject: a register store plus an undo stack. The zero
// value is not usable; construct with New.
type State struct {
	db    map[string]spec.Value
	stack []undoEntry
	live  map[string]int // request id -> index in stack
	tx    undoTx         // reused across executes; its undo record is handed off

	executes  int64 // total Execute calls, for cost accounting
	rollbacks int64 // total Rollback calls
}

// New returns an empty state.
func New() *State {
	s := &State{
		db:   make(map[string]spec.Value),
		live: make(map[string]int),
	}
	s.tx.db = s.db
	return s
}

// FromImage returns a state whose database is restored from a checkpoint
// image and whose trace is empty: the anchor a recovering replica loads
// before executing only the committed suffix past the checkpoint. The image
// is deep-copied (spec.Restore) and stays reusable.
func FromImage(img map[string]spec.Value) *State {
	s := &State{}
	s.RestoreFrom(img)
	return s
}

// RestoreFrom resets the state in place to a checkpoint image: the database
// becomes a deep copy of img and the trace empties. Everything previously
// held is released.
func (s *State) RestoreFrom(img map[string]spec.Value) {
	s.db = spec.Restore(img)
	s.stack = nil
	s.live = make(map[string]int)
	s.tx = undoTx{db: s.db}
}

// undoTx is the Tx handed to operations: reads hit the database, writes
// record the overwritten value the first time each register is touched
// (Algorithm 3 lines 9–12).
type undoTx struct {
	db   map[string]spec.Value
	undo []undoPair
}

func (t *undoTx) Read(id string) spec.Value { return spec.Clone(t.db[id]) }

func (t *undoTx) Write(id string, v spec.Value) {
	saved := false
	for i := range t.undo {
		if t.undo[i].reg == id {
			saved = true
			break
		}
	}
	if !saved {
		t.undo = append(t.undo, undoPair{reg: id, old: t.db[id]})
	}
	t.db[id] = spec.Clone(v)
}

// Execute runs op under the request id, records an undo entry, and returns
// the response (Algorithm 3, function execute). The id must not currently be
// live: a request may only be re-executed after it was rolled back.
func (s *State) Execute(id string, op spec.Op) (spec.Value, error) {
	if _, ok := s.live[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateExecute, id)
	}
	s.tx.undo = nil // ownership of the previous record moved to its entry
	resp := op.Apply(&s.tx)
	s.live[id] = len(s.stack)
	s.stack = append(s.stack, undoEntry{id: id, undo: s.tx.undo})
	s.executes++
	return resp, nil
}

// Rollback revokes the effects of the request id (Algorithm 3, function
// rollback). Rollbacks must be issued in reverse execution order, so id must
// be the most recently executed live request.
func (s *State) Rollback(id string) error {
	n := len(s.stack)
	if n == 0 || s.stack[n-1].id != id {
		return fmt.Errorf("%w: %s", ErrNotExecuted, id)
	}
	if s.stack[n-1].released {
		return fmt.Errorf("%w: %s", ErrReleased, id)
	}
	entry := s.stack[n-1]
	for _, p := range entry.undo {
		if p.old == nil {
			delete(s.db, p.reg)
		} else {
			s.db[p.reg] = p.old
		}
	}
	s.stack = s.stack[:n-1]
	delete(s.live, id)
	s.rollbacks++
	return nil
}

// Release drops the undo maps of the oldest n live requests — Bayou's log
// compaction: once a prefix of the trace is committed it can never be rolled
// back, so its undo data is dead weight. It returns the number of entries
// newly released. The trace itself (request ids, order) is retained.
func (s *State) Release(n int) int {
	released := 0
	for i := 0; i < n && i < len(s.stack); i++ {
		if s.stack[i].released {
			continue
		}
		s.stack[i].released = true
		s.stack[i].undo = nil
		released++
	}
	return released
}

// ReleasedPrefix returns the length of the leading run of released entries —
// the part of the trace whose pre-images are gone, below which no checkpoint
// image can be reconstructed anymore.
func (s *State) ReleasedPrefix() int {
	n := 0
	for n < len(s.stack) && s.stack[n].released {
		n++
	}
	return n
}

// Checkpoint reconstructs the database image as of the first n trace entries
// — the state a fresh store would hold after executing exactly stack[0..n) —
// by rewinding the undo records of every later entry onto a deep copy of the
// current database. Entries at or above n must still hold their undo data
// (they are above the release watermark whenever n ≥ ReleasedPrefix()).
// Cost: O(|db| + |stack|−n), independent of how long the prefix is.
func (s *State) Checkpoint(n int) (map[string]spec.Value, error) {
	if n < 0 || n > len(s.stack) {
		return nil, fmt.Errorf("stateobj: checkpoint anchor %d outside trace of length %d", n, len(s.stack))
	}
	for i := n; i < len(s.stack); i++ {
		if s.stack[i].released {
			return nil, fmt.Errorf("%w: cannot rewind %s to anchor a checkpoint at %d", ErrReleased, s.stack[i].id, n)
		}
	}
	img := spec.Checkpoint(s.db)
	for i := len(s.stack) - 1; i >= n; i-- {
		for _, p := range s.stack[i].undo {
			if p.old == nil {
				delete(img, p.reg)
			} else {
				img[p.reg] = spec.Clone(p.old)
			}
		}
	}
	return img, nil
}

// Truncate drops the first n trace entries for good — the log-truncation
// step after their image has been checkpointed. Unlike Release (which only
// nils the undo records in place), Truncate actually frees the prefix: the
// stack is copied down into a right-sized array and the live index is
// rebuilt, so a long-lived state's footprint is bounded by the suffix since
// the last checkpoint, not by history.
func (s *State) Truncate(n int) error {
	if n < 0 || n > len(s.stack) {
		return fmt.Errorf("stateobj: truncate %d outside trace of length %d", n, len(s.stack))
	}
	if n == 0 {
		return nil
	}
	fresh := make([]undoEntry, len(s.stack)-n)
	copy(fresh, s.stack[n:])
	s.stack = fresh
	live := make(map[string]int, len(fresh))
	for i, e := range fresh {
		live[e.id] = i
	}
	s.live = live
	return nil
}

// LiveUndoEntries returns the number of stack entries still holding undo
// data (observability for the compaction tests and stats).
func (s *State) LiveUndoEntries() int {
	live := 0
	for _, e := range s.stack {
		if !e.released {
			live++
		}
	}
	return live
}

// Trace returns the ids of the current trace α: the executed and
// not-rolled-back requests in execution order.
func (s *State) Trace() []string {
	out := make([]string, len(s.stack))
	for i, e := range s.stack {
		out[i] = e.id
	}
	return out
}

// Depth returns the number of live (executed, not rolled back) requests.
func (s *State) Depth() int { return len(s.stack) }

// Read returns the current value of a register, for read-only peeking by
// drivers and tests; it does not touch the undo log.
func (s *State) Read(id string) spec.Value { return spec.Clone(s.db[id]) }

// Executes returns the total number of Execute calls (cost accounting for
// the rollback-cost experiments).
func (s *State) Executes() int64 { return s.executes }

// Rollbacks returns the total number of Rollback calls.
func (s *State) Rollbacks() int64 { return s.rollbacks }

// Stats bundles the cost counters.
type Stats struct {
	Executes  int64
	Rollbacks int64
}

// Stats returns the current cost counters.
func (s *State) Stats() Stats {
	return Stats{Executes: s.executes, Rollbacks: s.rollbacks}
}
