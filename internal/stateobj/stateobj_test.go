package stateobj

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"bayou/internal/spec"
)

func mustExec(t *testing.T, s *State, id string, op spec.Op) spec.Value {
	t.Helper()
	v, err := s.Execute(id, op)
	if err != nil {
		t.Fatalf("Execute(%s): %v", id, err)
	}
	return v
}

func TestExecuteAndRead(t *testing.T) {
	s := New()
	if got := mustExec(t, s, "r1", spec.Append("a")); !spec.Equal(got, "a") {
		t.Errorf("append(a) = %v, want a", got)
	}
	if got := mustExec(t, s, "r2", spec.Append("x")); !spec.Equal(got, "ax") {
		t.Errorf("append(x) = %v, want ax", got)
	}
	if got := s.Read(spec.DefaultListID); !spec.Equal(got, []spec.Value{"a", "x"}) {
		t.Errorf("db list = %v", got)
	}
}

func TestRollbackRestores(t *testing.T) {
	s := New()
	mustExec(t, s, "r1", spec.Append("a"))
	mustExec(t, s, "r2", spec.Duplicate())
	mustExec(t, s, "r3", spec.Append("x"))
	if err := s.Rollback("r3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rollback("r2"); err != nil {
		t.Fatal(err)
	}
	if got := s.Read(spec.DefaultListID); !spec.Equal(got, []spec.Value{"a"}) {
		t.Errorf("after rollbacks list = %v, want [a]", got)
	}
	if got := s.Trace(); len(got) != 1 || got[0] != "r1" {
		t.Errorf("trace = %v, want [r1]", got)
	}
}

func TestRollbackToEmptyRemovesRegisters(t *testing.T) {
	s := New()
	mustExec(t, s, "r1", spec.Append("a"))
	if err := s.Rollback("r1"); err != nil {
		t.Fatal(err)
	}
	if got := s.Read(spec.DefaultListID); got != nil {
		t.Errorf("register must be unset after full rollback, got %v", got)
	}
	if s.Depth() != 0 {
		t.Errorf("depth = %d, want 0", s.Depth())
	}
}

func TestRollbackOrderEnforced(t *testing.T) {
	s := New()
	mustExec(t, s, "r1", spec.Append("a"))
	mustExec(t, s, "r2", spec.Append("b"))
	if err := s.Rollback("r1"); !errors.Is(err, ErrNotExecuted) {
		t.Errorf("out-of-order rollback error = %v, want ErrNotExecuted", err)
	}
	if err := s.Rollback("r3"); !errors.Is(err, ErrNotExecuted) {
		t.Errorf("unknown-request rollback error = %v, want ErrNotExecuted", err)
	}
}

func TestDuplicateExecuteRejected(t *testing.T) {
	s := New()
	mustExec(t, s, "r1", spec.Append("a"))
	if _, err := s.Execute("r1", spec.Append("b")); !errors.Is(err, ErrDuplicateExecute) {
		t.Errorf("duplicate execute error = %v, want ErrDuplicateExecute", err)
	}
	// After rollback the id may be executed again (re-execution cycle).
	if err := s.Rollback("r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("r1", spec.Append("b")); err != nil {
		t.Errorf("re-execute after rollback: %v", err)
	}
}

func TestReexecutionAfterReorder(t *testing.T) {
	// The Figure 1 pattern: execute duplicate() and append(x) tentatively,
	// then roll both back and re-execute in committed order.
	s := New()
	mustExec(t, s, "a", spec.Append("a"))
	mustExec(t, s, "dup", spec.Duplicate())
	got := mustExec(t, s, "x", spec.Append("x"))
	if !spec.Equal(got, "aax") {
		t.Fatalf("tentative append(x) = %v, want aax", got)
	}
	for _, id := range []string{"x", "dup"} {
		if err := s.Rollback(id); err != nil {
			t.Fatal(err)
		}
	}
	got = mustExec(t, s, "x", spec.Append("x"))
	if !spec.Equal(got, "ax") {
		t.Fatalf("committed append(x) = %v, want ax", got)
	}
	got = mustExec(t, s, "dup", spec.Duplicate())
	if !spec.Equal(got, "axax") {
		t.Fatalf("committed duplicate() = %v, want axax", got)
	}
}

func TestMultiRegisterUndo(t *testing.T) {
	s := New()
	mustExec(t, s, "d1", spec.Deposit("alice", 100))
	mustExec(t, s, "d2", spec.Deposit("bob", 10))
	mustExec(t, s, "t", spec.Transfer("alice", "bob", 40))
	if got := mustExec(t, s, "b1", spec.Balance("bob")); !spec.Equal(got, int64(50)) {
		t.Fatalf("bob balance = %v, want 50", got)
	}
	if err := s.Rollback("b1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rollback("t"); err != nil {
		t.Fatal(err)
	}
	bal, err := s.Execute("b2", spec.Balance("alice"))
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Equal(bal, int64(100)) {
		t.Errorf("alice balance after transfer rollback = %v, want 100", bal)
	}
}

func TestStatsCounters(t *testing.T) {
	s := New()
	mustExec(t, s, "r1", spec.Append("a"))
	mustExec(t, s, "r2", spec.Append("b"))
	if err := s.Rollback("r2"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Executes != 2 || st.Rollbacks != 1 {
		t.Errorf("stats = %+v, want {2 1}", st)
	}
}

// TestTraceEquivalenceProperty is the core Appendix A.2.2 requirement: the
// state after any interleaving of executes and (legal) rollbacks equals the
// state of a plain sequential replay of the current trace.
func TestTraceEquivalenceProperty(t *testing.T) {
	ops := func(r *rand.Rand) spec.Op {
		switch r.Intn(6) {
		case 0:
			return spec.Append([]string{"a", "b", "c"}[r.Intn(3)])
		case 1:
			return spec.Duplicate()
		case 2:
			return spec.Inc("c", int64(r.Intn(7))-3)
		case 3:
			return spec.Put("k", int64(r.Intn(5)))
		case 4:
			return spec.Deposit("acct", int64(r.Intn(9)))
		default:
			return spec.Withdraw("acct", int64(r.Intn(9)))
		}
	}
	f := func(seed int64, stepsRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		steps := int(stepsRaw%60) + 5
		s := New()
		var trace []spec.Op
		byID := map[string]spec.Op{}
		next := 0
		for i := 0; i < steps; i++ {
			if s.Depth() > 0 && r.Intn(3) == 0 {
				ids := s.Trace()
				top := ids[len(ids)-1]
				if err := s.Rollback(top); err != nil {
					return false
				}
				trace = trace[:len(trace)-1]
				continue
			}
			id := fmt.Sprintf("req%d", next)
			next++
			op := ops(r)
			byID[id] = op
			if _, err := s.Execute(id, op); err != nil {
				return false
			}
			trace = append(trace, op)
		}
		// The database must match a sequential replay of the trace.
		ref := spec.NewMapTx()
		for _, op := range trace {
			op.Apply(ref)
		}
		for _, key := range []string{spec.DefaultListID, "c", "kv/k", "acct/acct"} {
			if !spec.Equal(s.Read(key), ref.Read(key)) {
				return false
			}
		}
		// And the reported trace ids must match what we executed live.
		got := s.Trace()
		if len(got) != len(trace) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestReleaseDropsUndoData(t *testing.T) {
	s := New()
	mustExec(t, s, "r1", spec.Append("a"))
	mustExec(t, s, "r2", spec.Append("b"))
	mustExec(t, s, "r3", spec.Append("c"))
	if got := s.Release(2); got != 2 {
		t.Fatalf("Release = %d, want 2", got)
	}
	if got := s.LiveUndoEntries(); got != 1 {
		t.Fatalf("live entries = %d, want 1", got)
	}
	// Releasing again is idempotent.
	if got := s.Release(2); got != 0 {
		t.Fatalf("second Release = %d, want 0", got)
	}
	// The unreleased top can still roll back; the trace is intact.
	if err := s.Rollback("r3"); err != nil {
		t.Fatal(err)
	}
	if got := s.Trace(); len(got) != 2 || got[0] != "r1" || got[1] != "r2" {
		t.Fatalf("trace = %v", got)
	}
	if got := s.Read(spec.DefaultListID); !spec.Equal(got, []spec.Value{"a", "b"}) {
		t.Fatalf("state = %v", got)
	}
}

func TestRollbackOfReleasedEntryRejected(t *testing.T) {
	s := New()
	mustExec(t, s, "r1", spec.Append("a"))
	s.Release(1)
	if err := s.Rollback("r1"); !errors.Is(err, ErrReleased) {
		t.Errorf("rollback of released entry = %v, want ErrReleased", err)
	}
}

func TestExecutionContinuesAfterRelease(t *testing.T) {
	s := New()
	mustExec(t, s, "r1", spec.Append("a"))
	s.Release(1)
	got := mustExec(t, s, "r2", spec.Append("b"))
	if !spec.Equal(got, "ab") {
		t.Fatalf("append after release = %v, want ab", got)
	}
	if err := s.Rollback("r2"); err != nil {
		t.Fatal(err)
	}
	if got := s.Read(spec.DefaultListID); !spec.Equal(got, []spec.Value{"a"}) {
		t.Fatalf("state = %v", got)
	}
}

func TestCheckpointImageAnchors(t *testing.T) {
	s := New()
	mustExec(t, s, "r1", spec.Append("a"))
	mustExec(t, s, "r2", spec.Append("b"))
	mustExec(t, s, "r3", spec.Append("c"))

	// The image at anchor 2 must be the state after r1·r2 only, while the
	// live db keeps all three.
	img, err := s.Checkpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	re := FromImage(img)
	if got := re.Read(spec.DefaultListID); !spec.Equal(got, []spec.Value{"a", "b"}) {
		t.Fatalf("image state = %v, want [a b]", got)
	}
	if got := s.Read(spec.DefaultListID); !spec.Equal(got, []spec.Value{"a", "b", "c"}) {
		t.Fatalf("live state disturbed: %v", got)
	}
	// An anchor of 0 rewinds to empty; full-length is a plain copy.
	img0, err := s.Checkpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(img0) != 0 {
		t.Fatalf("image at 0 = %v, want empty", img0)
	}
	img3, err := s.Checkpoint(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := FromImage(img3).Read(spec.DefaultListID); !spec.Equal(got, []spec.Value{"a", "b", "c"}) {
		t.Fatalf("full image = %v", got)
	}
	// Rewinding across a released entry is impossible.
	s.Release(2)
	if _, err := s.Checkpoint(1); !errors.Is(err, ErrReleased) {
		t.Fatalf("checkpoint below the release watermark = %v, want ErrReleased", err)
	}
	if _, err := s.Checkpoint(2); err != nil {
		t.Fatalf("checkpoint at the release watermark: %v", err)
	}
	if got := s.ReleasedPrefix(); got != 2 {
		t.Fatalf("ReleasedPrefix = %d, want 2", got)
	}
}

func TestTruncateFreesPrefixAndRebuildsIndex(t *testing.T) {
	s := New()
	mustExec(t, s, "r1", spec.Append("a"))
	mustExec(t, s, "r2", spec.Append("b"))
	mustExec(t, s, "r3", spec.Append("c"))
	if err := s.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if got := s.Trace(); len(got) != 1 || got[0] != "r3" {
		t.Fatalf("trace after truncate = %v, want [r3]", got)
	}
	// The surviving suffix stays executable and rollback-able, and the
	// truncated ids are free for reuse (a re-delivered request past a
	// restore executes under its old id).
	if err := s.Rollback("r3"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "r1", spec.Append("z"))
	if got := s.Read(spec.DefaultListID); !spec.Equal(got, []spec.Value{"a", "b", "z"}) {
		t.Fatalf("state = %v", got)
	}
	if err := s.Truncate(99); err == nil {
		t.Fatal("truncate beyond the trace accepted")
	}
}

func TestFromImageIsDetached(t *testing.T) {
	img := map[string]spec.Value{"k": []spec.Value{"x"}}
	s := FromImage(img)
	mustExec(t, s, "r1", spec.Put("k", "y"))
	if !spec.Equal(img["k"], []spec.Value{"x"}) {
		t.Fatalf("image mutated through the restored state: %v", img["k"])
	}
}
