package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EffectsHygiene enforces the usage rules of the APIs whose results carry
// protocol outcomes:
//
//  1. calls that fill an Effects accumulator (core.Effects, filled by
//     InvokeInto/RBDeliverBatch/TOBDeliverBatch/DrainInto) return results
//     (a Req, a step count, an error) that must not be discarded — an
//     ignored error silently drops protocol effects;
//  2. an accumulator reused across loop iterations must be Reset (or
//     reassigned, e.g. from an EffectsPool) inside the loop, otherwise
//     effects from iteration N are re-routed on iteration N+1;
//  3. the result of Session.Txn/TxnAt must not be discarded: the returned
//     Call is the only place the transaction's abort verdict surfaces — a
//     dropped Call is an unchecked abort (the unit may have been revoked
//     at its final position with none of its writes surviving).
//
// The Effects check is type-driven: an "Into-style call" is any module
// function with a *core.Effects parameter, so new batch entry points
// inherit the rules without touching the analyzer. The txn check matches
// methods named Txn/TxnAt on the façade Session type.
var EffectsHygiene = &Analyzer{
	Name: "effectshygiene",
	Doc:  "Effects accumulators must be Reset before reuse; batch-call and Session.Txn results must not be discarded",
	Run:  runEffectsHygiene,
}

// isEffectsType reports whether t is core.Effects or *core.Effects.
func isEffectsType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Effects" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "core" || len(path) > 5 && path[len(path)-5:] == "/core"
}

// intoCallEffectsArg returns the argument expression bound to a
// *core.Effects parameter of call's static callee, or nil if the call is
// not Into-style. Effects.Reset itself (pointer receiver, no Effects
// parameter) does not match.
func (p *Pass) intoCallEffectsArg(call *ast.CallExpr) ast.Expr {
	fn := p.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Variadic() {
		return nil
	}
	params := sig.Params()
	for i := 0; i < params.Len() && i < len(call.Args); i++ {
		if _, isPtr := params.At(i).Type().(*types.Pointer); isPtr && isEffectsType(params.At(i).Type()) {
			return call.Args[i]
		}
	}
	return nil
}

func runEffectsHygiene(pass *Pass) error {
	reportedReuse := map[token.Pos]bool{}
	for _, f := range pass.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDiscard(pass, n)
			case *ast.AssignStmt:
				checkBlankDiscard(pass, n)
			case *ast.ForStmt:
				checkLoopReuse(pass, file, n, n.Body, reportedReuse)
			case *ast.RangeStmt:
				checkLoopReuse(pass, file, n, n.Body, reportedReuse)
			}
			return true
		})
	}
	return nil
}

// sessionTxnCallee returns the callee if call is Session.Txn or
// Session.TxnAt on the façade Session type (package bayou), else nil.
// These return the *Call that carries the transaction's terminal verdict:
// discarding it leaves an abort with no observer.
func (p *Pass) sessionTxnCallee(call *ast.CallExpr) types.Object {
	fn := p.Callee(call)
	if fn == nil || fn.Name() != "Txn" && fn.Name() != "TxnAt" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Session" || obj.Pkg() == nil || obj.Pkg().Path() != "bayou" {
		return nil
	}
	return fn
}

func checkDiscard(pass *Pass, stmt *ast.ExprStmt) {
	call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
	if !ok {
		return
	}
	if pass.intoCallEffectsArg(call) != nil {
		if fn := pass.Callee(call); fn != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() > 0 {
				pass.Reportf(call.Pos(), "result of %s discarded: batch entry points return the error that says whether the effects are valid", fn.Name())
			}
		}
		return
	}
	if fn := pass.sessionTxnCallee(call); fn != nil {
		pass.Reportf(call.Pos(), "result of %s discarded: the returned Call is the only way to observe the transaction's abort verdict", fn.Name())
	}
}

func checkBlankDiscard(pass *Pass, stmt *ast.AssignStmt) {
	if len(stmt.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	isInto := pass.intoCallEffectsArg(call) != nil
	if !isInto && pass.sessionTxnCallee(call) == nil {
		return
	}
	for _, lhs := range stmt.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
			return
		}
	}
	fn := pass.Callee(call)
	if fn == nil {
		return
	}
	if isInto {
		pass.Reportf(call.Pos(), "all results of %s discarded with blank assignments: batch entry points return the error that says whether the effects are valid", fn.Name())
		return
	}
	pass.Reportf(call.Pos(), "all results of %s discarded with blank assignments: the returned Call is the only way to observe the transaction's abort verdict", fn.Name())
}

// checkLoopReuse flags Into-style calls inside a loop whose Effects
// argument is a local declared outside the loop and neither Reset nor
// reassigned anywhere in the loop body. Function parameters are exempt:
// a batch entry point looping over its input appends into a caller-owned
// accumulator by contract — the caller's own loop (where the variable is
// local) is where the Reset obligation lives.
func checkLoopReuse(pass *Pass, file *ast.File, loop ast.Node, body *ast.BlockStmt, reported map[token.Pos]bool) {
	type use struct {
		pos token.Pos
		fn  string
	}
	uses := map[types.Object]use{}
	cleared := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if arg := pass.intoCallEffectsArg(n); arg != nil {
				obj := pass.rootObj(arg)
				if v, ok := obj.(*types.Var); ok && !within(v.Pos(), loop) && !isParam(pass, file, v) {
					if _, dup := uses[obj]; !dup {
						name := "batch call"
						if fn := pass.Callee(n); fn != nil {
							name = fn.Name()
						}
						uses[obj] = use{n.Pos(), name}
					}
				}
				return true
			}
			// eff.Reset() clears the accumulator for the next iteration.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Reset" && isEffectsType(pass.TypesInfo.TypeOf(sel.X)) {
				if obj := pass.rootObj(sel.X); obj != nil {
					cleared[obj] = true
				}
			}
		case *ast.AssignStmt:
			// Reassignment (eff = pool.Take(), eff = &core.Effects{}...)
			// yields a fresh accumulator each iteration.
			for _, lhs := range n.Lhs {
				if obj := pass.rootObj(lhs); obj != nil {
					cleared[obj] = true
				}
			}
		}
		return true
	})
	for obj, u := range uses {
		if cleared[obj] || reported[u.pos] {
			continue
		}
		reported[u.pos] = true
		pass.Reportf(u.pos, "%s reuses Effects value %s across loop iterations without Reset: effects from the previous iteration would be routed again", u.fn, obj.Name())
	}
}
