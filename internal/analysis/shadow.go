package analysis

import (
	"go/ast"
	"go/types"
)

// Shadow flags declarations that reuse a predeclared identifier — a
// variable, constant, parameter, type or function named cap, len, min,
// error, and so on. Shadowing a builtin is legal Go, but inside the
// shadowing scope the builtin is silently gone: a later `cap(buf)` in the
// same function becomes a type error at best and a subtle logic rewrite
// at worst, and the reader must track which meaning is live line by line.
// The check exists because the live driver shipped exactly this bug — a
// `const cap = 2_000` in the Run clamp.
var Shadow = &Analyzer{
	Name: "shadow",
	Doc:  "declarations must not reuse predeclared identifiers (cap, len, min, error, ...): the builtin is silently unusable in the shadowing scope",
	Run:  runShadow,
}

func runShadow(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				return true // a use, a label, or the package name
			}
			if types.Universe.Lookup(id.Name) == nil {
				return true
			}
			what := "declaration"
			switch o := obj.(type) {
			case *types.Var:
				switch {
				case o.IsField():
					// Field names live behind a selector; x.len never
					// collides with the builtin.
					return true
				case isParamObj(pass, f, o):
					what = "parameter"
				default:
					what = "variable"
				}
			case *types.Const:
				what = "constant"
			case *types.TypeName:
				what = "type"
			case *types.Func:
				if o.Signature().Recv() != nil {
					// Method names live behind a selector, like fields;
					// n.recover() never collides with the builtin.
					return true
				}
				what = "function"
			}
			pass.Reportf(id.Pos(), "%s %s shadows the predeclared identifier: the builtin %s is unusable in this scope — rename it", what, id.Name, id.Name)
			return true
		})
	}
	return nil
}

// isParamObj reports whether v is declared in a parameter or result list
// of a function declaration or literal in file.
func isParamObj(p *Pass, file *ast.File, v *types.Var) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		var ft *ast.FuncType
		switch n := n.(type) {
		case *ast.FuncDecl:
			ft = n.Type
		case *ast.FuncLit:
			ft = n.Type
		default:
			return true
		}
		for _, list := range []*ast.FieldList{ft.Params, ft.Results} {
			if list == nil {
				continue
			}
			for _, field := range list.List {
				for _, name := range field.Names {
					if p.TypesInfo.Defs[name] == v {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
