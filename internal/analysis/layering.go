package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// Layering is the import ruler for the sealed-driver architecture:
//
//   - the façade (package bayou) touches substrate packages only from its
//     driver adapter files (driver*.go) — everything else goes through the
//     Driver interface;
//   - internal/core is the protocol kernel and imports nothing from the
//     module except spec and stateobj (in particular never a substrate or
//     the drivers that host it);
//   - internal/check, internal/history and internal/record are the
//     substrate-blind observation layer: verdicts and histories must stay
//     comparable across substrates, so they may not import any substrate.
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "enforce the sealed-driver import architecture (façade/driver/substrate, substrate-blind checkers)",
	Run:  runLayering,
}

// substratePackages are the deployment substrates and their plumbing: the
// two drivers plus the simulator scheduler, network, broadcast and
// consensus layers, the failure detector, and the socket transport.
var substratePackages = map[string]bool{
	"bayou/internal/cluster": true,
	"bayou/internal/livenet": true,
	"bayou/internal/wire":    true,
	"bayou/internal/sim":     true,
	"bayou/internal/simnet":  true,
	"bayou/internal/tob":     true,
	"bayou/internal/rb":      true,
	"bayou/internal/paxos":   true,
	"bayou/internal/fd":      true,
}

// coreAllowed is the import allowlist for the protocol kernel.
var coreAllowed = map[string]bool{
	"bayou/internal/spec":     true,
	"bayou/internal/stateobj": true,
}

// substrateBlind are the observation-layer packages that must produce
// identical artifacts regardless of substrate.
var substrateBlind = map[string]bool{
	"bayou/internal/check":   true,
	"bayou/internal/history": true,
	"bayou/internal/record":  true,
}

func runLayering(pass *Pass) error {
	pkgPath := pass.Pkg.Path()
	for _, f := range pass.Files {
		fileName := pass.Fset.Position(f.Pos()).Filename
		base := fileName[strings.LastIndexByte(fileName, '/')+1:]
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			checkImport(pass, pkgPath, base, imp, path)
		}
	}
	return nil
}

func checkImport(pass *Pass, pkgPath, fileBase string, imp *ast.ImportSpec, path string) {
	switch {
	case pkgPath == "bayou":
		if substratePackages[path] && !strings.HasPrefix(fileBase, "driver") {
			pass.Reportf(imp.Pos(), "façade file %s imports substrate package %s: only the driver*.go adapters may reach below the Driver interface", fileBase, path)
		}
	case pkgPath == "bayou/internal/core":
		if strings.HasPrefix(path, "bayou") && !coreAllowed[path] {
			pass.Reportf(imp.Pos(), "core imports %s: the protocol kernel may import only spec and stateobj, never a substrate or driver", path)
		}
	case substrateBlind[pkgPath]:
		if substratePackages[path] {
			pass.Reportf(imp.Pos(), "%s imports substrate package %s: the observation layer must stay substrate-blind so histories and verdicts are comparable across drivers", pkgPath, path)
		}
	}
}
