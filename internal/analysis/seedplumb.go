package analysis

import (
	"go/ast"
	"go/types"
)

// Seedplumb keeps random sources replayable: every rand.New /
// rand.NewSource / rand.NewPCG seed must trace to a function parameter or
// a struct (config) field — never to a literal or a package-level
// variable. A hardcoded seed makes every "replayable seed" artifact the
// soak suite emits a lie: the run replays, but always the same one, and
// the recorded seed in the artifact no longer identifies the schedule.
var Seedplumb = &Analyzer{
	Name: "seedplumb",
	Doc:  "rand.New sources must trace to a parameter or config field, never a literal or global, so seeds stay replayable",
	Run:  runSeedplumb,
}

// seedCtors maps rand constructor names to which arguments carry seed
// material (all of them, for the ones we care about).
var seedCtors = map[string]bool{
	"NewSource":  true, // math/rand
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runSeedplumb(pass *Pass) error {
	for _, f := range pass.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.Callee(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if !seedCtors[fn.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if why := pass.seedOrigin(file, arg); why != "" {
					pass.Reportf(arg.Pos(), "rand.%s seed %s: plumb the seed from a parameter or config field so runs stay replayable", fn.Name(), why)
				}
			}
			return true
		})
	}
	return nil
}

// seedOrigin classifies a seed expression: it returns "" when the value
// plausibly traces to plumbed configuration (parameter, field, call
// result, index), or a description of the violation when it bottoms out
// in a literal or package-level state.
func (p *Pass) seedOrigin(file *ast.File, expr ast.Expr) string {
	return p.seedOriginDepth(file, expr, 0)
}

// seedOriginDepth bounds the local-definition chase (self-referential
// updates like seed = seed + 1 would otherwise recurse forever).
func (p *Pass) seedOriginDepth(file *ast.File, expr ast.Expr, depth int) string {
	if depth > 8 {
		return ""
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.BasicLit:
		return "is the literal " + e.Value
	case *ast.UnaryExpr:
		return p.seedOriginDepth(file, e.X, depth+1)
	case *ast.BinaryExpr:
		// A mixed expression (base+offset) is fine if any operand is
		// plumbed; all-literal arithmetic is still a constant seed.
		left := p.seedOriginDepth(file, e.X, depth+1)
		right := p.seedOriginDepth(file, e.Y, depth+1)
		if left != "" && right != "" {
			return left
		}
		return ""
	case *ast.CallExpr:
		// A conversion like int64(x) inspects x; a real call result
		// (cfg.Seed(), crypto draw) counts as plumbed.
		if len(e.Args) == 1 {
			if tv, ok := p.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
				return p.seedOriginDepth(file, e.Args[0], depth+1)
			}
		}
		return ""
	case *ast.Ident:
		obj := p.TypesInfo.Uses[e]
		v, ok := obj.(*types.Var)
		if !ok {
			if c, isConst := obj.(*types.Const); isConst {
				if c.Parent() == p.Pkg.Scope() || c.Parent() == types.Universe {
					return "is the package-level constant " + c.Name()
				}
				return "" // local constant: treat like a local value
			}
			return ""
		}
		if v.Parent() == p.Pkg.Scope() {
			return "is the package-level variable " + v.Name()
		}
		if v.IsField() {
			return ""
		}
		if isParam(p, file, v) {
			return ""
		}
		// Local variable: trace its (last syntactic) definition.
		if rhs := definingExpr(p, file, v, e); rhs != nil {
			return p.seedOriginDepth(file, rhs, depth+1)
		}
		return ""
	case *ast.SelectorExpr:
		// pkg.Var / pkg.Const is package-level state; x.field is plumbed.
		obj := p.TypesInfo.Uses[e.Sel]
		switch o := obj.(type) {
		case *types.Const:
			if o.Pkg() != nil && o.Parent() == o.Pkg().Scope() {
				return "is the package-level constant " + o.Name()
			}
		case *types.Var:
			if !o.IsField() && o.Pkg() != nil && o.Parent() == o.Pkg().Scope() {
				return "is the package-level variable " + o.Name()
			}
		}
		return ""
	}
	return ""
}

// isParam reports whether v is a parameter of a function declaration or
// literal in file.
func isParam(p *Pass, file *ast.File, v *types.Var) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		var ft *ast.FuncType
		switch n := n.(type) {
		case *ast.FuncDecl:
			ft = n.Type
		case *ast.FuncLit:
			ft = n.Type
		default:
			return true
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if p.TypesInfo.Defs[name] == v {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// definingExpr finds the expression most recently assigned to v before
// use (syntactically, within file).
func definingExpr(p *Pass, file *ast.File, v *types.Var, use ast.Node) ast.Expr {
	var rhs ast.Expr
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Pos() >= use.Pos() {
				return false
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if p.TypesInfo.Defs[id] == v || p.TypesInfo.Uses[id] == v {
					rhs = n.Rhs[i]
				}
			}
		case *ast.ValueSpec:
			if n.Pos() >= use.Pos() {
				return false
			}
			for i, id := range n.Names {
				if p.TypesInfo.Defs[id] == v && i < len(n.Values) {
					rhs = n.Values[i]
				}
			}
		}
		return true
	})
	return rhs
}
