// Package analysistest runs an analyzer over golden packages laid out
// GOPATH-style under a testdata root (testdata/<analyzer>/src/<pkgpath>/)
// and checks its diagnostics against expectations embedded in comments:
//
//	x := m[k] // want "regexp" "another regexp"
//	// want-up "regexp matching a diagnostic on the previous line"
//
// Each expectation must match exactly one diagnostic on its line, and
// every diagnostic must be claimed by an expectation — so a golden file
// fails both when the analyzer misses a finding and when it overreports,
// i.e. every analyzer has at least one case that fails without its check.
//
// Dependencies of golden packages resolve testdata-first (so fixtures can
// fabricate module paths like bayou/internal/core) and fall back to the
// standard library, type-checked from source.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"bayou/internal/analysis"
)

// Run loads each pkgpath from srcRoot/src, applies the analyzer through
// the full driver pipeline (including //bayouvet:ignore suppression
// handling), and diffs diagnostics against the want comments.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(srcRoot, "src"))
	var diags []analysis.Diagnostic
	var files []string
	for _, path := range pkgpaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		ds, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		diags = append(diags, ds...)
		files = append(files, pkg.FileNames()...)
	}
	checkExpectations(t, files, diags)
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func checkExpectations(t *testing.T, files []string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []expectation
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			lineNo := i + 1
			idx := strings.Index(line, "// want")
			if idx < 0 {
				continue
			}
			rest := line[idx+len("// want"):]
			if strings.HasPrefix(rest, "-up") {
				lineNo--
				rest = rest[len("-up"):]
			}
			for _, m := range wantRE.FindAllString(rest, -1) {
				pat, err := strconv.Unquote(m)
				if err != nil {
					t.Fatalf("%s:%d: bad want literal %s: %v", name, lineNo, m, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, lineNo, pat, err)
				}
				wants = append(wants, expectation{name, lineNo, re, pat})
			}
		}
	}

	claimed := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if claimed[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				claimed[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
	for i, d := range diags {
		if !claimed[i] {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", d.Pos, d.Message, d.Analyzer)
		}
	}
}

// loader resolves packages testdata-first with a source-importer fallback
// for the standard library.
type loader struct {
	src     string
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*analysis.Package
	loading map[string]bool
}

func newLoader(src string) *loader {
	fset := token.NewFileSet()
	return &loader{
		src:     src,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*analysis.Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer over the testdata tree.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg.Types, nil
	}
	if _, err := os.Stat(filepath.Join(l.src, path)); err == nil {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer func() { l.loading[path] = false }()

	dir := filepath.Join(l.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, err := analysis.TypeCheck(l.fset, path, files, l)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
