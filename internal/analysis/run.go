package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// All returns the bayouvet analyzer registry — the same set no matter how
// the multichecker is invoked (cmd/bayouvet standalone, go vet -vettool,
// bayou-check -lint), so local runs match CI exactly.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Lockcheck, Layering, EffectsHygiene, Seedplumb, Shadow}
}

// ByName resolves a comma-separated analyzer filter ("" = all). Unknown
// names are an error.
func ByName(filter string) ([]*Analyzer, error) {
	if filter == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(filter, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// A Package is one type-checked unit of analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FileNames returns the source file paths of the package, in parse order.
func (p *Package) FileNames() []string {
	var names []string
	for _, f := range p.Files {
		names = append(names, p.Fset.Position(f.Pos()).Filename)
	}
	return names
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics: documented //bayouvet:ignore suppressions are applied, and
// undocumented or malformed suppressions become diagnostics themselves.
// The result is sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		raw, err := runPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, filterSuppressed(pkg, raw)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// analyzedFiles drops _test.go files from the pass: the invariants guard
// the shipped sim-path and substrate code, while tests legitimately read
// the wall clock and hardcode seeds — a literal seed in a test is exactly
// what makes it reproducible. Under `go vet` the tool is invoked on test
// variants of each package, so the filter keeps that path consistent with
// the standalone loader (which lists only GoFiles).
func analyzedFiles(pkg *Package) []*ast.File {
	var files []*ast.File
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	return files
}

func runPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	files := analyzedFiles(pkg)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	return diags, nil
}

// ignorePrefix introduces a documented suppression:
//
//	//bayouvet:ignore <analyzer> <reason...>
//
// on the flagged line or the line directly above it.
const ignorePrefix = "//bayouvet:ignore"

type suppression struct {
	file     string
	line     int
	analyzer string
}

// filterSuppressed drops diagnostics covered by a documented suppression
// and reports malformed suppressions (missing analyzer or reason) as
// "bayouvet" diagnostics, so a clean run has zero undocumented ignores by
// construction. Suppressions that cover nothing are also reported: a
// stale ignore hides future regressions.
func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var sups []suppression
	used := map[int]bool{}
	var out []Diagnostic
	for _, f := range analyzedFiles(pkg) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				switch {
				case !known[name]:
					out = append(out, Diagnostic{
						Analyzer: "bayouvet",
						Pos:      pos,
						Message:  fmt.Sprintf("malformed suppression: %q names no analyzer (want //bayouvet:ignore <analyzer> <reason>)", name),
					})
				case strings.TrimSpace(reason) == "":
					out = append(out, Diagnostic{
						Analyzer: "bayouvet",
						Pos:      pos,
						Message:  fmt.Sprintf("undocumented suppression of %s: a reason is required (//bayouvet:ignore %s <reason>)", name, name),
					})
				default:
					sups = append(sups, suppression{pos.Filename, pos.Line, name})
				}
			}
		}
	}
	for _, d := range diags {
		suppressed := false
		for i, s := range sups {
			if s.analyzer == d.Analyzer && s.file == d.Pos.Filename &&
				(s.line == d.Pos.Line || s.line == d.Pos.Line-1) {
				suppressed = true
				used[i] = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for i, s := range sups {
		if !used[i] {
			out = append(out, Diagnostic{
				Analyzer: "bayouvet",
				Pos:      token.Position{Filename: s.file, Line: s.line, Column: 1},
				Message:  fmt.Sprintf("stale suppression: no %s finding on this or the next line", s.analyzer),
			})
		}
	}
	return out
}
