package analysis_test

import (
	"path/filepath"
	"testing"

	"bayou/internal/analysis"
	"bayou/internal/analysis/analysistest"
)

// Each analyzer has positive golden files (the listed want comments fail
// the test if the analyzer stops reporting them) and negative cases in
// the same packages (any new diagnostic without a want fails the test) —
// so every check is pinned in both directions.

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "determinism"), analysis.Determinism,
		"bayou/internal/core", "bayou/internal/livenet")
}

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "lockcheck"), analysis.Lockcheck, "lock")
}

func TestLayering(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "layering"), analysis.Layering,
		"bayou", "bayou/internal/core", "bayou/internal/check")
}

func TestEffectsHygiene(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "effectshygiene"), analysis.EffectsHygiene, "effuser", "txnuser")
}

func TestSeedplumb(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "seedplumb"), analysis.Seedplumb, "seed")
}

func TestShadow(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "shadow"), analysis.Shadow, "shadow")
}

// TestSuppression pins the //bayouvet:ignore convention end to end:
// documented suppressions silence a finding, undocumented or unknown ones
// are findings themselves, and stale ones are reported so they cannot
// linger and mask future regressions.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "suppress"), analysis.Determinism,
		"bayou/internal/core")
}

func TestByName(t *testing.T) {
	all, err := analysis.ByName("")
	if err != nil || len(all) != 6 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 6, nil", len(all), err)
	}
	two, err := analysis.ByName("determinism,layering")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName(determinism,layering) = %v, %v", two, err)
	}
	if _, err := analysis.ByName("nope"); err == nil {
		t.Fatal("ByName(nope) succeeded; want error")
	}
}
