package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Lockcheck enforces the repo's documented mutex discipline: a struct
// field annotated
//
//	field T // guarded by mu
//
// may be touched from a method only if that method acquires the named
// mutex (mu.Lock or mu.RLock, possibly deferred), carries the *Locked
// name suffix, or documents "caller holds <mu>" — the conventions
// internal/record and internal/livenet already use. The analyzer is
// annotation-driven, so any package adopting the comment convention gets
// the check for free.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "check '// guarded by mu' fields are accessed under their mutex (or from *Locked / 'caller holds' methods)",
	Run:  runLockcheck,
}

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

func runLockcheck(pass *Pass) error {
	// field name -> guarding mutex field name, per annotated struct type.
	guarded := map[*types.TypeName]map[string]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fields := map[string]string{}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					fields[name.Name] = mu
				}
			}
			if len(fields) == 0 {
				return true
			}
			if obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
				guarded[obj] = fields
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			checkLockedMethod(pass, fd, guarded)
		}
	}
	return nil
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkLockedMethod(pass *Pass, fd *ast.FuncDecl, guarded map[*types.TypeName]map[string]string) {
	recvType := recvTypeName(pass, fd.Recv.List[0].Type)
	if recvType == nil {
		return
	}
	fields, ok := guarded[recvType]
	if !ok {
		return
	}
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "caller holds") {
		return
	}
	names := fd.Recv.List[0].Names
	if len(names) != 1 || names[0].Name == "_" {
		return
	}
	recvObj := pass.TypesInfo.Defs[names[0]]
	if recvObj == nil {
		return
	}

	// Mutex fields acquired anywhere in the body (function granularity:
	// a method that locks at all is trusted to scope the span itself).
	held := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		mu, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if base, ok := ast.Unparen(mu.X).(*ast.Ident); ok && pass.TypesInfo.Uses[base] == recvObj {
			held[mu.Sel.Name] = true
		}
		return true
	})

	reported := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[base] != recvObj {
			return true
		}
		mu, guardedField := fields[sel.Sel.Name]
		if !guardedField || held[mu] || reported[sel.Sel.Name] {
			return true
		}
		reported[sel.Sel.Name] = true
		pass.Reportf(sel.Pos(), "%s.%s is guarded by %s but %s does not acquire it (hold %s.Lock, rename with a Locked suffix, or document \"caller holds %s\")",
			recvType.Name(), sel.Sel.Name, mu, fd.Name.Name, mu, mu)
		return true
	})
}

func recvTypeName(pass *Pass, expr ast.Expr) *types.TypeName {
	switch t := ast.Unparen(expr).(type) {
	case *ast.StarExpr:
		return recvTypeName(pass, t.X)
	case *ast.Ident:
		obj, _ := pass.TypesInfo.Uses[t].(*types.TypeName)
		return obj
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(pass, t.X)
	case *ast.IndexListExpr:
		return recvTypeName(pass, t.X)
	}
	return nil
}
