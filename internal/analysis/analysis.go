// Package analysis is bayou's in-tree static-analysis framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// Analyzer/Pass model (the container bakes in only the standard library, so
// the framework is built directly on go/ast and go/types) plus the five
// repo-specific analyzers that mechanically enforce invariants the compiler
// cannot see:
//
//   - determinism      — sim-path packages stay bit-for-bit deterministic
//   - lockcheck        — "// guarded by mu" fields follow mutex discipline
//   - layering         — the sealed-driver import architecture holds
//   - effectshygiene   — Effects accumulators are Reset before reuse and
//     batch results are never discarded
//   - seedplumb        — every rand.New source traces to a parameter or
//     config field, so seeds stay replayable
//
// The multichecker is exposed three ways, all running the same registry:
// `cmd/bayouvet` as a standalone command and as a `go vet -vettool`
// (unitchecker-protocol) tool, and `bayou-check -lint` for local pre-push
// runs that match CI exactly.
//
// Findings can be suppressed only with a documented reason:
//
//	//bayouvet:ignore <analyzer> <reason...>
//
// on the flagged line or the line above it. An ignore without a reason (or
// naming no known analyzer) is itself a diagnostic, so CI stays at zero
// undocumented suppressions by construction.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant check. Run inspects a single
// type-checked package through its Pass and reports findings with
// Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one (analyzer, package) unit of work: the parsed files, the
// type-checked package, and the reporting sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [bayouvet/%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Callee resolves the static callee of call, or nil for dynamic calls,
// conversions and builtins.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is a package-level function (not a method)
// of the package with the given import path and one of the given names.
func isPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// rootObj resolves the object an lvalue-ish expression ultimately names:
// the identifier's object, the field object of a selection, through
// parens and &x. Returns nil for anything else (index expressions, calls).
func (p *Pass) rootObj(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := p.TypesInfo.Uses[e]; o != nil {
			return o
		}
		return p.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		return p.TypesInfo.Uses[e.Sel]
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return p.rootObj(e.X)
		}
	}
	return nil
}

// mentionsObj reports whether expr contains an identifier resolving to obj.
func (p *Pass) mentionsObj(expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal in file whose span contains pos, or nil.
func enclosingFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return n == file
		}
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		}
		return true
	})
	return body
}

// within reports whether pos falls inside node's span.
func within(pos token.Pos, node ast.Node) bool {
	return node != nil && node.Pos() <= pos && pos < node.End()
}
