package core

import (
	"math/rand"
	"slices"
	"sort"
	"time"
)

func wallClock() int64 {
	t := time.Now()              // want `time\.Now in deterministic sim path`
	d := time.Since(t)           // want `time\.Since in deterministic sim path`
	time.Sleep(time.Millisecond) // want `time\.Sleep in deterministic sim path`
	return t.UnixNano() + int64(d)
}

func durationConstOnly() time.Duration {
	return 30 * time.Second // constants are fine: no clock is read
}

func globalRand(r *rand.Rand) int {
	n := rand.Intn(10) // want `unseeded global source`
	return n + r.Intn(10)
}

func seededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // seeded constructor: determinism is satisfied
}

func spawn() {
	go func() {}() // want `goroutine spawned in deterministic sim path`
}

func mapOrder(m map[string]int, out chan<- string) {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted below: the collect-then-sort idiom
		out <- k               // want `channel send inside range over map`
	}
	sort.Strings(keys)

	var bad []string
	for k := range m {
		bad = append(bad, k) // want `append inside range over map feeds bad`
	}
	_ = bad
}

func mapOrderSlices(m map[int]int) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

func sliceRangeIsFine(xs []int, out chan<- int) {
	var ys []int
	for _, x := range xs {
		ys = append(ys, x)
		out <- x
	}
	_ = ys
}
