package livenet

import "time"

// livenet is a real-concurrency substrate, not a sim path: wall clock,
// goroutines and map iteration are its business.
func wall() int64 {
	go func() {}()
	return time.Now().UnixNano()
}
