package lock

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	// guarded by mu
	hist []int
	name string // immutable after construction, unguarded
}

func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) Bad() int {
	return c.n // want `counter\.n is guarded by mu but Bad does not acquire it`
}

func (c *counter) bumpLocked() { c.n++ }

// peek returns the current value; caller holds mu.
func (c *counter) peek() int { return c.n }

func (c *counter) Name() string { return c.name }

func (c *counter) BadTwo() {
	c.hist = append(c.hist, c.n) // want `counter\.hist is guarded by mu` `counter\.n is guarded by mu`
}

type gauge struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

func (g *gauge) Read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

func (g *gauge) Set(v int) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}
