package shadow

// The live driver's Run clamp, as shipped: a constant named cap.
func runClamp(t int64) int64 {
	const cap = 2_000 // want `constant cap shadows the predeclared identifier`
	if t > cap {
		t = cap
	}
	return t
}

func shortVar() int {
	len := 3 // want `variable len shadows the predeclared identifier`
	return len
}

func param(min int) int { // want `parameter min shadows the predeclared identifier`
	return min + 1
}

func result() (max int) { // want `parameter max shadows the predeclared identifier`
	return 0
}

type error struct{ msg string } // want `type error shadows the predeclared identifier`

func new() int { return 0 } // want `function new shadows the predeclared identifier`

const iota = 9 // want `constant iota shadows the predeclared identifier`

// Negative cases: selectors, fields and ordinary names never collide
// with the universe scope.

type buffer struct {
	len int // field: reached through a selector, no shadow
	cap int
}

func ok(b buffer, n int) int {
	total := b.len + b.cap
	_ = n
	var count int
	return total + count
}

func blank() {
	_ = 1 // the blank identifier is exempt
}
