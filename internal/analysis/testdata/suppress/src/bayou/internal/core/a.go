package core

import "time"

func documentedAbove() int64 {
	//bayouvet:ignore determinism the boot banner alone compares sim time to wall time
	return time.Now().UnixNano()
}

func documentedInline() int64 {
	return time.Now().UnixNano() //bayouvet:ignore determinism documented inline reason
}

func undocumented() int64 {
	//bayouvet:ignore determinism
	// want-up `undocumented suppression of determinism`
	return time.Now().UnixNano() // want `time\.Now in deterministic sim path`
}

func unknownAnalyzer() int64 {
	//bayouvet:ignore nosuchanalyzer because reasons
	// want-up `malformed suppression`
	return time.Now().UnixNano() // want `time\.Now in deterministic sim path`
}

func stale() {
	//bayouvet:ignore determinism nothing below actually trips the analyzer
	// want-up `stale suppression`
	_ = 0
}
