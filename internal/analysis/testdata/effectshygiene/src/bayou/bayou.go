// Package bayou is a stand-in for the real façade: just enough of the
// Session.Txn surface for the effectshygiene txn fixtures to type-check.
package bayou

type Level int

const (
	Weak Level = iota
	Strong
)

type Op interface{ Name() string }

type TxnStep struct {
	Op      Op
	Require bool
}

func Do(op Op) TxnStep      { return TxnStep{Op: op} }
func Require(op Op) TxnStep { return TxnStep{Op: op, Require: true} }

type Call struct{}

func (c *Call) Aborted() bool { return false }

type Session struct{}

func (s *Session) Txn(level Level, steps ...TxnStep) (*Call, error) {
	return &Call{}, nil
}

func (s *Session) TxnAt(replica int, level Level, steps ...TxnStep) (*Call, error) {
	return &Call{}, nil
}

func (s *Session) Invoke(op Op, level Level) (*Call, error) {
	return &Call{}, nil
}
