// Package core is a stand-in for the real protocol kernel: just enough of
// the batched Effects API for the effectshygiene fixtures to type-check.
package core

type Req struct{ ID int }

type Effects struct {
	RBCast    []Req
	Responses []int
}

func (e *Effects) Reset() {
	e.RBCast = e.RBCast[:0]
	e.Responses = e.Responses[:0]
}

type Replica struct{}

func (r *Replica) InvokeInto(op string, strong bool, eff *Effects) (Req, error) {
	return Req{}, nil
}

func (r *Replica) RBDeliverBatch(rs []Req, eff *Effects) error { return nil }

func (r *Replica) DrainInto(eff *Effects) (int, error) { return 0, nil }

type EffectsPool struct{ free []*Effects }

func (p *EffectsPool) Take() *Effects { return &Effects{} }
func (p *EffectsPool) Put(e *Effects) {}
