package txnuser

import "bayou"

// discardTxn drops the *Call that carries the transaction's abort verdict:
// the unit may have been revoked at its final position with none of its
// writes surviving, and nothing would ever observe it.
func discardTxn(s *bayou.Session, transfer []bayou.TxnStep) {
	s.Txn(bayou.Weak, transfer...)               // want `result of Txn discarded: the returned Call is the only way to observe the transaction's abort verdict`
	s.TxnAt(1, bayou.Strong, transfer...)        // want `result of TxnAt discarded`
	_, _ = s.Txn(bayou.Weak, transfer...)        // want `all results of Txn discarded with blank assignments`
	_, _ = s.TxnAt(2, bayou.Strong, transfer...) // want `all results of TxnAt discarded with blank assignments`
}

// checkedTxn keeps the Call (or at least the error): no diagnostic — the
// abort verdict has an observer.
func checkedTxn(s *bayou.Session, transfer []bayou.TxnStep) bool {
	call, err := s.Txn(bayou.Weak, transfer...)
	if err != nil {
		return false
	}
	if _, err := s.TxnAt(0, bayou.Strong, transfer...); err != nil {
		return false
	}
	call2, _ := s.Txn(bayou.Strong, transfer...) // err blank is fine; the Call is kept
	return call.Aborted() || call2.Aborted()
}

// suppressed documents an intentional fire-and-forget with a reasoned
// ignore, mirroring the Effects accumulation idiom.
func suppressed(s *bayou.Session, transfer []bayou.TxnStep) {
	//bayouvet:ignore effectshygiene fire-and-forget demo txn; outcome observed via a separate watch session
	s.Txn(bayou.Weak, transfer...)
}

// notTheFacade guards the type filter: a Txn method on some other Session
// type is none of our business.
type Session struct{}

func (s *Session) Txn(n int) (int, error) { return n, nil }

func otherTxn(s *Session) {
	s.Txn(1)
	_, _ = s.Txn(2)
}
