package effuser

import "bayou/internal/core"

func discard(r *core.Replica, eff *core.Effects) {
	r.RBDeliverBatch(nil, eff)           // want `result of RBDeliverBatch discarded`
	_, _ = r.InvokeInto("x", false, eff) // want `all results of InvokeInto discarded`
	if err := r.RBDeliverBatch(nil, eff); err != nil {
		panic(err)
	}
	if _, err := r.DrainInto(eff); err != nil {
		panic(err)
	}
}

func loopReuse(r *core.Replica, ops []string) {
	var eff core.Effects
	for _, op := range ops {
		if _, err := r.InvokeInto(op, false, &eff); err != nil { // want `InvokeInto reuses Effects value eff across loop iterations without Reset`
			panic(err)
		}
	}
}

func loopReset(r *core.Replica, ops []string) {
	var eff core.Effects
	for _, op := range ops {
		eff.Reset()
		if _, err := r.InvokeInto(op, false, &eff); err != nil {
			panic(err)
		}
	}
}

func loopPool(r *core.Replica, p *core.EffectsPool, ops []string) {
	for _, op := range ops {
		eff := p.Take()
		if _, err := r.InvokeInto(op, false, eff); err != nil {
			panic(err)
		}
		p.Put(eff)
	}
}

// batchEntry is the shape of the repo's batch entry points: the Effects
// accumulator is a caller-owned parameter, and the callee appends into it
// across its input loop by contract. No diagnostic — the Reset obligation
// lives in the caller's loop, where the variable is local.
func batchEntry(r *core.Replica, ops []string, eff *core.Effects) error {
	for _, op := range ops {
		if _, err := r.InvokeInto(op, false, eff); err != nil {
			return err
		}
	}
	return nil
}

// accumulate fills one Effects across an inner batch loop and routes it
// once at the end. The conservative reuse rule still fires (the analyzer
// cannot see that nothing is routed inside the loop), so intentional
// accumulation documents itself with a reasoned suppression.
func accumulate(r *core.Replica, ops []string) {
	var eff core.Effects
	for _, op := range ops {
		//bayouvet:ignore effectshygiene intentional accumulation; eff is routed once after the loop
		if _, err := r.InvokeInto(op, false, &eff); err != nil {
			panic(err)
		}
	}
	_ = eff.Responses
}
