// Package livenet is a stand-in for the live driver substrate.
package livenet

type Cluster struct{}
