// Package simnet is a stand-in for the simulated network substrate.
package simnet

type Net struct{}
