package check

import (
	_ "bayou/internal/simnet" // want `check imports substrate package bayou/internal/simnet`
	_ "bayou/internal/spec"
)

type Verdict struct{}
