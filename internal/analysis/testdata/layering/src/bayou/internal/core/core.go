package core

import (
	_ "bayou/internal/cluster" // want `core imports bayou/internal/cluster`
	_ "bayou/internal/spec"
)

type Dot struct{}
