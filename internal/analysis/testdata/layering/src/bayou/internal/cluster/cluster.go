// Package cluster is a stand-in for the simulator driver substrate.
package cluster

type Cluster struct{}
