// Package spec is a stand-in for the sequential specification.
package spec

type Op string
