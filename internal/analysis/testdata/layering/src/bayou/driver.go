// The façade's driver adapters may reach below the Driver interface.
package bayou

import (
	_ "bayou/internal/cluster"
	_ "bayou/internal/spec"
)

type Driver interface{ Replicas() int }
