package bayou

import (
	_ "bayou/internal/livenet" // want `façade file watch\.go imports substrate package bayou/internal/livenet`
)

type Watch struct{}
