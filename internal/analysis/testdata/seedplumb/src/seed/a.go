package seed

import (
	"math/rand"
	randv2 "math/rand/v2"
)

var globalSeed int64 = 7

const fixedSeed = 99

type Config struct{ Seed int64 }

func bad() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `rand\.NewSource seed is the literal 42`
}

func badGlobal() *rand.Rand {
	return rand.New(rand.NewSource(globalSeed)) // want `package-level variable globalSeed`
}

func badConst() *rand.Rand {
	return rand.New(rand.NewSource(fixedSeed)) // want `package-level constant fixedSeed`
}

func badLocal() *rand.Rand {
	s := int64(1234)
	return rand.New(rand.NewSource(s)) // want `is the literal 1234`
}

func badPCG() *randv2.Rand {
	return randv2.New(randv2.NewPCG(1, 2)) // want `is the literal 1` `is the literal 2`
}

func good(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func goodCfg(c Config) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed))
}

func goodDerived(base int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(base + int64(i)*1000003))
}

func goodLocalChain(seed int64) *rand.Rand {
	s := seed*2 + 1
	return rand.New(rand.NewSource(s))
}
