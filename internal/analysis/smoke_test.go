package analysis_test

import (
	"testing"

	"bayou/internal/analysis"
)

// TestBayouvetCleanOnRepo is the in-tree form of the CI gate: the whole
// module must pass the multichecker with zero undocumented suppressions.
// It exercises the same loader and registry cmd/bayouvet and
// `bayou-check -lint` use, so a finding introduced anywhere in the repo
// fails `go test ./internal/analysis/` before it ever reaches CI.
func TestBayouvetCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool and type-checks the whole module")
	}
	root, err := analysis.ModuleDir(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader matched no packages")
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
