package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load resolves the patterns with the go tool from dir, type-checks every
// matched non-test package against the export data of its dependencies,
// and returns the packages ready for Run. It shells out to `go list
// -deps -export` (which compiles dependencies into the build cache as a
// side effect) but type-checks the matched packages from source with the
// standard library alone — no external analysis dependency.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,Standard,GoFiles,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	// The -deps closure, with export data for everything compiled.
	exports := map[string]string{}
	var all []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		all = append(all, p)
	}

	// A second, dep-free resolution of the same patterns names the
	// packages actually under analysis.
	cmd = exec.Command("go", append([]string{"list"}, patterns...)...)
	cmd.Dir = dir
	stderr.Reset()
	cmd.Stderr = &stderr
	tout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	targets := map[string]bool{}
	for _, l := range strings.Fields(string(tout)) {
		targets[l] = true
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, p := range all {
		if !targets[p.ImportPath] || p.Standard {
			continue
		}
		var files []*ast.File
		for _, g := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, g), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, err := TypeCheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportImporter builds a types.Importer that reads gc export data files
// resolved by lookup (import path -> export file). This is the same
// mechanism `go vet` tools use: dependencies are consumed as compiled
// export data, only the package under analysis is parsed from source.
func ExportImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// TypeCheck parses nothing: it type-checks the already-parsed files as
// package path using imp for dependencies and returns the bundled
// Package.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// ModuleDir walks up from dir to the enclosing go.mod, for callers (the
// smoke test, bayou-check -lint) that want to analyze the whole module
// regardless of the working directory.
func ModuleDir(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}
