package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// simPathPackages are the packages that execute under the deterministic
// simulator substrate: every fault-soak seed, differential twin and
// replayable artifact assumes they are bit-for-bit deterministic per seed.
// One wall-clock read or unordered map iteration here silently invalidates
// every replayable-seed artifact the soak suite emits.
var simPathPackages = func() map[string]bool {
	m := map[string]bool{}
	for _, n := range []string{
		"core", "cluster", "simnet", "paxos", "tob", "rb",
		"check", "sim", "scenario", "workload",
	} {
		m["bayou/internal/"+n] = true
	}
	return m
}()

// Determinism flags nondeterminism sources in sim-path packages:
// wall-clock reads (time.Now/Since/...), the unseeded global math/rand
// source, goroutine spawns, and range-over-map iterations whose order
// flows into an ordered sink (a slice append that is never sorted
// afterwards, or a channel send).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock, unseeded rand, goroutines and order-dependent map iteration in deterministic sim-path packages",
	Run:  runDeterminism,
}

// wallClockFuncs are the time functions that read or depend on the real
// clock or the runtime scheduler.
var wallClockFuncs = []string{
	"Now", "Since", "Until", "Sleep", "After", "AfterFunc", "Tick",
	"NewTimer", "NewTicker",
}

// seededRandCtors are the math/rand constructors that are fine in sim
// paths: they take an explicit source/seed, which seedplumb separately
// requires to be plumbed, not hardcoded.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true,
	"NewChaCha8": true, "NewZipf": true,
}

func runDeterminism(pass *Pass) error {
	if !simPathPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawned in deterministic sim path %s: scheduling order is nondeterministic", pass.Pkg.Path())
			case *ast.CallExpr:
				checkDeterminismCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			}
			return true
		})
	}
	return nil
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	fn := pass.Callee(call)
	if fn == nil {
		return
	}
	if isPkgFunc(fn, "time", wallClockFuncs...) {
		pass.Reportf(call.Pos(), "time.%s in deterministic sim path: wall-clock values differ across runs of the same seed", fn.Name())
		return
	}
	for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
		if fn.Pkg() != nil && fn.Pkg().Path() == randPkg {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !seededRandCtors[fn.Name()] {
				pass.Reportf(call.Pos(), "%s.%s uses the unseeded global source: draw from a seeded *rand.Rand plumbed through the scheduler instead", randPkg, fn.Name())
			}
			return
		}
	}
}

// checkMapRange flags range-over-map bodies whose iteration order escapes
// into an ordered sink: a channel send, or a slice append whose target is
// never handed to sort/slices afterwards in the same function (the
// collect-then-sort idiom is the sanctioned way to iterate a map
// deterministically).
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	type appendTarget struct {
		obj types.Object
		pos token.Pos
	}
	var appends []appendTarget
	seen := map[types.Object]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside range over map: iteration order is nondeterministic; collect and sort keys first")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				if obj := pass.rootObj(n.Lhs[i]); obj != nil && !seen[obj] {
					seen[obj] = true
					appends = append(appends, appendTarget{obj, call.Pos()})
				}
			}
		}
		return true
	})
	if len(appends) == 0 {
		return
	}
	body := enclosingFuncBody(file, rng.Pos())
	for _, a := range appends {
		if !sortedAfter(pass, body, rng.End(), a.obj) {
			pass.Reportf(a.pos, "append inside range over map feeds %s in nondeterministic iteration order; sort it afterwards or iterate sorted keys", a.obj.Name())
		}
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether, somewhere after pos in body, obj is passed
// to a sort/slices function — which re-establishes a deterministic order
// for the collected elements.
func sortedAfter(pass *Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := pass.Callee(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" && !strings.HasSuffix(p, "/slices") {
			return true
		}
		for _, arg := range call.Args {
			if pass.mentionsObj(arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
