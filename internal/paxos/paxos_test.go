package paxos

import (
	"fmt"
	"testing"

	"bayou/internal/sim"
	"bayou/internal/simnet"
)

type cluster struct {
	sched   *sim.Scheduler
	net     *simnet.Network
	nodes   []*Node
	deliver [][]any // per node, decided values in delivery order
}

func newCluster(t *testing.T, n int, seed int64) *cluster {
	t.Helper()
	c := &cluster{sched: sim.New(seed), deliver: make([][]any, n)}
	c.net = simnet.New(c.sched)
	peers := make([]simnet.NodeID, n)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	c.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		i := i
		c.nodes[i] = New(peers[i], peers, c.sched, c.net, func(s Slot, v any) {
			// Unpack batches exactly like the TOB layer does: a Batch is one
			// slot carrying several values in order.
			if b, ok := v.(Batch); ok {
				c.deliver[i] = append(c.deliver[i], b...)
				return
			}
			c.deliver[i] = append(c.deliver[i], v)
		})
		mux := &simnet.Mux{}
		mux.Add(c.nodes[i].Handle)
		c.net.Register(peers[i], mux.Handler())
	}
	return c
}

// run drives the scheduler with a generous budget, failing the test on
// livelock.
func (c *cluster) run(t *testing.T) {
	t.Helper()
	if _, ok := c.sched.Run(2_000_000); !ok {
		t.Fatal("scheduler did not quiesce (protocol livelock)")
	}
}

func TestSingleValueDecided(t *testing.T) {
	c := newCluster(t, 3, 1)
	c.nodes[0].Lead()
	c.nodes[0].Propose("v1")
	c.run(t)
	for i, d := range c.deliver {
		if len(d) != 1 || d[0] != "v1" {
			t.Errorf("node %d delivered %v, want [v1]", i, d)
		}
	}
}

func TestManyValuesSameOrderEverywhere(t *testing.T) {
	c := newCluster(t, 5, 2)
	c.nodes[2].Lead()
	for i := 0; i < 30; i++ {
		c.nodes[2].Propose(fmt.Sprintf("v%d", i))
	}
	c.run(t)
	ref := c.deliver[0]
	if len(ref) != 30 {
		t.Fatalf("node 0 delivered %d values, want 30", len(ref))
	}
	for i := 1; i < 5; i++ {
		if len(c.deliver[i]) != 30 {
			t.Fatalf("node %d delivered %d values, want 30", i, len(c.deliver[i]))
		}
		for k := range ref {
			if c.deliver[i][k] != ref[k] {
				t.Fatalf("node %d order diverges at %d: %v vs %v", i, k, c.deliver[i][k], ref[k])
			}
		}
	}
}

func TestProposeBeforeLeadIsQueued(t *testing.T) {
	c := newCluster(t, 3, 3)
	c.nodes[1].Propose("early")
	c.run(t)
	for i, d := range c.deliver {
		if len(d) != 0 {
			t.Errorf("node %d delivered %v before any leader existed", i, d)
		}
	}
	if c.nodes[1].QueueLen() != 1 {
		t.Errorf("queue = %d, want 1", c.nodes[1].QueueLen())
	}
	c.nodes[1].Lead()
	c.run(t)
	for i, d := range c.deliver {
		if len(d) != 1 || d[0] != "early" {
			t.Errorf("node %d delivered %v, want [early]", i, d)
		}
	}
}

func TestNoQuorumNoProgress(t *testing.T) {
	// Leader in a minority cell cannot decide anything: the non-blocking
	// strong path of the paper starves exactly like this in asynchronous
	// runs.
	c := newCluster(t, 5, 4)
	c.net.Partition([]simnet.NodeID{0, 1}, []simnet.NodeID{2, 3, 4})
	c.nodes[0].Lead()
	c.nodes[0].Propose("stuck")
	c.sched.Run(1_000_000) // livelock-free but not quiescent: held messages remain
	for i, d := range c.deliver {
		if len(d) != 0 {
			t.Errorf("node %d delivered %v across a minority partition", i, d)
		}
	}
	// Healing restores progress (stable run resumes).
	c.net.Heal()
	c.run(t)
	for i, d := range c.deliver {
		if len(d) != 1 || d[0] != "stuck" {
			t.Errorf("node %d delivered %v after heal, want [stuck]", i, d)
		}
	}
}

func TestMajorityPartitionDecidesWithoutMinority(t *testing.T) {
	c := newCluster(t, 5, 5)
	c.net.Partition([]simnet.NodeID{0, 1, 2}, []simnet.NodeID{3, 4})
	c.nodes[0].Lead()
	c.nodes[0].Propose("v")
	c.sched.RunFor(1_000_000)
	for i := 0; i < 3; i++ {
		if len(c.deliver[i]) != 1 {
			t.Errorf("majority node %d delivered %v, want [v]", i, c.deliver[i])
		}
	}
	for i := 3; i < 5; i++ {
		if len(c.deliver[i]) != 0 {
			t.Errorf("minority node %d delivered %v, want none", i, c.deliver[i])
		}
	}
	// After heal the minority catches up with the same order.
	c.net.Heal()
	c.run(t)
	for i := 3; i < 5; i++ {
		if len(c.deliver[i]) != 1 || c.deliver[i][0] != "v" {
			t.Errorf("minority node %d after heal delivered %v", i, c.deliver[i])
		}
	}
}

func TestLeaderFailoverRecoversValue(t *testing.T) {
	// Leader 0 proposes, gets the value accepted, then crashes before
	// anyone learns the decision. The next leader must adopt and finish
	// the value (possibly alongside no-op fillers), never invent a
	// different one.
	c := newCluster(t, 3, 6)
	c.nodes[0].Lead()
	c.nodes[0].Propose("survivor")
	// Let phase 1 + accepts propagate but crash before Decide spreads:
	// run a limited number of steps.
	for i := 0; i < 40; i++ {
		c.sched.Step()
	}
	c.net.Crash(0)
	c.nodes[1].Lead()
	c.nodes[1].Propose("newval")
	c.run(t)
	// Both correct nodes must deliver identical sequences containing
	// "newval", and "survivor" may appear at most once, before/after —
	// but orders must match.
	a, b := flatten(c.deliver[1]), flatten(c.deliver[2])
	if a != b {
		t.Fatalf("correct nodes diverged: %q vs %q", a, b)
	}
	if !contains(c.deliver[1], "newval") {
		t.Errorf("new leader's value lost: %v", c.deliver[1])
	}
}

func TestDuelingProposersConverge(t *testing.T) {
	// Conflicting Ω hints: both 0 and 1 try to lead. Safety must hold
	// (identical delivery everywhere); progress is achieved once one of
	// them backs off and the other establishes a ballot.
	c := newCluster(t, 3, 7)
	c.nodes[0].Lead()
	c.nodes[1].Lead()
	c.nodes[0].Propose("a")
	c.nodes[1].Propose("b")
	c.sched.Run(2_000_000)
	ref := flatten(c.deliver[0])
	for i := 1; i < 3; i++ {
		if flatten(c.deliver[i]) != ref {
			t.Fatalf("node %d diverged: %q vs %q", i, flatten(c.deliver[i]), ref)
		}
	}
}

func TestStopLeadRequeues(t *testing.T) {
	c := newCluster(t, 3, 8)
	c.nodes[0].Lead()
	c.run(t)
	c.nodes[0].Propose("v")
	c.nodes[0].StopLead()
	if c.nodes[0].QueueLen() != 1 {
		t.Fatalf("queue = %d after StopLead, want 1 (value requeued)", c.nodes[0].QueueLen())
	}
	c.nodes[1].Lead()
	// Value sits on node 0's queue; node 1 cannot order what it never
	// received — the TOB layer is responsible for disseminating values.
	// Here we re-propose through node 1 directly.
	c.nodes[1].Propose("v")
	c.run(t)
	if !contains(c.deliver[2], "v") {
		t.Errorf("node 2 delivered %v, want v present", c.deliver[2])
	}
}

func TestSafetyUnderPartitionChurn(t *testing.T) {
	// Repeatedly partition and heal while values flow; all nodes must end
	// with the same delivery order (prefix-consistency is implied by slot
	// order delivery).
	c := newCluster(t, 5, 9)
	c.nodes[0].Lead()
	val := 0
	for round := 0; round < 6; round++ {
		for k := 0; k < 4; k++ {
			c.nodes[0].Propose(fmt.Sprintf("v%d", val))
			val++
		}
		if round%2 == 0 {
			c.net.Partition([]simnet.NodeID{0, 1, 2}, []simnet.NodeID{3, 4})
		} else {
			c.net.Heal()
		}
		c.sched.RunFor(5_000)
	}
	c.net.Heal()
	c.run(t)
	ref := flatten(c.deliver[0])
	if len(c.deliver[0]) != val {
		t.Fatalf("node 0 delivered %d values, want %d", len(c.deliver[0]), val)
	}
	for i := 1; i < 5; i++ {
		if flatten(c.deliver[i]) != ref {
			t.Fatalf("node %d diverged", i)
		}
	}
}

func flatten(vals []any) string {
	out := ""
	for _, v := range vals {
		if _, isNoop := v.(NoOp); isNoop {
			continue
		}
		out += fmt.Sprintf("%v|", v)
	}
	return out
}

// vcount counts the delivered values, skipping hole-filling no-ops.
func vcount(vals []any) int {
	k := 0
	for _, v := range vals {
		if _, isNoop := v.(NoOp); !isNoop {
			k++
		}
	}
	return k
}

func contains(vals []any, want any) bool {
	for _, v := range vals {
		if v == want {
			return true
		}
	}
	return false
}

func TestNackPreemptsLowerBallot(t *testing.T) {
	// Leader 0 establishes a ballot; leader 1 then takes a higher one and
	// releases it (Ω moved on). When 0 proposes on its stale ballot it is
	// nacked, re-acquires with a fresh higher ballot, and the value
	// survives. (With *both* nodes insisting on leadership the preemption
	// cap deliberately stops the duel — breaking such ties is Ω's job,
	// exercised in the tob package.)
	c := newCluster(t, 3, 21)
	c.nodes[0].Lead()
	c.run(t)
	if !c.nodes[0].Leading() {
		t.Fatal("node 0 must lead")
	}
	c.nodes[1].Lead()
	c.run(t)
	if !c.nodes[1].Leading() {
		t.Fatal("node 1 must have taken over")
	}
	c.nodes[1].StopLead()
	// Node 0's stale proposal is nacked; it retries with a fresh ballot.
	c.nodes[0].Propose("persistent")
	c.run(t)
	if !contains(c.deliver[2], "persistent") {
		t.Errorf("value lost through preemption: %v", c.deliver[2])
	}
}

func TestTwoNodeClusterNeedsBoth(t *testing.T) {
	// Quorum of a 2-node cluster is 2: one crash halts progress (no
	// split-brain possible).
	c := newCluster(t, 2, 22)
	c.net.Crash(1)
	c.nodes[0].Lead()
	c.nodes[0].Propose("v")
	c.sched.Run(2_000_000)
	if len(c.deliver[0]) != 0 {
		t.Error("2-node cluster must not decide with one node down")
	}
}

func TestRetriesTolerateCrashedAcceptor(t *testing.T) {
	// 5 nodes, 2 crashed: quorum of 3 still decides, retries cover the
	// dead acceptors.
	c := newCluster(t, 5, 23)
	c.net.Crash(3)
	c.net.Crash(4)
	c.nodes[0].Lead()
	for i := 0; i < 5; i++ {
		c.nodes[0].Propose(fmt.Sprintf("v%d", i))
	}
	c.run(t)
	for i := 0; i < 3; i++ {
		if len(c.deliver[i]) != 5 {
			t.Errorf("node %d delivered %d, want 5", i, len(c.deliver[i]))
		}
	}
}

func TestDecidedCountAndLeadingAccessors(t *testing.T) {
	c := newCluster(t, 3, 24)
	if c.nodes[0].Leading() {
		t.Error("fresh node must not lead")
	}
	c.nodes[0].Lead()
	c.nodes[0].Propose("v")
	c.run(t)
	if c.nodes[1].Decided() != 1 {
		t.Errorf("decided = %d, want 1", c.nodes[1].Decided())
	}
}

// --- multi-decree fast path -------------------------------------------------

func TestBatchingCollapsesQueuedBacklog(t *testing.T) {
	c := newCluster(t, 3, 31)
	// Queue the whole burst before leadership: Phase 1 completes once and
	// drainQueue ships the backlog as shared slots, not one slot per value.
	const vals = 20
	for k := 0; k < vals; k++ {
		c.nodes[0].Propose(fmt.Sprintf("v%02d", k))
	}
	c.nodes[0].Lead()
	c.run(t)
	want := flatten(c.deliver[0])
	if got := vcount(c.deliver[0]); got != vals {
		t.Fatalf("leader delivered %d values, want %d", got, vals)
	}
	for i := 1; i < 3; i++ {
		if got := flatten(c.deliver[i]); got != want {
			t.Errorf("node %d order %v != leader order %v", i, got, want)
		}
	}
	ct := c.nodes[0].Counters()
	if ct.DecidedSlots >= vals {
		t.Errorf("decided %d slots for %d values — batching never collapsed the backlog", ct.DecidedSlots, vals)
	}
	if ct.BatchedValues < vals/2 {
		t.Errorf("only %d values rode shared slots, want most of %d", ct.BatchedValues, vals)
	}
}

func TestPipelineAtBatchCapOneDecidesAllInOrder(t *testing.T) {
	c := newCluster(t, 3, 32)
	c.nodes[0].SetBatchCap(1)
	c.nodes[0].SetPipelineDepth(3)
	const vals = 12
	for k := 0; k < vals; k++ {
		c.nodes[0].Propose(fmt.Sprintf("v%02d", k))
	}
	c.nodes[0].Lead()
	c.run(t)
	want := flatten(c.deliver[0])
	if got := vcount(c.deliver[0]); got != vals {
		t.Fatalf("leader delivered %d values, want %d", got, vals)
	}
	for i := 1; i < 3; i++ {
		if got := flatten(c.deliver[i]); got != want {
			t.Errorf("node %d order %v != leader order %v", i, got, want)
		}
	}
	ct := c.nodes[0].Counters()
	if ct.BatchedValues != 0 {
		t.Errorf("batch cap 1 still batched %d values", ct.BatchedValues)
	}
	if ct.DecidedSlots < vals {
		t.Errorf("decided %d slots, want ≥ %d (one per value)", ct.DecidedSlots, vals)
	}
}

func TestStableLeaderRunsPhase1Once(t *testing.T) {
	c := newCluster(t, 3, 33)
	c.nodes[0].Lead()
	c.run(t)
	for k := 0; k < 10; k++ {
		c.nodes[0].Propose(fmt.Sprintf("v%02d", k))
		c.run(t)
	}
	ct := c.nodes[0].Counters()
	if ct.Prepares != 1 {
		t.Errorf("stable leader ran Phase 1 %d times across 10 sequential decrees, want 1", ct.Prepares)
	}
	if got := vcount(c.deliver[1]); got != 10 {
		t.Errorf("follower delivered %d values, want 10", got)
	}
}

func TestDupFilterDropsAlreadyDecidedValues(t *testing.T) {
	c := newCluster(t, 3, 34)
	c.nodes[0].SetDupFilter(func(v any) bool { return v == "dup" })
	c.nodes[0].Propose("dup")
	c.nodes[0].Propose("fresh")
	c.nodes[0].Lead()
	c.run(t)
	if got := flatten(c.deliver[0]); got != "fresh|" {
		t.Errorf("delivered %q, want \"fresh|\" (dup filtered before wasting a slot)", got)
	}
}

func TestBackoffJitteredExponential(t *testing.T) {
	c := newCluster(t, 3, 35)
	n := c.nodes[0]
	for attempt := 0; attempt < 4; attempt++ {
		lo := n.retryDelay << attempt
		hi := lo + n.retryDelay/2
		distinct := map[sim.Time]bool{}
		for i := 0; i < 50; i++ {
			d := n.backoff(attempt)
			if d < lo || d > hi {
				t.Fatalf("backoff(%d) = %d, want in [%d, %d]", attempt, d, lo, hi)
			}
			distinct[d] = true
		}
		if len(distinct) < 2 {
			t.Errorf("backoff(%d) returned a constant — no jitter", attempt)
		}
	}
}

// --- leader leases ----------------------------------------------------------

func TestLeaseHeldAfterQuorumGrant(t *testing.T) {
	c := newCluster(t, 3, 36)
	c.nodes[0].EnableLease(5000)
	c.nodes[0].Lead()
	c.nodes[0].Propose("v")
	c.run(t)
	if !c.nodes[0].LeaseHeld() {
		t.Fatal("leader with a quorum of grants must hold the lease")
	}
	if ct := c.nodes[0].Counters(); ct.LeaseRequests == 0 {
		t.Error("no lease request counted")
	}
	for i := 1; i < 3; i++ {
		if c.nodes[i].LeaseHeld() {
			t.Errorf("non-leader %d claims the lease", i)
		}
	}
}

// TestLeaseLostAfterPartitionExpiry is the fault-honesty obligation at the
// consensus layer: a leader cut off from its quorum stops holding the lease
// once the granted window has passed — and only then can a rival take over,
// because the granted vows block a competing ballot exactly as long as the
// old leader might still be serving.
func TestLeaseLostAfterPartitionExpiry(t *testing.T) {
	c := newCluster(t, 3, 37)
	c.nodes[0].EnableLease(300)
	c.nodes[0].Lead()
	c.run(t)
	if !c.nodes[0].LeaseHeld() {
		t.Fatal("leader must hold the lease before the fault")
	}
	c.net.Partition([]simnet.NodeID{0}, []simnet.NodeID{1, 2})
	// Retries on an undecidable proposal advance the clock past the
	// granted window without any grant traffic getting through.
	c.nodes[0].Propose("stranded")
	c.run(t)
	if c.nodes[0].LeaseHeld() {
		t.Fatal("partitioned leader still claims the lease after expiry")
	}
	// The vows on the majority side have expired too: a rival leads and
	// decides without the old leader.
	c.nodes[1].Lead()
	c.nodes[1].Propose("rival")
	c.run(t)
	if flatten(c.deliver[1]) == "" {
		t.Fatal("new leader decided nothing after the vow window passed")
	}
	if c.nodes[0].LeaseHeld() {
		t.Error("deposed leader re-acquired the lease while partitioned")
	}
}
