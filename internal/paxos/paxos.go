// Package paxos implements multi-slot (multi-decree) Paxos, the quorum-based
// consensus protocol the paper names as the non-blocking implementation of
// total order broadcast (§2.3: "TOB … can be implemented in a non-blocking
// fashion through e.g., quorum-based protocols such as Paxos [29]").
//
// Each Node plays all three roles:
//
//   - acceptor: a single promised ballot guards all slots; accepted values
//     are kept per slot;
//   - proposer: when told to lead (by the TOB layer, driven by the failure
//     detector Ω), the node runs phase 1 once for all slots from its first
//     undelivered slot, adopts the highest-ballot accepted value it
//     discovers per slot, fills holes with no-ops, and then assigns queued
//     values to fresh slots in phase 2;
//   - learner: decided values are delivered in contiguous slot order.
//
// Progress requires a quorum (⌊n/2⌋+1) of acceptors to be reachable, so a
// leader inside a minority partition cannot decide anything — which is
// precisely how asynchronous runs starve strong operations in the paper's
// model — while safety (no two nodes deliver different values for one slot)
// holds unconditionally.
package paxos

import (
	"sort"

	"bayou/internal/sim"
	"bayou/internal/simnet"
)

// Ballot numbers are globally unique per proposer: ballot = round*n + id.
type Ballot int64

// Slot identifies a consensus instance; slots are decided independently and
// delivered in order.
type Slot int64

// NoOp is the hole-filling value proposed by a new leader for slots that may
// have been started but whose value cannot be recovered. The TOB layer
// skips no-ops at delivery.
type NoOp struct{}

// Wire messages. They are exported so tests can inspect traffic, but only
// Node methods produce or consume them.
type (
	// PrepareMsg starts phase 1 for all slots ≥ From at ballot Ballot.
	PrepareMsg struct {
		Ballot Ballot
		From   Slot
	}
	// PromiseMsg answers a Prepare, carrying every accepted (slot,
	// ballot, value) triple at or above From.
	PromiseMsg struct {
		Ballot   Ballot
		From     Slot
		Accepted []SlotVal
	}
	// NackMsg rejects a Prepare or Accept carrying the higher promised
	// ballot.
	NackMsg struct {
		Ballot Ballot
	}
	// AcceptMsg is the phase-2 proposal for one slot.
	AcceptMsg struct {
		Ballot Ballot
		Slot   Slot
		Val    any
	}
	// AckMsg acknowledges an accepted phase-2 proposal.
	AckMsg struct {
		Ballot Ballot
		Slot   Slot
	}
	// DecideMsg announces a chosen value for a slot.
	DecideMsg struct {
		Slot Slot
		Val  any
	}
	// LearnReq asks peers to re-announce every decided slot ≥ From — the
	// learner catch-up of a recovering node whose DecideMsg traffic was
	// lost while it was crashed.
	LearnReq struct {
		From Slot
	}
)

// SlotVal is an accepted value with its ballot, reported in promises.
type SlotVal struct {
	Slot   Slot
	Ballot Ballot
	Val    any
}

type proposal struct {
	val     any
	acks    map[simnet.NodeID]bool
	retries int
}

// Node is one Paxos participant. Construct with New; wire Handle into the
// node's mux. Not safe for concurrent use (the simulation is
// single-threaded).
type Node struct {
	id       simnet.NodeID
	peers    []simnet.NodeID
	sched    *sim.Scheduler
	net      *simnet.Network
	onDecide func(Slot, any)
	onLead   func() // invoked when a ballot is established (may be nil)

	// Acceptor.
	promised Ballot
	accepted map[Slot]SlotVal

	// Learner.
	decided     map[Slot]any
	nextDeliver Slot
	// truncBelow is the compaction floor: decided (and accepted) state for
	// slots below it has been dropped after a checkpoint — a learner asking
	// for those slots is served by state transfer at the TOB layer instead
	// of per-slot replay.
	truncBelow Slot

	// Proposer.
	wantLead  bool
	preparing bool
	leading   bool
	curBallot Ballot
	maxSeen   Ballot
	promises  map[simnet.NodeID]PromiseMsg
	queue     []any
	inflight  map[Slot]*proposal
	nextSlot  Slot

	retryDelay  sim.Time
	maxRetries  int
	preemptions int // consecutive preemptions; capped to avoid livelock

	decidedCount int64
}

// New returns a Paxos node. peers must list every participant including id;
// onDecide receives decided values (including NoOp fillers) in contiguous
// slot order starting at 0.
func New(id simnet.NodeID, peers []simnet.NodeID, sched *sim.Scheduler, net *simnet.Network, onDecide func(Slot, any)) *Node {
	sorted := append([]simnet.NodeID(nil), peers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return &Node{
		id:         id,
		peers:      sorted,
		sched:      sched,
		net:        net,
		onDecide:   onDecide,
		accepted:   make(map[Slot]SlotVal),
		decided:    make(map[Slot]any),
		promises:   make(map[simnet.NodeID]PromiseMsg),
		inflight:   make(map[Slot]*proposal),
		retryDelay: 200,
		maxRetries: 10,
	}
}

// SetOnLead registers a callback invoked whenever the node establishes a
// ballot (completes phase 1). The TOB layer uses it to hand pooled
// candidates to a freshly promoted leader.
func (n *Node) SetOnLead(fn func()) { n.onLead = fn }

func (n *Node) quorum() int { return len(n.peers)/2 + 1 }

// nextBallot returns a fresh ballot above everything seen, unique to this
// node.
func (n *Node) nextBallot() Ballot {
	np := Ballot(len(n.peers))
	round := n.maxSeen/np + 1
	return round*np + Ballot(n.id)
}

// sendAll sends a message to every peer including the node itself (self
// traffic flows through the network for uniform, deterministic scheduling).
func (n *Node) sendAll(payload any) {
	for _, p := range n.peers {
		n.net.Send(n.id, p, payload)
	}
}

// Lead asks the node to (keep trying to) become leader. The TOB layer calls
// it when Ω designates this node. Idempotent: a node already leading just
// drains its queue.
func (n *Node) Lead() {
	n.wantLead = true
	if n.leading {
		n.drainQueue()
		return
	}
	if !n.preparing {
		n.startPhase1()
	}
}

// StopLead makes the node stop acquiring or exercising leadership (Ω moved
// on). In-flight proposals are abandoned; their values are *not* lost: they
// remain queued for a future leader if undecided.
func (n *Node) StopLead() {
	n.wantLead = false
	n.preparing = false
	n.leading = false
	for slot, p := range n.inflight {
		if _, done := n.decided[slot]; !done {
			n.queue = append(n.queue, p.val)
		}
		delete(n.inflight, slot)
	}
}

// Propose enqueues a value for total ordering. Only a leader assigns slots;
// followers keep the value queued so a later leadership acquisition (or a
// duplicate proposal through another node) can order it.
func (n *Node) Propose(v any) {
	n.queue = append(n.queue, v)
	if n.leading {
		n.drainQueue()
	} else if n.wantLead && !n.preparing {
		n.startPhase1()
	}
}

// QueueLen reports the number of values waiting for a slot on this node.
func (n *Node) QueueLen() int { return len(n.queue) }

// Decided reports how many slots this node has delivered.
func (n *Node) Decided() int64 { return n.decidedCount }

// Leading reports whether the node currently holds an established ballot.
func (n *Node) Leading() bool { return n.leading }

func (n *Node) startPhase1() {
	n.preparing = true
	n.leading = false
	n.curBallot = n.nextBallot()
	n.maxSeen = n.curBallot
	n.promises = make(map[simnet.NodeID]PromiseMsg)
	msg := PrepareMsg{Ballot: n.curBallot, From: n.nextDeliver}
	n.sendAll(msg)
	n.scheduleRetry(n.curBallot, 0, func() bool {
		if !n.preparing || n.curBallot != msg.Ballot {
			return false
		}
		n.sendAll(msg)
		return true
	})
}

// scheduleRetry re-invokes resend (which reports whether to continue) up to
// maxRetries times with exponential backoff. Retries tolerate crashed
// acceptors; partition-held messages are re-delivered by simnet anyway.
func (n *Node) scheduleRetry(ballot Ballot, attempt int, resend func() bool) {
	if attempt >= n.maxRetries {
		return
	}
	delay := n.retryDelay << uint(attempt)
	n.sched.After(delay, func() {
		if n.curBallot != ballot {
			return
		}
		if resend() {
			n.scheduleRetry(ballot, attempt+1, resend)
		}
	})
}

// Handle consumes Paxos wire traffic; it reports false for foreign payloads.
func (n *Node) Handle(from simnet.NodeID, payload any) bool {
	switch m := payload.(type) {
	case PrepareMsg:
		n.onPrepare(from, m)
	case PromiseMsg:
		n.onPromise(from, m)
	case NackMsg:
		n.onNack(m)
	case AcceptMsg:
		n.onAccept(from, m)
	case AckMsg:
		n.onAck(from, m)
	case DecideMsg:
		n.onDecideMsg(m)
	case LearnReq:
		n.onLearnReq(from, m)
	default:
		return false
	}
	return true
}

// Resync broadcasts a learner catch-up request: every peer re-announces the
// decided slots this node slept through. Safe to call at any time — decided
// values are final, so duplicate announcements are idempotent.
func (n *Node) Resync() {
	n.sendAll(LearnReq{From: n.nextDeliver})
}

// NextDeliver returns the next undelivered slot — the learner cursor a
// checkpoint anchors to.
func (n *Node) NextDeliver() Slot { return n.nextDeliver }

// CompactBelow drops decided and accepted state for slots below s — the
// consensus half of log truncation. The maps are rebuilt right-sized (Go
// maps never shrink in place), so a long-lived node's Paxos footprint is
// bounded by the window since its last checkpoint. Learners that later ask
// for truncated slots are caught up by checkpoint state transfer at the TOB
// layer; the acceptor forgetting old accepted values is safe for the same
// reason — every node that could still need a truncated slot's value is
// behind some peer's checkpoint and receives the image that already contains
// it.
func (n *Node) CompactBelow(s Slot) {
	if s <= n.truncBelow {
		return
	}
	n.truncBelow = s
	decided := make(map[Slot]any, len(n.decided))
	for slot, v := range n.decided {
		if slot >= s {
			decided[slot] = v
		}
	}
	n.decided = decided
	accepted := make(map[Slot]SlotVal, len(n.accepted))
	for slot, sv := range n.accepted {
		if slot >= s {
			accepted[slot] = sv
		}
	}
	n.accepted = accepted
}

// FastForward jumps the learner cursor to slot s after a checkpoint image
// covering everything below it was installed: slots below s will never be
// delivered here (their effects are inside the image). Buffered decided
// slots that are now contiguous drain immediately.
func (n *Node) FastForward(s Slot) {
	if s <= n.nextDeliver {
		return
	}
	for slot := range n.decided {
		if slot < s {
			delete(n.decided, slot)
		}
	}
	n.nextDeliver = s
	if n.nextSlot < s {
		n.nextSlot = s
	}
	for {
		v, ok := n.decided[n.nextDeliver]
		if !ok {
			return
		}
		slot := n.nextDeliver
		n.nextDeliver++
		n.decidedCount++
		n.onDecide(slot, v)
	}
}

// onLearnReq re-announces decided slots ≥ From to the requester. Slots below
// the compaction floor are gone; the TOB layer pairs this replay with a
// state-transfer record covering them.
func (n *Node) onLearnReq(from simnet.NodeID, m LearnReq) {
	slots := make([]Slot, 0, len(n.decided))
	for s := range n.decided {
		if s >= m.From {
			slots = append(slots, s)
		}
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	for _, s := range slots {
		n.net.Send(n.id, from, DecideMsg{Slot: s, Val: n.decided[s]})
	}
}

func (n *Node) onPrepare(from simnet.NodeID, m PrepareMsg) {
	if m.Ballot > n.maxSeen {
		n.maxSeen = m.Ballot
	}
	if m.Ballot < n.promised {
		n.net.Send(n.id, from, NackMsg{Ballot: n.promised})
		return
	}
	n.promised = m.Ballot
	var acc []SlotVal
	for slot, sv := range n.accepted {
		if slot >= m.From {
			acc = append(acc, sv)
		}
	}
	sort.Slice(acc, func(i, j int) bool { return acc[i].Slot < acc[j].Slot })
	n.net.Send(n.id, from, PromiseMsg{Ballot: m.Ballot, From: m.From, Accepted: acc})
}

func (n *Node) onPromise(from simnet.NodeID, m PromiseMsg) {
	if !n.preparing || m.Ballot != n.curBallot {
		return
	}
	n.promises[from] = m
	if len(n.promises) < n.quorum() {
		return
	}
	// Quorum of promises: leadership established.
	n.preparing = false
	n.leading = true
	n.preemptions = 0
	// Adopt the highest-ballot accepted value per slot.
	merged := make(map[Slot]SlotVal)
	var maxSlot Slot = -1
	for _, pm := range n.promises {
		for _, sv := range pm.Accepted {
			if cur, ok := merged[sv.Slot]; !ok || sv.Ballot > cur.Ballot {
				merged[sv.Slot] = sv
			}
			if sv.Slot > maxSlot {
				maxSlot = sv.Slot
			}
		}
	}
	// Slots this node itself assigned in an earlier (preempted) stint may
	// have no accepted value anywhere; they must still be filled, or the
	// contiguous delivery order stalls on the hole forever.
	if n.nextSlot-1 > maxSlot {
		maxSlot = n.nextSlot - 1
	}
	if n.nextSlot <= maxSlot {
		n.nextSlot = maxSlot + 1
	}
	if n.nextSlot < n.nextDeliver {
		n.nextSlot = n.nextDeliver
	}
	slots := make([]Slot, 0, len(merged))
	for s := range merged {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	// Re-propose adopted values and fill holes with no-ops.
	for s := n.nextDeliver; s <= maxSlot; s++ {
		if _, done := n.decided[s]; done {
			continue
		}
		if sv, ok := merged[s]; ok {
			n.propose(s, sv.Val)
		} else {
			n.propose(s, NoOp{})
		}
	}
	n.drainQueue()
	if n.onLead != nil {
		n.onLead()
	}
}

func (n *Node) onNack(m NackMsg) {
	if m.Ballot > n.maxSeen {
		n.maxSeen = m.Ballot
	}
	if m.Ballot <= n.curBallot {
		return
	}
	// Preempted: abandon the ballot; retry from scratch if still willing.
	wasActive := n.preparing || n.leading
	n.preparing = false
	n.leading = false
	for slot, p := range n.inflight {
		if _, done := n.decided[slot]; !done {
			n.queue = append(n.queue, p.val)
		}
		delete(n.inflight, slot)
	}
	// Dueling-proposer livelock is broken by capping consecutive
	// preemption-triggered retries; Ω re-kicks leadership afterwards.
	if wasActive && n.wantLead && n.preemptions < n.maxRetries {
		n.preemptions++
		delay := n.retryDelay << uint(n.preemptions)
		n.sched.After(delay, func() {
			if n.wantLead && !n.preparing && !n.leading {
				n.startPhase1()
			}
		})
	}
}

func (n *Node) propose(slot Slot, val any) {
	p := &proposal{val: val, acks: make(map[simnet.NodeID]bool)}
	n.inflight[slot] = p
	ballot := n.curBallot
	msg := AcceptMsg{Ballot: ballot, Slot: slot, Val: val}
	n.sendAll(msg)
	n.scheduleRetry(ballot, 0, func() bool {
		if !n.leading || n.curBallot != ballot {
			return false
		}
		if _, done := n.decided[slot]; done {
			return false
		}
		n.sendAll(msg)
		return true
	})
}

func (n *Node) drainQueue() {
	for n.leading && len(n.queue) > 0 {
		v := n.queue[0]
		n.queue = n.queue[1:]
		n.propose(n.nextSlot, v)
		n.nextSlot++
	}
}

func (n *Node) onAccept(from simnet.NodeID, m AcceptMsg) {
	if m.Ballot > n.maxSeen {
		n.maxSeen = m.Ballot
	}
	if m.Ballot < n.promised {
		n.net.Send(n.id, from, NackMsg{Ballot: n.promised})
		return
	}
	n.promised = m.Ballot
	n.accepted[m.Slot] = SlotVal{Slot: m.Slot, Ballot: m.Ballot, Val: m.Val}
	n.net.Send(n.id, from, AckMsg{Ballot: m.Ballot, Slot: m.Slot})
}

func (n *Node) onAck(from simnet.NodeID, m AckMsg) {
	if m.Ballot != n.curBallot {
		return
	}
	p, ok := n.inflight[m.Slot]
	if !ok {
		return
	}
	p.acks[from] = true
	if len(p.acks) < n.quorum() {
		return
	}
	delete(n.inflight, m.Slot)
	n.sendAll(DecideMsg{Slot: m.Slot, Val: p.val})
}

func (n *Node) onDecideMsg(m DecideMsg) {
	if m.Slot < n.nextDeliver {
		// Already delivered here (delivery is contiguous); without this
		// guard a late replay would re-enter the truncated decided map.
		return
	}
	if _, ok := n.decided[m.Slot]; ok {
		return
	}
	n.decided[m.Slot] = m.Val
	if m.Slot >= n.nextSlot {
		n.nextSlot = m.Slot + 1
	}
	for {
		v, ok := n.decided[n.nextDeliver]
		if !ok {
			return
		}
		slot := n.nextDeliver
		n.nextDeliver++
		n.decidedCount++
		n.onDecide(slot, v)
	}
}
