// Package paxos implements multi-slot (multi-decree) Paxos, the quorum-based
// consensus protocol the paper names as the non-blocking implementation of
// total order broadcast (§2.3: "TOB … can be implemented in a non-blocking
// fashion through e.g., quorum-based protocols such as Paxos [29]").
//
// Each Node plays all three roles:
//
//   - acceptor: a single promised ballot guards all slots; accepted values
//     are kept per slot;
//   - proposer: when told to lead (by the TOB layer, driven by the failure
//     detector Ω), the node runs phase 1 once for all slots from its first
//     undelivered slot, adopts the highest-ballot accepted value it
//     discovers per slot, fills holes with no-ops, and then assigns queued
//     values to fresh slots in phase 2;
//   - learner: decided values are delivered in contiguous slot order.
//
// A stable leader runs the classic multi-decree fast path: phase 1 executes
// once per ballot, after which every queued value costs one phase-2 round —
// and the rounds themselves are amortized further by slot batching (a whole
// pending Batch decided as one slot value) and pipelining (a bounded window
// of slots in flight concurrently, acks tracked out of order per slot).
// With leases enabled (EnableLease) the leader additionally acquires a
// quorum-granted, clock-fenced lease under which LeaseHeld reports that the
// leader's contiguous delivered prefix is the full decided prefix — the
// license the TOB layer uses to serve strong reads locally with zero
// proposal rounds.
//
// Progress requires a quorum (⌊n/2⌋+1) of acceptors to be reachable, so a
// leader inside a minority partition cannot decide anything — which is
// precisely how asynchronous runs starve strong operations in the paper's
// model — while safety (no two nodes deliver different values for one slot)
// holds unconditionally. The lease adds no safety assumption beyond the
// simulator's single virtual clock: a quorum's vows block any competing
// ballot until they expire, and LeaseHeld turns false at the same instant
// the vows do.
package paxos

import (
	"sort"

	"bayou/internal/sim"
	"bayou/internal/simnet"
)

// Ballot numbers are globally unique per proposer: ballot = round*n + id.
type Ballot int64

// Slot identifies a consensus instance; slots are decided independently and
// delivered in order.
type Slot int64

// NoOp is the hole-filling value proposed by a new leader for slots that may
// have been started but whose value cannot be recovered. The TOB layer
// skips no-ops at delivery.
type NoOp struct{}

// Batch is several queued values decided atomically as one slot. The TOB
// layer unpacks a decided Batch in order, so one consensus round orders the
// whole pending backlog of a stable leader.
type Batch []any

// DefaultPipelineDepth bounds in-flight phase-2 slots when SetPipelineDepth
// is never called.
const DefaultPipelineDepth = 8

// DefaultBatchCap bounds how many queued values one slot may carry when
// SetBatchCap is never called. Cap 1 reproduces the classic one-value-per-
// slot protocol (the pre-batching baseline the scaling tests compare
// against).
const DefaultBatchCap = 64

// Wire messages. They are exported so tests can inspect traffic, but only
// Node methods produce or consume them.
type (
	// PrepareMsg starts phase 1 for all slots ≥ From at ballot Ballot.
	PrepareMsg struct {
		Ballot Ballot
		From   Slot
	}
	// PromiseMsg answers a Prepare, carrying every accepted (slot,
	// ballot, value) triple at or above From.
	PromiseMsg struct {
		Ballot   Ballot
		From     Slot
		Accepted []SlotVal
	}
	// NackMsg rejects a Prepare or Accept carrying the higher promised
	// ballot. Hold, when non-zero, is the expiry of a lease vow that
	// caused the rejection even though the ballot was high enough: the
	// preempted proposer should not expect promises before that time.
	NackMsg struct {
		Ballot Ballot
		Hold   sim.Time
	}
	// AcceptMsg is the phase-2 proposal for one slot.
	AcceptMsg struct {
		Ballot Ballot
		Slot   Slot
		Val    any
	}
	// AckMsg acknowledges an accepted phase-2 proposal.
	AckMsg struct {
		Ballot Ballot
		Slot   Slot
	}
	// DecideMsg announces a chosen value for a slot.
	DecideMsg struct {
		Slot Slot
		Val  any
	}
	// LearnReq asks peers to re-announce every decided slot ≥ From — the
	// learner catch-up of a recovering node whose DecideMsg traffic was
	// lost while it was crashed.
	LearnReq struct {
		From Slot
	}
	// LeaseReq asks every acceptor to vow, until the absolute scheduler
	// time Until, not to promise or accept any ballot above Ballot owned
	// by a different proposer. The leader sends it right after phase 1
	// and again, query-driven, when less than half the lease remains.
	LeaseReq struct {
		Ballot Ballot
		Until  sim.Time
	}
	// LeaseGrant confirms one acceptor's vow for LeaseReq.
	LeaseGrant struct {
		Ballot Ballot
		Until  sim.Time
	}
)

// SlotVal is an accepted value with its ballot, reported in promises.
type SlotVal struct {
	Slot   Slot
	Ballot Ballot
	Val    any
}

type proposal struct {
	val     any
	acks    map[simnet.NodeID]bool
	retries int
}

// Counters are cumulative protocol-cost counters, exposed so tests and
// benchmarks can pin the message-economy claims (batching divides Proposals
// by the batch size; lease reads add zero to Prepares and Proposals).
type Counters struct {
	// Prepares counts phase-1 rounds started (ballot acquisitions).
	Prepares int64
	// Proposals counts phase-2 slot proposals sent (accept rounds),
	// including hole-filling no-ops and adopted re-proposals.
	Proposals int64
	// DecidedSlots counts slots delivered in contiguous order.
	DecidedSlots int64
	// BatchedValues counts queued values that shared their slot with at
	// least one other value.
	BatchedValues int64
	// LeaseRequests counts lease acquisition/renewal rounds.
	LeaseRequests int64
}

// Node is one Paxos participant. Construct with New; wire Handle into the
// node's mux. Not safe for concurrent use (the simulation is
// single-threaded).
type Node struct {
	id       simnet.NodeID
	peers    []simnet.NodeID
	sched    *sim.Scheduler
	net      *simnet.Network
	onDecide func(Slot, any)
	onLead   func() // invoked when a ballot is established (may be nil)

	// Acceptor.
	promised Ballot
	accepted map[Slot]SlotVal
	// Lease vow: until vowUntil this acceptor refuses ballots above
	// vowBallot from any proposer other than vowBallot's owner.
	vowBallot Ballot
	vowUntil  sim.Time

	// Learner.
	decided     map[Slot]any
	nextDeliver Slot
	// truncBelow is the compaction floor: decided (and accepted) state for
	// slots below it has been dropped after a checkpoint — a learner asking
	// for those slots is served by state transfer at the TOB layer instead
	// of per-slot replay.
	truncBelow Slot

	// Proposer.
	wantLead  bool
	preparing bool
	leading   bool
	curBallot Ballot
	maxSeen   Ballot
	promises  map[simnet.NodeID]PromiseMsg
	queue     []any
	inflight  map[Slot]*proposal
	nextSlot  Slot

	// Multi-decree fast path knobs.
	pipeline int // max in-flight phase-2 slots
	batchCap int // max queued values per slot
	// dupFilter, when set, drops queued values the TOB layer has already
	// seen decided (in a lower slot) before they are re-proposed — the
	// leadership-change dedup that saves wasted consensus rounds.
	dupFilter func(any) bool

	// Leader lease (leaseDur == 0 disables the machinery entirely).
	leaseDur    sim.Time
	leaseBallot Ballot
	leaseGrants map[simnet.NodeID]sim.Time
	leaseUntil  sim.Time
	leaseReqAt  sim.Time
	leaseReqFor Ballot

	retryDelay  sim.Time
	maxRetries  int
	preemptions int // consecutive preemptions; capped to avoid livelock

	decidedCount int64
	counters     Counters
}

// New returns a Paxos node. peers must list every participant including id;
// onDecide receives decided values (including NoOp fillers and Batch
// envelopes) in contiguous slot order starting at 0.
func New(id simnet.NodeID, peers []simnet.NodeID, sched *sim.Scheduler, net *simnet.Network, onDecide func(Slot, any)) *Node {
	sorted := append([]simnet.NodeID(nil), peers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return &Node{
		id:         id,
		peers:      sorted,
		sched:      sched,
		net:        net,
		onDecide:   onDecide,
		accepted:   make(map[Slot]SlotVal),
		decided:    make(map[Slot]any),
		promises:   make(map[simnet.NodeID]PromiseMsg),
		inflight:   make(map[Slot]*proposal),
		pipeline:   DefaultPipelineDepth,
		batchCap:   DefaultBatchCap,
		retryDelay: 200,
		maxRetries: 10,
	}
}

// SetOnLead registers a callback invoked whenever the node establishes a
// ballot (completes phase 1). The TOB layer uses it to hand pooled
// candidates to a freshly promoted leader.
func (n *Node) SetOnLead(fn func()) { n.onLead = fn }

// SetPipelineDepth bounds how many phase-2 slots may be in flight at once
// (minimum 1). Freed window slots are refilled from the queue as acks
// arrive, so decisions overlap instead of serializing on nextDeliver.
func (n *Node) SetPipelineDepth(d int) {
	if d < 1 {
		d = 1
	}
	n.pipeline = d
}

// SetBatchCap bounds how many queued values one slot carries (minimum 1;
// cap 1 disables batching — the classic one-value-per-slot baseline).
func (n *Node) SetBatchCap(c int) {
	if c < 1 {
		c = 1
	}
	n.batchCap = c
}

// SetDupFilter installs the queue-dedup predicate: a queued value for which
// it returns true is already decided (in a lower slot) and is dropped
// instead of re-proposed after a leadership change.
func (n *Node) SetDupFilter(fn func(any) bool) { n.dupFilter = fn }

// EnableLease turns on leader leases with the given duration in scheduler
// ticks. A node already leading acquires one immediately.
func (n *Node) EnableLease(dur sim.Time) {
	n.leaseDur = dur
	if n.leading && dur > 0 {
		n.requestLease()
	}
}

// Counters returns the cumulative protocol-cost counters.
func (n *Node) Counters() Counters { return n.counters }

func (n *Node) quorum() int { return len(n.peers)/2 + 1 }

// owner maps a ballot to the proposer that minted it (ballot = round*n+id).
func (n *Node) owner(b Ballot) simnet.NodeID {
	return simnet.NodeID(int64(b) % int64(len(n.peers)))
}

// nextBallot returns a fresh ballot above everything seen, unique to this
// node.
func (n *Node) nextBallot() Ballot {
	np := Ballot(len(n.peers))
	round := n.maxSeen/np + 1
	return round*np + Ballot(n.id)
}

// sendAll sends a message to every peer including the node itself (self
// traffic flows through the network for uniform, deterministic scheduling).
func (n *Node) sendAll(payload any) {
	for _, p := range n.peers {
		n.net.Send(n.id, p, payload)
	}
}

// Lead asks the node to (keep trying to) become leader. The TOB layer calls
// it when Ω designates this node. Idempotent: a node already leading just
// drains its queue.
func (n *Node) Lead() {
	n.wantLead = true
	if n.leading {
		n.drainQueue()
		return
	}
	if !n.preparing {
		n.startPhase1()
	}
}

// StopLead makes the node stop acquiring or exercising leadership (Ω moved
// on). In-flight proposals are abandoned; their values are *not* lost: they
// remain queued for a future leader if undecided.
func (n *Node) StopLead() {
	n.wantLead = false
	n.preparing = false
	n.leading = false
	n.requeueInflight()
}

// requeueInflight returns abandoned in-flight values to the queue front, in
// slot order with batches unpacked, so a later leadership stint re-proposes
// them before newer traffic and the dedup filter sees individual values.
func (n *Node) requeueInflight() {
	if len(n.inflight) == 0 {
		return
	}
	slots := make([]Slot, 0, len(n.inflight))
	for slot := range n.inflight {
		slots = append(slots, slot)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	var requeued []any
	for _, slot := range slots {
		p := n.inflight[slot]
		delete(n.inflight, slot)
		if _, done := n.decided[slot]; done {
			continue
		}
		switch v := p.val.(type) {
		case Batch:
			requeued = append(requeued, v...)
		case NoOp:
			// Hole fillers carry no client value; a future leader refills.
		default:
			requeued = append(requeued, v)
		}
	}
	n.queue = append(requeued, n.queue...)
}

// Propose enqueues a value for total ordering. Only a leader assigns slots;
// followers keep the value queued so a later leadership acquisition (or a
// duplicate proposal through another node) can order it.
func (n *Node) Propose(v any) {
	n.queue = append(n.queue, v)
	if n.leading {
		n.drainQueue()
	} else if n.wantLead && !n.preparing {
		n.startPhase1()
	}
}

// QueueLen reports the number of values waiting for a slot on this node.
func (n *Node) QueueLen() int { return len(n.queue) }

// Decided reports how many slots this node has delivered.
func (n *Node) Decided() int64 { return n.decidedCount }

// Leading reports whether the node currently holds an established ballot.
func (n *Node) Leading() bool { return n.leading }

func (n *Node) startPhase1() {
	n.preparing = true
	n.leading = false
	n.curBallot = n.nextBallot()
	n.maxSeen = n.curBallot
	n.promises = make(map[simnet.NodeID]PromiseMsg)
	n.counters.Prepares++
	msg := PrepareMsg{Ballot: n.curBallot, From: n.nextDeliver}
	n.sendAll(msg)
	n.scheduleRetry(n.curBallot, 0, func() bool {
		if !n.preparing || n.curBallot != msg.Ballot {
			return false
		}
		n.sendAll(msg)
		return true
	})
}

// backoff computes the attempt's retry delay: exponential in the attempt
// with a uniformly random jitter of up to half the base step, so retries
// from many nodes desynchronize after a partition heal instead of arriving
// as one synchronized Nack storm.
func (n *Node) backoff(attempt int) sim.Time {
	delay := n.retryDelay << uint(attempt)
	jitter := sim.Time(n.sched.Rand().Int63n(int64(n.retryDelay)/2 + 1))
	return delay + jitter
}

// scheduleRetry re-invokes resend (which reports whether to continue) up to
// maxRetries times with jittered exponential backoff. Retries tolerate
// crashed acceptors; partition-held messages are re-delivered by simnet
// anyway.
func (n *Node) scheduleRetry(ballot Ballot, attempt int, resend func() bool) {
	if attempt >= n.maxRetries {
		return
	}
	n.sched.After(n.backoff(attempt), func() {
		if n.curBallot != ballot {
			return
		}
		if resend() {
			n.scheduleRetry(ballot, attempt+1, resend)
		}
	})
}

// Handle consumes Paxos wire traffic; it reports false for foreign payloads.
func (n *Node) Handle(from simnet.NodeID, payload any) bool {
	switch m := payload.(type) {
	case PrepareMsg:
		n.onPrepare(from, m)
	case PromiseMsg:
		n.onPromise(from, m)
	case NackMsg:
		n.onNack(m)
	case AcceptMsg:
		n.onAccept(from, m)
	case AckMsg:
		n.onAck(from, m)
	case DecideMsg:
		n.onDecideMsg(m)
	case LearnReq:
		n.onLearnReq(from, m)
	case LeaseReq:
		n.onLeaseReq(from, m)
	case LeaseGrant:
		n.onLeaseGrant(from, m)
	default:
		return false
	}
	return true
}

// Resync broadcasts a learner catch-up request: every peer re-announces the
// decided slots this node slept through. Safe to call at any time — decided
// values are final, so duplicate announcements are idempotent.
func (n *Node) Resync() {
	n.sendAll(LearnReq{From: n.nextDeliver})
}

// NextDeliver returns the next undelivered slot — the learner cursor a
// checkpoint anchors to.
func (n *Node) NextDeliver() Slot { return n.nextDeliver }

// CompactBelow drops decided and accepted state for slots below s — the
// consensus half of log truncation. The maps are rebuilt right-sized (Go
// maps never shrink in place), so a long-lived node's Paxos footprint is
// bounded by the window since its last checkpoint. Learners that later ask
// for truncated slots are caught up by checkpoint state transfer at the TOB
// layer; the acceptor forgetting old accepted values is safe for the same
// reason — every node that could still need a truncated slot's value is
// behind some peer's checkpoint and receives the image that already contains
// it.
func (n *Node) CompactBelow(s Slot) {
	if s <= n.truncBelow {
		return
	}
	n.truncBelow = s
	decided := make(map[Slot]any, len(n.decided))
	for slot, v := range n.decided {
		if slot >= s {
			decided[slot] = v
		}
	}
	n.decided = decided
	accepted := make(map[Slot]SlotVal, len(n.accepted))
	for slot, sv := range n.accepted {
		if slot >= s {
			accepted[slot] = sv
		}
	}
	n.accepted = accepted
}

// FastForward jumps the learner cursor to slot s after a checkpoint image
// covering everything below it was installed: slots below s will never be
// delivered here (their effects are inside the image). Buffered decided
// slots that are now contiguous drain immediately.
func (n *Node) FastForward(s Slot) {
	if s <= n.nextDeliver {
		return
	}
	for slot := range n.decided {
		if slot < s {
			delete(n.decided, slot)
		}
	}
	n.nextDeliver = s
	if n.nextSlot < s {
		n.nextSlot = s
	}
	for {
		v, ok := n.decided[n.nextDeliver]
		if !ok {
			return
		}
		slot := n.nextDeliver
		n.nextDeliver++
		n.decidedCount++
		n.counters.DecidedSlots++
		n.onDecide(slot, v)
	}
}

// onLearnReq re-announces decided slots ≥ From to the requester. Slots below
// the compaction floor are gone; the TOB layer pairs this replay with a
// state-transfer record covering them.
func (n *Node) onLearnReq(from simnet.NodeID, m LearnReq) {
	slots := make([]Slot, 0, len(n.decided))
	for s := range n.decided {
		if s >= m.From {
			slots = append(slots, s)
		}
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	for _, s := range slots {
		n.net.Send(n.id, from, DecideMsg{Slot: s, Val: n.decided[s]})
	}
}

// vowBlocks reports whether the acceptor's live lease vow forbids promising
// or accepting ballot b: the vow protects the leaseholder's ballot against
// every *other* proposer until it expires. The leaseholder itself may mint
// higher ballots (same owner), and lower ballots are already rejected by the
// ordinary promise check.
func (n *Node) vowBlocks(b Ballot) bool {
	return n.vowUntil > n.sched.Now() && b > n.vowBallot && n.owner(b) != n.owner(n.vowBallot)
}

func (n *Node) onPrepare(from simnet.NodeID, m PrepareMsg) {
	if m.Ballot > n.maxSeen {
		n.maxSeen = m.Ballot
	}
	if m.Ballot < n.promised {
		n.net.Send(n.id, from, NackMsg{Ballot: n.promised})
		return
	}
	if n.vowBlocks(m.Ballot) {
		n.net.Send(n.id, from, NackMsg{Ballot: n.promised, Hold: n.vowUntil})
		return
	}
	n.promised = m.Ballot
	var acc []SlotVal
	for slot, sv := range n.accepted {
		if slot >= m.From {
			acc = append(acc, sv)
		}
	}
	sort.Slice(acc, func(i, j int) bool { return acc[i].Slot < acc[j].Slot })
	n.net.Send(n.id, from, PromiseMsg{Ballot: m.Ballot, From: m.From, Accepted: acc})
}

func (n *Node) onPromise(from simnet.NodeID, m PromiseMsg) {
	if !n.preparing || m.Ballot != n.curBallot {
		return
	}
	n.promises[from] = m
	if len(n.promises) < n.quorum() {
		return
	}
	// Quorum of promises: leadership established.
	n.preparing = false
	n.leading = true
	n.preemptions = 0
	// Adopt the highest-ballot accepted value per slot.
	merged := make(map[Slot]SlotVal)
	var maxSlot Slot = -1
	for _, pm := range n.promises {
		for _, sv := range pm.Accepted {
			if cur, ok := merged[sv.Slot]; !ok || sv.Ballot > cur.Ballot {
				merged[sv.Slot] = sv
			}
			if sv.Slot > maxSlot {
				maxSlot = sv.Slot
			}
		}
	}
	// Slots this node itself assigned in an earlier (preempted) stint may
	// have no accepted value anywhere; they must still be filled, or the
	// contiguous delivery order stalls on the hole forever.
	if n.nextSlot-1 > maxSlot {
		maxSlot = n.nextSlot - 1
	}
	if n.nextSlot <= maxSlot {
		n.nextSlot = maxSlot + 1
	}
	if n.nextSlot < n.nextDeliver {
		n.nextSlot = n.nextDeliver
	}
	// Re-propose adopted values and fill holes with no-ops.
	for s := n.nextDeliver; s <= maxSlot; s++ {
		if _, done := n.decided[s]; done {
			continue
		}
		if sv, ok := merged[s]; ok {
			n.propose(s, sv.Val)
		} else {
			n.propose(s, NoOp{})
		}
	}
	n.drainQueue()
	if n.leaseDur > 0 {
		n.requestLease()
	}
	if n.onLead != nil {
		n.onLead()
	}
}

func (n *Node) onNack(m NackMsg) {
	if m.Ballot > n.maxSeen {
		n.maxSeen = m.Ballot
	}
	if m.Ballot <= n.curBallot && m.Hold == 0 {
		return
	}
	if !n.preparing && !n.leading {
		return
	}
	// Preempted: abandon the ballot; retry from scratch if still willing.
	n.preparing = false
	n.leading = false
	n.requeueInflight()
	// Dueling-proposer livelock is broken by capping consecutive
	// preemption-triggered retries; Ω re-kicks leadership afterwards. A
	// lease-vow rejection carries the vow expiry, so the retry is scheduled
	// past it instead of spinning against a quorum that cannot promise yet.
	if n.wantLead && n.preemptions < n.maxRetries {
		n.preemptions++
		delay := n.backoff(n.preemptions)
		if m.Hold > 0 {
			if wait := m.Hold - n.sched.Now(); wait > delay {
				delay = wait + n.backoff(0)
			}
		}
		n.sched.After(delay, func() {
			if n.wantLead && !n.preparing && !n.leading {
				n.startPhase1()
			}
		})
	}
}

func (n *Node) propose(slot Slot, val any) {
	p := &proposal{val: val, acks: make(map[simnet.NodeID]bool)}
	n.inflight[slot] = p
	n.counters.Proposals++
	ballot := n.curBallot
	msg := AcceptMsg{Ballot: ballot, Slot: slot, Val: val}
	n.sendAll(msg)
	n.scheduleRetry(ballot, 0, func() bool {
		if !n.leading || n.curBallot != ballot {
			return false
		}
		if _, done := n.decided[slot]; done {
			return false
		}
		n.sendAll(msg)
		return true
	})
}

// drainQueue assigns queued values to fresh slots while the pipeline window
// has room: up to batchCap values share one slot (decided atomically as a
// Batch), values the dup filter recognizes as already decided are dropped,
// and at most pipeline slots ride in flight concurrently. onAck refills the
// window as decisions land.
func (n *Node) drainQueue() {
	for n.leading && len(n.queue) > 0 && len(n.inflight) < n.pipeline {
		var batch []any
		k := 0
		for k < len(n.queue) && len(batch) < n.batchCap {
			v := n.queue[k]
			k++
			if n.dupFilter != nil && n.dupFilter(v) {
				continue
			}
			batch = append(batch, v)
		}
		n.queue = n.queue[k:]
		switch len(batch) {
		case 0:
			// Everything inspected was a duplicate; re-check the loop
			// condition against the remaining queue.
		case 1:
			n.propose(n.nextSlot, batch[0])
			n.nextSlot++
		default:
			n.counters.BatchedValues += int64(len(batch))
			n.propose(n.nextSlot, Batch(batch))
			n.nextSlot++
		}
	}
	if len(n.queue) == 0 {
		n.queue = nil
	}
}

func (n *Node) onAccept(from simnet.NodeID, m AcceptMsg) {
	if m.Ballot > n.maxSeen {
		n.maxSeen = m.Ballot
	}
	if m.Ballot < n.promised {
		n.net.Send(n.id, from, NackMsg{Ballot: n.promised})
		return
	}
	if n.vowBlocks(m.Ballot) {
		n.net.Send(n.id, from, NackMsg{Ballot: n.promised, Hold: n.vowUntil})
		return
	}
	n.promised = m.Ballot
	n.accepted[m.Slot] = SlotVal{Slot: m.Slot, Ballot: m.Ballot, Val: m.Val}
	n.net.Send(n.id, from, AckMsg{Ballot: m.Ballot, Slot: m.Slot})
}

func (n *Node) onAck(from simnet.NodeID, m AckMsg) {
	if m.Ballot != n.curBallot {
		return
	}
	p, ok := n.inflight[m.Slot]
	if !ok {
		return
	}
	p.acks[from] = true
	if len(p.acks) < n.quorum() {
		return
	}
	delete(n.inflight, m.Slot)
	n.sendAll(DecideMsg{Slot: m.Slot, Val: p.val})
	// The ack freed a pipeline window slot; pull waiting values forward.
	n.drainQueue()
}

func (n *Node) onDecideMsg(m DecideMsg) {
	if m.Slot < n.nextDeliver {
		// Already delivered here (delivery is contiguous); without this
		// guard a late replay would re-enter the truncated decided map.
		return
	}
	if _, ok := n.decided[m.Slot]; ok {
		return
	}
	n.decided[m.Slot] = m.Val
	if m.Slot >= n.nextSlot {
		n.nextSlot = m.Slot + 1
	}
	for {
		v, ok := n.decided[n.nextDeliver]
		if !ok {
			return
		}
		slot := n.nextDeliver
		n.nextDeliver++
		n.decidedCount++
		n.counters.DecidedSlots++
		n.onDecide(slot, v)
	}
}

// --- leader leases ---------------------------------------------------------

// requestLease broadcasts a lease acquisition/renewal round for the current
// ballot, rate-limited so repeated LeaseHeld queries do not flood the
// network with identical requests.
func (n *Node) requestLease() {
	if n.leaseDur <= 0 || !n.leading {
		return
	}
	now := n.sched.Now()
	if n.leaseReqFor == n.curBallot && n.leaseReqAt > 0 && now < n.leaseReqAt+n.leaseDur/4 {
		return
	}
	n.leaseReqAt = now
	n.leaseReqFor = n.curBallot
	n.counters.LeaseRequests++
	n.sendAll(LeaseReq{Ballot: n.curBallot, Until: now + n.leaseDur})
}

// onLeaseReq is the acceptor side: grant (and record the vow) iff the
// requesting ballot is at least what this acceptor has promised — a live
// higher ballot means another proposer may already be deciding slots, and a
// vow for the stale leader would let it serve reads that miss them.
func (n *Node) onLeaseReq(from simnet.NodeID, m LeaseReq) {
	if m.Ballot < n.promised || n.vowBlocks(m.Ballot) {
		n.net.Send(n.id, from, NackMsg{Ballot: n.promised, Hold: n.vowUntil})
		return
	}
	n.promised = m.Ballot
	n.vowBallot = m.Ballot
	if m.Until > n.vowUntil {
		n.vowUntil = m.Until
	}
	n.net.Send(n.id, from, LeaseGrant{Ballot: m.Ballot, Until: m.Until})
}

// onLeaseGrant is the leader side: the lease holds until the expiry the
// quorum-th freshest grant vouches for.
func (n *Node) onLeaseGrant(from simnet.NodeID, m LeaseGrant) {
	if !n.leading || m.Ballot != n.curBallot {
		return
	}
	if n.leaseBallot != m.Ballot {
		n.leaseBallot = m.Ballot
		n.leaseGrants = make(map[simnet.NodeID]sim.Time, len(n.peers))
		n.leaseUntil = 0
	}
	if m.Until > n.leaseGrants[from] {
		n.leaseGrants[from] = m.Until
	}
	if len(n.leaseGrants) < n.quorum() {
		return
	}
	expiries := make([]sim.Time, 0, len(n.leaseGrants))
	for _, until := range n.leaseGrants {
		expiries = append(expiries, until)
	}
	sort.Slice(expiries, func(i, j int) bool { return expiries[i] > expiries[j] })
	n.leaseUntil = expiries[n.quorum()-1]
}

// LeaseHeld reports whether this node holds a live quorum-granted leader
// lease right now — the license to serve strong reads from the local
// contiguous delivered prefix with zero proposal rounds. While the lease is
// live, a quorum of acceptors has vowed away every competing ballot, so no
// slot can be decided that this leader did not propose (and will not learn).
// The query is also the renewal trigger: when less than half the lease
// remains (or it has lapsed), a renewal round is sent — there are no
// background timers, so an idle deployment stays quiescent and a partitioned
// leader's lease simply expires.
func (n *Node) LeaseHeld() bool {
	if n.leaseDur <= 0 || !n.leading {
		return false
	}
	now := n.sched.Now()
	held := n.leaseBallot == n.curBallot && now < n.leaseUntil
	if !held || n.leaseUntil-now < n.leaseDur/2 {
		n.requestLease()
	}
	return held
}
