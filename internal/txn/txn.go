// Package txn lifts the per-op tentative/rollback machinery to multi-op
// atomic units, in the spirit of Creek's mixed-consistency transactions: a
// Txn is an ordered list of catalog operations that executes as ONE
// spec.Op — one request dot, one schedule entry, one undo record, one wire
// envelope. Atomicity is therefore structural rather than protocolic:
//
//   - a weak txn rebases through the existing O(suffix) engine exactly like
//     a single op — rollback revokes the whole unit (the state object's one
//     undo entry is the undo span) and re-execution replays every step, so
//     no interleaved foreign op ever observes a partial txn;
//   - a strong txn rides one Paxos slot (or one batch-envelope member) and
//     anchors the whole unit at one arbitration position;
//   - the guarantee machinery sees one invocation, so a session's coverage
//     demand gates the entire read/write set at once: the txn is read-only
//     only if every step is, and otherwise the whole unit carries the
//     stronger updating demand.
//
// Steps execute against a staging overlay of the replica state: reads see
// earlier steps' buffered writes over the base store, and nothing reaches
// the base until every step has run. A step added with Require is a
// precondition — if its result is nil or false the transaction aborts: the
// overlay is discarded (the base store is untouched, so the undo span is
// empty) and Apply returns the spec.Aborted marker naming the failing step.
// Because operations are deterministic, the same txn may abort tentatively
// at one position and commit after a rebase moves it before the conflicting
// op — or vice versa; the terminal verdict is the one at its arbitration
// position.
package txn

import (
	"strings"

	"bayou/internal/spec"
)

// Step is one operation inside a transaction. If Require is set the step is
// a precondition: a nil or false result aborts the whole unit.
type Step struct {
	Op      spec.Op
	Require bool
}

// Txn is an ordered list of steps executing as one atomic spec.Op. The zero
// value is an empty (vacuously successful) transaction; build with New or a
// Steps literal. Txn has value receivers and exported fields so it travels
// the wire as a registered gob concrete type like any catalog op.
type Txn struct {
	Steps []Step
}

// Name renders the unit as txn[step;step;...], with precondition steps
// marked by a leading "must ". Names appear in traces and histories, where
// the whole txn occupies a single position.
func (t Txn) Name() string {
	var b strings.Builder
	b.WriteString("txn[")
	for i, s := range t.Steps {
		if i > 0 {
			b.WriteByte(';')
		}
		if s.Require {
			b.WriteString("must ")
		}
		b.WriteString(s.Op.Name())
	}
	b.WriteByte(']')
	return b.String()
}

// ReadOnly reports whether every step is read-only: only then can the unit
// take the read-only fast paths (local strong reads, relaxed coverage
// demands). A single updating step makes the whole txn updating.
func (t Txn) ReadOnly() bool {
	for _, s := range t.Steps {
		if !s.Op.ReadOnly() {
			return false
		}
	}
	return true
}

// Apply executes the steps in order against a staging overlay of tx. On
// success the buffered writes flush to tx in first-write order and the
// response is the []spec.Value of per-step results. If a Require step
// yields nil or false, nothing is written and the response is the
// spec.Aborted marker for that step index.
func (t Txn) Apply(tx spec.Tx) spec.Value {
	o := overlay{base: tx}
	results := make([]spec.Value, len(t.Steps))
	for i, s := range t.Steps {
		r := s.Op.Apply(&o)
		if s.Require && failed(r) {
			return spec.Aborted(i)
		}
		results[i] = r
	}
	o.flush(tx)
	return results
}

// failed reports a precondition miss: the catalog signals failure with nil
// (e.g. withdraw on insufficient funds, cas mismatch) or false (e.g.
// put-if-absent on a present key, transfer short of funds).
func failed(r spec.Value) bool {
	if r == nil {
		return true
	}
	b, ok := r.(bool)
	return ok && !b
}

// overlay is the staging Tx: reads see buffered writes over the base store,
// writes buffer in first-write order and reach the base only on flush.
type overlay struct {
	base   spec.Tx
	order  []string // registers in first-write order
	writes map[string]spec.Value
}

func (o *overlay) Read(id string) spec.Value {
	if v, ok := o.writes[id]; ok {
		return spec.Clone(v)
	}
	return o.base.Read(id)
}

func (o *overlay) Write(id string, v spec.Value) {
	if o.writes == nil {
		o.writes = make(map[string]spec.Value)
	}
	if _, ok := o.writes[id]; !ok {
		o.order = append(o.order, id)
	}
	o.writes[id] = spec.Clone(v)
}

// flush applies the buffered writes to the base in first-write order, so the
// base's own undo record sees the same register order a direct execution
// would have.
func (o *overlay) flush(tx spec.Tx) {
	for _, id := range o.order {
		tx.Write(id, o.writes[id])
	}
}

// Results unpacks a successful transaction response into its per-step
// results. It returns ok=false for the abort marker (use spec.AbortStep for
// the failing index) and for values that are not a txn response.
func Results(v spec.Value) ([]spec.Value, bool) {
	if spec.IsAborted(v) {
		return nil, false
	}
	s, ok := v.([]spec.Value)
	if !ok {
		return nil, false
	}
	return s, true
}

// Builder accumulates steps fluently: New().Do(op).Require(op).Txn().
type Builder struct {
	steps []Step
}

// New returns an empty transaction builder.
func New() *Builder { return &Builder{} }

// Do appends an unconditional step.
func (b *Builder) Do(op spec.Op) *Builder {
	b.steps = append(b.steps, Step{Op: op})
	return b
}

// Require appends a precondition step: a nil or false result aborts the
// whole transaction.
func (b *Builder) Require(op spec.Op) *Builder {
	b.steps = append(b.steps, Step{Op: op, Require: true})
	return b
}

// Txn returns the built transaction. The builder may keep accumulating;
// the returned value owns a copy of the current step list.
func (b *Builder) Txn() Txn {
	steps := make([]Step, len(b.steps))
	copy(steps, b.steps)
	return Txn{Steps: steps}
}
