package txn

import (
	"testing"

	"bayou/internal/spec"
)

func TestTxnAppliesAllStepsAtomically(t *testing.T) {
	store := spec.NewMapTx()
	spec.Deposit("a", 100).Apply(store)

	transfer := New().
		Require(spec.Withdraw("a", 80)).
		Do(spec.Deposit("b", 80)).
		Txn()

	v := transfer.Apply(store)
	results, ok := Results(v)
	if !ok {
		t.Fatalf("transfer response %v is not a result list", v)
	}
	if len(results) != 2 || !spec.Equal(results[0], int64(20)) || !spec.Equal(results[1], int64(80)) {
		t.Fatalf("step results = %v; want [20 80]", results)
	}
	if bal := spec.Balance("a").Apply(store); !spec.Equal(bal, int64(20)) {
		t.Fatalf("a = %v; want 20", bal)
	}
	if bal := spec.Balance("b").Apply(store); !spec.Equal(bal, int64(80)) {
		t.Fatalf("b = %v; want 80", bal)
	}
}

func TestTxnAbortWritesNothing(t *testing.T) {
	store := spec.NewMapTx()
	spec.Deposit("a", 50).Apply(store)

	transfer := New().
		Require(spec.Withdraw("a", 80)). // insufficient: aborts at step 0
		Do(spec.Deposit("b", 80)).
		Txn()

	v := transfer.Apply(store)
	if !spec.IsAborted(v) {
		t.Fatalf("response %v; want abort marker", v)
	}
	if step, _ := spec.AbortStep(v); step != 0 {
		t.Fatalf("abort step = %d; want 0", step)
	}
	if _, ok := Results(v); ok {
		t.Fatalf("Results accepted an abort marker")
	}
	if bal := spec.Balance("a").Apply(store); !spec.Equal(bal, int64(50)) {
		t.Fatalf("a = %v after abort; want untouched 50", bal)
	}
	if bal := spec.Balance("b").Apply(store); !spec.Equal(bal, int64(0)) {
		t.Fatalf("b = %v after abort; want untouched 0", bal)
	}
}

// A later Require step aborts the unit even after earlier steps wrote to the
// overlay: none of those buffered writes may reach the base.
func TestTxnLateAbortDiscardsEarlierWrites(t *testing.T) {
	store := spec.NewMapTx()
	u := New().
		Do(spec.Deposit("a", 10)).
		Require(spec.Cas("k", "expected", "next")). // k is unset: cas fails
		Txn()
	v := u.Apply(store)
	if !spec.IsAborted(v) {
		t.Fatalf("response %v; want abort", v)
	}
	if step, _ := spec.AbortStep(v); step != 1 {
		t.Fatalf("abort step = %d; want 1", step)
	}
	if bal := spec.Balance("a").Apply(store); !spec.Equal(bal, int64(0)) {
		t.Fatalf("deposit before the failed require leaked: a = %v", bal)
	}
}

// Steps observe earlier steps' buffered writes: read-your-own-writes inside
// the unit, invisibility outside until flush.
func TestTxnOverlayReadsOwnWrites(t *testing.T) {
	store := spec.NewMapTx()
	u := New().
		Do(spec.Deposit("a", 30)).
		Do(spec.Balance("a")).
		Txn()
	results, ok := Results(u.Apply(store))
	if !ok || !spec.Equal(results[1], int64(30)) {
		t.Fatalf("in-txn balance = %v; want 30", results)
	}
}

func TestTxnReadOnly(t *testing.T) {
	ro := Txn{Steps: []Step{{Op: spec.Balance("a")}, {Op: spec.Get("k")}}}
	if !ro.ReadOnly() {
		t.Fatalf("all-read txn not ReadOnly")
	}
	rw := Txn{Steps: []Step{{Op: spec.Balance("a")}, {Op: spec.Deposit("a", 1)}}}
	if rw.ReadOnly() {
		t.Fatalf("updating txn claims ReadOnly")
	}
	if !(Txn{}).ReadOnly() {
		t.Fatalf("empty txn not ReadOnly")
	}
}

func TestTxnName(t *testing.T) {
	u := New().Require(spec.Withdraw("a", 5)).Do(spec.Deposit("b", 5)).Txn()
	want := "txn[must withdraw(a,i5);deposit(b,i5)]"
	if got := u.Name(); got != want {
		t.Fatalf("Name = %q; want %q", got, want)
	}
}

// Determinism across re-execution: the same txn applied to equal stores
// yields equal responses and equal final states — required because the
// engine re-executes after rollbacks.
func TestTxnDeterministicReplay(t *testing.T) {
	build := func() (spec.Value, map[string]spec.Value) {
		store := spec.NewMapTx()
		spec.Deposit("a", 100).Apply(store)
		u := New().
			Require(spec.Withdraw("a", 40)).
			Do(spec.Deposit("b", 40)).
			Do(spec.Put("last", "t1")).
			Txn()
		return u.Apply(store), store.Snapshot()
	}
	v1, s1 := build()
	v2, s2 := build()
	if !spec.Equal(v1, v2) {
		t.Fatalf("replay responses diverged: %v vs %v", v1, v2)
	}
	if len(s1) != len(s2) {
		t.Fatalf("replay stores diverged in size")
	}
	for k, v := range s1 {
		if !spec.Equal(v, s2[k]) {
			t.Fatalf("replay stores diverged at %s: %v vs %v", k, v, s2[k])
		}
	}
}

// The builder snapshots its steps: continuing to build does not mutate a
// previously returned Txn.
func TestBuilderSnapshot(t *testing.T) {
	b := New().Do(spec.Deposit("a", 1))
	first := b.Txn()
	b.Do(spec.Deposit("a", 2))
	if len(first.Steps) != 1 {
		t.Fatalf("earlier Txn() grew to %d steps", len(first.Steps))
	}
}
