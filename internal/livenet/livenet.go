// Package livenet runs the Bayou protocol over real goroutines and channels
// instead of the deterministic simulator: one goroutine per replica, channel
// inboxes as links, wall-clock-free logical timestamps, and the original
// Bayou primary-commit scheme for total order (replica 0 stamps commit
// numbers; learners apply a hold-back buffer, so channel scheduling order
// does not matter).
//
// The package exists to demonstrate that internal/core is a pure state
// machine with no dependency on the simulation substrate, and to exercise
// the protocol under true concurrency (`go test -race ./internal/livenet`).
// It presents the same session-oriented surface as internal/cluster — mint
// sessions with OpenSession, invoke on them, observe through the shared
// record.Recorder — so the bayou façade drives either substrate through one
// Driver interface and the same programs run on both. Simulation remains the
// tool for the paper's experiments (determinism is what makes the figures
// reproducible); livenet is the shape a real deployment driver takes.
//
// The replica automaton itself (type node) is substrate-blind a second
// time over: it talks to its surroundings only through the host interface
// — a peer fabric to send protocol messages into and an observation sink
// for recorder events. Cluster implements host with channel inboxes and
// the in-process Recorder; remote.go implements it with TCP links
// (internal/wire envelopes) and an event stream back to the controller
// process, so the same node code runs in-process and as one OS process per
// replica (see client.go for the controller side).
package livenet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bayou/internal/core"
	"bayou/internal/history"
	"bayou/internal/record"
	"bayou/internal/spec"
)

// ErrStopped is returned for operations on a stopped cluster.
var ErrStopped = errors.New("livenet: cluster stopped")

// ErrTimeout is returned when an operation misses its deadline.
var ErrTimeout = errors.New("livenet: timed out")

// ErrReplicaDown is returned for operations addressed to a crashed replica.
var ErrReplicaDown = errors.New("livenet: replica is crashed")

// inboxSize bounds each replica's message queue. Sends are blocking;
// workloads that could overrun it should be throttled by awaiting calls.
const inboxSize = 1 << 14

type msgKind int

const (
	msgInvoke      msgKind = iota + 1
	msgRBDeliver           // a batch of RB broadcasts from one peer
	msgForward             // weak/strong requests en route to the primary
	msgCommitBatch         // primary's ordering announcement for a contiguous run
	msgInspect             // run a closure on the replica goroutine (reads, stats)
	msgCrash               // fault plane: drop volatile state, start discarding traffic
	msgRecover             // fault plane: restore from the durable snapshot and resync
	msgResync              // a recovering peer asks for retransmission
	msgStateXfer           // sequencer ships a checkpoint to a learner behind its log
)

type message struct {
	kind     msgKind
	reqs     []core.Req // msgRBDeliver/msgForward batch; msgCommitBatch run (numbers commitNo..commitNo+len-1)
	commitNo int64
	from     core.ReplicaID // msgResync: the recovering requester
	op       spec.Op
	strong   bool
	sess     core.SessionID
	call     *record.Call // the pre-minted pending call (nil on a remote node: the controller holds it)
	// Invoke payload computed at the client against the shared recorder and
	// shipped with the message, so the node never reads the recorder: the
	// session's frozen demand vectors and fence (gated invokes), and the
	// lease-read gate (the highest commit position among the session's TOB
	// casts, proven only when castOK). They are frozen safely: PendingInvoke
	// marks the session busy, and a busy session's vectors cannot change.
	gated    bool
	failFast bool
	read     core.Vec
	write    core.Vec
	fence    int64
	castOK   bool
	castCeil int64
	ckpt     *core.CheckpointRecord // msgStateXfer: the transferred image
	reply    chan invokeReply
	inspect  func(*node)
	done     chan struct{}
}

// invokeReply carries the processed invocation's call handle back to the
// submitting client.
type invokeReply struct {
	call *record.Call
	err  error
}

// obsKind tags one observation event a node emits toward the recorder.
type obsKind int

const (
	obsComplete obsKind = iota + 1 // pending call accepted: dot/ts/tob
	obsCancel                      // pending call withdrawn (down, fail-fast, invoke error)
	obsLease                       // strong read served under the ordering lease
	obsTOB                         // a commit applied (TOB delivery number)
	obsTransition
	obsResponded
	obsStable
	obsLost
)

// obsEvent is one recorder-bound observation. In-process the call pointer
// identifies the pending invocation directly; on a remote node call is nil
// and sess identifies it (sessions are sequential, so at most one pending
// invocation per session exists at a time).
type obsEvent struct {
	kind  obsKind
	call  *record.Call
	sess  core.SessionID
	dot   core.Dot
	ts    int64
	tob   bool
	no    int64
	resp  core.Response
	trans core.Transition
}

// host is the node's view of its surroundings: the peer fabric protocol
// traffic flows into, the observation sink recorder events flow into, and
// the driver wall clock. Cluster implements it with channels and the shared
// in-process recorder; remoteHost (remote.go) implements it with TCP links
// and an event stream to the controller.
type host interface {
	// sendPeer delivers a protocol message to another replica (parking it
	// on partitions, dropping or parking it toward crashed targets — the
	// fault semantics live in the fabric, not the node).
	sendPeer(from, to int, m message)
	// observe sinks one recorder-bound event. Events are emitted in the
	// node's processing order and must be applied in that order.
	observe(ev obsEvent)
	// endBurst is called once per inbox burst, after internal work has
	// drained: the in-process host signals quiescence watchers, the remote
	// host flushes coalesced peer envelopes.
	endBurst()
}

// Config parametrizes a live cluster.
type Config struct {
	N       int
	Variant core.Variant
	// CheckpointEvery makes every replica checkpoint once it has that many
	// committed entries past its last checkpoint (0 disables automatic
	// checkpointing; Cluster.Checkpoint triggers one manually either way).
	// The sequencer additionally truncates its commit log below its own
	// checkpoint and serves older learners by state transfer.
	CheckpointEvery int
	// LeaderLease lets the sequencer (replica 0) serve strong read-only
	// operations locally from its committed prefix, with zero forwarding
	// round-trips. The primary-commit scheme makes replica 0 a degenerate
	// permanent leaseholder: it is the only node that ever stamps commits
	// and it cannot crash (Crash(0) is refused), so its committed prefix is
	// the global one by construction — the fault-honesty obligation "never
	// serve after losing the lease" is vacuous because the lease cannot be
	// lost. A real deployment over wall clocks would bound the grant with a
	// clock-skew safety margin; see DESIGN.md for the argument and for how
	// the simulator's Paxos substrate carries the non-degenerate version.
	LeaderLease bool
}

// Cluster is a goroutine-per-replica deployment. Construct with New; always
// Stop it (defer c.Stop()).
type Cluster struct {
	n         int
	variant   core.Variant
	ckptEvery int
	lease     bool
	nodes     []*node
	clock     atomic.Int64
	wg        sync.WaitGroup
	stopped   atomic.Bool
	rec       *record.Recorder
	started   time.Time

	mu       sync.Mutex
	sessions map[core.SessionID]int // guarded by mu
	nextSess core.SessionID         // guarded by mu

	// progress is the quiescence signal: each node burst closes and
	// replaces the current channel, so Quiesce can wait for state to move
	// instead of busy-polling.
	progMu sync.Mutex
	progCh chan struct{} // guarded by progMu

	// Fault plane: partition cells (all equal when healed) and the
	// messages parked on partition boundaries. The partition model
	// matches simnet's: cross-cell traffic is held and released on Heal
	// (reliable links retransmit); traffic to a crashed replica is
	// dropped for good.
	partMu sync.Mutex
	cell   []int     // guarded by partMu
	held   []heldMsg // guarded by partMu
}

// heldMsg is a message parked on a partition boundary.
type heldMsg struct {
	from, to int
	m        message
}

type node struct {
	id      core.ReplicaID
	h       host
	n       int          // deployment size
	clock   func() int64 // logical timestamp source
	lease   bool
	ckptE   int // automatic checkpoint cadence (0 = off)
	replica *core.Replica
	inbox   chan message
	stop    chan struct{}

	// Fault plane. down is the goroutine-local crashed flag; crashed is
	// its atomic shadow read by senders (so traffic toward a crashed
	// replica is dropped at the source, mirroring the network dropping
	// it). snap is the durable image taken when the crash hit.
	down    bool
	crashed atomic.Bool
	snap    core.Snapshot

	// Primary (sequencer) state, used on replica 0 only. Like a real
	// sequencer's commit log it is durable: commitLog retains the stamped
	// requests past the sequencer's checkpoint (commit number logBase+i+1
	// at index i) so recovering learners can refetch commits they slept
	// through; learners older than logBase catch up by state transfer.
	commitNo  int64
	stamped   map[string]bool
	commitLog []core.Req
	logBase   int64

	// ckpting guards the checkpoint drain against cadence re-entrance.
	ckpting bool

	// Learner hold-back: commits applied in stamped order.
	nextCommit int64
	held       map[int64]core.Req

	// effPool recycles effect accumulators; rbBatch buffers RB deliveries
	// pulled from the inbox in one burst so they hit the replica as a
	// single batch; fwdBatch (sequencer only) buffers forwarded requests
	// the same way, so a burst of strong traffic is stamped as one
	// contiguous run of commit numbers and announced to each peer in a
	// single batched commit message.
	effPool  core.EffectsPool
	rbBatch  []core.Req
	fwdBatch []core.Req

	// parked holds guarantee-gated invocations waiting for this replica's
	// state to cover their session vectors; each burst retries them after
	// draining. Parked entries survive a crash (they are client-side
	// continuations, not replica state) and retry after recovery.
	parked []parkedInvoke
}

// parkedInvoke is one invocation blocked on a coverage gate, carrying the
// session's frozen demand vectors and lease gate (see message).
type parkedInvoke struct {
	sess     core.SessionID
	op       spec.Op
	level    core.Level
	call     *record.Call
	read     core.Vec
	write    core.Vec
	fence    int64
	castOK   bool
	castCeil int64
}

func (n *node) takeEff() *core.Effects { return n.effPool.Take() }
func (n *node) putEff(e *core.Effects) { n.effPool.Put(e) }

// New starts a cluster of n replicas running the given protocol variant.
// Sessions 0..n-1 are pre-opened as one default session per replica;
// OpenSession mints more.
func New(n int, variant core.Variant) *Cluster {
	return NewFromConfig(Config{N: n, Variant: variant})
}

// NewFromConfig starts a cluster from a full configuration.
func NewFromConfig(cfg Config) *Cluster {
	n := cfg.N
	c := &Cluster{
		n:         n,
		variant:   cfg.Variant,
		ckptEvery: cfg.CheckpointEvery,
		lease:     cfg.LeaderLease,
		rec:       record.New(),
		started:   time.Now(),
		sessions:  make(map[core.SessionID]int, n),
		nextSess:  core.SessionID(n),
		progCh:    make(chan struct{}),
		cell:      make([]int, n),
	}
	if cfg.LeaderLease {
		c.rec.EnableLeaseTracking()
	}
	variant := cfg.Variant
	for i := 0; i < n; i++ {
		c.sessions[core.SessionID(i)] = i
	}
	for i := 0; i < n; i++ {
		nd := newNode(core.ReplicaID(i), n, variant, c, func() int64 {
			// A shared logical clock keeps timestamps globally unique
			// and roughly synchronized without wall-clock flakiness.
			return c.clock.Add(1)
		}, cfg.LeaderLease, cfg.CheckpointEvery)
		c.nodes = append(c.nodes, nd)
	}
	for _, nd := range c.nodes {
		c.wg.Add(1)
		go func(nd *node) {
			defer c.wg.Done()
			nd.run()
		}(nd)
	}
	return c
}

// newNode builds one replica automaton bound to a host.
func newNode(id core.ReplicaID, n int, variant core.Variant, h host, clock func() int64, lease bool, ckptEvery int) *node {
	nd := &node{
		id:         id,
		h:          h,
		n:          n,
		clock:      clock,
		lease:      lease,
		ckptE:      ckptEvery,
		inbox:      make(chan message, inboxSize),
		stop:       make(chan struct{}),
		stamped:    make(map[string]bool),
		nextCommit: 1,
		held:       make(map[int64]core.Req),
	}
	nd.replica = core.NewReplica(id, variant, clock)
	nd.replica.EnableTransitions()
	return nd
}

// Stop terminates every replica goroutine and waits for them.
func (c *Cluster) Stop() {
	if !c.stopped.CompareAndSwap(false, true) {
		return
	}
	for _, nd := range c.nodes {
		close(nd.stop)
	}
	c.wg.Wait()
}

// wall is the driver's wall clock (microseconds since construction).
func (c *Cluster) wall() int64 { return time.Since(c.started).Microseconds() }

// sendPeer implements host over channel inboxes.
func (c *Cluster) sendPeer(from, to int, m message) { c.send(from, to, m) }

// observe implements host against the shared in-process recorder. The call
// pointer is always present in-process (the client minted it).
func (c *Cluster) observe(ev obsEvent) { applyObs(c.rec, ev, c.wall()) }

// applyObs lands one observation event on a recorder, stamped with the
// applying side's wall clock. Both the in-process host and the remote
// controller (which receives events over the node's event stream) funnel
// through it, so the two substrates record identically.
func applyObs(rec *record.Recorder, ev obsEvent, wall int64) {
	switch ev.kind {
	case obsComplete:
		rec.CompleteInvoke(ev.call, ev.dot, ev.ts, ev.tob, wall)
	case obsCancel:
		rec.CancelInvoke(ev.call)
	case obsLease:
		rec.LeaseServed(ev.dot, ev.no)
	case obsTOB:
		rec.TOBDelivered(ev.dot, ev.no)
	case obsTransition:
		rec.Transition(ev.trans, wall)
	case obsResponded:
		rec.Responded(ev.resp, wall)
	case obsStable:
		rec.StableNoticed(ev.resp, wall)
	case obsLost:
		rec.ResultLost(ev.dot, wall)
	}
}

// endBurst implements host: it publishes a progress epoch by closing the
// current progress channel and installing a fresh one, waking every Quiesce
// waiter to re-check convergence.
func (c *Cluster) endBurst() {
	c.progMu.Lock()
	ch := c.progCh
	c.progCh = make(chan struct{})
	c.progMu.Unlock()
	close(ch)
}

// progressChan returns the channel the next endBurst will close. Grab it
// before inspecting state: a signal raced between inspection and wait then
// still wakes the waiter.
func (c *Cluster) progressChan() <-chan struct{} {
	c.progMu.Lock()
	defer c.progMu.Unlock()
	return c.progCh
}

// send is the replica-to-replica network: it parks cross-partition traffic
// until Heal and drops connected traffic toward a crashed replica (the
// loss the resync handshake repairs). The order matters and matches
// simnet's pinned semantics: a message parked on a partition models a
// retransmitting link, so it survives a crash–recover of its target, while
// a message sent on an open link to a crashed node is gone for good.
func (c *Cluster) send(from, to int, m message) {
	c.partMu.Lock()
	if c.cell[from] != c.cell[to] {
		c.held = append(c.held, heldMsg{from: from, to: to, m: m})
		c.partMu.Unlock()
		return
	}
	c.partMu.Unlock()
	if c.nodes[to].crashed.Load() {
		return
	}
	select {
	case c.nodes[to].inbox <- m:
	case <-c.nodes[to].stop:
	}
}

// Partition splits the deployment into cells (unlisted replicas form an
// implicit final cell); replicas in different cells stop exchanging
// messages until Heal, which releases the parked traffic. Clients stay
// attached to their replica — sessions on a minority cell keep weak
// availability while strong operations stall, exactly as on the simulator.
func (c *Cluster) Partition(cells [][]int) error {
	if c.stopped.Load() {
		return ErrStopped
	}
	fresh := make([]int, c.n)
	for i := range fresh {
		fresh[i] = len(cells)
	}
	for i, cell := range cells {
		for _, id := range cell {
			if id < 0 || id >= c.n {
				return fmt.Errorf("livenet: no replica %d", id)
			}
			fresh[id] = i
		}
	}
	c.partMu.Lock()
	c.cell = fresh
	c.partMu.Unlock()
	c.releaseHeld()
	return nil
}

// Heal removes all partitions and releases parked messages.
func (c *Cluster) Heal() error {
	if c.stopped.Load() {
		return ErrStopped
	}
	c.partMu.Lock()
	for i := range c.cell {
		c.cell[i] = 0
	}
	c.partMu.Unlock()
	c.releaseHeld()
	return nil
}

// releasableLocked extracts the held messages whose endpoints are connected
// under the current cells and whose target is up — a parked message toward
// a crashed replica stays parked (the link keeps retransmitting) until
// Recover releases it. The caller holds partMu.
func (c *Cluster) releasableLocked() []heldMsg {
	var released []heldMsg
	keep := c.held[:0]
	for _, h := range c.held {
		if c.cell[h.from] == c.cell[h.to] && !c.nodes[h.to].crashed.Load() {
			released = append(released, h)
		} else {
			keep = append(keep, h)
		}
	}
	c.held = keep
	return released
}

// redeliver re-sends released messages through the normal path.
func (c *Cluster) redeliver(ms []heldMsg) {
	for _, h := range ms {
		c.send(h.from, h.to, h.m)
	}
}

// releaseHeld re-evaluates the parked messages (after a heal or a
// recovery) and delivers the releasable ones.
func (c *Cluster) releaseHeld() {
	c.partMu.Lock()
	released := c.releasableLocked()
	c.partMu.Unlock()
	c.redeliver(released)
}

// Crash crashes a replica: its volatile state (tentative list, schedule,
// stored tentative values) is lost, traffic toward it is dropped, and
// invocations on its sessions fail until Recover. The durable image —
// committed log, dot counter, client continuations, sequencer state —
// survives. The sequencer (replica 0) cannot crash: primary-commit total
// order does not tolerate it, which is the deficiency the paper's
// consensus-based TOB removes (use the simulator to script that).
func (c *Cluster) Crash(replica int) error {
	if c.stopped.Load() {
		return ErrStopped
	}
	if replica < 0 || replica >= c.n {
		return fmt.Errorf("livenet: no replica %d", replica)
	}
	if replica == 0 {
		return errors.New("livenet: cannot crash the sequencer (replica 0)")
	}
	return c.control(replica, msgCrash)
}

// Recover restarts a crashed replica from its durable snapshot and runs the
// resync handshake: peers retransmit their tentative suffixes and the
// sequencer replays the commits the replica slept through.
func (c *Cluster) Recover(replica int) error {
	if c.stopped.Load() {
		return ErrStopped
	}
	if replica < 0 || replica >= c.n {
		return fmt.Errorf("livenet: no replica %d", replica)
	}
	if err := c.control(replica, msgRecover); err != nil {
		return err
	}
	// Messages parked for this replica while it was down (partition-held
	// traffic survives a crash) can flow again.
	c.releaseHeld()
	return nil
}

// Crashed reports whether the replica is currently crashed.
func (c *Cluster) Crashed(replica int) bool {
	return replica >= 0 && replica < c.n && c.nodes[replica].crashed.Load()
}

// control delivers a fault-plane message on the replica goroutine and waits
// for the outcome.
func (c *Cluster) control(replica int, kind msgKind) error {
	reply := make(chan invokeReply, 1)
	select {
	case c.nodes[replica].inbox <- message{kind: kind, reply: reply}:
	case <-c.nodes[replica].stop:
		return ErrStopped
	}
	select {
	case r := <-reply:
		return r.err
	case <-c.nodes[replica].stop:
		return ErrStopped
	}
}

// Replicas returns the deployment size.
func (c *Cluster) Replicas() int { return c.n }

// Recorder exposes the shared observation layer (history, call lookup,
// watch subscriptions).
func (c *Cluster) Recorder() *record.Recorder { return c.rec }

// OpenSession mints a fresh sequential session bound to the given replica.
func (c *Cluster) OpenSession(replica int) (core.SessionID, error) {
	if c.stopped.Load() {
		return 0, ErrStopped
	}
	if replica < 0 || replica >= c.n {
		return 0, fmt.Errorf("livenet: no replica %d", replica)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.nextSess
	c.nextSess++
	c.sessions[s] = replica
	return s, nil
}

// SessionReplica returns the replica a session is bound to.
func (c *Cluster) SessionReplica(s core.SessionID) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.sessions[s]
	return id, ok
}

// BindSession re-binds a session to another replica — the mobile-session
// migration step. The guarantee vectors live on the shared recorder, so
// they follow the session for free. A session with an outstanding call
// cannot move: its continuation is owed by the old replica.
func (c *Cluster) BindSession(sess core.SessionID, replica int) error {
	if c.stopped.Load() {
		return ErrStopped
	}
	if replica < 0 || replica >= c.n {
		return fmt.Errorf("livenet: no replica %d", replica)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sessions[sess]; !ok {
		return fmt.Errorf("livenet: unknown session %d", sess)
	}
	if c.rec.SessionBusy(sess) {
		return fmt.Errorf("%w: session %d cannot re-bind", record.ErrSessionBusy, sess)
	}
	c.sessions[sess] = replica
	return nil
}

// Invoke submits an operation on the given session at the replica the
// session is bound to, and returns once the replica has processed the
// invocation: for Algorithm 2 weak operations the call is already Done
// (bounded wait-freedom), strong operations resolve in the background (wait
// with call.WaitDone). Sessions are sequential: a session whose previous
// call has not returned is rejected with record.ErrSessionBusy.
func (c *Cluster) Invoke(sess core.SessionID, op spec.Op, level core.Level) (*record.Call, error) {
	if c.stopped.Load() {
		return nil, ErrStopped
	}
	c.mu.Lock()
	replica, ok := c.sessions[sess]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("livenet: unknown session %d", sess)
	}
	return c.invokeAt(sess, replica, op, level)
}

// InvokeSessionAt submits an operation on the given session at an explicit
// target replica, which may differ from the session's binding. Guarantee
// vectors are enforced at the target exactly as at the binding.
func (c *Cluster) InvokeSessionAt(sess core.SessionID, replica int, op spec.Op, level core.Level) (*record.Call, error) {
	if c.stopped.Load() {
		return nil, ErrStopped
	}
	if replica < 0 || replica >= c.n {
		return nil, fmt.Errorf("livenet: no replica %d", replica)
	}
	c.mu.Lock()
	_, ok := c.sessions[sess]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("livenet: unknown session %d", sess)
	}
	return c.invokeAt(sess, replica, op, level)
}

// invokeAt routes one invocation to the target replica's goroutine. The
// pending call is minted on the caller's side (atomically marking the
// session busy) and handed to the replica together with everything the
// node needs from the recorder — frozen demand vectors for gated sessions,
// the lease-read cast ceiling — so the node itself never touches the
// recorder. The replica completes the call, parks it on the coverage gate,
// or cancels it; the reply is immediate either way, so Invoke never blocks
// on coverage — a parked call simply stays pending until the replica
// catches up.
func (c *Cluster) invokeAt(sess core.SessionID, replica int, op spec.Op, level core.Level) (*record.Call, error) {
	g, mode := c.rec.Guarantees(sess)
	call, err := c.rec.PendingInvoke(sess, op, level, c.wall())
	if err != nil {
		return nil, err
	}
	m := message{
		kind:   msgInvoke,
		sess:   sess,
		op:     op,
		strong: level == core.Strong,
		call:   call,
		reply:  make(chan invokeReply, 1),
	}
	if g != 0 {
		m.gated = true
		m.failFast = mode == core.FailFast
		m.read, m.write, m.fence = c.rec.FreezeDemands(call, !op.ReadOnly())
	}
	if c.lease && level == core.Strong && op.ReadOnly() {
		m.castCeil, m.castOK = c.rec.SessionCastCeiling(sess)
	}
	select {
	case c.nodes[replica].inbox <- m:
	case <-c.nodes[replica].stop:
		c.rec.CancelInvoke(call)
		return nil, ErrStopped
	}
	select {
	case r := <-m.reply:
		return r.call, r.err
	case <-c.nodes[replica].stop:
		// The node stopped with the invoke possibly still queued; withdraw
		// the pending call so the session is not left busy forever
		// (CancelInvoke is a no-op if the node did complete it first).
		c.rec.CancelInvoke(call)
		return nil, ErrStopped
	}
}

// SessionCovered reports whether the replica's current state dominates the
// session's full coverage demand — the coverage query of the fault-tolerant
// client choosing a failover target. A crashed replica covers nothing.
func (c *Cluster) SessionCovered(sess core.SessionID, replica int, timeout time.Duration) (bool, error) {
	c.mu.Lock()
	_, ok := c.sessions[sess]
	c.mu.Unlock()
	if !ok {
		return false, fmt.Errorf("livenet: unknown session %d", sess)
	}
	if c.Crashed(replica) {
		return false, nil
	}
	read, write, _ := c.rec.Demands(sess, true)
	covered := false
	if err := c.inspect(replica, timeout, func(n *node) {
		covered = n.replica.CoversSession(read, write)
	}); err != nil {
		return false, err
	}
	return covered, nil
}

// InvokeAt submits on the replica's default session (session id == replica
// id) — the one-session-per-replica convenience of the legacy API.
func (c *Cluster) InvokeAt(replica int, op spec.Op, level core.Level) (*record.Call, error) {
	if replica < 0 || replica >= c.n {
		return nil, fmt.Errorf("livenet: no replica %d", replica)
	}
	return c.Invoke(core.SessionID(replica), op, level)
}

// inspect runs fn on the replica's own goroutine (after draining its
// internal work) and waits for it, bounded by timeout.
func (c *Cluster) inspect(replica int, timeout time.Duration, fn func(*node)) error {
	if c.stopped.Load() {
		return ErrStopped
	}
	if replica < 0 || replica >= c.n {
		return fmt.Errorf("livenet: no replica %d", replica)
	}
	done := make(chan struct{})
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case c.nodes[replica].inbox <- message{kind: msgInspect, inspect: fn, done: done}:
	case <-timer.C:
		return ErrTimeout
	case <-c.nodes[replica].stop:
		return ErrStopped
	}
	select {
	case <-done:
		return nil
	case <-timer.C:
		return ErrTimeout
	case <-c.nodes[replica].stop:
		return ErrStopped
	}
}

// Read fetches a register value through the replica's own goroutine (safe
// snapshot of its current state).
func (c *Cluster) Read(replica int, key string, timeout time.Duration) (spec.Value, error) {
	var v spec.Value
	if err := c.inspect(replica, timeout, func(n *node) { v = n.replica.Read(key) }); err != nil {
		return nil, err
	}
	return v, nil
}

// Committed returns a snapshot of the replica's committed order.
func (c *Cluster) Committed(replica int, timeout time.Duration) ([]core.Req, error) {
	var reqs []core.Req
	if err := c.inspect(replica, timeout, func(n *node) { reqs = n.replica.Committed() }); err != nil {
		return nil, err
	}
	return reqs, nil
}

// Stats aggregates replica cost counters, keyed by replica.
func (c *Cluster) Stats(timeout time.Duration) (map[core.ReplicaID]core.Stats, error) {
	out := make(map[core.ReplicaID]core.Stats, c.n)
	for i := 0; i < c.n; i++ {
		var st core.Stats
		if err := c.inspect(i, timeout, func(n *node) { st = n.replica.Stats() }); err != nil {
			return nil, err
		}
		out[core.ReplicaID(i)] = st
	}
	return out, nil
}

// Compact runs Bayou's log compaction on every replica; it returns the
// number of undo entries released.
func (c *Cluster) Compact(timeout time.Duration) (int, error) {
	total := 0
	for i := 0; i < c.n; i++ {
		var freed int
		if err := c.inspect(i, timeout, func(n *node) { freed = n.replica.Compact() }); err != nil {
			return total, err
		}
		total += freed
	}
	return total, nil
}

// Checkpoint checkpoints every live replica at its current stable state (see
// node.checkpoint); it returns the total number of committed entries
// truncated. Crashed replicas are skipped.
func (c *Cluster) Checkpoint(timeout time.Duration) (int, error) {
	total := 0
	for i := 0; i < c.n; i++ {
		if c.Crashed(i) {
			continue
		}
		var truncated int
		var cerr error
		if err := c.inspect(i, timeout, func(n *node) { truncated, cerr = n.checkpoint() }); err != nil {
			return total, err
		}
		if cerr != nil {
			return total, cerr
		}
		total += truncated
	}
	return total, nil
}

// BaseLen reports a replica's absolute checkpointed-prefix length.
func (c *Cluster) BaseLen(replica int, timeout time.Duration) (int, error) {
	var base int
	if err := c.inspect(replica, timeout, func(n *node) { base = n.replica.BaseLen() }); err != nil {
		return 0, err
	}
	return base, nil
}

// MarkStable records the quiescence cutoff for the history checkers.
func (c *Cluster) MarkStable() { c.rec.MarkStable() }

// History assembles the recorded history.
func (c *Cluster) History() (*history.History, error) { return c.rec.History() }

// Quiesce blocks until the deployment has settled: every recorded call is
// terminal (responses delivered, weak updates stabilized) and every replica
// has applied every commit and drained its internal work. It is the live
// analogue of the simulator's Settle. Replicas currently crashed are
// exempt, as are calls bound to them: a crashed replica is not a correct
// one, and its clients' calls legitimately pend until it recovers.
//
// Convergence is event-driven: each node burst publishes a progress epoch
// (Cluster.endBurst), and Quiesce re-checks only when one fires — no
// polling loop. The deadline is enforced by a single timer.
func (c *Cluster) Quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	for _, call := range c.rec.Calls() {
		if r, ok := c.SessionReplica(call.Session()); ok && c.Crashed(r) {
			continue
		}
		if err := call.WaitTerminal(ctx); err != nil {
			return fmt.Errorf("livenet: quiesce: call %s not terminal: %w", call.Dot(), err)
		}
	}
	// All replicas must have applied every commit (one per TOB-cast
	// invocation) and be passive; the recorder count is the ground truth
	// for how many commits a settled run contains.
	expected := c.rec.TOBCastCount()
	for {
		// Grab the epoch channel before inspecting: progress made between
		// the inspection and the wait below still wakes us.
		ch := c.progressChan()
		converged := true
		for i := 0; i < c.n; i++ {
			if c.Crashed(i) {
				continue
			}
			var committed int
			var busy bool
			left := time.Until(deadline)
			if left <= 0 {
				return fmt.Errorf("livenet: quiesce: %w", ErrTimeout)
			}
			if err := c.inspect(i, left, func(n *node) {
				committed = n.replica.CommittedLen()
				busy = n.replica.HasInternalWork()
			}); err != nil {
				return fmt.Errorf("livenet: quiesce: %w", err)
			}
			if committed < expected || busy {
				converged = false
				break
			}
		}
		if converged {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("livenet: quiesce: %w", ErrTimeout)
		}
	}
}

// maxBurst caps how many queued messages one burst pulls before the node
// flushes RB batches and drains internal work. Without the cap a saturated
// inbox (blocking senders keep it non-empty) would defer execution — and
// therefore responses — indefinitely.
const maxBurst = 256

// run is the replica goroutine: a strict event loop over the inbox, exactly
// the atomic-step automaton model of the paper — with opportunistic
// batching: whatever has queued up while the replica was busy is pulled in
// one burst (capped), consecutive RB deliveries collapse into a single
// batched schedule adjustment, and internal work is drained once per burst
// instead of once per message.
func (n *node) run() {
	for {
		select {
		case <-n.stop:
			return
		case m := <-n.inbox:
			n.process(m)
		burst:
			for i := 1; i < maxBurst; i++ {
				select {
				case m2 := <-n.inbox:
					n.process(m2)
				default:
					break burst
				}
			}
			if !n.down {
				n.flushRB()
				n.flushFwd()
				n.settleLocal()
			}
			n.h.endBurst()
		}
	}
}

// settleLocal drains internal work and retries parked invocations until
// neither makes progress: a completed invocation produces new internal
// work, and drained work (an executed demanded dot, an applied commit) can
// unlock another parked invocation.
func (n *node) settleLocal() {
	for {
		n.drain()
		if !n.retryParked() {
			return
		}
	}
}

// covers reports whether this replica dominates the invocation's coverage
// demands right now (core.Replica.CoversInvoke is the shared gate; see its
// comment for the read/committed/write split). The demand vectors were
// frozen when the invocation was submitted — the session has been busy
// since, so they cannot have moved.
func (n *node) covers(pi parkedInvoke) bool {
	return n.replica.CoversInvoke(pi.level, !pi.op.ReadOnly(), pi.read, pi.write)
}

// tryLeaseRead serves a strong read-only invocation locally on the
// sequencer — zero forwarding round-trips — when (1) the leader lease is
// enabled, (2) this node is the sequencer (the degenerate permanent
// leaseholder: its committed prefix is the global one by construction),
// and (3) the session gate proves every operation the session ever cast
// is inside that prefix, so session order cannot expose the read as
// stale. The gate ships with the invocation (castOK/castCeil): the
// highest commit position among the session's TOB casts, proven at
// submission — the session is busy from then on, so no new casts can
// appear underneath it. It reports false to fall through to the normal
// forward path.
func (n *node) tryLeaseRead(pi parkedInvoke) bool {
	if !n.lease || pi.level != core.Strong || !pi.op.ReadOnly() || n.id != 0 || n.down {
		return false
	}
	if !pi.castOK || pi.castCeil > int64(n.replica.CommittedLen()) {
		return false
	}
	eff := n.takeEff()
	defer n.putEff(eff)
	req, ok, err := n.replica.StrongReadLocal(pi.sess, pi.op, eff)
	if err != nil {
		panic(fmt.Sprintf("livenet: lease read on %d: %v", n.id, err))
	}
	if !ok {
		return false
	}
	leaseNo := int64(n.replica.CommittedLen())
	n.h.observe(obsEvent{kind: obsComplete, call: pi.call, sess: pi.sess, dot: req.Dot, ts: req.Timestamp})
	n.h.observe(obsEvent{kind: obsLease, dot: req.Dot, no: leaseNo})
	n.route(*eff)
	return true
}

// complete accepts a gated invocation: the clock is fenced above the
// session vectors, the replica invoked, and the pending call bound to its
// minted dot.
func (n *node) complete(pi parkedInvoke) {
	n.replica.FenceClock(pi.fence)
	if n.tryLeaseRead(pi) {
		return
	}
	eff := n.takeEff()
	req, err := n.replica.InvokeFrom(pi.sess, pi.op, pi.level == core.Strong, eff)
	if err != nil {
		n.putEff(eff)
		panic(fmt.Sprintf("livenet: gated invoke on %d: %v", n.id, err))
	}
	n.h.observe(obsEvent{
		kind: obsComplete, call: pi.call, sess: pi.sess,
		dot: req.Dot, ts: req.Timestamp, tob: len(eff.TOBCast) > 0,
	})
	n.route(*eff)
	n.putEff(eff)
}

// retryParked completes every parked invocation whose coverage now holds;
// it reports whether any completed.
func (n *node) retryParked() bool {
	if n.down || len(n.parked) == 0 {
		return false
	}
	progress := false
	keep := n.parked[:0]
	for _, pi := range n.parked {
		if n.covers(pi) {
			n.complete(pi)
			progress = true
		} else {
			keep = append(keep, pi)
		}
	}
	n.parked = keep
	return progress
}

// recover restores the replica from its durable snapshot on the node's own
// goroutine, then asks every peer for retransmission: tentative suffixes
// arrive as ordinary RB deliveries, missed commits replay from the
// sequencer's log. Runs entirely before the next inbox message, so the
// restored state is never observed half-built.
func (n *node) recover() {
	eff := n.takeEff()
	restored, err := core.RestoreReplica(n.snap, n.clock, true, eff)
	if err != nil {
		panic(fmt.Sprintf("livenet: recover %d: %v", n.id, err))
	}
	n.replica = restored
	// The learner hold-back is volatile; in the primary scheme commits map
	// 1:1 onto the committed log, so the next expected commit number is
	// derived from the snapshot (absolute — the checkpointed prefix counts).
	n.held = make(map[int64]core.Req)
	n.nextCommit = int64(n.snap.CommittedLen()) + 1
	n.down = false
	n.crashed.Store(false)
	n.route(*eff) // continuations answered from the committed-while-down prefix
	n.putEff(eff)
	for peer := 0; peer < n.n; peer++ {
		if peer != int(n.id) {
			n.h.sendPeer(int(n.id), peer, message{kind: msgResync, from: n.id, commitNo: n.nextCommit})
		}
	}
	// Invocations parked before the crash survived it (they are client-side
	// continuations); the restored prefix may already cover them.
	n.settleLocal()
}

// antiEntropy is one background repair tick (remote substrate only; the
// in-process fabric never loses frames, so Cluster never calls it): ask one
// peer, round-robin across ticks, for retransmission from the local commit
// cursor — the same idempotent handshake recovery uses, re-driven
// periodically so frames lost to corruption teardowns, write timeouts, or
// the fault injector are repaired without an explicit recovery event. The
// sequencer additionally stamps any TOB-cast request it has learned via RB
// but never received the forward for.
func (n *node) antiEntropy(cursor *int) {
	if n.down || n.n <= 1 {
		return
	}
	if n.id == 0 {
		n.stampTentative()
	}
	t := *cursor % n.n
	if t == int(n.id) {
		t = (t + 1) % n.n
	}
	*cursor = t + 1
	n.h.sendPeer(int(n.id), t, message{kind: msgResync, from: n.id, commitNo: n.nextCommit})
}

// stampTentative commits requests the sequencer knows only tentatively.
// Every request on a tentative list was TOB-cast by its origin (weak
// updates broadcast and forward together), so a tentative entry with no
// stamp and no committed record means the forward frame was lost — and
// stamping from the RB copy is indistinguishable from receiving it: the
// stamp filter dedups the forward if it does arrive later.
func (n *node) stampTentative() {
	var stale []core.Req
	for _, r := range n.replica.Tentative() {
		if !n.stamped[r.ID()] && !n.replica.KnownCommitted(r.Dot) {
			stale = append(stale, r)
		}
	}
	if len(stale) > 0 {
		n.stampBatch(stale)
	}
}

// answerResync retransmits to a recovering peer: every tentative request
// this node holds (the requester's duplicate filters drop what it already
// knows) as one batched delivery, plus — on the sequencer — the commit log
// from the requester's next expected commit number as one batched commit
// run. A requester whose cursor predates the sequencer's checkpoint gets
// the checkpoint image first (state transfer) and per-commit replay only
// for the log that survives past it. This is also the bootstrap path of a
// multi-process node: it sends a resync on startup, and a lagging learner
// catches up by checkpoint image instead of channel replay.
func (n *node) answerResync(m message) {
	if tent := n.replica.Tentative(); len(tent) > 0 {
		n.h.sendPeer(int(n.id), int(m.from), message{kind: msgRBDeliver, reqs: tent})
	}
	if n.id == 0 {
		from := m.commitNo
		if from <= n.logBase {
			if rec, ok := n.replica.CheckpointRecord(); ok {
				n.h.sendPeer(0, int(m.from), message{kind: msgStateXfer, commitNo: int64(rec.BaseLen), ckpt: rec})
			}
			from = n.logBase + 1
		}
		if from <= n.commitNo {
			run := append([]core.Req(nil), n.commitLog[from-1-n.logBase:]...)
			n.h.sendPeer(0, int(m.from), message{kind: msgCommitBatch, commitNo: from, reqs: run})
		}
	}
}

// installCheckpoint adopts a transferred checkpoint on the node's own
// goroutine: the replica installs the image, orphaned continuations resolve
// as lost results, and the learner cursor jumps past the transferred prefix.
func (n *node) installCheckpoint(rec *core.CheckpointRecord) {
	eff := n.takeEff()
	stats, err := n.replica.InstallCheckpoint(rec, eff)
	if err != nil {
		n.putEff(eff)
		panic(fmt.Sprintf("livenet: install checkpoint on %d: %v", n.id, err))
	}
	if stats.Installed {
		n.route(*eff)
		if int64(rec.BaseLen)+1 > n.nextCommit {
			n.nextCommit = int64(rec.BaseLen) + 1
		}
		var batch []core.Req
		for {
			next, ok := n.held[n.nextCommit]
			if !ok {
				break
			}
			delete(n.held, n.nextCommit)
			n.nextCommit++
			batch = append(batch, next)
		}
		for no := range n.held {
			if no < n.nextCommit {
				delete(n.held, no)
			}
		}
		first := n.nextCommit - int64(len(batch))
		for i, next := range batch {
			n.h.observe(obsEvent{kind: obsTOB, dot: next.Dot, no: first + int64(i)})
			beff := n.takeEff()
			if err := n.replica.TOBDeliverInto(next, beff); err == nil {
				n.route(*beff)
			}
			n.putEff(beff)
		}
	}
	n.putEff(eff)
}

// checkpoint drains the replica and checkpoints its stable state; on the
// sequencer the commit log truncates below the new base. Runs on the node's
// goroutine.
func (n *node) checkpoint() (int, error) {
	if n.ckpting || n.down {
		return 0, nil
	}
	n.ckpting = true
	defer func() { n.ckpting = false }()
	n.drain()
	stats, err := n.replica.Checkpoint(n.replica.CommittedLen())
	if err != nil {
		return 0, fmt.Errorf("livenet: checkpoint on %d: %w", n.id, err)
	}
	if stats.Truncated == 0 {
		return 0, nil
	}
	if n.id == 0 {
		base := int64(stats.BaseLen)
		if cut := base - n.logBase; cut > 0 {
			if cut > int64(len(n.commitLog)) {
				cut = int64(len(n.commitLog))
			}
			for _, r := range n.commitLog[:cut] {
				delete(n.stamped, r.ID())
			}
			fresh := make([]core.Req, len(n.commitLog)-int(cut))
			copy(fresh, n.commitLog[cut:])
			n.commitLog = fresh
			n.logBase += cut
		}
	}
	return stats.Truncated, nil
}

// maybeCheckpoint runs the automatic cadence after applied commits.
func (n *node) maybeCheckpoint() {
	every := n.ckptE
	if every <= 0 || n.down || n.ckpting {
		return
	}
	if n.replica.CommittedLen()-n.replica.BaseLen() < every {
		return
	}
	if _, err := n.checkpoint(); err != nil {
		panic(err)
	}
}

// process handles one message; RB deliveries are buffered (flushed before
// any other message kind so per-node delivery order is preserved). A
// crashed node answers only the fault plane (and inspections, which read
// the stale pre-crash state like the simulator does) and discards protocol
// traffic — the crash already dropped it conceptually; the resync handshake
// refetches what matters.
func (n *node) process(m message) {
	if n.down {
		switch m.kind {
		case msgInvoke:
			n.h.observe(obsEvent{kind: obsCancel, call: m.call, sess: m.sess})
			m.reply <- invokeReply{err: fmt.Errorf("%w: %d (session %d)", ErrReplicaDown, n.id, m.sess)}
		case msgCrash:
			m.reply <- invokeReply{err: fmt.Errorf("%w: %d already crashed", ErrReplicaDown, n.id)}
		case msgRecover:
			n.recover()
			m.reply <- invokeReply{}
		case msgInspect:
			m.inspect(n)
			close(m.done)
		case msgRBDeliver, msgForward, msgCommitBatch, msgResync, msgStateXfer:
			// Dropped: the node is down.
		}
		return
	}
	if m.kind == msgRBDeliver {
		n.rbBatch = append(n.rbBatch, m.reqs...)
		return
	}
	if m.kind == msgForward && n.id == 0 {
		n.fwdBatch = append(n.fwdBatch, m.reqs...)
		return
	}
	n.flushRB()
	n.flushFwd()
	switch m.kind {
	case msgInvoke:
		level := core.Weak
		if m.strong {
			level = core.Strong
		}
		pi := parkedInvoke{
			sess: m.sess, op: m.op, level: level, call: m.call,
			read: m.read, write: m.write, fence: m.fence,
			castOK: m.castOK, castCeil: m.castCeil,
		}
		if m.gated {
			// Guarantee-gated: the pending call already holds the session's
			// busy mark; accept, park, or reject on coverage.
			switch {
			case n.covers(pi):
				n.complete(pi)
				m.reply <- invokeReply{call: m.call}
			case m.failFast:
				n.h.observe(obsEvent{kind: obsCancel, call: m.call, sess: m.sess})
				m.reply <- invokeReply{err: fmt.Errorf("%w: session %d at replica %d", record.ErrGuarantee, m.sess, n.id)}
			default:
				n.parked = append(n.parked, pi)
				m.reply <- invokeReply{call: m.call}
			}
			return
		}
		// Plain session: the busy mark was taken at the client
		// (PendingInvoke), so acceptance is unconditional.
		if n.tryLeaseRead(pi) {
			m.reply <- invokeReply{call: m.call}
			return
		}
		eff := n.takeEff()
		req, err := n.replica.InvokeFrom(m.sess, m.op, m.strong, eff)
		if err != nil {
			n.putEff(eff)
			n.h.observe(obsEvent{kind: obsCancel, call: m.call, sess: m.sess})
			m.reply <- invokeReply{err: fmt.Errorf("livenet: invoke on %d: %w", n.id, err)}
			return
		}
		n.h.observe(obsEvent{
			kind: obsComplete, call: m.call, sess: m.sess,
			dot: req.Dot, ts: req.Timestamp, tob: len(eff.TOBCast) > 0,
		})
		n.route(*eff)
		n.putEff(eff)
		m.reply <- invokeReply{call: m.call}
	case msgForward:
		// Forwards to the sequencer were buffered above; one addressed to
		// anybody else was misrouted and is dropped.
	case msgCommitBatch:
		for i, r := range m.reqs {
			n.applyCommit(m.commitNo+int64(i), r)
		}
	case msgStateXfer:
		n.installCheckpoint(m.ckpt)
	case msgCrash:
		n.down = true
		n.crashed.Store(true)
		n.snap = n.replica.Snapshot()
		n.rbBatch = n.rbBatch[:0] // buffered deliveries die with the process
		n.fwdBatch = n.fwdBatch[:0]
		m.reply <- invokeReply{}
	case msgRecover:
		m.reply <- invokeReply{err: fmt.Errorf("livenet: replica %d is not crashed", n.id)}
	case msgResync:
		n.answerResync(m)
	case msgInspect:
		// Drain before answering so an inspection mid-burst still
		// observes every message processed ahead of it.
		n.drain()
		m.inspect(n)
		close(m.done)
	}
}

// flushRB feeds the buffered RB deliveries to the replica as one batch.
func (n *node) flushRB() {
	if len(n.rbBatch) == 0 {
		return
	}
	eff := n.takeEff()
	if err := n.replica.RBDeliverBatch(n.rbBatch, eff); err == nil {
		n.route(*eff)
	}
	n.putEff(eff)
	n.rbBatch = n.rbBatch[:0]
}

// flushFwd stamps the buffered forwarded requests as one contiguous run.
func (n *node) flushFwd() {
	if len(n.fwdBatch) == 0 {
		return
	}
	n.stampBatch(n.fwdBatch)
	n.fwdBatch = n.fwdBatch[:0]
}

// stampBatch is the primary's sequencer step, batched: every request in
// the run not already stamped is appended to the durable commit log under
// the next commit numbers, each peer receives the whole run as a single
// commit announcement, and the sequencer applies the run to itself
// synchronously. One send per peer per burst, not per request — the
// commit-log append batching that keeps the sequencer off the
// per-operation critical path under strong-write load.
func (n *node) stampBatch(reqs []core.Req) {
	var fresh []core.Req
	for _, r := range reqs {
		if n.stamped[r.ID()] || n.replica.KnownCommitted(r.Dot) {
			// The stamp filter only covers commits past the sequencer's
			// checkpoint; the replica's committed knowledge (base summary +
			// suffix) covers the truncated rest — the sequencer applies its
			// own stamps synchronously, so everything it ever stamped is
			// committed locally. Re-stamping would mint a second commit
			// number.
			continue
		}
		n.stamped[r.ID()] = true
		n.commitNo++
		n.commitLog = append(n.commitLog, r)
		fresh = append(fresh, r)
	}
	if len(fresh) == 0 {
		return
	}
	first := n.commitNo - int64(len(fresh)) + 1
	for peer := 0; peer < n.n; peer++ {
		if peer == int(n.id) {
			continue
		}
		n.h.sendPeer(int(n.id), peer, message{kind: msgCommitBatch, commitNo: first, reqs: fresh})
	}
	for i, r := range fresh {
		n.applyCommit(first+int64(i), r)
	}
}

// applyCommit enforces stamped order regardless of channel scheduling; a
// commit that unblocks held successors delivers the whole run as one batch.
func (n *node) applyCommit(no int64, r core.Req) {
	if no < n.nextCommit {
		return
	}
	n.held[no] = r
	var batch []core.Req
	for {
		next, ok := n.held[n.nextCommit]
		if !ok {
			break
		}
		delete(n.held, n.nextCommit)
		n.nextCommit++
		batch = append(batch, next)
	}
	if len(batch) == 0 {
		return
	}
	// Each commit is delivered with its own pooled accumulator: an
	// invariant error on one commit withholds that transition's effects
	// (whose contents are unspecified on error) without dropping the rest
	// of the cascade.
	first := n.nextCommit - int64(len(batch))
	for i, next := range batch {
		n.h.observe(obsEvent{kind: obsTOB, dot: next.Dot, no: first + int64(i)})
		eff := n.takeEff()
		if err := n.replica.TOBDeliverInto(next, eff); err == nil {
			n.route(*eff)
		}
		n.putEff(eff)
	}
	n.maybeCheckpoint()
}

// drain runs the replica's internal work and routes the produced effects.
func (n *node) drain() {
	eff := n.takeEff()
	if _, err := n.replica.DrainInto(eff); err == nil {
		n.route(*eff)
	}
	n.putEff(eff)
}

// route fans a step's effects out to the other replicas and the recorder.
// Peer traffic is batched: one RB envelope (and at most one forward
// envelope) per peer per effects, carrying the whole cast — the effects
// accumulator is pooled, so the batch is copied out before fan-out.
func (n *node) route(eff core.Effects) {
	if len(eff.RBCast) > 0 {
		rs := append([]core.Req(nil), eff.RBCast...)
		for peer := 0; peer < n.n; peer++ {
			if peer != int(n.id) {
				n.h.sendPeer(int(n.id), peer, message{kind: msgRBDeliver, reqs: rs})
			}
		}
	}
	if len(eff.TOBCast) > 0 {
		if n.id == 0 {
			n.stampBatch(eff.TOBCast)
		} else {
			rs := append([]core.Req(nil), eff.TOBCast...)
			n.h.sendPeer(int(n.id), 0, message{kind: msgForward, reqs: rs})
		}
	}
	for _, t := range eff.Transitions {
		n.h.observe(obsEvent{kind: obsTransition, trans: t})
	}
	for _, resp := range eff.Responses {
		n.h.observe(obsEvent{kind: obsResponded, resp: resp})
	}
	for _, notice := range eff.StableNotices {
		n.h.observe(obsEvent{kind: obsStable, resp: notice})
	}
	for _, lost := range eff.Lost {
		n.h.observe(obsEvent{kind: obsLost, dot: lost.Dot})
	}
}
