// Package livenet runs the Bayou protocol over real goroutines and channels
// instead of the deterministic simulator: one goroutine per replica, channel
// inboxes as links, wall-clock-free logical timestamps, and the original
// Bayou primary-commit scheme for total order (replica 0 stamps commit
// numbers; learners apply a hold-back buffer, so channel scheduling order
// does not matter).
//
// The package exists to demonstrate that internal/core is a pure state
// machine with no dependency on the simulation substrate, and to exercise
// the protocol under true concurrency (`go test -race ./internal/livenet`).
// Simulation remains the tool for the paper's experiments — determinism is
// what makes the figures reproducible — while livenet is the shape a real
// deployment driver would take.
package livenet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bayou/internal/core"
	"bayou/internal/spec"
)

// ErrStopped is returned for operations on a stopped cluster.
var ErrStopped = errors.New("livenet: cluster stopped")

// ErrTimeout is returned when a Future is not resolved within the deadline.
var ErrTimeout = errors.New("livenet: timed out awaiting response")

// inboxSize bounds each replica's message queue. Sends are blocking;
// workloads that could overrun it should be throttled by awaiting futures.
const inboxSize = 1 << 14

type msgKind int

const (
	msgInvoke msgKind = iota + 1
	msgRBDeliver
	msgForward // weak/strong request en route to the primary
	msgCommit  // primary's ordering announcement
	msgPeek
)

type message struct {
	kind     msgKind
	req      core.Req
	commitNo int64
	op       spec.Op
	strong   bool
	future   *Future
	peekKey  string
	peekRes  chan spec.Value
}

// Future resolves with a call's tentative (weak) or stable (strong)
// response.
type Future struct {
	ch  chan core.Response
	dot atomic.Value // core.Dot, set once the invoke is processed
}

// Wait blocks until the response arrives or the timeout expires.
func (f *Future) Wait(timeout time.Duration) (core.Response, error) {
	select {
	case r := <-f.ch:
		return r, nil
	case <-time.After(timeout):
		return core.Response{}, ErrTimeout
	}
}

// Dot returns the request identifier once the invoke has been processed
// (zero value before that).
func (f *Future) Dot() core.Dot {
	if d, ok := f.dot.Load().(core.Dot); ok {
		return d
	}
	return core.Dot{}
}

// Cluster is a goroutine-per-replica deployment. Construct with New; always
// Stop it (defer c.Stop()).
type Cluster struct {
	n       int
	variant core.Variant
	nodes   []*node
	clock   atomic.Int64
	wg      sync.WaitGroup
	stopped atomic.Bool
}

type node struct {
	id      core.ReplicaID
	cl      *Cluster
	replica *core.Replica
	inbox   chan message
	stop    chan struct{}

	awaiting map[core.Dot]*Future

	// Primary (sequencer) state, used on replica 0 only.
	commitNo int64
	stamped  map[string]bool

	// Learner hold-back: commits applied in stamped order.
	nextCommit int64
	held       map[int64]core.Req

	// effPool recycles effect accumulators; rbBatch buffers RB deliveries
	// pulled from the inbox in one burst so they hit the replica as a
	// single batch.
	effPool core.EffectsPool
	rbBatch []core.Req
}

func (n *node) takeEff() *core.Effects { return n.effPool.Take() }
func (n *node) putEff(e *core.Effects) { n.effPool.Put(e) }

// New starts a cluster of n replicas running the given protocol variant.
func New(n int, variant core.Variant) *Cluster {
	c := &Cluster{n: n, variant: variant}
	for i := 0; i < n; i++ {
		nd := &node{
			id:         core.ReplicaID(i),
			cl:         c,
			inbox:      make(chan message, inboxSize),
			stop:       make(chan struct{}),
			awaiting:   make(map[core.Dot]*Future),
			stamped:    make(map[string]bool),
			nextCommit: 1,
			held:       make(map[int64]core.Req),
		}
		nd.replica = core.NewReplica(nd.id, variant, func() int64 {
			// A shared logical clock keeps timestamps globally unique
			// and roughly synchronized without wall-clock flakiness.
			return c.clock.Add(1)
		})
		c.nodes = append(c.nodes, nd)
	}
	for _, nd := range c.nodes {
		c.wg.Add(1)
		go nd.run()
	}
	return c
}

// Stop terminates every replica goroutine and waits for them.
func (c *Cluster) Stop() {
	if !c.stopped.CompareAndSwap(false, true) {
		return
	}
	for _, nd := range c.nodes {
		close(nd.stop)
	}
	c.wg.Wait()
}

// Invoke submits an operation at a replica; the returned Future resolves
// with the weak tentative response or the strong stable response.
func (c *Cluster) Invoke(replica int, op spec.Op, strong bool) (*Future, error) {
	if c.stopped.Load() {
		return nil, ErrStopped
	}
	if replica < 0 || replica >= c.n {
		return nil, fmt.Errorf("livenet: no replica %d", replica)
	}
	f := &Future{ch: make(chan core.Response, 1)}
	c.nodes[replica].inbox <- message{kind: msgInvoke, op: op, strong: strong, future: f}
	return f, nil
}

// Read fetches a register value through the replica's own goroutine (safe
// snapshot of its current state).
func (c *Cluster) Read(replica int, key string, timeout time.Duration) (spec.Value, error) {
	if c.stopped.Load() {
		return nil, ErrStopped
	}
	res := make(chan spec.Value, 1)
	c.nodes[replica].inbox <- message{kind: msgPeek, peekKey: key, peekRes: res}
	select {
	case v := <-res:
		return v, nil
	case <-time.After(timeout):
		return nil, ErrTimeout
	}
}

// maxBurst caps how many queued messages one burst pulls before the node
// flushes RB batches and drains internal work. Without the cap a saturated
// inbox (blocking senders keep it non-empty) would defer execution — and
// therefore responses — indefinitely.
const maxBurst = 256

// run is the replica goroutine: a strict event loop over the inbox, exactly
// the atomic-step automaton model of the paper — with opportunistic
// batching: whatever has queued up while the replica was busy is pulled in
// one burst (capped), consecutive RB deliveries collapse into a single
// batched schedule adjustment, and internal work is drained once per burst
// instead of once per message.
func (n *node) run() {
	defer n.cl.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case m := <-n.inbox:
			n.process(m)
		burst:
			for i := 1; i < maxBurst; i++ {
				select {
				case m2 := <-n.inbox:
					n.process(m2)
				default:
					break burst
				}
			}
			n.flushRB()
			n.drain()
		}
	}
}

// process handles one message; RB deliveries are buffered (flushed before
// any other message kind so per-node delivery order is preserved).
func (n *node) process(m message) {
	if m.kind == msgRBDeliver {
		n.rbBatch = append(n.rbBatch, m.req)
		return
	}
	n.flushRB()
	switch m.kind {
	case msgInvoke:
		eff := n.takeEff()
		req, err := n.replica.InvokeInto(m.op, m.strong, eff)
		if err != nil {
			n.putEff(eff)
			m.future.ch <- core.Response{}
			return
		}
		m.future.dot.Store(req.Dot)
		n.awaiting[req.Dot] = m.future
		n.route(*eff)
		n.putEff(eff)
	case msgForward:
		if n.id == 0 {
			n.stampAndBroadcast(m.req)
		}
	case msgCommit:
		n.applyCommit(m.commitNo, m.req)
	case msgPeek:
		// Drain before answering so a peek mid-burst still observes
		// every message processed ahead of it (the seed's
		// drain-after-every-message guarantee).
		n.drain()
		m.peekRes <- n.replica.Read(m.peekKey)
	}
}

// flushRB feeds the buffered RB deliveries to the replica as one batch.
func (n *node) flushRB() {
	if len(n.rbBatch) == 0 {
		return
	}
	eff := n.takeEff()
	if err := n.replica.RBDeliverBatch(n.rbBatch, eff); err == nil {
		n.route(*eff)
	}
	n.putEff(eff)
	n.rbBatch = n.rbBatch[:0]
}

// stampAndBroadcast is the primary's sequencer step.
func (n *node) stampAndBroadcast(r core.Req) {
	if n.stamped[r.ID()] {
		return
	}
	n.stamped[r.ID()] = true
	n.commitNo++
	no := n.commitNo
	for _, peer := range n.cl.nodes {
		if peer.id == n.id {
			n.applyCommit(no, r)
			continue
		}
		peer.inbox <- message{kind: msgCommit, commitNo: no, req: r}
	}
}

// applyCommit enforces stamped order regardless of channel scheduling; a
// commit that unblocks held successors delivers the whole run as one batch.
func (n *node) applyCommit(no int64, r core.Req) {
	if no < n.nextCommit {
		return
	}
	n.held[no] = r
	var batch []core.Req
	for {
		next, ok := n.held[n.nextCommit]
		if !ok {
			break
		}
		delete(n.held, n.nextCommit)
		n.nextCommit++
		batch = append(batch, next)
	}
	if len(batch) == 0 {
		return
	}
	// Each commit is delivered with its own pooled accumulator: an
	// invariant error on one commit withholds that transition's effects
	// (whose contents are unspecified on error) without dropping the rest
	// of the cascade.
	for _, next := range batch {
		eff := n.takeEff()
		if err := n.replica.TOBDeliverInto(next, eff); err == nil {
			n.route(*eff)
		}
		n.putEff(eff)
	}
}

// drain runs the replica's internal work and routes the produced effects.
func (n *node) drain() {
	eff := n.takeEff()
	if _, err := n.replica.DrainInto(eff); err == nil {
		n.route(*eff)
	}
	n.putEff(eff)
}

// route fans a step's effects out to the other replicas and to waiting
// futures.
func (n *node) route(eff core.Effects) {
	for _, r := range eff.RBCast {
		for _, peer := range n.cl.nodes {
			if peer.id != n.id {
				peer.inbox <- message{kind: msgRBDeliver, req: r}
			}
		}
	}
	for _, r := range eff.TOBCast {
		if n.id == 0 {
			n.stampAndBroadcast(r)
			continue
		}
		n.cl.nodes[0].inbox <- message{kind: msgForward, req: r}
	}
	for _, resp := range eff.Responses {
		if f, ok := n.awaiting[resp.Req.Dot]; ok {
			f.ch <- resp
			delete(n.awaiting, resp.Req.Dot)
		}
	}
}
