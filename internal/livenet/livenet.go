// Package livenet runs the Bayou protocol over real goroutines and channels
// instead of the deterministic simulator: one goroutine per replica, channel
// inboxes as links, wall-clock-free logical timestamps, and the original
// Bayou primary-commit scheme for total order (replica 0 stamps commit
// numbers; learners apply a hold-back buffer, so channel scheduling order
// does not matter).
//
// The package exists to demonstrate that internal/core is a pure state
// machine with no dependency on the simulation substrate, and to exercise
// the protocol under true concurrency (`go test -race ./internal/livenet`).
// Simulation remains the tool for the paper's experiments — determinism is
// what makes the figures reproducible — while livenet is the shape a real
// deployment driver would take.
package livenet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bayou/internal/core"
	"bayou/internal/spec"
)

// ErrStopped is returned for operations on a stopped cluster.
var ErrStopped = errors.New("livenet: cluster stopped")

// ErrTimeout is returned when a Future is not resolved within the deadline.
var ErrTimeout = errors.New("livenet: timed out awaiting response")

// inboxSize bounds each replica's message queue. Sends are blocking;
// workloads that could overrun it should be throttled by awaiting futures.
const inboxSize = 1 << 14

type msgKind int

const (
	msgInvoke msgKind = iota + 1
	msgRBDeliver
	msgForward // weak/strong request en route to the primary
	msgCommit  // primary's ordering announcement
	msgPeek
)

type message struct {
	kind     msgKind
	req      core.Req
	commitNo int64
	op       spec.Op
	strong   bool
	future   *Future
	peekKey  string
	peekRes  chan spec.Value
}

// Future resolves with a call's tentative (weak) or stable (strong)
// response.
type Future struct {
	ch  chan core.Response
	dot atomic.Value // core.Dot, set once the invoke is processed
}

// Wait blocks until the response arrives or the timeout expires.
func (f *Future) Wait(timeout time.Duration) (core.Response, error) {
	select {
	case r := <-f.ch:
		return r, nil
	case <-time.After(timeout):
		return core.Response{}, ErrTimeout
	}
}

// Dot returns the request identifier once the invoke has been processed
// (zero value before that).
func (f *Future) Dot() core.Dot {
	if d, ok := f.dot.Load().(core.Dot); ok {
		return d
	}
	return core.Dot{}
}

// Cluster is a goroutine-per-replica deployment. Construct with New; always
// Stop it (defer c.Stop()).
type Cluster struct {
	n       int
	variant core.Variant
	nodes   []*node
	clock   atomic.Int64
	wg      sync.WaitGroup
	stopped atomic.Bool
}

type node struct {
	id      core.ReplicaID
	cl      *Cluster
	replica *core.Replica
	inbox   chan message
	stop    chan struct{}

	awaiting map[core.Dot]*Future

	// Primary (sequencer) state, used on replica 0 only.
	commitNo int64
	stamped  map[string]bool

	// Learner hold-back: commits applied in stamped order.
	nextCommit int64
	held       map[int64]core.Req
}

// New starts a cluster of n replicas running the given protocol variant.
func New(n int, variant core.Variant) *Cluster {
	c := &Cluster{n: n, variant: variant}
	for i := 0; i < n; i++ {
		nd := &node{
			id:         core.ReplicaID(i),
			cl:         c,
			inbox:      make(chan message, inboxSize),
			stop:       make(chan struct{}),
			awaiting:   make(map[core.Dot]*Future),
			stamped:    make(map[string]bool),
			nextCommit: 1,
			held:       make(map[int64]core.Req),
		}
		nd.replica = core.NewReplica(nd.id, variant, func() int64 {
			// A shared logical clock keeps timestamps globally unique
			// and roughly synchronized without wall-clock flakiness.
			return c.clock.Add(1)
		})
		c.nodes = append(c.nodes, nd)
	}
	for _, nd := range c.nodes {
		c.wg.Add(1)
		go nd.run()
	}
	return c
}

// Stop terminates every replica goroutine and waits for them.
func (c *Cluster) Stop() {
	if !c.stopped.CompareAndSwap(false, true) {
		return
	}
	for _, nd := range c.nodes {
		close(nd.stop)
	}
	c.wg.Wait()
}

// Invoke submits an operation at a replica; the returned Future resolves
// with the weak tentative response or the strong stable response.
func (c *Cluster) Invoke(replica int, op spec.Op, strong bool) (*Future, error) {
	if c.stopped.Load() {
		return nil, ErrStopped
	}
	if replica < 0 || replica >= c.n {
		return nil, fmt.Errorf("livenet: no replica %d", replica)
	}
	f := &Future{ch: make(chan core.Response, 1)}
	c.nodes[replica].inbox <- message{kind: msgInvoke, op: op, strong: strong, future: f}
	return f, nil
}

// Read fetches a register value through the replica's own goroutine (safe
// snapshot of its current state).
func (c *Cluster) Read(replica int, key string, timeout time.Duration) (spec.Value, error) {
	if c.stopped.Load() {
		return nil, ErrStopped
	}
	res := make(chan spec.Value, 1)
	c.nodes[replica].inbox <- message{kind: msgPeek, peekKey: key, peekRes: res}
	select {
	case v := <-res:
		return v, nil
	case <-time.After(timeout):
		return nil, ErrTimeout
	}
}

// run is the replica goroutine: a strict event loop over the inbox, exactly
// the atomic-step automaton model of the paper.
func (n *node) run() {
	defer n.cl.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case m := <-n.inbox:
			n.handle(m)
		}
	}
}

func (n *node) handle(m message) {
	switch m.kind {
	case msgInvoke:
		eff, err := n.replica.Invoke(m.op, m.strong)
		if err != nil {
			m.future.ch <- core.Response{}
			return
		}
		d := requestDot(eff)
		m.future.dot.Store(d)
		n.awaiting[d] = m.future
		n.route(eff)
	case msgRBDeliver:
		eff, err := n.replica.RBDeliver(m.req)
		if err == nil {
			n.route(eff)
		}
	case msgForward:
		if n.id == 0 {
			n.stampAndBroadcast(m.req)
		}
	case msgCommit:
		n.applyCommit(m.commitNo, m.req)
	case msgPeek:
		m.peekRes <- n.replica.Read(m.peekKey)
	}
	n.drain()
}

// stampAndBroadcast is the primary's sequencer step.
func (n *node) stampAndBroadcast(r core.Req) {
	if n.stamped[r.ID()] {
		return
	}
	n.stamped[r.ID()] = true
	n.commitNo++
	no := n.commitNo
	for _, peer := range n.cl.nodes {
		if peer.id == n.id {
			n.applyCommit(no, r)
			continue
		}
		peer.inbox <- message{kind: msgCommit, commitNo: no, req: r}
	}
}

// applyCommit enforces stamped order regardless of channel scheduling.
func (n *node) applyCommit(no int64, r core.Req) {
	if no < n.nextCommit {
		return
	}
	n.held[no] = r
	for {
		next, ok := n.held[n.nextCommit]
		if !ok {
			return
		}
		delete(n.held, n.nextCommit)
		n.nextCommit++
		eff, err := n.replica.TOBDeliver(next)
		if err == nil {
			n.route(eff)
		}
	}
}

// drain runs the replica's internal work and routes the produced effects.
func (n *node) drain() {
	eff, err := n.replica.Drain()
	if err != nil {
		return
	}
	n.route(eff)
}

// route fans a step's effects out to the other replicas and to waiting
// futures.
func (n *node) route(eff core.Effects) {
	for _, r := range eff.RBCast {
		for _, peer := range n.cl.nodes {
			if peer.id != n.id {
				peer.inbox <- message{kind: msgRBDeliver, req: r}
			}
		}
	}
	for _, r := range eff.TOBCast {
		if n.id == 0 {
			n.stampAndBroadcast(r)
			continue
		}
		n.cl.nodes[0].inbox <- message{kind: msgForward, req: r}
	}
	for _, resp := range eff.Responses {
		if f, ok := n.awaiting[resp.Req.Dot]; ok {
			f.ch <- resp
			delete(n.awaiting, resp.Req.Dot)
		}
	}
}

// requestDot extracts the dot of the request an invoke produced.
func requestDot(eff core.Effects) core.Dot {
	switch {
	case len(eff.TOBCast) > 0:
		return eff.TOBCast[0].Dot
	case len(eff.RBCast) > 0:
		return eff.RBCast[0].Dot
	case len(eff.Responses) > 0:
		return eff.Responses[0].Req.Dot
	default:
		return core.Dot{}
	}
}
