package livenet

import (
	"fmt"
	"math"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"bayou/internal/core"
	"bayou/internal/store"
	"bayou/internal/wire"
)

// This file is the node-process half of the multi-process deployment: one
// replica automaton (the same type node the in-process Cluster runs)
// hosted behind a TCP listener, speaking internal/wire envelopes. Peers
// exchange the replica protocol; the controller process (client.go) drives
// invocations, inspections, and the fault plane over the same listener and
// receives the node's observation events as a stream.
//
// The fault semantics mirror the in-process fabric with one documented
// shift: the in-process network drops traffic toward a crashed replica at
// the sender, while the wire transport discards it at the receiver (the
// down node) — indistinguishable to the protocol, since both are repaired
// by the recovery resync. Partition parking is sender-side in both: each
// node holds cross-cell envelopes under the controller's broadcast fault
// view and releases them when a new view reconnects the cells, with
// release gated on the target being up, exactly like the in-process
// releasableLocked.

// NodeConfig parametrizes one hosted replica.
type NodeConfig struct {
	ID              int
	Variant         core.Variant
	CheckpointEvery int
	LeaderLease     bool
	// Addrs lists every replica's listen address, indexed by replica id;
	// len(Addrs) is the deployment size and Addrs[ID] is this node's
	// listen address.
	Addrs []string

	// DataDir is the node's stable storage (empty: fully volatile, the
	// pre-durability behavior). With a data dir the node persists its
	// durable image once per dirty burst and before every invoke reply,
	// and a restarted process restores from the newest intact generation
	// instead of bootstrapping from peers.
	DataDir string
	// Keep bounds the snapshot generations retained (0: store.DefaultKeep).
	Keep int

	// Seed governs every stochastic choice this node makes (dial-backoff
	// jitter, injected faults), so a multi-process schedule replays from
	// the per-node seeds alone.
	Seed int64
	// Chaos, when enabled, attaches a seeded frame fault injector to every
	// peer link (controller links are never injected).
	Chaos wire.FaultConfig

	// AntiEntropyEvery paces the background repair tick: each tick asks one
	// peer (round-robin) for retransmission from the local commit cursor,
	// and on the sequencer additionally stamps TOB-cast requests whose
	// forward frame was lost. Zero disables it; lossless transports
	// (in-process, clean TCP) converge without it, a chaos deployment needs
	// it to re-drive frames the injector dropped.
	AntiEntropyEvery time.Duration
}

// peerWriteTimeout bounds each peer-bound frame write so a frozen
// (SIGSTOP'd) receiver surfaces a send error — tearing down the link and
// losing the frame like a drop — instead of wedging the sender's goroutine
// once kernel buffers fill.
const peerWriteTimeout = 2 * time.Second

// heldEnv is an envelope parked on a partition boundary.
type heldEnv struct {
	to  int
	env wire.Envelope
}

// peerQueueCap bounds the frames queued toward one peer while it is slow,
// partitioned away at the TCP level, or dead. Overflow drops the frame —
// loss the protocol already tolerates (receivers dedup; resync and
// anti-entropy repair real gaps) — so an unreachable peer can never wedge
// the node goroutine behind a dial backoff.
const peerQueueCap = 4096

// remoteNode hosts one replica over the wire transport; it implements host.
type remoteNode struct {
	cfg   NodeConfig
	nd    *node
	links []*wire.Link
	sendq []chan wire.Envelope // per-peer outbound pumps; nil at own index

	// clock is the node's Lamport clock: local timestamps are minted by
	// incrementing it, and every received envelope's Clock stamp merges in
	// with mergeClock — so a timestamp minted after a message arrives
	// exceeds every timestamp the sender had seen. Cross-process request
	// order (which the checkers derive from timestamps) thereby respects
	// causality; the dot still breaks exact ties.
	clock atomic.Int64

	// Controller link: events journal between bursts and flush before any
	// RPC reply so the controller applies them in emission order. The
	// journal is an acknowledged stream — every event has an absolute
	// sequence number (evBase+1 .. evBase+len(evLog) are outstanding),
	// entries retire only when a controller RPC acks them applied, the
	// whole unacked suffix resends on every controller reconnect, and the
	// suffix persists inside the NodeImage — so neither a dead connection
	// (a frame flushed into a socket nobody drains) nor a SIGKILL between
	// flush and delivery can lose a completion the recorder still needs.
	evMu   sync.Mutex
	evLog  []wire.Event  // guarded by evMu; unacked journal suffix
	evBase int64         // guarded by evMu; events acked and retired
	evSent int64         // guarded by evMu; highest seq sent on the current ctrl conn
	ctrl   *wire.Conn    // guarded by evMu; current controller connection
	quit   chan struct{} // closed on shutdown RPC

	// evDurable gates the flush: the highest sequence number covered by a
	// completed persist (MaxInt64 without a data dir — nothing survives a
	// crash there, so nothing is gated). Flushing only durable events keeps
	// the invariant the controller's dedup depends on: every sequence
	// number it has applied is in the newest on-disk image, so a restarted
	// process can never re-mint an applied number for a different event.
	// Without the gate a concurrent inspect reply could ship a mid-burst
	// event before endBurst persists it; a SIGKILL in that window would
	// regress the restored counter below the controller's cursor and its
	// dedup would then silently swallow fresh post-restart events.
	evDurable int64 // guarded by evMu

	// Fault view, as last broadcast by the controller.
	partMu sync.Mutex
	cells  []int     // guarded by partMu
	down   []bool    // guarded by partMu
	held   []heldEnv // guarded by partMu

	// Stable storage (nil without a data dir). lastFP and outbound are
	// touched on the node goroutine only: persist runs there (endBurst and
	// the pre-reply sync), sendPeer records forwards there, observe retires
	// them there.
	st       *store.Store
	lastFP   fingerprint         // node-goroutine only
	outbound map[string]core.Req // node-goroutine only; forwarded, not yet committed

	// Recovery scorecard, served by the KindDurability RPC. loaded/loadedGen
	// are written once before the node goroutine starts.
	loaded    bool
	loadedGen int64
	saves     atomic.Int64
	xfersIn   atomic.Int64
}

// ServeNode hosts one replica process: it listens on cfg.Addrs[cfg.ID],
// resyncs off its peers (the bootstrap handshake — a node joining a
// deployment with history catches up by checkpoint state transfer plus
// commit replay), and serves until a shutdown RPC arrives. It is the
// entire body of cmd/bayou-node.
func ServeNode(cfg NodeConfig) error {
	n := len(cfg.Addrs)
	if cfg.ID < 0 || cfg.ID >= n {
		return fmt.Errorf("livenet: node id %d outside %d addrs", cfg.ID, n)
	}
	variant := cfg.Variant
	if variant == core.VariantDefault {
		variant = core.NoCircularCausality
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.ID])
	if err != nil {
		return fmt.Errorf("livenet: node %d listen: %w", cfg.ID, err)
	}
	defer ln.Close()

	r := &remoteNode{
		cfg:      cfg,
		quit:     make(chan struct{}),
		cells:    make([]int, n),
		down:     make([]bool, n),
		outbound: make(map[string]core.Req),
	}
	for i := 0; i < n; i++ {
		var link *wire.Link
		if i != cfg.ID {
			link = wire.NewLink(cfg.Addrs[i], wire.Envelope{Kind: wire.KindHello, From: cfg.ID})
			// Jitter seeds derive from (node seed, peer id) so no two links
			// — on this node or its siblings booted from related seeds —
			// share a backoff schedule: a restarted node's peers redial it
			// spread out instead of in lockstep.
			link.SetDialJitter(cfg.Seed*1_000_003 + int64(cfg.ID)*64 + int64(i) + 1)
			link.SetWriteTimeout(peerWriteTimeout)
			if cfg.Chaos.Enabled() {
				link.SetFaults(cfg.Chaos.Derive(int64(cfg.ID)*64 + int64(i)))
			}
		}
		r.links = append(r.links, link)
		var q chan wire.Envelope
		if i != cfg.ID {
			q = make(chan wire.Envelope, peerQueueCap)
		}
		r.sendq = append(r.sendq, q)
	}
	for i := 0; i < n; i++ {
		if i != cfg.ID {
			go r.pumpPeer(i)
		}
	}

	// Stable storage: load the newest intact generation before the node
	// goroutine exists, so the restored state is never observed half-built.
	var img NodeImage
	if cfg.DataDir == "" {
		// Volatile node: no persist will ever run, so the flush gate must
		// stand open or no event would ever leave the process.
		r.evDurable = math.MaxInt64
	}
	if cfg.DataDir != "" {
		st, loaded, gen, ok, err := loadImage(cfg.DataDir, cfg.Keep)
		if err != nil {
			return fmt.Errorf("livenet: node %d storage: %w", cfg.ID, err)
		}
		r.st = st
		if ok {
			img = loaded
			r.loaded = true
			r.loadedGen = gen
			// The Lamport clock resumes past the persisted watermark;
			// peer and controller frames merge in anything newer.
			r.clock.Store(img.Snap.LastTS)
			// The unacked event journal resumes too: events flushed before
			// the crash but never applied by the controller resend on its
			// first (re)connection, and anything it did apply is dropped
			// by its sequence-number dedup.
			r.evBase = img.EvBase
			r.evLog = img.EvLog
			r.evSent = img.EvBase
			r.evDurable = img.EvBase + int64(len(img.EvLog))
		}
	}
	r.nd = newNode(core.ReplicaID(cfg.ID), n, variant, r, func() int64 {
		return r.clock.Add(1)
	}, cfg.LeaderLease, cfg.CheckpointEvery)
	if r.loaded {
		r.nd.bootRestore(img)
	}

	// Bootstrap, queued as the node's first message: re-announce what only
	// this node's disk still knows, then ask every peer for retransmission
	// from the restored commit cursor (1 on a fresh boot — the late-joiner
	// handshake; past the durable prefix after a restore, so recovery is a
	// snapshot load plus a delta, not a full state transfer).
	bootDone := make(chan struct{})
	r.nd.inbox <- message{kind: msgInspect, inspect: func(nd *node) { nd.bootAnnounce(img) }, done: bootDone}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.nd.run()
	}()
	if cfg.AntiEntropyEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.antiEntropyLoop(cfg.AntiEntropyEvery)
		}()
	}

	go func() {
		<-r.quit
		ln.Close() // unblocks Accept
	}()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-r.quit: // orderly shutdown
				close(r.nd.stop)
				wg.Wait()
				// Final save: a graceful stop leaves the newest state on
				// disk even if the last burst's save raced the shutdown.
				// The node goroutine has exited, so the direct call is safe.
				r.persist(r.nd)
				return nil
			default:
				return fmt.Errorf("livenet: node %d accept: %w", cfg.ID, err)
			}
		}
		go r.serveConn(wire.Wrap(c))
	}
}

// antiEntropyLoop drives the repair tick on the node goroutine until
// shutdown. The tick itself (node.antiEntropy) is a no-op on a crashed
// automaton.
func (r *remoteNode) antiEntropyLoop(every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	cursor := 0
	for {
		select {
		case <-r.quit:
			return
		case <-r.nd.stop:
			return
		case <-tick.C:
			done := make(chan struct{})
			r.deliver(message{kind: msgInspect, inspect: func(n *node) {
				n.antiEntropy(&cursor)
				r.reforwardOutbound(n)
			}, done: done})
			select {
			case <-done:
			case <-r.quit:
				return
			case <-r.nd.stop:
				return
			}
		}
	}
}

// serveConn reads one inbound connection: a hello frame identifies the
// dialer (peer or controller), then frames flow for the connection's life.
func (r *remoteNode) serveConn(conn *wire.Conn) {
	defer conn.Close()
	var hello wire.Envelope
	if err := conn.Recv(&hello); err != nil || hello.Kind != wire.KindHello {
		return
	}
	if hello.From == wire.ControllerID {
		r.evMu.Lock()
		r.ctrl = conn
		// A fresh controller stream restarts from the last ack: whatever
		// was sent on the old connection may have died in its socket
		// buffers, and the controller skips what it did apply by sequence
		// number, so resending the whole unacked suffix is always right.
		r.evSent = r.evBase
		r.flushLocked()
		r.evMu.Unlock()
		r.serveController(conn)
		return
	}
	r.servePeer(conn)
}

// servePeer translates peer envelopes into inbox messages.
func (r *remoteNode) servePeer(conn *wire.Conn) {
	for {
		var env wire.Envelope
		if err := conn.Recv(&env); err != nil {
			return // peer reconnects with a fresh link if it has more to say
		}
		r.mergeClock(env.Clock)
		var m message
		switch env.Kind {
		case wire.KindRBDeliver:
			m = message{kind: msgRBDeliver, reqs: env.Reqs}
		case wire.KindForward:
			m = message{kind: msgForward, reqs: env.Reqs}
		case wire.KindCommitBatch:
			m = message{kind: msgCommitBatch, commitNo: env.CommitNo, reqs: env.Reqs}
		case wire.KindStateXfer:
			// Counted on receipt (installed or not): the durable-restart
			// test asserts recovery needed zero transfers, and "one arrived
			// but was stale" would already falsify that claim.
			r.xfersIn.Add(1)
			m = message{kind: msgStateXfer, commitNo: env.CommitNo, ckpt: env.Ckpt}
		case wire.KindResync:
			m = message{kind: msgResync, from: core.ReplicaID(env.From), commitNo: env.CommitNo}
		default:
			continue
		}
		r.deliver(m)
	}
}

// deliver queues a message for the node goroutine.
func (r *remoteNode) deliver(m message) {
	select {
	case r.nd.inbox <- m:
	case <-r.nd.stop:
	}
}

// serveController handles the controller link: RPC frames answered with
// KindReply (the observation events emitted while serving flush first, on
// the same connection, so the controller applies them before the reply).
func (r *remoteNode) serveController(conn *wire.Conn) {
	for {
		var env wire.Envelope
		if err := conn.Recv(&env); err != nil {
			return
		}
		r.mergeClock(env.Clock)
		r.ackEvents(env.AckEv)
		switch env.Kind {
		case wire.KindInvoke:
			go r.handleInvoke(conn, env)
		case wire.KindRead:
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				out.Value = n.replica.Read(env.Key)
			})
		case wire.KindCommitted:
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				out.Reqs = n.replica.Committed()
			})
		case wire.KindStats:
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				out.Stats = n.replica.Stats()
			})
		case wire.KindCompact:
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				out.Int = int64(n.replica.Compact())
			})
		case wire.KindCheckpoint:
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				truncated, err := n.checkpoint()
				out.Int = int64(truncated)
				if err != nil {
					out.Err = err.Error()
				}
			})
		case wire.KindBaseLen:
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				out.Int = int64(n.replica.BaseLen())
			})
		case wire.KindProbe:
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				out.Int = int64(n.replica.CommittedLen())
				out.Bool = n.replica.HasInternalWork()
			})
		case wire.KindCovered:
			read, write := env.Read, env.Write
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				out.Bool = n.replica.CoversSession(read, write)
			})
		case wire.KindDurability:
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				out.Durab = &wire.Durability{
					Loaded:    r.loaded,
					Gen:       r.loadedGen,
					Saves:     r.saves.Load(),
					XfersIn:   r.xfersIn.Load(),
					Committed: int64(n.replica.CommittedLen()),
				}
			})
		case wire.KindCrash, wire.KindRecover:
			go r.handleControl(conn, env)
		case wire.KindFaultView:
			r.applyFaultView(env.Cells, env.Down)
			r.reply(conn, &wire.Envelope{Kind: wire.KindReply, Seq: env.Seq})
		case wire.KindShutdown:
			r.reply(conn, &wire.Envelope{Kind: wire.KindReply, Seq: env.Seq})
			close(r.quit)
			return
		}
	}
}

// handleInvoke runs one invocation RPC: the envelope carries everything
// the in-process client would have computed against the recorder (frozen
// demand vectors, lease gate), and the node treats it exactly like an
// in-process invoke with a nil call pointer.
func (r *remoteNode) handleInvoke(conn *wire.Conn, env wire.Envelope) {
	m := message{
		kind:     msgInvoke,
		sess:     core.SessionID(env.Sess),
		op:       env.Op,
		strong:   env.Strong,
		gated:    env.Gated,
		failFast: env.FailFast,
		read:     env.Read,
		write:    env.Write,
		fence:    env.Fence,
		castOK:   env.CastOK,
		castCeil: env.CastCeil,
		reply:    make(chan invokeReply, 1),
	}
	r.deliver(m)
	out := wire.Envelope{Kind: wire.KindReply, Seq: env.Seq}
	select {
	case rep := <-m.reply:
		if rep.err != nil {
			out.Err = rep.err.Error()
		}
	case <-r.nd.stop:
		out.Err = ErrStopped.Error()
	}
	// Persist before the reply externalizes the invocation: once the
	// controller sees the acceptance, a SIGKILL must not unmint it.
	r.syncPersist()
	r.reply(conn, &out)
}

// handleControl runs a crash/recover RPC on the node goroutine.
func (r *remoteNode) handleControl(conn *wire.Conn, env wire.Envelope) {
	kind := msgCrash
	if env.Kind == wire.KindRecover {
		kind = msgRecover
	}
	m := message{kind: kind, reply: make(chan invokeReply, 1)}
	r.deliver(m)
	out := wire.Envelope{Kind: wire.KindReply, Seq: env.Seq}
	select {
	case rep := <-m.reply:
		if rep.err != nil {
			out.Err = rep.err.Error()
		}
	case <-r.nd.stop:
		out.Err = ErrStopped.Error()
	}
	r.reply(conn, &out)
}

// handleInspect runs fn on the node goroutine and replies with what it
// filled in.
func (r *remoteNode) handleInspect(conn *wire.Conn, seq uint64, fn func(*node, *wire.Envelope)) {
	out := &wire.Envelope{Kind: wire.KindReply, Seq: seq}
	done := make(chan struct{})
	r.deliver(message{kind: msgInspect, inspect: func(n *node) { fn(n, out) }, done: done})
	select {
	case <-done:
	case <-r.nd.stop:
		out.Err = ErrStopped.Error()
	}
	r.reply(conn, out)
}

// applyFaultView adopts a controller fault broadcast and releases parked
// envelopes the new view reconnects (targets still down stay parked, like
// the in-process fabric's releasableLocked).
func (r *remoteNode) applyFaultView(cells []int, down []bool) {
	r.partMu.Lock()
	if len(cells) == len(r.cells) {
		copy(r.cells, cells)
	}
	if len(down) == len(r.down) {
		copy(r.down, down)
	}
	var release []heldEnv
	keep := r.held[:0]
	for _, h := range r.held {
		if r.cells[r.cfg.ID] == r.cells[h.to] && !r.down[h.to] {
			release = append(release, h)
		} else {
			keep = append(keep, h)
		}
	}
	r.held = keep
	r.partMu.Unlock()
	for _, h := range release {
		r.enqueue(h.to, h.env)
	}
}

// enqueue hands a frame to the peer's outbound pump without blocking; a
// full queue (the peer has been unreachable long enough to back up
// peerQueueCap frames) drops it like a dead link drops a datagram.
func (r *remoteNode) enqueue(to int, env wire.Envelope) {
	select {
	case r.sendq[to] <- env:
	default:
		fmt.Fprintf(os.Stderr, "bayou-node %d: queue to %d full, dropping %v frame\n", r.cfg.ID, to, env.Kind)
	}
}

// pumpPeer drains one peer's outbound queue onto its link. The pump — not
// the node goroutine — absorbs dial backoff when the peer is down, and
// after a failed send it discards the backlog wholesale: those frames
// were addressed to a process that is gone, and the boot resync plus
// anti-entropy retransmit whatever still matters when it returns.
func (r *remoteNode) pumpPeer(to int) {
	for {
		select {
		case env := <-r.sendq[to]:
			if err := r.links[to].Send(&env); err != nil {
				dropped := 1
				for {
					select {
					case <-r.sendq[to]:
						dropped++
						continue
					default:
					}
					break
				}
				fmt.Fprintf(os.Stderr, "bayou-node %d: send to %d: %v (%d frames dropped)\n", r.cfg.ID, to, err, dropped)
			}
		case <-r.quit:
			return
		}
	}
}

// mergeClock raises the Lamport clock to at least ts.
func (r *remoteNode) mergeClock(ts int64) {
	for {
		cur := r.clock.Load()
		if ts <= cur || r.clock.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// sendPeer implements host over the per-peer links, parking cross-cell
// traffic under the current fault view. Runs on the node goroutine (every
// caller is node code), so the outbound record needs no lock.
func (r *remoteNode) sendPeer(from, to int, m message) {
	if m.kind == msgForward {
		// Record TOB casts leaving this node: a frame lost in flight — to a
		// dead peer or to wire corruption — is this node's to re-drive
		// (anti-entropy re-forwards, boot re-announces), and under
		// Algorithm 2 a pending strong request lives nowhere else.
		for _, rq := range m.reqs {
			r.outbound[rq.ID()] = rq
		}
	}
	env := wire.Envelope{From: from, CommitNo: m.commitNo, Reqs: m.reqs, Ckpt: m.ckpt, Clock: r.clock.Load()}
	switch m.kind {
	case msgRBDeliver:
		env.Kind = wire.KindRBDeliver
	case msgForward:
		env.Kind = wire.KindForward
	case msgCommitBatch:
		env.Kind = wire.KindCommitBatch
	case msgStateXfer:
		env.Kind = wire.KindStateXfer
	case msgResync:
		env.Kind = wire.KindResync
		env.From = int(m.from)
	default:
		return
	}
	r.partMu.Lock()
	if r.cells[from] != r.cells[to] {
		r.held = append(r.held, heldEnv{to: to, env: env})
		r.partMu.Unlock()
		return
	}
	r.partMu.Unlock()
	r.enqueue(to, env)
}

// observe implements host: events buffer locally and flush as one frame
// per burst (or before any RPC reply).
func (r *remoteNode) observe(ev obsEvent) {
	if ev.kind == obsTOB {
		// The cast is committed; its outbound record has done its job.
		delete(r.outbound, ev.dot.String())
	}
	r.evMu.Lock()
	r.evLog = append(r.evLog, wire.Event{
		EKind: int(ev.kind),
		Sess:  int64(ev.sess),
		Dot:   ev.dot,
		TS:    ev.ts,
		TOB:   ev.tob,
		No:    ev.no,
		Resp:  ev.resp,
		Trans: ev.trans,
	})
	r.evMu.Unlock()
}

// ackEvents retires the journal prefix the controller has confirmed
// applied (AckEv rides every controller RPC request).
func (r *remoteNode) ackEvents(ack int64) {
	r.evMu.Lock()
	defer r.evMu.Unlock()
	if ack <= r.evBase {
		return
	}
	if top := r.evBase + int64(len(r.evLog)); ack > top {
		ack = top
	}
	r.evLog = append([]wire.Event(nil), r.evLog[ack-r.evBase:]...)
	r.evBase = ack
	if r.evSent < ack {
		r.evSent = ack
	}
}

// endBurst implements host: persist first (anything the events externalize
// is then already on disk), then the burst's events ship as one frame.
// Runs on the node goroutine.
func (r *remoteNode) endBurst() {
	r.persist(r.nd)
	r.flushEvents()
}

// flushEvents sends the journal's unsent suffix to the controller,
// preserving emission order (one writer at a time; the controller applies
// frames sequentially).
func (r *remoteNode) flushEvents() {
	r.evMu.Lock()
	defer r.evMu.Unlock()
	r.flushLocked()
}

// flushLocked is flushEvents with evMu already held. A failed send keeps
// the journal intact: the connection is dead, and the next controller
// connection restarts the stream from the last ack. Only events a
// completed persist covers are sent (evDurable): an event the controller
// applies must already be on disk, or a SIGKILL before the next save
// would restore a sequence counter behind the controller's dedup cursor
// and fresh post-restart events would be swallowed as duplicates.
func (r *remoteNode) flushLocked() {
	top := r.evBase + int64(len(r.evLog))
	if top > r.evDurable {
		top = r.evDurable // the rest ships after endBurst persists it
	}
	if r.ctrl == nil || r.evSent >= top {
		return
	}
	env := wire.Envelope{
		Kind:   wire.KindEvents,
		Events: r.evLog[r.evSent-r.evBase : top-r.evBase],
		EvSeq:  top,
		Clock:  r.clock.Load(),
	}
	if err := r.ctrl.Send(&env); err != nil {
		fmt.Fprintf(os.Stderr, "bayou-node %d: event stream: %v\n", r.cfg.ID, err)
		return
	}
	r.evSent = top
}

// reply flushes pending events, then sends an RPC reply — the order that
// guarantees the controller has applied an invocation's completion before
// the invoke returns.
func (r *remoteNode) reply(conn *wire.Conn, env *wire.Envelope) {
	r.flushEvents()
	if err := conn.Send(env); err != nil {
		fmt.Fprintf(os.Stderr, "bayou-node %d: reply: %v\n", r.cfg.ID, err)
	}
}
