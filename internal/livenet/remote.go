package livenet

import (
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"

	"bayou/internal/core"
	"bayou/internal/wire"
)

// This file is the node-process half of the multi-process deployment: one
// replica automaton (the same type node the in-process Cluster runs)
// hosted behind a TCP listener, speaking internal/wire envelopes. Peers
// exchange the replica protocol; the controller process (client.go) drives
// invocations, inspections, and the fault plane over the same listener and
// receives the node's observation events as a stream.
//
// The fault semantics mirror the in-process fabric with one documented
// shift: the in-process network drops traffic toward a crashed replica at
// the sender, while the wire transport discards it at the receiver (the
// down node) — indistinguishable to the protocol, since both are repaired
// by the recovery resync. Partition parking is sender-side in both: each
// node holds cross-cell envelopes under the controller's broadcast fault
// view and releases them when a new view reconnects the cells, with
// release gated on the target being up, exactly like the in-process
// releasableLocked.

// NodeConfig parametrizes one hosted replica.
type NodeConfig struct {
	ID              int
	Variant         core.Variant
	CheckpointEvery int
	LeaderLease     bool
	// Addrs lists every replica's listen address, indexed by replica id;
	// len(Addrs) is the deployment size and Addrs[ID] is this node's
	// listen address.
	Addrs []string
}

// heldEnv is an envelope parked on a partition boundary.
type heldEnv struct {
	to  int
	env wire.Envelope
}

// remoteNode hosts one replica over the wire transport; it implements host.
type remoteNode struct {
	cfg   NodeConfig
	nd    *node
	links []*wire.Link

	// clock is the node's Lamport clock: local timestamps are minted by
	// incrementing it, and every received envelope's Clock stamp merges in
	// with mergeClock — so a timestamp minted after a message arrives
	// exceeds every timestamp the sender had seen. Cross-process request
	// order (which the checkers derive from timestamps) thereby respects
	// causality; the dot still breaks exact ties.
	clock atomic.Int64

	// Controller link: events buffer between bursts and flush before any
	// RPC reply so the controller applies them in emission order.
	evMu  sync.Mutex
	evBuf []wire.Event  // guarded by evMu
	ctrl  *wire.Conn    // guarded by evMu; current controller connection
	quit  chan struct{} // closed on shutdown RPC

	// Fault view, as last broadcast by the controller.
	partMu sync.Mutex
	cells  []int     // guarded by partMu
	down   []bool    // guarded by partMu
	held   []heldEnv // guarded by partMu
}

// ServeNode hosts one replica process: it listens on cfg.Addrs[cfg.ID],
// resyncs off its peers (the bootstrap handshake — a node joining a
// deployment with history catches up by checkpoint state transfer plus
// commit replay), and serves until a shutdown RPC arrives. It is the
// entire body of cmd/bayou-node.
func ServeNode(cfg NodeConfig) error {
	n := len(cfg.Addrs)
	if cfg.ID < 0 || cfg.ID >= n {
		return fmt.Errorf("livenet: node id %d outside %d addrs", cfg.ID, n)
	}
	variant := cfg.Variant
	if variant == core.VariantDefault {
		variant = core.NoCircularCausality
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.ID])
	if err != nil {
		return fmt.Errorf("livenet: node %d listen: %w", cfg.ID, err)
	}
	defer ln.Close()

	r := &remoteNode{
		cfg:   cfg,
		quit:  make(chan struct{}),
		cells: make([]int, n),
		down:  make([]bool, n),
	}
	for i := 0; i < n; i++ {
		var link *wire.Link
		if i != cfg.ID {
			link = wire.NewLink(cfg.Addrs[i], wire.Envelope{Kind: wire.KindHello, From: cfg.ID})
		}
		r.links = append(r.links, link)
	}
	r.nd = newNode(core.ReplicaID(cfg.ID), n, variant, r, func() int64 {
		return r.clock.Add(1)
	}, cfg.LeaderLease, cfg.CheckpointEvery)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.nd.run()
	}()

	// Bootstrap: ask every peer for retransmission. A fresh deployment
	// answers with nothing; a node joining late gets the tentative
	// suffixes, and from the sequencer a checkpoint image plus the commit
	// run past it.
	for peer := 0; peer < n; peer++ {
		if peer != cfg.ID {
			r.sendPeer(cfg.ID, peer, message{kind: msgResync, from: core.ReplicaID(cfg.ID), commitNo: 1})
		}
	}

	go func() {
		<-r.quit
		ln.Close() // unblocks Accept
	}()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-r.quit: // orderly shutdown
				close(r.nd.stop)
				wg.Wait()
				return nil
			default:
				return fmt.Errorf("livenet: node %d accept: %w", cfg.ID, err)
			}
		}
		go r.serveConn(wire.Wrap(c))
	}
}

// serveConn reads one inbound connection: a hello frame identifies the
// dialer (peer or controller), then frames flow for the connection's life.
func (r *remoteNode) serveConn(conn *wire.Conn) {
	defer conn.Close()
	var hello wire.Envelope
	if err := conn.Recv(&hello); err != nil || hello.Kind != wire.KindHello {
		return
	}
	if hello.From == wire.ControllerID {
		r.evMu.Lock()
		r.ctrl = conn
		r.evMu.Unlock()
		r.serveController(conn)
		return
	}
	r.servePeer(conn)
}

// servePeer translates peer envelopes into inbox messages.
func (r *remoteNode) servePeer(conn *wire.Conn) {
	for {
		var env wire.Envelope
		if err := conn.Recv(&env); err != nil {
			return // peer reconnects with a fresh link if it has more to say
		}
		r.mergeClock(env.Clock)
		var m message
		switch env.Kind {
		case wire.KindRBDeliver:
			m = message{kind: msgRBDeliver, reqs: env.Reqs}
		case wire.KindForward:
			m = message{kind: msgForward, reqs: env.Reqs}
		case wire.KindCommitBatch:
			m = message{kind: msgCommitBatch, commitNo: env.CommitNo, reqs: env.Reqs}
		case wire.KindStateXfer:
			m = message{kind: msgStateXfer, commitNo: env.CommitNo, ckpt: env.Ckpt}
		case wire.KindResync:
			m = message{kind: msgResync, from: core.ReplicaID(env.From), commitNo: env.CommitNo}
		default:
			continue
		}
		r.deliver(m)
	}
}

// deliver queues a message for the node goroutine.
func (r *remoteNode) deliver(m message) {
	select {
	case r.nd.inbox <- m:
	case <-r.nd.stop:
	}
}

// serveController handles the controller link: RPC frames answered with
// KindReply (the observation events emitted while serving flush first, on
// the same connection, so the controller applies them before the reply).
func (r *remoteNode) serveController(conn *wire.Conn) {
	for {
		var env wire.Envelope
		if err := conn.Recv(&env); err != nil {
			return
		}
		r.mergeClock(env.Clock)
		switch env.Kind {
		case wire.KindInvoke:
			go r.handleInvoke(conn, env)
		case wire.KindRead:
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				out.Value = n.replica.Read(env.Key)
			})
		case wire.KindCommitted:
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				out.Reqs = n.replica.Committed()
			})
		case wire.KindStats:
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				out.Stats = n.replica.Stats()
			})
		case wire.KindCompact:
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				out.Int = int64(n.replica.Compact())
			})
		case wire.KindCheckpoint:
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				truncated, err := n.checkpoint()
				out.Int = int64(truncated)
				if err != nil {
					out.Err = err.Error()
				}
			})
		case wire.KindBaseLen:
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				out.Int = int64(n.replica.BaseLen())
			})
		case wire.KindProbe:
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				out.Int = int64(n.replica.CommittedLen())
				out.Bool = n.replica.HasInternalWork()
			})
		case wire.KindCovered:
			read, write := env.Read, env.Write
			r.handleInspect(conn, env.Seq, func(n *node, out *wire.Envelope) {
				out.Bool = n.replica.CoversSession(read, write)
			})
		case wire.KindCrash, wire.KindRecover:
			go r.handleControl(conn, env)
		case wire.KindFaultView:
			r.applyFaultView(env.Cells, env.Down)
			r.reply(conn, &wire.Envelope{Kind: wire.KindReply, Seq: env.Seq})
		case wire.KindShutdown:
			r.reply(conn, &wire.Envelope{Kind: wire.KindReply, Seq: env.Seq})
			close(r.quit)
			return
		}
	}
}

// handleInvoke runs one invocation RPC: the envelope carries everything
// the in-process client would have computed against the recorder (frozen
// demand vectors, lease gate), and the node treats it exactly like an
// in-process invoke with a nil call pointer.
func (r *remoteNode) handleInvoke(conn *wire.Conn, env wire.Envelope) {
	m := message{
		kind:     msgInvoke,
		sess:     core.SessionID(env.Sess),
		op:       env.Op,
		strong:   env.Strong,
		gated:    env.Gated,
		failFast: env.FailFast,
		read:     env.Read,
		write:    env.Write,
		fence:    env.Fence,
		castOK:   env.CastOK,
		castCeil: env.CastCeil,
		reply:    make(chan invokeReply, 1),
	}
	r.deliver(m)
	out := wire.Envelope{Kind: wire.KindReply, Seq: env.Seq}
	select {
	case rep := <-m.reply:
		if rep.err != nil {
			out.Err = rep.err.Error()
		}
	case <-r.nd.stop:
		out.Err = ErrStopped.Error()
	}
	r.reply(conn, &out)
}

// handleControl runs a crash/recover RPC on the node goroutine.
func (r *remoteNode) handleControl(conn *wire.Conn, env wire.Envelope) {
	kind := msgCrash
	if env.Kind == wire.KindRecover {
		kind = msgRecover
	}
	m := message{kind: kind, reply: make(chan invokeReply, 1)}
	r.deliver(m)
	out := wire.Envelope{Kind: wire.KindReply, Seq: env.Seq}
	select {
	case rep := <-m.reply:
		if rep.err != nil {
			out.Err = rep.err.Error()
		}
	case <-r.nd.stop:
		out.Err = ErrStopped.Error()
	}
	r.reply(conn, &out)
}

// handleInspect runs fn on the node goroutine and replies with what it
// filled in.
func (r *remoteNode) handleInspect(conn *wire.Conn, seq uint64, fn func(*node, *wire.Envelope)) {
	out := &wire.Envelope{Kind: wire.KindReply, Seq: seq}
	done := make(chan struct{})
	r.deliver(message{kind: msgInspect, inspect: func(n *node) { fn(n, out) }, done: done})
	select {
	case <-done:
	case <-r.nd.stop:
		out.Err = ErrStopped.Error()
	}
	r.reply(conn, out)
}

// applyFaultView adopts a controller fault broadcast and releases parked
// envelopes the new view reconnects (targets still down stay parked, like
// the in-process fabric's releasableLocked).
func (r *remoteNode) applyFaultView(cells []int, down []bool) {
	r.partMu.Lock()
	if len(cells) == len(r.cells) {
		copy(r.cells, cells)
	}
	if len(down) == len(r.down) {
		copy(r.down, down)
	}
	var release []heldEnv
	keep := r.held[:0]
	for _, h := range r.held {
		if r.cells[r.cfg.ID] == r.cells[h.to] && !r.down[h.to] {
			release = append(release, h)
		} else {
			keep = append(keep, h)
		}
	}
	r.held = keep
	r.partMu.Unlock()
	for _, h := range release {
		if err := r.links[h.to].Send(&h.env); err != nil {
			fmt.Fprintf(os.Stderr, "bayou-node %d: release to %d: %v\n", r.cfg.ID, h.to, err)
		}
	}
}

// mergeClock raises the Lamport clock to at least ts.
func (r *remoteNode) mergeClock(ts int64) {
	for {
		cur := r.clock.Load()
		if ts <= cur || r.clock.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// sendPeer implements host over the per-peer links, parking cross-cell
// traffic under the current fault view.
func (r *remoteNode) sendPeer(from, to int, m message) {
	env := wire.Envelope{From: from, CommitNo: m.commitNo, Reqs: m.reqs, Ckpt: m.ckpt, Clock: r.clock.Load()}
	switch m.kind {
	case msgRBDeliver:
		env.Kind = wire.KindRBDeliver
	case msgForward:
		env.Kind = wire.KindForward
	case msgCommitBatch:
		env.Kind = wire.KindCommitBatch
	case msgStateXfer:
		env.Kind = wire.KindStateXfer
	case msgResync:
		env.Kind = wire.KindResync
		env.From = int(m.from)
	default:
		return
	}
	r.partMu.Lock()
	if r.cells[from] != r.cells[to] {
		r.held = append(r.held, heldEnv{to: to, env: env})
		r.partMu.Unlock()
		return
	}
	r.partMu.Unlock()
	if err := r.links[to].Send(&env); err != nil {
		// The peer is unreachable past the reconnect budget: the frame is
		// lost like a dropped datagram; the resync handshake repairs real
		// gaps when the peer returns.
		fmt.Fprintf(os.Stderr, "bayou-node %d: send to %d: %v\n", r.cfg.ID, to, err)
	}
}

// observe implements host: events buffer locally and flush as one frame
// per burst (or before any RPC reply).
func (r *remoteNode) observe(ev obsEvent) {
	r.evMu.Lock()
	r.evBuf = append(r.evBuf, wire.Event{
		EKind: int(ev.kind),
		Sess:  int64(ev.sess),
		Dot:   ev.dot,
		TS:    ev.ts,
		TOB:   ev.tob,
		No:    ev.no,
		Resp:  ev.resp,
		Trans: ev.trans,
	})
	r.evMu.Unlock()
}

// endBurst implements host: the burst's events ship as one frame.
func (r *remoteNode) endBurst() { r.flushEvents() }

// flushEvents sends the buffered events to the controller, preserving
// emission order (one writer at a time; the controller applies frames
// sequentially).
func (r *remoteNode) flushEvents() {
	r.evMu.Lock()
	defer r.evMu.Unlock()
	if len(r.evBuf) == 0 || r.ctrl == nil {
		return
	}
	env := wire.Envelope{Kind: wire.KindEvents, Events: r.evBuf, Clock: r.clock.Load()}
	if err := r.ctrl.Send(&env); err != nil {
		fmt.Fprintf(os.Stderr, "bayou-node %d: event stream: %v\n", r.cfg.ID, err)
	}
	r.evBuf = nil
}

// reply flushes pending events, then sends an RPC reply — the order that
// guarantees the controller has applied an invocation's completion before
// the invoke returns.
func (r *remoteNode) reply(conn *wire.Conn, env *wire.Envelope) {
	r.flushEvents()
	if err := conn.Send(env); err != nil {
		fmt.Fprintf(os.Stderr, "bayou-node %d: reply: %v\n", r.cfg.ID, err)
	}
}
