package livenet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bayou/internal/core"
	"bayou/internal/history"
	"bayou/internal/record"
	"bayou/internal/spec"
	"bayou/internal/wire"
)

// This file is the controller half of the multi-process deployment: the
// process that owns the shared recorder, the session registry, and the
// fault picture, with every replica reached over one internal/wire
// connection. It presents the same surface as the in-process Cluster
// (both satisfy Deployment), so the bayou façade drives either through
// one code path — the driver-conformance suites run the same scripts
// against goroutines-and-channels and against replicas that are separate
// OS processes, and must reach identical outcomes.

// Deployment is the live-substrate surface the façade driver consumes,
// satisfied by both the in-process Cluster and the multi-process Remote.
type Deployment interface {
	Replicas() int
	Recorder() *record.Recorder
	OpenSession(replica int) (core.SessionID, error)
	BindSession(sess core.SessionID, replica int) error
	SessionReplica(sess core.SessionID) (int, bool)
	Invoke(sess core.SessionID, op spec.Op, level core.Level) (*record.Call, error)
	InvokeSessionAt(sess core.SessionID, replica int, op spec.Op, level core.Level) (*record.Call, error)
	InvokeAt(replica int, op spec.Op, level core.Level) (*record.Call, error)
	SessionCovered(sess core.SessionID, replica int, timeout time.Duration) (bool, error)
	Read(replica int, key string, timeout time.Duration) (spec.Value, error)
	Committed(replica int, timeout time.Duration) ([]core.Req, error)
	Stats(timeout time.Duration) (map[core.ReplicaID]core.Stats, error)
	Compact(timeout time.Duration) (int, error)
	Checkpoint(timeout time.Duration) (int, error)
	BaseLen(replica int, timeout time.Duration) (int, error)
	Crash(replica int) error
	Recover(replica int) error
	Crashed(replica int) bool
	Partition(cells [][]int) error
	Heal() error
	Quiesce(timeout time.Duration) error
	MarkStable()
	History() (*history.History, error)
	Stop()
}

var (
	_ Deployment = (*Cluster)(nil)
	_ Deployment = (*Remote)(nil)
)

// rpcTimeout bounds one controller RPC round-trip when the caller supplied
// no tighter deadline.
const rpcTimeout = 30 * time.Second

// ctrlWriteTimeout bounds each controller frame write, so a frozen
// (SIGSTOP'd) node fails the send instead of wedging the caller.
const ctrlWriteTimeout = 5 * time.Second

// redialBudget is the per-attempt dial budget of the controller's
// reconnect loop — short, so the loop observes Stop promptly; the loop
// itself retries until the node returns or the controller stops.
const redialBudget = time.Second

// faultViewTimeout bounds each node's slice of a fault-view broadcast; an
// unresponsive node forfeits the push and catches up on reconnect.
const faultViewTimeout = 5 * time.Second

// streamLostMark tags the synthetic replies failPending fabricates when a
// node's stream breaks with RPCs in flight; rpcT retries idempotent
// requests that failed with it.
const streamLostMark = "stream lost"

// pendingRPC is one in-flight round-trip, tagged with its target node so a
// lost node stream fails exactly the RPCs waiting on that node.
type pendingRPC struct {
	node int
	ch   chan wire.Envelope
}

// Remote drives a deployment whose replicas are separate OS processes
// (cmd/bayou-node), one wire connection per node. Construct with
// NewRemote against already-listening node processes; always Stop it.
//
// Node connections are resilient: when a node's stream breaks (the process
// was SIGKILL'd, or a frame failed its checksum and the connection was torn
// down), the RPCs in flight to that node fail, and a background loop
// redials until the node — possibly a restarted process recovering from its
// data dir — accepts again, then re-sends the current fault view so the
// fresh process knows the partition picture.
type Remote struct {
	n       int
	lease   bool
	rec     *record.Recorder
	started time.Time
	addrs   []string
	seq     atomic.Uint64
	stopped atomic.Bool
	wg      sync.WaitGroup

	connMu sync.Mutex
	conns  []*wire.Conn // guarded by connMu; entry replaced on reconnect

	// evApplied[i] is the highest event sequence number applied from node
	// i's stream. Nodes journal events until acked: every outgoing RPC
	// carries the counter back (Envelope.AckEv), and a reconnecting — or
	// restarted — node resends its whole unacked journal, so events whose
	// first transmission died with a connection or a SIGKILL'd process
	// arrive on the next stream. Resent duplicates are skipped here by
	// sequence number. Written only by the node's readLoop goroutine; read
	// by any RPC sender.
	evApplied []atomic.Int64

	// maxTS is the largest completion timestamp observed across all nodes.
	// Every outgoing RPC carries it as the envelope Clock, and the node
	// merges it into its Lamport clock — so an invocation reaching node B
	// after this controller saw a completion from node A is timestamped
	// after it, preserving session (and controller-observed) order in the
	// cross-process request order the checkers reconstruct.
	maxTS atomic.Int64

	mu       sync.Mutex
	sessions map[core.SessionID]int          // guarded by mu
	nextSess core.SessionID                  // guarded by mu
	pendRPC  map[uint64]pendingRPC           // guarded by mu
	pendCall map[core.SessionID]*record.Call // guarded by mu

	partMu sync.Mutex
	cells  []int  // guarded by partMu
	down   []bool // guarded by partMu
}

// RemoteConfig parametrizes the controller side of a multi-process
// deployment. The per-node knobs (variant, checkpoint cadence, lease) are
// the node processes' own configuration; the controller only needs to
// know whether leases are on to mint the lease gate with invocations.
type RemoteConfig struct {
	// Addrs lists every node's listen address, indexed by replica id.
	Addrs []string
	// LeaderLease must match the node processes' -lease flag: it enables
	// the recorder's cast tracking that proves the lease-read serve gate.
	LeaderLease bool
	// ConnectBudget bounds how long NewRemote waits for each node process
	// to come up (zero: wire.DefaultConnectBudget).
	ConnectBudget time.Duration
}

// NewRemote connects the controller to every node process and starts the
// event-stream readers. The node processes must already be serving (or
// come up within the connect budget).
func NewRemote(cfg RemoteConfig) (*Remote, error) {
	n := len(cfg.Addrs)
	if n == 0 {
		return nil, errors.New("livenet: remote deployment needs at least one node address")
	}
	budget := cfg.ConnectBudget
	if budget == 0 {
		budget = wire.DefaultConnectBudget
	}
	r := &Remote{
		n:        n,
		lease:    cfg.LeaderLease,
		rec:      record.New(),
		started:  time.Now(),
		addrs:    append([]string(nil), cfg.Addrs...),
		sessions: make(map[core.SessionID]int, n),
		nextSess: core.SessionID(n),
		pendRPC:   make(map[uint64]pendingRPC),
		pendCall:  make(map[core.SessionID]*record.Call),
		cells:     make([]int, n),
		down:      make([]bool, n),
		evApplied: make([]atomic.Int64, n),
	}
	if cfg.LeaderLease {
		r.rec.EnableLeaseTracking()
	}
	for i := 0; i < n; i++ {
		r.sessions[core.SessionID(i)] = i
	}
	hello := wire.Envelope{Kind: wire.KindHello, From: wire.ControllerID}
	for i := 0; i < n; i++ {
		conn, err := wire.Dial(cfg.Addrs[i], hello, budget)
		if err != nil {
			for _, c := range r.conns {
				c.Close()
			}
			return nil, fmt.Errorf("livenet: node %d: %w", i, err)
		}
		conn.SetWriteTimeout(ctrlWriteTimeout)
		r.conns = append(r.conns, conn)
	}
	for i := 0; i < n; i++ {
		r.wg.Add(1)
		go func(i int) {
			defer r.wg.Done()
			r.readLoop(i)
		}(i)
	}
	return r, nil
}

// readLoop applies one node's frames in arrival order: observation events
// land on the recorder, replies resolve their waiting RPC. A node sends an
// invocation's events before its reply on the same connection, so by the
// time an invoke RPC returns the completion is recorded — the same
// ordering the in-process host gets from running observe synchronously.
//
// A stream failure — the node process died, its connection reset, or a
// frame arrived corrupt (wire.ErrCorrupt: the stream is no longer at a
// frame boundary and cannot be resumed) — fails this node's in-flight RPCs
// and enters the redial loop; the loop survives any number of node
// restarts and exits only on Stop.
func (r *Remote) readLoop(node int) {
	for {
		conn := r.conn(node)
		r.drainConn(node, conn)
		if r.stopped.Load() {
			return
		}
		conn.Close()
		r.failPending(node)
		hello := wire.Envelope{Kind: wire.KindHello, From: wire.ControllerID}
		for {
			if r.stopped.Load() {
				return
			}
			fresh, err := wire.Dial(r.addrs[node], hello, redialBudget)
			if err != nil {
				continue
			}
			fresh.SetWriteTimeout(ctrlWriteTimeout)
			if !r.setConn(node, fresh) {
				return
			}
			// A reconnected process (possibly freshly restarted) needs the
			// current fault picture; its reply drains through this loop.
			go r.sendFaultView(node)
			break
		}
	}
}

// drainConn applies frames from one connection until it fails.
func (r *Remote) drainConn(node int, conn *wire.Conn) {
	for {
		var env wire.Envelope
		if err := conn.Recv(&env); err != nil {
			return
		}
		switch env.Kind {
		case wire.KindEvents:
			// Events carry absolute sequence numbers (the frame's last is
			// EvSeq); a reconnected or restarted node resends its whole
			// unacked journal, so skip what this controller already
			// applied — replaying a stale completion against a session's
			// NEW pending call would complete it with the old call's dot.
			applied := r.evApplied[node].Load()
			first := env.EvSeq - int64(len(env.Events)) + 1
			for i, ev := range env.Events {
				if first+int64(i) <= applied {
					continue
				}
				r.applyEvent(ev)
			}
			if env.EvSeq > applied {
				r.evApplied[node].Store(env.EvSeq)
			}
		case wire.KindReply:
			r.mu.Lock()
			pend, ok := r.pendRPC[env.Seq]
			delete(r.pendRPC, env.Seq)
			r.mu.Unlock()
			if ok {
				pend.ch <- env
			}
		}
	}
}

// failPending resolves every RPC in flight to one node with an error: its
// stream is gone, so no reply is coming.
func (r *Remote) failPending(node int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for seq, pend := range r.pendRPC {
		if pend.node != node {
			continue
		}
		delete(r.pendRPC, seq)
		select {
		case pend.ch <- wire.Envelope{Kind: wire.KindReply, Seq: seq, Err: fmt.Sprintf("livenet: node %d %s", node, streamLostMark)}:
		default:
		}
	}
}

// conn returns the node's current connection.
func (r *Remote) conn(node int) *wire.Conn {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	return r.conns[node]
}

// setConn installs a fresh connection for a node. It refuses (closing the
// connection) once the controller has stopped, so a redial racing Stop
// cannot install a stream nobody will ever close.
func (r *Remote) setConn(node int, c *wire.Conn) bool {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	if r.stopped.Load() {
		c.Close()
		return false
	}
	r.conns[node] = c
	return true
}

// sendFaultView pushes the controller's current fault picture to one node.
func (r *Remote) sendFaultView(node int) {
	r.partMu.Lock()
	env := wire.Envelope{Kind: wire.KindFaultView, Cells: append([]int(nil), r.cells...), Down: append([]bool(nil), r.down...)}
	r.partMu.Unlock()
	if _, err := r.rpcT(node, &env, rpcTimeout); err != nil && !r.stopped.Load() {
		// Best effort: the node may have died again; the next reconnect
		// repeats the push.
		_ = err
	}
}

// applyEvent lands one remote observation on the recorder. The node ships
// events call-blind (the pending call lives here); sessions are sequential
// so the session id identifies the one pending call, and completion or
// cancellation retires it.
func (r *Remote) applyEvent(ev wire.Event) {
	oe := obsEvent{
		kind:  obsKind(ev.EKind),
		sess:  core.SessionID(ev.Sess),
		dot:   ev.Dot,
		ts:    ev.TS,
		tob:   ev.TOB,
		no:    ev.No,
		resp:  ev.Resp,
		trans: ev.Trans,
	}
	for {
		cur := r.maxTS.Load()
		if oe.ts <= cur || r.maxTS.CompareAndSwap(cur, oe.ts) {
			break
		}
	}
	switch oe.kind {
	case obsComplete, obsCancel:
		r.mu.Lock()
		oe.call = r.pendCall[oe.sess]
		delete(r.pendCall, oe.sess)
		r.mu.Unlock()
		if oe.call == nil {
			return // duplicate or raced with a local cancel
		}
	}
	applyObs(r.rec, oe, r.wall())
}

func (r *Remote) wall() int64 { return time.Since(r.started).Microseconds() }

// rpc runs one round-trip against a node under the default deadline.
func (r *Remote) rpc(node int, env *wire.Envelope) (wire.Envelope, error) {
	return r.rpcT(node, env, rpcTimeout)
}

// rpcT runs one round-trip against a node, bounded by the caller's
// deadline — a wedged node (SIGSTOP'd, or silently dropping frames)
// surfaces ErrTimeout to Inspect/Quiesce instead of hanging the controller.
// Within the deadline it rides out stream loss: a send that never left
// this process is always safe to retry on the redialed stream, and a
// request that did leave retries only when re-asking is harmless — Invoke
// plants an operation, every other kind is a read-only probe.
func (r *Remote) rpcT(node int, env *wire.Envelope, timeout time.Duration) (wire.Envelope, error) {
	if r.stopped.Load() {
		return wire.Envelope{}, ErrStopped
	}
	if timeout <= 0 {
		timeout = rpcTimeout
	}
	deadline := time.Now().Add(timeout)
	idempotent := env.Kind != wire.KindInvoke
	for {
		reply, sent, err := r.rpcOnce(node, env, deadline)
		if err == nil {
			return reply, nil
		}
		if r.stopped.Load() || time.Now().After(deadline) {
			return reply, err
		}
		if !sent || (idempotent && strings.Contains(err.Error(), streamLostMark)) {
			time.Sleep(25 * time.Millisecond)
			continue
		}
		return reply, err
	}
}

// rpcOnce is a single attempt: stamp a fresh sequence number, send, wait.
// sent reports whether the request left this process — a false return can
// never have reached the node.
func (r *Remote) rpcOnce(node int, env *wire.Envelope, deadline time.Time) (_ wire.Envelope, sent bool, _ error) {
	env.Seq = r.seq.Add(1)
	env.Clock = r.maxTS.Load()
	env.AckEv = r.evApplied[node].Load()
	ch := make(chan wire.Envelope, 1)
	r.mu.Lock()
	r.pendRPC[env.Seq] = pendingRPC{node: node, ch: ch}
	r.mu.Unlock()
	conn := r.conn(node)
	if err := conn.Send(env); err != nil {
		// A failed send may have left a partial frame on the stream; close
		// so the read loop tears down and redials rather than desyncing.
		conn.Close()
		r.mu.Lock()
		delete(r.pendRPC, env.Seq)
		r.mu.Unlock()
		return wire.Envelope{}, false, fmt.Errorf("livenet: rpc to node %d: %w", node, err)
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case reply := <-ch:
		if reply.Err != "" {
			return reply, true, remoteError(reply.Err)
		}
		return reply, true, nil
	case <-timer.C:
		r.mu.Lock()
		delete(r.pendRPC, env.Seq)
		r.mu.Unlock()
		return wire.Envelope{}, true, fmt.Errorf("livenet: rpc to node %d: %w", node, ErrTimeout)
	}
}

// Durability asks one node process how it came up: whether boot restored a
// local snapshot (and which generation), how many saves it has made since,
// and how many peer state transfers it accepted — the counters that verify
// a restarted node recovered from its own disk rather than by the grace of
// its peers.
func (r *Remote) Durability(replica int, timeout time.Duration) (wire.Durability, error) {
	if replica < 0 || replica >= r.n {
		return wire.Durability{}, fmt.Errorf("livenet: no replica %d", replica)
	}
	reply, err := r.rpcT(replica, &wire.Envelope{Kind: wire.KindDurability}, timeout)
	if err != nil {
		return wire.Durability{}, err
	}
	if reply.Durab == nil {
		return wire.Durability{}, errors.New("livenet: node sent no durability report")
	}
	return *reply.Durab, nil
}

// remoteError rehydrates the sentinel errors the façade and the tests
// branch on; everything else arrives as an opaque remote error.
func remoteError(s string) error {
	for _, sentinel := range []error{ErrReplicaDown, ErrStopped, ErrTimeout, record.ErrGuarantee, record.ErrSessionBusy} {
		if strings.Contains(s, sentinel.Error()) {
			return fmt.Errorf("%w (node: %s)", sentinel, s)
		}
	}
	return errors.New(s)
}

// Replicas returns the deployment size.
func (r *Remote) Replicas() int { return r.n }

// Recorder exposes the controller-owned observation layer.
func (r *Remote) Recorder() *record.Recorder { return r.rec }

// OpenSession mints a fresh sequential session bound to the given replica.
func (r *Remote) OpenSession(replica int) (core.SessionID, error) {
	if r.stopped.Load() {
		return 0, ErrStopped
	}
	if replica < 0 || replica >= r.n {
		return 0, fmt.Errorf("livenet: no replica %d", replica)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.nextSess
	r.nextSess++
	r.sessions[s] = replica
	return s, nil
}

// SessionReplica returns the replica a session is bound to.
func (r *Remote) SessionReplica(s core.SessionID) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.sessions[s]
	return id, ok
}

// BindSession re-binds a session to another replica (see Cluster.BindSession).
func (r *Remote) BindSession(sess core.SessionID, replica int) error {
	if r.stopped.Load() {
		return ErrStopped
	}
	if replica < 0 || replica >= r.n {
		return fmt.Errorf("livenet: no replica %d", replica)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[sess]; !ok {
		return fmt.Errorf("livenet: unknown session %d", sess)
	}
	if r.rec.SessionBusy(sess) {
		return fmt.Errorf("%w: session %d cannot re-bind", record.ErrSessionBusy, sess)
	}
	r.sessions[sess] = replica
	return nil
}

// Invoke submits on the session's bound replica (see Cluster.Invoke).
func (r *Remote) Invoke(sess core.SessionID, op spec.Op, level core.Level) (*record.Call, error) {
	if r.stopped.Load() {
		return nil, ErrStopped
	}
	r.mu.Lock()
	replica, ok := r.sessions[sess]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("livenet: unknown session %d", sess)
	}
	return r.invokeAt(sess, replica, op, level)
}

// InvokeSessionAt submits on an explicit target replica.
func (r *Remote) InvokeSessionAt(sess core.SessionID, replica int, op spec.Op, level core.Level) (*record.Call, error) {
	if r.stopped.Load() {
		return nil, ErrStopped
	}
	if replica < 0 || replica >= r.n {
		return nil, fmt.Errorf("livenet: no replica %d", replica)
	}
	r.mu.Lock()
	_, ok := r.sessions[sess]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("livenet: unknown session %d", sess)
	}
	return r.invokeAt(sess, replica, op, level)
}

// InvokeAt submits on the replica's default session.
func (r *Remote) InvokeAt(replica int, op spec.Op, level core.Level) (*record.Call, error) {
	if replica < 0 || replica >= r.n {
		return nil, fmt.Errorf("livenet: no replica %d", replica)
	}
	return r.Invoke(core.SessionID(replica), op, level)
}

// invokeAt mirrors the in-process client exactly: the pending call is
// minted here (atomically marking the session busy), the session's frozen
// demand vectors and lease gate travel inside the envelope, and the node's
// completion/cancellation event retires the pending entry before the RPC
// reply resolves.
func (r *Remote) invokeAt(sess core.SessionID, replica int, op spec.Op, level core.Level) (*record.Call, error) {
	g, mode := r.rec.Guarantees(sess)
	call, err := r.rec.PendingInvoke(sess, op, level, r.wall())
	if err != nil {
		return nil, err
	}
	env := wire.Envelope{
		Kind:   wire.KindInvoke,
		Sess:   int64(sess),
		Op:     op,
		Strong: level == core.Strong,
	}
	if g != 0 {
		env.Gated = true
		env.FailFast = mode == core.FailFast
		env.Read, env.Write, env.Fence = r.rec.FreezeDemands(call, !op.ReadOnly())
	}
	if r.lease && level == core.Strong && op.ReadOnly() {
		env.CastCeil, env.CastOK = r.rec.SessionCastCeiling(sess)
	}
	r.mu.Lock()
	r.pendCall[sess] = call
	r.mu.Unlock()
	if _, err := r.rpc(replica, &env); err != nil {
		// The node's cancel event may have raced us; local cancel is a
		// no-op if the call completed, and the pending entry must go
		// either way.
		r.mu.Lock()
		if r.pendCall[sess] == call {
			delete(r.pendCall, sess)
		}
		r.mu.Unlock()
		r.rec.CancelInvoke(call)
		return nil, err
	}
	return call, nil
}

// SessionCovered asks whether the replica's state dominates the session's
// full coverage demand (see Cluster.SessionCovered).
func (r *Remote) SessionCovered(sess core.SessionID, replica int, timeout time.Duration) (bool, error) {
	r.mu.Lock()
	_, ok := r.sessions[sess]
	r.mu.Unlock()
	if !ok {
		return false, fmt.Errorf("livenet: unknown session %d", sess)
	}
	if r.Crashed(replica) {
		return false, nil
	}
	read, write, _ := r.rec.Demands(sess, true)
	reply, err := r.rpcT(replica, &wire.Envelope{Kind: wire.KindCovered, Read: read, Write: write}, timeout)
	if err != nil {
		return false, err
	}
	return reply.Bool, nil
}

// Read fetches a register value from one replica process.
func (r *Remote) Read(replica int, key string, timeout time.Duration) (spec.Value, error) {
	if replica < 0 || replica >= r.n {
		return nil, fmt.Errorf("livenet: no replica %d", replica)
	}
	reply, err := r.rpcT(replica, &wire.Envelope{Kind: wire.KindRead, Key: key}, timeout)
	if err != nil {
		return nil, err
	}
	return reply.Value, nil
}

// Committed returns a snapshot of the replica's committed order.
func (r *Remote) Committed(replica int, timeout time.Duration) ([]core.Req, error) {
	if replica < 0 || replica >= r.n {
		return nil, fmt.Errorf("livenet: no replica %d", replica)
	}
	reply, err := r.rpcT(replica, &wire.Envelope{Kind: wire.KindCommitted}, timeout)
	if err != nil {
		return nil, err
	}
	return reply.Reqs, nil
}

// Stats aggregates replica cost counters.
func (r *Remote) Stats(timeout time.Duration) (map[core.ReplicaID]core.Stats, error) {
	out := make(map[core.ReplicaID]core.Stats, r.n)
	for i := 0; i < r.n; i++ {
		reply, err := r.rpcT(i, &wire.Envelope{Kind: wire.KindStats}, timeout)
		if err != nil {
			return nil, err
		}
		out[core.ReplicaID(i)] = reply.Stats
	}
	return out, nil
}

// Compact runs log compaction on every replica.
func (r *Remote) Compact(timeout time.Duration) (int, error) {
	total := 0
	for i := 0; i < r.n; i++ {
		reply, err := r.rpcT(i, &wire.Envelope{Kind: wire.KindCompact}, timeout)
		if err != nil {
			return total, err
		}
		total += int(reply.Int)
	}
	return total, nil
}

// Checkpoint checkpoints every live replica (crashed ones are skipped).
func (r *Remote) Checkpoint(timeout time.Duration) (int, error) {
	total := 0
	for i := 0; i < r.n; i++ {
		if r.Crashed(i) {
			continue
		}
		reply, err := r.rpcT(i, &wire.Envelope{Kind: wire.KindCheckpoint}, timeout)
		if err != nil {
			return total, err
		}
		total += int(reply.Int)
	}
	return total, nil
}

// BaseLen reports a replica's checkpointed-prefix length.
func (r *Remote) BaseLen(replica int, timeout time.Duration) (int, error) {
	reply, err := r.rpcT(replica, &wire.Envelope{Kind: wire.KindBaseLen}, timeout)
	if err != nil {
		return 0, err
	}
	return int(reply.Int), nil
}

// Crash crashes a replica process's automaton (the OS process stays up,
// discarding protocol traffic — the state loss is what a crash means
// here, exactly as in-process). The sequencer cannot crash.
func (r *Remote) Crash(replica int) error {
	if r.stopped.Load() {
		return ErrStopped
	}
	if replica < 0 || replica >= r.n {
		return fmt.Errorf("livenet: no replica %d", replica)
	}
	if replica == 0 {
		return errors.New("livenet: cannot crash the sequencer (replica 0)")
	}
	if _, err := r.rpc(replica, &wire.Envelope{Kind: wire.KindCrash}); err != nil {
		return err
	}
	r.partMu.Lock()
	r.down[replica] = true
	r.partMu.Unlock()
	return r.broadcastFaultView()
}

// Recover restores a crashed replica; the node resyncs off its peers once
// the RPC lands, and the fresh fault view releases traffic parked toward
// it on partition boundaries.
func (r *Remote) Recover(replica int) error {
	if r.stopped.Load() {
		return ErrStopped
	}
	if replica < 0 || replica >= r.n {
		return fmt.Errorf("livenet: no replica %d", replica)
	}
	if _, err := r.rpc(replica, &wire.Envelope{Kind: wire.KindRecover}); err != nil {
		return err
	}
	r.partMu.Lock()
	r.down[replica] = false
	r.partMu.Unlock()
	return r.broadcastFaultView()
}

// Crashed reports the controller's picture of a replica's fault state.
func (r *Remote) Crashed(replica int) bool {
	if replica < 0 || replica >= r.n {
		return false
	}
	r.partMu.Lock()
	defer r.partMu.Unlock()
	return r.down[replica]
}

// Partition splits the deployment into cells (see Cluster.Partition).
func (r *Remote) Partition(cells [][]int) error {
	if r.stopped.Load() {
		return ErrStopped
	}
	fresh := make([]int, r.n)
	for i := range fresh {
		fresh[i] = len(cells)
	}
	for i, cell := range cells {
		for _, id := range cell {
			if id < 0 || id >= r.n {
				return fmt.Errorf("livenet: no replica %d", id)
			}
			fresh[id] = i
		}
	}
	r.partMu.Lock()
	copy(r.cells, fresh)
	r.partMu.Unlock()
	return r.broadcastFaultView()
}

// Heal removes all partitions; the nodes release their parked traffic.
func (r *Remote) Heal() error {
	if r.stopped.Load() {
		return ErrStopped
	}
	r.partMu.Lock()
	for i := range r.cells {
		r.cells[i] = 0
	}
	r.partMu.Unlock()
	return r.broadcastFaultView()
}

// broadcastFaultView ships the current cells+down picture to every node
// (crashed nodes too: they need the view current when they recover). The
// push is best-effort per node: a node that is unreachable — SIGKILLed,
// frozen, mid-redial — gets the then-current view again when its stream
// reconnects (see readLoop), so a dead process cannot fail a partition of
// the live ones.
func (r *Remote) broadcastFaultView() error {
	r.partMu.Lock()
	cells := append([]int(nil), r.cells...)
	down := append([]bool(nil), r.down...)
	r.partMu.Unlock()
	for i := 0; i < r.n; i++ {
		env := wire.Envelope{Kind: wire.KindFaultView, Cells: cells, Down: down}
		if _, err := r.rpcT(i, &env, faultViewTimeout); err != nil && !r.stopped.Load() {
			_ = err // re-pushed on reconnect
		}
	}
	return nil
}

// Quiesce blocks until the deployment has settled (see Cluster.Quiesce).
// Convergence probes are RPC round-trips; between unsettled probes the
// controller backs off briefly — the node-side progress signal does not
// cross the wire, so this is the polled variant of the in-process
// event-driven wait, paced by real network round-trips.
func (r *Remote) Quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	for _, call := range r.rec.Calls() {
		if rep, ok := r.SessionReplica(call.Session()); ok && r.Crashed(rep) {
			continue
		}
		if err := call.WaitTerminal(ctx); err != nil {
			return fmt.Errorf("livenet: quiesce: call %s not terminal: %w", call.Dot(), err)
		}
	}
	expected := int64(r.rec.TOBCastCount())
	wait := time.Millisecond
	for {
		converged := true
		for i := 0; i < r.n; i++ {
			if r.Crashed(i) {
				continue
			}
			reply, err := r.rpc(i, &wire.Envelope{Kind: wire.KindProbe})
			if err != nil {
				return fmt.Errorf("livenet: quiesce: %w", err)
			}
			if reply.Int < expected || reply.Bool {
				converged = false
				break
			}
		}
		if converged {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("livenet: quiesce: %w", ErrTimeout)
		}
		time.Sleep(wait)
		if wait *= 2; wait > 50*time.Millisecond {
			wait = 50 * time.Millisecond
		}
	}
}

// MarkStable records the quiescence cutoff for the history checkers.
func (r *Remote) MarkStable() { r.rec.MarkStable() }

// History assembles the recorded history.
func (r *Remote) History() (*history.History, error) { return r.rec.History() }

// Stop shuts the node processes down (best effort) and closes the
// connections. The process launcher owns the OS processes; after Stop
// they exit on their own.
func (r *Remote) Stop() {
	if !r.stopped.CompareAndSwap(false, true) {
		return
	}
	r.connMu.Lock()
	for i := 0; i < r.n; i++ {
		env := wire.Envelope{Kind: wire.KindShutdown, Seq: r.seq.Add(1)}
		_ = r.conns[i].Send(&env) // best effort; the reply may race the close below
		r.conns[i].Close()
	}
	r.connMu.Unlock()
	r.wg.Wait()
}
