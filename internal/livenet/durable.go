package livenet

import (
	"fmt"
	"os"

	"bayou/internal/core"
	"bayou/internal/store"
	"bayou/internal/wire"
)

// This file is the stable storage of a node process (remote.go): what is
// written on the checkpoint/burst cadence, what a SIGKILL'd process finds
// on disk at the next boot, and how the boot image is spliced back into a
// running automaton. The in-process Cluster has no durability — its crash
// model keeps the "durable image" in memory (node.snap) — so everything
// here lives on the remote substrate only.
//
// The durable unit is NodeImage: the replica's core.Snapshot (the image the
// crash model already calls durable) plus the two pieces of livenet-level
// state that must survive with it — the sequencer's commit log (replica 0
// is the commit authority; losing its log would orphan every learner behind
// it) and the node's own not-yet-committed requests. The latter close the
// lost-update window: a request this node minted and acknowledged may exist
// nowhere else if the frames announcing it were still in flight (or
// dropped by the fault injector) when the process died, so it is persisted
// here and re-announced at boot — receivers dedup, so re-announcing what
// did arrive is harmless.

// NodeImage is one process's durable state, gob-encoded into a store
// generation.
type NodeImage struct {
	// Snap is the replica's durable image: committed prefix, checkpoint
	// base, dot counter, clock watermark, owed responses.
	Snap core.Snapshot

	// Sequencer state (meaningful on replica 0 only): the stamped commit
	// log past its checkpoint and the counters that index it. The stamp
	// filter is rebuilt from the log at boot.
	CommitNo  int64
	LogBase   int64
	CommitLog []core.Req

	// OwnTentative is this node's own still-tentative weak updates (they
	// re-enter the schedule and are re-broadcast at boot); Outbound is
	// every request forwarded to the sequencer and not yet seen committed —
	// under Algorithm 2 a pending strong request lives on no tentative list,
	// so without this record its body would not survive the process.
	OwnTentative []core.Req
	Outbound     []core.Req

	// EvBase/EvLog are the controller event journal: the observation
	// stream suffix the controller has not yet acknowledged applying.
	// The replica clears its own owed-response bookkeeping the moment a
	// notice is emitted, so a completion flushed into a TCP buffer that a
	// SIGKILL then destroys survives nowhere else; persisting the unacked
	// suffix lets the restarted process resend it (the controller dedups
	// by sequence number).
	EvBase int64
	EvLog  []wire.Event
}

// dotSkipMargin is added to the restored dot counter at boot. Persistence
// runs once per burst, so at most one burst's worth of mints (maxBurst) can
// have escaped to the network without reaching disk; skipping far past the
// persisted counter guarantees a recovered node never re-mints a dot some
// peer already holds.
const dotSkipMargin = 4 * maxBurst

// fingerprint summarizes the durable state cheaply; persistence is skipped
// while it is unchanged, so idle bursts (probes, reads, redundant
// deliveries) cost no fsync.
type fingerprint struct {
	eventNo     int64
	committed   int
	awaiting    int
	awaitStable int
	ownTent     int
	outbound    int
	commitNo    int64
	logBase     int64
	// evSeq is the cumulative event count (evBase + journal length): any
	// newly emitted event forces a save before the flush externalizes it.
	// Acks alone leave it unchanged — a skipped save then keeps already
	// acked events in the image, which a restart harmlessly resends.
	evSeq int64
}

// persist writes the node's durable image if it changed since the last
// save. Runs on the node goroutine only (endBurst, the pre-reply sync, and
// the post-shutdown final save after the goroutine has exited), so it reads
// node state without locks. Save failures are logged and retried next
// burst: losing durability degrades recovery to peer rescue, it does not
// stop the node.
func (r *remoteNode) persist(n *node) {
	if r.st == nil || n.down {
		return
	}
	snap := n.replica.Snapshot()
	var ownTent []core.Req
	for _, t := range n.replica.Tentative() {
		if t.Dot.Replica == n.id {
			ownTent = append(ownTent, t)
		}
	}
	r.evMu.Lock()
	evBase := r.evBase
	evLog := append([]wire.Event(nil), r.evLog...)
	r.evMu.Unlock()
	fp := fingerprint{
		eventNo:     snap.EventNo,
		committed:   snap.CommittedLen(),
		awaiting:    len(snap.Awaiting),
		awaitStable: len(snap.AwaitStable),
		ownTent:     len(ownTent),
		outbound:    len(r.outbound),
		commitNo:    n.commitNo,
		logBase:     n.logBase,
		evSeq:       evBase + int64(len(evLog)),
	}
	if fp == r.lastFP {
		return
	}
	img := NodeImage{
		Snap:         snap,
		CommitNo:     n.commitNo,
		LogBase:      n.logBase,
		CommitLog:    n.commitLog,
		OwnTentative: ownTent,
		EvBase:       evBase,
		EvLog:        evLog,
	}
	for _, req := range r.outbound {
		img.Outbound = append(img.Outbound, req)
	}
	// Twin save: the image lands in two consecutive generations before
	// anything gated on this persist externalizes. A crash mid-save is
	// already harmless (Save renames atomically, so a torn tmp never
	// becomes a generation); the twin covers the harsher fault of a
	// completed generation corrupting on disk afterwards — the fallback
	// rung of the recovery ladder then lands on an identical image, so a
	// single rotten file can never retract state the node acknowledged.
	for twin := 0; twin < 2; twin++ {
		if _, err := r.st.Save(img); err != nil {
			fmt.Fprintf(os.Stderr, "bayou-node %d: persist: %v\n", r.cfg.ID, err)
			return
		}
		r.saves.Add(1)
	}
	r.lastFP = fp
	// Both twins hold the journal through fp.evSeq, so those events may now
	// be flushed: even if the newest generation is later torn, the fallback
	// rung still restores a counter at or past everything the controller
	// has applied.
	r.evMu.Lock()
	if fp.evSeq > r.evDurable {
		r.evDurable = fp.evSeq
	}
	r.evMu.Unlock()
}

// syncPersist runs one persist on the node goroutine and waits for it —
// called before an RPC reply externalizes state, so anything the
// controller has been told is on disk first.
func (r *remoteNode) syncPersist() {
	if r.st == nil {
		return
	}
	done := make(chan struct{})
	r.deliver(message{kind: msgInspect, inspect: func(n *node) { r.persist(n) }, done: done})
	select {
	case <-done:
	case <-r.nd.stop:
	}
}

// loadImage opens the data dir and loads the newest intact generation.
// ok=false (nothing durable, or dir empty) means clean bootstrap: the node
// starts fresh and catches up from peers like any late joiner.
func loadImage(dir string, keep int) (*store.Store, NodeImage, int64, bool, error) {
	st, err := store.Open(dir, keep)
	if err != nil {
		return nil, NodeImage{}, 0, false, err
	}
	var img NodeImage
	gen, ok, err := st.Load(&img)
	if err != nil {
		return nil, NodeImage{}, 0, false, err
	}
	return st, img, gen, ok, nil
}

// bootRestore splices a loaded image into the (freshly built, not yet
// running) node. Runs before the node goroutine starts, so fields are
// written without synchronization. The dot counter skips a margin past the
// persisted value: mints that escaped to the network after the last save
// must never be re-minted for different operations.
func (n *node) bootRestore(img NodeImage) {
	img.Snap.EventNo += dotSkipMargin
	eff := n.takeEff()
	restored, err := core.RestoreReplica(img.Snap, n.clock, true, eff)
	if err != nil {
		panic(fmt.Sprintf("livenet: boot restore %d: %v", n.id, err))
	}
	n.replica = restored
	n.held = make(map[int64]core.Req)
	n.nextCommit = int64(img.Snap.CommittedLen()) + 1
	if n.id == 0 {
		n.commitNo = img.CommitNo
		n.logBase = img.LogBase
		n.commitLog = img.CommitLog
		for _, r := range n.commitLog {
			n.stamped[r.ID()] = true
		}
	}
	// Responses recomputed for owed sessions route to the event buffer and
	// reach the controller when it (re)connects; duplicates of responses it
	// already applied are dropped by the recorder.
	n.route(*eff)
	n.putEff(eff)
}

// reforwardOutbound re-drives this node's TOB casts that have not been
// seen committed — the mid-run counterpart of bootAnnounce's re-forward,
// run on the anti-entropy tick. A forward frame lost to wire corruption or
// a dead sequencer link would otherwise strand its strong request forever
// (nothing else retransmits it while this process stays up). The sequencer
// dedups, so re-forwarding one that did arrive costs a frame and nothing
// else. Runs on the node goroutine.
func (r *remoteNode) reforwardOutbound(n *node) {
	if n.down || len(r.outbound) == 0 {
		return
	}
	var stale []core.Req
	for id, rq := range r.outbound {
		if n.replica.KnownCommitted(rq.Dot) {
			delete(r.outbound, id)
			continue
		}
		stale = append(stale, rq)
	}
	if len(stale) == 0 {
		return
	}
	if n.id == 0 {
		n.stampBatch(stale)
	} else {
		n.h.sendPeer(int(n.id), 0, message{kind: msgForward, reqs: stale})
	}
}

// bootAnnounce is the network half of recovery, run as the node's first
// message once the goroutine is up: re-enter and re-broadcast the node's
// own surviving tentative updates, re-forward its uncommitted TOB casts to
// the sequencer, and ask every peer for retransmission from the restored
// commit cursor. Every receiver path dedups, so the parts of this that did
// survive in the network are re-announced harmlessly.
func (n *node) bootAnnounce(img NodeImage) {
	if len(img.OwnTentative) > 0 {
		eff := n.takeEff()
		if err := n.replica.RBDeliverBatch(img.OwnTentative, eff); err == nil {
			n.route(*eff)
		}
		n.putEff(eff)
		rs := append([]core.Req(nil), img.OwnTentative...)
		for peer := 0; peer < n.n; peer++ {
			if peer != int(n.id) {
				n.h.sendPeer(int(n.id), peer, message{kind: msgRBDeliver, reqs: rs})
			}
		}
	}
	var forward []core.Req
	for _, r := range img.OwnTentative {
		if !n.replica.KnownCommitted(r.Dot) {
			forward = append(forward, r)
		}
	}
	for _, r := range img.Outbound {
		if !n.replica.KnownCommitted(r.Dot) {
			forward = append(forward, r)
		}
	}
	if len(forward) > 0 {
		if n.id == 0 {
			n.stampBatch(forward)
		} else {
			n.h.sendPeer(int(n.id), 0, message{kind: msgForward, reqs: forward})
		}
	}
	for peer := 0; peer < n.n; peer++ {
		if peer != int(n.id) {
			n.h.sendPeer(int(n.id), peer, message{kind: msgResync, from: n.id, commitNo: n.nextCommit})
		}
	}
	n.settleLocal()
}
