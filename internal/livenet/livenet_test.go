package livenet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bayou/internal/core"
	"bayou/internal/spec"
)

const waitFor = 5 * time.Second

// eventually polls cond until it holds or the deadline expires.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(waitFor)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

func TestWeakInvokeResolvesImmediately(t *testing.T) {
	c := New(3, core.NoCircularCausality)
	defer c.Stop()
	f, err := c.Invoke(1, spec.Append("hello"), false)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := f.Wait(waitFor)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Equal(resp.Value, "hello") {
		t.Errorf("weak response = %v, want hello", resp.Value)
	}
	if resp.Committed {
		t.Error("weak response must be tentative")
	}
}

func TestStrongInvokeResolvesAfterCommit(t *testing.T) {
	c := New(3, core.NoCircularCausality)
	defer c.Stop()
	f, err := c.Invoke(2, spec.PutIfAbsent("lock", "me"), true)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := f.Wait(waitFor)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Value != true {
		t.Errorf("strong response = %v, want true", resp.Value)
	}
	if !resp.Committed {
		t.Error("strong response must be stable")
	}
}

func TestConvergenceUnderConcurrentClients(t *testing.T) {
	const (
		replicas = 4
		clients  = 8
		perEach  = 10
	)
	c := New(replicas, core.NoCircularCausality)
	defer c.Stop()

	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perEach; k++ {
				f, err := c.Invoke(cl%replicas, spec.Inc("ctr", 1), false)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := f.Wait(waitFor); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// All increments eventually commit everywhere: the counter converges
	// to clients*perEach on every replica.
	want := int64(clients * perEach)
	for i := 0; i < replicas; i++ {
		i := i
		eventually(t, fmt.Sprintf("replica %d counter = %d", i, want), func() bool {
			v, err := c.Read(i, "ctr", waitFor)
			if err != nil {
				return false
			}
			got, _ := v.(int64)
			return got == want
		})
	}
}

func TestMixedLevelsUnderConcurrency(t *testing.T) {
	c := New(3, core.NoCircularCausality)
	defer c.Stop()

	var wg sync.WaitGroup
	results := make([]any, 3)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := c.Invoke(i, spec.PutIfAbsent("leader", fmt.Sprintf("replica-%d", i)), true)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := f.Wait(waitFor)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = resp.Value
		}()
	}
	wg.Wait()

	// Exactly one strong putIfAbsent wins — the consensus-backed
	// semantics the paper motivates with.
	winners := 0
	for _, r := range results {
		if r == true {
			winners++
		}
	}
	if winners != 1 {
		t.Errorf("putIfAbsent winners = %d, want exactly 1 (results %v)", winners, results)
	}
}

func TestOriginalVariantConverges(t *testing.T) {
	c := New(3, core.Original)
	defer c.Stop()
	futures := make([]*Future, 0, 6)
	for k := 0; k < 6; k++ {
		f, err := c.Invoke(k%3, spec.Append(fmt.Sprintf("%d", k)), false)
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	for _, f := range futures {
		if _, err := f.Wait(waitFor); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "replicas share one list", func() bool {
		ref, err := c.Read(0, spec.DefaultListID, waitFor)
		if err != nil || ref == nil {
			return false
		}
		if len(ref.([]spec.Value)) != 6 {
			return false
		}
		for i := 1; i < 3; i++ {
			v, err := c.Read(i, spec.DefaultListID, waitFor)
			if err != nil || !spec.Equal(v, ref) {
				return false
			}
		}
		return true
	})
}

func TestStopIsIdempotentAndRejectsWork(t *testing.T) {
	c := New(2, core.NoCircularCausality)
	c.Stop()
	c.Stop()
	if _, err := c.Invoke(0, spec.Append("x"), false); err == nil {
		t.Error("invoke on stopped cluster must error")
	}
	if _, err := c.Read(0, "k", time.Millisecond); err == nil {
		t.Error("read on stopped cluster must error")
	}
}

func TestInvalidReplica(t *testing.T) {
	c := New(2, core.NoCircularCausality)
	defer c.Stop()
	if _, err := c.Invoke(9, spec.Append("x"), false); err == nil {
		t.Error("invalid replica must error")
	}
}
