package livenet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bayou/internal/check"
	"bayou/internal/core"
	"bayou/internal/record"
	"bayou/internal/spec"
)

const waitFor = 5 * time.Second

// eventually polls cond until it holds or the deadline expires.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(waitFor)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

func TestWeakInvokeResolvesImmediately(t *testing.T) {
	c := New(3, core.NoCircularCausality)
	defer c.Stop()
	call, err := c.InvokeAt(1, spec.Append("hello"), core.Weak)
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 2 weak operations are bounded wait-free: the call is done
	// by the time the invoke returns.
	if !call.Done() {
		t.Fatal("weak call must resolve within the invoke step")
	}
	resp := call.Response()
	if !spec.Equal(resp.Value, "hello") {
		t.Errorf("weak response = %v, want hello", resp.Value)
	}
	if resp.Committed {
		t.Error("weak response must be tentative")
	}
}

func TestStrongInvokeResolvesAfterCommit(t *testing.T) {
	c := New(3, core.NoCircularCausality)
	defer c.Stop()
	call, err := c.InvokeAt(2, spec.PutIfAbsent("lock", "me"), core.Strong)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), waitFor)
	defer cancel()
	if err := call.WaitDone(ctx); err != nil {
		t.Fatal(err)
	}
	resp := call.Response()
	if resp.Value != true {
		t.Errorf("strong response = %v, want true", resp.Value)
	}
	if !resp.Committed {
		t.Error("strong response must be stable")
	}
}

func TestConvergenceUnderConcurrentSessions(t *testing.T) {
	const (
		replicas = 4
		clients  = 8
		perEach  = 10
	)
	c := New(replicas, core.NoCircularCausality)
	defer c.Stop()

	// Several concurrent sessions share each replica — the multi-session
	// model the seed's one-call-per-replica façade could not express.
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		sess, err := c.OpenSession(cl % replicas)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), waitFor)
			defer cancel()
			for k := 0; k < perEach; k++ {
				call, err := c.Invoke(sess, spec.Inc("ctr", 1), core.Weak)
				if err != nil {
					t.Error(err)
					return
				}
				if err := call.WaitDone(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if err := c.Quiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	// All increments committed everywhere: the counter converges to
	// clients*perEach on every replica.
	want := int64(clients * perEach)
	for i := 0; i < replicas; i++ {
		v, err := c.Read(i, "ctr", waitFor)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := v.(int64); got != want {
			t.Errorf("replica %d counter = %v, want %d", i, v, want)
		}
	}
	// The recorded history is well-formed (per-session sequential) and
	// satisfies the paper's weak-level guarantee.
	c.MarkStable()
	h, err := c.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Events) != clients*perEach {
		t.Fatalf("history has %d events, want %d", len(h.Events), clients*perEach)
	}
	if rep := check.NewWitness(h).FEC(core.Weak); !rep.OK() {
		t.Errorf("FEC(weak) must hold on the live run:\n%s", rep)
	}
}

func TestSessionFIFOEnforced(t *testing.T) {
	c := New(2, core.NoCircularCausality)
	defer c.Stop()
	sess, err := c.OpenSession(0)
	if err != nil {
		t.Fatal(err)
	}
	// A strong call leaves the session busy until it commits; a second
	// invocation in that window must be rejected. To make the window
	// observable we race: issue the strong call, then immediately try a
	// weak one on the same session — either the strong one already
	// resolved (fine) or the weak one errors with ErrSessionBusy.
	strong, err := c.Invoke(sess, spec.Append("s"), core.Strong)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(sess, spec.Append("w"), core.Weak); err != nil {
		if !errors.Is(err, record.ErrSessionBusy) {
			t.Fatalf("want ErrSessionBusy, got %v", err)
		}
	} else if !strong.Done() {
		t.Error("second invoke accepted while the first still pends")
	}
}

func TestMixedLevelsUnderConcurrency(t *testing.T) {
	c := New(3, core.NoCircularCausality)
	defer c.Stop()

	var wg sync.WaitGroup
	results := make([]any, 3)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			call, err := c.InvokeAt(i, spec.PutIfAbsent("leader", fmt.Sprintf("replica-%d", i)), core.Strong)
			if err != nil {
				t.Error(err)
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), waitFor)
			defer cancel()
			if err := call.WaitDone(ctx); err != nil {
				t.Error(err)
				return
			}
			results[i] = call.Response().Value
		}()
	}
	wg.Wait()

	// Exactly one strong putIfAbsent wins — the consensus-backed
	// semantics the paper motivates with.
	winners := 0
	for _, r := range results {
		if r == true {
			winners++
		}
	}
	if winners != 1 {
		t.Errorf("putIfAbsent winners = %d, want exactly 1 (results %v)", winners, results)
	}
}

func TestOriginalVariantConverges(t *testing.T) {
	c := New(3, core.Original)
	defer c.Stop()
	calls := make([]*record.Call, 0, 6)
	for k := 0; k < 6; k++ {
		sess, err := c.OpenSession(k % 3)
		if err != nil {
			t.Fatal(err)
		}
		call, err := c.Invoke(sess, spec.Append(fmt.Sprintf("%d", k)), core.Weak)
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call)
	}
	ctx, cancel := context.WithTimeout(context.Background(), waitFor)
	defer cancel()
	for _, call := range calls {
		if err := call.WaitDone(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	ref, err := c.Read(0, spec.DefaultListID, waitFor)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.([]spec.Value)) != 6 {
		t.Fatalf("list = %v, want 6 entries", ref)
	}
	for i := 1; i < 3; i++ {
		v, err := c.Read(i, spec.DefaultListID, waitFor)
		if err != nil || !spec.Equal(v, ref) {
			t.Errorf("replica %d diverges: %v vs %v (%v)", i, v, ref, err)
		}
	}
}

// TestStableNoticeAndWatchOnLiveRun: a weak update's watch stream delivers
// tentative first and committed last, over real concurrency.
func TestStableNoticeAndWatchOnLiveRun(t *testing.T) {
	c := New(3, core.NoCircularCausality)
	defer c.Stop()
	call, err := c.InvokeAt(1, spec.Append("n"), core.Weak)
	if err != nil {
		t.Fatal(err)
	}
	updates := call.Updates()
	if err := c.Quiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	var got []record.Update
	for u := range updates {
		got = append(got, u)
	}
	if len(got) < 2 {
		t.Fatalf("watch stream = %+v, want at least tentative and committed", got)
	}
	if got[0].Status != core.StatusTentative {
		t.Errorf("first update %v, want tentative", got[0].Status)
	}
	if last := got[len(got)-1]; last.Status != core.StatusCommitted {
		t.Errorf("last update %v, want committed", last.Status)
	}
	stable, ok := call.Stable()
	if !ok {
		t.Fatal("weak update must stabilize after quiesce")
	}
	if !spec.Equal(stable.Value, got[len(got)-1].Value) {
		t.Errorf("stable value %v != final update value %v", stable.Value, got[len(got)-1].Value)
	}
}

func TestStopIsIdempotentAndRejectsWork(t *testing.T) {
	c := New(2, core.NoCircularCausality)
	c.Stop()
	c.Stop()
	if _, err := c.InvokeAt(0, spec.Append("x"), core.Weak); err == nil {
		t.Error("invoke on stopped cluster must error")
	}
	if _, err := c.Read(0, "k", time.Millisecond); err == nil {
		t.Error("read on stopped cluster must error")
	}
	if _, err := c.OpenSession(0); err == nil {
		t.Error("open session on stopped cluster must error")
	}
}

func TestInvalidReplicaAndSession(t *testing.T) {
	c := New(2, core.NoCircularCausality)
	defer c.Stop()
	if _, err := c.InvokeAt(9, spec.Append("x"), core.Weak); err == nil {
		t.Error("invalid replica must error")
	}
	if _, err := c.OpenSession(9); err == nil {
		t.Error("invalid replica must error on OpenSession")
	}
	if _, err := c.Invoke(core.SessionID(99), spec.Append("x"), core.Weak); err == nil {
		t.Error("unknown session must error")
	}
}
