package livenet

import (
	"errors"
	"testing"

	"bayou/internal/core"
	"bayou/internal/spec"
)

// TestCrashRecoverCatchesUpLive crashes a replica under real concurrency,
// keeps the rest of the deployment working, recovers it, and demands full
// convergence through the resync handshake (peer retransmission + sequencer
// commit-log replay).
func TestCrashRecoverCatchesUpLive(t *testing.T) {
	c := New(3, core.NoCircularCausality)
	defer c.Stop()

	if _, err := c.InvokeAt(2, spec.Append("pre"), core.Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(waitFor); err != nil {
		t.Fatal(err)
	}

	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(2); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("double crash: err = %v, want ErrReplicaDown", err)
	}
	if _, err := c.InvokeAt(2, spec.Append("x"), core.Weak); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("invoke on crashed replica: err = %v, want ErrReplicaDown", err)
	}
	if err := c.Crash(0); err == nil {
		t.Fatal("crashing the sequencer must be rejected")
	}

	// The deployment keeps going without replica 2.
	if _, err := c.InvokeAt(0, spec.Append("while-down"), core.Weak); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InvokeAt(1, spec.Inc("ctr", 7), core.Weak); err != nil {
		t.Fatal(err)
	}
	strong, err := c.InvokeAt(0, spec.Duplicate(), core.Strong)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	if !strong.Done() {
		t.Fatal("strong op must commit while a non-sequencer replica is down")
	}

	if err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	ref, err := c.Committed(0, waitFor)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Committed(2, waitFor)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) || len(ref) != 4 {
		t.Fatalf("recovered replica committed %d ops, sequencer %d, want 4", len(got), len(ref))
	}
	for i := range ref {
		if got[i].Dot != ref[i].Dot {
			t.Fatalf("committed order diverges at %d: %s vs %s", i, got[i].Dot, ref[i].Dot)
		}
	}
	if v, err := c.Read(2, "ctr", waitFor); err != nil || !spec.Equal(v, int64(7)) {
		t.Errorf("recovered ctr = %v (err %v), want 7", v, err)
	}
	// And it serves clients again.
	if _, err := c.InvokeAt(2, spec.Append("post"), core.Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(waitFor); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionHealLive parks cross-cell traffic and releases it on heal:
// weak operations stay available inside the minority cell, strong
// operations from it stall until the partition heals.
func TestPartitionHealLive(t *testing.T) {
	c := New(3, core.NoCircularCausality)
	defer c.Stop()

	if err := c.Partition([][]int{{0, 1}, {2}}); err != nil {
		t.Fatal(err)
	}
	weak, err := c.InvokeAt(2, spec.Append("minority"), core.Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !weak.Done() {
		t.Fatal("weak ops must stay available inside a minority cell")
	}
	strong, err := c.InvokeAt(2, spec.PutIfAbsent("k", "v"), core.Strong)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic stall check — no sleep: an inspect round-trip through
	// replica 2 proves it processed the invoke (each node's inbox is FIFO,
	// and the inspect was enqueued after it), so the forward to the
	// sequencer has been sent — and parked at the partition. A second
	// round-trip through the sequencer then proves it drained everything it
	// will ever receive while the partition holds. If the forward had
	// crossed, the completion would have been observed before that second
	// reply, so Done() here is a real verdict, not a timing accident.
	if _, err := c.Read(2, "k", waitFor); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(0, "k", waitFor); err != nil {
		t.Fatal(err)
	}
	if strong.Done() {
		t.Fatal("strong op crossed a partition to the sequencer")
	}
	if err := c.Heal(); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	if !strong.Done() {
		t.Fatal("strong op must complete after heal")
	}
	ref, err := c.Committed(0, waitFor)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != 2 {
		t.Fatalf("committed %d ops, want 2 (weak update + strong put)", len(ref))
	}
}

// TestParkedMessagesSurviveCrashLive pins the simnet-matching semantics on
// the live substrate: a message parked on a partition survives a
// crash–recover of its target (the link keeps retransmitting) and is
// delivered once both the partition and the crash are gone — while traffic
// sent on an open link to a crashed replica is dropped for good.
func TestParkedMessagesSurviveCrashLive(t *testing.T) {
	c := New(3, core.NoCircularCausality)
	defer c.Stop()

	// Park an update for replica 2, then crash 2 and heal: the parked
	// message must wait for the recovery, not vanish.
	if err := c.Partition([][]int{{0, 1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InvokeAt(0, spec.Inc("ctr", 5), core.Weak); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(waitFor); err != nil {
		t.Fatal(err) // majority side settles; the crashed replica is exempt
	}
	if err := c.Heal(); err != nil {
		t.Fatal(err)
	}
	if err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Read(2, "ctr", waitFor); err != nil || !spec.Equal(v, int64(5)) {
		t.Errorf("recovered ctr = %v (err %v), want 5 — parked update lost", v, err)
	}
}

// TestCrashWithPendingContinuationLive: a strong call pending at a crashed
// replica survives in the durable continuation table and completes after
// recovery, once the sequencer's commit log replays.
func TestCrashWithPendingContinuationLive(t *testing.T) {
	c := New(3, core.NoCircularCausality)
	defer c.Stop()

	// Isolate replica 2's commits so the strong call is still pending when
	// the crash hits (the forward reaches the sequencer, the commit
	// broadcast parks on the partition).
	if err := c.Partition([][]int{{0, 1}, {2}}); err != nil {
		t.Fatal(err)
	}
	strong, err := c.InvokeAt(2, spec.Inc("ctr", 3), core.Strong)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Heal(); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(waitFor); err != nil {
		t.Fatal(err) // replica 2 and its calls are exempt while crashed
	}
	if strong.Done() {
		t.Fatal("strong response reached a crashed replica's client")
	}
	if err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	if !strong.Done() {
		t.Fatal("surviving continuation not answered after recovery")
	}
	if resp := strong.Response(); !resp.Committed || !spec.Equal(resp.Value, int64(3)) {
		t.Errorf("recovered strong response = %+v, want committed 3", resp)
	}
}
