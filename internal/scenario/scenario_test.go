package scenario

import (
	"testing"

	"bayou/internal/check"
	"bayou/internal/core"
	"bayou/internal/spec"
)

func TestFigure1ExactValues(t *testing.T) {
	out, err := Figure1(core.Original)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name      string
		value     spec.Value
		committed bool
	}{
		{"append(a)", "a", false},
		{"append(x)", "aax", false},
		{"duplicate()", "axax", true},
	}
	for _, c := range cases {
		call := out.Calls[c.name]
		if call == nil || !call.Done() {
			t.Fatalf("%s missing or incomplete", c.name)
		}
		if !spec.Equal(call.Response().Value, c.value) {
			t.Errorf("%s = %v, want %v", c.name, call.Response().Value, c.value)
		}
		if call.Response().Committed != c.committed {
			t.Errorf("%s committed = %v, want %v", c.name, call.Response().Committed, c.committed)
		}
	}
	// Both replicas converge to axax.
	for r := 0; r < 2; r++ {
		if got := out.Cluster.Replica(core.ReplicaID(r)).Read(spec.DefaultListID); !spec.Equal(got, []spec.Value{"a", "x", "a", "x"}) {
			t.Errorf("replica %d final list = %v", r, got)
		}
	}

	// The parenthesized values of the figure: the stable notifications.
	stables := []struct {
		name string
		want spec.Value
	}{
		{"append(a)", "a"},
		{"append(x)", "ax"},
	}
	for _, s := range stables {
		call := out.Calls[s.name]
		stable, has := call.Stable()
		if !has {
			t.Errorf("%s never received its stable notice", s.name)
			continue
		}
		if !spec.Equal(stable.Value, s.want) {
			t.Errorf("%s stable value = %v, want %v", s.name, stable.Value, s.want)
		}
		if call.WallStable() < call.WallReturn() {
			t.Errorf("%s stable notice before tentative response", s.name)
		}
	}
}

func TestFigure1TemporaryReorderingWitnessed(t *testing.T) {
	out, err := Figure1(core.Original)
	if err != nil {
		t.Fatal(err)
	}
	// The client at R1 observed duplicate() before append(x); the final
	// order has append(x) first — the two perceived orders disagree.
	x := out.Calls["append(x)"].Response()
	dup := out.Calls["duplicate()"].Response()
	dupDot := out.Calls["duplicate()"].Dot()
	xDot := out.Calls["append(x)"].Dot()
	if !containsDot(x.Trace, dupDot) {
		t.Error("append(x) must have perceived duplicate() before itself")
	}
	if !containsDot(dup.Trace, xDot) {
		t.Error("duplicate() must have perceived append(x) before itself")
	}
	// The fluctuating return-value and convergence predicates hold even
	// under Algorithm 1, as does Seq(strong); NCC is violated — §2.2's
	// circular causality, which only the modified protocol eliminates.
	w := check.NewWitness(out.History)
	for _, res := range []check.Result{w.EV(), w.FRVal(core.Weak), w.CPar(core.Weak)} {
		if !res.Holds {
			t.Errorf("Figure 1 (Algorithm 1): %s", res)
		}
	}
	if rep := w.Seq(core.Strong); !rep.OK() {
		t.Errorf("Seq(strong) must hold on Figure 1:\n%s", rep)
	}
	if res := w.NCC(); res.Holds {
		t.Error("NCC must be violated on Figure 1 under Algorithm 1")
	}

	// Under Algorithm 2 the same schedule yields the stable values
	// directly and satisfies full FEC(weak) including NCC (Theorem 2).
	mod, err := Figure1(core.NoCircularCausality)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Equal(mod.Calls["append(x)"].Response().Value, "ax") {
		t.Errorf("modified append(x) = %v, want ax", mod.Calls["append(x)"].Response().Value)
	}
	wm := check.NewWitness(mod.History)
	if rep := wm.FEC(core.Weak); !rep.OK() {
		t.Errorf("FEC(weak) must hold on Figure 1 under Algorithm 2:\n%s", rep)
	}
	if rep := wm.Seq(core.Strong); !rep.OK() {
		t.Errorf("Seq(strong) must hold on Figure 1 under Algorithm 2:\n%s", rep)
	}
}

func TestFigure2CircularCausalityAndItsElimination(t *testing.T) {
	orig, err := Figure2(core.Original)
	if err != nil {
		t.Fatal(err)
	}
	x := orig.Calls["append(x)"]
	y := orig.Calls["append(y)"]
	if !spec.Equal(x.Response().Value, "ayx") {
		t.Errorf("append(x) = %v, want ayx", x.Response().Value)
	}
	if !spec.Equal(y.Response().Value, "axy") {
		t.Errorf("append(y) = %v, want axy", y.Response().Value)
	}
	if res := check.NewWitness(orig.History).NCC(); res.Holds {
		t.Error("Algorithm 1 must exhibit circular causality on Figure 2")
	}

	mod, err := Figure2(core.NoCircularCausality)
	if err != nil {
		t.Fatal(err)
	}
	if res := check.NewWitness(mod.History).NCC(); !res.Holds {
		t.Errorf("Algorithm 2 must avoid circular causality: %s", res)
	}
	// Under Algorithm 2 the weak appends answer immediately from local
	// state: y sees only a, x sees only a.
	if !spec.Equal(mod.Calls["append(y)"].Response().Value, "ay") {
		t.Errorf("modified append(y) = %v, want ay", mod.Calls["append(y)"].Response().Value)
	}
	if !spec.Equal(mod.Calls["append(x)"].Response().Value, "ax") {
		t.Errorf("modified append(x) = %v, want ax", mod.Calls["append(x)"].Response().Value)
	}
}

func TestTheorem1RunIsUnsatisfiable(t *testing.T) {
	out, err := Theorem1()
	if err != nil {
		t.Fatal(err)
	}
	// The construction's observable values.
	want := map[string]spec.Value{"a": "p", "b": "q", "r": "pq", "c": "qz"}
	for name, v := range want {
		call := out.Calls[name]
		if call == nil || !call.Done() {
			t.Fatalf("call %s missing or incomplete", name)
		}
		if !spec.Equal(call.Response().Value, v) {
			t.Fatalf("call %s = %v, want %v", name, call.Response().Value, v)
		}
	}
	// The strong c must have answered without knowing a.
	if containsDot(out.Calls["c"].Response().Trace, out.Calls["a"].Dot()) {
		t.Fatal("construction broken: c observed a")
	}
	// The observable history (exactly the four constructed events) admits
	// no BEC(weak)∧Seq(strong) execution.
	if len(out.History.Events) != 4 {
		t.Fatalf("history has %d events, want 4", len(out.History.Events))
	}
	res, err := check.Search(out.History, check.BECWeakSeqStrong())
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Fatalf("Theorem 1 run must be unsatisfiable, got %s", res)
	}
	// Yet the protocol is FEC(weak)-correct on the same run.
	w := check.NewWitness(out.History)
	if rep := w.FEC(core.Weak); !rep.OK() {
		t.Errorf("FEC(weak) must hold on the Theorem 1 run:\n%s", rep)
	}
}

func TestStableRunTheorem2AcrossSeeds(t *testing.T) {
	for _, variant := range []core.Variant{core.NoCircularCausality} {
		for seed := int64(1); seed <= 5; seed++ {
			out, err := StableRun(seed, 3, 6, variant)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			w := check.NewWitness(out.History)
			if res := w.ArTotal(); !res.Holds {
				t.Errorf("seed %d: %s", seed, res)
			}
			for _, rep := range []check.Report{w.FEC(core.Weak), w.FEC(core.Strong), w.Seq(core.Strong)} {
				if !rep.OK() {
					t.Errorf("seed %d violates Theorem 2:\n%s", seed, rep)
				}
			}
		}
	}
}

func TestAsyncRunTheorem3AcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		out, err := AsyncRun(seed, 3, 6)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		w := check.NewWitness(out.History)
		if rep := w.FEC(core.Weak); !rep.OK() {
			t.Errorf("seed %d violates FEC(weak):\n%s", seed, rep)
		}
		if rep := w.SeqPendingAware(core.Strong); rep.OK() {
			t.Errorf("seed %d: Seq(strong) must be unachieved in an asynchronous run", seed)
		}
	}
}

func containsDot(ds []core.Dot, d core.Dot) bool {
	for _, x := range ds {
		if x == d {
			return true
		}
	}
	return false
}

// TestSessionGuaranteesOnStableRuns documents the implementation's session
// strength: monotonic writes hold (FIFO dissemination), and writes-follow-
// reads holds too — our reliable broadcast relays eagerly over FIFO links,
// which yields causal delivery on these topologies. (Read-your-writes is
// the guarantee Algorithm 2 gives up; see the cluster tests.)
func TestSessionGuaranteesOnStableRuns(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		out, err := StableRun(seed, 3, 6, core.NoCircularCausality)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		w := check.NewWitness(out.History)
		if res := w.MonotonicWrites(); !res.Holds {
			t.Errorf("seed %d: %s", seed, res)
		}
		if res := w.WritesFollowReads(); !res.Holds {
			t.Errorf("seed %d: %s", seed, res)
		}
	}
}
