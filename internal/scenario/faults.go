// Fault scenarios scripted through the public façade (package bayou) rather
// than the internal cluster driver: the same scripts run on the simulator
// and — crashes of non-sequencer replicas, partitions, heals — on the live
// substrate, which is exactly what makes the checker verdicts comparable
// across substrates under adversarial schedules.
package scenario

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bayou"
	"bayou/internal/history"
)

// SessionOutcome bundles a façade-driven scenario run. The caller owns the
// cluster and must Close it.
type SessionOutcome struct {
	Cluster *bayou.Cluster
	History *history.History
	Calls   map[string]*bayou.Call
}

// waitCtx bounds the scripted strong-operation waits.
func waitCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 30*time.Second)
}

// CrashRecoverRun scripts the fault plane end to end through the public
// API: a replica crashes mid-run losing its volatile state, the surviving
// majority keeps serving weak and strong operations, the crashed replica
// recovers from its durable snapshot and catches up (RB retransmission +
// TOB learner replay), and the whole deployment reconverges. With
// live=false it runs on the deterministic simulator (seed applies); with
// live=true on the goroutine-per-replica substrate (seed ignored).
func CrashRecoverRun(seed int64, live bool) (*SessionOutcome, error) {
	var c *bayou.Cluster
	var err error
	if live {
		c, err = bayou.NewLive(bayou.WithReplicas(3))
	} else {
		c, err = bayou.New(bayou.WithReplicas(3), bayou.WithSeed(seed))
	}
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()
	if err := c.ElectLeader(0); err != nil {
		return nil, err
	}
	ctx, cancel := waitCtx()
	defer cancel()
	calls := make(map[string]*bayou.Call)

	s0, err := c.Session(0)
	if err != nil {
		return nil, err
	}
	s1, err := c.Session(1)
	if err != nil {
		return nil, err
	}
	s2, err := c.Session(2)
	if err != nil {
		return nil, err
	}

	// Phase 1: the victim serves a weak update; everyone converges.
	if calls["pre"], err = s2.Invoke(bayou.Append("pre"), bayou.Weak); err != nil {
		return nil, err
	}
	if err := c.Settle(); err != nil {
		return nil, err
	}

	// Phase 2: crash the victim; the majority keeps working at both
	// levels. Sessions bound to the crashed replica are rejected.
	if err := c.Crash(2); err != nil {
		return nil, err
	}
	if _, err := s2.Invoke(bayou.Append("rejected"), bayou.Weak); err == nil {
		return nil, errors.New("scenario: invocation on a crashed replica succeeded")
	}
	if calls["during-weak"], err = s0.Invoke(bayou.Append("during"), bayou.Weak); err != nil {
		return nil, err
	}
	if calls["during-strong"], err = s1.Invoke(bayou.Inc("ctr", 1), bayou.Strong); err != nil {
		return nil, err
	}
	if _, err := s1.Wait(ctx); err != nil {
		return nil, fmt.Errorf("scenario: strong op with a majority alive: %w", err)
	}
	if err := c.Settle(); err != nil {
		return nil, err
	}

	// Phase 3: recover; the replica restores its committed prefix and
	// refetches everything it missed, then serves clients again.
	if err := c.Recover(2); err != nil {
		return nil, err
	}
	if err := c.Settle(); err != nil {
		return nil, err
	}
	if calls["post"], err = s2.Invoke(bayou.Append("post"), bayou.Weak); err != nil {
		return nil, fmt.Errorf("scenario: recovered replica rejects sessions: %w", err)
	}
	if err := c.Settle(); err != nil {
		return nil, err
	}

	// Post-quiescence probes for the checkers' "eventually" predicates.
	c.MarkStable()
	for r := 0; r < 3; r++ {
		probe, err := c.Session(r)
		if err != nil {
			return nil, err
		}
		if _, err := probe.Invoke(bayou.ListRead(), bayou.Weak); err != nil {
			return nil, err
		}
	}
	if err := c.Settle(); err != nil {
		return nil, err
	}
	h, err := c.History()
	if err != nil {
		return nil, err
	}
	ok = true
	return &SessionOutcome{Cluster: c, History: h, Calls: calls}, nil
}

// GuaranteeFailoverRun scripts the mobile-session failover through the
// public API: a session carrying ReadYourWrites|MonotonicReads writes at a
// replica, that replica crashes, the session re-binds to a survivor — its
// coverage vectors travel with it, so the survivor must prove it holds the
// session's writes before serving the read — and after recovery the session
// migrates home and reads everything again. The returned history carries
// the guarantee witnesses for CheckGuarantees. Works on both substrates
// (live=true ignores the seed; the victim is replica 2, since the live
// sequencer cannot crash).
func GuaranteeFailoverRun(seed int64, live bool) (*SessionOutcome, error) {
	var c *bayou.Cluster
	var err error
	if live {
		c, err = bayou.NewLive(bayou.WithReplicas(3))
	} else {
		c, err = bayou.New(bayou.WithReplicas(3), bayou.WithSeed(seed))
	}
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()
	if err := c.ElectLeader(0); err != nil {
		return nil, err
	}
	ctx, cancel := waitCtx()
	defer cancel()
	calls := make(map[string]*bayou.Call)

	s, err := c.Session(2, bayou.WithGuarantees(bayou.ReadYourWrites|bayou.MonotonicReads))
	if err != nil {
		return nil, err
	}
	if calls["write"], err = s.Invoke(bayou.SetAdd("cart", "milk"), bayou.Weak); err != nil {
		return nil, err
	}
	if _, err := s.Wait(ctx); err != nil {
		return nil, err
	}
	if err := c.Settle(); err != nil {
		return nil, err
	}

	if err := c.Crash(2); err != nil {
		return nil, err
	}
	if err := s.Bind(0); err != nil {
		return nil, fmt.Errorf("scenario: failover re-bind: %w", err)
	}
	if calls["failover-read"], err = s.Invoke(bayou.SetElements("cart"), bayou.Weak); err != nil {
		return nil, err
	}
	if _, err := s.Wait(ctx); err != nil {
		return nil, fmt.Errorf("scenario: failover read: %w", err)
	}
	if calls["failover-write"], err = s.Invoke(bayou.SetAdd("cart", "eggs"), bayou.Weak); err != nil {
		return nil, err
	}
	if _, err := s.Wait(ctx); err != nil {
		return nil, err
	}

	if err := c.Recover(2); err != nil {
		return nil, err
	}
	if err := s.Bind(2); err != nil {
		return nil, fmt.Errorf("scenario: homeward re-bind: %w", err)
	}
	if calls["home-read"], err = s.Invoke(bayou.SetElements("cart"), bayou.Weak); err != nil {
		return nil, err
	}
	if _, err := s.Wait(ctx); err != nil {
		return nil, fmt.Errorf("scenario: post-recovery read: %w", err)
	}
	if err := c.Settle(); err != nil {
		return nil, err
	}

	c.MarkStable()
	for r := 0; r < 3; r++ {
		probe, err := c.Session(r)
		if err != nil {
			return nil, err
		}
		if _, err := probe.Invoke(bayou.SetElements("cart"), bayou.Weak); err != nil {
			return nil, err
		}
	}
	if err := c.Settle(); err != nil {
		return nil, err
	}
	h, err := c.History()
	if err != nil {
		return nil, err
	}
	ok = true
	return &SessionOutcome{Cluster: c, History: h, Calls: calls}, nil
}

// AsyncMinorityRun scripts the paper's availability asymmetry through the
// public API: a partition isolates a minority replica, whose weak
// operations stay live (bounded wait-free, served locally) while its strong
// operation starves — total order cannot reach it — exactly the
// asynchronous-run behaviour of Theorem 3, observed here on a finite
// prefix. The partition then heals, the starved operation completes, and
// the run converges so the checkers can pass verdicts. Works on both
// substrates (live=true ignores the seed).
func AsyncMinorityRun(seed int64, live bool) (*SessionOutcome, error) {
	var c *bayou.Cluster
	var err error
	if live {
		c, err = bayou.NewLive(bayou.WithReplicas(3))
	} else {
		c, err = bayou.New(bayou.WithReplicas(3), bayou.WithSeed(seed))
	}
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()
	if err := c.ElectLeader(0); err != nil {
		return nil, err
	}
	ctx, cancel := waitCtx()
	defer cancel()
	calls := make(map[string]*bayou.Call)

	s0, err := c.Session(0)
	if err != nil {
		return nil, err
	}
	minority, err := c.Session(2)
	if err != nil {
		return nil, err
	}
	minorityStrong, err := c.Session(2)
	if err != nil {
		return nil, err
	}

	if err := c.Partition([]int{0, 1}, []int{2}); err != nil {
		return nil, err
	}
	// Weak stays live in the minority: the call answers within the invoke.
	if calls["minority-weak"], err = minority.Invoke(bayou.Append("m"), bayou.Weak); err != nil {
		return nil, err
	}
	if !calls["minority-weak"].Done() {
		return nil, errors.New("scenario: minority weak op lost bounded wait-freedom")
	}
	// Strong starves in the minority: its TOB cast is parked on the
	// partition boundary.
	if calls["minority-strong"], err = minorityStrong.Invoke(bayou.Inc("ctr", 10), bayou.Strong); err != nil {
		return nil, err
	}
	c.Run(500)
	if calls["minority-strong"].Done() {
		return nil, errors.New("scenario: minority strong op committed across a partition")
	}
	// The majority cell retains quorum: its strong ops commit.
	if calls["majority-strong"], err = s0.Invoke(bayou.PutIfAbsent("owner", "s0"), bayou.Strong); err != nil {
		return nil, err
	}
	if _, err := s0.Wait(ctx); err != nil {
		return nil, fmt.Errorf("scenario: majority strong op: %w", err)
	}

	// Heal: parked traffic delivers, the starved operation commits, the
	// deployment converges.
	if err := c.Heal(); err != nil {
		return nil, err
	}
	if err := c.Settle(); err != nil {
		return nil, err
	}
	if !calls["minority-strong"].Done() {
		return nil, errors.New("scenario: minority strong op still starved after heal")
	}

	c.MarkStable()
	for r := 0; r < 3; r++ {
		probe, err := c.Session(r)
		if err != nil {
			return nil, err
		}
		if _, err := probe.Invoke(bayou.ListRead(), bayou.Weak); err != nil {
			return nil, err
		}
	}
	if err := c.Settle(); err != nil {
		return nil, err
	}
	h, err := c.History()
	if err != nil {
		return nil, err
	}
	ok = true
	return &SessionOutcome{Cluster: c, History: h, Calls: calls}, nil
}
