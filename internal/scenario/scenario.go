// Package scenario reproduces the paper's constructed executions through the
// full protocol stack (core replicas + RB + Paxos TOB + simulated network):
//
//   - Figure1: temporary operation reordering (weak append(x) returns "aax",
//     strong duplicate() returns "axax", the committed order is a,x,dup);
//   - Figure2: circular causality between two weak appends under
//     Algorithm 1, and its absence under Algorithm 2;
//   - Theorem1: the impossibility construction of §5 — a run whose
//     observable history admits *no* abstract execution satisfying
//     BEC(weak,F) ∧ Seq(strong,F);
//   - StableRun / AsyncRun: randomized workloads in stable and asynchronous
//     runs for the Theorem 2 / Theorem 3 checkers.
//
// Every scenario returns the recorded history plus named calls so tests and
// benchmarks can assert the exact return values from the figures.
package scenario

import (
	"errors"
	"fmt"
	"math/rand"

	"bayou/internal/cluster"
	"bayou/internal/core"
	"bayou/internal/history"
	"bayou/internal/sim"
	"bayou/internal/spec"
)

// Outcome bundles a scenario run.
type Outcome struct {
	Cluster *cluster.Cluster
	History *history.History
	Calls   map[string]*cluster.Call // named calls, e.g. "append(x)"
}

// settleManual drains replicas and runs the scheduler to joint quiescence in
// manual-stepping mode.
func settleManual(c *cluster.Cluster, n int) error {
	for i := 0; i < 200; i++ {
		for r := 0; r < n; r++ {
			if err := c.DrainReplica(core.ReplicaID(r)); err != nil {
				return err
			}
		}
		if c.Scheduler().Pending() == 0 {
			allPassive := true
			for r := 0; r < n; r++ {
				if c.Replica(core.ReplicaID(r)).HasInternalWork() {
					allPassive = false
				}
			}
			if allPassive {
				return nil
			}
			continue
		}
		c.RunFor(200)
	}
	return errors.New("scenario: no joint quiescence")
}

// Figure1 reproduces Figure 1 of the paper with the given protocol variant
// (the figure itself depicts Algorithm 1). R1 is replica 0, R2 is replica 1.
func Figure1(variant core.Variant) (*Outcome, error) {
	c, err := cluster.New(cluster.Config{
		N:              2,
		Variant:        variant,
		Seed:           1,
		Latency:        10,
		ManualStepping: true,
	})
	if err != nil {
		return nil, err
	}
	c.StabilizeOmega(0) // TOB leader is R1: append(x) wins the commit race
	calls := make(map[string]*cluster.Call)
	sched := c.Scheduler()
	var schedErr error
	fail := func(e error) {
		if schedErr == nil && e != nil {
			schedErr = e
		}
	}

	// Phase 1: weak append(a) on R1, fully committed everywhere.
	sched.At(10, func() {
		call, e := c.Invoke(0, spec.Append("a"), core.Weak)
		fail(e)
		calls["append(a)"] = call
		fail(c.DrainReplica(0))
	})
	sched.At(45, func() {
		fail(c.DrainReplica(0))
		fail(c.DrainReplica(1))
	})
	// Phase 2: concurrent strong duplicate() on R2 (lower timestamp) and
	// weak append(x) on R1 (higher timestamp). Local executions delayed.
	sched.At(50, func() {
		call, e := c.Invoke(1, spec.Duplicate(), core.Strong)
		fail(e)
		calls["duplicate()"] = call
	})
	sched.At(55, func() {
		call, e := c.Invoke(0, spec.Append("x"), core.Weak)
		fail(e)
		calls["append(x)"] = call
	})
	// R1 executes only after RB-delivering duplicate() (arrives at 60):
	// the tentative order is duplicate(), append(x) → response "aax".
	sched.At(62, func() { fail(c.DrainReplica(0)) })
	// R2 executes tentatively as well (stores the withheld strong
	// response).
	sched.At(66, func() { fail(c.DrainReplica(1)) })
	sched.RunFor(70)
	if schedErr != nil {
		return nil, schedErr
	}
	// Let TOB finish: append(x) commits before duplicate(); both replicas
	// roll back and re-execute; duplicate() answers from the final order.
	if err := settleManual(c, 2); err != nil {
		return nil, err
	}
	c.MarkStable()
	// Post-quiescence probes (EV/CPar witnesses).
	for r := 0; r < 2; r++ {
		if _, err := c.Invoke(core.ReplicaID(r), spec.ListRead(), core.Weak); err != nil {
			return nil, err
		}
	}
	if err := settleManual(c, 2); err != nil {
		return nil, err
	}
	h, err := c.History()
	if err != nil {
		return nil, err
	}
	return &Outcome{Cluster: c, History: h, Calls: calls}, nil
}

// Figure2 reproduces Figure 2: weak append(y) on R2 with the lower
// timestamp, weak append(x) on R1 with the higher one; R2's local execution
// of append(y) is delayed past R2's own TOB delivery of y, so y's response
// reflects the final order while x's reflects the tentative one — circular
// causality under Algorithm 1, eliminated under Algorithm 2.
func Figure2(variant core.Variant) (*Outcome, error) {
	c, err := cluster.New(cluster.Config{
		N:              2,
		Variant:        variant,
		Seed:           2,
		Latency:        10,
		ManualStepping: true,
	})
	if err != nil {
		return nil, err
	}
	c.StabilizeOmega(0)
	calls := make(map[string]*cluster.Call)
	sched := c.Scheduler()
	var schedErr error
	fail := func(e error) {
		if schedErr == nil && e != nil {
			schedErr = e
		}
	}

	sched.At(10, func() {
		call, e := c.Invoke(0, spec.Append("a"), core.Weak)
		fail(e)
		calls["append(a)"] = call
		fail(c.DrainReplica(0))
	})
	sched.At(45, func() {
		fail(c.DrainReplica(0))
		fail(c.DrainReplica(1))
	})
	sched.At(50, func() {
		call, e := c.Invoke(1, spec.Append("y"), core.Weak)
		fail(e)
		calls["append(y)"] = call
	})
	sched.At(55, func() {
		call, e := c.Invoke(0, spec.Append("x"), core.Weak)
		fail(e)
		calls["append(x)"] = call
	})
	// R1 drains after RB-delivering y (at 60): executes y then x → "ayx".
	sched.At(62, func() { fail(c.DrainReplica(0)) })
	// R2 does NOT drain until TOB has delivered both x and y to it (the
	// decides arrive by ~91); its append(y) then executes in committed
	// order → "axy".
	sched.At(95, func() { fail(c.DrainReplica(1)) })
	sched.RunFor(100)
	if schedErr != nil {
		return nil, schedErr
	}
	if err := settleManual(c, 2); err != nil {
		return nil, err
	}
	c.MarkStable()
	for r := 0; r < 2; r++ {
		if _, err := c.Invoke(core.ReplicaID(r), spec.ListRead(), core.Weak); err != nil {
			return nil, err
		}
	}
	if err := settleManual(c, 2); err != nil {
		return nil, err
	}
	h, err := c.History()
	if err != nil {
		return nil, err
	}
	return &Outcome{Cluster: c, History: h, Calls: calls}, nil
}

// Theorem1 runs the impossibility construction of §5 on the real protocol
// (Algorithm 2, Paxos TOB): replicas i=0, j=1, k=2. The adversarial
// asynchronous schedule delays every message toward j, so j answers the
// strong operation c knowing b but not a, while k's read observed both.
// The returned history is small enough for the exhaustive search checker.
func Theorem1() (*Outcome, error) {
	c, err := cluster.New(cluster.Config{
		N:       3,
		Variant: core.NoCircularCausality,
		Seed:    3,
		Latency: 10,
	})
	if err != nil {
		return nil, err
	}
	calls := make(map[string]*cluster.Call)
	sched := c.Scheduler()
	net := c.Network()
	var schedErr error
	fail := func(e error) {
		if schedErr == nil && e != nil {
			schedErr = e
		}
	}

	// Establish TOB leadership at j before the blocks (Ω stabilized).
	c.StabilizeOmega(1)
	c.RunFor(25)

	// The adversary delays all traffic into j.
	net.Block(0, 1)
	net.Block(2, 1)

	sched.At(30, func() {
		call, e := c.Invoke(0, spec.Append("p"), core.Weak) // a on i
		fail(e)
		calls["a"] = call
	})
	sched.At(31, func() {
		call, e := c.Invoke(1, spec.Append("q"), core.Weak) // b on j
		fail(e)
		calls["b"] = call
	})
	// k RB-delivers both a and b, then serves the weak read r.
	sched.At(55, func() {
		call, e := c.Invoke(2, spec.ListRead(), core.Weak) // r on k
		fail(e)
		calls["r"] = call
	})
	// j invokes the strong c; its consensus acks are delayed but arrive
	// once the links reopen (a temporary partition), so c completes in a
	// bounded number of steps after its TOB delivery — without j ever
	// having heard of a.
	sched.At(60, func() {
		call, e := c.Invoke(1, spec.Append("z"), core.Strong) // c on j
		fail(e)
		calls["c"] = call
	})
	c.RunFor(2_000)
	if schedErr != nil {
		return nil, schedErr
	}
	if cCall := calls["c"]; cCall.Done() {
		return nil, errors.New("scenario: strong op completed while j was isolated")
	}
	net.Unblock(0, 1)
	net.Unblock(2, 1)
	c.StabilizeOmega(1)
	if err := c.Settle(0); err != nil {
		return nil, err
	}
	// The run quiesces here; the mid-run read r is legitimately exempt
	// from CPar (its reordered perception is the "temporary" in temporary
	// operation reordering).
	c.MarkStable()
	h, err := c.History()
	if err != nil {
		return nil, err
	}
	return &Outcome{Cluster: c, History: h, Calls: calls}, nil
}

// StableRun drives a randomized mixed workload through a stable run (Ω
// stabilized, no partitions), settles, and issues post-quiescence probes —
// the experiment backing Theorem 2 (E5).
func StableRun(seed int64, replicas, rounds int, variant core.Variant) (*Outcome, error) {
	c, err := cluster.New(cluster.Config{N: replicas, Variant: variant, Seed: seed})
	if err != nil {
		return nil, err
	}
	c.StabilizeOmega(core.ReplicaID(int(seed) % replicas))
	r := rand.New(rand.NewSource(seed))
	elems := []string{"a", "b", "c", "d"}
	for round := 0; round < rounds; round++ {
		for i := 0; i < replicas; i++ {
			var op spec.Op
			switch r.Intn(5) {
			case 0:
				op = spec.Duplicate()
			case 1:
				op = spec.Inc("ctr", int64(r.Intn(5)))
			case 2:
				op = spec.PutIfAbsent(fmt.Sprintf("k%d", r.Intn(3)), elems[r.Intn(4)])
			default:
				op = spec.Append(elems[r.Intn(4)])
			}
			level := core.Weak
			if r.Intn(4) == 0 {
				level = core.Strong
			}
			if _, e := c.Invoke(core.ReplicaID(i), op, level); e != nil && !errors.Is(e, cluster.ErrSessionBusy) {
				return nil, e
			}
		}
		c.RunFor(sim.Time(r.Intn(40)))
	}
	if err := c.Settle(0); err != nil {
		return nil, err
	}
	c.MarkStable()
	for i := 0; i < replicas; i++ {
		if _, e := c.Invoke(core.ReplicaID(i), spec.ListRead(), core.Weak); e != nil && !errors.Is(e, cluster.ErrSessionBusy) {
			return nil, e
		}
	}
	if err := c.Settle(0); err != nil {
		return nil, err
	}
	h, err := c.History()
	if err != nil {
		return nil, err
	}
	return &Outcome{Cluster: c, History: h}, nil
}

// AsyncRun drives a weak-only-progress workload through an asynchronous run:
// Ω never stabilizes, so strong operations pend while weak operations
// propagate via RB — the experiment backing Theorem 3 (E6).
func AsyncRun(seed int64, replicas, rounds int) (*Outcome, error) {
	c, err := cluster.New(cluster.Config{N: replicas, Variant: core.NoCircularCausality, Seed: seed})
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	elems := []string{"a", "b", "c"}
	strongIssued := false
	for round := 0; round < rounds; round++ {
		for i := 0; i < replicas; i++ {
			level := core.Weak
			// One strong op somewhere in the middle: it must pend forever.
			if !strongIssued && round == rounds/2 {
				level = core.Strong
				strongIssued = true
			}
			op := spec.Op(spec.Append(elems[r.Intn(3)]))
			if _, e := c.Invoke(core.ReplicaID(i), op, level); e != nil && !errors.Is(e, cluster.ErrSessionBusy) {
				return nil, e
			}
		}
		c.RunFor(sim.Time(20 + r.Intn(40)))
	}
	// Weak traffic drains (RB only); strong ops stay pending.
	c.RunFor(5_000)
	c.MarkStable()
	for i := 0; i < replicas; i++ {
		if _, e := c.Invoke(core.ReplicaID(i), spec.ListRead(), core.Weak); e != nil && !errors.Is(e, cluster.ErrSessionBusy) {
			return nil, e
		}
	}
	c.RunFor(5_000)
	h, err := c.History()
	if err != nil {
		return nil, err
	}
	return &Outcome{Cluster: c, History: h}, nil
}
