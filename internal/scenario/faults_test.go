package scenario

import (
	"testing"

	"bayou"
	"bayou/internal/check"
	"bayou/internal/core"
)

// checkFaultOutcome runs the standard verdicts over a fault-scenario run:
// FEC(weak) and Seq/BEC(strong) must survive the adversarial schedule, and
// every replica must hold the same committed order.
func checkFaultOutcome(t *testing.T, out *SessionOutcome, wantCommits int) {
	t.Helper()
	w := check.NewWitness(out.History)
	for name, rep := range map[string]check.Report{
		"FEC(weak)":   w.FEC(core.Weak),
		"BEC(strong)": w.BEC(core.Strong),
		"Seq(strong)": w.Seq(core.Strong),
	} {
		if !rep.OK() {
			t.Errorf("%s violated under faults:\n%s", name, rep)
		}
	}
	ref, err := out.Cluster.Committed(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != wantCommits {
		t.Fatalf("committed %d ops, want %d (%v)", len(ref), wantCommits, ref)
	}
	for r := 1; r < out.Cluster.Replicas(); r++ {
		got, err := out.Cluster.Committed(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("replica %d committed %d ops, replica 0 %d", r, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("replica %d committed order diverges at %d: %s vs %s", r, i, got[i], ref[i])
			}
		}
	}
}

func TestCrashRecoverRunSim(t *testing.T) {
	out, err := CrashRecoverRun(101, false)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Cluster.Close()
	// pre, during (weak update), inc (strong), post — all TOB-committed.
	checkFaultOutcome(t, out, 4)
	if !out.Calls["during-strong"].Response().Committed {
		t.Error("strong op during the crash must respond from the final order")
	}
}

func TestCrashRecoverRunLive(t *testing.T) {
	out, err := CrashRecoverRun(0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Cluster.Close()
	checkFaultOutcome(t, out, 4)
}

// checkGuaranteeFailover verifies a GuaranteeFailoverRun outcome: the
// failover read sees the pre-crash write, the homeward read sees everything,
// and the guarantee checker proves RYW|MR over the migrated history.
func checkGuaranteeFailover(t *testing.T, out *SessionOutcome) {
	t.Helper()
	has := func(call *bayou.Call, want string) bool {
		if vs, ok := call.Response().Value.([]bayou.Value); ok {
			for _, v := range vs {
				if v == want {
					return true
				}
			}
		}
		return false
	}
	if !has(out.Calls["failover-read"], "milk") {
		t.Errorf("failover read lost the session's own pre-crash write: %v", out.Calls["failover-read"].Response().Value)
	}
	if !has(out.Calls["home-read"], "milk") || !has(out.Calls["home-read"], "eggs") {
		t.Errorf("post-recovery read lost writes: %v", out.Calls["home-read"].Response().Value)
	}
	w := check.NewWitness(out.History)
	if rep := w.Guarantees(core.ReadYourWrites | core.MonotonicReads); !rep.OK() {
		t.Errorf("session guarantees violated across the failover:\n%s", rep)
	}
	if rep := w.FEC(core.Weak); !rep.OK() {
		t.Errorf("FEC(weak) violated:\n%s", rep)
	}
}

func TestGuaranteeFailoverRunSim(t *testing.T) {
	out, err := GuaranteeFailoverRun(303, false)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Cluster.Close()
	checkGuaranteeFailover(t, out)
}

func TestGuaranteeFailoverRunLive(t *testing.T) {
	out, err := GuaranteeFailoverRun(0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Cluster.Close()
	checkGuaranteeFailover(t, out)
}

func TestAsyncMinorityRunSim(t *testing.T) {
	out, err := AsyncMinorityRun(202, false)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Cluster.Close()
	// minority weak, minority strong, majority strong — all committed
	// after the heal.
	checkFaultOutcome(t, out, 3)
	if resp := out.Calls["minority-strong"].Response(); !resp.Committed || !bayou.Equal(resp.Value, int64(10)) {
		t.Errorf("starved strong op response = %+v, want committed 10", resp)
	}
	if !bayou.Equal(out.Calls["majority-strong"].Response().Value, true) {
		t.Error("majority strong op must win its putIfAbsent")
	}
}

func TestAsyncMinorityRunLive(t *testing.T) {
	out, err := AsyncMinorityRun(0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Cluster.Close()
	checkFaultOutcome(t, out, 3)
}
