package scenario

import (
	"testing"

	"bayou"
	"bayou/internal/check"
	"bayou/internal/core"
)

// checkFaultOutcome runs the standard verdicts over a fault-scenario run:
// FEC(weak) and Seq/BEC(strong) must survive the adversarial schedule, and
// every replica must hold the same committed order.
func checkFaultOutcome(t *testing.T, out *SessionOutcome, wantCommits int) {
	t.Helper()
	w := check.NewWitness(out.History)
	for name, rep := range map[string]check.Report{
		"FEC(weak)":   w.FEC(core.Weak),
		"BEC(strong)": w.BEC(core.Strong),
		"Seq(strong)": w.Seq(core.Strong),
	} {
		if !rep.OK() {
			t.Errorf("%s violated under faults:\n%s", name, rep)
		}
	}
	ref, err := out.Cluster.Committed(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != wantCommits {
		t.Fatalf("committed %d ops, want %d (%v)", len(ref), wantCommits, ref)
	}
	for r := 1; r < out.Cluster.Replicas(); r++ {
		got, err := out.Cluster.Committed(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("replica %d committed %d ops, replica 0 %d", r, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("replica %d committed order diverges at %d: %s vs %s", r, i, got[i], ref[i])
			}
		}
	}
}

func TestCrashRecoverRunSim(t *testing.T) {
	out, err := CrashRecoverRun(101, false)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Cluster.Close()
	// pre, during (weak update), inc (strong), post — all TOB-committed.
	checkFaultOutcome(t, out, 4)
	if !out.Calls["during-strong"].Response().Committed {
		t.Error("strong op during the crash must respond from the final order")
	}
}

func TestCrashRecoverRunLive(t *testing.T) {
	out, err := CrashRecoverRun(0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Cluster.Close()
	checkFaultOutcome(t, out, 4)
}

func TestAsyncMinorityRunSim(t *testing.T) {
	out, err := AsyncMinorityRun(202, false)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Cluster.Close()
	// minority weak, minority strong, majority strong — all committed
	// after the heal.
	checkFaultOutcome(t, out, 3)
	if resp := out.Calls["minority-strong"].Response(); !resp.Committed || !bayou.Equal(resp.Value, int64(10)) {
		t.Errorf("starved strong op response = %+v, want committed 10", resp)
	}
	if !bayou.Equal(out.Calls["majority-strong"].Response().Value, true) {
		t.Error("majority strong op must win its putIfAbsent")
	}
}

func TestAsyncMinorityRunLive(t *testing.T) {
	out, err := AsyncMinorityRun(0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Cluster.Close()
	checkFaultOutcome(t, out, 3)
}
