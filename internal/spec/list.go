package spec

import "strings"

// DefaultListID is the register under which list operations store the list
// when constructed via the convenience constructors.
const DefaultListID = "list"

// The list data type of Figures 1 and 2: an initially empty sequence of
// strings. Updating operations return the modified state of the list
// rendered as the concatenation of its elements, matching the figures
// (append(a) -> "a", duplicate() -> "axax", ...).

// AppendOp appends a single element to the list and returns the
// concatenation of the resulting list.
type AppendOp struct {
	ID   string // register holding the list
	Elem string
}

// Append returns an append(elem) operation on the default list register.
func Append(elem string) AppendOp { return AppendOp{ID: DefaultListID, Elem: elem} }

// Name implements Op.
func (o AppendOp) Name() string { return "append(" + o.Elem + ")" }

// ReadOnly implements Op.
func (AppendOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o AppendOp) Apply(tx Tx) Value {
	l := valueList(tx.Read(o.ID))
	l = append(l, Value(o.Elem))
	tx.Write(o.ID, l)
	return concat(l)
}

// DuplicateOp atomically appends a copy of the list to itself — the paper's
// duplicate(), "equivalent to atomically executing append(read())" — and
// returns the concatenation of the resulting list.
type DuplicateOp struct {
	ID string
}

// Duplicate returns a duplicate() operation on the default list register.
func Duplicate() DuplicateOp { return DuplicateOp{ID: DefaultListID} }

// Name implements Op.
func (DuplicateOp) Name() string { return "duplicate()" }

// ReadOnly implements Op.
func (DuplicateOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o DuplicateOp) Apply(tx Tx) Value {
	l := valueList(tx.Read(o.ID))
	l = append(l, l...)
	tx.Write(o.ID, l)
	return concat(l)
}

// ListReadOp returns the concatenation of the list without modifying it.
type ListReadOp struct {
	ID string
}

// ListRead returns a read() operation on the default list register.
func ListRead() ListReadOp { return ListReadOp{ID: DefaultListID} }

// Name implements Op.
func (ListReadOp) Name() string { return "read()" }

// ReadOnly implements Op.
func (ListReadOp) ReadOnly() bool { return true }

// Apply implements Op.
func (o ListReadOp) Apply(tx Tx) Value {
	return concat(valueList(tx.Read(o.ID)))
}

// GetFirstOp returns the first element of the list, or nil when empty.
// It is one of the example list operations named in Section 2.1.
type GetFirstOp struct {
	ID string
}

// GetFirst returns a getFirst() operation on the default list register.
func GetFirst() GetFirstOp { return GetFirstOp{ID: DefaultListID} }

// Name implements Op.
func (GetFirstOp) Name() string { return "getFirst()" }

// ReadOnly implements Op.
func (GetFirstOp) ReadOnly() bool { return true }

// Apply implements Op.
func (o GetFirstOp) Apply(tx Tx) Value {
	l := valueList(tx.Read(o.ID))
	if len(l) == 0 {
		return nil
	}
	return Clone(l[0])
}

// SizeOp returns the length of the list.
type SizeOp struct {
	ID string
}

// Size returns a size() operation on the default list register.
func Size() SizeOp { return SizeOp{ID: DefaultListID} }

// Name implements Op.
func (SizeOp) Name() string { return "size()" }

// ReadOnly implements Op.
func (SizeOp) ReadOnly() bool { return true }

// Apply implements Op.
func (o SizeOp) Apply(tx Tx) Value {
	return int64(len(valueList(tx.Read(o.ID))))
}

// concat renders a list of string elements as their concatenation, the
// return-value convention of Figures 1 and 2.
func concat(l []Value) Value {
	var b strings.Builder
	for _, e := range l {
		if s, ok := e.(string); ok {
			b.WriteString(s)
		} else {
			b.WriteString(Encode(e))
		}
	}
	return b.String()
}
