package spec

// The register data type: the paper's simplest example (read/write
// operations on a register; §2.1). Theorem 1's closing remark observes that
// for a single register, BEC(weak,F) and Seq(strong,F) are jointly
// achievable; the register type is used by the impossibility benchmark to
// demonstrate that counterpoint.

// WriteOp writes v to register key and returns v (matching the paper's
// example rval(write(3)) = 3).
type WriteOp struct {
	Key string
	V   Value
}

// RegWrite constructs a write(key, v) operation.
func RegWrite(key string, v Value) WriteOp { return WriteOp{Key: key, V: v} }

// Name implements Op.
func (o WriteOp) Name() string { return "write(" + o.Key + "," + Encode(o.V) + ")" }

// ReadOnly implements Op.
func (WriteOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o WriteOp) Apply(tx Tx) Value {
	tx.Write(o.Key, o.V)
	return Clone(o.V)
}

// ReadOp reads register key, returning nil when unwritten.
type ReadOp struct {
	Key string
}

// RegRead constructs a read(key) operation.
func RegRead(key string) ReadOp { return ReadOp{Key: key} }

// Name implements Op.
func (o ReadOp) Name() string { return "read(" + o.Key + ")" }

// ReadOnly implements Op.
func (ReadOp) ReadOnly() bool { return true }

// Apply implements Op.
func (o ReadOp) Apply(tx Tx) Value { return tx.Read(o.Key) }
