package spec

import "sort"

// The set data type: a sequentially-specified set of strings kept sorted in
// a single register. (The paper's OR-Set discussion in §3.4 concerns types
// that expose concurrency; Bayou executes sequentially, so a sequential set
// is the appropriate specification here.)

const setPrefix = "set/"

// SetAddOp inserts Elem into the set under Key and returns true when the
// element was not already present.
type SetAddOp struct {
	Key  string
	Elem string
}

// SetAdd constructs an add(key, elem) operation.
func SetAdd(key, elem string) SetAddOp { return SetAddOp{Key: key, Elem: elem} }

// Name implements Op.
func (o SetAddOp) Name() string { return "setAdd(" + o.Key + "," + o.Elem + ")" }

// ReadOnly implements Op.
func (SetAddOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o SetAddOp) Apply(tx Tx) Value {
	elems := valueList(tx.Read(setPrefix + o.Key))
	for _, e := range elems {
		if Equal(e, o.Elem) {
			return false
		}
	}
	elems = append(elems, Value(o.Elem))
	sort.Slice(elems, func(i, j int) bool { return Encode(elems[i]) < Encode(elems[j]) })
	tx.Write(setPrefix+o.Key, elems)
	return true
}

// SetRemoveOp removes Elem from the set under Key and returns true when the
// element was present.
type SetRemoveOp struct {
	Key  string
	Elem string
}

// SetRemove constructs a remove(key, elem) operation.
func SetRemove(key, elem string) SetRemoveOp { return SetRemoveOp{Key: key, Elem: elem} }

// Name implements Op.
func (o SetRemoveOp) Name() string { return "setRemove(" + o.Key + "," + o.Elem + ")" }

// ReadOnly implements Op.
func (SetRemoveOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o SetRemoveOp) Apply(tx Tx) Value {
	elems := valueList(tx.Read(setPrefix + o.Key))
	out := elems[:0:0]
	found := false
	for _, e := range elems {
		if Equal(e, o.Elem) {
			found = true
			continue
		}
		out = append(out, e)
	}
	if found {
		tx.Write(setPrefix+o.Key, out)
	}
	return found
}

// SetContainsOp reports whether Elem is in the set under Key.
type SetContainsOp struct {
	Key  string
	Elem string
}

// SetContains constructs a contains(key, elem) operation.
func SetContains(key, elem string) SetContainsOp { return SetContainsOp{Key: key, Elem: elem} }

// Name implements Op.
func (o SetContainsOp) Name() string { return "setContains(" + o.Key + "," + o.Elem + ")" }

// ReadOnly implements Op.
func (SetContainsOp) ReadOnly() bool { return true }

// Apply implements Op.
func (o SetContainsOp) Apply(tx Tx) Value {
	for _, e := range valueList(tx.Read(setPrefix + o.Key)) {
		if Equal(e, o.Elem) {
			return true
		}
	}
	return false
}

// SetElementsOp returns the sorted elements of the set under Key.
type SetElementsOp struct {
	Key string
}

// SetElements constructs an elements(key) operation.
func SetElements(key string) SetElementsOp { return SetElementsOp{Key: key} }

// Name implements Op.
func (o SetElementsOp) Name() string { return "setElements(" + o.Key + ")" }

// ReadOnly implements Op.
func (SetElementsOp) ReadOnly() bool { return true }

// Apply implements Op.
func (o SetElementsOp) Apply(tx Tx) Value {
	elems := valueList(tx.Read(setPrefix + o.Key))
	return Clone(Value(elems))
}
