package spec

// The text-editor data type: a shared document with position-based inserts
// and deletes. Positional operations are the canonical example of
// "arbitrarily complex semantics" (§1): they neither commute nor tolerate
// reordering gracefully, so the same edit lands differently under the
// tentative and the final execution order — which is exactly the behaviour
// the weak/strong split is about. Out-of-range positions clamp to the
// nearest valid position (a deterministic merge rule, in the spirit of
// Bayou's merge procedures).

const docPrefix = "doc/"

// InsertOp inserts Text at rune position Pos of document Doc and returns the
// resulting document.
type InsertOp struct {
	Doc  string
	Pos  int64
	Text string
}

// Insert constructs an insert(doc, pos, text) operation.
func Insert(doc string, pos int64, text string) InsertOp {
	return InsertOp{Doc: doc, Pos: pos, Text: text}
}

// Name implements Op.
func (o InsertOp) Name() string {
	return "insert(" + o.Doc + "," + Encode(o.Pos) + "," + o.Text + ")"
}

// ReadOnly implements Op.
func (InsertOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o InsertOp) Apply(tx Tx) Value {
	cur, _ := tx.Read(docPrefix + o.Doc).(string)
	pos := clampPos(o.Pos, len(cur))
	out := cur[:pos] + o.Text + cur[pos:]
	tx.Write(docPrefix+o.Doc, out)
	return out
}

// DeleteOp removes N characters starting at Pos and returns the resulting
// document. The range is clamped to the document.
type DeleteOp struct {
	Doc string
	Pos int64
	N   int64
}

// Delete constructs a delete(doc, pos, n) operation.
func Delete(doc string, pos, n int64) DeleteOp { return DeleteOp{Doc: doc, Pos: pos, N: n} }

// Name implements Op.
func (o DeleteOp) Name() string {
	return "delete(" + o.Doc + "," + Encode(o.Pos) + "," + Encode(o.N) + ")"
}

// ReadOnly implements Op.
func (DeleteOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o DeleteOp) Apply(tx Tx) Value {
	cur, _ := tx.Read(docPrefix + o.Doc).(string)
	pos := clampPos(o.Pos, len(cur))
	end := pos + int(o.N)
	if o.N < 0 {
		end = pos
	}
	if end > len(cur) {
		end = len(cur)
	}
	out := cur[:pos] + cur[end:]
	tx.Write(docPrefix+o.Doc, out)
	return out
}

// DocReadOp returns the document contents (empty string when absent).
type DocReadOp struct {
	Doc string
}

// DocRead constructs a read(doc) operation.
func DocRead(doc string) DocReadOp { return DocReadOp{Doc: doc} }

// Name implements Op.
func (o DocReadOp) Name() string { return "docRead(" + o.Doc + ")" }

// ReadOnly implements Op.
func (DocReadOp) ReadOnly() bool { return true }

// Apply implements Op.
func (o DocReadOp) Apply(tx Tx) Value {
	cur, _ := tx.Read(docPrefix + o.Doc).(string)
	return cur
}

func clampPos(pos int64, n int) int {
	if pos < 0 {
		return 0
	}
	if pos > int64(n) {
		return n
	}
	return int(pos)
}
