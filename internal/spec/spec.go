// Package spec models replicated data types in the sense of Section 3.4 of
// the paper: a data type F is a set of operations, each of which is a
// deterministic transaction composed of register reads and writes plus local
// computation, returning a value (the model of Appendix A.2.2). The same
// operations serve two purposes:
//
//   - they are executed by the protocol's state object (internal/stateobj)
//     against the replica's database, and
//   - they act as a sequential specification for the correctness checkers:
//     F(op, C) is computed by replaying the context C in arbitration order on
//     a fresh store and then applying op (Bayou executes all operations
//     sequentially, so a sequential specification is exact; see footnote 5 of
//     the paper).
//
// Values are deeply-copied at package boundaries so that operations can never
// alias protocol state (operations may be re-executed after rollbacks and
// must stay deterministic).
package spec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is the dynamic value type stored in registers and returned by
// operations. The concrete types used throughout this repository are:
// nil, bool, int64, string, and []Value (recursively of the same types).
type Value any

// Tx is the interface an operation uses to access the replica state. It is
// the register read/write model of Algorithm 3: every operation is a
// composition of Read and Write instructions plus local computation.
type Tx interface {
	// Read returns the current value of the register id, or nil if the
	// register was never written.
	Read(id string) Value
	// Write sets the register id to v.
	Write(id string, v Value)
}

// Op is a deterministic transaction against the replicated state. An Op must
// be pure apart from its Tx effects: given the same sequence of Read results
// it must perform the same Writes and return the same Value, because the
// protocol re-executes operations after rollbacks.
type Op interface {
	// Name renders the operation with its arguments, e.g. "append(x)".
	// Names appear in traces and in the Figure 1/2 reproductions.
	Name() string
	// ReadOnly reports whether the operation performs no Writes for any
	// possible reads. Read-only operations are the readonlyops(F) of the
	// paper: they may be executed locally and never influence other
	// operations' return values.
	ReadOnly() bool
	// Apply runs the transaction against tx and returns the response.
	Apply(tx Tx) Value
}

// Clone returns a deep copy of v. Slices are copied recursively; scalar
// values are returned as-is.
func Clone(v Value) Value {
	s, ok := v.([]Value)
	if !ok {
		return v
	}
	out := make([]Value, len(s))
	for i, e := range s {
		out[i] = Clone(e)
	}
	return out
}

// Checkpoint deep-copies a whole register database into a detached image:
// the restorable form of a state's db at one point of its trace. The image
// shares no structure with the live map, so later writes to either side
// cannot alias (operations may be re-executed after rollbacks and must stay
// deterministic; a checkpoint must stay byte-stable forever).
func Checkpoint(db map[string]Value) map[string]Value {
	img := make(map[string]Value, len(db))
	for k, v := range db {
		img[k] = Clone(v)
	}
	return img
}

// Restore deep-copies a checkpoint image back into a fresh register
// database. The image itself is left untouched and reusable: one checkpoint
// can seed any number of restored states (a replica's own recovery and every
// state-transfer catch-up it serves).
func Restore(img map[string]Value) map[string]Value {
	return Checkpoint(img)
}

// Encode renders v canonically so that two Values are semantically equal
// exactly when their encodings are equal byte-for-byte.
func Encode(v Value) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case int64:
		return "i" + strconv.FormatInt(x, 10)
	case int:
		// Accept untyped int literals from tests and examples.
		return "i" + strconv.Itoa(x)
	case string:
		return strconv.Quote(x)
	case []Value:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = Encode(e)
		}
		return "[" + strings.Join(parts, ",") + "]"
	default:
		// Unknown dynamic types are rendered via fmt; they compare by
		// their printed form. Operations in this repository only produce
		// the documented types.
		return fmt.Sprintf("?%T:%v", v, v)
	}
}

// Equal reports whether two Values are semantically equal (deep equality
// over the documented value types).
func Equal(a, b Value) bool {
	return Encode(a) == Encode(b)
}

// MapTx is a plain map-backed Tx used for sequential replay by the checkers
// and the examples. The zero value is not usable; use NewMapTx.
type MapTx struct {
	m map[string]Value
}

// NewMapTx returns an empty map-backed store.
func NewMapTx() *MapTx {
	return &MapTx{m: make(map[string]Value)}
}

// Read implements Tx. Missing registers read as nil.
func (t *MapTx) Read(id string) Value {
	return Clone(t.m[id])
}

// Write implements Tx.
func (t *MapTx) Write(id string, v Value) {
	t.m[id] = Clone(v)
}

// Snapshot returns a deep copy of the store contents, for test assertions.
func (t *MapTx) Snapshot() map[string]Value {
	out := make(map[string]Value, len(t.m))
	for k, v := range t.m {
		out[k] = Clone(v)
	}
	return out
}

// Keys returns the sorted register ids present in the store.
func (t *MapTx) Keys() []string {
	keys := make([]string, 0, len(t.m))
	for k := range t.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Eval computes F(op, context): it replays the context operations in order
// on a fresh store and returns op's response on the resulting state. This is
// the sequential-specification reading of the replicated data type function
// F from Section 3.4; the caller supplies the context already sorted by the
// arbitration (or perceived arbitration) order and restricted to the visible
// events.
func Eval(context []Op, op Op) Value {
	tx := NewMapTx()
	for _, c := range context {
		c.Apply(tx)
	}
	return op.Apply(tx)
}

// Replay applies ops in order on a fresh store and returns every response.
func Replay(ops []Op) []Value {
	tx := NewMapTx()
	out := make([]Value, len(ops))
	for i, o := range ops {
		out[i] = o.Apply(tx)
	}
	return out
}

// valueList coerces a register content to a []Value, treating nil as empty.
func valueList(v Value) []Value {
	if v == nil {
		return nil
	}
	s, ok := v.([]Value)
	if !ok {
		return []Value{v}
	}
	return s
}
