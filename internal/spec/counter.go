package spec

// The counter data type (a "replicated counter" is the paper's first example
// of a replicated data type in §3.4).

// IncOp adds Delta to the counter under Key and returns the new value.
type IncOp struct {
	Key   string
	Delta int64
}

// Inc constructs an inc(key, delta) operation.
func Inc(key string, delta int64) IncOp { return IncOp{Key: key, Delta: delta} }

// Name implements Op.
func (o IncOp) Name() string { return "inc(" + o.Key + "," + Encode(o.Delta) + ")" }

// ReadOnly implements Op.
func (IncOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o IncOp) Apply(tx Tx) Value {
	cur, _ := tx.Read(o.Key).(int64)
	cur += o.Delta
	tx.Write(o.Key, cur)
	return cur
}

// CtrGetOp reads the counter under Key (0 when never incremented).
type CtrGetOp struct {
	Key string
}

// CtrGet constructs a get(key) counter read.
func CtrGet(key string) CtrGetOp { return CtrGetOp{Key: key} }

// Name implements Op.
func (o CtrGetOp) Name() string { return "ctrGet(" + o.Key + ")" }

// ReadOnly implements Op.
func (CtrGetOp) ReadOnly() bool { return true }

// Apply implements Op.
func (o CtrGetOp) Apply(tx Tx) Value {
	cur, _ := tx.Read(o.Key).(int64)
	return cur
}
