package spec

import "testing"

func TestAbortMarker(t *testing.T) {
	m := Aborted(3)
	if !IsAborted(m) {
		t.Fatalf("IsAborted(Aborted(3)) = false")
	}
	step, ok := AbortStep(m)
	if !ok || step != 3 {
		t.Fatalf("AbortStep = %d,%v; want 3,true", step, ok)
	}
	// The marker is a plain Value: canonical encoding round-trips through
	// Equal and survives Clone without losing its identity.
	if !Equal(m, Clone(m)) {
		t.Fatalf("abort marker not Equal to its Clone")
	}
	if !IsAborted(Clone(m)) {
		t.Fatalf("Clone dropped abort identity")
	}
	// An int-typed step (untyped literal path) is also accepted.
	if s, ok := AbortStep([]Value{abortTag, 7}); !ok || s != 7 {
		t.Fatalf("AbortStep(int shape) = %d,%v; want 7,true", s, ok)
	}
}

func TestAbortMarkerDoesNotCollide(t *testing.T) {
	for _, v := range []Value{
		nil,
		false,
		int64(0),
		"ok",
		[]Value{},
		[]Value{"x", int64(1)},
		[]Value{abortTag},                     // wrong arity
		[]Value{abortTag, "not-a-step"},       // wrong step type
		[]Value{abortTag, int64(1), int64(2)}, // wrong arity
		[]Value{int64(1), int64(2)},           // wrong tag type
		[]Value{"bayou/txn-abort", int64(0)},  // missing NUL prefix
		map[string]Value{abortTag: int64(0)},  // wrong shape entirely
	} {
		if IsAborted(v) {
			t.Errorf("IsAborted(%v) = true; want false", v)
		}
	}
}
