package spec

// The key-value data type with putIfAbsent — the paper's motivating example
// of an operation that requires consensus (§1: "Enabling the support for
// some relatively basic operations, such as putIfAbsent in a key-value data
// store, requires the ability to solve distributed consensus"). Keys are
// namespaced under "kv/" so the type can coexist with others in one store.

const kvPrefix = "kv/"

// PutOp stores V under Key (a blind write) and returns V.
type PutOp struct {
	Key string
	V   Value
}

// Put constructs a put(key, v) operation.
func Put(key string, v Value) PutOp { return PutOp{Key: key, V: v} }

// Name implements Op.
func (o PutOp) Name() string { return "put(" + o.Key + "," + Encode(o.V) + ")" }

// ReadOnly implements Op.
func (PutOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o PutOp) Apply(tx Tx) Value {
	tx.Write(kvPrefix+o.Key, o.V)
	return Clone(o.V)
}

// GetOp reads the value under Key, nil when absent.
type GetOp struct {
	Key string
}

// Get constructs a get(key) operation.
func Get(key string) GetOp { return GetOp{Key: key} }

// Name implements Op.
func (o GetOp) Name() string { return "get(" + o.Key + ")" }

// ReadOnly implements Op.
func (GetOp) ReadOnly() bool { return true }

// Apply implements Op.
func (o GetOp) Apply(tx Tx) Value { return tx.Read(kvPrefix + o.Key) }

// DelOp removes the binding for Key and returns the previous value.
type DelOp struct {
	Key string
}

// Del constructs a del(key) operation.
func Del(key string) DelOp { return DelOp{Key: key} }

// Name implements Op.
func (o DelOp) Name() string { return "del(" + o.Key + ")" }

// ReadOnly implements Op.
func (DelOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o DelOp) Apply(tx Tx) Value {
	old := tx.Read(kvPrefix + o.Key)
	tx.Write(kvPrefix+o.Key, nil)
	return old
}

// PutIfAbsentOp stores V under Key only when Key is unbound; it returns true
// when the put took effect. Issued as a strong operation it has
// compare-and-set semantics; issued as a weak operation its tentative
// response may later be invalidated — exactly the LWT-mixing hazard the
// paper cites from Cassandra (reference [13]).
type PutIfAbsentOp struct {
	Key string
	V   Value
}

// PutIfAbsent constructs a putIfAbsent(key, v) operation.
func PutIfAbsent(key string, v Value) PutIfAbsentOp { return PutIfAbsentOp{Key: key, V: v} }

// Name implements Op.
func (o PutIfAbsentOp) Name() string {
	return "putIfAbsent(" + o.Key + "," + Encode(o.V) + ")"
}

// ReadOnly implements Op.
func (PutIfAbsentOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o PutIfAbsentOp) Apply(tx Tx) Value {
	if tx.Read(kvPrefix+o.Key) != nil {
		return false
	}
	tx.Write(kvPrefix+o.Key, o.V)
	return true
}

// CasOp replaces the value under Key with New when the current value equals
// Old; it returns true when the swap took effect.
type CasOp struct {
	Key      string
	Old, New Value
}

// Cas constructs a cas(key, old, new) operation.
func Cas(key string, old, next Value) CasOp { return CasOp{Key: key, Old: old, New: next} }

// Name implements Op.
func (o CasOp) Name() string {
	return "cas(" + o.Key + "," + Encode(o.Old) + "," + Encode(o.New) + ")"
}

// ReadOnly implements Op.
func (CasOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o CasOp) Apply(tx Tx) Value {
	if !Equal(tx.Read(kvPrefix+o.Key), o.Old) {
		return false
	}
	tx.Write(kvPrefix+o.Key, o.New)
	return true
}
