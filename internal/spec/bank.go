package spec

// The bank data type used by the examples and benchmarks: accounts with
// deposits (commuting blind updates, natural weak operations) and
// withdrawals/transfers (balance-guarded, the kind of operation one wants to
// issue strongly so a tentative approval is never revoked). This is the
// classic mixed-consistency workload the paper's introduction motivates.

const acctPrefix = "acct/"

// DepositOp adds Amount to Account and returns the new balance.
type DepositOp struct {
	Account string
	Amount  int64
}

// Deposit constructs a deposit(account, amount) operation.
func Deposit(account string, amount int64) DepositOp {
	return DepositOp{Account: account, Amount: amount}
}

// Name implements Op.
func (o DepositOp) Name() string {
	return "deposit(" + o.Account + "," + Encode(o.Amount) + ")"
}

// ReadOnly implements Op.
func (DepositOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o DepositOp) Apply(tx Tx) Value {
	bal, _ := tx.Read(acctPrefix + o.Account).(int64)
	bal += o.Amount
	tx.Write(acctPrefix+o.Account, bal)
	return bal
}

// WithdrawOp subtracts Amount from Account when the balance suffices. It
// returns the new balance on success and nil when rejected (the
// dependency-check pattern of the original Bayou, emulated at the operation
// level as §2.1 prescribes).
type WithdrawOp struct {
	Account string
	Amount  int64
}

// Withdraw constructs a withdraw(account, amount) operation.
func Withdraw(account string, amount int64) WithdrawOp {
	return WithdrawOp{Account: account, Amount: amount}
}

// Name implements Op.
func (o WithdrawOp) Name() string {
	return "withdraw(" + o.Account + "," + Encode(o.Amount) + ")"
}

// ReadOnly implements Op.
func (WithdrawOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o WithdrawOp) Apply(tx Tx) Value {
	bal, _ := tx.Read(acctPrefix + o.Account).(int64)
	if bal < o.Amount {
		return nil
	}
	bal -= o.Amount
	tx.Write(acctPrefix+o.Account, bal)
	return bal
}

// BalanceOp reads the balance of Account (0 when the account is fresh).
type BalanceOp struct {
	Account string
}

// Balance constructs a balance(account) operation.
func Balance(account string) BalanceOp { return BalanceOp{Account: account} }

// Name implements Op.
func (o BalanceOp) Name() string { return "balance(" + o.Account + ")" }

// ReadOnly implements Op.
func (BalanceOp) ReadOnly() bool { return true }

// Apply implements Op.
func (o BalanceOp) Apply(tx Tx) Value {
	bal, _ := tx.Read(acctPrefix + o.Account).(int64)
	return bal
}

// TransferOp atomically moves Amount from From to To when From's balance
// suffices, returning true on success.
type TransferOp struct {
	From, To string
	Amount   int64
}

// Transfer constructs a transfer(from, to, amount) operation.
func Transfer(from, to string, amount int64) TransferOp {
	return TransferOp{From: from, To: to, Amount: amount}
}

// Name implements Op.
func (o TransferOp) Name() string {
	return "transfer(" + o.From + "," + o.To + "," + Encode(o.Amount) + ")"
}

// ReadOnly implements Op.
func (TransferOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o TransferOp) Apply(tx Tx) Value {
	from, _ := tx.Read(acctPrefix + o.From).(int64)
	if from < o.Amount {
		return false
	}
	to, _ := tx.Read(acctPrefix + o.To).(int64)
	tx.Write(acctPrefix+o.From, from-o.Amount)
	tx.Write(acctPrefix+o.To, to+o.Amount)
	return true
}
