package spec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeScalars(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{nil, "nil"},
		{true, "true"},
		{false, "false"},
		{int64(42), "i42"},
		{int64(-7), "i-7"},
		{"abc", `"abc"`},
		{[]Value{"a", int64(1)}, `["a",i1]`},
		{[]Value{}, `[]`},
		{[]Value{[]Value{"x"}}, `[["x"]]`},
	}
	for _, c := range cases {
		if got := Encode(c.v); got != c.want {
			t.Errorf("Encode(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]Value{"a", int64(1)}, []Value{"a", int64(1)}) {
		t.Error("deep-equal slices must compare equal")
	}
	if Equal("a", "b") {
		t.Error("distinct strings must not compare equal")
	}
	if Equal(int64(1), "i1") {
		t.Error("int64(1) must differ from string \"i1\"")
	}
	if !Equal(nil, nil) {
		t.Error("nil equals nil")
	}
}

func TestCloneIsolation(t *testing.T) {
	orig := []Value{"a", []Value{"b"}}
	cp := Clone(Value(orig)).([]Value)
	cp[0] = "mutated"
	cp[1].([]Value)[0] = "mutated"
	if orig[0] != "a" || orig[1].([]Value)[0] != "b" {
		t.Errorf("Clone must deep-copy; original mutated: %v", orig)
	}
}

func TestMapTxReadMissing(t *testing.T) {
	tx := NewMapTx()
	if v := tx.Read("nope"); v != nil {
		t.Errorf("missing register reads as %v, want nil", v)
	}
}

func TestMapTxCloneOnReadWrite(t *testing.T) {
	tx := NewMapTx()
	v := []Value{"a"}
	tx.Write("k", v)
	v[0] = "mutated"
	got := tx.Read("k").([]Value)
	if got[0] != "a" {
		t.Errorf("Write must clone: got %v", got)
	}
	got[0] = "mutated"
	again := tx.Read("k").([]Value)
	if again[0] != "a" {
		t.Errorf("Read must clone: got %v", again)
	}
}

func TestListFigureValues(t *testing.T) {
	// The return-value convention of Figure 1: append returns the whole
	// concatenated list, duplicate doubles it.
	rvals := Replay([]Op{Append("a"), Append("x"), Duplicate(), ListRead()})
	want := []Value{"a", "ax", "axax", "axax"}
	for i := range want {
		if !Equal(rvals[i], want[i]) {
			t.Errorf("rvals[%d] = %v, want %v", i, rvals[i], want[i])
		}
	}
}

func TestListFigure1TentativeOrder(t *testing.T) {
	// Tentative order from Figure 1: append(a), duplicate(), append(x)
	// yields aax for the append(x) response.
	rvals := Replay([]Op{Append("a"), Duplicate(), Append("x")})
	if !Equal(rvals[2], "aax") {
		t.Errorf("append(x) after [a, duplicate] = %v, want aax", rvals[2])
	}
}

func TestListAccessors(t *testing.T) {
	rvals := Replay([]Op{GetFirst(), Size(), Append("q"), GetFirst(), Size()})
	if rvals[0] != nil {
		t.Errorf("getFirst on empty = %v, want nil", rvals[0])
	}
	if !Equal(rvals[1], int64(0)) {
		t.Errorf("size on empty = %v, want 0", rvals[1])
	}
	if !Equal(rvals[3], "q") || !Equal(rvals[4], int64(1)) {
		t.Errorf("after append: getFirst=%v size=%v", rvals[3], rvals[4])
	}
}

func TestRegister(t *testing.T) {
	rvals := Replay([]Op{RegRead("r"), RegWrite("r", int64(3)), RegRead("r"), RegWrite("r", "s"), RegRead("r")})
	want := []Value{nil, int64(3), int64(3), "s", "s"}
	for i := range want {
		if !Equal(rvals[i], want[i]) {
			t.Errorf("rvals[%d] = %v, want %v", i, rvals[i], want[i])
		}
	}
}

func TestCounter(t *testing.T) {
	rvals := Replay([]Op{CtrGet("c"), Inc("c", 5), Inc("c", -2), CtrGet("c")})
	want := []Value{int64(0), int64(5), int64(3), int64(3)}
	for i := range want {
		if !Equal(rvals[i], want[i]) {
			t.Errorf("rvals[%d] = %v, want %v", i, rvals[i], want[i])
		}
	}
}

func TestKVPutIfAbsent(t *testing.T) {
	rvals := Replay([]Op{
		PutIfAbsent("k", "v1"), // true
		PutIfAbsent("k", "v2"), // false
		Get("k"),               // v1
		Del("k"),               // v1
		Get("k"),               // nil
		PutIfAbsent("k", "v3"), // true after delete
	})
	want := []Value{true, false, "v1", "v1", nil, true}
	for i := range want {
		if !Equal(rvals[i], want[i]) {
			t.Errorf("rvals[%d] = %v, want %v", i, rvals[i], want[i])
		}
	}
}

func TestKVCas(t *testing.T) {
	rvals := Replay([]Op{
		Put("k", int64(1)),
		Cas("k", int64(1), int64(2)), // true
		Cas("k", int64(1), int64(3)), // false
		Get("k"),                     // 2
		Cas("absent", nil, "init"),   // true: absent reads as nil
		Get("absent"),
	})
	want := []Value{int64(1), true, false, int64(2), true, "init"}
	for i := range want {
		if !Equal(rvals[i], want[i]) {
			t.Errorf("rvals[%d] = %v, want %v", i, rvals[i], want[i])
		}
	}
}

func TestSet(t *testing.T) {
	rvals := Replay([]Op{
		SetAdd("s", "b"),
		SetAdd("s", "a"),
		SetAdd("s", "a"),      // false, duplicate
		SetContains("s", "a"), // true
		SetElements("s"),      // sorted [a b]
		SetRemove("s", "a"),   // true
		SetRemove("s", "a"),   // false
		SetContains("s", "a"), // false
	})
	want := []Value{true, true, false, true, []Value{"a", "b"}, true, false, false}
	for i := range want {
		if !Equal(rvals[i], want[i]) {
			t.Errorf("rvals[%d] = %v, want %v", i, rvals[i], want[i])
		}
	}
}

func TestBank(t *testing.T) {
	rvals := Replay([]Op{
		Deposit("alice", 100),
		Withdraw("alice", 30),  // 70
		Withdraw("alice", 100), // nil: insufficient
		Transfer("alice", "bob", 50),
		Balance("alice"),             // 20
		Balance("bob"),               // 50
		Transfer("alice", "bob", 21), // false
	})
	want := []Value{int64(100), int64(70), nil, true, int64(20), int64(50), false}
	for i := range want {
		if !Equal(rvals[i], want[i]) {
			t.Errorf("rvals[%d] = %v, want %v", i, rvals[i], want[i])
		}
	}
}

func TestMeetingRoomMergeProcedure(t *testing.T) {
	rvals := Replay([]Op{
		Reserve("atrium", "9am", "ann", "10am", "11am"),
		Reserve("atrium", "9am", "bob", "10am", "11am"), // falls to 10am
		Reserve("atrium", "9am", "cyn"),                 // no alternates: nil
		Schedule("atrium", "9am", "10am", "11am"),
		Cancel("atrium", "9am", "bob"), // false: ann holds it
		Cancel("atrium", "9am", "ann"), // true
		Reserve("atrium", "9am", "cyn"),
	})
	want := []Value{
		"9am", "10am", nil,
		[]Value{"10am=bob", "9am=ann"},
		false, true, "9am",
	}
	for i := range want {
		if !Equal(rvals[i], want[i]) {
			t.Errorf("rvals[%d] = %v, want %v", i, rvals[i], want[i])
		}
	}
}

func TestReadOnlyFlags(t *testing.T) {
	ro := []Op{ListRead(), GetFirst(), Size(), RegRead("r"), CtrGet("c"), Get("k"), SetContains("s", "x"), SetElements("s"), Balance("a"), Schedule("r", "s")}
	for _, o := range ro {
		if !o.ReadOnly() {
			t.Errorf("%s must be read-only", o.Name())
		}
	}
	upd := []Op{Append("x"), Duplicate(), RegWrite("r", int64(1)), Inc("c", 1), Put("k", "v"), Del("k"), PutIfAbsent("k", "v"), Cas("k", nil, "v"), SetAdd("s", "x"), SetRemove("s", "x"), Deposit("a", 1), Withdraw("a", 1), Transfer("a", "b", 1), Reserve("r", "s", "w"), Cancel("r", "s", "w")}
	for _, o := range upd {
		if o.ReadOnly() {
			t.Errorf("%s must be updating", o.Name())
		}
	}
}

// randomOps builds a deterministic pseudo-random op sequence mixing all data
// types, for property tests.
func randomOps(r *rand.Rand, n int) []Op {
	elems := []string{"a", "b", "c", "d"}
	keys := []string{"k1", "k2"}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		switch r.Intn(10) {
		case 0:
			ops = append(ops, Append(elems[r.Intn(len(elems))]))
		case 1:
			ops = append(ops, Duplicate())
		case 2:
			ops = append(ops, ListRead())
		case 3:
			ops = append(ops, Inc("c", int64(r.Intn(5))-2))
		case 4:
			ops = append(ops, Put(keys[r.Intn(len(keys))], int64(r.Intn(10))))
		case 5:
			ops = append(ops, PutIfAbsent(keys[r.Intn(len(keys))], "v"))
		case 6:
			ops = append(ops, SetAdd("s", elems[r.Intn(len(elems))]))
		case 7:
			ops = append(ops, SetRemove("s", elems[r.Intn(len(elems))]))
		case 8:
			ops = append(ops, Deposit("acct", int64(r.Intn(20))))
		default:
			ops = append(ops, Withdraw("acct", int64(r.Intn(20))))
		}
	}
	return ops
}

func TestReplayDeterministicProperty(t *testing.T) {
	// Property: replaying the same operation sequence twice yields
	// identical responses — operations must be deterministic.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		ops := randomOps(rand.New(rand.NewSource(seed)), n)
		a, b := Replay(ops), Replay(ops)
		for i := range a {
			if !Equal(a[i], b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEvalIgnoresReadOnlyContextProperty(t *testing.T) {
	// Property (the read-only axiom of §3.4): removing a read-only
	// operation from the context never changes F(op, C).
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		r := rand.New(rand.NewSource(seed))
		ops := randomOps(r, n)
		probe := ListRead()
		base := Eval(ops, probe)
		for i, o := range ops {
			if !o.ReadOnly() {
				continue
			}
			reduced := append(append([]Op{}, ops[:i]...), ops[i+1:]...)
			if !Equal(Eval(reduced, probe), base) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEvalPrefixConsistencyProperty(t *testing.T) {
	// Property: Eval over a context equals replaying the context and
	// reading the final response — i.e., Replay and Eval agree.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		ops := randomOps(rand.New(rand.NewSource(seed)), n)
		rvals := Replay(ops)
		last := ops[n-1]
		return Equal(Eval(ops[:n-1], last), rvals[n-1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOpNames(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Append("x"), "append(x)"},
		{Duplicate(), "duplicate()"},
		{ListRead(), "read()"},
		{RegWrite("r", int64(3)), "write(r,i3)"},
		{PutIfAbsent("k", "v"), `putIfAbsent(k,"v")`},
		{Reserve("atrium", "9am", "ann"), "reserve(atrium,9am,ann)"},
	}
	for _, c := range cases {
		if got := c.op.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestEditorBasics(t *testing.T) {
	rvals := Replay([]Op{
		Insert("d", 0, "world"),
		Insert("d", 0, "hello "),
		Insert("d", 99, "!"), // clamped to the end
		Delete("d", 0, 6),
		DocRead("d"),
	})
	want := []Value{"world", "hello world", "hello world!", "world!", "world!"}
	for i := range want {
		if !Equal(rvals[i], want[i]) {
			t.Errorf("rvals[%d] = %v, want %v", i, rvals[i], want[i])
		}
	}
}

func TestEditorClamping(t *testing.T) {
	rvals := Replay([]Op{
		Insert("d", -5, "a"), // clamped to 0
		Delete("d", -2, 100), // clamped range deletes everything
		Insert("d", 0, "xy"),
		Delete("d", 1, -3), // negative count deletes nothing
	})
	want := []Value{"a", "", "xy", "xy"}
	for i := range want {
		if !Equal(rvals[i], want[i]) {
			t.Errorf("rvals[%d] = %v, want %v", i, rvals[i], want[i])
		}
	}
}

func TestEditorOrderSensitivity(t *testing.T) {
	// An insert and a delete land differently under the two orders — the
	// "arbitrarily complex semantics" that make reordering observable.
	a := Insert("d", 0, "A")
	b := Delete("d", 0, 1)
	ab := Replay([]Op{a, b})
	ba := Replay([]Op{b, a})
	if Equal(ab[1], ba[1]) {
		t.Errorf("orders must differ: %v vs %v", ab[1], ba[1])
	}
}

func TestCheckpointRestoreDetached(t *testing.T) {
	db := map[string]Value{"k": []Value{"a", int64(1)}, "n": int64(7)}
	img := Checkpoint(db)
	db["k"].([]Value)[0] = "mutated"
	db["n"] = int64(8)
	if !Equal(img["k"], []Value{"a", int64(1)}) || !Equal(img["n"], int64(7)) {
		t.Fatalf("image shares structure with the live db: %v", img)
	}
	back := Restore(img)
	back["k"].([]Value)[1] = int64(99)
	if !Equal(img["k"], []Value{"a", int64(1)}) {
		t.Fatalf("restored db shares structure with the image: %v", img["k"])
	}
}
