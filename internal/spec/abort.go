package spec

// Transaction abort marker.
//
// A multi-op transaction (internal/txn) that fails one of its Require
// preconditions returns this reserved value instead of its per-step results
// and performs no writes. The marker lives in spec — not in the txn package —
// so that the layers below the façade (core's transition stream, the
// recorder's terminal-status logic, the checkers' replay) can recognize an
// aborted execution without importing the transaction machinery: to them an
// abort is just a distinguished response value of an otherwise ordinary
// operation.
//
// The shape is a []Value whose first element is an out-of-band tag string;
// no catalog operation produces a list starting with that tag, so the marker
// can never collide with a legitimate response. Like every Value it survives
// Encode/Equal canonically and travels over the wire with the shapes already
// registered by the socket transport.

// abortTag is the reserved first element of an abort marker value. The NUL
// byte keeps it out of the space of human-chosen strings.
const abortTag = "\x00bayou/txn-abort"

// Aborted returns the abort marker recording that the precondition at step
// (0-based position in the transaction's op list) failed.
func Aborted(step int) Value {
	return []Value{abortTag, int64(step)}
}

// IsAborted reports whether v is a transaction abort marker.
func IsAborted(v Value) bool {
	_, ok := AbortStep(v)
	return ok
}

// AbortStep returns the failing step index carried by an abort marker, and
// whether v is one.
func AbortStep(v Value) (int, bool) {
	s, ok := v.([]Value)
	if !ok || len(s) != 2 {
		return 0, false
	}
	tag, ok := s[0].(string)
	if !ok || tag != abortTag {
		return 0, false
	}
	switch n := s[1].(type) {
	case int64:
		return int(n), true
	case int:
		return n, true
	}
	return 0, false
}
