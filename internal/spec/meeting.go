package spec

import "sort"

// The meeting-room calendar: the motivating application of the original
// Bayou paper (reference [11]). Reservation requests carry alternate slots;
// when the preferred slot is taken, the operation falls back to the first
// free alternate. This emulates Bayou's dependency checks and merge
// procedures at the level of the operation specification, exactly as §2.1
// says one can ("dependency checks and merge procedures can be emulated on
// the level of operation specification").

const roomPrefix = "room/"

// ReserveOp books a slot in Room for Who. Slot is the preferred slot;
// Alternates are tried in order when Slot (or an earlier alternate) is
// taken. The response is the granted slot name, or nil when every candidate
// was taken — so a weak invocation's tentative grant can differ from the
// final grant after commit, the original Bayou's signature behaviour.
type ReserveOp struct {
	Room       string
	Slot       string
	Who        string
	Alternates []string
}

// Reserve constructs a reserve(room, slot, who, alternates...) operation.
func Reserve(room, slot, who string, alternates ...string) ReserveOp {
	return ReserveOp{Room: room, Slot: slot, Who: who, Alternates: alternates}
}

// Name implements Op.
func (o ReserveOp) Name() string {
	return "reserve(" + o.Room + "," + o.Slot + "," + o.Who + ")"
}

// ReadOnly implements Op.
func (ReserveOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o ReserveOp) Apply(tx Tx) Value {
	candidates := append([]string{o.Slot}, o.Alternates...)
	for _, slot := range candidates {
		key := roomPrefix + o.Room + "/" + slot
		if tx.Read(key) == nil {
			tx.Write(key, o.Who)
			return slot
		}
	}
	return nil
}

// CancelOp releases Room/Slot when held by Who; returns true when released.
type CancelOp struct {
	Room string
	Slot string
	Who  string
}

// Cancel constructs a cancel(room, slot, who) operation.
func Cancel(room, slot, who string) CancelOp { return CancelOp{Room: room, Slot: slot, Who: who} }

// Name implements Op.
func (o CancelOp) Name() string {
	return "cancel(" + o.Room + "," + o.Slot + "," + o.Who + ")"
}

// ReadOnly implements Op.
func (CancelOp) ReadOnly() bool { return false }

// Apply implements Op.
func (o CancelOp) Apply(tx Tx) Value {
	key := roomPrefix + o.Room + "/" + o.Slot
	if !Equal(tx.Read(key), o.Who) {
		return false
	}
	tx.Write(key, nil)
	return true
}

// ScheduleOp lists the bookings of Room as sorted "slot=who" strings. The
// slot universe must be supplied because the register model has no key scan.
type ScheduleOp struct {
	Room  string
	Slots []string
}

// Schedule constructs a schedule(room) read over the given slot universe.
func Schedule(room string, slots ...string) ScheduleOp {
	return ScheduleOp{Room: room, Slots: slots}
}

// Name implements Op.
func (o ScheduleOp) Name() string { return "schedule(" + o.Room + ")" }

// ReadOnly implements Op.
func (ScheduleOp) ReadOnly() bool { return true }

// Apply implements Op.
func (o ScheduleOp) Apply(tx Tx) Value {
	var out []Value
	slots := append([]string(nil), o.Slots...)
	sort.Strings(slots)
	for _, slot := range slots {
		who := tx.Read(roomPrefix + o.Room + "/" + slot)
		if who != nil {
			if w, ok := who.(string); ok {
				out = append(out, Value(slot+"="+w))
			}
		}
	}
	return out
}
