package traceviz

import (
	"strings"
	"testing"

	"bayou/internal/core"
	"bayou/internal/history"
	"bayou/internal/spec"
)

func sample(t *testing.T) *history.History {
	t.Helper()
	events := []*history.Event{
		{
			Session: 0, Op: spec.Append("a"), Level: core.Weak, RVal: "a",
			Invoke: 1, Return: 2, WallInvoke: 10, WallReturn: 11,
			Dot: core.Dot{Replica: 0, EventNo: 1}, Timestamp: 10, TOBCast: true, TOBNo: 1,
		},
		{
			Session: 1, Op: spec.Duplicate(), Level: core.Strong,
			Invoke: 3, WallInvoke: 15, Pending: true,
			Dot: core.Dot{Replica: 1, EventNo: 1}, Timestamp: 15, TOBCast: true, TOBNo: -1,
			Trace: []core.Dot{{Replica: 0, EventNo: 1}},
		},
	}
	h, err := history.New(events, 0)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTimelineRendersAllEvents(t *testing.T) {
	out := Timeline(sample(t))
	for _, want := range []string{"append(a)", "duplicate()", "tob#1", "pending", `"a"`, "∇"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestLanesOnePerReplica(t *testing.T) {
	out := Lanes(sample(t))
	if !strings.Contains(out, "S0 |") || !strings.Contains(out, "S1 |") {
		t.Errorf("lanes missing sessions:\n%s", out)
	}
	if strings.Index(out, "S0") > strings.Index(out, "S1") {
		t.Error("lanes must be sorted by session")
	}
}

func TestPerceivedOrder(t *testing.T) {
	h := sample(t)
	out := PerceivedOrder(h, core.Dot{Replica: 1, EventNo: 1})
	if !strings.Contains(out, "perceived") || !strings.Contains(out, "r0#1") {
		t.Errorf("perceived order missing content:\n%s", out)
	}
	if got := PerceivedOrder(h, core.Dot{Replica: 9, EventNo: 9}); !strings.Contains(got, "no event") {
		t.Errorf("missing-event message: %s", got)
	}
}

func TestClip(t *testing.T) {
	if clip("short", 10) != "short" {
		t.Error("clip must not touch short strings")
	}
	if got := clip("averyverylongname", 8); len(got) > 10 { // clipped + ellipsis rune
		t.Errorf("clip failed: %q", got)
	}
}
