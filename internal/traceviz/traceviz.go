// Package traceviz renders recorded histories as human-readable timelines in
// the spirit of Figures 1 and 2 of the paper: one lane per session, each
// invocation annotated with its level, return value, tentative/stable
// status, and final commit position.
package traceviz

import (
	"fmt"
	"sort"
	"strings"

	"bayou/internal/core"
	"bayou/internal/history"
	"bayou/internal/spec"
)

// Timeline renders the history as a chronological event table.
func Timeline(h *history.History) string {
	events := append([]*history.Event(nil), h.Events...)
	sort.Slice(events, func(i, j int) bool { return events[i].Invoke < events[j].Invoke })
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-4s %-7s %-28s %-18s %-10s %s\n",
		"t", "sess", "level", "operation", "rval", "status", "commit")
	for _, e := range events {
		status := "tentative"
		commit := "-"
		if e.Pending {
			status = "pending"
		}
		if e.TOBNo > 0 {
			commit = fmt.Sprintf("tob#%d", e.TOBNo)
		}
		rval := "∇"
		if !e.Pending {
			rval = spec.Encode(e.RVal)
			if e.Level == core.Strong {
				status = "stable"
			}
		}
		fmt.Fprintf(&b, "%-8d S%-3d %-7s %-28s %-18s %-10s %s\n",
			e.WallInvoke, e.Session, e.Level, clip(e.Op.Name(), 28), clip(rval, 18), status, commit)
	}
	return b.String()
}

// Lanes renders per-replica lanes with invocation and response markers,
// closest in spirit to the figures.
func Lanes(h *history.History) string {
	bySession := make(map[core.SessionID][]*history.Event)
	var sessions []core.SessionID
	for _, e := range h.Events {
		if _, ok := bySession[e.Session]; !ok {
			sessions = append(sessions, e.Session)
		}
		bySession[e.Session] = append(bySession[e.Session], e)
	}
	sort.Slice(sessions, func(i, j int) bool { return sessions[i] < sessions[j] })
	var b strings.Builder
	for _, s := range sessions {
		evs := bySession[s]
		sort.Slice(evs, func(i, j int) bool { return evs[i].Invoke < evs[j].Invoke })
		fmt.Fprintf(&b, "S%d |", s)
		for _, e := range evs {
			rval := "∇"
			if !e.Pending {
				rval = spec.Encode(e.RVal)
			}
			fmt.Fprintf(&b, "  %s→%s", e.Op.Name(), rval)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PerceivedOrder renders one event's perceived execution order (its exec
// trace) against the final commit order — the visual essence of temporary
// operation reordering.
func PerceivedOrder(h *history.History, d core.Dot) string {
	e := h.ByDot(d)
	if e == nil {
		return fmt.Sprintf("no event %s", d)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "event %s (%s):\n  perceived: ", d, e.Op.Name())
	for _, x := range e.Trace {
		fmt.Fprintf(&b, "%s ", x)
	}
	fmt.Fprintf(&b, "\n  committed: ")
	committed := append([]*history.Event(nil), h.Events...)
	sort.Slice(committed, func(i, j int) bool { return committed[i].TOBNo < committed[j].TOBNo })
	for _, x := range committed {
		if x.TOBNo > 0 {
			fmt.Fprintf(&b, "%s ", x.Dot)
		}
	}
	b.WriteString("\n")
	return b.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
