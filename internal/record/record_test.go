package record

import (
	"context"
	"sync"
	"testing"
	"time"

	"bayou/internal/core"
	"bayou/internal/spec"
)

func dot(r core.ReplicaID, n int64) core.Dot { return core.Dot{Replica: r, EventNo: n} }

func resp(d core.Dot, op spec.Op, v spec.Value, committed bool) core.Response {
	return core.Response{Req: core.Req{Dot: d, Op: op}, Value: v, Committed: committed}
}

func TestSessionBusyAndHistoryKeying(t *testing.T) {
	r := New()
	d1, d2 := dot(0, 1), dot(0, 2)
	// Two sessions on the same replica: each keys its own history lane.
	r.Invoked(5, d1, spec.Append("a"), core.Weak, 1, true, 10)
	if !r.SessionBusy(5) {
		t.Error("session 5 must be busy while its call pends")
	}
	if r.SessionBusy(6) {
		t.Error("session 6 has no calls and cannot be busy")
	}
	r.Invoked(6, d2, spec.Append("b"), core.Weak, 2, true, 11)
	r.Responded(resp(d1, spec.Append("a"), "a", false), 12)
	if r.SessionBusy(5) {
		t.Error("session 5 must be free after its response")
	}
	r.Responded(resp(d2, spec.Append("b"), "b", false), 13)
	h, err := r.History()
	if err != nil {
		t.Fatal(err)
	}
	if h.Events[0].Session != 5 || h.Events[1].Session != 6 {
		t.Errorf("history sessions = %d, %d, want 5, 6", h.Events[0].Session, h.Events[1].Session)
	}
	if r.TOBCastCount() != 2 {
		t.Errorf("TOBCastCount = %d, want 2", r.TOBCastCount())
	}
}

func TestNoSessionInvocationsAreNotRecorded(t *testing.T) {
	r := New()
	if call := r.Invoked(core.NoSession, dot(0, 1), spec.Append("x"), core.Weak, 1, false, 0); call != nil {
		t.Fatal("NoSession invocations must not produce call handles")
	}
	if got := len(r.Calls()); got != 0 {
		t.Errorf("recorded %d calls, want 0", got)
	}
}

func TestCallLifecycleWeakUpdate(t *testing.T) {
	r := New()
	d := dot(1, 1)
	op := spec.Append("v")
	call := r.Invoked(3, d, op, core.Weak, 1, true, 0)
	if call.Terminal() {
		t.Fatal("fresh call cannot be terminal")
	}
	r.Transition(core.Transition{Dot: d, Session: 3, Status: core.StatusTentative, Value: "v"}, 1)
	r.Responded(resp(d, op, "v", false), 1)
	if !call.Done() || call.Terminal() {
		t.Fatal("weak update must be done but not terminal before its stable notice")
	}
	r.Transition(core.Transition{Dot: d, Session: 3, Status: core.StatusReordered, Value: "uv"}, 2)
	r.Transition(core.Transition{Dot: d, Session: 3, Status: core.StatusCommitted, Value: "uv"}, 3)
	r.StableNoticed(resp(d, op, "uv", true), 3)
	if !call.Terminal() {
		t.Fatal("stable notice must make the call terminal")
	}
	stable, ok := call.Stable()
	if !ok || !spec.Equal(stable.Value, "uv") {
		t.Fatalf("stable = %v, %v", stable, ok)
	}
	got := call.Fluctuations()
	want := []core.Status{core.StatusTentative, core.StatusReordered, core.StatusCommitted}
	if len(got) != len(want) {
		t.Fatalf("fluctuations = %+v, want %d updates", got, len(want))
	}
	for i, u := range got {
		if u.Status != want[i] {
			t.Errorf("fluctuations[%d].Status = %v, want %v", i, u.Status, want[i])
		}
	}
}

// TestUpdatesSubscriptionReplaysAndCloses: a late subscriber sees the whole
// log; the channel closes at terminal.
func TestUpdatesSubscriptionReplaysAndCloses(t *testing.T) {
	r := New()
	d := dot(0, 1)
	op := spec.Append("x")
	call := r.Invoked(2, d, op, core.Weak, 1, true, 0)
	r.Transition(core.Transition{Dot: d, Status: core.StatusTentative, Value: "x"}, 1)
	r.Responded(resp(d, op, "x", false), 1)

	early := call.Updates() // subscribed mid-lifecycle
	r.Transition(core.Transition{Dot: d, Status: core.StatusCommitted, Value: "x"}, 2)
	r.StableNoticed(resp(d, op, "x", true), 2)
	late := call.Updates() // subscribed after terminal: pure replay

	for name, ch := range map[string]<-chan Update{"early": early, "late": late} {
		var got []Update
		deadline := time.After(5 * time.Second)
		for {
			select {
			case u, ok := <-ch:
				if !ok {
					goto drained
				}
				got = append(got, u)
			case <-deadline:
				t.Fatalf("%s subscription never closed", name)
			}
		}
	drained:
		if len(got) != 2 || got[0].Status != core.StatusTentative || got[1].Status != core.StatusCommitted {
			t.Errorf("%s subscription = %+v", name, got)
		}
	}
}

// TestStrongAndReadOnlyTerminality: a committed response and a never-cast
// response are terminal at once — nothing further can arrive.
func TestStrongAndReadOnlyTerminality(t *testing.T) {
	r := New()
	strongDot, roDot := dot(0, 1), dot(0, 2)
	strong := r.Invoked(1, strongDot, spec.Append("s"), core.Strong, 1, true, 0)
	r.Responded(resp(strongDot, spec.Append("s"), "s", true), 1)
	if !strong.Terminal() {
		t.Error("committed strong response must be terminal")
	}
	ro := r.Invoked(2, roDot, spec.ListRead(), core.Weak, 2, false, 0)
	r.Responded(resp(roDot, spec.ListRead(), "s", false), 2)
	if !ro.Terminal() {
		t.Error("never-TOB-cast weak read must be terminal at its response")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := ro.WaitTerminal(ctx); err != nil {
		t.Errorf("WaitTerminal on a terminal call must return: %v", err)
	}
}

// TestConcurrentPublishAndSubscribe exercises the subscription machinery
// under the race detector: one goroutine publishes transitions while others
// subscribe and drain.
func TestConcurrentPublishAndSubscribe(t *testing.T) {
	r := New()
	d := dot(0, 1)
	op := spec.Append("x")
	call := r.Invoked(1, d, op, core.Weak, 1, true, 0)

	const updates = 100
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for range call.Updates() {
				n++
			}
			if n == 0 {
				t.Error("subscriber saw no updates")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Transition(core.Transition{Dot: d, Status: core.StatusTentative, Value: int64(0)}, 0)
		r.Responded(resp(d, op, int64(0), false), 0)
		for i := 1; i < updates; i++ {
			r.Transition(core.Transition{Dot: d, Status: core.StatusReordered, Value: int64(i)}, int64(i))
		}
		r.Transition(core.Transition{Dot: d, Status: core.StatusCommitted, Value: int64(updates)}, updates)
		r.StableNoticed(resp(d, op, int64(updates), true), updates)
	}()
	wg.Wait()
}

// TestHistorySnapshotWhileResponding: History() must hand out snapshots,
// not live event records — assembling a history (and reading it) while
// responses keep landing is exactly what the live driver does.
func TestHistorySnapshotWhileResponding(t *testing.T) {
	r := New()
	const n = 200
	ops := make([]core.Dot, n)
	for i := range ops {
		ops[i] = dot(0, int64(i+1))
		r.Invoked(core.SessionID(i), ops[i], spec.Append("x"), core.Weak, int64(i), true, int64(i))
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, d := range ops {
			r.Responded(resp(d, spec.Append("x"), "x", false), 1)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			h, err := r.History()
			if err != nil {
				t.Error(err)
				return
			}
			for _, e := range h.Events {
				_ = e.Pending
				_ = e.RVal
			}
		}
	}()
	wg.Wait()
}

// --- session-guarantee table ------------------------------------------------

func TestGuaranteeVectorsAndDemands(t *testing.T) {
	r := New()
	r.SetGuarantees(7, core.ReadYourWrites|core.MonotonicReads, core.WaitForCoverage)
	if g, mode := r.Guarantees(7); g != core.ReadYourWrites|core.MonotonicReads || mode != core.WaitForCoverage {
		t.Fatalf("Guarantees(7) = %v, %v", g, mode)
	}
	if g, _, busy := r.SessionGate(7); g == 0 || busy {
		t.Fatalf("gate = %v busy=%v", g, busy)
	}

	// A write enters the write vector (→ read demand under RYW).
	d1 := dot(0, 1)
	r.Invoked(7, d1, spec.Append("a"), core.Weak, 10, true, 1)
	read, write, fence := r.Demands(7, true)
	if len(read.Frontier) != 1 || read.Frontier[0] != d1 || fence != 10 {
		t.Fatalf("read demand %+v fence %d, want [%s] 10", read, fence, d1)
	}
	if !write.Empty() {
		t.Fatalf("write demand %+v, want empty (no MW/WFR)", write)
	}

	// The response's trace feeds the read vector (updating dots only).
	other := dot(1, 1)
	r.Invoked(8, other, spec.Append("b"), core.Weak, 5, true, 2)
	ro := dot(1, 2)
	r.Invoked(8, ro, spec.ListRead(), core.Weak, 6, false, 3)
	r.Responded(core.Response{
		Req: core.Req{Dot: d1, Op: spec.Append("a")}, Value: "a",
		Trace: []core.Dot{other, ro},
	}, 4)
	read, _, _ = r.Demands(7, false)
	found := map[core.Dot]bool{}
	for _, d := range read.Frontier {
		found[d] = true
	}
	if !found[d1] || !found[other] {
		t.Fatalf("read demand lost dots: %+v", read)
	}
	if found[ro] {
		t.Fatal("read-only dots must never be demanded")
	}

	// A commit collapses the demand into the watermark.
	r.TOBDelivered(d1, 1)
	r.TOBDelivered(other, 2)
	read, _, _ = r.Demands(7, false)
	if read.CommitLen != 2 || len(read.Frontier) != 0 {
		t.Fatalf("compacted read demand %+v, want watermark 2", read)
	}
}

func TestPendingInvokeLifecycle(t *testing.T) {
	r := New()
	r.SetGuarantees(3, core.Causal, core.WaitForCoverage)
	call, err := r.PendingInvoke(3, spec.Append("x"), core.Weak, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.SessionBusy(3) {
		t.Error("a pending invoke must mark the session busy")
	}
	if (call.Dot() != core.Dot{}) {
		t.Error("pending calls have no dot yet")
	}
	if _, err := r.PendingInvoke(3, spec.Append("y"), core.Weak, 2); err == nil {
		t.Error("a second pending invoke on the session must be rejected")
	}
	if got := len(r.Calls()); got != 1 {
		t.Fatalf("pending call must be listed, got %d", got)
	}

	d := dot(2, 1)
	r.CompleteInvoke(call, d, 42, true, 9)
	if !r.SessionBusy(3) {
		t.Error("session stays busy until the response")
	}
	if call.Dot() != d {
		t.Errorf("bound dot = %s, want %s", call.Dot(), d)
	}
	if r.Call(d) != call {
		t.Error("completed call must be indexed by dot")
	}
	r.Responded(resp(d, spec.Append("x"), "x", false), 10)
	if r.SessionBusy(3) {
		t.Error("session must be free after the response")
	}
	h, err := r.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Events) != 1 || h.Events[0].Guarantees != core.Causal {
		t.Fatalf("history events %+v must carry the guarantee mask", h.Events)
	}
	// The session's own write entered its write vector after the demand
	// snapshot: the recorded demand excludes the event's own dot.
	if len(h.Events[0].ReadVec.Frontier) != 0 {
		t.Errorf("first event's demand must be empty, got %+v", h.Events[0].ReadVec)
	}
	read, _, _ := r.Demands(3, true)
	if len(read.Frontier) != 1 || read.Frontier[0] != d {
		t.Errorf("write vector must hold the completed dot: %+v", read)
	}
}

func TestCancelInvokeReleasesSession(t *testing.T) {
	r := New()
	r.SetGuarantees(4, core.ReadYourWrites, core.FailFast)
	call, err := r.PendingInvoke(4, spec.Append("x"), core.Weak, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.CancelInvoke(call)
	if r.SessionBusy(4) {
		t.Error("cancel must release the busy mark")
	}
	if got := len(r.Calls()); got != 0 {
		t.Errorf("cancelled call must be delisted, got %d", got)
	}
	if _, err := r.PendingInvoke(4, spec.Append("y"), core.Weak, 2); err != nil {
		t.Errorf("session must accept a retry after cancel: %v", err)
	}
}
