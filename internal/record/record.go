// Package record is the driver-neutral observation layer of the deployment:
// it accumulates the observable history of a run (events keyed by *session*,
// exactly the ß equivalence classes of §3.2) together with the run witnesses
// the checkers consume, and it owns the client-facing Call handle with its
// response-status subscription stream.
//
// Both deployment drivers — the deterministic simulator (internal/cluster)
// and the goroutine-per-replica live driver (internal/livenet) — feed the
// same Recorder, which is what makes histories, checker verdicts and watch
// streams comparable across substrates. The Recorder and Call are safe for
// concurrent use; the single-threaded simulator pays only uncontended locks.
package record

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"bayou/internal/core"
	"bayou/internal/history"
	"bayou/internal/spec"
)

// ErrSessionBusy reports an invocation on a session whose previous operation
// has not yet returned. Well-formed histories (§3.2) require sessions to be
// sequential: a client blocked on a strong operation cannot issue more work.
var ErrSessionBusy = errors.New("record: session awaiting a response")

// ErrGuarantee reports an invocation rejected under GuaranteeMode FailFast:
// the serving replica cannot yet cover the session's guarantee vectors.
var ErrGuarantee = errors.New("record: session guarantee not yet satisfiable at this replica")

// Update is one response-status event delivered on a watch stream: the
// status the call's response transitioned to, the response value at that
// moment, and the driver's wall time of the transition.
type Update struct {
	Status core.Status
	Value  spec.Value
	Wall   int64
}

// Call is a client's handle on one invocation. It fills in as the deployment
// makes progress: Done/Response when the (tentative or stable) response
// arrives, Stable when a weak update's final value is notified (footnote 3
// of the paper), and Updates streams every status transition in between —
// the observable fluctuation that FEC formalizes.
type Call struct {
	dot     core.Dot
	session core.SessionID
	op      spec.Op
	level   core.Level
	tobCast bool

	// Frozen demand-vector witnesses (FreezeDemands): the coverage the
	// serving replica will actually enforce for this invocation, captured at
	// submission while the session's busy mark already held the vectors
	// still. CompleteInvoke attaches these to the history event, so the
	// Coverage checker verifies exactly what was enforced — re-deriving the
	// demand at acceptance could compact a frontier dot into a committed
	// watermark the replica never checked (a commit landing between
	// submission and acceptance) and report a phantom violation.
	frozen      bool
	frozenRead  core.Vec
	frozenWrite core.Vec

	mu         sync.Mutex
	done       bool          // guarded by mu
	lost       bool          // guarded by mu
	resp       core.Response // guarded by mu
	wallInvoke int64         // guarded by mu
	wallReturn int64         // guarded by mu
	stableDone bool          // guarded by mu
	stableResp core.Response // guarded by mu
	wallStable int64         // guarded by mu
	terminal   bool          // guarded by mu
	doneCh     chan struct{} // set at construction; closed under mu, received lock-free
	termCh     chan struct{} // set at construction; closed under mu, received lock-free
	log        []Update      // guarded by mu
	subs       []*sub        // guarded by mu
}

// Dot returns the request identifier (the zero Dot while the invocation is
// still parked on a coverage gate — the dot is minted when the serving
// replica accepts it).
func (c *Call) Dot() core.Dot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dot
}

// Session returns the issuing session.
func (c *Call) Session() core.SessionID { return c.session }

// Op returns the invoked operation.
func (c *Call) Op() spec.Op { return c.op }

// Level returns the invocation's consistency level.
func (c *Call) Level() core.Level { return c.level }

// Done reports whether the call has completed — with a response, or as a
// lost result (see Lost).
func (c *Call) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done
}

// Lost reports whether the call completed as a lost result: the operation
// committed — it is part of the final order and of every replica's state —
// but its return value was never computed, because the invoked replica was
// down when the commit happened and caught up by checkpoint state transfer
// instead of per-slot replay. Response() stays zero on a lost call.
func (c *Call) Lost() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lost
}

// Response returns the response (the zero Response while !Done). For weak
// operations this is the first, tentative value; Stable carries the final
// one once established.
func (c *Call) Response() core.Response {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resp
}

// Value is shorthand for Response().Value.
func (c *Call) Value() spec.Value { return c.Response().Value }

// Stable returns the stable (committed-order) response and whether it has
// arrived. For strong operations the first response is already stable;
// for weak updating operations it is the optional notification of the
// original Bayou; weak read-only operations never stabilize.
func (c *Call) Stable() (core.Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stableDone {
		return c.stableResp, true
	}
	if c.done && c.resp.Committed {
		return c.resp, true
	}
	return core.Response{}, false
}

// Aborted reports whether the call is a transaction that reached its fixed
// (committed-order) position with a failed precondition: the stable value
// is the spec abort marker and the unit wrote nothing. While only a
// tentative value has aborted this still reports false — a rebase may yet
// move the txn before the conflicting op and commit it successfully, and
// vice versa. Lost calls report false: their value was never computed.
func (c *Call) Aborted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lost {
		return false
	}
	if c.stableDone {
		return spec.IsAborted(c.stableResp.Value)
	}
	return c.done && c.resp.Committed && spec.IsAborted(c.resp.Value)
}

// WallInvoke returns the driver wall time of the invocation.
func (c *Call) WallInvoke() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wallInvoke
}

// WallReturn returns the driver wall time of the response (0 while pending).
func (c *Call) WallReturn() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wallReturn
}

// WallStable returns the driver wall time of the stable notice (0 if none).
func (c *Call) WallStable() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wallStable
}

// Terminal reports whether the call can produce no further updates: its
// response is committed (or it never entered consensus and has returned).
func (c *Call) Terminal() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.terminal
}

// Fluctuations returns a snapshot of every status transition recorded so
// far, in order. On a terminal call this is the complete lifecycle.
func (c *Call) Fluctuations() []Update {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Update(nil), c.log...)
}

// WaitDone blocks until the response arrives or ctx is cancelled. It is the
// waiting primitive of drivers that make progress in the background; on the
// deterministic simulator nothing advances while the caller blocks, so the
// façade routes Wait through the driver instead.
func (c *Call) WaitDone(ctx context.Context) error {
	select {
	case <-c.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WaitTerminal blocks until the call is terminal or ctx is cancelled.
func (c *Call) WaitTerminal(ctx context.Context) error {
	select {
	case <-c.termCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Updates subscribes to the call's status transitions. Every transition
// recorded so far is replayed first, then live ones are delivered in order;
// the channel is closed once the call is terminal and all updates have been
// consumed. The stream is lossless — a slow consumer buffers, it does not
// drop — so the consumer must either drain the channel or the call must
// reach a terminal status, or the feeding goroutine is retained.
func (c *Call) Updates() <-chan Update {
	c.mu.Lock()
	s := &sub{notify: make(chan struct{}, 1), buf: append([]Update(nil), c.log...), done: c.terminal}
	if !c.terminal {
		c.subs = append(c.subs, s)
	}
	c.mu.Unlock()

	out := make(chan Update)
	go func() {
		defer close(out)
		for {
			s.mu.Lock()
			batch := s.buf
			s.buf = nil
			done := s.done
			s.mu.Unlock()
			for _, u := range batch {
				out <- u
			}
			if done {
				s.mu.Lock()
				more := len(s.buf) > 0
				s.mu.Unlock()
				if !more {
					return
				}
				continue
			}
			<-s.notify
		}
	}()
	return out
}

// sub is one Updates subscription: an unbounded buffer plus a wake-up edge.
type sub struct {
	mu     sync.Mutex
	buf    []Update // guarded by mu
	done   bool     // guarded by mu
	notify chan struct{}
}

func (s *sub) push(u Update) {
	s.mu.Lock()
	s.buf = append(s.buf, u)
	s.mu.Unlock()
	s.wake()
}

func (s *sub) finish() {
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
	s.wake()
}

func (s *sub) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// bind stamps a pending call with its minted dot (see CompleteInvoke).
func (c *Call) bind(d core.Dot, tobCast bool, wall int64) {
	c.mu.Lock()
	c.dot = d
	c.tobCast = tobCast
	c.wallInvoke = wall
	c.mu.Unlock()
}

// respond delivers the call's response.
func (c *Call) respond(resp core.Response, wall int64) {
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return
	}
	c.done = true
	c.resp = resp
	c.wallReturn = wall
	close(c.doneCh)
	// A committed response is final; a response that never entered TOB
	// (weak read-only under Algorithm 2) can never change either.
	if resp.Committed || !c.tobCast {
		c.setTerminalLocked()
	}
	c.mu.Unlock()
}

// stable delivers the stable notice of a weak updating operation.
func (c *Call) stable(resp core.Response, wall int64) {
	c.mu.Lock()
	if c.stableDone {
		c.mu.Unlock()
		return
	}
	c.stableDone = true
	c.stableResp = resp
	c.wallStable = wall
	c.setTerminalLocked()
	c.mu.Unlock()
}

// loseResult completes the call as a lost result (see Lost): the client
// unblocks and the call is terminal. A call that already returned a
// tentative value keeps it — what was lost then is only the stable notice.
func (c *Call) loseResult(wall int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.terminal {
		return
	}
	c.lost = true
	if !c.done {
		c.done = true
		c.wallReturn = wall
		close(c.doneCh)
	}
	c.setTerminalLocked()
}

// transition records a status update and fans it out to subscribers.
func (c *Call) transition(u Update) {
	c.mu.Lock()
	if c.terminal {
		c.mu.Unlock()
		return
	}
	c.log = append(c.log, u)
	subs := c.subs
	c.mu.Unlock()
	for _, s := range subs {
		s.push(u)
	}
}

// setTerminalLocked marks the call terminal and releases subscribers; the
// caller holds c.mu.
func (c *Call) setTerminalLocked() {
	if c.terminal {
		return
	}
	c.terminal = true
	close(c.termCh)
	for _, s := range c.subs {
		s.finish()
	}
	c.subs = nil
}

// Recorder accumulates the observable history and the run witnesses while a
// deployment executes. Invocation and response instants are stamped with a
// global logical sequence so that the rb relation is unambiguous even when
// several events share a driver instant.
type Recorder struct {
	mu       sync.Mutex
	seq      int64                             // guarded by mu
	stableAt int64                             // guarded by mu
	calls    map[core.Dot]*Call                // guarded by mu
	callList []*Call                           // guarded by mu
	events   map[core.Dot]*history.Event       // guarded by mu
	order    []core.Dot                        // guarded by mu
	tobNos   map[core.Dot]int64                // guarded by mu
	lastOf   map[core.SessionID]*history.Event // guarded by mu
	tobCast  int                               // guarded by mu

	// commitOrder indexes the shared committed prefix by TOB position
	// (commitOrder[i] committed at position i+1): every delivery lands here
	// before any response that could reference it, so a truncated response
	// trace — suffix plus an implicit prefix of TraceBase commits — can be
	// reconstructed exactly. commitMaxTS[i] is the running maximum
	// timestamp of the updating operations among the first i+1 commits (the
	// clock-fence part of absorbing a committed prefix into a read vector
	// in O(1)).
	commitOrder []core.Dot // guarded by mu
	commitMaxTS []int64    // guarded by mu

	// lost marks invocations completed as lost results: committed while
	// their replica was down and skipped by checkpoint state transfer, so
	// no response value exists. The history event stays pending (formally
	// the response never arrived) but the session is released.
	lost map[core.Dot]bool // guarded by mu

	// The session-guarantee table: read/write vectors ride here — on the
	// shared observation layer, not on Req — so both drivers enforce the
	// same coverage demands and a migrating session carries its vectors
	// with it for free. parked tracks un-minted invocations (coverage
	// gates) so SessionBusy covers them.
	guar   map[core.SessionID]*guarSession // guarded by mu
	parked map[core.SessionID]*Call        // guarded by mu

	// leaseTrack, when non-nil (EnableLeaseTracking), counts each session's
	// TOB-cast operations that have not yet been delivered, and the largest
	// delivery position among those that have — the serve gate for lease
	// reads: a local strong read at committed length L is session-safe iff
	// the session has nothing in flight and everything it cast sits at or
	// below L. Nil when leases are off, so the weak hot path pays nothing.
	leaseTrack map[core.SessionID]*leaseSess // guarded by mu
}

// leaseSess is one session's lease-gate state (see leaseTrack).
type leaseSess struct {
	castPending int
	maxCommit   int64
}

// guarSession is one guarantee-carrying session's state.
type guarSession struct {
	g    core.Guarantee
	mode core.GuaranteeMode
	// read accumulates the updating dots the session has observed in its
	// response traces (consumed by MonotonicReads and WritesFollowReads).
	read core.Vec
	// write accumulates the dots of the session's own updating operations
	// (consumed by ReadYourWrites and MonotonicWrites).
	write core.Vec
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{
		calls:  make(map[core.Dot]*Call),
		events: make(map[core.Dot]*history.Event),
		tobNos: make(map[core.Dot]int64),
		lastOf: make(map[core.SessionID]*history.Event),
		guar:   make(map[core.SessionID]*guarSession),
		parked: make(map[core.SessionID]*Call),
		lost:   make(map[core.Dot]bool),
	}
}

// EnableLeaseTracking switches on the per-session cast/commit bookkeeping
// the lease-read serve gate needs (SessionCastCommittedWithin). Drivers call
// it once, at construction, iff leases are enabled — with it off, every
// recording path skips the tracking entirely.
func (r *Recorder) EnableLeaseTracking() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.leaseTrack == nil {
		r.leaseTrack = make(map[core.SessionID]*leaseSess)
	}
}

// trackCastLocked counts a session's newly cast operation (lease gate).
func (r *Recorder) trackCastLocked(session core.SessionID) {
	if r.leaseTrack == nil {
		return
	}
	ls := r.leaseTrack[session]
	if ls == nil {
		ls = &leaseSess{}
		r.leaseTrack[session] = ls
	}
	ls.castPending++
}

// SessionCastCommittedWithin reports whether every operation the session has
// TOB-cast so far is delivered at a position ≤ committedLen — the session-
// order safety gate for serving a lease read from a committed prefix of that
// length. Sessions that never cast anything pass trivially. It reports false
// when lease tracking is disabled: without the bookkeeping the gate cannot
// be proven, so no lease read may be served.
func (r *Recorder) SessionCastCommittedWithin(session core.SessionID, committedLen int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.leaseTrack == nil {
		return false
	}
	ls := r.leaseTrack[session]
	if ls == nil {
		return true
	}
	return ls.castPending == 0 && ls.maxCommit <= committedLen
}

// SessionCastCeiling is the shippable form of the lease gate: it returns the
// largest delivery position among the session's TOB casts, with ok reporting
// that nothing the session cast is still in flight. A replica may serve the
// session a local strong read from a committed prefix of length L iff ok and
// ceil ≤ L — the same predicate as SessionCastCommittedWithin, split so the
// client can evaluate its session half once and ship (ceil, ok) with the
// invocation while the replica supplies L. Sessions that never cast pass
// with (0, true); with lease tracking disabled ok is false (the gate cannot
// be proven, so no lease read may be served).
func (r *Recorder) SessionCastCeiling(session core.SessionID) (ceil int64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.leaseTrack == nil {
		return 0, false
	}
	ls := r.leaseTrack[session]
	if ls == nil {
		return 0, true
	}
	return ls.maxCommit, ls.castPending == 0
}

// LeaseServed marks the event of an already-recorded invocation as a lease
// read anchored at committed length leaseNo: a strong read served locally
// under the ordering lease, never TOB-cast, arbitrated between commits
// leaseNo and leaseNo+1 (see history.Event.LeaseRead).
func (r *Recorder) LeaseServed(d core.Dot, leaseNo int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.events[d]; e != nil {
		e.LeaseRead = true
		e.LeaseNo = leaseNo
	}
}

// SetGuarantees registers the session's guarantee mask and coverage mode.
// Call it once, right after the session is opened.
func (r *Recorder) SetGuarantees(session core.SessionID, g core.Guarantee, mode core.GuaranteeMode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g == 0 {
		delete(r.guar, session)
		return
	}
	r.guar[session] = &guarSession{g: g, mode: mode}
}

// Guarantees returns the session's guarantee mask and mode (zero mask for
// plain sessions).
func (r *Recorder) Guarantees(session core.SessionID) (core.Guarantee, core.GuaranteeMode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if gs := r.guar[session]; gs != nil {
		return gs.g, gs.mode
	}
	return 0, core.WaitForCoverage
}

// SessionGate is the single-lock invoke gate: the session's guarantee mask
// and mode, plus whether it is busy. Drivers call it once per invocation —
// the plain-session hot path pays exactly the one lock SessionBusy cost.
func (r *Recorder) SessionGate(session core.SessionID) (g core.Guarantee, mode core.GuaranteeMode, busy bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if gs := r.guar[session]; gs != nil {
		g, mode = gs.g, gs.mode
	}
	return g, mode, r.busyLocked(session)
}

// SessionBusy reports whether the session's latest invocation is still
// awaiting its response (including an invocation parked on a coverage
// gate). Drivers check it before invoking the replica so a rejected
// invocation leaves no trace in the protocol state.
func (r *Recorder) SessionBusy(session core.SessionID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busyLocked(session)
}

func (r *Recorder) busyLocked(session core.SessionID) bool {
	if r.parked[session] != nil {
		return true
	}
	last := r.lastOf[session]
	return last != nil && last.Pending && !r.lost[last.Dot]
}

// Demands assembles the coverage vectors a replica must dominate before
// serving the session's next operation: the read demand (what the response
// trace must contain — the session's own writes under ReadYourWrites, its
// past observations under MonotonicReads) and, for updating operations, the
// write demand (what the new request must be arbitrated after — the
// session's writes under MonotonicWrites, its observations under
// WritesFollowReads). fence is the clock watermark the serving replica must
// mint above. Vectors are compacted against known TOB positions first and
// returned as copies safe to use off the recorder's lock.
func (r *Recorder) Demands(session core.SessionID, updating bool) (read, write core.Vec, fence int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	gs := r.guar[session]
	if gs == nil {
		return
	}
	return r.demandsLocked(gs, updating)
}

func (r *Recorder) demandsLocked(gs *guarSession, updating bool) (read, write core.Vec, fence int64) {
	commitPos := func(d core.Dot) (int64, bool) { no, ok := r.tobNos[d]; return no, ok }
	gs.read.Compact(commitPos)
	gs.write.Compact(commitPos)
	if gs.g.Has(core.ReadYourWrites) {
		read.Merge(gs.write)
	}
	if gs.g.Has(core.MonotonicReads) {
		read.Merge(gs.read)
	}
	if updating {
		if gs.g.Has(core.MonotonicWrites) {
			write.Merge(gs.write)
		}
		if gs.g.Has(core.WritesFollowReads) {
			write.Merge(gs.read)
		}
	}
	// read and write are freshly built here — Merge appends into their own
	// backing arrays — so they are already safe to use off the lock.
	fence = read.MaxTS
	if write.MaxTS > fence {
		fence = write.MaxTS
	}
	return read, write, fence
}

// PendingInvoke atomically marks the session busy and mints the client's
// call handle for an invocation that has not yet been accepted by a replica
// (its dot is unminted). Guarantee-aware drivers create the call first,
// then either complete it immediately (coverage holds), park it (coverage
// pending), or cancel it (fail-fast / replica down).
func (r *Recorder) PendingInvoke(session core.SessionID, op spec.Op, level core.Level, wall int64) (*Call, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.busyLocked(session) {
		return nil, fmt.Errorf("%w: session %d", ErrSessionBusy, session)
	}
	call := &Call{
		session: session, op: op, level: level,
		wallInvoke: wall,
		doneCh:     make(chan struct{}),
		termCh:     make(chan struct{}),
	}
	r.parked[session] = call
	r.callList = append(r.callList, call)
	return call, nil
}

// FreezeDemands assembles the session's coverage demand (see Demands) and
// freezes it on the pending call as the witness CompleteInvoke will attach.
// Drivers call it right after PendingInvoke — the busy mark guarantees the
// vectors cannot move until the call resolves, so the frozen form is exactly
// what the serving replica enforces, however long the invocation is queued
// or parked.
func (r *Recorder) FreezeDemands(call *Call, updating bool) (read, write core.Vec, fence int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	gs := r.guar[call.session]
	if gs == nil {
		return
	}
	read, write, fence = r.demandsLocked(gs, updating)
	call.frozen = true
	call.frozenRead = read
	call.frozenWrite = write
	return read, write, fence
}

// CompleteInvoke records the acceptance of a previously pending invocation:
// the serving replica minted dot at timestamp ts. The history event is
// created at acceptance (the invocation enters the history when a replica
// takes it, not when the client queued it), demand-vector witnesses are
// attached, and the session's write vector absorbs the new dot.
func (r *Recorder) CompleteInvoke(call *Call, d core.Dot, ts int64, tobCast bool, wall int64) {
	r.mu.Lock()
	if r.parked[call.session] == call {
		delete(r.parked, call.session)
	}
	r.seq++
	e := &history.Event{
		Session:    call.session,
		Op:         call.op,
		Level:      call.level,
		Pending:    true,
		Invoke:     r.seq,
		WallInvoke: wall,
		Dot:        d,
		Timestamp:  ts,
		TOBCast:    tobCast,
		TOBNo:      -1,
	}
	r.attachGuaranteesLocked(e, call, call.session, d, ts)
	r.calls[d] = call
	r.events[d] = e
	r.lastOf[call.session] = e
	r.order = append(r.order, d)
	if tobCast {
		r.tobCast++
		r.trackCastLocked(call.session)
	}
	r.mu.Unlock()
	call.bind(d, tobCast, wall)
}

// CancelInvoke withdraws a pending invocation that no replica accepted
// (fail-fast coverage miss, the target was down, or the deployment stopped
// underneath it): the session's busy mark clears and the call handle is
// discarded. Calling it on an invocation a replica already completed is a
// no-op — the parked entry is the pending state, and CompleteInvoke clears
// it under the same lock.
func (r *Recorder) CancelInvoke(call *Call) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.parked[call.session] != call {
		return
	}
	delete(r.parked, call.session)
	for i := len(r.callList) - 1; i >= 0; i-- {
		if r.callList[i] == call {
			r.callList = append(r.callList[:i], r.callList[i+1:]...)
			break
		}
	}
}

// attachGuaranteesLocked stamps a new event with its session's guarantee
// mask and demand-vector witnesses (the coverage that was enforced for it),
// then folds the event's own dot into the session's write vector. A call
// carrying frozen witnesses (FreezeDemands) contributes them verbatim —
// they are what the replica checked; re-deriving here could compact past
// them (see Call.frozen).
func (r *Recorder) attachGuaranteesLocked(e *history.Event, call *Call, session core.SessionID, d core.Dot, ts int64) {
	gs := r.guar[session]
	if gs == nil {
		return
	}
	e.Guarantees = gs.g
	if call != nil && call.frozen {
		e.ReadVec, e.WriteVec = call.frozenRead, call.frozenWrite
	} else {
		e.ReadVec, e.WriteVec, _ = r.demandsLocked(gs, !e.Op.ReadOnly())
	}
	if !e.Op.ReadOnly() && gs.g&(core.ReadYourWrites|core.MonotonicWrites) != 0 {
		gs.write.Add(d, ts)
	}
}

// Invoked records a new invocation and returns its call handle. Requests
// attributed to core.NoSession are not recorded and yield nil.
func (r *Recorder) Invoked(session core.SessionID, d core.Dot, op spec.Op, level core.Level, ts int64, tobCast bool, wall int64) *Call {
	if session == core.NoSession {
		return nil
	}
	call := &Call{
		dot: d, session: session, op: op, level: level, tobCast: tobCast,
		wallInvoke: wall,
		doneCh:     make(chan struct{}),
		termCh:     make(chan struct{}),
	}
	r.mu.Lock()
	r.seq++
	e := &history.Event{
		Session:    session,
		Op:         op,
		Level:      level,
		Pending:    true,
		Invoke:     r.seq,
		WallInvoke: wall,
		Dot:        d,
		Timestamp:  ts,
		TOBCast:    tobCast,
		TOBNo:      -1,
	}
	r.attachGuaranteesLocked(e, nil, session, d, ts)
	r.calls[d] = call
	r.callList = append(r.callList, call)
	r.events[d] = e
	r.lastOf[session] = e
	r.order = append(r.order, d)
	if tobCast {
		r.tobCast++
		r.trackCastLocked(session)
	}
	r.mu.Unlock()
	return call
}

// Responded records a response effect, completing the matching call.
func (r *Recorder) Responded(resp core.Response, wall int64) {
	d := resp.Req.Dot
	r.mu.Lock()
	call := r.calls[d]
	if e, ok := r.events[d]; ok && e.Pending {
		r.seq++
		e.Pending = false
		e.Return = r.seq
		e.WallReturn = wall
		e.RVal = resp.Value
		e.Trace = append([]core.Dot(nil), resp.Trace...)
		e.TraceBase = resp.TraceBase
		e.CommittedLen = resp.CommittedLen
		// The session's read vector absorbs the updating operations this
		// response observed (read-only dots are never demanded: under
		// Algorithm 2 they are purely local and no replica could cover
		// them). Dots already known committed fold straight into the
		// watermark — the frontier stays bounded by the uncommitted
		// suffix instead of re-accumulating the whole committed history
		// on every response. A checkpoint-truncated trace prefix is a
		// committed prefix by construction: it folds into the watermark
		// (and its clock fence) in O(1) via the commit index.
		if gs := r.guar[e.Session]; gs != nil && gs.g&(core.MonotonicReads|core.WritesFollowReads) != 0 {
			if b := resp.TraceBase; b > 0 {
				if b > gs.read.CommitLen {
					gs.read.CommitLen = b
				}
				if b <= len(r.commitMaxTS) && r.commitMaxTS[b-1] > gs.read.MaxTS {
					gs.read.MaxTS = r.commitMaxTS[b-1]
				}
			}
			for _, td := range resp.Trace {
				ev := r.events[td]
				if ev == nil || ev.Op.ReadOnly() {
					continue
				}
				if no, ok := r.tobNos[td]; ok {
					if int(no) > gs.read.CommitLen {
						gs.read.CommitLen = int(no)
					}
					if ev.Timestamp > gs.read.MaxTS {
						gs.read.MaxTS = ev.Timestamp
					}
					continue
				}
				gs.read.Add(td, ev.Timestamp)
			}
		}
	}
	r.mu.Unlock()
	if call != nil {
		call.respond(resp, wall)
	}
}

// StableNoticed records the stable value of a weak operation that already
// returned tentatively. It updates the call handle only: the history's rval
// stays the (first) tentative response, matching the paper's model of a
// client interested in one or the other (footnote 3).
func (r *Recorder) StableNoticed(resp core.Response, wall int64) {
	r.mu.Lock()
	call := r.calls[resp.Req.Dot]
	r.mu.Unlock()
	if call != nil {
		call.stable(resp, wall)
	}
}

// ResultLost completes an invocation as a lost result: checkpoint state
// transfer skipped the per-slot replay that would have recomputed its
// response (see core.LostResponse). The history event stays pending — the
// client observably never received a return value — but the session's busy
// mark clears and the call handle becomes terminal with Lost() reporting
// true, so clients and quiescence checks do not wait forever.
func (r *Recorder) ResultLost(d core.Dot, wall int64) {
	r.mu.Lock()
	call := r.calls[d]
	r.lost[d] = true
	r.mu.Unlock()
	if call != nil {
		call.loseResult(wall)
	}
}

// Transition records a response-status transition, feeding the matching
// call's watch subscriptions.
func (r *Recorder) Transition(t core.Transition, wall int64) {
	r.mu.Lock()
	call := r.calls[t.Dot]
	r.mu.Unlock()
	if call != nil {
		call.transition(Update{Status: t.Status, Value: t.Value, Wall: wall})
	}
}

// TOBDelivered records the request's (first) TOB delivery position and
// extends the commit-order index. Each replica delivers contiguously from 1,
// and every delivery is recorded before the effects it unlocks are routed,
// so the index is gap-free up to the largest position any live replica has
// reached — exactly the range truncated response traces can reference.
func (r *Recorder) TOBDelivered(d core.Dot, tobNo int64) {
	r.mu.Lock()
	if _, seen := r.tobNos[d]; !seen {
		r.tobNos[d] = tobNo
		if r.leaseTrack != nil {
			if ev := r.events[d]; ev != nil && ev.TOBCast {
				if ls := r.leaseTrack[ev.Session]; ls != nil {
					ls.castPending--
					if tobNo > ls.maxCommit {
						ls.maxCommit = tobNo
					}
				}
			}
		}
	}
	if int(tobNo) == len(r.commitOrder)+1 {
		r.commitOrder = append(r.commitOrder, d)
		ts := int64(0)
		if len(r.commitMaxTS) > 0 {
			ts = r.commitMaxTS[len(r.commitMaxTS)-1]
		}
		// Read-only commits (Algorithm 1 casts them too) do not raise the
		// fence: read vectors never demand them.
		if ev := r.events[d]; ev == nil || !ev.Op.ReadOnly() {
			evTS := int64(0)
			if ev != nil {
				evTS = ev.Timestamp
			}
			if evTS > ts {
				ts = evTS
			}
		}
		r.commitMaxTS = append(r.commitMaxTS, ts)
	}
	r.mu.Unlock()
}

// MarkStable records the quiescence point for the history checkers: events
// invoked afterwards act as the probes of the "eventually" predicates.
func (r *Recorder) MarkStable() {
	r.mu.Lock()
	r.stableAt = r.seq
	r.mu.Unlock()
}

// Calls returns a snapshot of every recorded call in invocation order.
func (r *Recorder) Calls() []*Call {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Call(nil), r.callList...)
}

// Call returns the call with the given dot, or nil.
func (r *Recorder) Call(d core.Dot) *Call {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls[d]
}

// TOBCastCount returns how many recorded invocations entered total order
// broadcast — the number of commits a quiescent run must have applied.
func (r *Recorder) TOBCastCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tobCast
}

// History assembles the recorded history. TOB numbers are attached at
// assembly time so that late deliveries (after the response) are reflected.
// The events are snapshot copies taken under the lock: the recorder's own
// Event records keep mutating as responses arrive (on replica goroutines,
// under the live driver), so handing out live pointers would race with
// them.
func (r *Recorder) History() (*history.History, error) {
	r.mu.Lock()
	events := make([]*history.Event, 0, len(r.order))
	for _, d := range r.order {
		e := *r.events[d] // copy; the Trace slice is write-once and safe to share
		if no, ok := r.tobNos[d]; ok {
			e.TOBNo = no
		} else {
			e.TOBNo = -1
		}
		if e.TraceBase > 0 {
			// Materialize the absolute exec(e): the truncated prefix is
			// exactly the shared committed prefix 1..TraceBase, in commit
			// order, which the responding replica had fully delivered (and
			// this recorder indexed) before it answered.
			full := make([]core.Dot, 0, e.TraceBase+len(e.Trace))
			full = append(full, r.commitOrder[:e.TraceBase]...)
			full = append(full, e.Trace...)
			e.Trace = full
			e.TraceBase = 0
		}
		events = append(events, &e)
	}
	stableAt := r.stableAt
	r.mu.Unlock()
	return history.New(events, stableAt)
}
