// Package fd implements the failure detector Ω used by the paper (§2.1,
// §5): the weakest failure detector for solving consensus [Chandra,
// Hadzilacos, Toueg]. Ω guarantees that *eventually* all correct processes
// trust the same correct process as leader — but only in stable runs. The
// paper models the distinction implicitly ("we equip the replicas with the
// TOB abstraction that achieves progress only when a failure detector that
// is at least as strong as Ω is available"); here the oracle is explicit so
// experiments can switch between:
//
//   - stable runs: the harness calls Stabilize(leader) and consensus makes
//     progress, and
//   - asynchronous runs: the harness calls Destabilize() (or never
//     stabilizes) and any protocol step that waits on consensus blocks
//     forever, exactly as Theorem 3 requires.
//
// The oracle is per-node: before stabilization different nodes may trust
// different (or no) leaders, which exercises the multi-proposer paths of
// Paxos.
package fd

import "bayou/internal/simnet"

// NoLeader is returned while a node trusts nobody.
const NoLeader simnet.NodeID = -1

// Omega is the failure-detector oracle shared by all nodes of a simulation.
// The zero value is not usable; construct with New.
type Omega struct {
	hint map[simnet.NodeID]simnet.NodeID
	subs []func(node simnet.NodeID)
}

// New returns an oracle in the destabilized state (no node trusts anyone).
func New() *Omega {
	return &Omega{hint: make(map[simnet.NodeID]simnet.NodeID)}
}

// Leader returns the leader currently trusted by node, or NoLeader.
func (o *Omega) Leader(node simnet.NodeID) simnet.NodeID {
	if l, ok := o.hint[node]; ok {
		return l
	}
	return NoLeader
}

// Stabilize makes every node trust leader, modelling the eventual agreement
// Ω provides in stable runs, and notifies subscribers.
func (o *Omega) Stabilize(nodes []simnet.NodeID, leader simnet.NodeID) {
	for _, n := range nodes {
		o.hint[n] = leader
	}
	o.notify(nodes)
}

// SetHint makes a single node trust leader (possibly a wrong or conflicting
// hint — Ω permits arbitrary disagreement before stabilization).
func (o *Omega) SetHint(node, leader simnet.NodeID) {
	o.hint[node] = leader
	o.notify([]simnet.NodeID{node})
}

// Destabilize clears all hints: no node trusts any leader, so
// consensus-based progress stops. Models the asynchronous runs of §5.
func (o *Omega) Destabilize(nodes []simnet.NodeID) {
	for _, n := range nodes {
		delete(o.hint, n)
	}
	o.notify(nodes)
}

// Subscribe registers a callback invoked with each node whose hint changed.
// TOB modules use it to start or stop leading.
func (o *Omega) Subscribe(fn func(node simnet.NodeID)) {
	o.subs = append(o.subs, fn)
}

func (o *Omega) notify(nodes []simnet.NodeID) {
	for _, fn := range o.subs {
		for _, n := range nodes {
			fn(n)
		}
	}
}
