package fd

import (
	"testing"

	"bayou/internal/simnet"
)

func TestInitiallyNoLeader(t *testing.T) {
	o := New()
	if got := o.Leader(0); got != NoLeader {
		t.Errorf("Leader = %v, want NoLeader", got)
	}
}

func TestStabilize(t *testing.T) {
	o := New()
	nodes := []simnet.NodeID{0, 1, 2}
	o.Stabilize(nodes, 1)
	for _, n := range nodes {
		if got := o.Leader(n); got != 1 {
			t.Errorf("Leader(%d) = %v, want 1", n, got)
		}
	}
}

func TestDestabilize(t *testing.T) {
	o := New()
	nodes := []simnet.NodeID{0, 1}
	o.Stabilize(nodes, 0)
	o.Destabilize(nodes)
	for _, n := range nodes {
		if got := o.Leader(n); got != NoLeader {
			t.Errorf("Leader(%d) = %v, want NoLeader", n, got)
		}
	}
}

func TestConflictingHints(t *testing.T) {
	o := New()
	o.SetHint(0, 0)
	o.SetHint(1, 1)
	if o.Leader(0) != 0 || o.Leader(1) != 1 {
		t.Error("Ω must permit disagreeing hints before stabilization")
	}
}

func TestSubscribeNotifications(t *testing.T) {
	o := New()
	var notified []simnet.NodeID
	o.Subscribe(func(n simnet.NodeID) { notified = append(notified, n) })
	o.Stabilize([]simnet.NodeID{0, 1}, 0)
	if len(notified) != 2 {
		t.Errorf("notified = %v, want both nodes", notified)
	}
	notified = nil
	o.SetHint(1, 0)
	if len(notified) != 1 || notified[0] != 1 {
		t.Errorf("notified = %v, want [1]", notified)
	}
}
