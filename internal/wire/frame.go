package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
)

// MaxFrame bounds one frame's body; a peer announcing more is corrupt (or
// hostile) and the connection is torn down rather than the allocation made.
// Checkpoint images are the largest legitimate payload.
const MaxFrame = 64 << 20

// Conn frames one TCP connection: 4-byte big-endian length prefix, gob
// body. Each frame is encoded with a fresh encoder — a gob stream is
// stateful (type definitions are sent once per stream), and per-frame
// encoding keeps frames self-contained so a reconnecting reader can join
// at any frame boundary. Send is safe for concurrent use; Recv is a
// single-reader method.
type Conn struct {
	c net.Conn
	r *bufio.Reader

	mu  sync.Mutex
	w   *bufio.Writer // guarded by mu
	buf bytes.Buffer  // guarded by mu
}

// Wrap frames an established connection.
func Wrap(c net.Conn) *Conn {
	return &Conn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
}

// Send writes one envelope as a frame and flushes it.
func (c *Conn) Send(env *Envelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf.Reset()
	if err := gob.NewEncoder(&c.buf).Encode(env); err != nil {
		return fmt.Errorf("wire: encode %d: %w", env.Kind, err)
	}
	if c.buf.Len() > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", c.buf.Len())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(c.buf.Len()))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(c.buf.Bytes()); err != nil {
		return err
	}
	return c.w.Flush()
}

// Recv reads one frame into env (zeroing it first — gob only writes the
// fields present on the wire).
func (c *Conn) Recv(env *Envelope) error {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("wire: incoming frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.r, body); err != nil {
		return err
	}
	*env = Envelope{}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(env); err != nil {
		return fmt.Errorf("wire: decode frame: %w", err)
	}
	return nil
}

// Close tears the connection down; blocked Send/Recv calls unblock with an
// error.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr names the peer, for diagnostics.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }
