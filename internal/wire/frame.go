package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame bounds one frame's body; a peer announcing more is corrupt (or
// hostile) and the connection is torn down rather than the allocation made.
// Checkpoint images are the largest legitimate payload.
const MaxFrame = 64 << 20

// ErrCorrupt marks a frame whose checksum (or framing) failed verification:
// the stream can no longer be trusted to be at a frame boundary, so the
// receiver tears the connection down and the sender redials — corruption is
// detected and repaired by retransmission, never handed to gob to
// misdecode.
var ErrCorrupt = errors.New("wire: corrupt frame")

// castagnoli is the CRC32C polynomial table (hardware-accelerated on the
// platforms the repo targets), shared by every frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// headerLen frames each body with a 4-byte big-endian length and a 4-byte
// CRC32C over the body.
const headerLen = 8

// Conn frames one TCP connection: 4-byte big-endian length prefix, 4-byte
// CRC32C, gob body. Each frame is encoded with a fresh encoder — a gob
// stream is stateful (type definitions are sent once per stream), and
// per-frame encoding keeps frames self-contained so a reconnecting reader
// can join at any frame boundary. Send is safe for concurrent use; Recv is
// a single-reader method.
type Conn struct {
	c net.Conn
	r *bufio.Reader

	mu       sync.Mutex
	w        *bufio.Writer // guarded by mu
	buf      bytes.Buffer  // guarded by mu
	reorder  []byte        // guarded by mu; frame held back by the injector
	faults   *Faults       // guarded by mu; nil = no injection
	writeTmo time.Duration // guarded by mu; 0 = no write deadline
}

// Wrap frames an established connection.
func Wrap(c net.Conn) *Conn {
	return &Conn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
}

// SetFaults attaches a seeded fault injector to the send path (nil
// detaches). Peer links of a chaos deployment set it; controller links
// never do.
func (c *Conn) SetFaults(f *Faults) {
	c.mu.Lock()
	c.faults = f
	c.mu.Unlock()
}

// SetWriteTimeout bounds every frame write; a peer that stops draining
// (SIGSTOP, dead TCP window) surfaces an error instead of blocking the
// sender forever once kernel buffers fill.
func (c *Conn) SetWriteTimeout(d time.Duration) {
	c.mu.Lock()
	c.writeTmo = d
	c.mu.Unlock()
}

// Send writes one envelope as a frame and flushes it.
func (c *Conn) Send(env *Envelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf.Reset()
	c.buf.Write(make([]byte, headerLen)) // header placeholder
	if err := gob.NewEncoder(&c.buf).Encode(env); err != nil {
		return fmt.Errorf("wire: encode %d: %w", env.Kind, err)
	}
	frame := c.buf.Bytes()
	body := frame[headerLen:]
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(body, castagnoli))
	if c.faults != nil {
		return c.sendFaultyLocked(frame)
	}
	return c.writeFrameLocked(frame)
}

// writeFrameLocked ships one serialized frame. Caller holds c.mu.
func (c *Conn) writeFrameLocked(frame []byte) error {
	if c.writeTmo > 0 {
		c.c.SetWriteDeadline(time.Now().Add(c.writeTmo))
		defer c.c.SetWriteDeadline(time.Time{})
	}
	if _, err := c.w.Write(frame); err != nil {
		return err
	}
	return c.w.Flush()
}

// sendFaultyLocked runs one serialized frame through the injector's seeded
// decision: deliver, drop, duplicate, delay, reorder behind the next
// frame, flip a bit (the receiver's checksum catches it), or truncate
// mid-frame and reset the connection. Caller holds c.mu.
func (c *Conn) sendFaultyLocked(frame []byte) error {
	d := c.faults.decide(len(frame))
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	switch d.action {
	case faultDrop:
		return nil
	case faultReorder:
		// Hold this frame back; it ships after the next one (or is lost
		// with the connection, which at-least-once delivery absorbs).
		c.reorder = append([]byte(nil), frame...)
		return nil
	case faultFlip:
		// Flip inside the body (never the length header): the receiver's
		// checksum rejects the frame immediately instead of misframing the
		// stream behind a corrupted length.
		mut := append([]byte(nil), frame...)
		mut[headerLen+d.offset%(len(mut)-headerLen)] ^= 1 << (d.offset % 8)
		frame = mut
	case faultTruncate:
		cut := d.offset % len(frame)
		c.writeFrameLocked(frame[:cut])
		return c.c.Close() // mid-frame connection reset
	}
	if err := c.writeFrameLocked(frame); err != nil {
		return err
	}
	if held := c.reorder; held != nil {
		c.reorder = nil
		if err := c.writeFrameLocked(held); err != nil {
			return err
		}
	}
	if d.action == faultDup {
		return c.writeFrameLocked(frame)
	}
	return nil
}

// Recv reads one frame into env (zeroing it first — gob only writes the
// fields present on the wire). A checksum mismatch returns ErrCorrupt: the
// caller must discard the connection, not the frame.
func (c *Conn) Recv(env *Envelope) error {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxFrame {
		return fmt.Errorf("%w: announced body of %d bytes exceeds limit", ErrCorrupt, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.r, body); err != nil {
		return err
	}
	want := binary.BigEndian.Uint32(hdr[4:8])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return fmt.Errorf("%w: checksum %#x, want %#x", ErrCorrupt, got, want)
	}
	*env = Envelope{}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(env); err != nil {
		return fmt.Errorf("%w: decode: %v", ErrCorrupt, err)
	}
	return nil
}

// Close tears the connection down; blocked Send/Recv calls unblock with an
// error.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr names the peer, for diagnostics.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }
