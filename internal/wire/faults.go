package wire

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultConfig parametrizes the seeded frame-level fault injector attached
// to peer links: per-frame probabilities of dropping, duplicating,
// delaying, reordering, bit-flipping, or truncating (with a mid-frame
// connection reset) outbound frames. All corruption is *detectable* — the
// per-frame CRC32C turns a flipped bit into a torn connection, never a
// misdecoded envelope — and all loss is *repairable* by the resync
// handshake and the anti-entropy tick, so a chaos deployment converges
// through the same machinery a lossy real network would exercise.
//
// Probabilities are per frame, in [0,1]; they are evaluated in the order
// drop, reorder, flip, truncate, dup (first hit wins), and delay composes
// with any of them. The zero config injects nothing.
type FaultConfig struct {
	Seed     int64         // decision stream seed (required for replay)
	Drop     float64       // silently discard the frame
	Dup      float64       // deliver the frame twice
	Reorder  float64       // hold the frame behind the next one
	Flip     float64       // flip one body bit (CRC-detected at the receiver)
	Truncate float64       // write a prefix, then reset the connection
	Delay    float64       // sleep before writing
	DelayMax time.Duration // upper bound of an injected delay
}

// Enabled reports whether the config injects anything at all.
func (c FaultConfig) Enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Reorder > 0 || c.Flip > 0 || c.Truncate > 0 || c.Delay > 0
}

// ParseFaults parses the -chaos flag syntax: comma-separated key=value
// pairs, e.g.
//
//	drop=0.02,dup=0.02,reorder=0.02,flip=0.01,trunc=0.005,delay=0.05,delaymax=5ms
//
// Probability keys take floats in [0,1]; delaymax takes a Go duration. The
// seed is plumbed separately (the node's -seed flag) so one seed governs
// every stochastic choice a node makes.
func ParseFaults(spec string, seed int64) (FaultConfig, error) {
	cfg := FaultConfig{Seed: seed}
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("wire: chaos spec %q: want key=value", kv)
		}
		if k == "delaymax" {
			d, err := time.ParseDuration(v)
			if err != nil {
				return cfg, fmt.Errorf("wire: chaos delaymax %q: %w", v, err)
			}
			cfg.DelayMax = d
			continue
		}
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || p < 0 || p > 1 {
			return cfg, fmt.Errorf("wire: chaos %s=%q: want a probability in [0,1]", k, v)
		}
		switch k {
		case "drop":
			cfg.Drop = p
		case "dup":
			cfg.Dup = p
		case "reorder":
			cfg.Reorder = p
		case "flip":
			cfg.Flip = p
		case "trunc", "truncate":
			cfg.Truncate = p
		case "delay":
			cfg.Delay = p
		default:
			return cfg, fmt.Errorf("wire: chaos spec: unknown key %q", k)
		}
	}
	if cfg.Delay > 0 && cfg.DelayMax == 0 {
		cfg.DelayMax = 5 * time.Millisecond
	}
	return cfg, nil
}

// faultAction is the injector's verdict for one frame.
type faultAction int

const (
	faultDeliver faultAction = iota
	faultDrop
	faultDup
	faultReorder
	faultFlip
	faultTruncate
)

// faultDecision is one frame's fate: what to do, where (flip/truncate
// offset material), and how long to stall first.
type faultDecision struct {
	action faultAction
	offset int
	delay  time.Duration
}

// Faults is one link's seeded decision stream. Each link gets its own
// (seed derived from the node seed and the peer id), so a schedule is a
// pure function of the deployment seed regardless of goroutine timing on
// other links.
type Faults struct {
	cfg FaultConfig

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu
}

// NewFaults builds an injector from a config; nil when the config injects
// nothing, so callers can attach the result unconditionally.
func NewFaults(cfg FaultConfig) *Faults {
	if !cfg.Enabled() {
		return nil
	}
	return &Faults{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Derive builds an injector whose decision stream is offset from the base
// config's seed — one per peer link.
func (c FaultConfig) Derive(offset int64) *Faults {
	d := c
	d.Seed = c.Seed*1_000_003 + offset
	return NewFaults(d)
}

// decide rolls one frame's fate.
func (f *Faults) decide(frameLen int) faultDecision {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := faultDecision{action: faultDeliver}
	if f.cfg.Delay > 0 && f.rng.Float64() < f.cfg.Delay {
		d.delay = time.Duration(f.rng.Int63n(int64(f.cfg.DelayMax) + 1))
	}
	roll := f.rng.Float64()
	switch {
	case roll < f.cfg.Drop:
		d.action = faultDrop
	case roll < f.cfg.Drop+f.cfg.Reorder:
		d.action = faultReorder
	case roll < f.cfg.Drop+f.cfg.Reorder+f.cfg.Flip:
		d.action = faultFlip
		d.offset = f.rng.Intn(frameLen)
	case roll < f.cfg.Drop+f.cfg.Reorder+f.cfg.Flip+f.cfg.Truncate:
		d.action = faultTruncate
		d.offset = f.rng.Intn(frameLen)
	case roll < f.cfg.Drop+f.cfg.Reorder+f.cfg.Flip+f.cfg.Truncate+f.cfg.Dup:
		d.action = faultDup
	}
	return d
}

// jitter returns a multiplicative jitter factor in [0.5, 1.5) from the
// injector-independent backoff stream; see Link. It lives here so the
// seeded rand plumbing stays in one place.
func jitter(rng *rand.Rand, d time.Duration) time.Duration {
	if rng == nil || d <= 0 {
		return d
	}
	return d/2 + time.Duration(rng.Int63n(int64(d)))
}
