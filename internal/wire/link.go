package wire

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Link is an outbound connection to one peer that dials lazily and
// re-dials with exponential backoff: nodes of a multi-process deployment
// start in arbitrary order, so the first Send may precede the peer's
// listener by a while. Every fresh connection opens with the configured
// hello frame, identifying the dialer to the acceptor.
//
// A Send that hits a broken connection tears it down and retries once on a
// fresh one; the frame in flight when a connection died may or may not
// have arrived (at-least-once overall — receivers dedup, and the resync
// handshake refetches real gaps).
type Link struct {
	addr  string
	hello Envelope
	// connectBudget bounds one Send's total dial-and-retry time.
	connectBudget time.Duration

	mu     sync.Mutex
	conn   *Conn // guarded by mu; nil when disconnected
	closed bool  // guarded by mu
}

// backoff bounds for re-dialing.
const (
	dialBackoffMin = 5 * time.Millisecond
	dialBackoffMax = 250 * time.Millisecond
	dialTimeout    = 2 * time.Second
)

// DefaultConnectBudget is how long a Send keeps re-dialing an unreachable
// peer before reporting failure.
const DefaultConnectBudget = 15 * time.Second

// NewLink prepares an outbound link (no connection is made until the first
// Send). hello is sent first on every fresh connection.
func NewLink(addr string, hello Envelope) *Link {
	return &Link{addr: addr, hello: hello, connectBudget: DefaultConnectBudget}
}

// Dial connects to addr, retrying with exponential backoff within budget,
// and opens the connection with the hello frame. It is the shared connect
// path of Link and of the controller client (which keeps the raw Conn to
// read the node's event stream).
func Dial(addr string, hello Envelope, budget time.Duration) (*Conn, error) {
	deadline := time.Now().Add(budget)
	wait := dialBackoffMin
	for {
		c, lastErr := net.DialTimeout("tcp", addr, dialTimeout)
		if lastErr == nil {
			conn := Wrap(c)
			if lastErr = conn.Send(&hello); lastErr == nil {
				return conn, nil
			}
			conn.Close()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("wire: cannot reach %s within %v: %w", addr, budget, lastErr)
		}
		time.Sleep(wait)
		if wait *= 2; wait > dialBackoffMax {
			wait = dialBackoffMax
		}
	}
}

// Send writes one envelope, dialing or re-dialing as needed.
func (l *Link) Send(env *Envelope) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wire: link to %s closed", l.addr)
	}
	if l.conn == nil {
		if err := l.connectLocked(); err != nil {
			return err
		}
	}
	if err := l.conn.Send(env); err == nil {
		return nil
	}
	// The connection broke underneath us; one fresh attempt.
	l.conn.Close()
	l.conn = nil
	if err := l.connectLocked(); err != nil {
		return err
	}
	return l.conn.Send(env)
}

// connectLocked dials with backoff until the budget runs out. Caller holds
// l.mu.
func (l *Link) connectLocked() error {
	conn, err := Dial(l.addr, l.hello, l.connectBudget)
	if err != nil {
		return err
	}
	l.conn = conn
	return nil
}

// Close tears the link down; subsequent Sends fail.
func (l *Link) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
}
