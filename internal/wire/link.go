package wire

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Link is an outbound connection to one peer that dials lazily and
// re-dials with exponential backoff: nodes of a multi-process deployment
// start in arbitrary order, so the first Send may precede the peer's
// listener by a while. Every fresh connection opens with the configured
// hello frame, identifying the dialer to the acceptor.
//
// A Send that hits a broken connection tears it down and retries once on a
// fresh one; the frame in flight when a connection died may or may not
// have arrived (at-least-once overall — receivers dedup, and the resync
// handshake refetches real gaps).
type Link struct {
	addr  string
	hello Envelope

	mu sync.Mutex
	// connectBudget bounds one Send's total dial-and-retry time.
	connectBudget time.Duration // guarded by mu
	conn          *Conn         // guarded by mu; nil when disconnected
	closed        bool          // guarded by mu
	faults        *Faults       // guarded by mu; attached to each fresh conn
	writeTmo      time.Duration // guarded by mu; propagated to each fresh conn
	rng           *rand.Rand    // guarded by mu; nil = jitter-free backoff
}

// backoff bounds for re-dialing.
const (
	dialBackoffMin = 5 * time.Millisecond
	dialBackoffMax = 250 * time.Millisecond
	dialTimeout    = 2 * time.Second
)

// DefaultConnectBudget is how long a Send keeps re-dialing an unreachable
// peer before reporting failure.
const DefaultConnectBudget = 15 * time.Second

// NewLink prepares an outbound link (no connection is made until the first
// Send). hello is sent first on every fresh connection.
func NewLink(addr string, hello Envelope) *Link {
	return &Link{addr: addr, hello: hello, connectBudget: DefaultConnectBudget}
}

// SetConnectBudget bounds one Send's total dial-and-retry time; chaos
// deployments shorten it so a killed peer surfaces promptly.
func (l *Link) SetConnectBudget(d time.Duration) {
	l.mu.Lock()
	if d > 0 {
		l.connectBudget = d
	}
	l.mu.Unlock()
}

// SetFaults attaches a seeded fault injector to every connection the link
// opens from now on (nil detaches).
func (l *Link) SetFaults(f *Faults) {
	l.mu.Lock()
	l.faults = f
	if l.conn != nil {
		l.conn.SetFaults(f)
	}
	l.mu.Unlock()
}

// SetWriteTimeout bounds each frame write on the link's connections, so a
// frozen peer surfaces an error instead of wedging the sender.
func (l *Link) SetWriteTimeout(d time.Duration) {
	l.mu.Lock()
	l.writeTmo = d
	if l.conn != nil {
		l.conn.SetWriteTimeout(d)
	}
	l.mu.Unlock()
}

// SetDialJitter seeds the backoff jitter stream. Without it the doubling
// backoff is deterministic and identical across peers, so every peer of a
// restarted node re-dials in lockstep — a thundering herd at the exact
// moment the node is busiest replaying its log. The seed is plumbed from
// the owning node's seed, keeping schedules replayable.
func (l *Link) SetDialJitter(seed int64) {
	l.mu.Lock()
	l.rng = rand.New(rand.NewSource(seed))
	l.mu.Unlock()
}

// Dial connects to addr, retrying with exponential backoff within budget,
// and opens the connection with the hello frame. It is the shared connect
// path of Link and of the controller client (which keeps the raw Conn to
// read the node's event stream). A nil rng means jitter-free backoff.
func Dial(addr string, hello Envelope, budget time.Duration) (*Conn, error) {
	return dialJittered(addr, hello, budget, nil)
}

func dialJittered(addr string, hello Envelope, budget time.Duration, rng *rand.Rand) (*Conn, error) {
	deadline := time.Now().Add(budget)
	wait := dialBackoffMin
	for {
		c, lastErr := net.DialTimeout("tcp", addr, dialTimeout)
		if lastErr == nil {
			conn := Wrap(c)
			if lastErr = conn.Send(&hello); lastErr == nil {
				return conn, nil
			}
			conn.Close()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("wire: cannot reach %s within %v: %w", addr, budget, lastErr)
		}
		time.Sleep(jitter(rng, wait))
		if wait *= 2; wait > dialBackoffMax {
			wait = dialBackoffMax
		}
	}
}

// Send writes one envelope, dialing or re-dialing as needed.
func (l *Link) Send(env *Envelope) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wire: link to %s closed", l.addr)
	}
	if l.conn == nil {
		if err := l.connectLocked(); err != nil {
			return err
		}
	}
	if err := l.conn.Send(env); err == nil {
		return nil
	}
	// The connection broke underneath us; one fresh attempt.
	l.conn.Close()
	l.conn = nil
	if err := l.connectLocked(); err != nil {
		return err
	}
	return l.conn.Send(env)
}

// connectLocked dials with backoff until the budget runs out. Caller holds
// l.mu.
func (l *Link) connectLocked() error {
	conn, err := dialJittered(l.addr, l.hello, l.connectBudget, l.rng)
	if err != nil {
		return err
	}
	conn.SetFaults(l.faults)
	conn.SetWriteTimeout(l.writeTmo)
	l.conn = conn
	return nil
}

// Close tears the link down; subsequent Sends fail.
func (l *Link) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
}
