package wire

import (
	"net"
	"testing"
	"time"

	"bayou/internal/core"
	"bayou/internal/spec"
)

// TestFrameRoundTrip sends a representative envelope — a request batch with
// interface-typed operations and a checkpoint image with an
// interval-compressed dot summary — through the framed codec and asserts
// it survives bit-exact.
func TestFrameRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	a, b := Wrap(client), Wrap(server)
	defer a.Close()
	defer b.Close()

	var dots core.DotSet
	dots.Add(core.Dot{Replica: 0, EventNo: 1})
	dots.Add(core.Dot{Replica: 0, EventNo: 2})
	dots.Add(core.Dot{Replica: 2, EventNo: 7})
	out := Envelope{
		Kind:     KindCommitBatch,
		CommitNo: 41,
		From:     2,
		Reqs: []core.Req{
			{Timestamp: 9, Dot: core.Dot{Replica: 1, EventNo: 3}, Op: spec.Inc("hits", 2)},
			{Timestamp: 11, Dot: core.Dot{Replica: 2, EventNo: 4}, Strong: true, Op: spec.PutIfAbsent("k", "v")},
		},
		Ckpt: &core.CheckpointRecord{
			BaseLen: 40,
			Image:   map[string]spec.Value{"hits": int64(12), "doc": "abc"},
			Dots:    dots,
		},
	}
	go func() {
		if err := a.Send(&out); err != nil {
			t.Error(err)
		}
	}()
	var in Envelope
	if err := b.Recv(&in); err != nil {
		t.Fatal(err)
	}
	if in.Kind != out.Kind || in.CommitNo != 41 || in.From != 2 || len(in.Reqs) != 2 {
		t.Fatalf("header mangled: %+v", in)
	}
	if in.Reqs[0].Op.Name() != spec.Inc("hits", 2).Name() || !in.Reqs[1].Strong {
		t.Fatalf("request batch mangled: %+v", in.Reqs)
	}
	if in.Ckpt == nil || in.Ckpt.BaseLen != 40 || in.Ckpt.Image["hits"] != int64(12) {
		t.Fatalf("checkpoint mangled: %+v", in.Ckpt)
	}
	for _, d := range []core.Dot{{Replica: 0, EventNo: 1}, {Replica: 0, EventNo: 2}, {Replica: 2, EventNo: 7}} {
		if !in.Ckpt.Dots.Contains(d) {
			t.Fatalf("dot summary lost %v", d)
		}
	}
	if in.Ckpt.Dots.Contains(core.Dot{Replica: 1, EventNo: 1}) {
		t.Fatal("dot summary gained a phantom dot")
	}
}

// TestFramesAreSelfContained asserts a reader can decode consecutive
// frames each with a fresh decoder state (self-contained frames are what
// lets a reconnecting reader join at any frame boundary).
func TestFramesAreSelfContained(t *testing.T) {
	client, server := net.Pipe()
	a, b := Wrap(client), Wrap(server)
	defer a.Close()
	defer b.Close()
	go func() {
		for i := 0; i < 3; i++ {
			if err := a.Send(&Envelope{Kind: KindResync, CommitNo: int64(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		var in Envelope
		if err := b.Recv(&in); err != nil {
			t.Fatal(err)
		}
		if in.Kind != KindResync || in.CommitNo != int64(i) {
			t.Fatalf("frame %d mangled: %+v", i, in)
		}
	}
}

// TestLinkDialsThroughBackoff starts a Send before the listener exists:
// the link must keep re-dialing and deliver once the peer comes up — the
// arbitrary-start-order case of a multi-process deployment.
func TestLinkDialsThroughBackoff(t *testing.T) {
	// Reserve an address, then close it so the first dials fail.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	link := NewLink(addr, Envelope{Kind: KindHello, From: 1})
	defer link.Close()
	sent := make(chan error, 1)
	go func() { sent <- link.Send(&Envelope{Kind: KindResync, CommitNo: 5}) }()

	time.Sleep(50 * time.Millisecond) // let a few dial attempts fail
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	c, err := l2.Accept()
	if err != nil {
		t.Fatal(err)
	}
	conn := Wrap(c)
	defer conn.Close()
	var hello, body Envelope
	if err := conn.Recv(&hello); err != nil {
		t.Fatal(err)
	}
	if hello.Kind != KindHello || hello.From != 1 {
		t.Fatalf("expected hello first, got %+v", hello)
	}
	if err := conn.Recv(&body); err != nil {
		t.Fatal(err)
	}
	if body.Kind != KindResync || body.CommitNo != 5 {
		t.Fatalf("frame mangled: %+v", body)
	}
	if err := <-sent; err != nil {
		t.Fatal(err)
	}
}
