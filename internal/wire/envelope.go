// Package wire is the socket transport of the live driver: length-prefixed
// gob envelopes over TCP, per-peer links with reconnect/backoff, and the
// controller↔node RPC framing that lets each replica of a livenet
// deployment run as a separate OS process (cmd/bayou-node) while the
// controller process keeps the shared recorder, the conformance checkers,
// and the façade surface.
//
// The envelope deliberately mirrors livenet's internal message type: one
// frame carries a whole RB/TOB delivery burst (the same batching the
// in-process inbox performs with maxBurst), so wire-level batching falls
// out of the Effects batch plumbing instead of being reinvented per
// message. Checkpoint images (core.CheckpointRecord) ride in state-transfer
// envelopes as the bootstrap and lagging-learner catch-up payload.
//
// Delivery is at-least-once: a link that reconnects may have lost the
// frame in flight, and the resync handshake (KindResync after recovery or
// bootstrap) refetches anything missed — every receiver path dedups (RB
// duplicate filters, the sequencer's stamp filter, the learner hold-back),
// so duplicates are harmless by construction.
package wire

import (
	"encoding/gob"

	"bayou/internal/core"
	"bayou/internal/spec"
	"bayou/internal/txn"
)

// Kind discriminates envelope payloads.
type Kind int

const (
	// KindHello is the first frame on every fresh connection: From
	// identifies the dialer (a replica id, or ControllerID for the
	// controller link).
	KindHello Kind = iota + 1

	// Peer protocol — the wire form of livenet's replica-to-replica
	// messages. Reqs carries the batch; CommitNo the first commit number
	// of a batch run (KindCommitBatch), the requester's resume cursor
	// (KindResync), or the image's base length (KindStateXfer).
	KindRBDeliver
	KindForward
	KindCommitBatch
	KindStateXfer
	KindResync

	// Controller → node RPCs. Every RPC carries Seq; the node answers
	// with a KindReply frame echoing it.
	KindInvoke
	KindRead
	KindCommitted
	KindStats
	KindCompact
	KindCheckpoint
	KindBaseLen
	KindProbe   // quiesce probe: committed length + internal-work flag
	KindCovered // session coverage query (Read/Write vectors)
	KindCrash
	KindRecover
	KindShutdown
	// KindFaultView broadcasts the controller's fault picture (partition
	// cells + down set) to every node; senders park cross-cell traffic and
	// re-evaluate their parked envelopes on each new view.
	KindFaultView
	// KindDurability asks a node how it came up: whether boot loaded a
	// local snapshot, which generation, how many saves since, and how many
	// peer state transfers it has accepted — the counters that let a test
	// distinguish "recovered from disk" from "rescued by peers".
	KindDurability

	// Node → controller frames: RPC replies and the observation event
	// stream. Events and the replies they order before share one
	// connection, so the controller applies them in emission order.
	KindReply
	KindEvents
)

// ControllerID is the Hello From value of the controller link (replica ids
// are non-negative).
const ControllerID = -1

// Envelope is one wire frame. It is a fat union — gob omits zero fields,
// so unused members cost nothing on the wire — covering the peer protocol,
// the controller RPCs, and the node's event stream.
type Envelope struct {
	Kind Kind
	Seq  uint64 // RPC correlation (controller link)
	From int    // sending replica (hello, peer protocol)

	// Clock is the sender's Lamport clock at send time. Every receiver
	// merges it (clock = max(clock, Clock)) before acting on the frame, so
	// timestamps minted after a message arrives exceed everything the
	// sender had seen — cross-process request order respects causality
	// without a shared clock. The controller stamps it from the largest
	// completion timestamp it has observed, which carries session order
	// across node processes.
	Clock int64

	// Peer protocol payload.
	Reqs     []core.Req
	CommitNo int64
	Ckpt     *core.CheckpointRecord

	// Invoke payload (see livenet's message: the session's frozen demand
	// vectors and lease gate travel with the invocation).
	Sess     int64
	Op       spec.Op
	Strong   bool
	Gated    bool
	FailFast bool
	Read     core.Vec
	Write    core.Vec
	Fence    int64
	CastOK   bool
	CastCeil int64

	// RPC request/reply payload.
	Key   string
	Err   string
	Value spec.Value
	Int   int64
	Bool  bool
	Stats core.Stats

	// Fault-view payload (KindFaultView).
	Cells []int
	Down  []bool

	// Durability payload (KindDurability reply).
	Durab *Durability

	// Event stream payload. Every event carries an absolute sequence
	// number (cumulative per node, durable across restarts): EvSeq is the
	// number of the LAST event in Events, so the first is
	// EvSeq-len(Events)+1. AckEv rides every controller→node RPC request
	// and names the highest event number the controller has applied from
	// that node; the node retires its journal up to it and resends
	// everything after it whenever the controller reconnects — an
	// acknowledged-delivery stream, so a SIGKILL or a dropped connection
	// between emission and application loses nothing.
	Events []Event
	EvSeq  int64
	AckEv  int64
}

// Durability is one node's recovery scorecard (KindDurability reply).
type Durability struct {
	Loaded    bool  // boot restored a local snapshot
	Gen       int64 // generation loaded at boot (0 = none)
	Saves     int64 // snapshots persisted since boot
	XfersIn   int64 // peer checkpoint state transfers accepted since boot
	Committed int64 // committed prefix length right now
}

// Event is the wire form of one recorder-bound observation (livenet's
// obsEvent with the in-process call pointer dropped: the controller owns
// the pending call and finds it by session).
type Event struct {
	EKind int
	Sess  int64
	Dot   core.Dot
	TS    int64
	TOB   bool
	No    int64
	Resp  core.Response
	Trans core.Transition
}

// gob encodes interface-typed fields (spec.Op, spec.Value) only for
// registered concrete types; every operation of the spec catalog and every
// value shape the state objects produce registers here, once, for both
// ends of the connection.
func init() {
	for _, op := range []spec.Op{
		// register
		spec.WriteOp{}, spec.ReadOp{},
		// counter
		spec.IncOp{}, spec.CtrGetOp{},
		// kv
		spec.PutOp{}, spec.GetOp{}, spec.DelOp{}, spec.PutIfAbsentOp{}, spec.CasOp{},
		// list
		spec.AppendOp{}, spec.DuplicateOp{}, spec.ListReadOp{}, spec.GetFirstOp{}, spec.SizeOp{},
		// set
		spec.SetAddOp{}, spec.SetRemoveOp{}, spec.SetContainsOp{}, spec.SetElementsOp{},
		// bank
		spec.DepositOp{}, spec.WithdrawOp{}, spec.BalanceOp{}, spec.TransferOp{},
		// editor
		spec.InsertOp{}, spec.DeleteOp{}, spec.DocReadOp{},
		// meeting
		spec.ReserveOp{}, spec.CancelOp{}, spec.ScheduleOp{},
		// multi-op atomic units: a whole transaction is one op, so it is
		// one envelope — the steps' concrete types are the catalog entries
		// above, already registered.
		txn.Txn{},
	} {
		gob.Register(op)
	}
	for _, v := range []spec.Value{
		int(0), int64(0), float64(0), "", false,
		[]spec.Value(nil), map[string]spec.Value(nil),
		[]string(nil), map[string]bool(nil), map[string]int64(nil),
	} {
		gob.Register(v)
	}
}
