package wire

import (
	"net"
	"testing"

	"bayou/internal/core"
	"bayou/internal/spec"
	"bayou/internal/txn"
)

// A whole transaction is one op, so it is one envelope: the composite unit
// — steps, Require flags, nested catalog ops — survives the framed gob
// codec intact, both as an invocation payload and inside a request batch,
// and the decoded unit still executes with transactional semantics.
func TestTxnRidesOneEnvelope(t *testing.T) {
	client, server := net.Pipe()
	a, b := Wrap(client), Wrap(server)
	defer a.Close()
	defer b.Close()

	transfer := txn.New().
		Require(spec.Withdraw("alice", 80)).
		Do(spec.Deposit("bob", 80)).
		Txn()
	out := Envelope{
		Kind:   KindInvoke,
		Sess:   7,
		Op:     transfer,
		Strong: true,
		Reqs: []core.Req{
			{Timestamp: 3, Dot: core.Dot{Replica: 1, EventNo: 2}, Op: transfer},
		},
	}
	go func() {
		if err := a.Send(&out); err != nil {
			t.Error(err)
		}
	}()
	var in Envelope
	if err := b.Recv(&in); err != nil {
		t.Fatal(err)
	}
	got, ok := in.Op.(txn.Txn)
	if !ok {
		t.Fatalf("invoke op decoded as %T; want txn.Txn", in.Op)
	}
	if got.Name() != transfer.Name() {
		t.Fatalf("decoded txn = %s; want %s", got.Name(), transfer.Name())
	}
	if len(got.Steps) != 2 || !got.Steps[0].Require || got.Steps[1].Require {
		t.Fatalf("Require flags mangled: %+v", got.Steps)
	}
	if len(in.Reqs) != 1 || in.Reqs[0].Op.Name() != transfer.Name() {
		t.Fatalf("request batch mangled: %+v", in.Reqs)
	}

	// The decoded unit still aborts atomically: insufficient funds on the
	// far side of the wire writes nothing.
	store := spec.NewMapTx()
	spec.Deposit("alice", 50).Apply(store)
	if v := got.Apply(store); !spec.IsAborted(v) {
		t.Fatalf("decoded txn response %v; want abort", v)
	}
	if bal := spec.Balance("bob").Apply(store); !spec.Equal(bal, int64(0)) {
		t.Fatalf("decoded txn leaked a partial write: bob = %v", bal)
	}
}
