package experiments

import "testing"

// TestAllExperimentsPass is the repository's master reproduction check:
// every figure, theorem and comparison of the paper regenerates with the
// expected shape.
func TestAllExperimentsPass(t *testing.T) {
	results, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 13 {
		t.Fatalf("got %d experiments, want 13", len(results))
	}
	for _, res := range results {
		if !res.OK() {
			t.Errorf("experiment failed:\n%s", res)
		}
	}
}

func TestResultRendering(t *testing.T) {
	r := Result{ID: "EX", Title: "demo", Rows: []Row{
		{Name: "a", Paper: "p", Measured: "m", OK: true},
		{Name: "b", Paper: "p", Measured: "m", OK: false},
	}}
	if r.OK() {
		t.Error("OK must be false with a mismatch")
	}
	s := r.String()
	if s == "" || len(s) < 10 {
		t.Error("render too short")
	}
}
