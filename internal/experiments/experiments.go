// Package experiments regenerates every evaluation artifact of the paper —
// its two figures, the §2.3 progress phenomena, the three theorems, and the
// comparisons it makes in prose — as machine-checked experiments E1…E13
// (the index lives in DESIGN.md §2; E13 validates this repository's
// incremental/batched execution engine rather than a paper claim). Each
// experiment returns rows of paper-claim vs. measured-result with a pass
// flag; the root bench harness and cmd/bayou-bench print them.
package experiments

import (
	"fmt"
	"strings"

	"bayou/internal/check"
	"bayou/internal/cluster"
	"bayou/internal/core"
	"bayou/internal/scenario"
	"bayou/internal/spec"
	"bayou/internal/workload"
)

// Row is one paper-vs-measured comparison line.
type Row struct {
	Name     string // what is being compared
	Paper    string // the paper's claim / expected shape
	Measured string // what this run produced
	OK       bool
}

// Result is one experiment's outcome.
type Result struct {
	ID    string // "E1" … "E12"
	Title string
	Rows  []Row
}

// OK reports whether every row matched.
func (r Result) OK() bool {
	for _, row := range r.Rows {
		if !row.OK {
			return false
		}
	}
	return true
}

// String renders the result as an aligned table.
func (r Result) String() string {
	var b strings.Builder
	status := "PASS"
	if !r.OK() {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "%s  %s  [%s]\n", r.ID, r.Title, status)
	for _, row := range r.Rows {
		mark := "ok"
		if !row.OK {
			mark = "MISMATCH"
		}
		fmt.Fprintf(&b, "    %-38s paper: %-28s measured: %-28s %s\n",
			row.Name, row.Paper, row.Measured, mark)
	}
	return b.String()
}

func row(name, paper, measured string, ok bool) Row {
	return Row{Name: name, Paper: paper, Measured: measured, OK: ok}
}

func valueRow(name string, want spec.Value, call *cluster.Call) Row {
	measured := "∇ (pending)"
	ok := false
	if call != nil && call.Done() {
		measured = spec.Encode(call.Response().Value)
		ok = spec.Equal(call.Response().Value, want)
	}
	return row(name, spec.Encode(want), measured, ok)
}

func stableRow(name string, want spec.Value, call *cluster.Call) Row {
	measured := "no stable notice"
	ok := false
	if call != nil {
		if stable, has := call.Stable(); has {
			measured = spec.Encode(stable.Value)
			ok = spec.Equal(stable.Value, want)
		}
	}
	return row(name, spec.Encode(want), measured, ok)
}

// E1 reproduces Figure 1: the exact tentative and stable return values, and
// the disagreement between the two clients' perceived orders.
func E1() (Result, error) {
	res := Result{ID: "E1", Title: "Figure 1 — temporary operation reordering"}
	out, err := scenario.Figure1(core.Original)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows,
		valueRow("weak append(a) tentative rval", "a", out.Calls["append(a)"]),
		valueRow("weak append(x) tentative rval", "aax", out.Calls["append(x)"]),
		valueRow("strong duplicate() stable rval", "axax", out.Calls["duplicate()"]),
		stableRow("weak append(a) stable notice (→ a)", "a", out.Calls["append(a)"]),
		stableRow("weak append(x) stable notice (→ ax)", "ax", out.Calls["append(x)"]),
	)
	// The two clients observed append(x) and duplicate() in opposite
	// orders.
	x := out.Calls["append(x)"].Response()
	dup := out.Calls["duplicate()"].Response()
	xSeesDup := containsDot(x.Trace, out.Calls["duplicate()"].Dot())
	dupSeesX := containsDot(dup.Trace, out.Calls["append(x)"].Dot())
	res.Rows = append(res.Rows, row("clients disagree on x vs duplicate order",
		"yes (the anomaly)", fmt.Sprintf("%v", xSeesDup && dupSeesX), xSeesDup && dupSeesX))
	// Convergence: both replicas end with axax.
	conv := spec.Equal(out.Cluster.Replica(0).Read(spec.DefaultListID), out.Cluster.Replica(1).Read(spec.DefaultListID))
	res.Rows = append(res.Rows, row("replicas converge to axax", "yes", fmt.Sprintf("%v", conv), conv))

	// The strong-append variant of the figure: the parenthesized "(→ ax)".
	strongOut, err := figure1StrongAppend()
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, strongOut)
	return res, nil
}

// figure1StrongAppend reruns the Figure 1 schedule with append(x) issued
// strongly at the core level (the scenario package drives the weak case).
func figure1StrongAppend() (Row, error) {
	// The replica-level harness in internal/core's tests covers this
	// exactly; here we drive it through the cluster for completeness.
	c, err := cluster.New(cluster.Config{N: 2, Variant: core.Original, Seed: 4, ManualStepping: true})
	if err != nil {
		return Row{}, err
	}
	c.StabilizeOmega(0)
	sched := c.Scheduler()
	var calls [3]*cluster.Call
	var schedErr error
	invoke := func(i int, id core.ReplicaID, op spec.Op, l core.Level) {
		call, e := c.Invoke(id, op, l)
		if e != nil && schedErr == nil {
			schedErr = e
		}
		calls[i] = call
	}
	sched.At(10, func() { invoke(0, 0, spec.Append("a"), core.Weak); _ = c.DrainReplica(0) })
	sched.At(45, func() { _ = c.DrainReplica(0); _ = c.DrainReplica(1) })
	sched.At(50, func() { invoke(1, 1, spec.Duplicate(), core.Strong) })
	sched.At(55, func() { invoke(2, 0, spec.Append("x"), core.Strong) })
	sched.At(62, func() { _ = c.DrainReplica(0) })
	sched.At(66, func() { _ = c.DrainReplica(1) })
	c.RunFor(70)
	if schedErr != nil {
		return Row{}, schedErr
	}
	for i := 0; i < 50; i++ {
		_ = c.DrainReplica(0)
		_ = c.DrainReplica(1)
		if c.Scheduler().Pending() == 0 {
			break
		}
		c.RunFor(100)
	}
	return valueRow("strong append(x) stable rval", "ax", calls[2]), nil
}

// E2 reproduces Figure 2: circular causality under Algorithm 1, detected by
// the NCC checker, and its elimination by Algorithm 2.
func E2() (Result, error) {
	res := Result{ID: "E2", Title: "Figure 2 — circular causality and its elimination"}
	orig, err := scenario.Figure2(core.Original)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows,
		valueRow("weak append(x) rval (observes y)", "ayx", orig.Calls["append(x)"]),
		valueRow("weak append(y) rval (observes x)", "axy", orig.Calls["append(y)"]),
	)
	ncc := check.NewWitness(orig.History).NCC()
	res.Rows = append(res.Rows, row("Algorithm 1: NCC", "violated (cycle)",
		holdsWord(ncc.Holds), !ncc.Holds))

	mod, err := scenario.Figure2(core.NoCircularCausality)
	if err != nil {
		return res, err
	}
	nccMod := check.NewWitness(mod.History).NCC()
	res.Rows = append(res.Rows, row("Algorithm 2: NCC", "holds",
		holdsWord(nccMod.Holds), nccMod.Holds))
	return res, nil
}

// E3 reproduces the §2.3 unbounded-latency argument.
func E3() (Result, error) {
	res := Result{ID: "E3", Title: "§2.3 — weak ops not bounded wait-free (slow replica)"}
	orig, err := workload.SlowReplicaLatency(core.Original, 3, 12, 40, 60)
	if err != nil {
		return res, err
	}
	first, last := orig[0].Value, orig[len(orig)-1].Value
	res.Rows = append(res.Rows, row("Alg. 1 slow-replica latency growth",
		"grows without bound", fmt.Sprintf("%d -> %d over %d calls", first, last, len(orig)),
		last > 2*first))
	mod, err := workload.SlowReplicaLatency(core.NoCircularCausality, 3, 12, 40, 60)
	if err != nil {
		return res, err
	}
	allZero := true
	for _, p := range mod {
		if p.Value != 0 {
			allZero = false
		}
	}
	res.Rows = append(res.Rows, row("Alg. 2 weak latency",
		"0 (bounded wait-free)", fmt.Sprintf("all zero: %v", allZero), allZero))
	return res, nil
}

// E4 reproduces the second §2.3 argument: slowing the clock shifts the cost
// into rollbacks on the other replicas.
func E4() (Result, error) {
	res := Result{ID: "E4", Title: "§2.3 — clock slowdown causes growing rollbacks elsewhere"}
	slowdowns := []int64{1, 4, 16}
	points, err := workload.ClockSkewRollbacks(core.NoCircularCausality, 3, 10, slowdowns)
	if err != nil {
		return res, err
	}
	growing := points[len(points)-1].Value > points[0].Value
	var vals []string
	for i, p := range points {
		vals = append(vals, fmt.Sprintf("x%d:%d", slowdowns[i], p.Value))
	}
	res.Rows = append(res.Rows, row("fast-replica rollbacks vs clock slowdown",
		"grows with slowdown", strings.Join(vals, " "), growing))
	return res, nil
}

// E5 verifies Theorem 2 across randomized stable runs.
func E5(seeds int) (Result, error) {
	res := Result{ID: "E5", Title: "Theorem 2 — stable runs satisfy FEC(weak) ∧ FEC(strong) ∧ Seq(strong)"}
	pass := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		out, err := scenario.StableRun(seed, 3, 6, core.NoCircularCausality)
		if err != nil {
			return res, err
		}
		w := check.NewWitness(out.History)
		if w.FEC(core.Weak).OK() && w.FEC(core.Strong).OK() && w.Seq(core.Strong).OK() && w.ArTotal().Holds {
			pass++
		}
	}
	res.Rows = append(res.Rows, row("randomized stable runs passing all checks",
		fmt.Sprintf("%d/%d", seeds, seeds), fmt.Sprintf("%d/%d", pass, seeds), pass == seeds))
	return res, nil
}

// E6 verifies Theorem 3 across randomized asynchronous runs.
func E6(seeds int) (Result, error) {
	res := Result{ID: "E6", Title: "Theorem 3 — asynchronous runs: FEC(weak) holds, Seq(strong) unachieved"}
	fecPass, seqFail := 0, 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		out, err := scenario.AsyncRun(seed, 3, 6)
		if err != nil {
			return res, err
		}
		w := check.NewWitness(out.History)
		if w.FEC(core.Weak).OK() {
			fecPass++
		}
		if !w.SeqPendingAware(core.Strong).OK() {
			seqFail++
		}
	}
	res.Rows = append(res.Rows,
		row("FEC(weak) holds", fmt.Sprintf("%d/%d", seeds, seeds), fmt.Sprintf("%d/%d", fecPass, seeds), fecPass == seeds),
		row("Seq(strong) unachieved (strong ops pend)", fmt.Sprintf("%d/%d", seeds, seeds), fmt.Sprintf("%d/%d", seqFail, seeds), seqFail == seeds),
	)
	return res, nil
}

// E7 replays the Theorem 1 impossibility construction and the register
// counterpoint.
func E7() (Result, error) {
	res := Result{ID: "E7", Title: "Theorem 1 — BEC(weak) ∧ Seq(strong) impossible for arbitrary F"}
	out, err := scenario.Theorem1()
	if err != nil {
		return res, err
	}
	search, err := check.Search(out.History, check.BECWeakSeqStrong())
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row("list-type construction satisfiable?",
		"no (impossibility)", fmt.Sprintf("%v (%d ar orders refuted)", search.Satisfiable, search.ExploredArs),
		!search.Satisfiable))
	// FEC(weak) still holds on the same run: Bayou's actual guarantee.
	fec := check.NewWitness(out.History).FEC(core.Weak)
	res.Rows = append(res.Rows, row("same run satisfies FEC(weak)",
		"yes", fmt.Sprintf("%v", fec.OK()), fec.OK()))
	return res, nil
}

// E8 demonstrates the BEC > FEC separation on the minimal reordering
// history.
func E8() (Result, error) {
	res := Result{ID: "E8", Title: "§4 — BEC(weak) is strictly stronger than FEC(weak)"}
	out, err := scenario.StableRun(12, 3, 1, core.NoCircularCausality)
	if err != nil {
		return res, err
	}
	_ = out
	// Use a crafted run that certainly reorders: clock-skewed cluster.
	c, err := cluster.New(cluster.Config{N: 3, Variant: core.NoCircularCausality, Seed: 21,
		ClockSlowdown: map[core.ReplicaID]int64{2: 8}})
	if err != nil {
		return res, err
	}
	c.StabilizeOmega(0)
	for round := 0; round < 4; round++ {
		if _, err := c.Invoke(0, spec.Append("f"), core.Weak); err != nil {
			return res, err
		}
		if _, err := c.Invoke(2, spec.Append("s"), core.Weak); err != nil {
			return res, err
		}
		c.RunFor(25)
		if _, err := c.Invoke(1, spec.ListRead(), core.Weak); err != nil {
			return res, err
		}
		c.RunFor(35)
	}
	if err := c.Settle(0); err != nil {
		return res, err
	}
	c.MarkStable()
	if _, err := c.Invoke(1, spec.ListRead(), core.Weak); err != nil {
		return res, err
	}
	if err := c.Settle(0); err != nil {
		return res, err
	}
	h, err := c.History()
	if err != nil {
		return res, err
	}
	w := check.NewWitness(h)
	fec := w.FEC(core.Weak)
	bec := w.BEC(core.Weak)
	reordered := w.CountReordered()
	res.Rows = append(res.Rows,
		row("temporary reordering occurred", ">0 events", fmt.Sprintf("%d events", reordered), reordered > 0),
		row("FEC(weak)", "holds", holdsWord(fec.OK()), fec.OK()),
		row("BEC(weak)", "violated (RVal)", holdsWord(bec.OK()), !bec.OK()),
	)
	return res, nil
}

// E9 regenerates the baseline comparison table.
func E9() (Result, error) {
	res := Result{ID: "E9", Title: "§2.2/§6 — Bayou vs EC-only store vs SMR vs GSP"}
	rows, err := workload.Compare(7)
	if err != nil {
		return res, err
	}
	expect := map[string]struct {
		weakAvail bool
		strong    bool
	}{
		"bayou (Alg. 2 + Paxos TOB)": {true, true},
		"ec-store (LWW, RB only)":    {true, false},
		"smr (all ops via TOB)":      {false, true},
		"gsp (cloud sequencer)":      {true, false},
	}
	for _, r := range rows {
		want := expect[r.System]
		ok := r.WeakAvailableInMinority == want.weakAvail && r.StrongSupported == want.strong && r.ConvergedAfterHeal
		res.Rows = append(res.Rows, row(r.System,
			fmt.Sprintf("weakAvail=%v strong=%v", want.weakAvail, want.strong),
			fmt.Sprintf("weakAvail=%v strong=%v strongMin=%s rollbacks=%d reordered=%d converged=%v",
				r.WeakAvailableInMinority, r.StrongSupported, r.StrongInMinority, r.Rollbacks, r.Reordered, r.ConvergedAfterHeal),
			ok))
	}
	// Only Bayou shows reordering; only Bayou rolls back.
	res.Rows = append(res.Rows, row("reordering is unique to the mixed system",
		"bayou only", fmt.Sprintf("bayou reordered=%d, baselines 0 by construction", rows[0].Reordered),
		rows[0].Reordered > 0))
	return res, nil
}

// E10 demonstrates the §A.1.2 trade-off: Algorithm 2 gains bounded
// wait-freedom but loses read-your-writes.
func E10() (Result, error) {
	res := Result{ID: "E10", Title: "§A.1.2 — bounded wait-freedom costs read-your-writes"}
	run := func(v core.Variant) (check.Result, error) {
		c, err := cluster.New(cluster.Config{N: 2, Variant: v, Seed: 17})
		if err != nil {
			return check.Result{}, err
		}
		c.StabilizeOmega(0)
		if _, err := c.Invoke(0, spec.Append("w"), core.Weak); err != nil {
			return check.Result{}, err
		}
		if v == core.Original {
			if err := c.Settle(0); err != nil {
				return check.Result{}, err
			}
		}
		if _, err := c.Invoke(0, spec.ListRead(), core.Weak); err != nil {
			return check.Result{}, err
		}
		if err := c.Settle(0); err != nil {
			return check.Result{}, err
		}
		h, err := c.History()
		if err != nil {
			return check.Result{}, err
		}
		return check.NewWitness(h).ReadYourWrites(), nil
	}
	mod, err := run(core.NoCircularCausality)
	if err != nil {
		return res, err
	}
	orig, err := run(core.Original)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows,
		row("Algorithm 2 read-your-writes", "violated", holdsWord(mod.Holds), !mod.Holds),
		row("Algorithm 1 read-your-writes", "holds", holdsWord(orig.Holds), orig.Holds),
	)
	return res, nil
}

// E11 is the TOB ablation: primary commit (original Bayou) vs Paxos.
func E11() (Result, error) {
	res := Result{ID: "E11", Title: "§2.1 — primary commit vs consensus TOB (fault tolerance)"}
	run := func(kind cluster.TOBKind, crash bool) (done bool, err error) {
		c, err := cluster.New(cluster.Config{N: 3, Variant: core.NoCircularCausality, TOB: kind, Seed: 23})
		if err != nil {
			return false, err
		}
		c.StabilizeOmega(1) // for Paxos; primary ignores Ω
		if _, err := c.Invoke(1, spec.Append("pre"), core.Strong); err != nil {
			return false, err
		}
		if err := c.Settle(0); err != nil {
			return false, err
		}
		if crash {
			c.Network().Crash(0) // the primary / a Paxos follower
			c.StabilizeOmega(1)
		}
		call, err := c.Invoke(2, spec.Append("post"), core.Strong)
		if err != nil {
			return false, err
		}
		c.RunFor(20_000)
		return call.Done(), nil
	}
	primaryHealthy, err := run(cluster.PrimaryTOB, false)
	if err != nil {
		return res, err
	}
	primaryCrashed, err := run(cluster.PrimaryTOB, true)
	if err != nil {
		return res, err
	}
	paxosCrashed, err := run(cluster.PaxosTOB, true)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows,
		row("primary TOB, healthy: strong op commits", "yes", fmt.Sprintf("%v", primaryHealthy), primaryHealthy),
		row("primary TOB, primary crashed", "blocks forever", fmt.Sprintf("done=%v", primaryCrashed), !primaryCrashed),
		row("Paxos TOB, one replica crashed", "still commits", fmt.Sprintf("done=%v", paxosCrashed), paxosCrashed),
	)
	return res, nil
}

// E12 profiles rollback cost against timestamp/commit-order divergence.
func E12() (Result, error) {
	res := Result{ID: "E12", Title: "Protocol cost — rollbacks vs clock skew"}
	points, err := workload.RollbackCostSweep(3, 10, []int64{1, 4, 16})
	if err != nil {
		return res, err
	}
	var vals []string
	for _, p := range points {
		vals = append(vals, fmt.Sprintf("x%d:%.2f/op", p.Slowdown, p.RollbacksPerOp))
	}
	growing := points[len(points)-1].RollbacksPerOp > points[0].RollbacksPerOp
	res.Rows = append(res.Rows, row("rollbacks per op vs skew",
		"monotone growth", strings.Join(vals, " "), growing))
	return res, nil
}

// E13 validates the incremental engine's batched draining: the same bursty
// weak workload run with the paper-faithful one-event-per-activation
// discipline and with batched activations (StepBatch 16) converges every
// replica to the identical state, still satisfies FEC(weak), and consumes
// measurably fewer scheduler events.
func E13() (Result, error) {
	res := Result{ID: "E13", Title: "Engine — batched draining: same convergence, fewer events"}
	type outcome struct {
		state  spec.Value
		events int64
		fecOK  bool
	}
	run := func(batch int) (outcome, error) {
		c, err := cluster.New(cluster.Config{N: 3, Variant: core.NoCircularCausality, Seed: 29, StepBatch: batch})
		if err != nil {
			return outcome{}, err
		}
		c.StabilizeOmega(0)
		// Bursts of weak appends build real backlogs on the remote
		// replicas; under Algorithm 2 each call returns at invoke, so a
		// session can burst without blocking.
		labels := []string{"a", "b", "c"}
		for round := 0; round < 6; round++ {
			for i := 0; i < 3; i++ {
				for k := 0; k < 4; k++ {
					if _, err := c.Invoke(core.ReplicaID(i), spec.Append(labels[i]), core.Weak); err != nil {
						return outcome{}, err
					}
				}
			}
			c.RunFor(15)
		}
		if _, err := c.Invoke(0, spec.Append("fin"), core.Strong); err != nil {
			return outcome{}, err
		}
		if err := c.Settle(0); err != nil {
			return outcome{}, err
		}
		// Post-quiescence probes anchor the checker's "eventually"
		// predicates (same discipline as E8).
		c.MarkStable()
		for i := 0; i < 3; i++ {
			if _, err := c.Invoke(core.ReplicaID(i), spec.ListRead(), core.Weak); err != nil {
				return outcome{}, err
			}
		}
		if err := c.Settle(0); err != nil {
			return outcome{}, err
		}
		for i := 1; i < 3; i++ {
			if !spec.Equal(c.Replica(0).Read(spec.DefaultListID), c.Replica(core.ReplicaID(i)).Read(spec.DefaultListID)) {
				return outcome{}, fmt.Errorf("E13: replica %d did not converge (batch=%d)", i, batch)
			}
		}
		h, err := c.History()
		if err != nil {
			return outcome{}, err
		}
		return outcome{
			state:  c.Replica(0).Read(spec.DefaultListID),
			events: c.Scheduler().Steps(),
			fecOK:  check.NewWitness(h).FEC(core.Weak).OK(),
		}, nil
	}
	seq, err := run(1)
	if err != nil {
		return res, err
	}
	bat, err := run(16)
	if err != nil {
		return res, err
	}
	same := spec.Equal(seq.state, bat.state)
	res.Rows = append(res.Rows,
		row("converged state, batch=16 vs batch=1", "identical",
			fmt.Sprintf("equal=%v", same), same),
		row("FEC(weak) under batched draining", "holds", holdsWord(bat.fecOK), bat.fecOK),
		row("scheduler events, batch=16 vs batch=1",
			"fewer", fmt.Sprintf("%d vs %d", bat.events, seq.events), bat.events < seq.events),
	)
	return res, nil
}

// Entry pairs an experiment id with its runner.
type Entry struct {
	ID  string
	Run func() (Result, error)
}

// Registry returns every experiment in order, with default arities bound.
// All and cmd/bayou-bench both derive from it, so the set cannot drift
// between the table, the JSON report and the tests.
func Registry() []Entry {
	return []Entry{
		{"E1", E1}, {"E2", E2}, {"E3", E3}, {"E4", E4},
		{"E5", func() (Result, error) { return E5(8) }},
		{"E6", func() (Result, error) { return E6(8) }},
		{"E7", E7}, {"E8", E8}, {"E9", E9}, {"E10", E10},
		{"E11", E11}, {"E12", E12}, {"E13", E13},
	}
}

// All runs every experiment in order.
func All() ([]Result, error) {
	entries := Registry()
	out := make([]Result, 0, len(entries))
	for _, e := range entries {
		res, err := e.Run()
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func holdsWord(b bool) string {
	if b {
		return "holds"
	}
	return "violated"
}

func containsDot(ds []core.Dot, d core.Dot) bool {
	for _, x := range ds {
		if x == d {
			return true
		}
	}
	return false
}
