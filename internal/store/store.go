// Package store is the stable storage of a replica process: atomic,
// checksummed, generation-versioned snapshot files. Each Save gob-encodes
// one value, frames it with a magic/version header, a length and a CRC32C
// (Castagnoli — the polynomial with hardware support on every platform the
// repo targets), writes it to a temporary file in the same directory,
// fsyncs, and renames it into place — so a crash at any instant leaves
// either the previous generation or a complete new one, never a half
// snapshot under the live name. The newest N generations are kept; Load
// walks them newest-first and silently skips any file that is torn,
// truncated or bit-rotted (the checksum catches all three), so recovery
// degrades one rung at a time: newest generation → previous generation →
// "nothing durable here, bootstrap from peers" (ok=false).
//
// The package knows nothing about what it stores: values are any
// gob-encodable type (interface-typed fields need their concrete types
// registered by the caller, as internal/wire does for the protocol types).
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Suffix is the snapshot file extension; .gitignore and the CI oversize
// guard key on it.
const Suffix = ".bayou-snap"

// DefaultKeep is how many generations Open retains when the caller passes
// keep <= 0: the live one, the fallback, and one more so a torn write
// during pruning still leaves a fallback.
const DefaultKeep = 3

// File format: header then payload.
//
//	magic   uint32  "BYSN"
//	version uint32
//	length  uint64  payload bytes
//	crc     uint32  CRC32C over the payload
//	payload []byte  gob stream
const (
	fileMagic   = 0x4259534e // "BYSN"
	fileVersion = 1
	headerLen   = 4 + 4 + 8 + 4
)

// castagnoli is the CRC32C table, shared with the wire framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Store manages the generations inside one directory. Safe for concurrent
// use; saves are serialized.
type Store struct {
	dir  string
	keep int

	mu      sync.Mutex
	nextGen int64 // guarded by mu
}

// Open prepares dir (creating it if needed) and scans the existing
// generations so fresh saves continue the sequence instead of colliding
// with survivors of an earlier incarnation.
func Open(dir string, keep int) (*Store, error) {
	if keep <= 0 {
		keep = DefaultKeep
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, keep: keep, nextGen: 1}
	gens, err := s.Generations()
	if err != nil {
		return nil, err
	}
	if len(gens) > 0 {
		s.nextGen = gens[len(gens)-1] + 1
	}
	return s, nil
}

// Dir returns the directory the store manages.
func (s *Store) Dir() string { return s.dir }

// Path returns the file name a generation lives under (whether or not it
// exists) — the torn-write tests corrupt snapshots through it.
func (s *Store) Path(gen int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%016d%s", gen, Suffix))
}

// parseGen extracts the generation from a snapshot file name; ok=false for
// anything that is not a snapshot (tmp files, strays).
func parseGen(name string) (int64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, Suffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), Suffix)
	gen, err := strconv.ParseInt(mid, 10, 64)
	if err != nil || gen <= 0 {
		return 0, false
	}
	return gen, true
}

// Generations lists the snapshot generations present on disk, ascending.
func (s *Store) Generations() ([]int64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", s.dir, err)
	}
	var gens []int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if gen, ok := parseGen(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Save writes one snapshot atomically and returns its generation number:
// encode, frame, write to a temp file, fsync, rename into place, fsync the
// directory, prune generations beyond keep. A crash mid-save leaves at
// worst a stray temp file the next Open ignores.
func (s *Store) Save(v any) (int64, error) {
	var payload bytes.Buffer
	payload.Write(make([]byte, headerLen)) // header placeholder
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return 0, fmt.Errorf("store: encode snapshot: %w", err)
	}
	frame := payload.Bytes()
	body := frame[headerLen:]
	binary.BigEndian.PutUint32(frame[0:4], fileMagic)
	binary.BigEndian.PutUint32(frame[4:8], fileVersion)
	binary.BigEndian.PutUint64(frame[8:16], uint64(len(body)))
	binary.BigEndian.PutUint32(frame[16:20], crc32.Checksum(body, castagnoli))

	s.mu.Lock()
	defer s.mu.Unlock()
	gen := s.nextGen
	tmp, err := os.CreateTemp(s.dir, ".snap-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("store: temp snapshot: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, s.Path(gen)); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: publish snapshot: %w", err)
	}
	syncDir(s.dir)
	s.nextGen = gen + 1
	s.pruneLocked()
	return gen, nil
}

// pruneLocked removes the oldest generations beyond keep. Best effort: a
// removal error leaves an extra file behind, never breaks the save.
func (s *Store) pruneLocked() {
	gens, err := s.Generations()
	if err != nil {
		return
	}
	for len(gens) > s.keep {
		os.Remove(s.Path(gens[0]))
		gens = gens[1:]
	}
}

// syncDir fsyncs a directory so a rename survives power loss; on platforms
// or filesystems that refuse, the rename alone still orders the publish.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Load decodes the newest intact snapshot into v and returns its
// generation. Snapshots that fail the header, length or checksum check —
// torn writes, truncation, bit rot — are skipped in favor of the next
// older generation; ok=false (with nil error) means nothing durable
// survived and the caller should bootstrap from peers. Only directory-scan
// failures surface as errors.
func (s *Store) Load(v any) (gen int64, ok bool, err error) {
	gens, err := s.Generations()
	if err != nil {
		return 0, false, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		body, verr := verifyFile(s.Path(gens[i]))
		if verr != nil {
			continue // torn or corrupt: fall back one generation
		}
		if derr := gob.NewDecoder(bytes.NewReader(body)).Decode(v); derr != nil {
			continue
		}
		return gens[i], true, nil
	}
	return 0, false, nil
}

// Verify checks one snapshot file end to end without decoding it; the
// error says what is wrong (missing, short header, bad magic, truncated
// payload, checksum mismatch). The torn-write sweep calls it directly.
func Verify(path string) error {
	_, err := verifyFile(path)
	return err
}

// verifyFile reads and integrity-checks one snapshot, returning its
// payload.
func verifyFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerLen {
		return nil, fmt.Errorf("store: %s: short header (%d bytes)", path, len(data))
	}
	if m := binary.BigEndian.Uint32(data[0:4]); m != fileMagic {
		return nil, fmt.Errorf("store: %s: bad magic %#x", path, m)
	}
	if ver := binary.BigEndian.Uint32(data[4:8]); ver != fileVersion {
		return nil, fmt.Errorf("store: %s: unknown version %d", path, ver)
	}
	n := binary.BigEndian.Uint64(data[8:16])
	if uint64(len(data)-headerLen) != n {
		return nil, fmt.Errorf("store: %s: payload is %d bytes, header says %d (torn write)", path, len(data)-headerLen, n)
	}
	body := data[headerLen:]
	want := binary.BigEndian.Uint32(data[16:20])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("store: %s: checksum %#x, want %#x (corrupt)", path, got, want)
	}
	return body, nil
}

// NewestPath returns the path of the newest snapshot in dir (by
// generation), for harnesses that corrupt it before a restart. ok=false
// when dir holds no snapshots.
func NewestPath(dir string) (string, bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", false
	}
	best := int64(-1)
	name := ""
	for _, e := range entries {
		if gen, ok := parseGen(e.Name()); ok && gen > best {
			best = gen
			name = e.Name()
		}
	}
	if best < 0 {
		return "", false
	}
	return filepath.Join(dir, name), true
}
