package store

import (
	"os"
	"path/filepath"
	"testing"
)

// payload is a representative nested value: interface-free (the caller
// registers concrete types for interface fields; the store itself is
// payload-blind).
type payload struct {
	Name  string
	Seq   int64
	Log   []string
	Index map[string]int64
}

func sample(seq int64) payload {
	return payload{
		Name:  "replica-2",
		Seq:   seq,
		Log:   []string{"r0#1", "r1#4", "r2#2"},
		Index: map[string]int64{"ctr": seq, "gset": seq * 2},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		gen, err := s.Save(sample(i))
		if err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
		if gen != i {
			t.Fatalf("save %d: generation %d", i, gen)
		}
	}
	var got payload
	gen, ok, err := s.Load(&got)
	if err != nil || !ok {
		t.Fatalf("load: gen=%d ok=%v err=%v", gen, ok, err)
	}
	if gen != 5 || got.Seq != 5 || got.Index["gset"] != 10 {
		t.Fatalf("loaded gen %d payload %+v, want generation 5", gen, got)
	}
	gens, err := s.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 || gens[0] != 3 || gens[2] != 5 {
		t.Fatalf("kept generations %v, want [3 4 5]", gens)
	}
}

func TestOpenContinuesGenerationSequence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save(sample(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save(sample(2)); err != nil {
		t.Fatal(err)
	}
	// A fresh Open (process restart) must not reuse generation numbers.
	s2, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := s2.Save(sample(3))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 {
		t.Fatalf("post-restart save got generation %d, want 3", gen)
	}
}

func TestLoadEmptyDirSignalsBootstrap(t *testing.T) {
	s, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	gen, ok, err := s.Load(&got)
	if err != nil {
		t.Fatalf("load on empty dir errored: %v", err)
	}
	if ok || gen != 0 {
		t.Fatalf("load on empty dir: gen=%d ok=%v, want clean bootstrap signal", gen, ok)
	}
}

// TestTornWriteSweep is the satellite recovery sweep: the newest snapshot
// is truncated at EVERY byte boundary (header, length field, mid-payload,
// one short of complete) and separately bit-flipped at every byte. Load
// must never panic, never return garbage, and always yield either the
// prior generation or the clean bootstrap signal.
func TestTornWriteSweep(t *testing.T) {
	build := func(t *testing.T) (*Store, string) {
		t.Helper()
		s, err := Open(t.TempDir(), 3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Save(sample(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Save(sample(2)); err != nil {
			t.Fatal(err)
		}
		newest, ok := NewestPath(s.Dir())
		if !ok {
			t.Fatal("no newest snapshot")
		}
		return s, newest
	}
	assertFallback := func(t *testing.T, s *Store, what string) {
		t.Helper()
		var got payload
		gen, ok, err := s.Load(&got)
		if err != nil {
			t.Fatalf("%s: load errored: %v", what, err)
		}
		if !ok || gen != 1 || got.Seq != 1 {
			t.Fatalf("%s: load gave gen=%d ok=%v seq=%d, want prior generation 1", what, gen, ok, got.Seq)
		}
	}

	probe, newest := build(t)
	whole, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	_ = probe

	t.Run("truncate-every-boundary", func(t *testing.T) {
		for cut := 0; cut < len(whole); cut++ {
			s, newest := build(t)
			if err := os.Truncate(newest, int64(cut)); err != nil {
				t.Fatal(err)
			}
			if err := Verify(newest); err == nil {
				t.Fatalf("cut=%d: truncated snapshot verified clean", cut)
			}
			assertFallback(t, s, "cut="+string(rune('0'+cut%10)))
		}
	})

	t.Run("flip-every-byte", func(t *testing.T) {
		// Flipping a bit anywhere — magic, version, length, checksum, or
		// payload — must be detected.
		for off := 0; off < len(whole); off++ {
			s, newest := build(t)
			data := append([]byte(nil), whole...)
			data[off] ^= 0x40
			if err := os.WriteFile(newest, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := Verify(newest); err == nil {
				t.Fatalf("flip at %d: corrupt snapshot verified clean", off)
			}
			assertFallback(t, s, "flip")
		}
	})

	t.Run("all-generations-torn", func(t *testing.T) {
		s, _ := build(t)
		gens, err := s.Generations()
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range gens {
			if err := os.Truncate(s.Path(g), 7); err != nil {
				t.Fatal(err)
			}
		}
		var got payload
		gen, ok, err := s.Load(&got)
		if err != nil {
			t.Fatalf("load with every generation torn errored: %v", err)
		}
		if ok || gen != 0 {
			t.Fatalf("load with every generation torn: gen=%d ok=%v, want bootstrap signal", gen, ok)
		}
	})
}

func TestStrayFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	for _, stray := range []string{".snap-123.tmp", "snap-notanumber" + Suffix, "README"} {
		if err := os.WriteFile(filepath.Join(dir, stray), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := s.Save(sample(1))
	if err != nil || gen != 1 {
		t.Fatalf("save among strays: gen=%d err=%v", gen, err)
	}
	var got payload
	if _, ok, _ := s.Load(&got); !ok || got.Seq != 1 {
		t.Fatalf("load among strays failed: ok=%v got=%+v", ok, got)
	}
}
