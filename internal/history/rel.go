package history

import "fmt"

// Rel is a binary relation over the events 0..n-1 of one history,
// represented densely. It implements the relation algebra of §3.1 needed by
// the correctness predicates: union, composition, transitive closure,
// acyclicity, totality, restriction and rank.
type Rel struct {
	n   int
	adj []bool // adj[i*n+j] <=> (i, j) ∈ rel
}

// NewRel returns the empty relation over n events.
func NewRel(n int) *Rel { return &Rel{n: n, adj: make([]bool, n*n)} }

// Size returns the number of events the relation ranges over.
func (r *Rel) Size() int { return r.n }

// Add inserts the pair (a, b).
func (r *Rel) Add(a, b EventID) { r.adj[int(a)*r.n+int(b)] = true }

// Has reports whether (a, b) ∈ rel.
func (r *Rel) Has(a, b EventID) bool { return r.adj[int(a)*r.n+int(b)] }

// Pairs returns the number of pairs in the relation.
func (r *Rel) Pairs() int {
	c := 0
	for _, v := range r.adj {
		if v {
			c++
		}
	}
	return c
}

// Clone returns a deep copy.
func (r *Rel) Clone() *Rel {
	out := NewRel(r.n)
	copy(out.adj, r.adj)
	return out
}

// Union returns rel ∪ other.
func (r *Rel) Union(other *Rel) *Rel {
	if r.n != other.n {
		panic(fmt.Sprintf("history: union of relations over %d and %d events", r.n, other.n))
	}
	out := r.Clone()
	for i, v := range other.adj {
		if v {
			out.adj[i] = true
		}
	}
	return out
}

// Compose returns rel ; other (§3.1).
func (r *Rel) Compose(other *Rel) *Rel {
	if r.n != other.n {
		panic(fmt.Sprintf("history: compose of relations over %d and %d events", r.n, other.n))
	}
	out := NewRel(r.n)
	for a := 0; a < r.n; a++ {
		for b := 0; b < r.n; b++ {
			if !r.adj[a*r.n+b] {
				continue
			}
			for c := 0; c < r.n; c++ {
				if other.adj[b*r.n+c] {
					out.adj[a*r.n+c] = true
				}
			}
		}
	}
	return out
}

// TransitiveClosure returns rel⁺ (Floyd–Warshall; adequate for the history
// sizes the checkers handle).
func (r *Rel) TransitiveClosure() *Rel {
	out := r.Clone()
	n := out.n
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !out.adj[i*n+k] {
				continue
			}
			for j := 0; j < n; j++ {
				if out.adj[k*n+j] {
					out.adj[i*n+j] = true
				}
			}
		}
	}
	return out
}

// Acyclic reports whether the relation has no cycle, via DFS; self-loops
// count as cycles. If a cycle exists, one witness cycle is returned.
func (r *Rel) Acyclic() (bool, []EventID) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, r.n)
	parent := make([]int, r.n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []EventID
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for v := 0; v < r.n; v++ {
			if !r.adj[u*r.n+v] {
				continue
			}
			switch color[v] {
			case gray:
				// Reconstruct u -> ... -> v cycle.
				cycle = append(cycle, EventID(v))
				for x := u; x != v && x != -1; x = parent[x] {
					cycle = append(cycle, EventID(x))
				}
				return false
			case white:
				parent[v] = u
				if !dfs(v) {
					return false
				}
			}
		}
		color[u] = black
		return true
	}
	for i := 0; i < r.n; i++ {
		if color[i] == white && !dfs(i) {
			return false, cycle
		}
	}
	return true, nil
}

// IsStrictTotalOrder reports whether the relation is a strict total order
// over all n events (§3.1: irreflexive, transitive, total).
func (r *Rel) IsStrictTotalOrder() bool {
	n := r.n
	for a := 0; a < n; a++ {
		if r.adj[a*n+a] {
			return false
		}
		for b := 0; b < n; b++ {
			if a != b && !r.adj[a*n+b] && !r.adj[b*n+a] {
				return false
			}
			if a != b && r.adj[a*n+b] && r.adj[b*n+a] {
				return false
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if !r.adj[a*n+b] {
				continue
			}
			for c := 0; c < n; c++ {
				if r.adj[b*n+c] && !r.adj[a*n+c] {
					return false
				}
			}
		}
	}
	return true
}

// Restrict returns rel|S = rel ∩ (S × S).
func (r *Rel) Restrict(s map[EventID]bool) *Rel {
	out := NewRel(r.n)
	for a := 0; a < r.n; a++ {
		if !s[EventID(a)] {
			continue
		}
		for b := 0; b < r.n; b++ {
			if s[EventID(b)] && r.adj[a*r.n+b] {
				out.adj[a*r.n+b] = true
			}
		}
	}
	return out
}

// Rank implements the paper's rank(S, rel, a) = |{x ∈ S : x rel a}| (§4.2).
func (r *Rel) Rank(s []EventID, a EventID) int {
	c := 0
	for _, x := range s {
		if r.Has(x, a) {
			c++
		}
	}
	return c
}

// FromLess builds a relation from a pairwise comparator over the events,
// adding (i, j) whenever less(i, j).
func FromLess(n int, less func(a, b EventID) bool) *Rel {
	out := NewRel(n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && less(EventID(a), EventID(b)) {
				out.Add(EventID(a), EventID(b))
			}
		}
	}
	return out
}
