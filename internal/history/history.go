// Package history implements the observable-behaviour side of the paper's
// formal framework (§3): histories as event graphs H = (E, op, rval, rb, ß,
// lvl), the derived session order so = rb ∩ ß, and the relation algebra the
// correctness predicates are built from.
//
// Each event additionally carries the *witness data* recorded by the cluster
// driver from the protocol's own run — the request dot and timestamp, the
// TOB delivery position (tobNo), and exec(e), the state-object trace from
// which the response was computed. The witness data is what lets
// internal/check construct vis, ar and par exactly as in the proofs of
// Theorems 2 and 3 instead of searching for them; the search-mode checker in
// internal/check ignores the witness fields and works from the observable
// history alone.
package history

import (
	"fmt"
	"sort"

	"bayou/internal/core"
	"bayou/internal/spec"
)

// EventID indexes events within one history.
type EventID int

// Event is one invocation in the history, with observables (top group) and
// run witnesses (bottom group).
type Event struct {
	ID      EventID
	Session core.SessionID // ß: events with equal Session are same-session
	Op      spec.Op
	Level   core.Level
	RVal    spec.Value
	Pending bool  // rval(e) = ∇
	Invoke  int64 // global logical time of the invoke event (strictly ordered)
	Return  int64 // global logical time of the response; undefined while Pending

	// WallInvoke/WallReturn are the simulated wall-clock times of the
	// invocation and response, used by the latency experiments (the
	// Invoke/Return fields above are logical sequence numbers that break
	// same-instant ties for the rb relation).
	WallInvoke int64
	WallReturn int64

	// Witness data (see package comment).
	Dot       core.Dot
	Timestamp int64
	TOBCast   bool
	TOBNo     int64 // 1-based delivery position; -1 if never TOB-delivered
	Trace     []core.Dot
	// TraceBase is recorder-internal bookkeeping: while a run is live, Trace
	// may hold only the suffix of exec(e) past the responding replica's
	// checkpoint, with TraceBase counting the implicit committed-prefix
	// entries (commit positions 1..TraceBase, in commit order). The recorder
	// materializes the absolute trace — and zeroes this field — when it
	// assembles the History, so checkers always see full traces.
	TraceBase    int
	CommittedLen int

	// LeaseRead marks a strong read served locally under the ordering lease
	// (zero proposal rounds): it was never TOB-cast, but it *is* anchored in
	// the commit order — LeaseNo is the length of the committed prefix it
	// read, placing it between the commits numbered LeaseNo and LeaseNo+1 in
	// the arbitration the checkers reconstruct.
	LeaseRead bool
	LeaseNo   int64

	// Session-guarantee witnesses: the guarantee mask the issuing session
	// carried, and the demand vectors the serving replica proved coverage
	// of before accepting the invocation (zero for plain sessions). The
	// guarantee checker replays these against the trace witnesses.
	Guarantees core.Guarantee
	ReadVec    core.Vec
	WriteVec   core.Vec
}

// IsReadOnly reports whether the event's operation is read-only.
func (e *Event) IsReadOnly() bool { return e.Op.ReadOnly() }

// History is a well-formed history plus the quiescence cutoff used by the
// finite-trace adaptations of the "eventually" predicates (see DESIGN.md §3).
type History struct {
	Events []*Event
	// StableAt is the global time after which the run had quiesced: all
	// messages delivered, all internal work drained. Events invoked
	// after StableAt act as the probes against which EV and CPar are
	// checked. Zero means "treat every event as a probe".
	StableAt int64

	byDot map[core.Dot]*Event
}

// New assembles a history from events, indexing them by dot and assigning
// IDs in slice order.
func New(events []*Event, stableAt int64) (*History, error) {
	h := &History{Events: events, StableAt: stableAt, byDot: make(map[core.Dot]*Event, len(events))}
	for i, e := range events {
		e.ID = EventID(i)
		if _, dup := h.byDot[e.Dot]; dup {
			return nil, fmt.Errorf("history: duplicate dot %s", e.Dot)
		}
		h.byDot[e.Dot] = e
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// validate enforces well-formedness (§3.2): per session, operations are
// sequential and nothing follows a pending operation.
func (h *History) validate() error {
	bySession := make(map[core.SessionID][]*Event)
	for _, e := range h.Events {
		bySession[e.Session] = append(bySession[e.Session], e)
	}
	for s, evs := range bySession {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Invoke < evs[j].Invoke })
		for i := 0; i < len(evs)-1; i++ {
			if evs[i].Pending {
				return fmt.Errorf("history: session %d has event after pending %s", s, evs[i].Dot)
			}
			if evs[i].Return > evs[i+1].Invoke {
				return fmt.Errorf("history: session %d overlapping events %s, %s", s, evs[i].Dot, evs[i+1].Dot)
			}
		}
	}
	return nil
}

// ByDot returns the event with the given dot, or nil.
func (h *History) ByDot(d core.Dot) *Event { return h.byDot[d] }

// ReturnsBefore is rb: a returned before b was invoked (real time).
func (h *History) ReturnsBefore(a, b *Event) bool {
	return !a.Pending && a.Return < b.Invoke
}

// SameSession is ß.
func (h *History) SameSession(a, b *Event) bool { return a.Session == b.Session }

// SessionOrder is so = rb ∩ ß.
func (h *History) SessionOrder(a, b *Event) bool {
	return h.SameSession(a, b) && h.ReturnsBefore(a, b)
}

// Levels returns the events at the given level.
func (h *History) Levels(l core.Level) []*Event {
	var out []*Event
	for _, e := range h.Events {
		if e.Level == l {
			out = append(out, e)
		}
	}
	return out
}

// Updating returns the non-read-only events.
func (h *History) Updating() []*Event {
	var out []*Event
	for _, e := range h.Events {
		if !e.IsReadOnly() {
			out = append(out, e)
		}
	}
	return out
}

// Probes returns the non-pending events invoked after the quiescence cutoff
// (the finite-trace stand-ins for "all but finitely many subsequent
// events").
func (h *History) Probes() []*Event {
	var out []*Event
	for _, e := range h.Events {
		if !e.Pending && e.Invoke > h.StableAt {
			out = append(out, e)
		}
	}
	return out
}

// ReqLess is the request order (timestamp, dot) of Algorithm 1 line 2,
// lifted to events.
func ReqLess(a, b *Event) bool {
	if a.Timestamp != b.Timestamp {
		return a.Timestamp < b.Timestamp
	}
	if a.Dot.Replica != b.Dot.Replica {
		return a.Dot.Replica < b.Dot.Replica
	}
	return a.Dot.EventNo < b.Dot.EventNo
}
