package history

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bayou/internal/core"
	"bayou/internal/spec"
)

func ev(session core.SessionID, eventNo int64, op spec.Op, level core.Level, invoke, ret int64) *Event {
	return &Event{
		Session:   session,
		Op:        op,
		Level:     level,
		Invoke:    invoke,
		Return:    ret,
		Dot:       core.Dot{Replica: core.ReplicaID(session), EventNo: eventNo},
		Timestamp: invoke,
	}
}

func TestNewAssignsIDsAndIndexes(t *testing.T) {
	a := ev(0, 1, spec.Append("a"), core.Weak, 1, 2)
	b := ev(1, 1, spec.Append("b"), core.Weak, 3, 4)
	h, err := New([]*Event{a, b}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != 0 || b.ID != 1 {
		t.Error("ids not assigned in order")
	}
	if h.ByDot(core.Dot{Replica: 1, EventNo: 1}) != b {
		t.Error("ByDot lookup failed")
	}
}

func TestDuplicateDotRejected(t *testing.T) {
	a := ev(0, 1, spec.Append("a"), core.Weak, 1, 2)
	b := ev(0, 1, spec.Append("b"), core.Weak, 3, 4)
	if _, err := New([]*Event{a, b}, 0); err == nil {
		t.Error("duplicate dot must be rejected")
	}
}

func TestWellFormedness(t *testing.T) {
	// Overlapping same-session events are not well-formed.
	a := ev(0, 1, spec.Append("a"), core.Weak, 1, 10)
	b := ev(0, 2, spec.Append("b"), core.Weak, 5, 12)
	if _, err := New([]*Event{a, b}, 0); err == nil {
		t.Error("overlapping session events must be rejected")
	}
	// An event after a pending one is not well-formed.
	p := ev(0, 1, spec.Append("a"), core.Strong, 1, 0)
	p.Pending = true
	q := ev(0, 2, spec.Append("b"), core.Weak, 5, 6)
	if _, err := New([]*Event{p, q}, 0); err == nil {
		t.Error("event after pending must be rejected")
	}
}

func TestRelationsRbSoProbes(t *testing.T) {
	a := ev(0, 1, spec.Append("a"), core.Weak, 1, 2)
	b := ev(0, 2, spec.Append("b"), core.Weak, 3, 4)
	c := ev(1, 1, spec.Append("c"), core.Weak, 3, 5)
	d := ev(1, 2, spec.ListRead(), core.Weak, 50, 51)
	h, err := New([]*Event{a, b, c, d}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !h.ReturnsBefore(a, b) || !h.ReturnsBefore(a, c) {
		t.Error("rb edges missing")
	}
	if h.ReturnsBefore(b, c) {
		t.Error("overlapping events are not rb-ordered")
	}
	if !h.SessionOrder(a, b) || h.SessionOrder(a, c) {
		t.Error("so must be rb ∩ ß")
	}
	probes := h.Probes()
	if len(probes) != 1 || probes[0] != d {
		t.Errorf("probes = %v, want [d]", probes)
	}
	if len(h.Levels(core.Weak)) != 4 {
		t.Error("levels filter")
	}
	if len(h.Updating()) != 3 {
		t.Error("updating filter")
	}
}

func TestReqLess(t *testing.T) {
	a := ev(2, 1, spec.Append("a"), core.Weak, 5, 6)
	b := ev(1, 9, spec.Append("b"), core.Weak, 5, 6)
	b.Invoke = 7
	b.Timestamp = 5 // same timestamp: replica id breaks the tie
	if !ReqLess(b, a) || ReqLess(a, b) {
		t.Error("request order must tiebreak on replica id")
	}
	c := ev(0, 1, spec.Append("c"), core.Weak, 9, 10)
	if !ReqLess(a, c) {
		t.Error("lower timestamp first")
	}
}

func TestRelBasics(t *testing.T) {
	r := NewRel(3)
	r.Add(0, 1)
	r.Add(1, 2)
	if !r.Has(0, 1) || r.Has(1, 0) {
		t.Error("Has")
	}
	if r.Pairs() != 2 {
		t.Error("Pairs")
	}
	tc := r.TransitiveClosure()
	if !tc.Has(0, 2) {
		t.Error("closure missing composite edge")
	}
	if ok, _ := r.Acyclic(); !ok {
		t.Error("chain must be acyclic")
	}
	r.Add(2, 0)
	if ok, cyc := r.Acyclic(); ok || len(cyc) == 0 {
		t.Error("cycle not detected")
	}
}

func TestRelCompose(t *testing.T) {
	a := NewRel(3)
	a.Add(0, 1)
	b := NewRel(3)
	b.Add(1, 2)
	c := a.Compose(b)
	if !c.Has(0, 2) || c.Pairs() != 1 {
		t.Error("compose")
	}
}

func TestRelTotalOrder(t *testing.T) {
	r := FromLess(4, func(a, b EventID) bool { return a < b })
	if !r.IsStrictTotalOrder() {
		t.Error("< over ids must be a strict total order")
	}
	r2 := NewRel(3)
	r2.Add(0, 1)
	if r2.IsStrictTotalOrder() {
		t.Error("partial relation must not be total")
	}
	// Intransitive "total" relation (rock-paper-scissors).
	r3 := NewRel(3)
	r3.Add(0, 1)
	r3.Add(1, 2)
	r3.Add(2, 0)
	if r3.IsStrictTotalOrder() {
		t.Error("cyclic relation must not be a strict total order")
	}
}

func TestRelRestrictAndRank(t *testing.T) {
	r := FromLess(5, func(a, b EventID) bool { return a < b })
	s := map[EventID]bool{1: true, 3: true}
	res := r.Restrict(s)
	if !res.Has(1, 3) || res.Has(0, 1) || res.Has(1, 2) {
		t.Error("restrict")
	}
	if got := r.Rank([]EventID{0, 1, 2, 3}, 2); got != 2 {
		t.Errorf("rank = %d, want 2", got)
	}
}

func TestUnionDisjoint(t *testing.T) {
	a := NewRel(2)
	a.Add(0, 1)
	b := NewRel(2)
	b.Add(1, 0)
	u := a.Union(b)
	if !u.Has(0, 1) || !u.Has(1, 0) {
		t.Error("union")
	}
	if a.Has(1, 0) {
		t.Error("union must not mutate receiver")
	}
}

// Property: the transitive closure of an order induced by a comparator over
// distinct keys is a strict total order, and acyclic.
func TestClosureOfComparatorProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 2
		r := rand.New(rand.NewSource(seed))
		keys := r.Perm(n)
		rel := FromLess(n, func(a, b EventID) bool { return keys[a] < keys[b] })
		if !rel.IsStrictTotalOrder() {
			return false
		}
		ok, _ := rel.Acyclic()
		if !ok {
			return false
		}
		return rel.TransitiveClosure().Pairs() == rel.Pairs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: closure is idempotent and monotone w.r.t. the base relation.
func TestClosureIdempotentProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%10) + 2
		m := int(mRaw % 20)
		r := rand.New(rand.NewSource(seed))
		rel := NewRel(n)
		for i := 0; i < m; i++ {
			rel.Add(EventID(r.Intn(n)), EventID(r.Intn(n)))
		}
		c1 := rel.TransitiveClosure()
		c2 := c1.TransitiveClosure()
		if c1.Pairs() != c2.Pairs() {
			return false
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if rel.Has(EventID(a), EventID(b)) && !c1.Has(EventID(a), EventID(b)) {
					return false
				}
				if c1.Has(EventID(a), EventID(b)) != c2.Has(EventID(a), EventID(b)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
