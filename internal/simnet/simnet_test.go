package simnet

import (
	"testing"

	"bayou/internal/sim"
)

type sink struct {
	got []string
}

func (s *sink) handler() Handler {
	return func(from NodeID, payload any) {
		s.got = append(s.got, payload.(string))
	}
}

func newNet(t *testing.T, nodes int) (*sim.Scheduler, *Network, []*sink) {
	t.Helper()
	sched := sim.New(7)
	net := New(sched)
	sinks := make([]*sink, nodes)
	for i := 0; i < nodes; i++ {
		sinks[i] = &sink{}
		net.Register(NodeID(i), sinks[i].handler())
	}
	return sched, net, sinks
}

func TestSendDelivers(t *testing.T) {
	sched, net, sinks := newNet(t, 2)
	net.Send(0, 1, "hello")
	sched.Run(0)
	if len(sinks[1].got) != 1 || sinks[1].got[0] != "hello" {
		t.Errorf("sink 1 got %v", sinks[1].got)
	}
	if len(sinks[0].got) != 0 {
		t.Errorf("sink 0 must receive nothing, got %v", sinks[0].got)
	}
}

func TestBroadcastSkipsSender(t *testing.T) {
	sched, net, sinks := newNet(t, 3)
	net.Broadcast(0, "m")
	sched.Run(0)
	if len(sinks[0].got) != 0 {
		t.Errorf("sender received its own broadcast: %v", sinks[0].got)
	}
	for i := 1; i < 3; i++ {
		if len(sinks[i].got) != 1 {
			t.Errorf("sink %d got %v", i, sinks[i].got)
		}
	}
}

func TestPerLinkFIFO(t *testing.T) {
	sched, net, sinks := newNet(t, 2)
	// Decreasing latency would reorder messages without the FIFO watermark.
	lat := []sim.Time{50, 10, 1}
	i := 0
	net.SetLatency(func(from, to NodeID) sim.Time {
		l := lat[i%len(lat)]
		i++
		return l
	})
	net.Send(0, 1, "first")
	net.Send(0, 1, "second")
	net.Send(0, 1, "third")
	sched.Run(0)
	want := []string{"first", "second", "third"}
	for j, w := range want {
		if sinks[1].got[j] != w {
			t.Fatalf("delivery order = %v, want %v", sinks[1].got, want)
		}
	}
}

func TestPartitionHoldsAndHealReleases(t *testing.T) {
	sched, net, sinks := newNet(t, 3)
	net.Partition([]NodeID{0}, []NodeID{1, 2})
	net.Send(0, 1, "across")
	net.Send(1, 2, "within")
	sched.Run(0)
	if len(sinks[1].got) != 0 {
		t.Errorf("partitioned message delivered: %v", sinks[1].got)
	}
	if len(sinks[2].got) != 1 || sinks[2].got[0] != "within" {
		t.Errorf("intra-partition message lost: %v", sinks[2].got)
	}
	if net.HeldCount() != 1 {
		t.Errorf("held = %d, want 1", net.HeldCount())
	}
	net.Heal()
	sched.Run(0)
	if len(sinks[1].got) != 1 || sinks[1].got[0] != "across" {
		t.Errorf("held message not delivered after heal: %v", sinks[1].got)
	}
}

func TestPartitionAtDeliveryTimeReholds(t *testing.T) {
	sched, net, sinks := newNet(t, 2)
	net.Send(0, 1, "inflight")
	// Partition strikes while the message is in flight.
	net.Partition([]NodeID{0}, []NodeID{1})
	sched.Run(0)
	if len(sinks[1].got) != 0 {
		t.Errorf("in-flight message crossed a partition: %v", sinks[1].got)
	}
	net.Heal()
	sched.Run(0)
	if len(sinks[1].got) != 1 {
		t.Errorf("in-flight message lost after heal: %v", sinks[1].got)
	}
}

func TestRepartitionKeepsHolding(t *testing.T) {
	sched, net, sinks := newNet(t, 3)
	net.Partition([]NodeID{0}, []NodeID{1, 2})
	net.Send(0, 1, "m")
	sched.Run(0)
	// Repartition differently but still separating 0 from 1.
	net.Partition([]NodeID{0, 2}, []NodeID{1})
	sched.Run(0)
	if len(sinks[1].got) != 0 {
		t.Errorf("message crossed while still separated: %v", sinks[1].got)
	}
	net.Heal()
	sched.Run(0)
	if len(sinks[1].got) != 1 {
		t.Errorf("message lost: %v", sinks[1].got)
	}
}

func TestCrashDropsTraffic(t *testing.T) {
	sched, net, sinks := newNet(t, 2)
	net.Send(0, 1, "before")
	net.Crash(1)
	net.Send(0, 1, "after")
	sched.Run(0)
	if len(sinks[1].got) != 0 {
		t.Errorf("crashed node received messages: %v", sinks[1].got)
	}
	net.Crash(0)
	net.Send(0, 1, "fromCrashed")
	sched.Run(0)
	st := net.Stats()
	if st.Delivered != 0 {
		t.Errorf("delivered = %d, want 0", st.Delivered)
	}
}

// TestCrashRecoverSemantics pins the chosen crashed-node semantics: traffic
// toward a crashed node is dropped for good and counted DroppedCrash —
// Recover does NOT replay it (the protocol resyncs instead) — while
// partition-held messages survive a crash–recover of the target and are
// released once both the partition and the crash are gone.
func TestCrashRecoverSemantics(t *testing.T) {
	sched, net, sinks := newNet(t, 3)
	net.Crash(1)
	net.Send(0, 1, "lost")
	sched.Run(0)
	st := net.Stats()
	if st.DroppedCrash != 1 {
		t.Errorf("DroppedCrash = %d, want 1", st.DroppedCrash)
	}
	net.Recover(1)
	sched.Run(0)
	if len(sinks[1].got) != 0 {
		t.Errorf("recovery replayed crash-dropped traffic: %v", sinks[1].got)
	}
	// In contrast, a message held on a partition outlives the crash.
	net.Partition([]NodeID{0}, []NodeID{1, 2})
	net.Send(0, 1, "parked")
	sched.Run(0)
	net.Crash(1)
	net.Heal() // held, not dropped: the target is down but the link retransmits
	sched.Run(0)
	if len(sinks[1].got) != 0 {
		t.Errorf("delivered to a crashed node: %v", sinks[1].got)
	}
	if st := net.Stats(); st.DroppedCrash != 1 {
		t.Errorf("partition-held message dropped on crash: DroppedCrash = %d, want 1", st.DroppedCrash)
	}
	net.Recover(1)
	sched.Run(0)
	if len(sinks[1].got) != 1 || sinks[1].got[0] != "parked" {
		t.Errorf("partition-held message not released after recover: %v", sinks[1].got)
	}
}

// TestCrashedSenderInFlightDelivers pins the flip side: a message already in
// flight (or parked on a partition) when its sender crashes has left the
// sender and still delivers.
func TestCrashedSenderInFlightDelivers(t *testing.T) {
	sched, net, sinks := newNet(t, 3)
	net.Partition([]NodeID{0}, []NodeID{1})
	net.Send(0, 1, "sent-then-died")
	sched.Run(0)
	net.Crash(0)
	net.Heal()
	sched.Run(0)
	if len(sinks[1].got) != 1 || sinks[1].got[0] != "sent-then-died" {
		t.Errorf("in-flight message from crashed sender lost: %v", sinks[1].got)
	}
}

func TestSlowLinkDelaysButFIFO(t *testing.T) {
	sched, net, sinks := newNet(t, 2)
	net.SlowLink(0, 1, 10)
	net.Send(0, 1, "slow")
	sched.RunFor(50) // default latency 10 × factor 10 = 100 ticks
	if len(sinks[1].got) != 0 {
		t.Errorf("slowed message arrived early: %v", sinks[1].got)
	}
	net.SlowLink(0, 1, 1)
	net.Send(0, 1, "fast")
	sched.Run(0)
	want := []string{"slow", "fast"}
	if len(sinks[1].got) != 2 || sinks[1].got[0] != want[0] || sinks[1].got[1] != want[1] {
		t.Errorf("delivery = %v, want %v (FIFO must hold across slowdown)", sinks[1].got, want)
	}
}

func TestConnected(t *testing.T) {
	_, net, _ := newNet(t, 3)
	if !net.Connected(0, 1) {
		t.Error("fresh network must be fully connected")
	}
	net.Partition([]NodeID{0}, []NodeID{1, 2})
	if net.Connected(0, 1) {
		t.Error("0 and 1 must be separated")
	}
	if !net.Connected(1, 2) {
		t.Error("1 and 2 must stay connected")
	}
	net.Heal()
	if !net.Connected(0, 1) {
		t.Error("heal must reconnect")
	}
	net.Crash(2)
	if net.Connected(1, 2) {
		t.Error("crashed node must be disconnected")
	}
}

func TestStats(t *testing.T) {
	sched, net, _ := newNet(t, 2)
	net.Send(0, 1, "a")
	net.Send(0, 1, "b")
	sched.Run(0)
	st := net.Stats()
	if st.Sent != 2 || st.Delivered != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDirectedBlockHoldsOneWay(t *testing.T) {
	sched, net, sinks := newNet(t, 2)
	net.Block(0, 1)
	net.Send(0, 1, "held")
	net.Send(1, 0, "through")
	sched.Run(0)
	if len(sinks[1].got) != 0 {
		t.Errorf("blocked direction delivered: %v", sinks[1].got)
	}
	if len(sinks[0].got) != 1 || sinks[0].got[0] != "through" {
		t.Errorf("open direction lost: %v", sinks[0].got)
	}
	net.Unblock(0, 1)
	sched.Run(0)
	if len(sinks[1].got) != 1 || sinks[1].got[0] != "held" {
		t.Errorf("held message not released: %v", sinks[1].got)
	}
}

func TestBlockedAtDeliveryReholds(t *testing.T) {
	sched, net, sinks := newNet(t, 2)
	net.Send(0, 1, "inflight")
	net.Block(0, 1) // strikes while in flight
	sched.Run(0)
	if len(sinks[1].got) != 0 {
		t.Errorf("in-flight message crossed a blocked link: %v", sinks[1].got)
	}
	net.Unblock(0, 1)
	sched.Run(0)
	if len(sinks[1].got) != 1 {
		t.Errorf("message lost: %v", sinks[1].got)
	}
}
