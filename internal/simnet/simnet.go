// Package simnet simulates the message-passing network connecting the
// replicas: point-to-point links with configurable latency, FIFO delivery
// per link, node crashes, and — central to the paper — network partitions.
//
// Partition semantics follow the "temporary partitions" model the paper
// adopts (§2.3, after [15] [23]): messages between nodes in different
// partition cells are *held* and delivered once the partition heals, which
// models reliable links with retransmission. A run in which a partition is
// never healed within the observation horizon is an *asynchronous run*; a
// run in which partitions heal and the failure detector stabilizes is a
// *stable run* (§5, §A.2.1).
package simnet

import (
	"fmt"
	"sort"

	"bayou/internal/sim"
)

// NodeID identifies a replica in the network. IDs are small non-negative
// integers assigned densely from 0.
type NodeID int

// Handler receives a delivered payload on a node.
type Handler func(from NodeID, payload any)

// Stats counts network activity for the benchmark harness.
type Stats struct {
	Sent      int64 // messages submitted
	Delivered int64 // messages handed to handlers
	Held      int64 // messages that waited out a partition at least once
	// DroppedCrash counts messages discarded because the target was
	// crashed at delivery time. Crash loss is deliberately distinct from
	// partition holding: a partitioned link retransmits (messages are
	// parked and released on Heal), while a crashed node genuinely loses
	// traffic — Recover does not replay it; the protocol's resync
	// handshakes (rb.Resync, tob.Resync) repair the gap instead.
	DroppedCrash int64
}

// heldMsg is a message parked because sender and receiver were separated.
type heldMsg struct {
	from, to NodeID
	payload  any
}

// Network is the simulated network. It is single-threaded over the shared
// scheduler; construct with New.
type Network struct {
	sched    *sim.Scheduler
	handlers map[NodeID]Handler
	latency  func(from, to NodeID) sim.Time
	cell     map[NodeID]int // partition cell per node; all 0 when healed
	crashed  map[NodeID]bool
	blocked  map[[2]NodeID]bool  // directed per-link blocks
	slow     map[[2]NodeID]int64 // per-link latency multipliers (SlowLink)
	held     []heldMsg
	lastDue  map[[2]NodeID]sim.Time // per-link FIFO watermark
	stats    Stats
}

// New returns a network over the scheduler with a constant default latency
// of 10 ticks per link.
func New(sched *sim.Scheduler) *Network {
	return &Network{
		sched:    sched,
		handlers: make(map[NodeID]Handler),
		latency:  func(NodeID, NodeID) sim.Time { return 10 },
		cell:     make(map[NodeID]int),
		crashed:  make(map[NodeID]bool),
		blocked:  make(map[[2]NodeID]bool),
		slow:     make(map[[2]NodeID]int64),
		lastDue:  make(map[[2]NodeID]sim.Time),
	}
}

// Register installs the delivery handler for a node. Registering twice
// replaces the handler.
func (n *Network) Register(id NodeID, h Handler) { n.handlers[id] = h }

// SetLatency replaces the link-latency function. Latency must be
// deterministic for reproducibility; jitter should be derived from the
// scheduler's seeded random source by the caller.
func (n *Network) SetLatency(f func(from, to NodeID) sim.Time) { n.latency = f }

// Connected reports whether messages from a currently reach b: same
// partition cell, link not blocked, neither endpoint crashed.
func (n *Network) Connected(a, b NodeID) bool {
	if n.crashed[a] || n.crashed[b] {
		return false
	}
	return n.cell[a] == n.cell[b] && !n.blocked[[2]NodeID{a, b}]
}

// Block holds all traffic on the directed link from→to until Unblock. The
// asynchronous model permits arbitrary per-message delays, so one-directional
// blocking is a legal adversarial schedule — the Theorem 1 construction uses
// it to hide one replica's messages from another while consensus traffic
// still flows outward.
func (n *Network) Block(from, to NodeID) { n.blocked[[2]NodeID{from, to}] = true }

// Unblock releases a directed link and schedules delivery of messages held
// on it.
func (n *Network) Unblock(from, to NodeID) {
	delete(n.blocked, [2]NodeID{from, to})
	n.releaseHeld()
}

// Partition splits the network into the given cells. Every listed node is
// assigned to its cell; unlisted nodes form an implicit final cell. A
// subsequent Heal (or another Partition) releases held messages whose
// endpoints become connected.
func (n *Network) Partition(cells ...[]NodeID) {
	for id := range n.handlers {
		n.cell[id] = len(cells) // implicit cell for unlisted nodes
	}
	for i, cell := range cells {
		for _, id := range cell {
			n.cell[id] = i
		}
	}
	n.releaseHeld()
}

// Heal removes all partitions and schedules delivery of held messages.
func (n *Network) Heal() {
	for id := range n.handlers {
		n.cell[id] = 0
	}
	n.releaseHeld()
}

// Crash marks a node as silently crashed: it no longer sends or receives
// (§A.2.1 "replicas may crash silently and cease all communication").
// Messages addressed to it while down are dropped (DroppedCrash), never
// replayed — see Recover.
func (n *Network) Crash(id NodeID) { n.crashed[id] = true }

// Recover brings a crashed node back. The network does NOT replay traffic
// lost while the node was down (crash loss is permanent at this layer, the
// pinned semantics distinguishing crashes from partitions); the recovering
// node's protocol layers must resync explicitly. Messages held on
// partitions survive a crash–recover of either endpoint and are released
// when connectivity returns.
func (n *Network) Recover(id NodeID) {
	delete(n.crashed, id)
	n.releaseHeld()
}

// Crashed reports whether the node has crashed.
func (n *Network) Crashed(id NodeID) bool { return n.crashed[id] }

// SlowLink multiplies the latency of the links between a and b (both
// directions) by factor — the degraded-but-alive link of adversarial
// schedules. A factor of 1 restores normal speed. Per-link FIFO still
// holds: slowed messages do not overtake, they delay everything behind
// them on the link.
func (n *Network) SlowLink(a, b NodeID, factor int64) {
	if factor <= 1 {
		delete(n.slow, [2]NodeID{a, b})
		delete(n.slow, [2]NodeID{b, a})
		return
	}
	n.slow[[2]NodeID{a, b}] = factor
	n.slow[[2]NodeID{b, a}] = factor
}

// Send transmits payload from one node to another. Self-sends are delivered
// through the scheduler like any other message (zero-latency links are
// allowed). Messages across a partition are held until connectivity returns.
func (n *Network) Send(from, to NodeID, payload any) {
	n.stats.Sent++
	if n.crashed[from] {
		return
	}
	if !n.linkOpen(from, to) {
		n.stats.Held++
		n.held = append(n.held, heldMsg{from: from, to: to, payload: payload})
		return
	}
	n.transmit(from, to, payload)
}

// linkOpen reports whether traffic currently flows on the directed link.
func (n *Network) linkOpen(from, to NodeID) bool {
	return n.cell[from] == n.cell[to] && !n.blocked[[2]NodeID{from, to}]
}

// Broadcast sends payload from one node to every other registered node.
func (n *Network) Broadcast(from NodeID, payload any) {
	for _, to := range n.Nodes() {
		if to != from {
			n.Send(from, to, payload)
		}
	}
}

// Nodes returns the registered node ids in ascending order.
func (n *Network) Nodes() []NodeID {
	out := make([]NodeID, 0, len(n.handlers))
	for id := range n.handlers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns a copy of the activity counters.
func (n *Network) Stats() Stats { return n.stats }

// transmit schedules the actual delivery, enforcing per-link FIFO: a message
// never overtakes an earlier message on the same (from, to) link even if the
// latency function fluctuates.
func (n *Network) transmit(from, to NodeID, payload any) {
	lat := n.latency(from, to)
	if f, ok := n.slow[[2]NodeID{from, to}]; ok {
		lat *= sim.Time(f)
	}
	due := n.sched.Now() + lat
	link := [2]NodeID{from, to}
	if due < n.lastDue[link] {
		due = n.lastDue[link]
	}
	n.lastDue[link] = due
	n.sched.At(due, func() { n.deliver(from, to, payload) })
}

// deliver hands the payload to the target handler unless, at delivery time,
// the endpoints are separated (the message is then re-held) or the target
// crashed (the message is dropped for good and counted DroppedCrash).
func (n *Network) deliver(from, to NodeID, payload any) {
	if n.crashed[to] {
		n.stats.DroppedCrash++
		return
	}
	if !n.linkOpen(from, to) {
		n.stats.Held++
		n.held = append(n.held, heldMsg{from: from, to: to, payload: payload})
		return
	}
	h, ok := n.handlers[to]
	if !ok {
		panic(fmt.Sprintf("simnet: delivery to unregistered node %d", to))
	}
	n.stats.Delivered++
	h(from, payload)
}

// releaseHeld re-transmits every held message whose endpoints are connected
// again. Held messages between still-separated nodes stay held; so do
// messages toward a currently-crashed target (the partition is still
// retransmitting — Recover releases them). A held message from a sender
// that crashed after sending is already in flight and delivers normally.
func (n *Network) releaseHeld() {
	pending := n.held
	n.held = nil
	for _, m := range pending {
		if !n.linkOpen(m.from, m.to) || n.crashed[m.to] {
			n.held = append(n.held, m)
			continue
		}
		n.transmit(m.from, m.to, m.payload)
	}
}

// HeldCount returns the number of messages currently parked on partitions,
// for assertions in partition tests.
func (n *Network) HeldCount() int { return len(n.held) }
