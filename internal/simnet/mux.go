package simnet

// Mux fans a node's incoming payloads out to protocol layers (reliable
// broadcast, total order broadcast, ...) stacked on one network endpoint.
// Each subscriber reports whether it consumed the payload; unconsumed
// payloads fall through to the next subscriber and are silently ignored when
// nobody claims them (e.g., traffic addressed to a protocol a node no longer
// runs).
type Mux struct {
	subs []func(from NodeID, payload any) bool
}

// Add appends a subscriber. Subscribers are tried in registration order.
func (m *Mux) Add(fn func(from NodeID, payload any) bool) {
	m.subs = append(m.subs, fn)
}

// Handler returns the network Handler that drives the mux.
func (m *Mux) Handler() Handler {
	return func(from NodeID, payload any) {
		for _, s := range m.subs {
			if s(from, payload) {
				return
			}
		}
	}
}
