// Package smr is the strongly-consistent baseline (§2.2): classic state
// machine replication [Lamport 78, Schneider 90] — every operation, read or
// write, is totally ordered by TOB before execution, so every response
// reflects the single global order (sequential consistency for every
// operation; no anomalies of any kind). The price is the availability the
// paper's introduction trades away: nothing returns without consensus, so a
// minority partition serves nothing at all.
package smr

import (
	"bayou/internal/core"
	"bayou/internal/fd"
	"bayou/internal/sim"
	"bayou/internal/simnet"
	"bayou/internal/spec"
	"bayou/internal/stateobj"
	"bayou/internal/tob"
)

// Call is a client handle on one invocation.
type Call struct {
	Dot        core.Dot
	Op         spec.Op
	Done       bool
	Value      spec.Value
	WallInvoke int64
	WallReturn int64
}

// Replica is one SMR replica. Construct with New; wire Handle into the mux.
type Replica struct {
	id      core.ReplicaID
	sched   *sim.Scheduler
	tobNode tob.TOB
	state   *stateobj.State
	eventNo int64
	pending map[core.Dot]*Call
	applied int64
}

// req is the replicated operation record.
type req struct {
	Dot core.Dot
	Op  spec.Op
}

// New returns a replica using Paxos-based TOB over the shared network.
func New(id core.ReplicaID, peers []simnet.NodeID, sched *sim.Scheduler, net *simnet.Network, omega *fd.Omega) *Replica {
	r := &Replica{
		id:      id,
		sched:   sched,
		state:   stateobj.New(),
		pending: make(map[core.Dot]*Call),
	}
	r.tobNode = tob.NewPaxos(simnet.NodeID(id), peers, sched, net, omega, r.onDeliver)
	return r
}

// Handle consumes the replica's wire traffic.
func (r *Replica) Handle(from simnet.NodeID, payload any) bool {
	return r.tobNode.Handle(from, payload)
}

// Invoke submits an operation; the call completes when the operation commits
// and executes locally. Nothing is tentative, nothing rolls back, and under
// a partition without quorum nothing returns.
func (r *Replica) Invoke(op spec.Op) *Call {
	r.eventNo++
	d := core.Dot{Replica: r.id, EventNo: r.eventNo}
	call := &Call{Dot: d, Op: op, WallInvoke: int64(r.sched.Now())}
	r.pending[d] = call
	r.tobNode.Cast(d.String(), req{Dot: d, Op: op})
	return call
}

// Applied returns the number of committed operations executed locally.
func (r *Replica) Applied() int64 { return r.applied }

// Read peeks at the replica state (diagnostics).
func (r *Replica) Read(id string) spec.Value { return r.state.Read(id) }

func (r *Replica) onDeliver(_ int64, m tob.Message) {
	q, ok := m.Payload.(req)
	if !ok {
		return
	}
	v, err := r.state.Execute(q.Dot.String(), q.Op)
	if err != nil {
		panic("smr: duplicate execution of " + q.Dot.String())
	}
	r.applied++
	if call, mine := r.pending[q.Dot]; mine && !call.Done {
		call.Done = true
		call.Value = v
		call.WallReturn = int64(r.sched.Now())
		delete(r.pending, q.Dot)
	}
}
