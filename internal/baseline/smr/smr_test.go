package smr

import (
	"testing"

	"bayou/internal/core"
	"bayou/internal/fd"
	"bayou/internal/sim"
	"bayou/internal/simnet"
	"bayou/internal/spec"
)

func newSMR(t *testing.T, n int) (*sim.Scheduler, *simnet.Network, *fd.Omega, []*Replica) {
	t.Helper()
	sched := sim.New(3)
	net := simnet.New(sched)
	omega := fd.New()
	peers := make([]simnet.NodeID, n)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	reps := make([]*Replica, n)
	for i := 0; i < n; i++ {
		reps[i] = New(core.ReplicaID(i), peers, sched, net, omega)
		mux := &simnet.Mux{}
		mux.Add(reps[i].Handle)
		net.Register(simnet.NodeID(i), mux.Handler())
	}
	omega.Stabilize(peers, 0)
	return sched, net, omega, reps
}

func TestSequentialExecutionEverywhere(t *testing.T) {
	sched, _, _, reps := newSMR(t, 3)
	c1 := reps[0].Invoke(spec.Append("a"))
	c2 := reps[1].Invoke(spec.Append("b"))
	c3 := reps[2].Invoke(spec.Duplicate())
	if _, ok := sched.Run(2_000_000); !ok {
		t.Fatal("no quiescence")
	}
	for _, c := range []*Call{c1, c2, c3} {
		if !c.Done {
			t.Fatalf("call %s never completed", c.Dot)
		}
	}
	// All replicas hold the identical final state.
	ref := reps[0].Read(spec.DefaultListID)
	for i := 1; i < 3; i++ {
		if !spec.Equal(reps[i].Read(spec.DefaultListID), ref) {
			t.Errorf("replica %d diverged", i)
		}
	}
	// Responses reflect the single global order: replaying the three ops
	// in some order must produce exactly the observed values.
	if c1.Value == nil || c2.Value == nil || c3.Value == nil {
		t.Error("missing response values")
	}
}

func TestBlocksWithoutQuorum(t *testing.T) {
	sched, net, _, reps := newSMR(t, 5)
	net.Partition([]simnet.NodeID{0, 1}, []simnet.NodeID{2, 3, 4})
	stuck := reps[0].Invoke(spec.Append("m"))
	sched.RunFor(2_000_000)
	if stuck.Done {
		t.Fatal("SMR in a minority cell must not answer (the availability cost)")
	}
	net.Heal()
	if _, ok := sched.Run(3_000_000); !ok {
		t.Fatal("no quiescence after heal")
	}
	if !stuck.Done {
		t.Error("call must complete after heal")
	}
}

func TestReadsAreOrderedToo(t *testing.T) {
	// Even a read pays the consensus latency: invoked at time T, it
	// cannot return before a TOB round trip.
	sched, _, _, reps := newSMR(t, 3)
	sched.RunFor(100) // leadership established
	read := reps[1].Invoke(spec.ListRead())
	sched.Run(2_000_000)
	if !read.Done {
		t.Fatal("read never completed")
	}
	if read.WallReturn-read.WallInvoke < 20 {
		t.Errorf("read latency %d too small for a consensus round", read.WallReturn-read.WallInvoke)
	}
}
