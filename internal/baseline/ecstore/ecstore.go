// Package ecstore is the purely eventually-consistent baseline the paper
// contrasts Bayou with (§2.2): a last-writer-wins key-value store in the
// style of Dynamo/Cassandra, using a single ordering method — timestamps
// with replica-id tiebreaks (Thomas' write rule, the paper's reference
// [22]). Because there is only one ordering method, it never exhibits
// temporary operation reordering and never rolls anything back; the price is
// the limited semantics the paper's introduction laments: per-key blind
// writes and local reads only, no strong operations at all.
package ecstore

import (
	"bayou/internal/core"
	"bayou/internal/rb"
	"bayou/internal/sim"
	"bayou/internal/simnet"
	"bayou/internal/spec"
)

// versioned is a value with its write timestamp (ts, dot ordering).
type versioned struct {
	val spec.Value
	ts  int64
	dot core.Dot
}

// newer reports whether a beats b under last-writer-wins.
func (a versioned) newer(b versioned) bool {
	if a.ts != b.ts {
		return a.ts > b.ts
	}
	if a.dot.Replica != b.dot.Replica {
		return a.dot.Replica > b.dot.Replica
	}
	return a.dot.EventNo > b.dot.EventNo
}

// write is the replicated update record.
type write struct {
	Key string
	V   versioned
}

// Replica is one store replica. Construct with New; wire Handle into the
// node's mux.
type Replica struct {
	id      core.ReplicaID
	sched   *sim.Scheduler
	rbNode  *rb.Node
	data    map[string]versioned
	eventNo int64
	applied int64
}

// New returns a replica attached to the network.
func New(id core.ReplicaID, sched *sim.Scheduler, net *simnet.Network) *Replica {
	r := &Replica{id: id, sched: sched, data: make(map[string]versioned)}
	r.rbNode = rb.New(simnet.NodeID(id), sched, net, r.onDeliver)
	return r
}

// Handle consumes the replica's wire traffic.
func (r *Replica) Handle(from simnet.NodeID, payload any) bool {
	return r.rbNode.Handle(from, payload)
}

// Put stores v under key (highly available: applied locally, gossiped via
// RB) and returns immediately.
func (r *Replica) Put(key string, v spec.Value) {
	r.eventNo++
	w := write{Key: key, V: versioned{
		val: spec.Clone(v),
		ts:  int64(r.sched.Now()),
		dot: core.Dot{Replica: r.id, EventNo: r.eventNo},
	}}
	r.rbNode.Cast(rb.Message{ID: w.V.dot.String(), Payload: w})
}

// Get reads the local value for key (nil when absent) — always available,
// never blocking, possibly stale.
func (r *Replica) Get(key string) spec.Value {
	return spec.Clone(r.data[key].val)
}

// Applied returns the number of writes applied locally (each applied exactly
// once; there are no rollbacks by construction).
func (r *Replica) Applied() int64 { return r.applied }

func (r *Replica) onDeliver(m rb.Message) {
	w, ok := m.Payload.(write)
	if !ok {
		return
	}
	cur, exists := r.data[w.Key]
	if !exists || w.V.newer(cur) {
		r.data[w.Key] = w.V
	}
	r.applied++
}
