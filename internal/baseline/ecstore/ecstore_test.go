package ecstore

import (
	"fmt"
	"testing"

	"bayou/internal/core"
	"bayou/internal/sim"
	"bayou/internal/simnet"
)

func newStore(t *testing.T, n int) (*sim.Scheduler, *simnet.Network, []*Replica) {
	t.Helper()
	sched := sim.New(5)
	net := simnet.New(sched)
	reps := make([]*Replica, n)
	for i := 0; i < n; i++ {
		reps[i] = New(core.ReplicaID(i), sched, net)
		mux := &simnet.Mux{}
		mux.Add(reps[i].Handle)
		net.Register(simnet.NodeID(i), mux.Handler())
	}
	return sched, net, reps
}

func TestPutGetLocal(t *testing.T) {
	sched, _, reps := newStore(t, 2)
	reps[0].Put("k", "v")
	sched.Run(0)
	if got := reps[0].Get("k"); got != "v" {
		t.Errorf("Get = %v, want v", got)
	}
	if got := reps[1].Get("k"); got != "v" {
		t.Errorf("replicated Get = %v, want v", got)
	}
}

func TestLastWriterWinsConvergence(t *testing.T) {
	sched, _, reps := newStore(t, 3)
	// Concurrent writes at the same instant: replica-id tiebreak.
	reps[0].Put("k", "from0")
	reps[2].Put("k", "from2")
	sched.Run(0)
	for i, r := range reps {
		if got := r.Get("k"); got != "from2" {
			t.Errorf("replica %d = %v, want from2 (higher replica id wins ties)", i, got)
		}
	}
	// A later write beats everything.
	sched.After(10, func() { reps[1].Put("k", "late") })
	sched.Run(0)
	for i, r := range reps {
		if got := r.Get("k"); got != "late" {
			t.Errorf("replica %d = %v, want late", i, got)
		}
	}
}

func TestAvailabilityUnderPartitionAndConvergenceAfterHeal(t *testing.T) {
	sched, net, reps := newStore(t, 4)
	net.Partition([]simnet.NodeID{0, 1}, []simnet.NodeID{2, 3})
	reps[0].Put("k", "left")
	sched.RunFor(5)
	reps[2].Put("k", "right") // later timestamp
	sched.Run(0)
	if got := reps[1].Get("k"); got != "left" {
		t.Errorf("left cell = %v, want left", got)
	}
	if got := reps[3].Get("k"); got != "right" {
		t.Errorf("right cell = %v, want right", got)
	}
	net.Heal()
	sched.Run(0)
	for i, r := range reps {
		if got := r.Get("k"); got != "right" {
			t.Errorf("replica %d after heal = %v, want right (LWW)", i, got)
		}
	}
}

func TestNoReorderingNoRollbacks(t *testing.T) {
	// The defining contrast with Bayou: once a value is applied, the set
	// of applied writes only grows; there is no rollback counter because
	// nothing can be rolled back by construction.
	sched, _, reps := newStore(t, 2)
	for i := 0; i < 20; i++ {
		reps[i%2].Put(fmt.Sprintf("k%d", i%3), int64(i))
		sched.RunFor(3)
	}
	sched.Run(0)
	for i, r := range reps {
		if r.Applied() != 20 {
			t.Errorf("replica %d applied %d, want 20 (each write exactly once)", i, r.Applied())
		}
	}
	if !sameValue(reps, "k0") || !sameValue(reps, "k1") || !sameValue(reps, "k2") {
		t.Error("replicas diverged")
	}
}

func sameValue(reps []*Replica, key string) bool {
	ref := reps[0].Get(key)
	for _, r := range reps[1:] {
		got := r.Get(key)
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			return false
		}
	}
	return true
}
