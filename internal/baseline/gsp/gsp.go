// Package gsp implements the Global Sequence Protocol baseline (§6, the
// paper's reference [12], Burckhardt et al., ECOOP '15): client devices keep
// a confirmed prefix of the global operation sequence plus a buffer of their
// own pending updates; a cloud sequencer establishes the global order and
// streams it back. Reads replay confirmed · pending, so a client's perceived
// order only ever *grows* — GSP exhibits no temporary operation reordering.
// The trade-off the paper points out: when the cloud is unreachable, clients
// keep operating on their own updates but never see each other's — no
// cross-client visibility progress, so Theorem 1 does not apply to it.
package gsp

import (
	"bayou/internal/core"
	"bayou/internal/sim"
	"bayou/internal/simnet"
	"bayou/internal/spec"
)

// update is a client operation traveling to/from the cloud.
type update struct {
	Dot core.Dot
	Op  spec.Op
}

// ordered is the cloud's sequencing announcement.
type ordered struct {
	Seq int64
	U   update
}

// Cloud is the sequencer. Construct with NewCloud; wire Handle into its mux.
type Cloud struct {
	id   simnet.NodeID
	net  *simnet.Network
	seq  int64
	seen map[core.Dot]bool
}

// NewCloud returns the sequencer for the given network node.
func NewCloud(id simnet.NodeID, net *simnet.Network) *Cloud {
	return &Cloud{id: id, net: net, seen: make(map[core.Dot]bool)}
}

// Handle consumes updates and broadcasts their global positions.
func (c *Cloud) Handle(from simnet.NodeID, payload any) bool {
	u, ok := payload.(update)
	if !ok {
		return false
	}
	if c.seen[u.Dot] {
		return true
	}
	c.seen[u.Dot] = true
	c.seq++
	c.net.Broadcast(c.id, ordered{Seq: c.seq, U: u})
	return true
}

// Client is a GSP client device. Construct with NewClient; wire Handle into
// its mux.
type Client struct {
	id      core.ReplicaID
	node    simnet.NodeID
	cloud   simnet.NodeID
	net     *simnet.Network
	sched   *sim.Scheduler
	eventNo int64

	confirmed []update         // the known prefix of the global sequence
	nextSeq   int64            // next expected global position
	buffered  map[int64]update // out-of-order cloud announcements
	pending   []update         // own updates not yet confirmed
	replays   int64            // state recomputations (the GSP cost center)
}

// NewClient returns a client attached to the network.
func NewClient(id core.ReplicaID, node, cloud simnet.NodeID, sched *sim.Scheduler, net *simnet.Network) *Client {
	return &Client{
		id: id, node: node, cloud: cloud, net: net, sched: sched,
		nextSeq: 1, buffered: make(map[int64]update),
	}
}

// Update applies an updating operation locally (pending) and ships it to the
// cloud. Always available; returns the locally-perceived response.
func (c *Client) Update(op spec.Op) spec.Value {
	c.eventNo++
	u := update{Dot: core.Dot{Replica: c.id, EventNo: c.eventNo}, Op: op}
	c.pending = append(c.pending, u)
	c.net.Send(c.node, c.cloud, u)
	return c.eval(op, 1) // response from confirmed · pending (op included)
}

// Read evaluates a read-only operation on confirmed · pending.
func (c *Client) Read(op spec.Op) spec.Value {
	return c.eval(op, 0)
}

// eval replays confirmed · pending and applies op; skipLast excludes op
// itself from pending (it was just appended by Update).
func (c *Client) eval(op spec.Op, skipLast int) spec.Value {
	c.replays++
	tx := spec.NewMapTx()
	for _, u := range c.confirmed {
		u.Op.Apply(tx)
	}
	for i := 0; i < len(c.pending)-skipLast; i++ {
		c.pending[i].Op.Apply(tx)
	}
	return op.Apply(tx)
}

// Handle consumes cloud announcements.
func (c *Client) Handle(from simnet.NodeID, payload any) bool {
	o, ok := payload.(ordered)
	if !ok {
		return false
	}
	if o.Seq < c.nextSeq {
		return true
	}
	c.buffered[o.Seq] = o.U
	for {
		u, ready := c.buffered[c.nextSeq]
		if !ready {
			return true
		}
		delete(c.buffered, c.nextSeq)
		c.nextSeq++
		c.confirmed = append(c.confirmed, u)
		if u.Dot.Replica == c.id {
			// Own update confirmed: drop it from pending (FIFO).
			for i, p := range c.pending {
				if p.Dot == u.Dot {
					c.pending = append(c.pending[:i], c.pending[i+1:]...)
					break
				}
			}
		}
	}
}

// ConfirmedLen returns the length of the known global prefix.
func (c *Client) ConfirmedLen() int { return len(c.confirmed) }

// PendingLen returns the number of unconfirmed own updates.
func (c *Client) PendingLen() int { return len(c.pending) }

// Replays returns the number of full state replays performed.
func (c *Client) Replays() int64 { return c.replays }
